// End-to-end tests for the concurrent campaign engine: a full parallel
// injection campaign over every target under the race detector, and a
// determinism check that the parallel report equals the sequential one
// outcome-for-outcome.
package spex_test

import (
	"context"
	"reflect"
	"testing"

	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/inject"
	"spex/internal/report"
	"spex/internal/sim"
	"spex/internal/spex"
	"spex/internal/targets"
)

// campaignFor generates the full misconfiguration list for one target.
func campaignFor(t testing.TB, sys sim.System) []confgen.Misconf {
	t.Helper()
	res, err := spex.InferSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := conffile.Parse(sys.DefaultConfig(), sys.Syntax())
	if err != nil {
		t.Fatal(err)
	}
	return confgen.NewRegistry().Generate(res.Set, tmpl)
}

// TestParallelCampaignMatchesSequential drives the Table 5 campaign for
// every target both sequentially and with 4 workers and requires the
// reports to match outcome-for-outcome. Run under -race this doubles as
// the engine's full-campaign race test: every boot, functional test,
// and substrate operation of all seven targets executes concurrently.
func TestParallelCampaignMatchesSequential(t *testing.T) {
	for _, sys := range targets.All() {
		sys := sys
		t.Run(sys.Name(), func(t *testing.T) {
			t.Parallel() // cross-target concurrency on top of intra-campaign workers
			ms := campaignFor(t, sys)
			seq, err := inject.Run(sys, ms, inject.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			opts := inject.DefaultOptions()
			opts.Workers = 4
			par, err := inject.Run(sys, ms, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(par.Outcomes) != len(seq.Outcomes) {
				t.Fatalf("parallel report has %d outcomes, sequential %d", len(par.Outcomes), len(seq.Outcomes))
			}
			for i := range seq.Outcomes {
				if !reflect.DeepEqual(par.Outcomes[i], seq.Outcomes[i]) {
					t.Errorf("outcome %d (%s) differs:\nparallel  : %+v\nsequential: %+v",
						i, seq.Outcomes[i].Misconf.ID, par.Outcomes[i], seq.Outcomes[i])
				}
			}
			if par.TotalSimCost != seq.TotalSimCost {
				t.Errorf("sim cost: parallel %d, sequential %d", par.TotalSimCost, seq.TotalSimCost)
			}
		})
	}
}

// TestAnalyzeAllParallelMatchesSequential checks the full seven-system
// evaluation pipeline at the report layer.
func TestAnalyzeAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	seq, err := report.AnalyzeAllContext(context.Background(), report.AnalyzeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := report.AnalyzeAllContext(context.Background(), report.AnalyzeOptions{Workers: 7, CampaignWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if report.Table5(seq) != report.Table5(par) {
		t.Error("Table 5 differs between sequential and parallel analysis")
	}
	if report.Table11(seq) != report.Table11(par) {
		t.Error("Table 11 differs between sequential and parallel analysis")
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i].Campaign.Outcomes, par[i].Campaign.Outcomes) {
			t.Errorf("%s: campaign outcomes differ", seq[i].Sys.Name())
		}
	}
}

// TestIncrementalCampaignOnRealTarget replays a mydb campaign through
// the incremental cache: a no-op revision must replay everything and a
// real report must be reproduced exactly.
func TestIncrementalCampaignOnRealTarget(t *testing.T) {
	sys := targets.ByName("mydb")
	res, err := spex.InferSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	ms := campaignFor(t, sys)
	full, err := inject.Run(sys, ms, inject.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cache := inject.NewResultCache()
	inject.SeedCache(cache, full)
	d := inject.Diff(res.Set, res.Set) // no-op revision
	opts := inject.DefaultOptions()
	opts.Workers = 4
	inc, err := inject.RunIncremental(context.Background(), sys, ms, d, cache, opts)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Replayed != len(ms) {
		t.Fatalf("no-op revision replayed %d of %d outcomes", inc.Replayed, len(ms))
	}
	if inc.TotalSimCost != 0 {
		t.Fatalf("no-op revision re-executed work: cost %d", inc.TotalSimCost)
	}
	if !reflect.DeepEqual(inc.Outcomes, full.Outcomes) {
		t.Fatal("incremental report differs from the full campaign")
	}
}
