// Package spex is a Go reproduction of "Do Not Blame Users for
// Misconfigurations" (Xu et al., SOSP 2013).
//
// The repository implements the paper's complete system:
//
//   - SPEX, a static analysis that infers configuration constraints
//     (basic type, semantic type, value range, control dependency, value
//     relationship) from annotated source code (internal/spex and its
//     substrates: frontend, cfg, dataflow, mapping, annot, apispec).
//   - SPEX-INJ, a misconfiguration-injection harness that violates every
//     inferred constraint, boots the target on hermetic virtual substrates
//     (vfs, vnet, simlog, sim), runs the target's own functional tests,
//     and classifies the reaction (confgen, inject).
//   - The error-prone-design detectors: case-sensitivity and unit
//     inconsistency, silent overruling, unsafe parsing APIs, undocumented
//     constraints (designcheck).
//   - Seven simulated evaluation targets mirroring the paper's systems
//     (internal/targets/...), the 18-project mapping survey
//     (targets/minicorpus), and the historical-case study (casedb).
//   - Renderers that regenerate every table and figure of the paper's
//     evaluation next to the published numbers (report, cmd/spexeval).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package spex
