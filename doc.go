// Package spex is a Go reproduction of "Do Not Blame Users for
// Misconfigurations" (Xu et al., SOSP 2013).
//
// The repository implements the paper's complete system:
//
//   - SPEX, a static analysis that infers configuration constraints
//     (basic type, semantic type, value range, control dependency, value
//     relationship) from annotated source code (internal/spex and its
//     substrates: frontend, cfg, dataflow, mapping, annot, apispec).
//   - SPEX-INJ, a misconfiguration-injection harness that violates every
//     inferred constraint, boots the target on hermetic virtual substrates
//     (vfs, vnet, simlog, sim), runs the target's own functional tests,
//     and classifies the reaction (confgen, inject).
//   - The error-prone-design detectors: case-sensitivity and unit
//     inconsistency, silent overruling, unsafe parsing APIs, undocumented
//     constraints (designcheck).
//   - Seven simulated evaluation targets mirroring the paper's systems
//     (internal/targets/...), the 18-project mapping survey
//     (targets/minicorpus), and the historical-case study (casedb).
//   - Renderers that regenerate every table and figure of the paper's
//     evaluation next to the published numbers (report, cmd/spexeval).
//
// # Concurrent campaign engine
//
// Campaigns and inference runs are scheduled by internal/engine, a
// bounded worker pool with three properties the layers above rely on:
//
//   - Determinism. Tasks are indexed and results reassemble in input
//     order, so a parallel injection campaign (inject.Options.Workers)
//     or a parallel seven-target evaluation (report.AnalyzeAllContext,
//     spex.InferAll) produces reports identical to a sequential run.
//   - Cancellation. Every layer threads a context.Context down to
//     sim.MonitorStartContext; Ctrl-C in the cmd drivers stops
//     dispatching immediately, abandons in-flight boots, and reports
//     the outcomes already measured.
//   - Incrementality. An engine-level result cache keyed by
//     misconfiguration identity (inject.CacheKey: violated-constraint
//     ID + rule + injected values) makes inject.Diff's constraint delta
//     a real incremental mode: inject.RunIncremental replays recorded
//     outcomes for unchanged constraints and re-executes only the
//     added/affected ones (§3.1's incremental retesting).
//
// # Persistent campaign snapshots
//
// internal/campaignstore persists that incremental mode across process
// runs, completing the paper's "campaign cost is a one-time cost"
// argument: a snapshot is a versioned JSON document holding the
// inferred constraint set (in constraint.Set's stable serialized form,
// sorted by constraint identity), the set's fingerprint, and every
// recorded outcome keyed by inject.CacheKey. Snapshots are saved
// atomically (temp file + rename), one file per system under a state
// directory (the -state flag of cmd/spexinj and cmd/spexeval, or
// report.AnalyzeOptions.StateDir).
//
// Each run loads the snapshot, Diffs a fresh inference against the
// stored set, re-executes only the delta-selected misconfigurations,
// and saves the updated snapshot. Loading is fail-safe by construction:
// the snapshot embeds a schema fingerprint covering the store layout
// version and every encoding the data depends on (env-action kinds,
// reaction values, constraint kinds), plus the identity of the
// outcome-affecting campaign options; a missing, corrupt, truncated,
// fingerprint-stale or options-mismatched snapshot is never replayed —
// the run falls back to a full campaign and rebuilds it. Cancelled runs
// persist only their
// finished outcomes (errored, cancelled and never-started ones are
// never cached), so a resumed campaign re-executes exactly the
// unfinished misconfigurations.
//
// The simulated targets model the real systems' package-global config
// variables, so each target serializes its boot phase under a package
// mutex and detaches the parsed configuration into the instance before
// the (fully parallel) functional-test phase. Campaign wall-clock cost
// is dominated by per-misconfiguration boots in the paper's setting;
// inject.Options.SimCostDelay optionally realizes simulated cost units
// as wall time so the scheduler's overlap is measurable
// (BenchmarkCampaignParallel).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package spex
