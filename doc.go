// Package spex is a Go reproduction of "Do Not Blame Users for
// Misconfigurations" (Xu et al., SOSP 2013).
//
// The repository implements the paper's complete system:
//
//   - SPEX, a static analysis that infers configuration constraints
//     (basic type, semantic type, value range, control dependency, value
//     relationship) from annotated source code (internal/spex and its
//     substrates: frontend, cfg, dataflow, mapping, annot, apispec).
//   - SPEX-INJ, a misconfiguration-injection harness that violates every
//     inferred constraint, boots the target on hermetic virtual substrates
//     (vfs, vnet, simlog, sim), runs the target's own functional tests,
//     and classifies the reaction (confgen, inject).
//   - The error-prone-design detectors: case-sensitivity and unit
//     inconsistency, silent overruling, unsafe parsing APIs, undocumented
//     constraints (designcheck).
//   - Seven simulated evaluation targets mirroring the paper's systems
//     (internal/targets/...), the 18-project mapping survey
//     (targets/minicorpus), and the historical-case study (casedb).
//   - Renderers that regenerate every table and figure of the paper's
//     evaluation next to the published numbers (report, cmd/spexeval).
//
// # Concurrent campaign engine
//
// Campaigns and inference runs are scheduled by internal/engine, a
// bounded worker pool with three properties the layers above rely on:
//
//   - Determinism. Tasks are indexed and results reassemble in input
//     order, so a parallel injection campaign (inject.Options.Workers)
//     or a parallel seven-target evaluation (report.AnalyzeAllContext,
//     spex.InferAll) produces reports identical to a sequential run.
//   - Cancellation. Every layer threads a context.Context down to
//     sim.MonitorStartContext; Ctrl-C in the cmd drivers stops
//     dispatching immediately, abandons in-flight boots, and reports
//     the outcomes already measured.
//   - Incrementality. An engine-level result cache keyed by
//     misconfiguration identity (inject.CacheKey: violated-constraint
//     ID + rule + injected values) makes inject.Diff's constraint delta
//     a real incremental mode: inject.RunIncremental replays recorded
//     outcomes for unchanged constraints and re-executes only the
//     added/affected ones (§3.1's incremental retesting).
//
// # Persistent campaign snapshots
//
// internal/campaignstore persists that incremental mode across process
// runs, completing the paper's "campaign cost is a one-time cost"
// argument: a snapshot holds the inferred constraint set (in
// constraint.Set's stable serialized form, sorted by constraint
// identity), the set's fingerprint, and every recorded outcome keyed by
// inject.CacheKey. Snapshots are saved atomically (temp file + rename)
// in a length-prefixed binary container (see "Binary snapshot format
// and the outcome index" below), one file per system under a state
// directory (the -state flag of cmd/spexinj and cmd/spexeval, or
// report.AnalyzeOptions.StateDir); stores written by the previous
// JSON format load transparently and migrate on their next save.
//
// Each run loads the snapshot, Diffs a fresh inference against the
// stored set, re-executes only the delta-selected misconfigurations,
// and saves the updated snapshot. Loading is fail-safe by construction:
// the snapshot embeds a schema fingerprint covering the store layout
// version and every encoding the data depends on (env-action kinds,
// reaction values, constraint kinds), plus the identity of the
// outcome-affecting campaign options; a missing, corrupt, truncated,
// fingerprint-stale or options-mismatched snapshot is never replayed —
// the run falls back to a full campaign and rebuilds it. Cancelled runs
// persist only their
// finished outcomes (errored, cancelled and never-started ones are
// never cached), so a resumed campaign re-executes exactly the
// unfinished misconfigurations.
//
// The simulated targets model the real systems' package-global config
// variables, so each target serializes its boot phase under a package
// mutex and detaches the parsed configuration into the instance before
// the (fully parallel) functional-test phase. Campaign wall-clock cost
// is dominated by per-misconfiguration boots in the paper's setting;
// inject.Options.SimCostDelay optionally realizes simulated cost units
// as wall time so the scheduler's overlap is measurable
// (BenchmarkCampaignParallel).
//
// # Distributed campaign sharding
//
// internal/shard scales the campaign beyond one worker pool and beyond
// one process, in a plan → execute → merge lifecycle:
//
//   - Global cross-target scheduling (shard.RunGlobal and the
//     store-backed shard.CampaignAll). Instead of one engine.Run per
//     system, every target's misconfigurations flatten into a single
//     task queue feeding one pool. The fairness rule is round-robin
//     interleaving (shard.Interleave): consecutive tasks address
//     different targets, so the in-flight set spans as many targets as
//     the pool is wide — no single target's mutex-serialized boot
//     phase backs up every worker, and a small target draining early
//     leaves the rest of the rotation instead of idle workers
//     (BenchmarkGlobalScheduler measures the utilization gap). Each
//     per-system report is reassembled through inject.Assemble, the
//     same code path a standalone campaign uses, so going global
//     changes utilization, never results. This scheduler sits under
//     `spexinj -all`, `spexinj -system X` (the one-workload special
//     case), and `spexeval -global`.
//
//   - Plan: `spexinj -shard i/N -state dir` executes one deterministic
//     partition of the workload. shard.Plan hashes each
//     misconfiguration's replay identity (inject.CacheKey, salted with
//     the system name) with FNV-1a mod N, so every process computes
//     the same partition from the same inference with no coordinator,
//     each key belongs to exactly one shard, and a shard's -state
//     re-run replays its own outcomes incrementally.
//
//   - Merge: `spexmerge -out dir shard1 shard2 ...` (shard.Merge)
//     folds per-shard state directories into one canonical store. The
//     merge validates before it folds — all shards of a system must
//     carry this build's schema fingerprint, the same constraint-set
//     fingerprint, and the same outcome-affecting options identity
//     (OptionsID) — and resolves duplicate outcome keys freshest-wins
//     by each outcome's own stamp (when it was last executed or
//     re-validated, not when its snapshot was saved — a shard that
//     merely carried a peer's outcome through its save can never
//     shadow the peer's fresher retest; exactly-equal stamps tie-break
//     to the lexicographically greatest shard directory, so the merge
//     is a function of the shard set, not the argument order). The
//     merged store replays byte-identically
//     to an unsharded run's (campaignstore.Snapshot.Fingerprint is the
//     equivalence check: it covers everything replay-relevant and
//     nothing time-dependent).
//
// Example: split a campaign across two machines and fold it back.
//
//	machine1$ spexinj -all -shard 1/2 -state /tmp/shard1
//	machine2$ spexinj -all -shard 2/2 -state /tmp/shard2
//	$ spexmerge -out /var/lib/spex /tmp/shard1 /tmp/shard2
//	$ spexinj -all -state /var/lib/spex    # 100% replay, zero sim cost
//
// spexeval speaks the same protocol: `spexeval -shard i/N -state dir`
// campaigns one partition per process (persisting per-shard snapshots
// instead of rendering partial tables), and after spexmerge a plain
// `spexeval -state merged` replays the whole campaign and renders every
// table byte-identical to an unsharded run — the full evaluation
// pipeline runs distributed.
//
// # Coordinated campaigns with work stealing
//
// The static i/N partition is coordinator-free but rigid: hash
// placement balances key counts, not runtimes, so a shard stuck behind
// slow misconfigurations (or a slow machine) sets the whole campaign's
// wall clock. internal/coord adds the scheduler the ROADMAP called
// for: `spexinj -coordinate N -state dir` runs a coordinator whose
// lifecycle is plan → lease → steal → merge.
//
//   - Plan. The coordinator computes the same deterministic workload
//     every shard process would and assigns each misconfiguration its
//     i/N hash owner (shard.Owner) — a coordinated campaign starts
//     from exactly the static partition. The assignment is persisted
//     as lease files, <state>/coord/worker<i>.lease.json: owner,
//     generation counter, and the explicit key list in execution
//     order (the workload's round-robin interleave).
//
//   - Lease. N child spexinj processes launch in worker mode
//     (`spexinj -lease <file> -state <state>/shard<i>`), each
//     compiling its lease into an explicit key-set plan
//     (shard.Plan.Keys — the Plan extension beyond i/N hashing),
//     executing it on the global scheduler against its private shard
//     store, and writing heartbeat files
//     (worker<i>.heartbeat.json: lease generation, pid, and the keys
//     whose outcomes are recorded). Child processes are launched
//     through a pluggable command template (coord.ExecSpawner expands
//     {lease}, {state}, {worker}), so an SSH or k8s launcher is the
//     same protocol over a shared filesystem.
//
//   - Steal. When a worker drains while a laggard still has more than
//     K (-steal-min) keys pending — pending meaning keys that will
//     cost fresh simulation: neither heartbeat-done nor already
//     persisted in the laggard's store — the coordinator moves half of
//     the laggard's remaining keys (the deterministic suffix of its
//     lease order) to the idle worker and relaunches it. Lease writes
//     are ordered thief-first so a crash can leave a key in two leases
//     (harmless: duplicate execution is safe under the merge's
//     freshest-wins stamps) but never in none. The laggard's lease
//     watcher observes the shrink between outcomes and its scheduler
//     gate yields stolen keys (inject.ErrYielded, reported as
//     Report.Yielded — not harness failures) instead of executing
//     them. BenchmarkWorkStealing measures the payoff: under a skewed
//     SimCostDelay (one worker 20x slower), stealing cuts the
//     campaign's wall clock ~3x vs the static partition.
//
//   - Merge. When every worker drains, the coordinator folds the shard
//     stores into the canonical store at the state root (shard.Merge)
//     and prints fingerprints — byte-identical to an unsharded run's.
//
// Interruption is first-class: SIGINT reaches the workers, each saves
// its finished outcomes, and the leases stay on disk. A rerun whose
// campaign identity matches (manifest.json: worker count, schema
// fingerprint, options identity, constraint-set fingerprints) resumes
// from the leases, replaying persisted outcomes and executing only the
// remainder — zero duplicated fresh sim cost; any mismatch re-plans
// from scratch. Every state directory is guarded by an exclusive
// writer lock (campaignstore.Store.Lock, an O_EXCL lock file with
// stale-lock takeover): the coordinator locks the root, each worker
// its shard directory, and a stray concurrent `spexinj -state` run
// fails fast instead of silently racing snapshot saves.
//
// Worker processes that die on an error are respawned on their
// unchanged lease up to a bounded retry budget
// (coord.Config.WorkerRetries, `spexinj -worker-retries`, default 1)
// before the campaign aborts — a retried worker replays its persisted
// outcomes, so a retry costs one spawn, never duplicated simulation.
// The worker command template is caller-replaceable (`spexinj -spawn`,
// expanded per worker by coord.ExpandArgv): an SSH preset distributes
// workers across machines sharing the state directory.
//
// # Locking hierarchy
//
// The writer lock comes in two granularities, both the same on-disk
// mechanism (an atomically hard-linked lock file carrying pid/host,
// mtime-refreshed while held, with stale-lock takeover):
//
//   - the whole-directory lock (campaignstore.Store.Lock, .spex.lock)
//     claims every system in a state directory at once — the CLI mode:
//     spexinj, spexeval and spexmerge take it for the length of a run,
//     and Lock.Set() views it as a LockSet covering all systems;
//   - per-system locks (Store.LockSystem / LockSystems,
//     <system>.spex.lock) claim exactly the systems a campaign
//     touches, so writers over disjoint systems share one directory
//     concurrently. A LockSet is all-or-nothing: claims are taken in
//     sorted order and the whole set rolls back on any conflict, so
//     two sets can never hold-and-wait against each other.
//
// The granularities exclude each other across processes — Lock refuses
// while live foreign per-system locks exist, LockSystem refuses under
// a live foreign directory lock — but nest within one process (same
// pid and host): the daemon holds each namespace's directory lock for
// its lifetime while its jobs claim per-system locks under it. Either
// way, the handle is the write capability: Save and NewStreamWriter
// live on Lock, SystemLock and LockSet, and a set routes each snapshot
// to the claim scoped to its system.
//
// # Campaign service daemon
//
// cmd/spexd and internal/server turn the whole stack into a resident
// multi-tenant service. One daemon owns a root state directory and
// hosts namespaces under it — the default namespace is the root itself
// (bare /v1 URLs, the single-tenant layout), and every route repeats
// under /v1/ns/{name} for tenants at <root>/<name>/, each a full state
// directory with its own store, journal, queues and quotas, created on
// first job submission. The JSON HTTP API: POST /v1/jobs submits a
// campaign (named systems or all, pool width, optionally
// `coordinate: N` to embed the work-stealing coordinator), GET
// /v1/jobs/{id} reports status, DELETE cancels through the engine's
// context plumbing (finished outcomes persist; the store resumes), and
// GET /v1/jobs/{id}/events streams live progress over Server-Sent
// Events.
//
// Jobs are scheduled as a DAG over the per-system locks: each job
// claims exactly the systems it campaigns (all-or-nothing, from a
// reservation board under the scheduler's mutex, then as real lock
// files), so jobs over disjoint systems run concurrently — up to
// Config.MaxConcurrentJobs per namespace — while jobs sharing a system
// serialize on that system, with stores byte-identical to a serial
// run. A spec's `needs: [jobID...]` adds explicit edges (a failed or
// cancelled dependency fails the dependent), and
// `stages: ["infer", "inject", "eval"]` turns the job into a
// per-system pipeline: every system advances through its stages
// independently, publishing each transition as a "stage" SSE event, so
// a fast system evaluates while a slow one is still injecting. Jobs
// are journaled durably under <ns>/jobs/: a restarted daemon lists
// finished jobs, adopts interrupted running jobs as failed (the
// snapshots hold every finished outcome — resubmit to resume), and
// re-queues jobs that never started.
//
// Progress flows through one shared pipeline end to end: the global
// scheduler emits shard.Progress events (typed like the single-system
// inject.Progress), a fan-out hub (shard.Hub, drop-oldest per lagging
// subscriber) broadcasts them, and every consumer — the CLI renderer
// (internal/progressui: per-system TTY bars, throttled one-line
// aggregate in logs), the daemon's SSE encoder, the coordinator's
// heartbeats — is just a subscriber.
//
// Reads are served lock-free from the store's outcome indexes, even
// while a job is writing: GET /v1/systems/{name}/outcomes pages through
// recorded outcomes (?limit/?offset, 1000 per page by default, 10000
// max, with whole-system tallies and a total count on every page), GET
// /v1/query answers cross-system misconfiguration queries (?param=,
// ?kind=, ?reaction=, ?min-systems=N, ?all=1), and GET /v1/tables/{n}
// renders the paper's evaluation tables from an index-backed replay
// (report.ReplayFromIndex + the structured report.Table encoding) —
// the text form is byte-identical to `spexeval -state <dir> -table n`
// over the same store, because the index docs carry exactly the fields
// the table builders consume and both render through
// report.RenderTableText. Every read endpoint carries an ETag derived
// from the snapshot fingerprint(s) it serves and answers If-None-Match
// with 304 Not Modified.
//
// # Binary snapshot format and the outcome index
//
// The snapshot container (internal/campaignstore's codec) is built for
// a million-outcome read path: after the magic "SPEXSNP1" and a
// uvarint-framed JSON header blob (schema fingerprint, system, save
// time, options identity, constraint set + fingerprint) come the
// outcome records — uvarint key length, key, varint freshness stamp
// (UnixNano), uvarint payload length, compact per-outcome JSON — in
// strictly ascending key order, then a zero terminator, a uvarint
// record count, and a CRC-32 trailer over everything before it. Record
// payloads stay JSON on purpose: they are exactly the bytes
// Snapshot.Fingerprint hashes, so a streaming writer folds the
// replay-equivalence fingerprint for free as records pass through, and
// migrating a JSON-era store to the binary container provably cannot
// change its fingerprint. The ascending key order is what makes
// spexmerge a bounded-memory k-way streaming merge: internal/shard
// opens one record iterator per shard, folds the minimum key's
// freshest copy (stamp, then lexicographically greatest shard
// directory) into a streaming writer, and never materializes a shard's
// outcome map. All fail-safe semantics carry over bit for bit — a
// truncated file, a flipped bit (CRC), a stale schema fingerprint, or
// mismatched options still falls back to a full campaign, and the
// legacy SPEX_SNAPSHOT_JSON=1 hatch reproduces the old JSON writer for
// compatibility tests.
//
// Beside each snapshot lives its outcome index
// (internal/outcomeindex, <system>.campaign.idx): a compact per-outcome
// projection (the fields the HTTP API and the tables consume — no log
// dumps, no env actions) plus posting lists keyed by parameter,
// constraint kind, reaction, and vulnerability source location, plus
// precomputed per-system aggregates (reaction tallies, vulnerability
// and unique-location counts — the Table 3/5 numbers). The index is
// rebuilt incrementally on every save by the same streaming writer
// that folds the fingerprint, and it is always derived data: the
// sidecar records the snapshot file's name, size and mtime, one stat
// call validates it, and any mismatch (or a deleted sidecar) triggers
// a rebuild from the snapshot. The daemon layers an in-memory copy on
// top with the same (path, size, mtime) revalidation per request, so
// cache invalidation needs no coupling to the job lifecycle: a save's
// atomic rename is the invalidation. `spexeval -index -state <dir>`
// renders all tables and figures from the indexes alone — read-only,
// no writer lock, no snapshot record parsed — byte-identical to a
// -state replay (report.ReplayFromIndex).
//
// # Checked invariants (spexlint)
//
// The contracts that hold this design together — writer locks acquired
// once per state directory and never on the serving or progress paths,
// contexts threaded instead of re-rooted, fingerprint inputs
// deterministic, the progress fan-out non-blocking — are enforced by a
// custom static-analysis suite, cmd/spexlint, runnable standalone
// (`spexlint ./...`) or as `go vet -vettool=$(which spexlint) ./...`
// and gated in CI. internal/analysis documents the full invariant
// catalogue and the //spexlint:ignore waiver syntax; the writer-lock
// half of the contract is structural — Save and NewStreamWriter live
// only on the Lock, SystemLock and LockSet handles, so holding a lock
// is a type-level precondition for writing, and only the acquisition
// discipline (at both granularities) is left to the analyzer.
//
// # Observability (internal/obs)
//
// Every layer of the stack is instrumented against one stdlib-only
// metrics registry (internal/obs): the engine records task latency,
// queue depth and cache hit/miss, the campaign store its save/load
// durations and snapshot sizes, the progress hub its emitted and
// dropped events, the coordinator its spawns, steals and heartbeat
// lag, the sim monitor every boot by reaction kind, and the daemon
// its per-endpoint HTTP latency, ETag revalidation traffic, and job
// lifecycle. spexd serves the registry at GET /metrics in Prometheus
// text format (plus net/http/pprof behind -pprof), and the CLIs dump
// it with -metrics-out <file> as JSON. The daemon also folds each
// job's progress stream into a span tree — job → system → misconf,
// steal spans for coordinate runs — journaled beside the job document
// and served at GET /v1/jobs/{id}/trace as JSON or indented text.
// Metric families register exactly once, at package level, under
// package-level name constants; the spexlint obsmetric analyzer
// enforces that discipline statically.
//
// # Dashboard and event bus
//
// internal/dash aggregates every namespace's activity onto one
// daemon-wide event bus: job lifecycle transitions, scheduler
// reservations and releases (with queue depth and running counts),
// per-system stage transitions, coordinator lifecycle events, and
// per-system progress folded from each job's shard.Hub stream —
// throttled to at most one event per (namespace, job, system) per
// 200ms so a hot campaign cannot flood subscribers, with first samples
// and completions always published. Events are typed and versioned
// (dash.Event stamps SchemaVersion plus a monotonic bus sequence
// number) and fan out with the same drop-oldest discipline as
// shard.Hub: each subscriber owns a bounded buffer, a slow consumer
// sheds its own oldest events (counted in spex_dash_dropped_total),
// and no consumer can stall a publisher — the hubsend spexlint
// analyzer rejects raw channel sends of dash.Event outside the
// package, exactly as it does shard.Progress outside shard.
//
// The daemon serves the bus at GET /v1/events (every namespace, SSE)
// and GET /v1/ns/{name}/events (one tenant's slice); frames carry the
// bus sequence as their SSE id, so a reconnecting client sends
// Last-Event-ID and replays only what it missed from the bus's ring
// (a comment frame flags the resume as truncated when the ring has
// moved past the requested id). Per-job streams
// (GET /v1/jobs/{id}/events) carry per-job event ids with the same
// resume semantics, and subscribing to an already-terminal job replays
// its backlog through the final state event and closes cleanly. Three
// consumers ship with the daemon: the embedded dashboard at GET /ui/
// (go:embed static assets, vanilla JS, zero external dependencies —
// live namespace and job tables, progress bars, /metrics gauges, and
// outcome drill-down over the ETag read path), the remote-attach TUI
// cmd/spexwatch (the internal/progressui renderer fed from a remote
// SSE stream, reconnecting with backoff and Last-Event-ID resume),
// and anything that can parse SSE — `curl -N host:port/v1/events`.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package spex
