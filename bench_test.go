// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4), plus ablations for the design decisions DESIGN.md calls out: the
// MAY-belief confidence threshold, the value-relationship hop budget, and
// the injection-campaign optimizations.
package spex_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"spex/internal/annot"
	"spex/internal/apispec"
	"spex/internal/casedb"
	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/designcheck"
	"spex/internal/engine"
	"spex/internal/frontend"
	"spex/internal/inject"
	"spex/internal/mapping"
	"spex/internal/report"
	"spex/internal/shard"
	"spex/internal/sim"
	"spex/internal/spex"
	"spex/internal/targets"
	"spex/internal/targets/ftpd"
	"spex/internal/targets/minicorpus"
	"spex/internal/targets/mydb"
)

var (
	analyzeOnce sync.Once
	allResults  []*report.SystemResult
	analyzeErr  error
)

func analyzed(b *testing.B) []*report.SystemResult {
	b.Helper()
	analyzeOnce.Do(func() {
		allResults, analyzeErr = report.AnalyzeAllContext(context.Background(), report.AnalyzeOptions{})
	})
	if analyzeErr != nil {
		b.Fatal(analyzeErr)
	}
	return allResults
}

func inferred(b *testing.B, name string) *spex.Result {
	b.Helper()
	for _, r := range analyzed(b) {
		if r.Sys.Name() == name {
			return r.Inference
		}
	}
	b.Fatalf("system %s not analyzed", name)
	return nil
}

// BenchmarkTable1MappingSurvey extracts mapping pairs for all 11 surveyed
// snippets (Table 1).
func BenchmarkTable1MappingSurvey(b *testing.B) {
	projects := minicorpus.Projects()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, p := range projects {
			proj, err := frontend.Parse(p.Name, p.Sources)
			if err != nil {
				b.Fatal(err)
			}
			af, err := annot.Parse(p.Annotations)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := mapping.Extract(proj, af); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable2Generation generates misconfigurations for every inferred
// constraint of mydb (Table 2's rules exercised end to end).
func BenchmarkTable2Generation(b *testing.B) {
	res := inferred(b, "mydb")
	tmpl, err := conffile.Parse(mydb.New().DefaultConfig(), conffile.SyntaxEquals)
	if err != nil {
		b.Fatal(err)
	}
	reg := confgen.NewRegistry()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ms := reg.Generate(res.Set, tmpl)
		if len(ms) == 0 {
			b.Fatal("no misconfigurations")
		}
	}
}

// BenchmarkTable3Classification classifies one injected misconfiguration
// through boot + tests (Table 3's taxonomy exercised).
func BenchmarkTable3Classification(b *testing.B) {
	res := inferred(b, "mydb")
	sys := mydb.New()
	tmpl, _ := conffile.Parse(sys.DefaultConfig(), conffile.SyntaxEquals)
	ms := confgen.NewRegistry().Generate(res.Set, tmpl)
	one := ms[:1]
	opts := inject.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inject.Run(sys, one, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Inventory parses every target corpus and counts LoC,
// parameters, and annotation lines (Table 4).
func BenchmarkTable4Inventory(b *testing.B) {
	systems := targets.All()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, sys := range systems {
			if _, err := frontend.Parse(sys.Name(), sys.Sources()); err != nil {
				b.Fatal(err)
			}
			if _, err := annot.Parse(sys.Annotations()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable5Campaign runs mydb's full injection campaign (Table 5).
func BenchmarkTable5Campaign(b *testing.B) {
	res := inferred(b, "mydb")
	sys := mydb.New()
	tmpl, _ := conffile.Parse(sys.DefaultConfig(), conffile.SyntaxEquals)
	ms := confgen.NewRegistry().Generate(res.Set, tmpl)
	opts := inject.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := inject.Run(sys, ms, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Vulnerabilities()) == 0 {
			b.Fatal("campaign exposed nothing")
		}
	}
}

// BenchmarkCampaignParallel runs the Table 5 workload (mydb's full
// injection campaign) through the engine worker pool at several widths,
// tracking the concurrent campaign engine's speedup in the perf
// trajectory. SimCostDelay gives the campaign the paper's cost shape —
// booting the target once per misconfiguration dominates (§3.1), which
// the hermetic simulation otherwise collapses to microseconds — so the
// scheduler's overlap is what the benchmark measures. Outcomes are
// order-deterministic, so every width produces the identical report.
func BenchmarkCampaignParallel(b *testing.B) {
	res := inferred(b, "mydb")
	sys := mydb.New()
	tmpl, _ := conffile.Parse(sys.DefaultConfig(), conffile.SyntaxEquals)
	ms := confgen.NewRegistry().Generate(res.Set, tmpl)
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := inject.DefaultOptions()
			opts.Workers = workers
			opts.SimCostDelay = 200 * time.Microsecond
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := inject.Run(sys, ms, opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Vulnerabilities()) == 0 {
					b.Fatal("campaign exposed nothing")
				}
			}
		})
	}
}

// BenchmarkGlobalScheduler compares the two -all scheduling shapes over
// the full seven-target injection workload with the paper's
// boot-dominated cost shape (SimCostDelay, as in
// BenchmarkCampaignParallel): "per-target" fans the systems out on the
// pool with each campaign sequential inside (the pre-shard spexinj
// -all), "global" flattens every system's misconfigurations into one
// round-robin interleaved queue (internal/shard). Per-target wall-clock
// is bounded below by the single largest campaign — once the small
// targets drain, workers idle; global keeps the pool busy until the
// whole queue drains. The utilization metric is busy time over pool
// capacity (1.0 = no idle workers); the reports are identical either
// way, so utilization is the entire difference.
func BenchmarkGlobalScheduler(b *testing.B) {
	rs := analyzed(b)
	ws := make([]shard.Workload, 0, len(rs))
	for _, r := range rs {
		tmpl, err := conffile.Parse(r.Sys.DefaultConfig(), r.Sys.Syntax())
		if err != nil {
			b.Fatal(err)
		}
		ms := confgen.NewRegistry().Generate(r.Inference.Set, tmpl)
		ws = append(ws, shard.Workload{Sys: r.Sys, Set: r.Inference.Set, Ms: ms})
	}
	const workers = 4
	const delay = 200 * time.Microsecond
	utilization := func(cost int, elapsed time.Duration) float64 {
		busy := time.Duration(cost) * delay
		return busy.Seconds() / (elapsed.Seconds() * workers)
	}

	b.Run("per-target", func(b *testing.B) {
		opts := inject.DefaultOptions()
		opts.SimCostDelay = delay
		opts.Workers = 1
		cost := 0
		start := time.Now()
		for i := 0; i < b.N; i++ {
			results, _ := engine.Run(context.Background(), len(ws),
				func(ctx context.Context, j int) (*inject.Report, error) {
					return inject.RunContext(ctx, ws[j].Sys, ws[j].Ms, opts)
				}, engine.Options[*inject.Report]{Workers: workers})
			if err := engine.FirstError(results); err != nil {
				b.Fatal(err)
			}
			cost = 0
			for _, r := range results {
				cost += r.Value.TotalSimCost
			}
		}
		b.ReportMetric(utilization(cost*b.N, time.Since(start)), "utilization")
	})
	b.Run("global", func(b *testing.B) {
		opts := inject.DefaultOptions()
		opts.SimCostDelay = delay
		cost := 0
		start := time.Now()
		for i := 0; i < b.N; i++ {
			reps, err := shard.RunGlobal(context.Background(), ws,
				shard.Options{Workers: workers, Inject: opts})
			if err != nil {
				b.Fatal(err)
			}
			cost = 0
			for _, rep := range reps {
				cost += rep.TotalSimCost
			}
		}
		b.ReportMetric(utilization(cost*b.N, time.Since(start)), "utilization")
	})
}

// BenchmarkAnalyzeAllParallel runs the full seven-system evaluation
// pipeline at several fan-out widths (the spexeval hot path).
func BenchmarkAnalyzeAllParallel(b *testing.B) {
	for _, workers := range []int{1, 7} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rs, err := report.AnalyzeAllContext(context.Background(),
					report.AnalyzeOptions{Workers: workers, CampaignWorkers: 4})
				if err != nil {
					b.Fatal(err)
				}
				if len(rs) != 7 {
					b.Fatal("missing systems")
				}
			}
		})
	}
}

// BenchmarkTable6CaseSensitivity, Table7Units, Table8ErrorProne run the
// design audit over every analyzed system (Tables 6-8 derive from it).
func BenchmarkTable6CaseSensitivity(b *testing.B) {
	rs := analyzed(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rs {
			a := designcheck.Run(r.Inference)
			_ = a.CaseSensitive
		}
	}
}

func BenchmarkTable7Units(b *testing.B) {
	rs := analyzed(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rs {
			a := designcheck.Run(r.Inference)
			_ = a.SizeUnits
		}
	}
}

func BenchmarkTable8ErrorProne(b *testing.B) {
	rs := analyzed(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rs {
			a := designcheck.Run(r.Inference)
			_ = a.SilentOverruling + a.UnsafeTransform
		}
	}
}

// BenchmarkTable9CaseStudy generates and classifies the four historical
// case populations (Tables 9-10).
func BenchmarkTable9CaseStudy(b *testing.B) {
	res := inferred(b, "mydb")
	spec := casedb.PaperSpecs()[2] // mydb
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cases := casedb.Generate(spec, res.Set)
		st := casedb.Run(spec.System, cases, res.Set)
		if st.Total() != spec.Total() {
			b.Fatal("population mismatch")
		}
	}
}

func BenchmarkTable10Breakdown(b *testing.B) {
	res := inferred(b, "mydb")
	spec := casedb.PaperSpecs()[2]
	cases := casedb.Generate(spec, res.Set)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := casedb.Run(spec.System, cases, res.Set)
		_ = st.Count(casedb.CategoryCrossSW)
	}
}

// BenchmarkTable11Inference runs the full constraint-inference pipeline for
// one target (Table 11).
func BenchmarkTable11Inference(b *testing.B) {
	sys := mydb.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := spex.InferSystem(sys)
		if err != nil {
			b.Fatal(err)
		}
		if res.Set.Len() == 0 {
			b.Fatal("no constraints")
		}
	}
}

// BenchmarkTable12Accuracy scores inference against ground truth.
func BenchmarkTable12Accuracy(b *testing.B) {
	res := inferred(b, "mydb")
	gt := mydb.New().GroundTruth()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := spex.Score(res.Set, gt)
		if len(acc) == 0 {
			b.Fatal("no accuracy data")
		}
	}
}

// BenchmarkFigure3Examples renders the per-kind constraint examples.
func BenchmarkFigure3Examples(b *testing.B) {
	rs := analyzed(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := report.Figure3(rs); len(s) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure5Injections reruns the six rule-by-rule injections.
func BenchmarkFigure5Injections(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Vulnerabilities reruns the five category examples.
func BenchmarkFigure7Vulnerabilities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationConfidenceThreshold sweeps the MAY-belief threshold
// (paper §2.2.4, default 0.75) over ftpd — the system with the
// listen/listen_ipv6 false-positive pattern — and reports control-dep
// precision/recall per setting.
func BenchmarkAblationConfidenceThreshold(b *testing.B) {
	sys := ftpd.New()
	gt := sys.GroundTruth()
	for _, th := range []float64{0.10, 0.50, 0.75, 1.0} {
		th := th
		b.Run(benchName("threshold", th), func(b *testing.B) {
			var prec, rec float64
			for i := 0; i < b.N; i++ {
				res, err := spex.Infer(sys.Name(), sys.Sources(), sys.Annotations(),
					sys.Manual(), mustDB(sys), spex.Options{DepConfidence: th, MaxRelHops: 1})
				if err != nil {
					b.Fatal(err)
				}
				acc := spex.Score(res.Set, gt)[constraint.KindControlDep]
				recall := spex.Recall(res.Set, gt)[constraint.KindControlDep]
				prec = acc.Ratio()
				rec = recall.Ratio()
			}
			if prec >= 0 {
				b.ReportMetric(prec, "precision")
			}
			if rec >= 0 {
				b.ReportMetric(rec, "recall")
			}
		})
	}
}

// BenchmarkAblationRelHops sweeps the value-relationship transitivity
// budget (paper §2.2.5, default 1 intermediate variable).
func BenchmarkAblationRelHops(b *testing.B) {
	sys := mydb.New()
	for _, hops := range []int{1, 2, 4} {
		hops := hops
		b.Run(benchName("hops", float64(hops)), func(b *testing.B) {
			var count int
			for i := 0; i < b.N; i++ {
				res, err := spex.Infer(sys.Name(), sys.Sources(), sys.Annotations(),
					sys.Manual(), mustDB(sys), spex.Options{DepConfidence: 0.75, MaxRelHops: hops})
				if err != nil {
					b.Fatal(err)
				}
				count = len(res.Set.ByKind(constraint.KindValueRel))
			}
			b.ReportMetric(float64(count), "relationships")
		})
	}
}

// BenchmarkAblationCampaignOptimizations measures the simulated campaign
// cost with and without the paper's two optimizations (§3.1: shortest test
// first, stop at first failure — "under 10 hours" on the real systems).
func BenchmarkAblationCampaignOptimizations(b *testing.B) {
	res := inferred(b, "Storage-A")
	sys := targets.ByName("Storage-A")
	tmpl, _ := conffile.Parse(sys.DefaultConfig(), conffile.SyntaxEquals)
	ms := confgen.NewRegistry().Generate(res.Set, tmpl)
	for _, optimized := range []bool{true, false} {
		optimized := optimized
		name := "optimized"
		if !optimized {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			opts := inject.DefaultOptions()
			opts.SortTests = optimized
			opts.StopOnFirstFailure = optimized
			var cost int
			for i := 0; i < b.N; i++ {
				rep, err := inject.Run(sys, ms, opts)
				if err != nil {
					b.Fatal(err)
				}
				cost = rep.TotalSimCost
			}
			b.ReportMetric(float64(cost), "sim-cost")
		})
	}
}

func benchName(prefix string, v float64) string {
	return fmt.Sprintf("%s=%v", prefix, v)
}

// mustDB builds the knowledge base for a system, importing proprietary
// APIs when the target ships them.
func mustDB(sys sim.System) *apispec.DB {
	db := apispec.New()
	if imp, ok := sys.(spex.APIImporter); ok {
		imp.ImportAPIs(db)
	}
	return db
}
