package outcomeindex

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/inject"
)

// fixture builds a system's outcome map with a known mix of reactions,
// harness errors, and source locations.
func fixture(system string, n int) map[string]inject.Outcome {
	reactions := []inject.Reaction{
		inject.ReactionCrash, inject.ReactionFuncFailure,
		inject.ReactionTolerated, inject.ReactionEarlyTerm,
	}
	out := make(map[string]inject.Outcome, n)
	for i := 0; i < n; i++ {
		c := &constraint.Constraint{
			Kind:  constraint.KindBasicType,
			Param: fmt.Sprintf("param%d", i%4),
			Basic: constraint.BasicString,
			Loc:   constraint.SourceLoc{File: fmt.Sprintf("%s.c", system), Line: 100 + i%3, Func: "parse"},
		}
		o := inject.Outcome{
			Misconf: confgen.Misconf{
				ID: fmt.Sprintf("m%03d", i), Param: c.Param, Rule: "null",
				Values: map[string]string{c.Param: "bad"}, Violates: c,
			},
			Reaction: reactions[i%len(reactions)],
			Loc:      c.Loc,
			SimCost:  i,
		}
		if i%7 == 6 {
			o.Err = "boot failed"
		}
		out[inject.CacheKey(o.Misconf)] = o
	}
	return out
}

func build(system string, n int) *System {
	return Build(Meta{System: system, Fingerprint: "fp-" + system, Options: "opts", SetFingerprint: "set"}, fixture(system, n))
}

// TestAggregatesMatchReport: the precomputed tallies must equal what
// inject.Report computes from the same outcomes — the aggregates ARE
// the table numbers.
func TestAggregatesMatchReport(t *testing.T) {
	outcomes := fixture("alpha", 29)
	sys := Build(Meta{System: "alpha"}, outcomes)

	rep := &inject.Report{System: "alpha"}
	for _, o := range outcomes {
		rep.Outcomes = append(rep.Outcomes, o)
	}
	wantByReaction := map[string]int{}
	for r, c := range rep.CountByReaction() {
		wantByReaction[r.String()] = c
	}
	if !reflect.DeepEqual(sys.Agg.ByReaction, wantByReaction) {
		t.Fatalf("ByReaction = %v, want %v", sys.Agg.ByReaction, wantByReaction)
	}
	if sys.Agg.Vulnerabilities != len(rep.Vulnerabilities()) {
		t.Fatalf("Vulnerabilities = %d, want %d", sys.Agg.Vulnerabilities, len(rep.Vulnerabilities()))
	}
	if sys.Agg.UniqueLocations != rep.UniqueLocations() {
		t.Fatalf("UniqueLocations = %d, want %d", sys.Agg.UniqueLocations, rep.UniqueLocations())
	}
	if sys.Agg.Outcomes != len(outcomes) {
		t.Fatalf("Outcomes = %d, want %d", sys.Agg.Outcomes, len(outcomes))
	}
	if sys.Agg.Errors != len(rep.Errors()) {
		t.Fatalf("Errors = %d, want %d", sys.Agg.Errors, len(rep.Errors()))
	}
}

func TestPostingListsAndDocOrder(t *testing.T) {
	sys := build("alpha", 20)
	for i := 1; i < len(sys.Docs); i++ {
		if sys.Docs[i-1].Key >= sys.Docs[i].Key {
			t.Fatalf("docs out of key order at %d: %q >= %q", i, sys.Docs[i-1].Key, sys.Docs[i].Key)
		}
	}
	// Every posting list position must point at a doc matching its key,
	// and the union of ByParam must cover every doc.
	covered := 0
	for param, list := range sys.ByParam {
		covered += len(list)
		for _, i := range list {
			if sys.Docs[i].Param != param {
				t.Fatalf("ByParam[%q] points at doc with param %q", param, sys.Docs[i].Param)
			}
		}
	}
	if covered != len(sys.Docs) {
		t.Fatalf("ByParam covers %d docs, want %d", covered, len(sys.Docs))
	}
	for name, list := range sys.ByReaction {
		for _, i := range list {
			d := &sys.Docs[i]
			if d.Err != "" || d.ReactionName() != name {
				t.Fatalf("ByReaction[%q] points at err=%q reaction=%q", name, d.Err, d.ReactionName())
			}
		}
	}
	for _, i := range sys.Vulnerable {
		if !sys.Docs[i].Vulnerability() {
			t.Fatalf("Vulnerable lists non-vulnerability doc %d", i)
		}
	}
	for _, d := range sys.Docs {
		if !sys.Has(d.Key) {
			t.Fatalf("Has(%q) = false for an indexed key", d.Key)
		}
	}
	if sys.Has("no-such-key") {
		t.Fatal("Has reports a key the index does not hold")
	}
}

func TestQueryRun(t *testing.T) {
	// Three systems share param0-param3; sizes differ so group counts
	// differ per system.
	systems := []*System{build("alpha", 24), build("beta", 16), build("gamma", 8)}

	// Default query: vulnerability groups across all systems, sorted by
	// reach descending.
	groups := Run(systems, Query{})
	if len(groups) == 0 {
		t.Fatal("default query found nothing")
	}
	for i := 1; i < len(groups); i++ {
		if len(groups[i-1].Systems) < len(groups[i].Systems) {
			t.Fatalf("groups not sorted by system reach: %v before %v", groups[i-1], groups[i])
		}
	}
	for _, g := range groups {
		if g.Vulnerabilities == 0 {
			t.Fatalf("default (vulnerability) query returned a group without vulnerabilities: %+v", g)
		}
	}

	// Param filter narrows to one family.
	p0 := Run(systems, Query{Param: "param0"})
	for _, g := range p0 {
		if g.Param != "param0" {
			t.Fatalf("param filter leaked %q", g.Param)
		}
	}
	if len(p0) == 0 {
		t.Fatal("param filter found nothing")
	}

	// MinSystems drops groups below the reach bar.
	all := Run(systems, Query{MinSystems: 3})
	for _, g := range all {
		if len(g.Systems) < 3 {
			t.Fatalf("min-systems=3 kept a %d-system group: %+v", len(g.Systems), g)
		}
	}

	// All=true includes tolerated/errored outcomes in the counts.
	withAll := Run(systems, Query{All: true})
	defOutcomes, allOutcomes := 0, 0
	for _, g := range groups {
		defOutcomes += g.Outcomes
	}
	for _, g := range withAll {
		allOutcomes += g.Outcomes
	}
	if allOutcomes <= defOutcomes {
		t.Fatalf("All=true matched %d outcomes, default %d — expected strictly more", allOutcomes, defOutcomes)
	}

	// Reaction filter only returns err-free docs with that reaction.
	crash := Run(systems, Query{Reaction: inject.ReactionCrash.String(), All: true})
	for _, g := range crash {
		if g.Reactions[inject.ReactionCrash.String()] != g.Outcomes {
			t.Fatalf("reaction filter leaked other reactions: %+v", g)
		}
	}
}

func TestSidecarRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "alpha.campaign.idx")
	sys := build("alpha", 10)
	f := &File{Version: Version, Snap: "alpha.campaign.snap", SnapSize: 1234, SnapMTime: 99, Sys: sys}
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Snap != f.Snap || got.SnapSize != f.SnapSize || got.SnapMTime != f.SnapMTime {
		t.Fatalf("sidecar identity lost: %+v", got)
	}
	if got.Sys.System != "alpha" || len(got.Sys.Docs) != len(sys.Docs) ||
		!reflect.DeepEqual(got.Sys.Agg, sys.Agg) {
		t.Fatal("sidecar index content lost")
	}

	// A version from the future is stale, not trusted.
	f.Version = Version + 1
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("version-mismatched sidecar accepted")
	}
}
