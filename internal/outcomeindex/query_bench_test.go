package outcomeindex

import (
	"encoding/json"
	"fmt"
	"testing"

	"spex/internal/inject"
)

// BenchmarkIndexQuery compares the daemon's two possible query paths on
// a 7-system, 70k-outcome store: answering from the in-memory outcome
// indexes (the shipped read path — posting lists plus precomputed
// aggregates) versus re-parsing each system's JSON outcome document and
// scanning it, which is what serving from snapshots directly costs.
// The acceptance bar is indexed >= 10x faster than the re-parse.
func BenchmarkIndexQuery(b *testing.B) {
	const perSystem = 10000
	var systems []*System
	var jsonDocs [][]byte
	for s := 0; s < 7; s++ {
		name := fmt.Sprintf("sys%d", s)
		outcomes := fixture(name, perSystem)
		systems = append(systems, Build(Meta{System: name}, outcomes))
		data, err := json.Marshal(outcomes)
		if err != nil {
			b.Fatal(err)
		}
		jsonDocs = append(jsonDocs, data)
	}
	q := Query{Param: "param3", MinSystems: 2}

	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if groups := Run(systems, q); len(groups) == 0 {
				b.Fatal("query found nothing")
			}
		}
	})
	b.Run("json-reparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// The snapshot-direct path: parse every system's outcome
			// document, then scan it with the same filters.
			var scanned []*System
			for s, data := range jsonDocs {
				var outcomes map[string]inject.Outcome
				if err := json.Unmarshal(data, &outcomes); err != nil {
					b.Fatal(err)
				}
				scanned = append(scanned, Build(Meta{System: fmt.Sprintf("sys%d", s)}, outcomes))
			}
			if groups := Run(scanned, q); len(groups) == 0 {
				b.Fatal("query found nothing")
			}
		}
	})
}
