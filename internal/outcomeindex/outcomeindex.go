// Package outcomeindex builds and persists an inverted index over a
// campaign's recorded outcomes — the read-side companion of the binary
// snapshot format in internal/campaignstore. A snapshot answers "replay
// this exact campaign"; the index answers the daemon's query traffic
// ("this system's outcomes, page 3", "which misconfigurations break
// more than N systems?", "table 5's tallies") without re-parsing a
// snapshot at all.
//
// The shape is keyword → posting list: every outcome becomes one
// compact Doc (the projection the API and the tables actually consume —
// no log dumps, no env actions, no constraint payloads), and posting
// lists map each parameter, constraint kind, reaction, and source
// location to the positions of its docs. Per-system aggregates
// (reaction tallies, vulnerability and unique-location counts) are
// precomputed at build time, so serving table 3/5 is a map lookup, not
// a scan.
//
// An index is derived data, never authoritative: it is rebuilt from its
// snapshot whenever the sidecar is missing or stale (the sidecar
// records the snapshot file's size and mtime; any mismatch invalidates
// it), so deleting every *.campaign.idx file is always safe.
package outcomeindex

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"spex/internal/constraint"
	"spex/internal/inject"
)

// Version is the sidecar layout version. A sidecar written under a
// different version is treated as stale and rebuilt from its snapshot.
const Version = 1

// Doc is one indexed outcome: the projection of inject.Outcome that the
// HTTP API and the evaluation tables consume. Docs are stored in
// ascending Key order, so posting lists (positions into Docs) enumerate
// outcomes deterministically.
type Doc struct {
	// Key is the outcome's replay identity (inject.CacheKey).
	Key string `json:"key"`
	// ID, Param, Rule and Description identify the misconfiguration.
	ID          string `json:"id"`
	Param       string `json:"param"`
	Rule        string `json:"rule,omitempty"`
	Description string `json:"description,omitempty"`
	// Kind names the violated constraint's kind ("" when unknown).
	Kind string `json:"kind,omitempty"`
	// Reaction is the persisted inject.Reaction value.
	Reaction int `json:"reaction"`
	// Err is the harness failure, if any; errored docs are excluded
	// from reaction tallies exactly like Report.CountByReaction.
	Err        string `json:"err,omitempty"`
	Pinpointed bool   `json:"pinpointed,omitempty"`
	FailedTest string `json:"failed_test,omitempty"`
	// File/Line/Func are the violated constraint's source location.
	File    string `json:"file,omitempty"`
	Line    int    `json:"line,omitempty"`
	Func    string `json:"func,omitempty"`
	SimCost int    `json:"sim_cost,omitempty"`
}

// Vulnerability reports whether the doc's reaction counts as a
// misconfiguration vulnerability (errored docs never do).
func (d *Doc) Vulnerability() bool {
	return d.Err == "" && inject.Reaction(d.Reaction).Vulnerability()
}

// ReactionName renders the doc's reaction.
func (d *Doc) ReactionName() string { return inject.Reaction(d.Reaction).String() }

// LocString renders the doc's source location like
// constraint.SourceLoc.String.
func (d *Doc) LocString() string {
	return constraint.SourceLoc{File: d.File, Line: d.Line, Func: d.Func}.String()
}

// Aggregates precomputes the per-system tallies the tables and the
// outcomes endpoint serve.
type Aggregates struct {
	// Outcomes counts every doc, errored ones included.
	Outcomes int `json:"outcomes"`
	// Errors counts harness failures (excluded from ByReaction).
	Errors int `json:"errors,omitempty"`
	// ByReaction tallies err-free docs per reaction name — the same
	// numbers as inject.Report.CountByReaction.
	ByReaction map[string]int `json:"by_reaction"`
	// Vulnerabilities counts err-free docs whose reaction is a
	// vulnerability.
	Vulnerabilities int `json:"vulnerabilities"`
	// UniqueLocations counts distinct file:line locations behind the
	// vulnerabilities (Table 5b).
	UniqueLocations int `json:"unique_locations"`
}

// System is one system's index: docs, posting lists, and aggregates,
// plus the snapshot identity it was derived from.
type System struct {
	// System is the target system's name.
	System string `json:"system"`
	// Fingerprint is the source snapshot's replay-equivalence hash
	// (campaignstore.Snapshot.Fingerprint) — the ETag of every read
	// endpoint serving this system.
	Fingerprint string `json:"fingerprint"`
	// SavedAt, Options and SetFingerprint mirror the snapshot header.
	SavedAt        time.Time `json:"saved_at"`
	Options        string    `json:"options"`
	SetFingerprint string    `json:"set_fingerprint"`
	// Docs holds every outcome's projection in ascending Key order.
	Docs []Doc `json:"docs"`
	// Posting lists: positions into Docs, ascending.
	ByParam    map[string][]int `json:"by_param"`
	ByKind     map[string][]int `json:"by_kind"`
	ByReaction map[string][]int `json:"by_reaction"`
	// ByLoc keys are "file:line".
	ByLoc map[string][]int `json:"by_loc"`
	// Vulnerable lists the vulnerability docs.
	Vulnerable []int `json:"vulnerable"`
	// Agg holds the precomputed tallies.
	Agg Aggregates `json:"agg"`

	keyPos map[string]int // lazy Key -> position
}

// Meta identifies the snapshot an index is built from.
type Meta struct {
	System         string
	Fingerprint    string
	SavedAt        time.Time
	Options        string
	SetFingerprint string
}

// Builder accumulates docs one outcome at a time — the streaming hook
// campaignstore's snapshot writer feeds during Save and merge, so the
// index is rebuilt incrementally on every save instead of by a second
// pass over the store.
type Builder struct {
	meta Meta
	docs []Doc
}

// NewBuilder starts an index build for one system.
func NewBuilder(meta Meta) *Builder { return &Builder{meta: meta} }

// Add indexes one outcome. Callers add outcomes in ascending key order
// (the snapshot record order); Finish sorts defensively either way.
func (b *Builder) Add(key string, o inject.Outcome) {
	d := Doc{
		Key:         key,
		ID:          o.Misconf.ID,
		Param:       o.Misconf.Param,
		Rule:        o.Misconf.Rule,
		Description: o.Misconf.Description,
		Reaction:    int(o.Reaction),
		Err:         o.Err,
		Pinpointed:  o.Pinpointed,
		FailedTest:  o.FailedTest,
		File:        o.Loc.File,
		Line:        o.Loc.Line,
		Func:        o.Loc.Func,
		SimCost:     o.SimCost,
	}
	if o.Misconf.Violates != nil {
		d.Kind = o.Misconf.Violates.Kind.String()
	}
	b.docs = append(b.docs, d)
}

// SetFingerprint records the snapshot fingerprint once it is known —
// the streaming writer only has it after the last record.
func (b *Builder) SetFingerprint(fp string) { b.meta.Fingerprint = fp }

// Finish assembles the posting lists and aggregates.
func (b *Builder) Finish() *System {
	sort.Slice(b.docs, func(i, j int) bool { return b.docs[i].Key < b.docs[j].Key })
	sys := &System{
		System:         b.meta.System,
		Fingerprint:    b.meta.Fingerprint,
		SavedAt:        b.meta.SavedAt,
		Options:        b.meta.Options,
		SetFingerprint: b.meta.SetFingerprint,
		Docs:           b.docs,
		ByParam:        map[string][]int{},
		ByKind:         map[string][]int{},
		ByReaction:     map[string][]int{},
		ByLoc:          map[string][]int{},
		Agg:            Aggregates{ByReaction: map[string]int{}},
	}
	locs := map[string]bool{}
	for i := range sys.Docs {
		d := &sys.Docs[i]
		sys.Agg.Outcomes++
		sys.ByParam[d.Param] = append(sys.ByParam[d.Param], i)
		if d.Kind != "" {
			sys.ByKind[d.Kind] = append(sys.ByKind[d.Kind], i)
		}
		if d.Err != "" {
			sys.Agg.Errors++
			continue
		}
		name := d.ReactionName()
		sys.ByReaction[name] = append(sys.ByReaction[name], i)
		sys.Agg.ByReaction[name]++
		if d.Vulnerability() {
			sys.Vulnerable = append(sys.Vulnerable, i)
			sys.Agg.Vulnerabilities++
			loc := fmt.Sprintf("%s:%d", d.File, d.Line)
			sys.ByLoc[loc] = append(sys.ByLoc[loc], i)
			locs[loc] = true
		}
	}
	sys.Agg.UniqueLocations = len(locs)
	return sys
}

// Build indexes a full outcome map in one call — the rebuild path for
// stores whose sidecar is missing or stale.
func Build(meta Meta, outcomes map[string]inject.Outcome) *System {
	b := NewBuilder(meta)
	keys := make([]string, 0, len(outcomes))
	for k := range outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.Add(k, outcomes[k])
	}
	return b.Finish()
}

// Has reports whether the index holds an outcome for key.
func (s *System) Has(key string) bool {
	if s.keyPos == nil {
		s.keyPos = make(map[string]int, len(s.Docs))
		for i := range s.Docs {
			s.keyPos[s.Docs[i].Key] = i
		}
	}
	_, ok := s.keyPos[key]
	return ok
}

// ---- cross-system query ----

// Query filters the cross-system query endpoint evaluates over a set of
// system indexes. Zero-value fields do not filter.
type Query struct {
	// Param restricts to misconfigurations of this parameter.
	Param string
	// Kind restricts to misconfigurations violating this constraint
	// kind (constraint.Kind.String names).
	Kind string
	// Reaction restricts to docs with this reaction name.
	Reaction string
	// MinSystems keeps only groups seen in at least this many systems
	// (<=1 keeps all).
	MinSystems int
	// All includes non-vulnerability outcomes; the default answers
	// "which misconfigurations break systems", i.e. vulnerabilities
	// only.
	All bool
}

// Group is one query result: a (parameter, rule) misconfiguration
// family aggregated across systems.
type Group struct {
	Param string `json:"param"`
	Rule  string `json:"rule,omitempty"`
	Kind  string `json:"kind,omitempty"`
	// Systems lists the systems the group matched in, sorted.
	Systems []string `json:"systems"`
	// Outcomes and Vulnerabilities count matched docs across systems.
	Outcomes        int `json:"outcomes"`
	Vulnerabilities int `json:"vulnerabilities"`
	// Reactions tallies matched err-free docs per reaction name.
	Reactions map[string]int `json:"reactions"`
}

// Run evaluates the query over the given system indexes, grouping
// matched docs by (param, rule) and sorting groups by system reach
// (descending), then param, then rule. Posting lists narrow the scan:
// the starting list is the most selective of the param/kind/reaction
// filters, or the vulnerability list when no filter applies.
func Run(systems []*System, q Query) []Group {
	type gkey struct{ param, rule string }
	groups := map[gkey]*Group{}
	seen := map[gkey]map[string]bool{}
	for _, sys := range systems {
		for _, i := range sys.candidates(q) {
			d := &sys.Docs[i]
			if !q.matches(d) {
				continue
			}
			k := gkey{d.Param, d.Rule}
			g := groups[k]
			if g == nil {
				g = &Group{Param: d.Param, Rule: d.Rule, Kind: d.Kind, Reactions: map[string]int{}}
				groups[k] = g
				seen[k] = map[string]bool{}
			}
			if !seen[k][sys.System] {
				seen[k][sys.System] = true
				g.Systems = append(g.Systems, sys.System)
			}
			g.Outcomes++
			if d.Vulnerability() {
				g.Vulnerabilities++
			}
			if d.Err == "" {
				g.Reactions[d.ReactionName()]++
			}
		}
	}
	out := make([]Group, 0, len(groups))
	for _, g := range groups {
		if q.MinSystems > 1 && len(g.Systems) < q.MinSystems {
			continue
		}
		sort.Strings(g.Systems)
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Systems) != len(out[j].Systems) {
			return len(out[i].Systems) > len(out[j].Systems)
		}
		if out[i].Param != out[j].Param {
			return out[i].Param < out[j].Param
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// candidates picks the narrowest posting list for the query.
func (s *System) candidates(q Query) []int {
	var lists [][]int
	if q.Param != "" {
		lists = append(lists, s.ByParam[q.Param])
	}
	if q.Kind != "" {
		lists = append(lists, s.ByKind[q.Kind])
	}
	if q.Reaction != "" {
		lists = append(lists, s.ByReaction[q.Reaction])
	}
	if !q.All {
		lists = append(lists, s.Vulnerable)
	}
	if len(lists) == 0 {
		all := make([]int, len(s.Docs))
		for i := range all {
			all[i] = i
		}
		return all
	}
	best := lists[0]
	for _, l := range lists[1:] {
		if len(l) < len(best) {
			best = l
		}
	}
	return best
}

// matches re-checks every filter against one doc (the posting list only
// guaranteed one of them).
func (q Query) matches(d *Doc) bool {
	if q.Param != "" && d.Param != q.Param {
		return false
	}
	if q.Kind != "" && d.Kind != q.Kind {
		return false
	}
	if q.Reaction != "" && (d.Err != "" || d.ReactionName() != q.Reaction) {
		return false
	}
	if !q.All && !d.Vulnerability() {
		return false
	}
	return true
}

// ---- sidecar persistence ----

// File is the on-disk sidecar: the index plus the identity of the
// snapshot file it was derived from. A sidecar whose Snap/SnapSize/
// SnapMTime no longer match the snapshot on disk is stale and must be
// rebuilt — the mtime+size pair changes on every atomic snapshot
// rename, so a reader can validate freshness with one stat call.
type File struct {
	Version int `json:"version"`
	// Snap is the snapshot file's base name; SnapSize/SnapMTime its
	// size and mtime (UnixNano) at index-build time.
	Snap      string  `json:"snap"`
	SnapSize  int64   `json:"snap_size"`
	SnapMTime int64   `json:"snap_mtime"`
	Sys       *System `json:"sys"`
}

// WriteFile persists the sidecar atomically (temp file + rename). No
// fsync: the index is reconstructible from its snapshot.
func WriteFile(path string, f *File) error {
	data, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("outcomeindex: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("outcomeindex: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("outcomeindex: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("outcomeindex: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("outcomeindex: %w", err)
	}
	return nil
}

// ReadFile loads a sidecar. Any structural problem is an error; the
// caller treats every error as "stale, rebuild from the snapshot".
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("outcomeindex: corrupt sidecar %s: %w", path, err)
	}
	if f.Version != Version {
		return nil, fmt.Errorf("outcomeindex: sidecar %s is version %d, this build writes %d", path, f.Version, Version)
	}
	if f.Sys == nil {
		return nil, fmt.Errorf("outcomeindex: sidecar %s holds no index", path)
	}
	return &f, nil
}
