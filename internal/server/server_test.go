package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"spex/internal/campaignstore"
	"spex/internal/report"
	"spex/internal/server"
)

// daemon spins up a Server plus an httptest front end.
func daemon(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })
	return s, ts
}

func postJob(t *testing.T, base string, spec string) server.Job {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d %s", resp.StatusCode, body)
	}
	var doc server.Job
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("job document: %v\n%s", err, body)
	}
	return doc
}

func getJob(t *testing.T, base, id string) server.Job {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc server.Job
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func waitTerminal(t *testing.T, base, id string, timeout time.Duration) server.Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		doc := getJob(t, base, id)
		switch doc.State {
		case server.StateDone, server.StateFailed, server.StateCancelled:
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %s", id, doc.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// sseCollector consumes a job's event stream until the daemon closes
// it (terminal state) and records every event.
type sseCollector struct {
	mu     sync.Mutex
	events []server.Event
	done   chan struct{}
}

func collectSSE(t *testing.T, base, id string) *sseCollector {
	t.Helper()
	c := &sseCollector{done: make(chan struct{})}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("events content-type = %q", ct)
	}
	go func() {
		defer close(c.done)
		defer cancel()
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				var e server.Event
				if json.Unmarshal([]byte(data), &e) == nil {
					c.mu.Lock()
					c.events = append(c.events, e)
					c.mu.Unlock()
				}
			}
		}
	}()
	return c
}

func (c *sseCollector) wait(t *testing.T) []server.Event {
	t.Helper()
	select {
	case <-c.done:
	case <-time.After(2 * time.Minute):
		t.Fatal("SSE stream never closed")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]server.Event(nil), c.events...)
}

func (c *sseCollector) waitFor(t *testing.T, pred func(server.Event) bool, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		for _, e := range c.events {
			if pred(e) {
				c.mu.Unlock()
				return
			}
		}
		c.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatal("SSE stream never delivered the awaited event")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonEndToEnd is the acceptance run: submit an -all job over
// HTTP, observe SSE progress while it runs, then check that the state
// directory and the served tables are identical to what the CLI
// pipeline produces — fingerprints for the store, bytes for the text.
func TestDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	_, ts := daemon(t, server.Config{StateDir: dir, Workers: 4})

	// An empty store serves no tables yet.
	resp, err := http.Get(ts.URL + "/v1/tables/5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("tables on an empty store: %d, want 409", resp.StatusCode)
	}

	doc := postJob(t, ts.URL, `{"all": true, "workers": 4}`)
	sse := collectSSE(t, ts.URL, doc.ID)
	final := waitTerminal(t, ts.URL, doc.ID, 2*time.Minute)
	if final.State != server.StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	if len(final.Systems) != 7 {
		t.Fatalf("job summarizes %d systems, want 7", len(final.Systems))
	}
	fingerprints := map[string]string{}
	for _, sum := range final.Systems {
		if sum.Executed == 0 || sum.Fingerprint == "" {
			t.Errorf("%s summary incomplete: %+v", sum.System, sum)
		}
		fingerprints[sum.System] = sum.Fingerprint
	}

	events := sse.wait(t)
	var sawRunning, sawDone bool
	progress := 0
	for _, e := range events {
		switch {
		case e.Kind == "state" && e.State == server.StateRunning:
			sawRunning = true
		case e.Kind == "state" && e.State == server.StateDone:
			sawDone = true
		case e.Kind == "progress":
			if e.Progress == nil || e.Progress.System == "" {
				t.Fatalf("malformed progress event: %+v", e)
			}
			progress++
		}
	}
	if !sawRunning || !sawDone || progress == 0 {
		t.Fatalf("SSE stream incomplete: running=%v done=%v progress=%d", sawRunning, sawDone, progress)
	}

	// Served table text must be byte-identical to the CLI pipeline's
	// rendering of a fresh (storeless) analysis — the same claim the
	// CI smoke makes against a real spexeval run.
	live, err := report.AnalyzeAllContext(context.Background(), report.AnalyzeOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{3, 5, 9, 11} {
		wantText, err := report.RenderTableText(n, live)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get(fmt.Sprintf("%s/v1/tables/%d?format=text", ts.URL, n))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("table %d: %d %s", n, resp.StatusCode, body)
		}
		if string(body) != wantText+"\n" {
			t.Errorf("table %d text differs from the CLI rendering", n)
		}
		// The table carries the store-state ETag and honors it.
		if tag := resp.Header.Get("ETag"); tag == "" {
			t.Errorf("table %d has no ETag", n)
		} else {
			req, _ := http.NewRequest("GET", fmt.Sprintf("%s/v1/tables/%d?format=text", ts.URL, n), nil)
			req.Header.Set("If-None-Match", tag)
			cresp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			cresp.Body.Close()
			if cresp.StatusCode != http.StatusNotModified {
				t.Errorf("table %d with If-None-Match: %d, want 304", n, cresp.StatusCode)
			}
		}
		// And the JSON form must re-render to the same bytes.
		jresp, err := http.Get(fmt.Sprintf("%s/v1/tables/%d", ts.URL, n))
		if err != nil {
			t.Fatal(err)
		}
		var payload struct {
			Table  int             `json:"table"`
			Tables []*report.Table `json:"tables"`
		}
		if err := json.NewDecoder(jresp.Body).Decode(&payload); err != nil {
			t.Fatal(err)
		}
		jresp.Body.Close()
		parts := make([]string, len(payload.Tables))
		for i, tab := range payload.Tables {
			parts[i] = tab.String()
		}
		if got := strings.Join(parts, "\n"); got != wantText {
			t.Errorf("table %d JSON does not re-render to the text form", n)
		}
	}

	// Outcome serving.
	oresp, err := http.Get(ts.URL + "/v1/systems/proxyd/outcomes")
	if err != nil {
		t.Fatal(err)
	}
	var outcomes struct {
		System          string               `json:"system"`
		Outcomes        []server.OutcomeView `json:"outcomes"`
		Vulnerabilities int                  `json:"vulnerabilities"`
	}
	if err := json.NewDecoder(oresp.Body).Decode(&outcomes); err != nil {
		t.Fatal(err)
	}
	oresp.Body.Close()
	if outcomes.System != "proxyd" || len(outcomes.Outcomes) == 0 || outcomes.Vulnerabilities == 0 {
		t.Fatalf("outcome listing implausible: system=%q n=%d vulns=%d",
			outcomes.System, len(outcomes.Outcomes), outcomes.Vulnerabilities)
	}

	// A second job over the same store must replay everything at zero
	// fresh cost and land on the same fingerprint — the daemon is the
	// incremental pipeline behind an API.
	doc2 := postJob(t, ts.URL, `{"systems": ["proxyd"], "workers": 4}`)
	final2 := waitTerminal(t, ts.URL, doc2.ID, time.Minute)
	if final2.State != server.StateDone || len(final2.Systems) != 1 {
		t.Fatalf("replay job: %+v", final2)
	}
	sum := final2.Systems[0]
	if sum.Executed != 0 || sum.Replayed != sum.Outcomes || sum.SimCost != 0 {
		t.Errorf("replay job executed fresh work: %+v", sum)
	}
	if sum.Fingerprint != fingerprints["proxyd"] {
		t.Errorf("replay fingerprint %s != original %s", sum.Fingerprint, fingerprints["proxyd"])
	}
}

// TestDaemonCancellationLeavesResumableStore: DELETE on a running job
// cancels through the context plumbing; a follow-up job resumes from
// the persisted prefix instead of restarting the campaign.
func TestDaemonCancellationLeavesResumableStore(t *testing.T) {
	dir := t.TempDir()
	// One job slot, so the ldapd job below stays queued behind the
	// running proxyd job instead of dispatching concurrently.
	_, ts := daemon(t, server.Config{StateDir: dir, MaxConcurrentJobs: 1})

	// One worker and a per-unit delay keep the campaign running long
	// enough to cancel deterministically after the first outcome.
	doc := postJob(t, ts.URL, `{"systems": ["proxyd"], "workers": 1, "sim_delay": "5ms"}`)
	sse := collectSSE(t, ts.URL, doc.ID)
	sse.waitFor(t, func(e server.Event) bool { return e.Kind == "progress" }, time.Minute)

	// A job queued behind the running one cancels immediately and the
	// serial runner must skip it.
	queued := postJob(t, ts.URL, `{"systems": ["ldapd"]}`)
	qreq, err := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+queued.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	qresp, err := http.DefaultClient.Do(qreq)
	if err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE queued job: %d, want 200", qresp.StatusCode)
	}
	if got := getJob(t, ts.URL, queued.ID); got.State != server.StateCancelled {
		t.Fatalf("queued job state %s, want cancelled", got.State)
	}
	// Cancelling a terminal job conflicts.
	qresp2, err := http.DefaultClient.Do(qreq.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	qresp2.Body.Close()
	if qresp2.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE terminal job: %d, want 409", qresp2.StatusCode)
	}

	req, err := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+doc.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE running job: %d, want 202", resp.StatusCode)
	}
	final := waitTerminal(t, ts.URL, doc.ID, time.Minute)
	if final.State != server.StateCancelled || !final.CancelRequested {
		t.Fatalf("job ended %s (cancel_requested=%v), want cancelled by request", final.State, final.CancelRequested)
	}
	sse.wait(t)

	// The resumed job replays the persisted prefix and finishes the
	// rest — never a full restart.
	doc2 := postJob(t, ts.URL, `{"systems": ["proxyd"], "workers": 4}`)
	final2 := waitTerminal(t, ts.URL, doc2.ID, time.Minute)
	if final2.State != server.StateDone {
		t.Fatalf("resume job ended %s: %s", final2.State, final2.Error)
	}
	sum := final2.Systems[0]
	if sum.Replayed == 0 {
		t.Errorf("resume job replayed nothing; the cancelled run's outcomes were lost: %+v", sum)
	}
	if sum.Executed == 0 {
		t.Errorf("resume job executed nothing; cancellation skipped no work? %+v", sum)
	}
}

// TestDaemonCoordinateJob embeds the work-stealing coordinator behind
// the API with in-process workers.
func TestDaemonCoordinateJob(t *testing.T) {
	dir := t.TempDir()
	_, ts := daemon(t, server.Config{StateDir: dir, Workers: 2})

	doc := postJob(t, ts.URL, `{"systems": ["ldapd"], "coordinate": 2, "workers": 2}`)
	sse := collectSSE(t, ts.URL, doc.ID)
	final := waitTerminal(t, ts.URL, doc.ID, 2*time.Minute)
	if final.State != server.StateDone {
		t.Fatalf("coordinate job ended %s: %s", final.State, final.Error)
	}
	if final.Spawns < 2 {
		t.Errorf("coordinate job spawned %d workers, want >= 2", final.Spawns)
	}
	if len(final.Systems) != 1 || final.Systems[0].Fingerprint == "" {
		t.Fatalf("coordinate job summaries: %+v", final.Systems)
	}

	kinds := map[string]bool{}
	for _, e := range sse.wait(t) {
		if e.Kind == "coord" && e.Coord != nil {
			kinds[e.Coord.Kind] = true
		}
	}
	for _, want := range []string{"plan", "spawn", "merge"} {
		if !kinds[want] {
			t.Errorf("SSE stream missing coordinator %q event (saw %v)", want, kinds)
		}
	}
}

// TestDaemonValidationAndRestart covers the API edges and the durable
// journal: bad specs are rejected, a second daemon cannot share the
// state dir, and a restarted daemon lists the previous jobs.
func TestDaemonValidationAndRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := server.New(server.Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	for _, bad := range []string{
		`{}`,
		`{"systems": ["no-such-system"]}`,
		`{"all": true, "coordinate": 1}`,
		`{"all": true, "sim_delay": "not-a-duration"}`,
		`{"all": true, "bogus_field": 1}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %s accepted with %d, want 400", bad, resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job: %d, want 404", resp.StatusCode)
		}
	}

	// The daemon owns the state dir exclusively.
	if _, err := server.New(server.Config{StateDir: dir}); err == nil {
		t.Fatal("second daemon acquired the same state dir")
	}

	// Run one quick job so the journal has an entry.
	doc := postJob(t, ts.URL, `{"systems": ["ldapd"], "workers": 2}`)
	waitTerminal(t, ts.URL, doc.ID, time.Minute)

	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Clean lock release.
	if _, err := os.Stat(campaignstore.LockPath(dir)); !os.IsNotExist(err) {
		t.Fatalf("state lock survived shutdown: %v", err)
	}

	// Restart: journaled jobs are listed, terminal, and queryable.
	s2, err := server.New(server.Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var listing struct {
		Jobs []server.Job `json:"jobs"`
	}
	resp, err := http.Get(ts2.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, j := range listing.Jobs {
		if j.ID == doc.ID && j.State == server.StateDone {
			found = true
		}
	}
	if !found {
		t.Fatalf("restarted daemon lost job %s from its journal: %+v", doc.ID, listing.Jobs)
	}
	// A new job on the restarted daemon must not collide with old IDs.
	doc2 := postJob(t, ts2.URL, `{"systems": ["ldapd"], "workers": 2}`)
	if doc2.ID == doc.ID {
		t.Fatalf("job ID %s reused after restart", doc2.ID)
	}
	if got := waitTerminal(t, ts2.URL, doc2.ID, time.Minute); got.State != server.StateDone {
		t.Fatalf("post-restart job ended %s: %s", got.State, got.Error)
	}
}

// TestReadPathPagingEtagQuery exercises the index-served read path:
// ?limit/?offset paging with the whole-system tallies, ETag /
// If-None-Match revalidation on every read endpoint, and the
// cross-system /v1/query endpoint.
func TestReadPathPagingEtagQuery(t *testing.T) {
	dir := t.TempDir()
	_, ts := daemon(t, server.Config{StateDir: dir, Workers: 4})

	doc := postJob(t, ts.URL, `{"systems": ["ldapd"], "workers": 4}`)
	if final := waitTerminal(t, ts.URL, doc.ID, time.Minute); final.State != server.StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}

	type envelope struct {
		System          string               `json:"system"`
		Total           int                  `json:"total"`
		Offset          int                  `json:"offset"`
		Limit           int                  `json:"limit"`
		Outcomes        []server.OutcomeView `json:"outcomes"`
		ByReaction      map[string]int       `json:"by_reaction"`
		Vulnerabilities int                  `json:"vulnerabilities"`
	}
	get := func(url string) (envelope, *http.Response) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env envelope
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatal(err)
			}
		}
		return env, resp
	}

	full, resp := get(ts.URL + "/v1/systems/ldapd/outcomes")
	if resp.StatusCode != http.StatusOK || full.Total == 0 || len(full.Outcomes) != full.Total {
		t.Fatalf("full listing: %d, total=%d n=%d", resp.StatusCode, full.Total, len(full.Outcomes))
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("outcomes response carries no ETag")
	}

	// A page is a slice of the full listing; the tallies stay whole.
	page, resp := get(ts.URL + "/v1/systems/ldapd/outcomes?limit=2&offset=1")
	if resp.StatusCode != http.StatusOK || len(page.Outcomes) != 2 || page.Offset != 1 || page.Limit != 2 {
		t.Fatalf("page: %d, %+v", resp.StatusCode, page)
	}
	if page.Outcomes[0].Key != full.Outcomes[1].Key || page.Outcomes[1].Key != full.Outcomes[2].Key {
		t.Fatal("page is not a slice of the full listing")
	}
	if page.Total != full.Total || page.Vulnerabilities != full.Vulnerabilities {
		t.Fatalf("page tallies differ from the full listing: %+v", page)
	}
	if past, resp := get(fmt.Sprintf("%s/v1/systems/ldapd/outcomes?offset=%d", ts.URL, full.Total)); resp.StatusCode != http.StatusOK || len(past.Outcomes) != 0 {
		t.Fatalf("offset past the end: %d, n=%d", resp.StatusCode, len(past.Outcomes))
	}
	for _, bad := range []string{"?limit=0", "?limit=-1", "?limit=x", "?offset=-1"} {
		if _, resp := get(ts.URL + "/v1/systems/ldapd/outcomes" + bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", bad, resp.StatusCode)
		}
	}

	// Conditional revalidation on every read endpoint. (/v1/tables
	// needs all seven systems' snapshots — its ETag round trip runs in
	// TestDaemonEndToEnd.)
	for _, path := range []string{"/v1/systems/ldapd/outcomes", "/v1/systems", "/v1/query?all=1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		tag := resp.Header.Get("ETag")
		if resp.StatusCode != http.StatusOK || tag == "" {
			t.Fatalf("%s: %d etag=%q", path, resp.StatusCode, tag)
		}
		req, err := http.NewRequest("GET", ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-None-Match", tag)
		cresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(cresp.Body)
		cresp.Body.Close()
		if cresp.StatusCode != http.StatusNotModified || len(body) != 0 {
			t.Fatalf("%s with If-None-Match: %d (%d body bytes), want empty 304", path, cresp.StatusCode, len(body))
		}
		if got := cresp.Header.Get("ETag"); got != tag {
			t.Fatalf("%s: 304 carries etag %q, want %q", path, got, tag)
		}
	}

	// The cross-system query groups misconfigurations by (param, rule).
	qresp, err := http.Get(ts.URL + "/v1/query?all=1")
	if err != nil {
		t.Fatal(err)
	}
	var query struct {
		Systems []string `json:"systems"`
		Total   int      `json:"total"`
		Groups  []struct {
			Param     string         `json:"param"`
			Systems   []string       `json:"systems"`
			Outcomes  int            `json:"outcomes"`
			Reactions map[string]int `json:"reactions"`
		} `json:"groups"`
	}
	if err := json.NewDecoder(qresp.Body).Decode(&query); err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if len(query.Systems) != 1 || query.Systems[0] != "ldapd" || query.Total == 0 || query.Total != len(query.Groups) {
		t.Fatalf("query envelope implausible: %+v", query)
	}
	total := 0
	for _, g := range query.Groups {
		total += g.Outcomes
	}
	if total != full.Total {
		t.Fatalf("query groups cover %d outcomes, store holds %d", total, full.Total)
	}

	// Filtered query: one parameter family only.
	param := query.Groups[0].Param
	fresp, err := http.Get(ts.URL + "/v1/query?all=1&param=" + param)
	if err != nil {
		t.Fatal(err)
	}
	var filtered struct {
		Groups []struct {
			Param string `json:"param"`
		} `json:"groups"`
	}
	if err := json.NewDecoder(fresp.Body).Decode(&filtered); err != nil {
		t.Fatal(err)
	}
	fresp.Body.Close()
	if len(filtered.Groups) == 0 {
		t.Fatal("param-filtered query found nothing")
	}
	for _, g := range filtered.Groups {
		if g.Param != param {
			t.Fatalf("param filter leaked %q", g.Param)
		}
	}

	// Bad query parameters are rejected.
	for _, bad := range []string{"?min-systems=x", "?all=maybe"} {
		bresp, err := http.Get(ts.URL + "/v1/query" + bad)
		if err != nil {
			t.Fatal(err)
		}
		bresp.Body.Close()
		if bresp.StatusCode != http.StatusBadRequest {
			t.Errorf("query%s: %d, want 400", bad, bresp.StatusCode)
		}
	}
}
