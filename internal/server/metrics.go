// Daemon metrics: per-endpoint HTTP traffic and latency, ETag
// revalidation hits, the two read-path caches, job lifecycle counts
// and durations, and SSE keepalive frames all feed the obs registry
// the daemon itself serves at GET /metrics.
package server

import "spex/internal/obs"

const (
	metricHTTPRequests   = "spex_http_requests_total"
	metricHTTPSeconds    = "spex_http_request_seconds"
	metricEtagChecks     = "spex_http_etag_checks_total"
	metricEtag304        = "spex_http_etag_304_total"
	metricIndexHits      = "spex_server_index_cache_hits_total"
	metricIndexRebuilds  = "spex_server_index_cache_rebuilds_total"
	metricTablesHits     = "spex_server_tables_cache_hits_total"
	metricTablesRebuilds = "spex_server_tables_cache_rebuilds_total"
	metricJobsByState    = "spex_jobs_total"
	metricJobSeconds     = "spex_job_seconds"
	metricSSEKeepalives  = "spex_sse_keepalives_total"
	metricQueueDepth     = "spex_server_queue_depth"
	metricJobsRunning    = "spex_server_jobs_running"
	metricLockWait       = "spex_server_lock_wait_seconds"
)

var (
	mHTTPRequests = obs.Default().CounterVec(metricHTTPRequests,
		"HTTP requests served, by endpoint and status code", "endpoint", "code")
	mHTTPSeconds = obs.Default().HistogramVec(metricHTTPSeconds,
		"HTTP request latency in seconds, by endpoint", obs.DurationBuckets, "endpoint")
	mEtagChecks = obs.Default().Counter(metricEtagChecks,
		"conditional requests carrying If-None-Match")
	mEtag304 = obs.Default().Counter(metricEtag304,
		"conditional requests answered 304 Not Modified")
	mIndexHits = obs.Default().Counter(metricIndexHits,
		"outcome-index reads served from the in-memory cache after stat revalidation")
	mIndexRebuilds = obs.Default().Counter(metricIndexRebuilds,
		"outcome-index reads that reloaded the index from disk")
	mTablesHits = obs.Default().Counter(metricTablesHits,
		"table requests served from the memoized replay analysis")
	mTablesRebuilds = obs.Default().Counter(metricTablesRebuilds,
		"table requests that recomputed the replay analysis")
	mJobsByState = obs.Default().CounterVec(metricJobsByState,
		"job lifecycle transitions, by state entered and namespace", "state", "namespace")
	mJobSeconds = obs.Default().Histogram(metricJobSeconds,
		"job wall-clock seconds from start to terminal state", obs.DurationBuckets)
	mSSEKeepalives = obs.Default().Counter(metricSSEKeepalives,
		"keepalive comment frames written to idle SSE streams")
	mQueueDepth = obs.Default().GaugeVec(metricQueueDepth,
		"jobs waiting in the scheduler queue, by namespace", "namespace")
	mJobsRunning = obs.Default().GaugeVec(metricJobsRunning,
		"jobs currently running, by namespace", "namespace")
	mLockWait = obs.Default().HistogramVec(metricLockWait,
		"seconds a job waited from submit until its per-system write locks were claimed, by namespace",
		obs.DurationBuckets, "namespace")
)
