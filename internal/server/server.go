// Package server is spexd's engine room: a resident campaign service
// that owns one campaign state directory (the exclusive writer lock,
// campaignstore.Store.Lock, is held for the daemon's whole lifetime),
// runs injection campaigns on demand, and serves results and live
// progress over a JSON HTTP API:
//
//	POST   /v1/jobs                  submit a campaign (systems or all,
//	                                 workers, optional coordinate: N)
//	GET    /v1/jobs                  list jobs (including journaled ones
//	                                 from previous daemon runs)
//	GET    /v1/jobs/{id}             job status
//	DELETE /v1/jobs/{id}             cancel (context plumbing: finished
//	                                 outcomes persist, the store resumes)
//	GET    /v1/jobs/{id}/events      live progress (Server-Sent Events)
//	GET    /v1/systems               systems with snapshots in the store
//	GET    /v1/systems/{name}/outcomes   one system's recorded outcomes
//	                                 (?limit/?offset paging, 1000 per
//	                                 page by default, 10000 max)
//	GET    /v1/tables/{n}            evaluation table n (json or text —
//	                                 text is byte-identical to spexeval)
//	GET    /v1/query                 cross-system misconfiguration query
//	                                 (?param=, ?kind=, ?reaction=,
//	                                 ?min-systems=N, ?all=1)
//	GET    /v1/status                daemon status
//
// Jobs run strictly serially behind an in-memory queue: the store lock
// makes concurrent writers unsafe by design, so the queue — not a
// second lock holder — is what orders campaigns. Each job's progress
// flows through the shared pipeline (shard.Hub) onto the SSE stream,
// the same events a CLI -progress renderer consumes. Every job is
// journaled durably under <state>/jobs/, so a restarted daemon still
// lists finished jobs.
//
// The read path never touches snapshot records: every read endpoint is
// served from the store's outcome indexes (internal/outcomeindex),
// cached in memory per system and revalidated with one stat call per
// request against the snapshot file's (path, size, mtime) — a job's
// atomic snapshot rename is exactly what changes that identity, so
// cache invalidation needs no coupling to the job lifecycle. Reads
// need no lock at all, even while a job is writing. Every read
// endpoint carries an ETag derived from the snapshot fingerprint(s) it
// serves (the replay-equivalence hash, not the bytes) and honors
// If-None-Match with 304 Not Modified.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"spex/internal/campaignstore"
	"spex/internal/coord"
	"spex/internal/inject"
	"spex/internal/obs"
	"spex/internal/outcomeindex"
	"spex/internal/report"
	"spex/internal/shard"
	"spex/internal/sim"
	"spex/internal/spex"
)

// Config tunes one daemon.
type Config struct {
	// StateDir is the campaign state directory the daemon takes
	// ownership of (required).
	StateDir string
	// Workers is the default campaign pool width for jobs that do not
	// set their own (0 = one per CPU).
	Workers int
	// SpawnArgv, when set, launches coordinate-job workers as external
	// processes from this command template ({lease}, {state}, {worker}
	// placeholders — see coord.ExpandArgv; an SSH preset distributes
	// workers across machines). Empty runs workers in-process, which
	// needs no spexinj binary and still exercises the full
	// plan → lease → steal → merge protocol.
	//
	// External workers report progress through their heartbeat files
	// only: a coordinate job's SSE stream then carries the coordinator
	// lifecycle (spawn, steal, retry, merge) but no per-outcome
	// "progress" events — those require the in-process default, whose
	// workers feed the job's hub directly. The template must also set
	// any outcome-affecting worker flags itself (e.g.
	// -no-optimizations); a worker whose options differ from the
	// daemon's is rejected at merge time.
	SpawnArgv []string
	// Logger, if set, receives the daemon's structured log records
	// (job lifecycle, journal failures) with job/state attributes.
	// Nil discards them.
	Logger *slog.Logger
	// KeepaliveInterval is the idle interval between SSE keepalive
	// comment frames (0 = 15s). Comment frames keep intermediaries
	// from idling out a quiet event stream; clients ignore them.
	KeepaliveInterval time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/. Opt-in: the
	// profiling surface is for operators, not part of the public API.
	Pprof bool
}

// defaultKeepalive is the SSE keepalive interval when the config does
// not set one.
const defaultKeepalive = 15 * time.Second

// Server is the daemon. Create with New, serve with Handler (any
// http.Server) or ListenAndServe, stop with Close.
type Server struct {
	cfg    Config
	logger *slog.Logger
	store  *campaignstore.Store
	lock   *campaignstore.Lock

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	seq    int
	closed bool

	queue      chan *job
	runnerDone chan struct{}
	closeOnce  sync.Once
	closeErr   error

	// idxMu guards idxCache, the in-memory outcome indexes behind the
	// read path. An entry is valid only while the snapshot file it was
	// derived from keeps its (path, size, mtime) identity — one stat
	// call per request, rechecked every time, so a foreign writer (or a
	// job's save) invalidates it without any signalling.
	idxMu    sync.Mutex
	idxCache map[string]*cachedIndex

	// tablesMu guards tablesCache, the memoized read-only analysis
	// behind /v1/tables, keyed by the combined store fingerprint
	// (tablesKey) so it survives exactly as long as every underlying
	// snapshot does. finishJob also drops it eagerly; holding the mutex
	// across the compute single-flights concurrent table requests.
	tablesMu    sync.Mutex
	tablesKey   string
	tablesCache []*report.SystemResult
}

// cachedIndex pins one system's in-memory index to the snapshot file
// identity it was derived from.
type cachedIndex struct {
	path  string
	size  int64
	mtime int64
	sys   *outcomeindex.System
}

// New opens the state directory, takes its exclusive writer lock, and
// starts the job runner. The journal of previous jobs is loaded;
// documents left non-terminal by a dead daemon are adopted as failed.
func New(cfg Config) (*Server, error) {
	store, err := campaignstore.Open(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	lock, err := store.Lock()
	if err != nil {
		return nil, err
	}
	docs, seq, err := loadJournal(cfg.StateDir)
	if err != nil {
		_ = lock.Unlock() // the journal error is the one worth reporting
		return nil, err
	}
	// The daemon's lifetime root: jobs and SSE streams hang off it, and
	// Close cancels it. There is no inbound context to inherit here.
	//spexlint:ignore ctxflow daemon lifetime root, cancelled by Close
	ctx, cancel := context.WithCancel(context.Background())
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:        cfg,
		logger:     logger,
		store:      store,
		lock:       lock,
		ctx:        ctx,
		cancel:     cancel,
		jobs:       make(map[string]*job),
		idxCache:   make(map[string]*cachedIndex),
		seq:        seq,
		queue:      make(chan *job, 256),
		runnerDone: make(chan struct{}),
	}
	for _, doc := range docs {
		j := newJob(doc)
		// Journaled jobs are history: publish their terminal state so a
		// late SSE subscriber sees it, then end the stream.
		j.publish(Event{Kind: "state", Job: doc.ID, State: doc.State, Error: doc.Error})
		j.closeStream()
		s.jobs[doc.ID] = j
		s.order = append(s.order, doc.ID)
	}
	go s.runner()
	return s, nil
}

// Store exposes the daemon's store for read-only use (tests, status).
func (s *Server) Store() *campaignstore.Store { return s.store }

// Close shuts the daemon down gracefully: the running campaign is
// cancelled through the engine's context plumbing (finished outcomes
// are already persisted — the store stays resumable), queued jobs are
// marked cancelled, and the writer lock is released. Safe to call more
// than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.cancel()
		<-s.runnerDone
		// Jobs still sitting in the queue never started.
		for {
			select {
			case j := <-s.queue:
				s.finishJob(j, StateCancelled, "daemon shut down before the job started")
			default:
				s.closeErr = s.lock.Unlock()
				return
			}
		}
	})
	return s.closeErr
}

// ListenAndServe runs the HTTP server until ctx is cancelled (SIGTERM
// in cmd/spexd), then drains: in-flight handlers and the running
// campaign are stopped, the job journal is final, and the store lock
// is released before returning.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		select {
		case <-ctx.Done():
		case <-s.ctx.Done():
		}
		// Stop the campaign and the SSE streams first — Shutdown waits
		// for active handlers, and the SSE loops exit on s.ctx.
		s.cancel()
		// Deliberately not derived from ctx/s.ctx: both are already
		// cancelled here, and the drain deadline must survive them.
		//spexlint:ignore ctxflow shutdown drain outlives the cancelled roots
		sctx, stop := context.WithTimeout(context.Background(), 10*time.Second)
		defer stop()
		_ = srv.Shutdown(sctx)
	}()
	err := srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	s.cancel()
	<-shutdownDone
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	return err
}

// errUnavailable marks transient submit rejections (drain, full
// queue): the spec was fine, the client should retry — 503, not 400.
var errUnavailable = errors.New("temporarily unavailable")

// submit validates a spec, registers the job, journals it, and queues
// it for the serial runner.
func (s *Server) submit(spec JobSpec) (Job, error) {
	if _, err := resolveSystems(spec); err != nil {
		return Job{}, err
	}
	if spec.Coordinate == 1 || spec.Coordinate < 0 {
		return Job{}, errors.New("coordinate needs at least 2 workers (a single shard has nobody to steal from)")
	}
	if spec.SimDelay != "" {
		if _, err := time.ParseDuration(spec.SimDelay); err != nil {
			return Job{}, fmt.Errorf("bad sim_delay: %v", err)
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Job{}, fmt.Errorf("%w: daemon is shutting down", errUnavailable)
	}
	// Capacity is checked before anything is registered or journaled: a
	// rejected POST must leave no trace. The check-then-send pair is
	// race-free because submit holds s.mu for both and is the queue's
	// only sender (the runner only drains it).
	if len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		return Job{}, fmt.Errorf("%w: job queue is full", errUnavailable)
	}
	s.seq++
	doc := Job{
		ID:        fmt.Sprintf("job-%06d", s.seq),
		Spec:      spec,
		State:     StateQueued,
		CreatedAt: time.Now().UTC(),
	}
	j := newJob(doc)
	s.jobs[doc.ID] = j
	s.order = append(s.order, doc.ID)
	if err := saveJournal(s.cfg.StateDir, doc); err != nil {
		s.logger.Error("journal write failed", "job", doc.ID, "err", err)
	}
	j.publish(Event{Kind: "state", Job: doc.ID, State: StateQueued})
	mJobsByState.With(StateQueued).Inc()
	s.queue <- j
	s.mu.Unlock()
	return doc, nil
}

// lookup finds a job by ID.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// runner executes queued jobs strictly serially — one campaign per
// state directory at a time, by design of the writer lock.
func (s *Server) runner() {
	defer close(s.runnerDone)
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one job end to end and publishes its lifecycle.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.doc.State != StateQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	now := time.Now().UTC()
	j.doc.State = StateRunning
	j.doc.StartedAt = &now
	jctx, cancel := context.WithCancel(s.ctx)
	j.cancel = cancel
	rec := newTraceRecorder(j.doc.ID, now)
	j.trace = rec
	doc := j.docLocked()
	j.mu.Unlock()
	defer cancel()

	if err := saveJournal(s.cfg.StateDir, doc); err != nil {
		s.logger.Error("journal write failed", "job", doc.ID, "err", err)
	}
	j.publish(Event{Kind: "state", Job: doc.ID, State: StateRunning})
	mJobsByState.With(StateRunning).Inc()
	s.logger.Info("job running", "job", doc.ID, "spec", describeSpec(doc.Spec))

	// The job's campaign feeds the shared progress pipeline; one
	// forwarder moves hub events onto the SSE stream and into the
	// job's trace recorder.
	events, cancelSub := j.hub.Subscribe(1024)
	forwarderDone := make(chan struct{})
	go func() {
		defer close(forwarderDone)
		for p := range events {
			p := p
			rec.observeProgress(p, time.Now().UTC())
			j.publish(Event{Kind: "progress", Job: doc.ID, Progress: &p})
		}
	}()

	summaries, stats, err := s.execute(jctx, j, doc.Spec, rec)
	cancelSub()
	<-forwarderDone

	state := StateDone
	msg := ""
	switch {
	case err != nil && errors.Is(err, context.Canceled):
		state = StateCancelled
		msg = "cancelled; finished outcomes are persisted and the store resumes where it stopped"
		j.mu.Lock()
		byRequest := j.doc.CancelRequested
		j.mu.Unlock()
		if !byRequest {
			msg = "daemon shut down mid-campaign; " +
				"finished outcomes are persisted and the store resumes where it stopped"
		}
	case err != nil:
		state = StateFailed
		msg = err.Error()
	}
	j.mu.Lock()
	j.doc.Systems = summaries
	j.doc.Steals, j.doc.Spawns, j.doc.Retries = stats.steals, stats.spawns, stats.retries
	j.mu.Unlock()
	s.finishJob(j, state, msg)
	tdoc := rec.finish(state, time.Now().UTC())
	if err := campaignstore.WriteJSON(tracePath(s.cfg.StateDir, doc.ID), tdoc); err != nil {
		s.logger.Error("trace write failed", "job", doc.ID, "err", err)
	}
	s.logger.Info("job finished", "job", doc.ID, "state", state)
}

// finishJob moves a job to a terminal state, journals it, publishes
// the state event, and ends the SSE stream.
func (s *Server) finishJob(j *job, state, msg string) {
	j.mu.Lock()
	if terminal(j.doc.State) {
		j.mu.Unlock()
		return
	}
	now := time.Now().UTC()
	j.doc.State = state
	j.doc.DoneAt = &now
	j.doc.Error = msg
	if j.doc.StartedAt != nil {
		mJobSeconds.Observe(now.Sub(*j.doc.StartedAt).Seconds())
	}
	doc := j.docLocked()
	j.mu.Unlock()
	mJobsByState.With(state).Inc()
	if err := saveJournal(s.cfg.StateDir, doc); err != nil {
		s.logger.Error("journal write failed", "job", doc.ID, "err", err)
	}
	// The job may have rewritten snapshots: drop the memoized table
	// analysis.
	s.tablesMu.Lock()
	s.tablesCache = nil
	s.tablesMu.Unlock()
	j.publish(Event{Kind: "state", Job: doc.ID, State: state, Error: msg})
	j.closeStream()
}

// coordStats carries a coordinate job's rebalance counters.
type coordStats struct{ steals, spawns, retries int }

// execute runs the campaign itself: the plain global scheduler, or the
// embedded coordinator for coordinate jobs.
func (s *Server) execute(ctx context.Context, j *job, spec JobSpec, rec *traceRecorder) ([]SystemSummary, coordStats, error) {
	systems, err := resolveSystems(spec)
	if err != nil {
		return nil, coordStats{}, err
	}
	workers := spec.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	opts := inject.DefaultOptions()
	if spec.SimDelay != "" {
		d, err := time.ParseDuration(spec.SimDelay)
		if err != nil {
			return nil, coordStats{}, err
		}
		opts.SimCostDelay = d
	}
	if spec.Coordinate >= 2 {
		return s.executeCoordinate(ctx, j, spec, systems, opts, workers, rec)
	}

	results, err := spex.InferAll(ctx, systems, workers)
	if err != nil {
		return nil, coordStats{}, err
	}
	ws, _, err := shard.BuildWorkloads(systems, results, shard.Plan{})
	if err != nil {
		return nil, coordStats{}, err
	}
	gopts := shard.Options{Workers: workers, Inject: opts, OnProgress: j.hub.Emit}
	runs, runErr := shard.CampaignAll(ctx, s.lock, ws, gopts)

	var summaries []SystemSummary
	var saveErr error
	for _, run := range runs {
		rep := run.Report
		sum := SystemSummary{
			System:          run.Sys.Name(),
			Outcomes:        len(rep.Outcomes),
			Vulnerabilities: len(rep.Vulnerabilities()),
			UniqueLocations: rep.UniqueLocations(),
			Replayed:        rep.Replayed,
			Executed:        rep.Finished() - rep.Replayed,
			SimCost:         rep.TotalSimCost,
			Skipped:         rep.Skipped,
		}
		if run.Err != nil && saveErr == nil {
			saveErr = fmt.Errorf("%s: snapshot not saved: %w", run.Sys.Name(), run.Err)
		}
		if run.Status.Saved {
			// The save just wrote the index sidecar, so this is a stat
			// plus one small JSON read — not a snapshot re-parse.
			if idx, err := s.index(run.Sys.Name()); err == nil {
				sum.Fingerprint = idx.Fingerprint
			}
		}
		summaries = append(summaries, sum)
	}
	if runErr != nil {
		return summaries, coordStats{}, runErr
	}
	return summaries, coordStats{}, saveErr
}

// executeCoordinate embeds the shard coordinator: N workers on lease
// files under the daemon's state directory, work-stealing rebalance,
// bounded worker retries, and the final merge into the canonical
// store. The daemon hands coord.Run its own writer-lock handle, so the
// final merge writes under the lock the daemon already holds.
func (s *Server) executeCoordinate(ctx context.Context, j *job, spec JobSpec, systems []sim.System, opts inject.Options, workers int, rec *traceRecorder) ([]SystemSummary, coordStats, error) {
	jobID := j.snapshot().ID
	stealMin := coord.DefaultStealMin
	if spec.StealMin != nil {
		stealMin = *spec.StealMin
	}
	wopts := coord.WorkerOptions{Workers: workers, Inject: opts, OnProgress: j.hub.Emit}
	spawn := s.inprocSpawner(systems, wopts)
	if len(s.cfg.SpawnArgv) > 0 {
		spawn = coord.ExecSpawner(s.cfg.SpawnArgv)
	}
	cfg := coord.Config{
		StateDir:      s.cfg.StateDir,
		Workers:       spec.Coordinate,
		Systems:       systems,
		Inject:        opts,
		PoolWorkers:   workers,
		StealMin:      stealMin,
		WorkerRetries: coord.DefaultWorkerRetries,
		Lock:          s.lock,
		Spawn:         spawn,
		OnEvent: func(e coord.Event) {
			rec.observeCoord(e, time.Now().UTC())
			ce := &CoordEvent{Kind: e.Kind, Worker: e.Worker, From: e.From, Keys: e.Keys, Attempt: e.Attempt}
			if e.Err != nil {
				ce.Error = e.Err.Error()
			}
			j.publish(Event{Kind: "coord", Job: jobID, Coord: ce})
		},
	}
	res, err := coord.Run(ctx, cfg)
	if err != nil {
		return nil, coordStats{}, err
	}
	var summaries []SystemSummary
	for _, st := range res.Stats {
		sum := SystemSummary{System: st.System, Outcomes: st.Outcomes, Fingerprint: st.Fingerprint}
		if idx, err := s.index(st.System); err == nil {
			sum.Vulnerabilities = idx.Agg.Vulnerabilities
		}
		summaries = append(summaries, sum)
	}
	return summaries, coordStats{steals: res.Steals, spawns: res.Spawns, retries: res.Retries}, nil
}

// inprocSpawner runs coordinate-job workers as goroutines over
// coord.RunWorker — the default when no spawn template is configured.
// Each worker locks its own shard directory and feeds the job's
// progress hub.
func (s *Server) inprocSpawner(systems []sim.System, wopts coord.WorkerOptions) coord.SpawnFunc {
	return func(ctx context.Context, spec coord.WorkerSpec) (coord.Handle, error) {
		wctx, cancel := context.WithCancel(ctx)
		done := make(chan error, 1)
		go func() {
			_, err := coord.RunWorker(wctx, spec.LeasePath, spec.StateDir, systems, wopts)
			done <- err
		}()
		return &goWorkerHandle{cancel: cancel, done: done}, nil
	}
}

type goWorkerHandle struct {
	cancel context.CancelFunc
	done   chan error
}

func (h *goWorkerHandle) Wait() error { return <-h.done }
func (h *goWorkerHandle) Interrupt()  { h.cancel() }

func describeSpec(spec JobSpec) string {
	target := "all systems"
	if !spec.All {
		target = fmt.Sprintf("%v", spec.Systems)
	}
	if spec.Coordinate >= 2 {
		return fmt.Sprintf("%s, coordinate %d", target, spec.Coordinate)
	}
	return target
}

// ---- index cache ----

// index returns the system's outcome index, serving the in-memory copy
// while the snapshot file on disk still matches the (path, size, mtime)
// identity the copy was built from, and falling through to
// store.LoadIndex (sidecar, or full rebuild) otherwise.
func (s *Server) index(name string) (*outcomeindex.System, error) {
	path, fi, err := s.store.SnapshotInfo(name)
	if err != nil {
		return nil, err
	}
	s.idxMu.Lock()
	if c := s.idxCache[name]; c != nil &&
		c.path == path && c.size == fi.Size() && c.mtime == fi.ModTime().UnixNano() {
		sys := c.sys
		s.idxMu.Unlock()
		mIndexHits.Inc()
		return sys, nil
	}
	s.idxMu.Unlock()
	sys, err := s.store.LoadIndex(name)
	if err != nil {
		return nil, err
	}
	mIndexRebuilds.Inc()
	s.idxMu.Lock()
	s.idxCache[name] = &cachedIndex{path: path, size: fi.Size(), mtime: fi.ModTime().UnixNano(), sys: sys}
	s.idxMu.Unlock()
	return sys, nil
}

// indexAll returns every stored system's index, sorted by system name.
func (s *Server) indexAll() ([]*outcomeindex.System, error) {
	names, err := s.store.List()
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	out := make([]*outcomeindex.System, 0, len(names))
	for _, name := range names {
		sys, err := s.index(name)
		if err != nil {
			return nil, err
		}
		out = append(out, sys)
	}
	return out, nil
}

// combinedEtag folds the per-system snapshot fingerprints into one
// entity tag for endpoints whose response spans systems. Any change to
// any snapshot changes its fingerprint, which changes the tag.
func combinedEtag(systems []*outcomeindex.System) string {
	h := sha256.New()
	for _, sys := range systems {
		fmt.Fprintf(h, "%s:%s\n", sys.System, sys.Fingerprint)
	}
	return `"` + hex.EncodeToString(h.Sum(nil))[:32] + `"`
}

// etagMatch reports whether the request's If-None-Match covers etag.
func etagMatch(r *http.Request, etag string) bool {
	inm := r.Header.Get("If-None-Match")
	if inm == "" {
		return false
	}
	for _, cand := range strings.Split(inm, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == etag {
			return true
		}
	}
	return false
}

// serveCached sets the ETag and answers 304 when the client already
// holds this version. Returns true when the request is done.
func serveCached(w http.ResponseWriter, r *http.Request, etag string) bool {
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") != "" {
		mEtagChecks.Inc()
	}
	if etagMatch(r, etag) {
		mEtag304.Inc()
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// ---- HTTP ----

// statusWriter captures the response code for the request counters. It
// forwards Flush so the SSE stream still streams through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handle registers one instrumented route: the wrapper times every
// request and counts it by endpoint name and status code. The endpoint
// name is a fixed label (never the raw path — paths carry unbounded
// job IDs and system names, which would explode the series space).
func handle(mux *http.ServeMux, pattern, endpoint string, h http.HandlerFunc) {
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		mHTTPSeconds.With(endpoint).Observe(time.Since(start).Seconds())
		mHTTPRequests.With(endpoint, strconv.Itoa(sw.code)).Inc()
	})
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle(mux, "GET /v1/status", "status", s.handleStatus)
	handle(mux, "GET /v1/jobs", "jobs_list", s.handleJobsList)
	handle(mux, "POST /v1/jobs", "jobs_create", s.handleJobsCreate)
	handle(mux, "GET /v1/jobs/{id}", "job_get", s.handleJobGet)
	handle(mux, "DELETE /v1/jobs/{id}", "job_delete", s.handleJobDelete)
	handle(mux, "GET /v1/jobs/{id}/events", "job_events", s.handleJobEvents)
	handle(mux, "GET /v1/jobs/{id}/trace", "job_trace", s.handleJobTrace)
	handle(mux, "GET /v1/systems", "systems", s.handleSystems)
	handle(mux, "GET /v1/systems/{name}/outcomes", "outcomes", s.handleOutcomes)
	handle(mux, "GET /v1/tables/{n}", "table", s.handleTable)
	handle(mux, "GET /v1/query", "query", s.handleQuery)
	// The scrape endpoint itself stays outside the instrumented wrapper
	// so scraping never perturbs the request counters it reports.
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleMetrics serves the process-global registry in Prometheus text
// exposition format — every instrumented layer the daemon links
// (engine, store, hub, coordinator, sim monitor, this server).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default().WritePrometheus(w)
}

// handleJobTrace serves a job's span tree: live from the recorder for
// jobs run by this daemon, from the persisted trace document for
// journaled history. ?format=text renders the indented tree.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.lookup(id)
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	j.mu.Lock()
	rec := j.trace
	j.mu.Unlock()
	var doc obs.TraceDoc
	if rec != nil {
		doc = rec.doc()
	} else {
		data, err := os.ReadFile(tracePath(s.cfg.StateDir, id))
		if err != nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("no trace for job %q (the job never started under this daemon)", id))
			return
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("trace document: %w", err))
			return
		}
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, doc.Text())
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	counts := map[string]int{}
	running := ""
	for _, id := range s.order {
		doc := s.jobs[id].snapshot()
		counts[doc.State]++
		if doc.State == StateRunning {
			running = doc.ID
		}
	}
	s.mu.Unlock()
	systems, _ := s.store.List()
	writeJSON(w, http.StatusOK, map[string]any{
		"state_dir": s.cfg.StateDir,
		"jobs":      counts,
		"running":   running,
		"systems":   systems,
	})
}

func (s *Server) handleJobsCreate(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	doc, err := s.submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errUnavailable) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, doc)
}

func (s *Server) handleJobsList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	docs := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		docs = append(docs, s.jobs[id].snapshot())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": docs})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	// The whole decision runs under the job lock, so it cannot race the
	// runner's queued→running transition: either the cancellation wins
	// (the runner sees a terminal state and skips the job) or the start
	// wins (the DELETE lands on the running branch and cancels the
	// context).
	j.mu.Lock()
	switch j.doc.State {
	case StateQueued:
		// Never started: terminal immediately; the runner skips it.
		now := time.Now().UTC()
		j.doc.State = StateCancelled
		j.doc.DoneAt = &now
		j.doc.Error = "cancelled while queued"
		doc := j.docLocked()
		j.mu.Unlock()
		mJobsByState.With(StateCancelled).Inc()
		if err := saveJournal(s.cfg.StateDir, doc); err != nil {
			s.logger.Error("journal write failed", "job", doc.ID, "err", err)
		}
		j.publish(Event{Kind: "state", Job: doc.ID, State: StateCancelled, Error: doc.Error})
		j.closeStream()
		writeJSON(w, http.StatusOK, doc)
	case StateRunning:
		j.doc.CancelRequested = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		writeJSON(w, http.StatusAccepted, j.snapshot())
	default:
		state := j.doc.State
		j.mu.Unlock()
		writeError(w, http.StatusConflict, fmt.Errorf("job is already %s", state))
	}
}

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(e Event) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Kind, data); err != nil {
			return false
		}
		return true
	}

	backlog, dropped, ch, cancelSub := j.subscribe()
	defer cancelSub()
	if dropped > 0 {
		// SSE comment: the backlog cap evicted early events, so this
		// replay starts mid-stream.
		fmt.Fprintf(w, ": backlog truncated, %d early events dropped\n\n", dropped)
	}
	for _, e := range backlog {
		if !writeEvent(e) {
			return
		}
	}
	flusher.Flush()
	interval := s.cfg.KeepaliveInterval
	if interval <= 0 {
		interval = defaultKeepalive
	}
	keepalive := time.NewTicker(interval)
	defer keepalive.Stop()
	for {
		select {
		case e, open := <-ch:
			if !open {
				return // terminal state delivered; stream complete
			}
			if !writeEvent(e) {
				return
			}
			flusher.Flush()
		case <-keepalive.C:
			// SSE comment frame: keeps proxies and load balancers from
			// idling out a quiet stream; clients ignore comments.
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
			mSSEKeepalives.Inc()
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

func (s *Server) handleSystems(w http.ResponseWriter, r *http.Request) {
	idxs, err := s.indexAll()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if serveCached(w, r, combinedEtag(idxs)) {
		return
	}
	systems := make([]string, len(idxs))
	for i, idx := range idxs {
		systems[i] = idx.System
	}
	writeJSON(w, http.StatusOK, map[string]any{"systems": systems})
}

// OutcomeView is one recorded outcome in API form.
type OutcomeView struct {
	Key           string `json:"key"`
	ID            string `json:"id"`
	Param         string `json:"param"`
	Description   string `json:"description,omitempty"`
	Reaction      string `json:"reaction"`
	Vulnerability bool   `json:"vulnerability"`
	Pinpointed    bool   `json:"pinpointed"`
	FailedTest    string `json:"failed_test,omitempty"`
	Loc           string `json:"loc,omitempty"`
	SimCost       int    `json:"sim_cost"`
}

// Paging bounds for the outcomes listing: without ?limit a page holds
// defaultPageLimit outcomes, and no ?limit can raise it past
// maxPageLimit — a million-outcome system must never be one response.
const (
	defaultPageLimit = 1000
	maxPageLimit     = 10000
)

// pageParams parses ?limit/?offset. A limit above maxPageLimit clamps.
func pageParams(r *http.Request) (limit, offset int, err error) {
	limit = defaultPageLimit
	if v := r.URL.Query().Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit < 1 {
			return 0, 0, fmt.Errorf("bad limit %q (want a positive integer)", v)
		}
		if limit > maxPageLimit {
			limit = maxPageLimit
		}
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		offset, err = strconv.Atoi(v)
		if err != nil || offset < 0 {
			return 0, 0, fmt.Errorf("bad offset %q (want a non-negative integer)", v)
		}
	}
	return limit, offset, nil
}

// storeErrCode maps a store read failure to its HTTP status: no
// campaign yet is the client's to fix (submit a job), a schema-stale
// snapshot converges by rerunning the campaign, anything else is a
// server fault.
func storeErrCode(err error) int {
	switch {
	case errors.Is(err, campaignstore.ErrNotExist):
		return http.StatusNotFound
	case errors.Is(err, campaignstore.ErrStale):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleOutcomes(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	limit, offset, err := pageParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	idx, err := s.index(name)
	if err != nil {
		writeError(w, storeErrCode(err), err)
		return
	}
	if serveCached(w, r, `"`+idx.Fingerprint+`"`) {
		return
	}
	// The page slices the doc list (already in ascending key order);
	// the tallies always cover the whole system, not the page.
	page := idx.Docs
	if offset >= len(page) {
		page = nil
	} else {
		page = page[offset:]
		if len(page) > limit {
			page = page[:limit]
		}
	}
	views := make([]OutcomeView, len(page))
	for i := range page {
		d := &page[i]
		views[i] = OutcomeView{
			Key:           d.Key,
			ID:            d.ID,
			Param:         d.Param,
			Description:   d.Description,
			Reaction:      d.ReactionName(),
			Vulnerability: d.Vulnerability(),
			Pinpointed:    d.Pinpointed,
			FailedTest:    d.FailedTest,
			Loc:           d.LocString(),
			SimCost:       d.SimCost,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"system":          idx.System,
		"saved_at":        idx.SavedAt,
		"total":           idx.Agg.Outcomes,
		"offset":          offset,
		"limit":           limit,
		"outcomes":        views,
		"by_reaction":     idx.Agg.ByReaction,
		"vulnerabilities": idx.Agg.Vulnerabilities,
	})
}

// handleQuery answers the cross-system misconfiguration query from the
// outcome indexes alone: which (parameter, rule) families match the
// filters, in how many systems, with what reactions. No snapshot is
// parsed — the posting lists narrow the scan per system.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := outcomeindex.Query{
		Param:    r.URL.Query().Get("param"),
		Kind:     r.URL.Query().Get("kind"),
		Reaction: r.URL.Query().Get("reaction"),
	}
	if v := r.URL.Query().Get("min-systems"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad min-systems %q (want a non-negative integer)", v))
			return
		}
		q.MinSystems = n
	}
	switch v := r.URL.Query().Get("all"); v {
	case "", "0", "false":
	case "1", "true":
		q.All = true
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad all %q (want 1 or 0)", v))
		return
	}
	idxs, err := s.indexAll()
	if err != nil {
		writeError(w, storeErrCode(err), err)
		return
	}
	if serveCached(w, r, combinedEtag(idxs)) {
		return
	}
	groups := outcomeindex.Run(idxs, q)
	systems := make([]string, len(idxs))
	for i, idx := range idxs {
		systems[i] = idx.System
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"systems": systems,
		"total":   len(groups),
		"groups":  groups,
	})
}

// replayResults serves the memoized read-only analysis, recomputing it
// (report.ReplayFromIndex — the tables never parse a snapshot record)
// only when the combined store fingerprint moved — a client fetching
// all twelve tables pays for one index replay, not twelve. Failed
// replays (incomplete state) are never cached; the next request
// retries. The returned etag identifies the store state the analysis
// was computed from.
func (s *Server) replayResults(ctx context.Context) ([]*report.SystemResult, string, error) {
	idxs, err := s.indexAll()
	if err != nil {
		return nil, "", err
	}
	etag := combinedEtag(idxs)
	s.tablesMu.Lock()
	defer s.tablesMu.Unlock()
	if s.tablesCache != nil && s.tablesKey == etag {
		mTablesHits.Inc()
		return s.tablesCache, etag, nil
	}
	results, err := report.ReplayFromIndex(ctx, s.store)
	if err != nil {
		return nil, "", err
	}
	mTablesRebuilds.Inc()
	s.tablesCache = results
	s.tablesKey = etag
	return results, etag, nil
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil || n < 1 || n > report.MaxTable {
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q (want 1-%d)", r.PathValue("n"), report.MaxTable))
		return
	}
	results, etag, err := s.replayResults(r.Context())
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, report.ErrStateIncomplete) || errors.Is(err, campaignstore.ErrStale) ||
			errors.Is(err, campaignstore.ErrNotExist) {
			code = http.StatusConflict
		}
		writeError(w, code, err)
		return
	}
	if serveCached(w, r, etag) {
		return
	}
	if r.URL.Query().Get("format") == "text" {
		text, err := report.RenderTableText(n, results)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// spexeval prints each table with fmt.Println: table text + \n.
		fmt.Fprintln(w, text)
		return
	}
	tables, err := report.BuildTables(n, results)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"table": n, "tables": tables})
}
