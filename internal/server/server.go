// Package server is spexd's engine room: a resident, multi-tenant
// campaign service that owns a root state directory, hosts any number
// of namespaces under it (one campaign store each), schedules jobs
// concurrently under per-system write locks, and serves results and
// live progress over a JSON HTTP API:
//
//	POST   /v1/jobs                  submit a campaign (systems or all,
//	                                 workers, optional coordinate: N,
//	                                 needs: [jobID...], stages: [...])
//	GET    /v1/jobs                  list jobs (including journaled ones
//	                                 from previous daemon runs)
//	GET    /v1/jobs/{id}             job status
//	DELETE /v1/jobs/{id}             cancel (context plumbing: finished
//	                                 outcomes persist, the store resumes)
//	GET    /v1/jobs/{id}/events      live progress (Server-Sent Events)
//	GET    /v1/systems               systems with snapshots in the store
//	GET    /v1/systems/{name}/outcomes   one system's recorded outcomes
//	                                 (?limit/?offset paging, 1000 per
//	                                 page by default, 10000 max)
//	GET    /v1/tables/{n}            evaluation table n (json or text —
//	                                 text is byte-identical to spexeval)
//	GET    /v1/query                 cross-system misconfiguration query
//	                                 (?param=, ?kind=, ?reaction=,
//	                                 ?min-systems=N, ?all=1)
//	GET    /v1/status                daemon status
//	GET    /v1/ns                    list namespaces
//	GET    /v1/events                daemon-wide event bus (SSE): job
//	                                 lifecycle, scheduler reservations,
//	                                 queue depth, stage transitions, and
//	                                 throttled progress across EVERY
//	                                 namespace (internal/dash)
//	GET    /ui/                      embedded live dashboard (go:embed,
//	                                 no external dependency)
//	*      /v1/ns/{ns}/...           any route above, scoped to a
//	                                 namespace (POST creates it;
//	                                 /v1/ns/{ns}/events filters the bus
//	                                 to that namespace)
//
// Every /v1 route above addresses the default namespace — the root
// state directory itself, so a single-tenant daemon keeps today's URLs
// and on-disk layout. A namespaced route addresses <root>/<namespace>/,
// a full state directory of its own: snapshots, outcome indexes, job
// journal, quotas. POST /v1/ns/{ns}/jobs creates the namespace on
// first use; reads on an unknown namespace 404.
//
// Jobs are scheduled by a DAG scheduler over per-system write locks
// (campaignstore.Store.LockSystems): a job claims exactly the systems
// it campaigns, so two jobs over disjoint system sets run concurrently
// while jobs sharing a system serialize per system, not per daemon.
// needs: [jobID...] adds explicit edges — a job waits for its
// dependencies to finish (a failed or cancelled dependency fails the
// job). stages: [infer, inject, eval] turns a job into a per-system
// pipeline: each system advances through its stages independently, so
// a fast system evaluates while a slow one still injects, and every
// transition streams as a "stage" SSE event. Per-namespace quotas
// bound concurrency (Config.MaxConcurrentJobs) and queue depth
// (Config.MaxQueuedJobs). Each job's progress flows through the shared
// pipeline (shard.Hub) onto the SSE stream, the same events a CLI
// -progress renderer consumes. Every job is journaled durably under
// <ns>/jobs/, so a restarted daemon still lists finished jobs — and
// re-queues jobs that never started.
//
// The daemon holds each namespace's whole-directory lock for its
// lifetime (foreign writers stay excluded); job claims nest under it
// as real per-system lock files, the same claim/refresh/takeover
// machinery at file granularity.
//
// The read path never touches snapshot records: every read endpoint is
// served from the store's outcome indexes (internal/outcomeindex),
// cached in memory per system and revalidated with one stat call per
// request against the snapshot file's (path, size, mtime) — a job's
// atomic snapshot rename is exactly what changes that identity, so
// cache invalidation needs no coupling to the job lifecycle. Reads
// need no lock at all, even while a job is writing. Every read
// endpoint carries an ETag derived from the snapshot fingerprint(s) it
// serves (the replay-equivalence hash, not the bytes) and honors
// If-None-Match with 304 Not Modified.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"spex/internal/campaignstore"
	"spex/internal/coord"
	"spex/internal/dash"
	"spex/internal/inject"
	"spex/internal/obs"
	"spex/internal/outcomeindex"
	"spex/internal/report"
	"spex/internal/shard"
	"spex/internal/sim"
	"spex/internal/spex"
)

// Config tunes one daemon.
type Config struct {
	// StateDir is the root state directory the daemon takes ownership
	// of (required). It is the default namespace's store; named
	// namespaces live in subdirectories.
	StateDir string
	// Workers is the default campaign pool width for jobs that do not
	// set their own (0 = one per CPU).
	Workers int
	// SpawnArgv, when set, launches coordinate-job workers as external
	// processes from this command template ({lease}, {state}, {worker}
	// placeholders — see coord.ExpandArgv; an SSH preset distributes
	// workers across machines). Empty runs workers in-process, which
	// needs no spexinj binary and still exercises the full
	// plan → lease → steal → merge protocol.
	//
	// External workers report progress through their heartbeat files
	// only: a coordinate job's SSE stream then carries the coordinator
	// lifecycle (spawn, steal, retry, merge) but no per-outcome
	// "progress" events — those require the in-process default, whose
	// workers feed the job's hub directly. The template must also set
	// any outcome-affecting worker flags itself (e.g.
	// -no-optimizations); a worker whose options differ from the
	// daemon's is rejected at merge time.
	SpawnArgv []string
	// Logger, if set, receives the daemon's structured log records
	// (job lifecycle, journal failures) with job/state attributes.
	// Nil discards them.
	Logger *slog.Logger
	// KeepaliveInterval is the idle interval between SSE keepalive
	// comment frames (0 = 15s). Comment frames keep intermediaries
	// from idling out a quiet event stream; clients ignore them.
	KeepaliveInterval time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/. Opt-in: the
	// profiling surface is for operators, not part of the public API.
	Pprof bool
	// MaxConcurrentJobs caps how many jobs may run at once within one
	// namespace (0 = 4). Jobs over disjoint system sets fill the cap;
	// jobs sharing a system serialize on its lock regardless.
	MaxConcurrentJobs int
	// MaxQueuedJobs caps how many submitted jobs may wait in one
	// namespace's queue (0 = 256). A full queue answers 503.
	MaxQueuedJobs int
}

const (
	// DefaultNamespace is the namespace the un-prefixed /v1 routes
	// address: the root state directory itself.
	DefaultNamespace = "default"
	// defaultKeepalive is the SSE keepalive interval when the config
	// does not set one.
	defaultKeepalive = 15 * time.Second
	// defaultMaxConcurrent / defaultMaxQueued back the zero values of
	// the per-namespace quota knobs.
	defaultMaxConcurrent = 4
	defaultMaxQueued     = 256
)

// namespace is one tenant: a campaign store with its own
// whole-directory lock (held for the daemon's lifetime), job table,
// queue, journal, and read caches.
type namespace struct {
	name  string
	dir   string
	store *campaignstore.Store
	lock  *campaignstore.Lock

	// Scheduling state, guarded by Server.mu: the job table and
	// submission order, the pending queue, and the reservation board —
	// busy maps a system name to the running job holding its claim, so
	// the dispatcher reserves all-or-nothing without hold-and-wait.
	jobs      map[string]*job
	order     []string
	seq       int
	pending   []*job
	running   int
	exclusive bool // a coordinate job owns the whole namespace
	busy      map[string]string

	// idxMu guards idxCache, the in-memory outcome indexes behind the
	// read path. An entry is valid only while the snapshot file it was
	// derived from keeps its (path, size, mtime) identity — one stat
	// call per request, rechecked every time, so a foreign writer (or a
	// job's save) invalidates it without any signalling.
	idxMu    sync.Mutex
	idxCache map[string]*cachedIndex

	// tablesMu guards tablesCache, the memoized read-only analysis
	// behind /v1/tables, keyed by the combined store fingerprint
	// (tablesKey) so it survives exactly as long as every underlying
	// snapshot does. finishJob also drops it eagerly; holding the mutex
	// across the compute single-flights concurrent table requests.
	tablesMu    sync.Mutex
	tablesKey   string
	tablesCache []*report.SystemResult
}

// Server is the daemon. Create with New, serve with Handler (any
// http.Server) or ListenAndServe, stop with Close.
type Server struct {
	cfg    Config
	logger *slog.Logger

	ctx    context.Context
	cancel context.CancelFunc

	// bus is the daemon-wide dashboard event bus (internal/dash):
	// every lifecycle site publishes into it, and GET /v1/events, the
	// /ui/ dashboard, and remote spexwatch clients subscribe.
	bus *dash.Bus

	mu         sync.Mutex
	namespaces map[string]*namespace
	nsOrder    []string
	closed     bool

	kick      chan struct{}
	schedDone chan struct{}
	jobsWG    sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// cachedIndex pins one system's in-memory index to the snapshot file
// identity it was derived from.
type cachedIndex struct {
	path  string
	size  int64
	mtime int64
	sys   *outcomeindex.System
}

// nsNameRE bounds namespace names: a path-safe lowercase slug.
var nsNameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]{0,63}$`)

// validateNamespaceName rejects names that cannot be a namespace:
// malformed slugs, and names that would collide with the files the
// root state directory already owns (the journal dir, coordinator
// state, shard worker dirs, route segments).
func validateNamespaceName(name string) error {
	if !nsNameRE.MatchString(name) {
		return fmt.Errorf("bad namespace %q (want lowercase [a-z0-9][a-z0-9_-]{0,63})", name)
	}
	switch name {
	case DefaultNamespace, jobsDirName, coord.CoordDirName, "v1", "ns", "metrics", "debug":
		return fmt.Errorf("namespace %q is reserved", name)
	}
	if rest, ok := strings.CutPrefix(name, "shard"); ok && rest != "" {
		if _, err := strconv.Atoi(rest); err == nil {
			return fmt.Errorf("namespace %q is reserved (shard worker directory)", name)
		}
	}
	return nil
}

// New opens the root state directory as the default namespace (taking
// its whole-directory writer lock), discovers previously-created
// namespaces under it, and starts the scheduler. Each namespace's job
// journal is loaded; documents a dead daemon left running are adopted
// as failed, documents it left queued — jobs that never claimed a lock
// or wrote an outcome — are re-queued.
func New(cfg Config) (*Server, error) {
	// The daemon's lifetime root: jobs and SSE streams hang off it, and
	// Close cancels it. There is no inbound context to inherit here.
	//spexlint:ignore ctxflow daemon lifetime root, cancelled by Close
	ctx, cancel := context.WithCancel(context.Background())
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:        cfg,
		logger:     logger,
		ctx:        ctx,
		cancel:     cancel,
		bus:        dash.NewBus(dash.Options{}),
		namespaces: make(map[string]*namespace),
		kick:       make(chan struct{}, 1),
		schedDone:  make(chan struct{}),
	}
	if _, err := s.openNamespace(DefaultNamespace); err != nil {
		cancel()
		return nil, err
	}
	// Discover named namespaces from previous daemon runs: any valid
	// subdirectory that carries a job journal was created by a POST.
	if entries, err := os.ReadDir(cfg.StateDir); err == nil {
		var names []string
		for _, e := range entries {
			if !e.IsDir() || validateNamespaceName(e.Name()) != nil {
				continue
			}
			if fi, err := os.Stat(filepath.Join(cfg.StateDir, e.Name(), jobsDirName)); err != nil || !fi.IsDir() {
				continue
			}
			names = append(names, e.Name())
		}
		sort.Strings(names)
		for _, name := range names {
			if _, err := s.openNamespace(name); err != nil {
				s.closeNamespaces()
				cancel()
				return nil, fmt.Errorf("server: namespace %q: %w", name, err)
			}
		}
	}
	go s.scheduler()
	s.kickScheduler()
	return s, nil
}

// openNamespace opens (creating if needed) one namespace's state
// directory, takes its whole-directory lock, and loads its journal.
// Called from New and, under s.mu, from the lazy create path of
// POST /v1/ns/{ns}/jobs.
func (s *Server) openNamespace(name string) (*namespace, error) {
	dir := s.cfg.StateDir
	if name != DefaultNamespace {
		dir = filepath.Join(s.cfg.StateDir, name)
	}
	store, err := campaignstore.Open(dir)
	if err != nil {
		return nil, err
	}
	lock, err := store.Lock()
	if err != nil {
		return nil, err
	}
	docs, seq, err := loadJournal(dir)
	if err != nil {
		_ = lock.Unlock() // the journal error is the one worth reporting
		return nil, err
	}
	ns := &namespace{
		name:     name,
		dir:      dir,
		store:    store,
		lock:     lock,
		jobs:     make(map[string]*job),
		busy:     make(map[string]string),
		idxCache: make(map[string]*cachedIndex),
		seq:      seq,
	}
	for _, doc := range docs {
		j := newJob(doc)
		ns.jobs[doc.ID] = j
		ns.order = append(ns.order, doc.ID)
		if doc.State == StateQueued {
			// The job never started under the dead daemon: re-queue it
			// live instead of burying it as failed history.
			j.publish(Event{Kind: "state", Job: doc.ID, State: StateQueued})
			s.bus.Publish(dash.Event{Namespace: name, Kind: dash.KindJob, Job: doc.ID, State: StateQueued})
			ns.pending = append(ns.pending, j)
			continue
		}
		// Journaled jobs are history: publish their terminal state so a
		// late SSE subscriber sees it, then end the stream.
		j.publish(Event{Kind: "state", Job: doc.ID, State: doc.State, Error: doc.Error})
		j.closeStream()
	}
	s.namespaces[name] = ns
	s.nsOrder = append(s.nsOrder, name)
	return ns, nil
}

// namespaceFor resolves a request's namespace. create opens a missing
// (valid) namespace on the fly — the POST /v1/ns/{ns}/jobs behavior.
func (s *Server) namespaceFor(name string, create bool) (*namespace, error) {
	if name == "" || name == DefaultNamespace {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.namespaces[DefaultNamespace], nil
	}
	if err := validateNamespaceName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ns := s.namespaces[name]; ns != nil {
		return ns, nil
	}
	if !create {
		return nil, fmt.Errorf("no namespace %q", name)
	}
	if s.closed {
		return nil, fmt.Errorf("%w: daemon is shutting down", errUnavailable)
	}
	ns, err := s.openNamespace(name)
	if err != nil {
		return nil, err
	}
	s.logger.Info("namespace created", "namespace", name, "dir", ns.dir)
	return ns, nil
}

// Store exposes the default namespace's store for read-only use
// (tests, status).
func (s *Server) Store() *campaignstore.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.namespaces[DefaultNamespace].store
}

// closeNamespaces releases every namespace's whole-directory lock.
func (s *Server) closeNamespaces() error {
	var first error
	for _, name := range s.nsOrder {
		if err := s.namespaces[name].lock.Unlock(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close shuts the daemon down gracefully: running campaigns are
// cancelled through the engine's context plumbing (finished outcomes
// are already persisted — the stores stay resumable), queued jobs are
// marked cancelled, per-system claims are released as the job
// goroutines drain, and every namespace lock is released. Safe to call
// more than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		type nsJob struct {
			ns *namespace
			j  *job
		}
		var queued []nsJob
		for _, name := range s.nsOrder {
			ns := s.namespaces[name]
			for _, j := range ns.pending {
				queued = append(queued, nsJob{ns, j})
			}
			ns.pending = nil
		}
		s.mu.Unlock()
		for _, q := range queued {
			s.finishJob(q.ns, q.j, StateCancelled, "daemon shut down before the job started")
		}
		s.cancel()
		<-s.schedDone
		// Job goroutines observe the cancelled context, finish their
		// documents, and release their per-system claims before the
		// namespace locks go.
		s.jobsWG.Wait()
		// Every publisher has drained; end the dashboard streams.
		s.bus.Close()
		s.mu.Lock()
		defer s.mu.Unlock()
		s.closeErr = s.closeNamespaces()
	})
	return s.closeErr
}

// ListenAndServe runs the HTTP server until ctx is cancelled (SIGTERM
// in cmd/spexd), then drains: in-flight handlers and running campaigns
// are stopped, the job journals are final, and every lock is released
// before returning.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		select {
		case <-ctx.Done():
		case <-s.ctx.Done():
		}
		// Stop the campaigns and the SSE streams first — Shutdown waits
		// for active handlers, and the SSE loops exit on s.ctx.
		s.cancel()
		// Deliberately not derived from ctx/s.ctx: both are already
		// cancelled here, and the drain deadline must survive them.
		//spexlint:ignore ctxflow shutdown drain outlives the cancelled roots
		sctx, stop := context.WithTimeout(context.Background(), 10*time.Second)
		defer stop()
		_ = srv.Shutdown(sctx)
	}()
	err := srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	s.cancel()
	<-shutdownDone
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	return err
}

// errUnavailable marks transient submit rejections (drain, full
// queue): the spec was fine, the client should retry — 503, not 400.
var errUnavailable = errors.New("temporarily unavailable")

// submit validates a spec, registers the job in its namespace,
// journals it, and queues it for the scheduler.
func (s *Server) submit(ns *namespace, spec JobSpec) (Job, error) {
	if _, err := resolveSystems(spec); err != nil {
		return Job{}, err
	}
	if spec.Coordinate == 1 || spec.Coordinate < 0 {
		return Job{}, errors.New("coordinate needs at least 2 workers (a single shard has nobody to steal from)")
	}
	if spec.SimDelay != "" {
		if _, err := time.ParseDuration(spec.SimDelay); err != nil {
			return Job{}, fmt.Errorf("bad sim_delay: %v", err)
		}
	}
	if err := validateStages(spec.Stages); err != nil {
		return Job{}, err
	}
	if len(spec.Stages) > 0 && spec.Coordinate != 0 {
		return Job{}, errors.New("a staged pipeline cannot run under the coordinator (stages pipeline per system; the coordinator shards per worker)")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Job{}, fmt.Errorf("%w: daemon is shutting down", errUnavailable)
	}
	// Dependencies may only name already-submitted jobs in the same
	// namespace, so DAG edges always point backwards and cycles cannot
	// form. Checked under s.mu so a rejected POST leaves no trace.
	for _, need := range spec.Needs {
		if ns.jobs[need] == nil {
			s.mu.Unlock()
			return Job{}, fmt.Errorf("needs unknown job %q in namespace %q", need, ns.name)
		}
	}
	maxQueued := s.cfg.MaxQueuedJobs
	if maxQueued <= 0 {
		maxQueued = defaultMaxQueued
	}
	if len(ns.pending) >= maxQueued {
		s.mu.Unlock()
		return Job{}, fmt.Errorf("%w: namespace %q job queue is full (%d queued)", errUnavailable, ns.name, maxQueued)
	}
	ns.seq++
	doc := Job{
		ID:        fmt.Sprintf("job-%06d", ns.seq),
		Namespace: ns.name,
		Spec:      spec,
		State:     StateQueued,
		CreatedAt: time.Now().UTC(),
	}
	j := newJob(doc)
	ns.jobs[doc.ID] = j
	ns.order = append(ns.order, doc.ID)
	ns.pending = append(ns.pending, j)
	mQueueDepth.With(ns.name).Set(float64(len(ns.pending)))
	if err := saveJournal(ns.dir, doc); err != nil {
		s.logger.Error("journal write failed", "job", doc.ID, "namespace", ns.name, "err", err)
	}
	j.publish(Event{Kind: "state", Job: doc.ID, State: StateQueued})
	mJobsByState.With(StateQueued, ns.name).Inc()
	depth, running := len(ns.pending), ns.running
	s.mu.Unlock()
	s.bus.Publish(dash.Event{Namespace: ns.name, Kind: dash.KindJob, Job: doc.ID, State: StateQueued})
	s.bus.Publish(dash.Event{Namespace: ns.name, Kind: dash.KindSched, Job: doc.ID,
		Sched: &dash.Sched{Op: "queue", QueueDepth: depth, Running: running}})
	s.kickScheduler()
	return doc, nil
}

// lookup finds a job by ID within a namespace.
func (s *Server) lookup(ns *namespace, id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ns.jobs[id]
}

// kickScheduler nudges the dispatcher; a pending nudge coalesces.
func (s *Server) kickScheduler() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// scheduler is the DAG dispatcher loop: every kick (submit, job
// finish, cancel) re-scans each namespace's pending queue and starts
// every job whose dependencies are done, whose namespace has quota,
// and whose systems are all unclaimed.
func (s *Server) scheduler() {
	defer close(s.schedDone)
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-s.kick:
		}
		s.dispatch()
	}
}

// dispatch makes one scheduling pass. Reservations are all-or-nothing
// under s.mu — a job either claims every system it campaigns or stays
// queued — so two jobs can never hold-and-wait on each other's
// systems. The real on-disk lock claims happen in the job goroutine;
// the board guarantees they cannot conflict within this daemon.
func (s *Server) dispatch() {
	maxConcurrent := s.cfg.MaxConcurrentJobs
	if maxConcurrent <= 0 {
		maxConcurrent = defaultMaxConcurrent
	}
	type start struct {
		ns      *namespace
		j       *job
		systems []string
		// depth/running snapshot the namespace's queue shape after this
		// pass, captured under s.mu for the reserve event.
		depth, running int
	}
	type failure struct {
		ns  *namespace
		j   *job
		msg string
	}
	var starts []start
	var failures []failure
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	for _, name := range s.nsOrder {
		ns := s.namespaces[name]
		pend := ns.pending
		ns.pending = ns.pending[:0]
		for _, j := range pend {
			doc := j.snapshot()
			if doc.State != StateQueued {
				continue // cancelled while queued: drop from the queue
			}
			// DAG edges first: a job never claims systems while a
			// dependency is unfinished.
			blocked, failMsg := false, ""
			for _, need := range doc.Spec.Needs {
				dep := ns.jobs[need]
				if dep == nil {
					failMsg = fmt.Sprintf("needs unknown job %q", need)
					break
				}
				switch depState := dep.snapshot().State; depState {
				case StateDone:
				case StateFailed, StateCancelled:
					failMsg = fmt.Sprintf("dependency %s %s", need, depState)
				default:
					blocked = true
				}
				if failMsg != "" {
					break
				}
			}
			if failMsg != "" {
				failures = append(failures, failure{ns, j, failMsg})
				continue
			}
			if blocked || ns.exclusive || ns.running >= maxConcurrent {
				ns.pending = append(ns.pending, j)
				continue
			}
			// A coordinate job owns its namespace outright: its workers
			// share the namespace's coord/ and shardN/ directories, which
			// have no per-job isolation.
			if doc.Spec.Coordinate >= 2 && ns.running > 0 {
				ns.pending = append(ns.pending, j)
				continue
			}
			systems, err := resolveSystems(doc.Spec)
			if err != nil { // validated at submit; unreachable in practice
				failures = append(failures, failure{ns, j, err.Error()})
				continue
			}
			names := make([]string, len(systems))
			conflict := false
			for i, sys := range systems {
				names[i] = sys.Name()
				if _, held := ns.busy[names[i]]; held {
					conflict = true
				}
			}
			if conflict {
				ns.pending = append(ns.pending, j)
				continue
			}
			for _, n := range names {
				ns.busy[n] = doc.ID
			}
			ns.running++
			if doc.Spec.Coordinate >= 2 {
				ns.exclusive = true
			}
			starts = append(starts, start{ns: ns, j: j, systems: names})
		}
		mQueueDepth.With(ns.name).Set(float64(len(ns.pending)))
		mJobsRunning.With(ns.name).Set(float64(ns.running))
		for i := range starts {
			if starts[i].ns == ns {
				starts[i].depth, starts[i].running = len(ns.pending), ns.running
			}
		}
	}
	s.mu.Unlock()
	for _, f := range failures {
		s.finishJob(f.ns, f.j, StateFailed, f.msg)
	}
	for _, st := range starts {
		s.bus.Publish(dash.Event{Namespace: st.ns.name, Kind: dash.KindSched, Job: st.j.snapshot().ID,
			Sched: &dash.Sched{Op: "reserve", Systems: st.systems, QueueDepth: st.depth, Running: st.running}})
		s.jobsWG.Add(1)
		go func(st start) {
			defer s.jobsWG.Done()
			s.runJob(st.ns, st.j, st.systems)
			s.releaseReservation(st.ns, st.j, st.systems)
			s.kickScheduler()
		}(st)
	}
}

// releaseReservation returns a finished job's systems to the board.
func (s *Server) releaseReservation(ns *namespace, j *job, systems []string) {
	id := j.snapshot().ID
	s.mu.Lock()
	for _, name := range systems {
		if ns.busy[name] == id {
			delete(ns.busy, name)
		}
	}
	ns.running--
	if ns.exclusive && j.snapshot().Spec.Coordinate >= 2 {
		ns.exclusive = false
	}
	mJobsRunning.With(ns.name).Set(float64(ns.running))
	depth, running := len(ns.pending), ns.running
	s.mu.Unlock()
	s.bus.Publish(dash.Event{Namespace: ns.name, Kind: dash.KindSched, Job: id,
		Sched: &dash.Sched{Op: "release", Systems: systems, QueueDepth: depth, Running: running}})
}

// runJob executes one dispatched job end to end: claim the per-system
// write locks, run the campaign, publish the lifecycle, release the
// locks.
func (s *Server) runJob(ns *namespace, j *job, systems []string) {
	j.mu.Lock()
	if j.doc.State != StateQueued { // cancelled between dispatch and start
		j.mu.Unlock()
		return
	}
	now := time.Now().UTC()
	j.doc.State = StateRunning
	j.doc.StartedAt = &now
	jctx, cancel := context.WithCancel(s.ctx)
	j.cancel = cancel
	rec := newTraceRecorder(j.doc.ID, now)
	j.trace = rec
	doc := j.docLocked()
	j.mu.Unlock()
	defer cancel()

	// The board says these systems are free within this daemon; the
	// on-disk claims make that true against the world (and leave lock
	// files a foreign observer can read). They nest under the
	// namespace's own whole-directory lock.
	locks, err := ns.store.LockSystems(systems...)
	if err != nil {
		s.finishJob(ns, j, StateFailed, fmt.Sprintf("claiming system locks: %v", err))
		return
	}
	mLockWait.With(ns.name).Observe(time.Since(doc.CreatedAt).Seconds())
	defer func() {
		if uerr := locks.Unlock(); uerr != nil {
			s.logger.Error("releasing system locks", "job", doc.ID, "namespace", ns.name, "err", uerr)
		}
	}()

	if err := saveJournal(ns.dir, doc); err != nil {
		s.logger.Error("journal write failed", "job", doc.ID, "namespace", ns.name, "err", err)
	}
	j.publish(Event{Kind: "state", Job: doc.ID, State: StateRunning})
	s.bus.Publish(dash.Event{Namespace: ns.name, Kind: dash.KindJob, Job: doc.ID, State: StateRunning})
	mJobsByState.With(StateRunning, ns.name).Inc()
	s.logger.Info("job running", "job", doc.ID, "namespace", ns.name, "spec", describeSpec(doc.Spec))

	// The job's campaign feeds the shared progress pipeline; one
	// forwarder moves hub events onto the SSE stream and into the
	// job's trace recorder.
	events, cancelSub := j.hub.Subscribe(1024)
	forwarderDone := make(chan struct{})
	go func() {
		defer close(forwarderDone)
		for p := range events {
			p := p
			rec.observeProgress(p, time.Now().UTC())
			j.publish(Event{Kind: "progress", Job: doc.ID, Progress: &p})
			// The daemon-wide stream gets the same samples, throttled per
			// (namespace, job, system) by the bus.
			s.bus.FoldProgress(ns.name, doc.ID, p)
		}
	}()

	summaries, stats, err := s.execute(jctx, ns, j, doc.Spec, locks, rec)
	cancelSub()
	<-forwarderDone

	state := StateDone
	msg := ""
	switch {
	case err != nil && errors.Is(err, context.Canceled):
		state = StateCancelled
		msg = "cancelled; finished outcomes are persisted and the store resumes where it stopped"
		j.mu.Lock()
		byRequest := j.doc.CancelRequested
		j.mu.Unlock()
		if !byRequest {
			msg = "daemon shut down mid-campaign; " +
				"finished outcomes are persisted and the store resumes where it stopped"
		}
	case err != nil:
		state = StateFailed
		msg = err.Error()
	}
	j.mu.Lock()
	j.doc.Systems = summaries
	j.doc.Steals, j.doc.Spawns, j.doc.Retries = stats.steals, stats.spawns, stats.retries
	j.mu.Unlock()
	s.finishJob(ns, j, state, msg)
	tdoc := rec.finish(state, time.Now().UTC())
	if err := campaignstore.WriteJSON(tracePath(ns.dir, doc.ID), tdoc); err != nil {
		s.logger.Error("trace write failed", "job", doc.ID, "namespace", ns.name, "err", err)
	}
	s.logger.Info("job finished", "job", doc.ID, "namespace", ns.name, "state", state)
}

// finishJob moves a job to a terminal state, journals it, publishes
// the state event, and ends the SSE stream.
func (s *Server) finishJob(ns *namespace, j *job, state, msg string) {
	j.mu.Lock()
	if terminal(j.doc.State) {
		j.mu.Unlock()
		return
	}
	now := time.Now().UTC()
	j.doc.State = state
	j.doc.DoneAt = &now
	j.doc.Error = msg
	if j.doc.StartedAt != nil {
		mJobSeconds.Observe(now.Sub(*j.doc.StartedAt).Seconds())
	}
	doc := j.docLocked()
	j.mu.Unlock()
	mJobsByState.With(state, ns.name).Inc()
	if err := saveJournal(ns.dir, doc); err != nil {
		s.logger.Error("journal write failed", "job", doc.ID, "namespace", ns.name, "err", err)
	}
	// The job may have rewritten snapshots: drop the memoized table
	// analysis.
	ns.tablesMu.Lock()
	ns.tablesCache = nil
	ns.tablesMu.Unlock()
	j.publish(Event{Kind: "state", Job: doc.ID, State: state, Error: msg})
	j.closeStream()
	s.bus.Publish(dash.Event{Namespace: ns.name, Kind: dash.KindJob, Job: doc.ID, State: state, Error: msg})
	s.bus.ForgetJob(ns.name, doc.ID)
}

// coordStats carries a coordinate job's rebalance counters.
type coordStats struct{ steals, spawns, retries int }

// execute runs the campaign itself: the plain global scheduler, the
// per-system staged pipeline, or the embedded coordinator for
// coordinate jobs.
func (s *Server) execute(ctx context.Context, ns *namespace, j *job, spec JobSpec, locks *campaignstore.LockSet, rec *traceRecorder) ([]SystemSummary, coordStats, error) {
	systems, err := resolveSystems(spec)
	if err != nil {
		return nil, coordStats{}, err
	}
	workers := spec.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	opts := inject.DefaultOptions()
	if spec.SimDelay != "" {
		d, err := time.ParseDuration(spec.SimDelay)
		if err != nil {
			return nil, coordStats{}, err
		}
		opts.SimCostDelay = d
	}
	if spec.Coordinate >= 2 {
		return s.executeCoordinate(ctx, ns, j, spec, systems, opts, workers, locks, rec)
	}
	if len(spec.Stages) > 0 {
		summaries, err := s.executeStaged(ctx, ns, j, spec, systems, opts, workers, locks)
		return summaries, coordStats{}, err
	}

	results, err := spex.InferAll(ctx, systems, workers)
	if err != nil {
		return nil, coordStats{}, err
	}
	ws, _, err := shard.BuildWorkloads(systems, results, shard.Plan{})
	if err != nil {
		return nil, coordStats{}, err
	}
	gopts := shard.Options{Workers: workers, Inject: opts, OnProgress: j.hub.Emit}
	runs, runErr := shard.CampaignAll(ctx, locks, ws, gopts)

	var summaries []SystemSummary
	var saveErr error
	for _, run := range runs {
		rep := run.Report
		sum := SystemSummary{
			System:          run.Sys.Name(),
			Outcomes:        len(rep.Outcomes),
			Vulnerabilities: len(rep.Vulnerabilities()),
			UniqueLocations: rep.UniqueLocations(),
			Replayed:        rep.Replayed,
			Executed:        rep.Finished() - rep.Replayed,
			SimCost:         rep.TotalSimCost,
			Skipped:         rep.Skipped,
		}
		if run.Err != nil && saveErr == nil {
			saveErr = fmt.Errorf("%s: snapshot not saved: %w", run.Sys.Name(), run.Err)
		}
		if run.Status.Saved {
			// The save just wrote the index sidecar, so this is a stat
			// plus one small JSON read — not a snapshot re-parse.
			if idx, err := ns.index(run.Sys.Name()); err == nil {
				sum.Fingerprint = idx.Fingerprint
			}
		}
		summaries = append(summaries, sum)
	}
	if runErr != nil {
		return summaries, coordStats{}, runErr
	}
	return summaries, coordStats{}, saveErr
}

// executeStaged runs a stages: [...] job as one pipeline per system:
// each system advances infer → inject → eval on its own goroutine, so
// a fast system reaches eval while a slow one is still injecting —
// stage pipelining, not stage barriers. Each transition is published
// as a "stage" SSE event. The per-system campaigns still write through
// the job's per-system locks; systems outside the job's claim cannot
// be reached by construction.
func (s *Server) executeStaged(ctx context.Context, ns *namespace, j *job, spec JobSpec, systems []sim.System, opts inject.Options, workers int, locks *campaignstore.LockSet) ([]SystemSummary, error) {
	jobID := j.snapshot().ID
	has := make(map[string]bool, len(spec.Stages))
	for _, st := range spec.Stages {
		has[st] = true
	}
	var (
		mu        sync.Mutex
		summaries []SystemSummary
		firstErr  error
	)
	record := func(sum *SystemSummary, err error) {
		mu.Lock()
		defer mu.Unlock()
		if sum != nil {
			summaries = append(summaries, *sum)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	var wg sync.WaitGroup
	for _, sys := range systems {
		wg.Add(1)
		go func(sys sim.System) {
			defer wg.Done()
			name := sys.Name()
			emit := func(stage, state, errMsg string) {
				j.publish(Event{Kind: "stage", Job: jobID,
					Stage: &StageEvent{System: name, Stage: stage, State: state, Error: errMsg}})
				s.bus.Publish(dash.Event{Namespace: ns.name, Kind: dash.KindStage, Job: jobID,
					Stage: &dash.Stage{System: name, Stage: stage, State: state, Error: errMsg}})
			}
			// Inference feeds injection, so it runs whenever either
			// stage is requested; it is only *reported* when listed.
			var res *spex.Result
			if has[StageInfer] || has[StageInject] {
				if has[StageInfer] {
					emit(StageInfer, "running", "")
				}
				results, err := spex.InferAll(ctx, []sim.System{sys}, 1)
				if err != nil {
					if has[StageInfer] {
						emit(StageInfer, "failed", err.Error())
					}
					record(nil, err)
					return
				}
				res = results[0]
				if has[StageInfer] {
					emit(StageInfer, "done", "")
				}
			}
			sum := SystemSummary{System: name}
			if has[StageInject] {
				emit(StageInject, "running", "")
				ws, _, err := shard.BuildWorkloads([]sim.System{sys}, []*spex.Result{res}, shard.Plan{})
				if err != nil {
					emit(StageInject, "failed", err.Error())
					record(nil, err)
					return
				}
				gopts := shard.Options{Workers: workers, Inject: opts, OnProgress: j.hub.Emit}
				runs, runErr := shard.CampaignAll(ctx, locks, ws, gopts)
				if runErr != nil {
					emit(StageInject, "failed", runErr.Error())
					record(nil, runErr)
					return
				}
				run := runs[0]
				if run.Err != nil {
					emit(StageInject, "failed", run.Err.Error())
					record(nil, fmt.Errorf("%s: snapshot not saved: %w", name, run.Err))
					return
				}
				rep := run.Report
				sum.Outcomes = len(rep.Outcomes)
				sum.Vulnerabilities = len(rep.Vulnerabilities())
				sum.UniqueLocations = rep.UniqueLocations()
				sum.Replayed = rep.Replayed
				sum.Executed = rep.Finished() - rep.Replayed
				sum.SimCost = rep.TotalSimCost
				sum.Skipped = rep.Skipped
				emit(StageInject, "done", "")
			}
			if has[StageEval] {
				emit(StageEval, "running", "")
				idx, err := ns.index(name)
				if err != nil {
					emit(StageEval, "failed", err.Error())
					record(&sum, fmt.Errorf("%s: eval: %w", name, err))
					return
				}
				sum.Fingerprint = idx.Fingerprint
				sum.Outcomes = idx.Agg.Outcomes
				sum.Vulnerabilities = idx.Agg.Vulnerabilities
				emit(StageEval, "done", "")
			}
			record(&sum, nil)
		}(sys)
	}
	wg.Wait()
	sort.Slice(summaries, func(i, k int) bool { return summaries[i].System < summaries[k].System })
	if ctx.Err() != nil && firstErr == nil {
		firstErr = ctx.Err()
	}
	return summaries, firstErr
}

// executeCoordinate embeds the shard coordinator: N workers on lease
// files under the namespace's state directory, work-stealing
// rebalance, bounded worker retries, and the final merge into the
// canonical store. The daemon hands coord.Run the job's per-system
// lock set, so the final merge writes under the claims the scheduler
// already holds for this job.
func (s *Server) executeCoordinate(ctx context.Context, ns *namespace, j *job, spec JobSpec, systems []sim.System, opts inject.Options, workers int, locks *campaignstore.LockSet, rec *traceRecorder) ([]SystemSummary, coordStats, error) {
	jobID := j.snapshot().ID
	stealMin := coord.DefaultStealMin
	if spec.StealMin != nil {
		stealMin = *spec.StealMin
	}
	wopts := coord.WorkerOptions{Workers: workers, Inject: opts, OnProgress: j.hub.Emit}
	spawn := s.inprocSpawner(systems, wopts)
	if len(s.cfg.SpawnArgv) > 0 {
		spawn = coord.ExecSpawner(s.cfg.SpawnArgv)
	}
	cfg := coord.Config{
		StateDir:      ns.dir,
		Workers:       spec.Coordinate,
		Systems:       systems,
		Inject:        opts,
		PoolWorkers:   workers,
		StealMin:      stealMin,
		WorkerRetries: coord.DefaultWorkerRetries,
		Locks:         locks,
		Spawn:         spawn,
		OnEvent: func(e coord.Event) {
			rec.observeCoord(e, time.Now().UTC())
			ce := &CoordEvent{Kind: e.Kind, Worker: e.Worker, From: e.From, Keys: e.Keys, Attempt: e.Attempt}
			if e.Err != nil {
				ce.Error = e.Err.Error()
			}
			j.publish(Event{Kind: "coord", Job: jobID, Coord: ce})
			s.bus.Publish(dash.Event{Namespace: ns.name, Kind: dash.KindCoord, Job: jobID,
				Coord: &dash.Coord{Kind: ce.Kind, Worker: ce.Worker, From: ce.From,
					Keys: ce.Keys, Attempt: ce.Attempt, Error: ce.Error}})
		},
	}
	res, err := coord.Run(ctx, cfg)
	if err != nil {
		return nil, coordStats{}, err
	}
	var summaries []SystemSummary
	for _, st := range res.Stats {
		sum := SystemSummary{System: st.System, Outcomes: st.Outcomes, Fingerprint: st.Fingerprint}
		if idx, err := ns.index(st.System); err == nil {
			sum.Vulnerabilities = idx.Agg.Vulnerabilities
		}
		summaries = append(summaries, sum)
	}
	return summaries, coordStats{steals: res.Steals, spawns: res.Spawns, retries: res.Retries}, nil
}

// inprocSpawner runs coordinate-job workers as goroutines over
// coord.RunWorker — the default when no spawn template is configured.
// Each worker locks its own shard directory and feeds the job's
// progress hub.
func (s *Server) inprocSpawner(systems []sim.System, wopts coord.WorkerOptions) coord.SpawnFunc {
	return func(ctx context.Context, spec coord.WorkerSpec) (coord.Handle, error) {
		wctx, cancel := context.WithCancel(ctx)
		done := make(chan error, 1)
		go func() {
			_, err := coord.RunWorker(wctx, spec.LeasePath, spec.StateDir, systems, wopts)
			done <- err
		}()
		return &goWorkerHandle{cancel: cancel, done: done}, nil
	}
}

type goWorkerHandle struct {
	cancel context.CancelFunc
	done   chan error
}

func (h *goWorkerHandle) Wait() error { return <-h.done }
func (h *goWorkerHandle) Interrupt()  { h.cancel() }

func describeSpec(spec JobSpec) string {
	target := "all systems"
	if !spec.All {
		target = fmt.Sprintf("%v", spec.Systems)
	}
	if spec.Coordinate >= 2 {
		return fmt.Sprintf("%s, coordinate %d", target, spec.Coordinate)
	}
	if len(spec.Stages) > 0 {
		return fmt.Sprintf("%s, stages %v", target, spec.Stages)
	}
	return target
}

// ---- index cache ----

// index returns the system's outcome index, serving the in-memory copy
// while the snapshot file on disk still matches the (path, size, mtime)
// identity the copy was built from, and falling through to
// store.LoadIndex (sidecar, or full rebuild) otherwise.
func (ns *namespace) index(name string) (*outcomeindex.System, error) {
	path, fi, err := ns.store.SnapshotInfo(name)
	if err != nil {
		return nil, err
	}
	ns.idxMu.Lock()
	if c := ns.idxCache[name]; c != nil &&
		c.path == path && c.size == fi.Size() && c.mtime == fi.ModTime().UnixNano() {
		sys := c.sys
		ns.idxMu.Unlock()
		mIndexHits.Inc()
		return sys, nil
	}
	ns.idxMu.Unlock()
	sys, err := ns.store.LoadIndex(name)
	if err != nil {
		return nil, err
	}
	mIndexRebuilds.Inc()
	ns.idxMu.Lock()
	ns.idxCache[name] = &cachedIndex{path: path, size: fi.Size(), mtime: fi.ModTime().UnixNano(), sys: sys}
	ns.idxMu.Unlock()
	return sys, nil
}

// indexAll returns every stored system's index, sorted by system name.
func (ns *namespace) indexAll() ([]*outcomeindex.System, error) {
	names, err := ns.store.List()
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	out := make([]*outcomeindex.System, 0, len(names))
	for _, name := range names {
		sys, err := ns.index(name)
		if err != nil {
			return nil, err
		}
		out = append(out, sys)
	}
	return out, nil
}

// combinedEtag folds the per-system snapshot fingerprints into one
// entity tag for endpoints whose response spans systems. Any change to
// any snapshot changes its fingerprint, which changes the tag.
func combinedEtag(systems []*outcomeindex.System) string {
	h := sha256.New()
	for _, sys := range systems {
		fmt.Fprintf(h, "%s:%s\n", sys.System, sys.Fingerprint)
	}
	return `"` + hex.EncodeToString(h.Sum(nil))[:32] + `"`
}

// etagMatch reports whether the request's If-None-Match covers etag.
func etagMatch(r *http.Request, etag string) bool {
	inm := r.Header.Get("If-None-Match")
	if inm == "" {
		return false
	}
	for _, cand := range strings.Split(inm, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == etag {
			return true
		}
	}
	return false
}

// serveCached sets the ETag and answers 304 when the client already
// holds this version. Returns true when the request is done.
func serveCached(w http.ResponseWriter, r *http.Request, etag string) bool {
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") != "" {
		mEtagChecks.Inc()
	}
	if etagMatch(r, etag) {
		mEtag304.Inc()
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// ---- HTTP ----

// statusWriter captures the response code for the request counters. It
// forwards Flush so the SSE stream still streams through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handle registers one instrumented route: the wrapper times every
// request and counts it by endpoint name and status code. The endpoint
// name is a fixed label (never the raw path — paths carry unbounded
// job IDs, system names, and namespaces, which would explode the
// series space).
func handle(mux *http.ServeMux, pattern, endpoint string, h http.HandlerFunc) {
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		mHTTPSeconds.With(endpoint).Observe(time.Since(start).Seconds())
		mHTTPRequests.With(endpoint, strconv.Itoa(sw.code)).Inc()
	})
}

// nsHandler adapts a namespace-scoped handler to http.HandlerFunc:
// the un-prefixed route serves the default namespace, the /v1/ns/{ns}
// variant resolves (and, when create is set, lazily opens) the named
// one.
func (s *Server) nsHandler(create bool, h func(ns *namespace, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ns, err := s.namespaceFor(r.PathValue("ns"), create)
		if err != nil {
			code := http.StatusNotFound
			switch {
			case errors.Is(err, errUnavailable):
				code = http.StatusServiceUnavailable
			case strings.Contains(err.Error(), "bad namespace") || strings.Contains(err.Error(), "reserved"):
				code = http.StatusBadRequest
			}
			writeError(w, code, err)
			return
		}
		h(ns, w, r)
	}
}

// Handler returns the daemon's HTTP API. Every namespace-scoped route
// is registered twice: bare under /v1 (default namespace, today's
// URLs) and under /v1/ns/{ns} for named tenants.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	scoped := func(suffix, endpoint string, create bool, h func(*namespace, http.ResponseWriter, *http.Request)) {
		method, path, _ := strings.Cut(suffix, " ")
		handle(mux, method+" /v1"+path, endpoint, s.nsHandler(create, h))
		handle(mux, method+" /v1/ns/{ns}"+path, endpoint, s.nsHandler(create, h))
	}
	scoped("GET /status", "status", false, s.handleStatus)
	scoped("GET /jobs", "jobs_list", false, s.handleJobsList)
	scoped("POST /jobs", "jobs_create", true, s.handleJobsCreate)
	scoped("GET /jobs/{id}", "job_get", false, s.handleJobGet)
	scoped("DELETE /jobs/{id}", "job_delete", false, s.handleJobDelete)
	scoped("GET /jobs/{id}/events", "job_events", false, s.handleJobEvents)
	scoped("GET /jobs/{id}/trace", "job_trace", false, s.handleJobTrace)
	scoped("GET /systems", "systems", false, s.handleSystems)
	scoped("GET /systems/{name}/outcomes", "outcomes", false, s.handleOutcomes)
	scoped("GET /tables/{n}", "table", false, s.handleTable)
	scoped("GET /query", "query", false, s.handleQuery)
	handle(mux, "GET /v1/ns", "ns_list", s.handleNamespaces)
	// The aggregate stream is deliberately NOT a scoped() route: bare
	// /v1/events carries every namespace's events, not the default
	// namespace's — only the /v1/ns/{ns}/ variant filters.
	handle(mux, "GET /v1/events", "events", func(w http.ResponseWriter, r *http.Request) {
		s.serveBus(w, r, "")
	})
	handle(mux, "GET /v1/ns/{ns}/events", "events", s.nsHandler(false,
		func(ns *namespace, w http.ResponseWriter, r *http.Request) {
			s.serveBus(w, r, ns.name)
		}))
	handle(mux, "GET /ui/", "ui", dash.UI().ServeHTTP)
	mux.Handle("GET /ui", http.RedirectHandler("/ui/", http.StatusMovedPermanently))
	// The scrape endpoint itself stays outside the instrumented wrapper
	// so scraping never perturbs the request counters it reports.
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleMetrics serves the process-global registry in Prometheus text
// exposition format — every instrumented layer the daemon links
// (engine, store, hub, coordinator, sim monitor, this server).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default().WritePrometheus(w)
}

// handleNamespaces lists every open namespace with its queue shape.
func (s *Server) handleNamespaces(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]map[string]any, 0, len(s.nsOrder))
	for _, name := range s.nsOrder {
		ns := s.namespaces[name]
		out = append(out, map[string]any{
			"name":    name,
			"dir":     ns.dir,
			"jobs":    len(ns.order),
			"queued":  len(ns.pending),
			"running": ns.running,
		})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"namespaces": out})
}

// handleJobTrace serves a job's span tree: live from the recorder for
// jobs run by this daemon, from the persisted trace document for
// journaled history. ?format=text renders the indented tree.
func (s *Server) handleJobTrace(ns *namespace, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.lookup(ns, id)
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	j.mu.Lock()
	rec := j.trace
	j.mu.Unlock()
	var doc obs.TraceDoc
	if rec != nil {
		doc = rec.doc()
	} else {
		data, err := os.ReadFile(tracePath(ns.dir, id))
		if err != nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("no trace for job %q (the job never started under this daemon)", id))
			return
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("trace document: %w", err))
			return
		}
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, doc.Text())
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleStatus(ns *namespace, w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	counts := map[string]int{}
	running := ""
	var runningJobs []string
	for _, id := range ns.order {
		doc := ns.jobs[id].snapshot()
		counts[doc.State]++
		if doc.State == StateRunning {
			if running == "" {
				running = doc.ID
			}
			runningJobs = append(runningJobs, doc.ID)
		}
	}
	nsCount := len(s.nsOrder)
	s.mu.Unlock()
	systems, _ := ns.store.List()
	writeJSON(w, http.StatusOK, map[string]any{
		"namespace":    ns.name,
		"namespaces":   nsCount,
		"state_dir":    ns.dir,
		"jobs":         counts,
		"running":      running,
		"running_jobs": runningJobs,
		"systems":      systems,
	})
}

func (s *Server) handleJobsCreate(ns *namespace, w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	doc, err := s.submit(ns, spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errUnavailable) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, doc)
}

func (s *Server) handleJobsList(ns *namespace, w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	docs := make([]Job, 0, len(ns.order))
	for _, id := range ns.order {
		docs = append(docs, ns.jobs[id].snapshot())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": docs})
}

func (s *Server) handleJobGet(ns *namespace, w http.ResponseWriter, r *http.Request) {
	j := s.lookup(ns, r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleJobDelete(ns *namespace, w http.ResponseWriter, r *http.Request) {
	j := s.lookup(ns, r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	// The whole decision runs under the job lock, so it cannot race the
	// scheduler's queued→running transition: either the cancellation
	// wins (the job goroutine sees a terminal state and skips the job)
	// or the start wins (the DELETE lands on the running branch and
	// cancels the context).
	j.mu.Lock()
	switch j.doc.State {
	case StateQueued:
		// Never started: terminal immediately; the dispatcher drops it.
		now := time.Now().UTC()
		j.doc.State = StateCancelled
		j.doc.DoneAt = &now
		j.doc.Error = "cancelled while queued"
		doc := j.docLocked()
		j.mu.Unlock()
		mJobsByState.With(StateCancelled, ns.name).Inc()
		if err := saveJournal(ns.dir, doc); err != nil {
			s.logger.Error("journal write failed", "job", doc.ID, "namespace", ns.name, "err", err)
		}
		j.publish(Event{Kind: "state", Job: doc.ID, State: StateCancelled, Error: doc.Error})
		j.closeStream()
		s.bus.Publish(dash.Event{Namespace: ns.name, Kind: dash.KindJob, Job: doc.ID,
			State: StateCancelled, Error: doc.Error})
		s.bus.ForgetJob(ns.name, doc.ID)
		s.kickScheduler()
		writeJSON(w, http.StatusOK, doc)
	case StateRunning:
		j.doc.CancelRequested = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		writeJSON(w, http.StatusAccepted, j.snapshot())
	default:
		state := j.doc.State
		j.mu.Unlock()
		writeError(w, http.StatusConflict, fmt.Errorf("job is already %s", state))
	}
}

func (s *Server) handleJobEvents(ns *namespace, w http.ResponseWriter, r *http.Request) {
	j := s.lookup(ns, r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(e Event) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.ID, e.Kind, data); err != nil {
			return false
		}
		return true
	}

	backlog, dropped, ch, cancelSub := j.subscribe(lastEventID(r))
	defer cancelSub()
	if dropped > 0 {
		// SSE comment: the backlog cap evicted early events, so this
		// replay starts mid-stream.
		fmt.Fprintf(w, ": backlog truncated, %d early events dropped\n\n", dropped)
	}
	for _, e := range backlog {
		if !writeEvent(e) {
			return
		}
	}
	flusher.Flush()
	interval := s.cfg.KeepaliveInterval
	if interval <= 0 {
		interval = defaultKeepalive
	}
	keepalive := time.NewTicker(interval)
	defer keepalive.Stop()
	for {
		select {
		case e, open := <-ch:
			if !open {
				return // terminal state delivered; stream complete
			}
			if !writeEvent(e) {
				return
			}
			flusher.Flush()
		case <-keepalive.C:
			// SSE comment frame: keeps proxies and load balancers from
			// idling out a quiet stream; clients ignore comments.
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
			mSSEKeepalives.Inc()
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

// lastEventID parses the SSE Last-Event-ID request header a
// reconnecting EventSource (or spexwatch) sends: the id of the last
// frame it saw. Absent or malformed means "from the start".
func lastEventID(r *http.Request) uint64 {
	v := strings.TrimSpace(r.Header.Get("Last-Event-ID"))
	if v == "" {
		return 0
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// serveBus streams the daemon-wide dashboard bus as SSE — the handler
// behind GET /v1/events (namespace "" = every tenant) and
// GET /v1/ns/{ns}/events (one tenant). Each frame's id: is the bus
// sequence number, so a dropped connection resumes with Last-Event-ID
// from the bus's ring; when the ring has already moved past the
// requested id the replay starts mid-stream after a comment frame says
// so.
func (s *Server) serveBus(w http.ResponseWriter, r *http.Request, namespace string) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(e dash.Event) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data); err != nil {
			return false
		}
		return true
	}

	sub := s.bus.Subscribe(dash.SubOptions{Namespace: namespace, AfterSeq: lastEventID(r)})
	defer sub.Cancel()
	if sub.Truncated {
		fmt.Fprint(w, ": resume truncated, the ring moved past the requested id\n\n")
	}
	for _, e := range sub.Backlog {
		if !writeEvent(e) {
			return
		}
	}
	flusher.Flush()
	interval := s.cfg.KeepaliveInterval
	if interval <= 0 {
		interval = defaultKeepalive
	}
	keepalive := time.NewTicker(interval)
	defer keepalive.Stop()
	for {
		select {
		case e, open := <-sub.Ch:
			if !open {
				return // daemon shutting down; bus closed
			}
			if !writeEvent(e) {
				return
			}
			flusher.Flush()
		case <-keepalive.C:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
			mSSEKeepalives.Inc()
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

func (s *Server) handleSystems(ns *namespace, w http.ResponseWriter, r *http.Request) {
	idxs, err := ns.indexAll()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if serveCached(w, r, combinedEtag(idxs)) {
		return
	}
	systems := make([]string, len(idxs))
	for i, idx := range idxs {
		systems[i] = idx.System
	}
	writeJSON(w, http.StatusOK, map[string]any{"systems": systems})
}

// OutcomeView is one recorded outcome in API form.
type OutcomeView struct {
	Key           string `json:"key"`
	ID            string `json:"id"`
	Param         string `json:"param"`
	Description   string `json:"description,omitempty"`
	Reaction      string `json:"reaction"`
	Vulnerability bool   `json:"vulnerability"`
	Pinpointed    bool   `json:"pinpointed"`
	FailedTest    string `json:"failed_test,omitempty"`
	Loc           string `json:"loc,omitempty"`
	SimCost       int    `json:"sim_cost"`
}

// Paging bounds for the outcomes listing: without ?limit a page holds
// defaultPageLimit outcomes, and no ?limit can raise it past
// maxPageLimit — a million-outcome system must never be one response.
const (
	defaultPageLimit = 1000
	maxPageLimit     = 10000
)

// pageParams parses ?limit/?offset. A limit above maxPageLimit clamps.
func pageParams(r *http.Request) (limit, offset int, err error) {
	limit = defaultPageLimit
	if v := r.URL.Query().Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit < 1 {
			return 0, 0, fmt.Errorf("bad limit %q (want a positive integer)", v)
		}
		if limit > maxPageLimit {
			limit = maxPageLimit
		}
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		offset, err = strconv.Atoi(v)
		if err != nil || offset < 0 {
			return 0, 0, fmt.Errorf("bad offset %q (want a non-negative integer)", v)
		}
	}
	return limit, offset, nil
}

// storeErrCode maps a store read failure to its HTTP status: no
// campaign yet is the client's to fix (submit a job), a schema-stale
// snapshot converges by rerunning the campaign, anything else is a
// server fault.
func storeErrCode(err error) int {
	switch {
	case errors.Is(err, campaignstore.ErrNotExist):
		return http.StatusNotFound
	case errors.Is(err, campaignstore.ErrStale):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleOutcomes(ns *namespace, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	limit, offset, err := pageParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	idx, err := ns.index(name)
	if err != nil {
		writeError(w, storeErrCode(err), err)
		return
	}
	if serveCached(w, r, `"`+idx.Fingerprint+`"`) {
		return
	}
	// The page slices the doc list (already in ascending key order);
	// the tallies always cover the whole system, not the page.
	page := idx.Docs
	if offset >= len(page) {
		page = nil
	} else {
		page = page[offset:]
		if len(page) > limit {
			page = page[:limit]
		}
	}
	views := make([]OutcomeView, len(page))
	for i := range page {
		d := &page[i]
		views[i] = OutcomeView{
			Key:           d.Key,
			ID:            d.ID,
			Param:         d.Param,
			Description:   d.Description,
			Reaction:      d.ReactionName(),
			Vulnerability: d.Vulnerability(),
			Pinpointed:    d.Pinpointed,
			FailedTest:    d.FailedTest,
			Loc:           d.LocString(),
			SimCost:       d.SimCost,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"system":          idx.System,
		"saved_at":        idx.SavedAt,
		"total":           idx.Agg.Outcomes,
		"offset":          offset,
		"limit":           limit,
		"outcomes":        views,
		"by_reaction":     idx.Agg.ByReaction,
		"vulnerabilities": idx.Agg.Vulnerabilities,
	})
}

// handleQuery answers the cross-system misconfiguration query from the
// outcome indexes alone: which (parameter, rule) families match the
// filters, in how many systems, with what reactions. No snapshot is
// parsed — the posting lists narrow the scan per system.
func (s *Server) handleQuery(ns *namespace, w http.ResponseWriter, r *http.Request) {
	q := outcomeindex.Query{
		Param:    r.URL.Query().Get("param"),
		Kind:     r.URL.Query().Get("kind"),
		Reaction: r.URL.Query().Get("reaction"),
	}
	if v := r.URL.Query().Get("min-systems"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad min-systems %q (want a non-negative integer)", v))
			return
		}
		q.MinSystems = n
	}
	switch v := r.URL.Query().Get("all"); v {
	case "", "0", "false":
	case "1", "true":
		q.All = true
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad all %q (want 1 or 0)", v))
		return
	}
	idxs, err := ns.indexAll()
	if err != nil {
		writeError(w, storeErrCode(err), err)
		return
	}
	if serveCached(w, r, combinedEtag(idxs)) {
		return
	}
	groups := outcomeindex.Run(idxs, q)
	systems := make([]string, len(idxs))
	for i, idx := range idxs {
		systems[i] = idx.System
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"systems": systems,
		"total":   len(groups),
		"groups":  groups,
	})
}

// replayResults serves the memoized read-only analysis, recomputing it
// (report.ReplayFromIndex — the tables never parse a snapshot record)
// only when the combined store fingerprint moved — a client fetching
// all twelve tables pays for one index replay, not twelve. Failed
// replays (incomplete state) are never cached; the next request
// retries. The returned etag identifies the store state the analysis
// was computed from.
func (ns *namespace) replayResults(ctx context.Context) ([]*report.SystemResult, string, error) {
	idxs, err := ns.indexAll()
	if err != nil {
		return nil, "", err
	}
	etag := combinedEtag(idxs)
	ns.tablesMu.Lock()
	defer ns.tablesMu.Unlock()
	if ns.tablesCache != nil && ns.tablesKey == etag {
		mTablesHits.Inc()
		return ns.tablesCache, etag, nil
	}
	results, err := report.ReplayFromIndex(ctx, ns.store)
	if err != nil {
		return nil, "", err
	}
	mTablesRebuilds.Inc()
	ns.tablesCache = results
	ns.tablesKey = etag
	return results, etag, nil
}

func (s *Server) handleTable(ns *namespace, w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil || n < 1 || n > report.MaxTable {
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q (want 1-%d)", r.PathValue("n"), report.MaxTable))
		return
	}
	results, etag, err := ns.replayResults(r.Context())
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, report.ErrStateIncomplete) || errors.Is(err, campaignstore.ErrStale) ||
			errors.Is(err, campaignstore.ErrNotExist) {
			code = http.StatusConflict
		}
		writeError(w, code, err)
		return
	}
	if serveCached(w, r, etag) {
		return
	}
	if r.URL.Query().Get("format") == "text" {
		text, err := report.RenderTableText(n, results)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// spexeval prints each table with fmt.Println: table text + \n.
		fmt.Fprintln(w, text)
		return
	}
	tables, err := report.BuildTables(n, results)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"table": n, "tables": tables})
}
