package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spex/internal/server"
)

// statusDoc is the subset of GET /v1/status the scheduler tests poll.
type statusDoc struct {
	Namespace   string   `json:"namespace"`
	Running     string   `json:"running"`
	RunningJobs []string `json:"running_jobs"`
	Systems     []string `json:"systems"`
}

func getStatus(t *testing.T, base, path string) statusDoc {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", path, resp.StatusCode)
	}
	var doc statusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// postJobAt submits a job to an arbitrary jobs route (namespaced or
// not).
func postJobAt(t *testing.T, url, spec string) server.Job {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, body)
	}
	var doc server.Job
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("job document: %v\n%s", err, body)
	}
	return doc
}

// TestDisjointJobsRunConcurrently: two jobs over disjoint systems must
// both be running at once under the default quota — the per-system
// lock scheduler must not serialize what does not conflict.
func TestDisjointJobsRunConcurrently(t *testing.T) {
	dir := t.TempDir()
	_, ts := daemon(t, server.Config{StateDir: dir})

	// The delay holds both campaigns open long enough to observe the
	// overlap on /v1/status.
	j1 := postJob(t, ts.URL, `{"systems": ["proxyd"], "workers": 1, "sim_delay": "5ms"}`)
	j2 := postJob(t, ts.URL, `{"systems": ["ldapd"], "workers": 1, "sim_delay": "5ms"}`)

	deadline := time.Now().Add(time.Minute)
	for {
		st := getStatus(t, ts.URL, "/v1/status")
		if len(st.RunningJobs) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never overlapped: running_jobs=%v", st.RunningJobs)
		}
		time.Sleep(5 * time.Millisecond)
	}

	for _, id := range []string{j1.ID, j2.ID} {
		if final := waitTerminal(t, ts.URL, id, time.Minute); final.State != server.StateDone {
			t.Fatalf("job %s ended %s: %s", id, final.State, final.Error)
		}
	}
}

// TestSharedSystemJobsSerialize: two jobs over the same system must
// serialize on its lock — never both running — and the store must end
// up byte-for-byte where a strictly sequential submission lands it
// (same snapshot fingerprints, job by job).
func TestSharedSystemJobsSerialize(t *testing.T) {
	dirA := t.TempDir()
	_, tsA := daemon(t, server.Config{StateDir: dirA})

	// Concurrent submission: both land in the queue in one breath; the
	// scheduler may only dispatch one at a time.
	a1 := postJob(t, tsA.URL, `{"systems": ["ldapd"], "workers": 2, "sim_delay": "2ms"}`)
	a2 := postJob(t, tsA.URL, `{"systems": ["ldapd"], "workers": 2, "sim_delay": "2ms"}`)
	bothDone := func() bool {
		s1, s2 := getJob(t, tsA.URL, a1.ID).State, getJob(t, tsA.URL, a2.ID).State
		return s1 == server.StateDone && s2 == server.StateDone
	}
	deadline := time.Now().Add(time.Minute)
	for !bothDone() {
		if st := getStatus(t, tsA.URL, "/v1/status"); len(st.RunningJobs) > 1 {
			t.Fatalf("shared-system jobs ran concurrently: %v", st.RunningJobs)
		}
		if time.Now().After(deadline) {
			t.Fatal("jobs never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
	finalA1 := getJob(t, tsA.URL, a1.ID)
	finalA2 := getJob(t, tsA.URL, a2.ID)

	// Reference run: the same two jobs strictly one after the other in
	// a fresh directory.
	dirB := t.TempDir()
	_, tsB := daemon(t, server.Config{StateDir: dirB})
	b1 := postJob(t, tsB.URL, `{"systems": ["ldapd"], "workers": 2, "sim_delay": "2ms"}`)
	finalB1 := waitTerminal(t, tsB.URL, b1.ID, time.Minute)
	b2 := postJob(t, tsB.URL, `{"systems": ["ldapd"], "workers": 2, "sim_delay": "2ms"}`)
	finalB2 := waitTerminal(t, tsB.URL, b2.ID, time.Minute)

	fp := func(doc server.Job) string {
		if len(doc.Systems) != 1 {
			t.Fatalf("job %s summarizes %d systems", doc.ID, len(doc.Systems))
		}
		return doc.Systems[0].Fingerprint
	}
	if fp(finalA1) != fp(finalB1) || fp(finalA2) != fp(finalB2) {
		t.Fatalf("concurrent-submission fingerprints diverge from sequential: %s/%s vs %s/%s",
			fp(finalA1), fp(finalA2), fp(finalB1), fp(finalB2))
	}
	// The second job is a pure replay of the first either way.
	if finalA2.Systems[0].Executed != 0 {
		t.Errorf("second job executed fresh work after serialization: %+v", finalA2.Systems[0])
	}
}

// TestStagedJobPipelinesPerSystem: a stages: [...] job must pipeline
// per system — the small system (ldapd, 43 misconfigurations) reaches
// eval while the big one (proxyd, 154) is still injecting — instead of
// holding every system at a stage barrier.
func TestStagedJobPipelinesPerSystem(t *testing.T) {
	dir := t.TempDir()
	_, ts := daemon(t, server.Config{StateDir: dir})

	doc := postJob(t, ts.URL,
		`{"systems": ["ldapd", "proxyd"], "workers": 1, "sim_delay": "5ms", "stages": ["infer", "inject", "eval"]}`)
	sse := collectSSE(t, ts.URL, doc.ID)
	final := waitTerminal(t, ts.URL, doc.ID, 2*time.Minute)
	if final.State != server.StateDone {
		t.Fatalf("staged job ended %s: %s", final.State, final.Error)
	}

	events := sse.wait(t)
	// Index stage transitions in stream order.
	pos := map[string]int{}
	for i, e := range events {
		if e.Kind != "stage" || e.Stage == nil {
			continue
		}
		key := e.Stage.System + "/" + e.Stage.Stage + "/" + e.Stage.State
		if _, seen := pos[key]; !seen {
			pos[key] = i
		}
	}
	for _, sys := range []string{"ldapd", "proxyd"} {
		last := -1
		for _, step := range []string{
			"infer/running", "infer/done",
			"inject/running", "inject/done",
			"eval/running", "eval/done",
		} {
			i, ok := pos[sys+"/"+step]
			if !ok {
				t.Fatalf("no stage event %s/%s (stages seen: %v)", sys, step, pos)
			}
			if i < last {
				t.Errorf("stage event %s/%s out of order", sys, step)
			}
			last = i
		}
	}
	// The pipelining claim itself: ldapd finishes its whole pipeline
	// before proxyd finishes injecting. A stage barrier would force
	// ldapd's eval to wait on proxyd's inject.
	if pos["ldapd/eval/done"] > pos["proxyd/inject/done"] {
		t.Errorf("no pipelining: ldapd eval done at %d, after proxyd inject done at %d",
			pos["ldapd/eval/done"], pos["proxyd/inject/done"])
	}

	for _, sum := range final.Systems {
		if sum.Fingerprint == "" || sum.Outcomes == 0 {
			t.Errorf("staged summary incomplete: %+v", sum)
		}
	}
}

// TestJobDAGNeeds: needs: [...] edges delay a job until its
// dependency finishes, and a cancelled dependency fails the dependent.
func TestJobDAGNeeds(t *testing.T) {
	dir := t.TempDir()
	// One slot so the blocker keeps the queue still while the DAG is
	// arranged.
	_, ts := daemon(t, server.Config{StateDir: dir, MaxConcurrentJobs: 1})

	blocker := postJob(t, ts.URL, `{"systems": ["proxyd"], "workers": 1, "sim_delay": "5ms"}`)
	dep := postJob(t, ts.URL, `{"systems": ["ldapd"]}`)
	child := postJob(t, ts.URL, fmt.Sprintf(`{"systems": ["ldapd"], "needs": [%q]}`, dep.ID))

	// A dependency on an unknown job is rejected at submission.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"systems": ["ldapd"], "needs": ["job-999999"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("needs unknown job: %d, want 400", resp.StatusCode)
	}

	// Cancel the dependency while it is still queued: the child must
	// fail, not run.
	req, err := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+dep.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE queued dependency: %d, want 200", dresp.StatusCode)
	}
	childFinal := waitTerminal(t, ts.URL, child.ID, time.Minute)
	if childFinal.State != server.StateFailed || !strings.Contains(childFinal.Error, "cancelled") {
		t.Fatalf("child of cancelled dependency: %s %q", childFinal.State, childFinal.Error)
	}

	if final := waitTerminal(t, ts.URL, blocker.ID, time.Minute); final.State != server.StateDone {
		t.Fatalf("blocker ended %s: %s", final.State, final.Error)
	}

	// The happy path: a job needing a finished job runs and replays it.
	dep2 := postJob(t, ts.URL, `{"systems": ["ldapd"]}`)
	if final := waitTerminal(t, ts.URL, dep2.ID, time.Minute); final.State != server.StateDone {
		t.Fatalf("dep2 ended %s: %s", final.State, final.Error)
	}
	child2 := postJob(t, ts.URL, fmt.Sprintf(`{"systems": ["ldapd"], "needs": [%q]}`, dep2.ID))
	child2Final := waitTerminal(t, ts.URL, child2.ID, time.Minute)
	if child2Final.State != server.StateDone {
		t.Fatalf("child2 ended %s: %s", child2Final.State, child2Final.Error)
	}
	if len(child2Final.Systems) != 1 || child2Final.Systems[0].Executed != 0 {
		t.Errorf("child2 should replay its dependency's outcomes: %+v", child2Final.Systems)
	}
}

// TestNamespaceIsolation: namespaced routes address their own state
// directory under the root; the default namespace keeps the bare /v1
// URLs and the root layout.
func TestNamespaceIsolation(t *testing.T) {
	dir := t.TempDir()
	s, ts := daemon(t, server.Config{StateDir: dir})

	// POST creates the namespace; its store lives at <root>/alpha.
	doc := postJobAt(t, ts.URL+"/v1/ns/alpha/jobs", `{"systems": ["ldapd"], "workers": 2}`)
	if doc.Namespace != "alpha" {
		t.Fatalf("job namespace %q, want alpha", doc.Namespace)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		resp, err := http.Get(ts.URL + "/v1/ns/alpha/jobs/" + doc.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got server.Job
		err = json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got.State == server.StateDone {
			break
		}
		if got.State == server.StateFailed || got.State == server.StateCancelled {
			t.Fatalf("namespaced job ended %s: %s", got.State, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("namespaced job still %s", got.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The snapshot landed under the namespace directory, not the root.
	if _, err := os.Stat(filepath.Join(dir, "alpha", "ldapd.campaign.snap")); err != nil {
		t.Errorf("namespaced snapshot missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ldapd.campaign.snap")); err == nil {
		t.Error("namespaced job wrote into the root store")
	}

	// Each namespace sees only its own systems and jobs.
	if st := getStatus(t, ts.URL, "/v1/ns/alpha/status"); st.Namespace != "alpha" || len(st.Systems) != 1 {
		t.Errorf("alpha status: %+v", st)
	}
	if st := getStatus(t, ts.URL, "/v1/status"); st.Namespace != server.DefaultNamespace || len(st.Systems) != 0 {
		t.Errorf("default status sees alpha's state: %+v", st)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + doc.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("default namespace served alpha's job: %d", resp.StatusCode)
	}

	// Reads on an unknown namespace 404; invalid names 400.
	resp, err = http.Get(ts.URL + "/v1/ns/nope/systems")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown namespace: %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/ns/Bad.Name/jobs", "application/json",
		strings.NewReader(`{"systems": ["ldapd"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid namespace name: %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/ns/jobs/jobs", "application/json",
		strings.NewReader(`{"systems": ["ldapd"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("reserved namespace name: %d, want 400", resp.StatusCode)
	}

	// The namespace listing names both tenants.
	nresp, err := http.Get(ts.URL + "/v1/ns")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Namespaces []struct {
			Name string `json:"name"`
		} `json:"namespaces"`
	}
	err = json.NewDecoder(nresp.Body).Decode(&listing)
	nresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, n := range listing.Namespaces {
		names[n.Name] = true
	}
	if !names[server.DefaultNamespace] || !names["alpha"] {
		t.Errorf("namespace listing %v, want default and alpha", names)
	}

	// A restarted daemon rediscovers the namespace from its journal
	// directory.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	_, ts2 := daemon(t, server.Config{StateDir: dir})
	if st := getStatus(t, ts2.URL, "/v1/ns/alpha/status"); st.Namespace != "alpha" || len(st.Systems) != 1 {
		t.Errorf("restarted daemon lost namespace alpha: %+v", st)
	}
}

// TestRestartRequeuesQueuedJobs is the journal-adoption contract: a
// daemon that died leaves running jobs behind as failed (resubmit to
// resume), but a job that never left the queue — no lock claimed, no
// outcome written — is re-queued and runs under the new daemon.
func TestRestartRequeuesQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	jobsDir := filepath.Join(dir, "jobs")
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(doc server.Job) {
		t.Helper()
		data, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(jobsDir, doc.ID+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	created := time.Now().UTC().Add(-time.Hour)
	started := created.Add(time.Minute)
	// job-000001 was mid-campaign when the old daemon died; job-000002
	// never started.
	write(server.Job{
		ID:        "job-000001",
		Spec:      server.JobSpec{Systems: []string{"ldapd"}},
		State:     server.StateRunning,
		CreatedAt: created,
		StartedAt: &started,
	})
	write(server.Job{
		ID:        "job-000002",
		Spec:      server.JobSpec{Systems: []string{"ldapd"}, Workers: 2},
		State:     server.StateQueued,
		CreatedAt: created,
	})

	_, ts := daemon(t, server.Config{StateDir: dir})

	if doc := getJob(t, ts.URL, "job-000001"); doc.State != server.StateFailed ||
		!strings.Contains(doc.Error, "daemon stopped") {
		t.Fatalf("interrupted running job: %s %q, want failed", doc.State, doc.Error)
	}
	final := waitTerminal(t, ts.URL, "job-000002", time.Minute)
	if final.State != server.StateDone {
		t.Fatalf("re-queued job ended %s: %s", final.State, final.Error)
	}
	if len(final.Systems) != 1 || final.Systems[0].Outcomes == 0 {
		t.Fatalf("re-queued job produced no outcomes: %+v", final.Systems)
	}
	// New submissions continue the journal's ID sequence.
	if doc := postJob(t, ts.URL, `{"systems": ["ldapd"]}`); doc.ID != "job-000003" {
		t.Errorf("next job ID %s, want job-000003", doc.ID)
	}
}
