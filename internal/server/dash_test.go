package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"spex/internal/dash"
	"spex/internal/server"
)

// busCollector consumes a daemon-wide (or namespace-filtered) bus SSE
// stream until stopped, recording every decoded event.
type busCollector struct {
	mu     sync.Mutex
	events []dash.Event
	done   chan struct{}
	cancel context.CancelFunc
}

// collectBus attaches to url (a /v1/events or /v1/ns/{ns}/events
// endpoint). lastEventID > 0 resumes with the SSE Last-Event-ID header.
func collectBus(t *testing.T, url string, lastEventID uint64) *busCollector {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	c := &busCollector{done: make(chan struct{}), cancel: cancel}
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastEventID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("bus content-type = %q", ct)
	}
	go func() {
		defer close(c.done)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				var e dash.Event
				if json.Unmarshal([]byte(data), &e) == nil {
					c.mu.Lock()
					c.events = append(c.events, e)
					c.mu.Unlock()
				}
			}
		}
	}()
	return c
}

// stop tears the connection down and returns everything collected.
func (c *busCollector) stop() []dash.Event {
	c.cancel()
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]dash.Event(nil), c.events...)
}

// waitFor blocks until a collected event satisfies pred.
func (c *busCollector) waitFor(t *testing.T, what string, pred func(dash.Event) bool, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		for _, e := range c.events {
			if pred(e) {
				c.mu.Unlock()
				return
			}
		}
		c.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("bus stream never delivered %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// jobDone matches the terminal lifecycle event of one (ns, job).
func jobDone(ns, id string) func(dash.Event) bool {
	return func(e dash.Event) bool {
		return e.Namespace == ns && e.Kind == dash.KindJob && e.Job == id && e.State == server.StateDone
	}
}

// TestBusAggregateTwoNamespaces replays a two-job run across two
// namespaces against the aggregate stream: one subscription carries
// both tenants' lifecycles, per-job event order holds, the scheduler's
// reserve/release transitions appear, and progress is folded in.
func TestBusAggregateTwoNamespaces(t *testing.T) {
	t.Parallel()
	_, ts := daemon(t, server.Config{StateDir: t.TempDir()})

	c := collectBus(t, ts.URL+"/v1/events", 0)
	doc1 := postJob(t, ts.URL, `{"systems": ["proxyd"], "workers": 4}`)
	doc2 := postJobAt(t, ts.URL+"/v1/ns/tenant2/jobs", `{"systems": ["ldapd"], "workers": 4}`)

	// The scheduler's release publishes after the job's terminal event,
	// so it is the true end of each job's bus footprint.
	released := func(ns, id string) func(dash.Event) bool {
		return func(e dash.Event) bool {
			return e.Namespace == ns && e.Job == id && e.Kind == dash.KindSched && e.Sched.Op == "release"
		}
	}
	c.waitFor(t, "job 1 released", released("default", doc1.ID), time.Minute)
	c.waitFor(t, "job 2 released", released("tenant2", doc2.ID), time.Minute)
	events := c.stop()

	// Per-job assertions: lifecycle order and the scheduler envelope.
	for _, want := range []struct{ ns, id string }{
		{"default", doc1.ID}, {"tenant2", doc2.ID},
	} {
		var states []string
		var schedOps []string
		progress := 0
		var lastSeq uint64
		for _, e := range events {
			if e.Namespace != want.ns || e.Job != want.id {
				continue
			}
			if e.Seq <= lastSeq {
				t.Errorf("%s/%s: bus seq went backwards (%d after %d)", want.ns, want.id, e.Seq, lastSeq)
			}
			lastSeq = e.Seq
			if e.V != dash.SchemaVersion {
				t.Errorf("%s/%s: event schema version %d", want.ns, want.id, e.V)
			}
			switch e.Kind {
			case dash.KindJob:
				states = append(states, e.State)
			case dash.KindSched:
				schedOps = append(schedOps, e.Sched.Op)
			case dash.KindProgress:
				progress++
				if e.Progress == nil || e.Progress.System == "" {
					t.Errorf("%s/%s: progress event without a sample", want.ns, want.id)
				}
			}
		}
		if got := strings.Join(states, " "); got != "queued running done" {
			t.Errorf("%s/%s lifecycle = %q, want \"queued running done\"", want.ns, want.id, got)
		}
		if got := strings.Join(schedOps, " "); got != "queue reserve release" {
			t.Errorf("%s/%s sched ops = %q, want \"queue reserve release\"", want.ns, want.id, got)
		}
		if progress == 0 {
			t.Errorf("%s/%s: no progress events folded onto the bus", want.ns, want.id)
		}
	}
}

// TestBusNamespaceIsolation: /v1/ns/{ns}/events carries exactly that
// tenant's stream even while another namespace is busy.
func TestBusNamespaceIsolation(t *testing.T) {
	t.Parallel()
	_, ts := daemon(t, server.Config{StateDir: t.TempDir()})

	// Create tenant2 first so its filtered stream can attach (reads on
	// an unknown namespace 404).
	doc2 := postJobAt(t, ts.URL+"/v1/ns/tenant2/jobs", `{"systems": ["ldapd"], "workers": 4}`)
	c := collectBus(t, ts.URL+"/v1/ns/tenant2/events", 0)
	doc1 := postJob(t, ts.URL, `{"systems": ["proxyd"], "workers": 4}`)

	waitTerminal(t, ts.URL, doc1.ID, time.Minute)
	c.waitFor(t, "tenant2 job done", jobDone("tenant2", doc2.ID), time.Minute)
	for _, e := range c.stop() {
		if e.Namespace != "tenant2" {
			t.Errorf("namespace-filtered stream leaked an event from %q: %+v", e.Namespace, e)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/ns/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("events on an unknown namespace: %d, want 404", resp.StatusCode)
	}
}

// TestBusResumeLastEventID: a subscriber that reconnects with the last
// id it saw replays only what it missed, from the bus's ring.
func TestBusResumeLastEventID(t *testing.T) {
	t.Parallel()
	_, ts := daemon(t, server.Config{StateDir: t.TempDir()})

	c1 := collectBus(t, ts.URL+"/v1/events", 0)
	doc1 := postJob(t, ts.URL, `{"systems": ["proxyd"], "workers": 4}`)
	c1.waitFor(t, "first job done", jobDone("default", doc1.ID), time.Minute)
	first := c1.stop()
	lastSeq := first[len(first)-1].Seq

	// The "dropped connection": everything after lastSeq happens while
	// no subscriber is attached.
	doc2 := postJob(t, ts.URL, `{"systems": ["ldapd"], "workers": 4}`)
	waitTerminal(t, ts.URL, doc2.ID, time.Minute)

	c2 := collectBus(t, ts.URL+"/v1/events", lastSeq)
	c2.waitFor(t, "second job done after resume", jobDone("default", doc2.ID), time.Minute)
	for _, e := range c2.stop() {
		if e.Seq <= lastSeq {
			t.Errorf("resume replayed already-seen seq %d (resumed after %d)", e.Seq, lastSeq)
		}
		if e.Job == doc1.ID && e.Kind == dash.KindJob {
			t.Errorf("resume replayed the first job's lifecycle: %+v", e)
		}
	}
}

// TestJobEventsTerminalResume covers the per-job stream hardening: a
// subscription to an already-terminal job delivers the final state
// event and closes cleanly, frames carry ids, and Last-Event-ID resume
// skips the already-seen backlog.
func TestJobEventsTerminalResume(t *testing.T) {
	t.Parallel()
	_, ts := daemon(t, server.Config{StateDir: t.TempDir()})
	doc := postJob(t, ts.URL, `{"systems": ["proxyd"], "workers": 4}`)
	waitTerminal(t, ts.URL, doc.ID, time.Minute)

	// Already terminal: the stream replays the lifecycle, ends with the
	// final state, and closes without a client-side timeout.
	c := collectSSE(t, ts.URL, doc.ID)
	events := c.wait(t)
	if len(events) == 0 {
		t.Fatal("terminal job stream delivered nothing")
	}
	last := events[len(events)-1]
	if last.Kind != "state" || last.State != server.StateDone {
		t.Fatalf("terminal stream ended with %+v, want the done state event", last)
	}
	for _, e := range events {
		if e.ID == 0 {
			t.Fatalf("job event without an id: %+v", e)
		}
	}

	// Resuming after the final event replays nothing and still closes.
	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+doc.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", strconv.FormatUint(last.ID, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "data: ") {
		t.Errorf("resume past the final event replayed data:\n%s", body)
	}
}

// TestUIMountedOnDaemon: the embedded dashboard serves from the
// daemon's own mux with the ETag/304 read discipline.
func TestUIMountedOnDaemon(t *testing.T) {
	t.Parallel()
	_, ts := daemon(t, server.Config{StateDir: t.TempDir()})

	resp, err := http.Get(ts.URL + "/ui/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /ui/: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "spex dashboard") {
		t.Error("dashboard page missing its title")
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on /ui/")
	}
	req, err := http.NewRequest("GET", ts.URL+"/ui/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Errorf("/ui/ revalidation: %d, want 304", resp2.StatusCode)
	}
}
