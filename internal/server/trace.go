// Campaign trace recording: the daemon folds the progress and
// coordinator event streams it already publishes over SSE into an
// obs.Trace span tree — job → system → misconf, with steal spans under
// the job for coordinate runs. The recorder is wholly event-driven (no
// hooks inside the engine beyond the Elapsed field progress events
// carry), the finished tree is journaled next to the job document, and
// GET /v1/jobs/{id}/trace serves it as JSON or indented text.
package server

import (
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"spex/internal/coord"
	"spex/internal/obs"
	"spex/internal/shard"
)

// maxMisconfSpans bounds the misconf spans kept per system: a large
// campaign completes thousands of misconfigurations, and the trace is
// a readable summary, not a second outcome store. Once a system hits
// the cap, later outcomes only extend the system span; the count of
// elided spans is recorded as a `dropped` attribute on the system.
const maxMisconfSpans = 256

// tracePath is the job's persisted trace document, next to its journal
// entry. The trace's top-level key is "job", not "id", so loadJournal
// never mistakes it for a job document.
func tracePath(stateDir, id string) string {
	return filepath.Join(stateDir, jobsDirName, id+".trace.json")
}

// traceRecorder accumulates one running job's span tree.
type traceRecorder struct {
	mu      sync.Mutex
	tr      *obs.Trace
	job     *obs.Span
	systems map[string]*systemSpans
}

// systemSpans tracks one system's open span and its misconf budget.
type systemSpans struct {
	span *obs.Span
	// last is the newest event time — the end the system span closes
	// with, so one slow system doesn't stretch every other system's
	// span to the job's end.
	last    time.Time
	kept    int
	dropped int
}

func newTraceRecorder(jobID string, start time.Time) *traceRecorder {
	tr := obs.NewTrace(jobID)
	return &traceRecorder{
		tr:      tr,
		job:     tr.Span(obs.SpanJob, jobID, "", start),
		systems: make(map[string]*systemSpans),
	}
}

// observeProgress folds one completed-outcome event into the tree. The
// system span opens on the system's first event; each outcome becomes
// a misconf span reconstructed from the event's Elapsed (start = now −
// elapsed), zero-length for cache replays.
func (rec *traceRecorder) observeProgress(p shard.Progress, now time.Time) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	sys := rec.systems[p.System]
	if sys == nil {
		sys = &systemSpans{span: rec.tr.Span(obs.SpanSystem, p.System, rec.job.ID(), now.Add(-p.Elapsed))}
		rec.systems[p.System] = sys
	}
	sys.last = now
	if sys.kept >= maxMisconfSpans {
		sys.dropped++
		return
	}
	sys.kept++
	name := p.Key
	if name == "" {
		name = fmt.Sprintf("outcome-%d", p.SystemDone)
	}
	span := rec.tr.Span(obs.SpanMisconf, name, sys.span.ID(), now.Add(-p.Elapsed))
	status := "ok"
	switch {
	case p.Yielded:
		status = "yielded"
	case p.Failed:
		status = "failed"
	}
	if p.Elapsed == 0 {
		span.SetAttr("replayed", "true")
	}
	span.Finish(now, status)
}

// observeCoord records work-stealing rebalances as steal spans under
// the job (point events: zero duration, the move is instantaneous from
// the coordinator's view).
func (rec *traceRecorder) observeCoord(e coord.Event, now time.Time) {
	if e.Kind != "steal" {
		return
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	span := rec.tr.Span(obs.SpanSteal, fmt.Sprintf("worker-%d<-worker-%d", e.Worker, e.From), rec.job.ID(), now)
	span.SetAttr("keys", strconv.Itoa(e.Keys))
	span.Finish(now, "ok")
}

// finish closes every open span with the job's terminal state and
// snapshots the tree.
func (rec *traceRecorder) finish(state string, now time.Time) obs.TraceDoc {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, sys := range rec.systems {
		end := sys.last
		if end.IsZero() {
			end = now
		}
		if sys.dropped > 0 {
			sys.span.SetAttr("dropped", strconv.Itoa(sys.dropped))
		}
		sys.span.Finish(end, state)
	}
	rec.job.Finish(now, state)
	return rec.tr.Doc()
}

// doc snapshots the tree as it stands — served for still-running jobs.
func (rec *traceRecorder) doc() obs.TraceDoc {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.tr.Doc()
}
