package server_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spex/internal/obs"
	"spex/internal/server"
)

// TestSSEKeepalive: an open event stream carries ": keepalive" comment
// frames at the configured idle interval, interleaved with (and
// invisible to) the JSON events.
func TestSSEKeepalive(t *testing.T) {
	dir := t.TempDir()
	_, ts := daemon(t, server.Config{StateDir: dir, Workers: 1, KeepaliveInterval: 10 * time.Millisecond})

	// A slowed single-worker campaign keeps the stream open long
	// enough for several keepalive ticks.
	doc := postJob(t, ts.URL, `{"systems": ["proxyd"], "workers": 1, "sim_delay": "5ms"}`)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + doc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	keepalives, events := 0, 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == ": keepalive" {
			keepalives++
		}
		if strings.HasPrefix(line, "data: ") {
			events++
		}
	}
	if keepalives == 0 {
		t.Errorf("stream closed after %d events with no keepalive frames", events)
	}
	if events == 0 {
		t.Error("stream carried no events")
	}
	waitTerminal(t, ts.URL, doc.ID, time.Minute)
}

// TestJobTrace: a finished job serves a span tree — job → system →
// misconf — as JSON and as indented text, and the tree is persisted
// next to the job journal.
func TestJobTrace(t *testing.T) {
	dir := t.TempDir()
	_, ts := daemon(t, server.Config{StateDir: dir, Workers: 2})

	doc := postJob(t, ts.URL, `{"systems": ["ldapd"], "workers": 2}`)
	final := waitTerminal(t, ts.URL, doc.ID, 2*time.Minute)
	if final.State != server.StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + doc.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %d", resp.StatusCode)
	}
	var tdoc obs.TraceDoc
	if err := json.NewDecoder(resp.Body).Decode(&tdoc); err != nil {
		t.Fatal(err)
	}
	if tdoc.Job != doc.ID {
		t.Errorf("trace job = %q, want %q", tdoc.Job, doc.ID)
	}
	var jobSpan, sysSpan *obs.SpanDoc
	misconfs := 0
	for i := range tdoc.Spans {
		s := &tdoc.Spans[i]
		switch s.Kind {
		case obs.SpanJob:
			jobSpan = s
		case obs.SpanSystem:
			sysSpan = s
		case obs.SpanMisconf:
			misconfs++
		}
	}
	if jobSpan == nil || jobSpan.Status != server.StateDone {
		t.Fatalf("job span = %+v, want status done", jobSpan)
	}
	if sysSpan == nil || sysSpan.Name != "ldapd" || sysSpan.Parent != jobSpan.ID {
		t.Fatalf("system span = %+v, want ldapd under %s", sysSpan, jobSpan.ID)
	}
	if misconfs == 0 {
		t.Error("trace has no misconf spans")
	}

	text, err := http.Get(ts.URL + "/v1/jobs/" + doc.ID + "/trace?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer text.Body.Close()
	body, _ := io.ReadAll(text.Body)
	if !strings.Contains(string(body), "job "+doc.ID) ||
		!strings.Contains(string(body), "  system ldapd") {
		t.Errorf("text trace missing tree lines:\n%s", body)
	}

	if _, err := os.Stat(filepath.Join(dir, "jobs", doc.ID+".trace.json")); err != nil {
		t.Errorf("trace not persisted: %v", err)
	}
}

// TestMetricsEndpoint: GET /metrics serves Prometheus text covering
// every instrumented layer the daemon links.
func TestMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	_, ts := daemon(t, server.Config{StateDir: dir, Workers: 2})

	doc := postJob(t, ts.URL, `{"systems": ["ldapd"], "workers": 2}`)
	waitTerminal(t, ts.URL, doc.ID, 2*time.Minute)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content-type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	families := make(map[string]bool)
	for _, line := range strings.Split(string(body), "\n") {
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			families[strings.Fields(name)[0]] = true
		}
	}
	// One family per instrumented layer proves the whole stack is
	// linked into the exposition.
	for _, want := range []string{
		"spex_engine_tasks_total",
		"spex_store_saves_total",
		"spex_hub_events_total",
		"spex_sim_boots_total",
		"spex_campaign_outcomes_fresh_total",
		"spex_http_requests_total",
		"spex_jobs_total",
		"spex_job_seconds",
	} {
		if !families[want] {
			t.Errorf("/metrics missing family %s", want)
		}
	}
	if len(families) < 20 {
		t.Errorf("/metrics exposes %d families, want >= 20", len(families))
	}
}
