package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"spex/internal/campaignstore"
	"spex/internal/shard"
	"spex/internal/sim"
	"spex/internal/targets"
)

// JobSpec is the body of POST /v1/jobs: which campaign to run and how.
type JobSpec struct {
	// Systems names the targets to campaign (see GET /v1/systems for
	// the store's contents, `spex -list` for all targets).
	Systems []string `json:"systems,omitempty"`
	// All campaigns every target — the CLI's -all.
	All bool `json:"all,omitempty"`
	// Workers bounds the campaign's worker pool (0 = the daemon's
	// default, itself 0 = one per CPU).
	Workers int `json:"workers,omitempty"`
	// Coordinate, when >= 2, runs the campaign through the embedded
	// shard coordinator (internal/coord) with this many workers:
	// plan → lease → steal → merge under the daemon's state
	// directory, exactly like `spexinj -coordinate N`.
	Coordinate int `json:"coordinate,omitempty"`
	// StealMin overrides the coordinator's rebalance threshold
	// (coordinate jobs only; nil = coord.DefaultStealMin).
	StealMin *int `json:"steal_min,omitempty"`
	// SimDelay realizes each simulated cost unit as wall time (a Go
	// duration string, e.g. "2ms") — the scheduling knob demos and the
	// cancellation smoke use; it does not affect outcomes or snapshot
	// identity.
	SimDelay string `json:"sim_delay,omitempty"`
	// Needs lists job IDs (in the same namespace) that must reach
	// "done" before this job may start — the DAG edge. A dependency
	// that fails or is cancelled fails this job instead of running it.
	// Only already-submitted jobs can be named, so cycles cannot form.
	Needs []string `json:"needs,omitempty"`
	// Stages declares a per-system pipeline instead of the flat
	// campaign: an ordered subsequence of infer → inject → eval. Each
	// system advances through the stages independently — a fast system
	// can be in eval while a slow one is still injecting — and every
	// transition is published as a "stage" SSE event. Incompatible with
	// Coordinate.
	Stages []string `json:"stages,omitempty"`
}

// Pipeline stage names (JobSpec.Stages), in pipeline order.
const (
	StageInfer  = "infer"
	StageInject = "inject"
	StageEval   = "eval"
)

// validateStages checks that stages is a non-repeating, in-order
// subsequence of infer → inject → eval.
func validateStages(stages []string) error {
	pos := map[string]int{StageInfer: 0, StageInject: 1, StageEval: 2}
	last := -1
	for _, st := range stages {
		p, ok := pos[st]
		if !ok {
			return fmt.Errorf("unknown stage %q (want %s, %s, %s)", st, StageInfer, StageInject, StageEval)
		}
		if p <= last {
			return fmt.Errorf("stages must follow %s → %s → %s order without repeats", StageInfer, StageInject, StageEval)
		}
		last = p
	}
	return nil
}

// Job states. A job is terminal in StateDone, StateFailed, or
// StateCancelled.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// terminal reports whether a job state is final.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// SystemSummary is one system's result line on a finished job.
type SystemSummary struct {
	System          string `json:"system"`
	Outcomes        int    `json:"outcomes"`
	Vulnerabilities int    `json:"vulnerabilities,omitempty"`
	UniqueLocations int    `json:"unique_locations,omitempty"`
	Replayed        int    `json:"replayed"`
	Executed        int    `json:"executed"`
	SimCost         int    `json:"sim_cost"`
	Skipped         int    `json:"skipped,omitempty"`
	// Fingerprint is the system's snapshot fingerprint after the job
	// (campaignstore.Snapshot.Fingerprint) — the replay-equivalence
	// hash a client diffs against a CLI run's store.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Job is the API document describing one submitted campaign — also the
// journal document persisted under <state>/jobs/, so a restarted
// daemon lists the jobs that ran before it.
type Job struct {
	ID string `json:"id"`
	// Namespace names the namespace the job was submitted to ("" in
	// journals written before namespaces existed — the default).
	Namespace string     `json:"namespace,omitempty"`
	Spec      JobSpec    `json:"spec"`
	State     string     `json:"state"`
	CreatedAt time.Time  `json:"created_at"`
	StartedAt *time.Time `json:"started_at,omitempty"`
	DoneAt    *time.Time `json:"done_at,omitempty"`
	// CancelRequested reports that DELETE was accepted while the job
	// ran; the state turns cancelled once the engine drains.
	CancelRequested bool `json:"cancel_requested,omitempty"`
	// Error explains a failed or cancelled job.
	Error string `json:"error,omitempty"`
	// Systems summarizes the campaign per target (terminal jobs).
	Systems []SystemSummary `json:"systems,omitempty"`
	// Steals/Spawns/Retries describe a coordinate job's rebalancing.
	Steals  int `json:"steals,omitempty"`
	Spawns  int `json:"spawns,omitempty"`
	Retries int `json:"retries,omitempty"`
}

// Event is one entry of a job's SSE stream (GET /v1/jobs/{id}/events).
type Event struct {
	// ID is the job-local event sequence number, assigned by publish —
	// the SSE frame's id:, which a reconnecting subscriber sends back
	// as Last-Event-ID to resume after the last event it saw. IDs stay
	// stable across the terminal backlog compaction, so a resume point
	// remains meaningful after the job finishes.
	ID uint64 `json:"event_id,omitempty"`
	// Kind is "state", "progress", "coord", or "stage".
	Kind string `json:"kind"`
	Job  string `json:"job"`
	// State carries the new job state ("state" events); Error the
	// failure, if any.
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	// Progress is one campaign progress event ("progress") — the same
	// shard.Progress the CLI renderers consume, straight off the job's
	// progress hub. Under a coordinate job the counts are per worker.
	Progress *shard.Progress `json:"progress,omitempty"`
	// Coord is one coordinator lifecycle event ("coord"): plan,
	// resume, spawn, exit, retry, steal, merge.
	Coord *CoordEvent `json:"coord,omitempty"`
	// Stage is one pipeline stage transition ("stage" events, staged
	// jobs only): a system entering or leaving infer/inject/eval.
	Stage *StageEvent `json:"stage,omitempty"`
}

// StageEvent is one per-system stage transition of a staged pipeline
// job.
type StageEvent struct {
	System string `json:"system"`
	Stage  string `json:"stage"`
	// State is "running", "done", or "failed".
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// CoordEvent mirrors coord.Event in JSON-friendly form.
type CoordEvent struct {
	Kind    string `json:"kind"`
	Worker  int    `json:"worker,omitempty"`
	From    int    `json:"from,omitempty"`
	Keys    int    `json:"keys,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Error   string `json:"error,omitempty"`
}

// eventBacklog bounds a job's replayable event history. Progress
// events dominate (one per outcome); a late SSE subscriber mostly
// needs the tail plus the state events, so old entries drop first.
const eventBacklog = 4096

// job pairs the API document with the live machinery: the progress
// hub feeding the campaign's OnProgress into SSE, the subscriber set,
// and the cancel hook.
type job struct {
	mu  sync.Mutex
	doc Job
	// cancel stops the running campaign (set while running; a queued
	// job cancels by state flip).
	cancel context.CancelFunc
	// hub is the campaign progress pipeline (shard.Hub) — the same
	// events a CLI renderer would consume.
	hub *shard.Hub
	// events is the bounded backlog replayed to late subscribers;
	// dropped counts entries the cap evicted; eventSeq numbers every
	// published event (Event.ID) for SSE id/Last-Event-ID resume.
	events   []Event
	dropped  int
	eventSeq uint64
	subs     map[int]chan Event
	nextSub  int
	// closed marks the stream ended (terminal state published).
	closed bool
	// trace is the job's span recorder, set when the job starts
	// running; nil for journaled history from previous daemon runs
	// (their trace, if any, is read back from disk).
	trace *traceRecorder
}

func newJob(doc Job) *job {
	return &job{doc: doc, hub: shard.NewHub(), subs: make(map[int]chan Event)}
}

// snapshot returns a copy of the API document.
func (j *job) snapshot() Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.docLocked()
}

func (j *job) docLocked() Job {
	doc := j.doc
	doc.Systems = append([]SystemSummary(nil), j.doc.Systems...)
	return doc
}

// publish appends an event to the backlog and fans it out to live
// subscribers (non-blocking; a full subscriber loses its oldest).
func (j *job) publish(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.eventSeq++
	e.ID = j.eventSeq
	if len(j.events) >= eventBacklog {
		j.events = j.events[1:]
		j.dropped++
	}
	j.events = append(j.events, e)
	for _, ch := range j.subs {
		select {
		case ch <- e:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- e:
			default:
			}
		}
	}
}

// closeStream publishes nothing further and closes every subscriber
// channel — called once the terminal state event is in the backlog.
// The backlog is compacted to its state and coordinator events:
// per-outcome progress dominates it (thousands of entries for a large
// job) and is dead weight once the job is terminal, and a resident
// daemon holds every terminal job for its lifetime — without the
// compaction, memory would grow without bound across jobs. A late
// subscriber still replays the lifecycle; live progress was only ever
// meaningful while the campaign ran.
func (j *job) closeStream() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	for id, ch := range j.subs {
		delete(j.subs, id)
		close(ch)
	}
	j.hub.Close()
	kept := j.events[:0]
	for _, e := range j.events {
		if e.Kind != "progress" {
			kept = append(kept, e)
		} else {
			j.dropped++
		}
	}
	// Reallocate so the retained slice does not pin the original
	// backlog array.
	j.events = append([]Event(nil), kept...)
}

// subscribe returns the backlog so far (plus how many early events the
// backlog cap has evicted — a late subscriber can tell its history is
// truncated) and a live channel; cancel detaches. Backlog and channel
// are consistent: no event is both in the backlog and delivered on the
// channel, and none is lost in between. afterID resumes a reconnecting
// subscriber (SSE Last-Event-ID): only events with ID > afterID replay
// — on a terminal job that can be nothing but the final state event,
// and the closed channel then ends the stream cleanly.
func (j *job) subscribe(afterID uint64) (backlog []Event, dropped int, ch <-chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, e := range j.events {
		if e.ID > afterID {
			backlog = append(backlog, e)
		}
	}
	live := make(chan Event, 256)
	if j.closed {
		close(live)
		return backlog, j.dropped, live, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = live
	return backlog, j.dropped, live, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(live)
		}
	}
}

// resolveSystems validates a spec's target list.
func resolveSystems(spec JobSpec) ([]sim.System, error) {
	if spec.All {
		return targets.All(), nil
	}
	if len(spec.Systems) == 0 {
		return nil, errors.New(`job names no targets: set "all": true or "systems": [...]`)
	}
	seen := make(map[string]bool)
	var out []sim.System
	for _, name := range spec.Systems {
		sys := targets.ByName(name)
		if sys == nil {
			return nil, fmt.Errorf("unknown system %q", name)
		}
		if seen[sys.Name()] {
			continue
		}
		seen[sys.Name()] = true
		out = append(out, sys)
	}
	return out, nil
}

// jobsDirName is the durable job journal under the state directory.
// (campaignstore ignores subdirectories, so journal files can never be
// mistaken for snapshots.)
const jobsDirName = "jobs"

// journalPath is the job's document file.
func journalPath(stateDir, id string) string {
	return filepath.Join(stateDir, jobsDirName, id+".json")
}

// saveJournal persists the document atomically
// (campaignstore.WriteJSON, the advisory-document contract: readers
// never see a torn document; the snapshots carry the real outcomes, so
// no fsync).
func saveJournal(stateDir string, doc Job) error {
	return campaignstore.WriteJSON(journalPath(stateDir, doc.ID), doc)
}

// loadJournal reads every persisted job document, oldest ID first. A
// document still queued belonged to a daemon that died before the job
// ever started — no lock was claimed, no outcome written — so it is
// returned as queued for the restarted daemon to re-queue. A document
// that had started (running) is adopted as failed: the campaign state
// itself is resumable — snapshots only ever hold finished outcomes —
// so the fix is to resubmit. Repaired documents are written back so
// the journal converges.
func loadJournal(stateDir string) ([]Job, int, error) {
	dir := filepath.Join(stateDir, jobsDirName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, fmt.Errorf("server: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("server: %w", err)
	}
	var jobs []Job
	maxSeq := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		var doc Job
		if json.Unmarshal(data, &doc) != nil || doc.ID == "" {
			continue
		}
		if !terminal(doc.State) && doc.State != StateQueued {
			doc.Error = "daemon stopped while the job was " + doc.State +
				"; campaign snapshots hold every finished outcome — resubmit to resume"
			doc.State = StateFailed
			if doc.DoneAt == nil {
				now := time.Now().UTC()
				doc.DoneAt = &now
			}
			_ = saveJournal(stateDir, doc)
		}
		var seq int
		if _, err := fmt.Sscanf(doc.ID, "job-%d", &seq); err == nil && seq > maxSeq {
			maxSeq = seq
		}
		jobs = append(jobs, doc)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	return jobs, maxSeq, nil
}
