// Package dash is the daemon's live-operations surface: one
// process-wide event bus that aggregates what previously existed only
// per job — job lifecycle transitions across every namespace,
// scheduler reservations and releases, queue depth, stage
// transitions, coordinator rebalancing, and throttled per-system
// campaign progress folded in from each job's shard.Hub — plus the
// embedded web UI that renders it.
//
// The bus is the owned aggregation contract: internal/server publishes
// into it from every lifecycle site, and every daemon-wide consumer
// (the /v1/events SSE stream, the /ui/ dashboard, a remote spexwatch)
// is just a subscriber. Like shard.Hub, delivery is best-effort by
// design — a stalled subscriber can never stall the daemon. Each
// subscriber has a bounded buffer; when it is full the OLDEST buffered
// event is dropped to make room (drop accounting lands on
// spex_dash_dropped_total, labelled by the dropped event's namespace).
// Raw channel sends of dash.Event outside this package are a spexlint
// `hubsend` finding: Publish is the only emit path.
//
// Every event carries a schema version (Event.V) and a bus-assigned,
// strictly increasing sequence number (Event.Seq). The bus retains a
// bounded ring of recent events, so a subscriber reconnecting with the
// last sequence number it saw (SSE Last-Event-ID) replays what it
// missed — or learns the ring has moved past it (Sub.Truncated).
package dash

import (
	"strings"
	"sync"
	"time"

	"spex/internal/shard"
)

// SchemaVersion is the event payload schema carried in Event.V.
// Consumers should ignore events with a newer major version than they
// understand; additive field changes do not bump it.
const SchemaVersion = 1

// Event kinds. One SSE frame's `event:` field is exactly the kind.
const (
	// KindJob is a job lifecycle transition (Event.State holds the new
	// state, Event.Error a failure message).
	KindJob = "job"
	// KindSched is a scheduler transition: a job queued, its systems
	// reserved, or its reservation released (Event.Sched).
	KindSched = "sched"
	// KindProgress is a throttled per-system campaign progress sample
	// (Event.Progress) folded in from the owning job's shard.Hub.
	KindProgress = "progress"
	// KindStage is a staged job's per-system pipeline transition
	// (Event.Stage).
	KindStage = "stage"
	// KindCoord is a coordinate job's rebalance lifecycle event
	// (Event.Coord).
	KindCoord = "coord"
)

// Sched is the payload of a KindSched event.
type Sched struct {
	// Op is "queue" (job entered the queue), "reserve" (the dispatcher
	// claimed the job's systems and started it), or "release" (a
	// finished job returned its systems to the board).
	Op string `json:"op"`
	// Systems lists the reserved/released system names (reserve and
	// release only).
	Systems []string `json:"systems,omitempty"`
	// QueueDepth and Running are the namespace's queue shape after the
	// transition.
	QueueDepth int `json:"queue_depth"`
	Running    int `json:"running"`
}

// Stage is the payload of a KindStage event — one system entering or
// leaving a pipeline stage of a staged job.
type Stage struct {
	System string `json:"system"`
	Stage  string `json:"stage"`
	// State is "running", "done", or "failed".
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// Coord is the payload of a KindCoord event, mirroring the
// coordinator's lifecycle verbs (plan, resume, spawn, exit, retry,
// steal, merge).
type Coord struct {
	Kind    string `json:"kind"`
	Worker  int    `json:"worker,omitempty"`
	From    int    `json:"from,omitempty"`
	Keys    int    `json:"keys,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Event is one entry of the daemon-wide stream — the typed, versioned
// wire form of GET /v1/events (compact JSON in each SSE data: line,
// the Seq mirrored as the frame's id:).
type Event struct {
	// V is the payload schema version (SchemaVersion; Publish stamps
	// it).
	V int `json:"v"`
	// Seq is the bus-assigned, strictly increasing sequence number —
	// the SSE event id a reconnecting subscriber resumes from.
	Seq uint64 `json:"seq"`
	// Time is the publish time (UTC; Publish stamps it when zero).
	Time time.Time `json:"time"`
	// Namespace names the tenant the event belongs to.
	Namespace string `json:"namespace"`
	// Kind discriminates the payload: job, sched, progress, stage,
	// coord.
	Kind string `json:"kind"`
	// Job is the owning job ID (every kind except pure queue-shape
	// sched events).
	Job string `json:"job,omitempty"`
	// State and Error carry a KindJob lifecycle transition.
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	// Progress is a KindProgress sample — the same shard.Progress shape
	// a job's own SSE stream carries, throttled per (job, system).
	Progress *shard.Progress `json:"progress,omitempty"`
	Sched    *Sched          `json:"sched,omitempty"`
	Stage    *Stage          `json:"stage,omitempty"`
	Coord    *Coord          `json:"coord,omitempty"`
}

// Options tunes a Bus.
type Options struct {
	// Ring bounds how many recent events are retained for
	// Last-Event-ID resume (0 = 4096).
	Ring int
	// ProgressInterval throttles FoldProgress: at most one KindProgress
	// event per (namespace, job, system) per interval, plus the first
	// sample and every completion (0 = 200ms).
	ProgressInterval time.Duration
}

const (
	defaultRing             = 4096
	defaultProgressInterval = 200 * time.Millisecond
	// AllNamespaces is the subscriber-gauge label for an unfiltered
	// subscription.
	AllNamespaces = "all"
)

// Bus is the daemon-wide event bus. Create with NewBus; publish with
// Publish (and FoldProgress for the throttled progress feed); attach
// consumers with Subscribe; Close ends every subscription.
type Bus struct {
	opts Options

	mu     sync.Mutex
	seq    uint64
	ring   []Event // oldest first, len <= opts.Ring
	subs   map[int]*subscriber
	nextID int
	closed bool
	// lastEmit throttles FoldProgress per (namespace, job, system).
	lastEmit map[string]time.Time
}

type subscriber struct {
	ch chan Event
	ns string // "" = all namespaces
}

// NewBus returns an empty bus.
func NewBus(opts Options) *Bus {
	if opts.Ring <= 0 {
		opts.Ring = defaultRing
	}
	if opts.ProgressInterval <= 0 {
		opts.ProgressInterval = defaultProgressInterval
	}
	return &Bus{
		opts:     opts,
		subs:     make(map[int]*subscriber),
		lastEmit: make(map[string]time.Time),
	}
}

// Publish stamps the event (V, Seq, Time), appends it to the resume
// ring, and fans it out to every matching subscriber. It never blocks:
// a subscriber whose buffer is full loses its oldest buffered event.
// Publish after Close is a no-op.
func (b *Bus) Publish(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.seq++
	e.Seq = b.seq
	if e.V == 0 {
		e.V = SchemaVersion
	}
	if e.Time.IsZero() {
		e.Time = time.Now().UTC()
	}
	if len(b.ring) >= b.opts.Ring {
		b.ring = b.ring[1:]
	}
	b.ring = append(b.ring, e)
	mDashEvents.With(e.Namespace).Inc()
	for _, sub := range b.subs {
		if sub.ns != "" && sub.ns != e.Namespace {
			continue
		}
		select {
		case sub.ch <- e:
		default:
			// Full: shed the oldest buffered event, then retry once. The
			// retry can still lose the race against a draining consumer —
			// then the buffer has room next Publish anyway.
			select {
			case old := <-sub.ch:
				mDashDropped.With(old.Namespace).Inc()
			default:
			}
			select {
			case sub.ch <- e:
			default:
				mDashDropped.With(e.Namespace).Inc()
			}
		}
	}
}

// FoldProgress folds one job's campaign progress stream into the bus,
// throttled per (namespace, job, system): the first sample for a
// system always publishes, a completed system or campaign always
// publishes, and everything in between is sampled at most once per
// ProgressInterval — the daemon-wide stream carries live bars without
// carrying every one of a million outcomes.
func (b *Bus) FoldProgress(namespace, job string, p shard.Progress) {
	key := namespace + "\x00" + job + "\x00" + p.System
	final := p.SystemTotal > 0 && p.SystemDone >= p.SystemTotal
	campaignDone := p.Total > 0 && p.Done >= p.Total
	now := time.Now()
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	last, seen := b.lastEmit[key]
	if seen && !final && !campaignDone && now.Sub(last) < b.opts.ProgressInterval {
		b.mu.Unlock()
		return
	}
	if final {
		delete(b.lastEmit, key)
	} else {
		b.lastEmit[key] = now
	}
	b.mu.Unlock()
	pc := p
	b.Publish(Event{Namespace: namespace, Kind: KindProgress, Job: job, Progress: &pc})
}

// ForgetJob drops a finished job's progress-throttle state so a
// resident daemon's memory does not grow with job history.
func (b *Bus) ForgetJob(namespace, job string) {
	prefix := namespace + "\x00" + job + "\x00"
	b.mu.Lock()
	defer b.mu.Unlock()
	for k := range b.lastEmit {
		if strings.HasPrefix(k, prefix) {
			delete(b.lastEmit, k)
		}
	}
}

// Sub is one attached subscription.
type Sub struct {
	// Backlog replays ring events the subscriber asked for (Seq >
	// AfterSeq, namespace-filtered), oldest first. Consume it before
	// ranging over Ch; no event is in both, and none is lost between.
	Backlog []Event
	// Truncated reports that AfterSeq resume could not be fully
	// honored: the ring has already evicted events past AfterSeq, so
	// the backlog starts mid-stream.
	Truncated bool
	// Ch delivers live events until Cancel or Bus.Close, whichever
	// comes first (buffered events drain before the close).
	Ch <-chan Event
	// Cancel detaches the subscription; safe to call more than once.
	Cancel func()
}

// SubOptions tunes one subscription.
type SubOptions struct {
	// Namespace filters the stream to one tenant ("" = every
	// namespace).
	Namespace string
	// Buffer is the subscriber's bounded channel size (min 1, 0 =
	// 256). When full, the oldest buffered event is dropped.
	Buffer int
	// AfterSeq resumes after a previously seen sequence number: ring
	// events with Seq > AfterSeq replay as Backlog. Zero subscribes
	// live-only (no replay).
	AfterSeq uint64
}

// Subscribe attaches a consumer. On a closed bus the returned channel
// is already closed (the backlog, from the final ring, still replays).
func (b *Bus) Subscribe(o SubOptions) Sub {
	if o.Buffer < 1 {
		o.Buffer = 256
	}
	gaugeNS := o.Namespace
	if gaugeNS == "" {
		gaugeNS = AllNamespaces
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var backlog []Event
	truncated := false
	if o.AfterSeq > 0 {
		if len(b.ring) > 0 && b.ring[0].Seq > o.AfterSeq+1 {
			truncated = true
		}
		if len(b.ring) == 0 && b.seq > o.AfterSeq {
			truncated = true
		}
		for _, e := range b.ring {
			if e.Seq <= o.AfterSeq {
				continue
			}
			if o.Namespace != "" && e.Namespace != o.Namespace {
				continue
			}
			backlog = append(backlog, e)
		}
	}
	ch := make(chan Event, o.Buffer)
	if b.closed {
		close(ch)
		return Sub{Backlog: backlog, Truncated: truncated, Ch: ch, Cancel: func() {}}
	}
	id := b.nextID
	b.nextID++
	b.subs[id] = &subscriber{ch: ch, ns: o.Namespace}
	mDashSubscribers.With(gaugeNS).Add(1)
	cancel := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if _, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(ch)
			mDashSubscribers.With(gaugeNS).Add(-1)
		}
	}
	return Sub{Backlog: backlog, Truncated: truncated, Ch: ch, Cancel: cancel}
}

// Close ends the stream: every subscriber channel closes after its
// buffered events drain, and future Publish/Subscribe calls are
// no-ops (Subscribe still replays the final ring).
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, sub := range b.subs {
		delete(b.subs, id)
		close(sub.ch)
		gaugeNS := sub.ns
		if gaugeNS == "" {
			gaugeNS = AllNamespaces
		}
		mDashSubscribers.With(gaugeNS).Add(-1)
	}
}
