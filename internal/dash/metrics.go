// Bus metrics: event volume and drop accounting per namespace, plus
// the live subscriber gauge per subscription filter — the
// observability of the observability surface itself.
package dash

import "spex/internal/obs"

const (
	metricDashEvents      = "spex_dash_events_total"
	metricDashSubscribers = "spex_dash_subscribers"
	metricDashDropped     = "spex_dash_dropped_total"
)

var (
	mDashEvents = obs.Default().CounterVec(metricDashEvents,
		"events published on the daemon-wide dashboard bus, by namespace", "namespace")
	mDashSubscribers = obs.Default().GaugeVec(metricDashSubscribers,
		"live dashboard bus subscribers, by namespace filter (\"all\" = unfiltered)", "namespace")
	mDashDropped = obs.Default().CounterVec(metricDashDropped,
		"bus events dropped for lagging subscribers (drop-oldest), by the dropped event's namespace", "namespace")
)
