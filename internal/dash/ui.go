// The embedded web UI: three static assets (one HTML page, one JS
// file, one stylesheet) compiled into the daemon with go:embed — no
// external dependency, no CDN, no network fetch beyond the daemon's
// own API. The handler serves them with strong ETags (content hashes
// computed once at startup) and answers If-None-Match with 304, the
// same conditional-read discipline as the data endpoints the page
// calls.
package dash

import (
	"crypto/sha256"
	"embed"
	"encoding/hex"
	"fmt"
	"io/fs"
	"net/http"
	"path"
	"strings"
)

//go:embed static
var staticFS embed.FS

// asset is one embedded file with its precomputed entity tag.
type asset struct {
	body        []byte
	etag        string
	contentType string
}

// uiAssets maps request paths (relative to /ui/) to embedded assets;
// built once at init so every request is a map lookup.
var uiAssets = loadAssets()

func loadAssets() map[string]asset {
	assets := make(map[string]asset)
	entries, err := fs.ReadDir(staticFS, "static")
	if err != nil {
		panic(fmt.Sprintf("dash: embedded UI assets missing: %v", err))
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		body, err := staticFS.ReadFile(path.Join("static", e.Name()))
		if err != nil {
			panic(fmt.Sprintf("dash: embedded UI asset %s: %v", e.Name(), err))
		}
		sum := sha256.Sum256(body)
		assets[e.Name()] = asset{
			body:        body,
			etag:        `"` + hex.EncodeToString(sum[:])[:32] + `"`,
			contentType: contentType(e.Name()),
		}
	}
	if _, ok := assets["index.html"]; !ok {
		panic("dash: embedded UI has no index.html")
	}
	return assets
}

func contentType(name string) string {
	switch path.Ext(name) {
	case ".html":
		return "text/html; charset=utf-8"
	case ".js":
		return "text/javascript; charset=utf-8"
	case ".css":
		return "text/css; charset=utf-8"
	case ".svg":
		return "image/svg+xml"
	default:
		return "application/octet-stream"
	}
}

// UI returns the handler for the embedded dashboard, to be mounted at
// GET /ui/. "/ui/" and "/ui/index.html" serve the page; "/ui/app.js"
// and "/ui/style.css" serve the assets; anything else 404s.
func UI() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/ui/")
		if name == "" {
			name = "index.html"
		}
		a, ok := uiAssets[name]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("ETag", a.etag)
		w.Header().Set("Cache-Control", "no-cache") // revalidate every time
		for _, cand := range strings.Split(r.Header.Get("If-None-Match"), ",") {
			cand = strings.TrimPrefix(strings.TrimSpace(cand), "W/")
			if cand == a.etag || cand == "*" {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		w.Header().Set("Content-Type", a.contentType)
		_, _ = w.Write(a.body)
	})
}
