package dash

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spex/internal/shard"
)

func jobEvent(ns, job, state string) Event {
	return Event{Namespace: ns, Kind: KindJob, Job: job, State: state}
}

// drain consumes a subscription until its channel closes.
func drain(sub Sub) []Event {
	out := append([]Event(nil), sub.Backlog...)
	for e := range sub.Ch {
		out = append(out, e)
	}
	return out
}

func TestPublishStampsAndOrders(t *testing.T) {
	b := NewBus(Options{})
	sub := b.Subscribe(SubOptions{})
	for i := 0; i < 5; i++ {
		b.Publish(jobEvent("default", fmt.Sprintf("job-%d", i), "queued"))
	}
	b.Close()
	events := drain(sub)
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, i+1)
		}
		if e.V != SchemaVersion {
			t.Errorf("event %d: schema version %d, want %d", i, e.V, SchemaVersion)
		}
		if e.Time.IsZero() {
			t.Errorf("event %d: zero timestamp", i)
		}
	}
}

func TestNamespaceFilter(t *testing.T) {
	b := NewBus(Options{})
	all := b.Subscribe(SubOptions{})
	only := b.Subscribe(SubOptions{Namespace: "tenant1"})
	b.Publish(jobEvent("default", "job-1", "queued"))
	b.Publish(jobEvent("tenant1", "job-1", "queued"))
	b.Publish(jobEvent("tenant2", "job-1", "queued"))
	b.Close()
	if got := len(drain(all)); got != 3 {
		t.Errorf("unfiltered subscriber got %d events, want 3", got)
	}
	events := drain(only)
	if len(events) != 1 || events[0].Namespace != "tenant1" {
		t.Errorf("tenant1 subscriber got %+v, want exactly the tenant1 event", events)
	}
}

// TestSlowConsumerDropsOldest: a full subscriber loses its oldest
// buffered event, never blocks Publish, and converges on the freshest
// events; drops land on the per-namespace counter.
func TestSlowConsumerDropsOldest(t *testing.T) {
	b := NewBus(Options{})
	before := mDashDropped.With("default").Value()
	slow := b.Subscribe(SubOptions{Buffer: 1})
	const n = 50
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= n; i++ {
			b.Publish(jobEvent("default", fmt.Sprintf("job-%d", i), "queued"))
		}
		b.Close()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}
	events := drain(slow)
	if len(events) == 0 {
		t.Fatal("slow subscriber got nothing")
	}
	last := events[len(events)-1]
	if last.Job != fmt.Sprintf("job-%d", n) {
		t.Errorf("slow subscriber did not converge on the freshest event: got %q", last.Job)
	}
	dropped := mDashDropped.With("default").Value() - before
	if dropped == 0 {
		t.Error("drop counter did not move for a lagging subscriber")
	}
	if int(dropped)+len(events) != n {
		t.Errorf("accounting: %d delivered + %d dropped != %d published", len(events), dropped, n)
	}
}

func TestResumeAfterSeq(t *testing.T) {
	b := NewBus(Options{})
	for i := 1; i <= 5; i++ {
		b.Publish(jobEvent("default", fmt.Sprintf("job-%d", i), "queued"))
	}
	sub := b.Subscribe(SubOptions{AfterSeq: 2})
	if sub.Truncated {
		t.Error("resume within the ring reported truncated")
	}
	if len(sub.Backlog) != 3 || sub.Backlog[0].Seq != 3 {
		t.Fatalf("backlog after seq 2: got %d events starting at seq %d, want 3 starting at 3",
			len(sub.Backlog), sub.Backlog[0].Seq)
	}
	sub.Cancel()
	b.Close()
}

func TestResumePastRingIsTruncated(t *testing.T) {
	b := NewBus(Options{Ring: 2})
	for i := 1; i <= 5; i++ {
		b.Publish(jobEvent("default", fmt.Sprintf("job-%d", i), "queued"))
	}
	sub := b.Subscribe(SubOptions{AfterSeq: 1})
	if !sub.Truncated {
		t.Error("resume past the ring not reported truncated")
	}
	if len(sub.Backlog) != 2 || sub.Backlog[0].Seq != 4 {
		t.Fatalf("backlog: got %d events starting at %d, want the ring's 2 starting at 4",
			len(sub.Backlog), sub.Backlog[0].Seq)
	}
	sub.Cancel()
	b.Close()
}

func TestFoldProgressThrottles(t *testing.T) {
	b := NewBus(Options{ProgressInterval: time.Hour}) // suppress everything mid-flight
	sub := b.Subscribe(SubOptions{})
	for i := 1; i <= 10; i++ {
		b.FoldProgress("default", "job-1", shard.Progress{
			System: "proxyd", SystemDone: i, SystemTotal: 10, Done: i, Total: 20,
		})
	}
	b.Close()
	events := drain(sub)
	// First sample and the system completion always publish; the eight
	// in between fall to the throttle.
	if len(events) != 2 {
		t.Fatalf("got %d progress events, want 2 (first + final): %+v", len(events), events)
	}
	if events[0].Progress.SystemDone != 1 || events[1].Progress.SystemDone != 10 {
		t.Errorf("want first and final samples, got %d and %d",
			events[0].Progress.SystemDone, events[1].Progress.SystemDone)
	}
}

func TestForgetJobClearsThrottleState(t *testing.T) {
	b := NewBus(Options{ProgressInterval: time.Hour})
	b.FoldProgress("default", "job-1", shard.Progress{System: "proxyd", SystemDone: 1, SystemTotal: 10})
	b.ForgetJob("default", "job-1")
	b.mu.Lock()
	n := len(b.lastEmit)
	b.mu.Unlock()
	if n != 0 {
		t.Errorf("throttle state survived ForgetJob: %d keys", n)
	}
	b.Close()
}

// TestConcurrentPublishSubscribe is the -race fan-out test: many
// publishers, subscribers joining and leaving mid-stream, progress
// folding, all concurrent.
func TestConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus(Options{ProgressInterval: time.Millisecond})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ns := fmt.Sprintf("ns%d", p%2)
			for i := 0; i < 200; i++ {
				b.Publish(jobEvent(ns, "job-1", "running"))
				b.FoldProgress(ns, "job-1", shard.Progress{
					System: "proxyd", SystemDone: i, SystemTotal: 200, Done: i, Total: 200,
				})
			}
		}(p)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sub := b.Subscribe(SubOptions{Namespace: fmt.Sprintf("ns%d", s%2), Buffer: 4})
			for i := 0; i < 50; i++ {
				select {
				case _, open := <-sub.Ch:
					if !open {
						return
					}
				case <-time.After(time.Second):
					return
				}
			}
			sub.Cancel()
		}(s)
	}
	wg.Wait()
	b.Close()
	// Publish and Subscribe after Close are harmless no-ops.
	b.Publish(jobEvent("ns0", "job-2", "queued"))
	sub := b.Subscribe(SubOptions{})
	if _, open := <-sub.Ch; open {
		t.Error("subscription on a closed bus delivered a live event")
	}
}

func TestUIServesEmbeddedAssets(t *testing.T) {
	ts := httptest.NewServer(UI())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/ui/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /ui/: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/html; charset=utf-8" {
		t.Errorf("content type %q", ct)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on the embedded page")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/ui/", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Errorf("revalidation: %d, want 304", resp2.StatusCode)
	}

	for _, name := range []string{"app.js", "style.css"} {
		resp, err := http.Get(ts.URL + "/ui/" + name)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET /ui/%s: %d", name, resp.StatusCode)
		}
		if resp.Header.Get("ETag") == "" {
			t.Errorf("GET /ui/%s: no ETag", name)
		}
	}

	resp3, err := http.Get(ts.URL + "/ui/nope.js")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("GET /ui/nope.js: %d, want 404", resp3.StatusCode)
	}
}
