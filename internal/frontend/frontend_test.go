package frontend

import (
	"go/ast"
	"testing"

	"spex/internal/constraint"
)

const testSrc = `package t

import (
	"strings"
	"time"
)

const maxThreads = 16
const doubled = maxThreads * 2
const name = "server"

type Config struct {
	Port    int64
	Name    string
	Timeout time.Duration
	Nested  Inner
}

type Inner struct {
	Flag bool
}

var gConf = &Config{}
var counter int32
var table = []option{{"a", 1}}

type option struct {
	key string
	val int64
}

func helper(x int64) int64 { return x + 1 }

func (c *Config) validate() bool { return c.Port > 0 }

func use() {
	v := helper(gConf.Port)
	_ = v
	s := strings.ToUpper(gConf.Name)
	_ = s
}
`

func parse(t *testing.T) *Project {
	t.Helper()
	p, err := Parse("t", map[string]string{"t.go": testSrc})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestStructCollection(t *testing.T) {
	p := parse(t)
	cfg, ok := p.Structs["Config"]
	if !ok {
		t.Fatal("Config struct not collected")
	}
	if cfg.Fields["Port"].BasicOf() != constraint.BasicInt64 {
		t.Errorf("Port type = %s", cfg.Fields["Port"])
	}
	if cfg.Fields["Timeout"].BasicOf() != constraint.BasicInt64 {
		t.Errorf("Duration type = %s", cfg.Fields["Timeout"])
	}
	if name, ok := cfg.FieldAt(2); !ok || name != "Name" {
		t.Errorf("FieldAt(2) = %q", name)
	}
	if _, ok := cfg.FieldAt(99); ok {
		t.Error("FieldAt out of range must fail")
	}
}

func TestFuncCollection(t *testing.T) {
	p := parse(t)
	h, ok := p.Funcs["helper"]
	if !ok {
		t.Fatal("helper not collected")
	}
	if len(h.ParamNames) != 1 || h.ParamNames[0] != "x" {
		t.Errorf("params = %v", h.ParamNames)
	}
	if len(h.Results) != 1 || h.Results[0].BasicOf() != constraint.BasicInt64 {
		t.Errorf("results = %v", h.Results)
	}
	m, ok := p.Funcs["Config.validate"]
	if !ok {
		t.Fatal("method not collected under Recv.Method")
	}
	if m.RecvName != "c" {
		t.Errorf("receiver = %q", m.RecvName)
	}
}

func TestConstEvaluation(t *testing.T) {
	p := parse(t)
	if p.Consts["maxThreads"] != 16 {
		t.Errorf("maxThreads = %d", p.Consts["maxThreads"])
	}
	if p.Consts["doubled"] != 32 {
		t.Errorf("doubled = %d", p.Consts["doubled"])
	}
	if p.StrConsts["name"] != "server" {
		t.Errorf("name = %q", p.StrConsts["name"])
	}
}

func TestPkgVars(t *testing.T) {
	p := parse(t)
	g := p.PkgVars["gConf"]
	if g == nil || g.Kind != KindPointer || g.Deref().Name != "Config" {
		t.Errorf("gConf type = %s", g)
	}
	if p.PkgVars["counter"].BasicOf() != constraint.BasicInt32 {
		t.Errorf("counter = %s", p.PkgVars["counter"])
	}
	if _, ok := p.PkgVarDecls["table"]; !ok {
		t.Error("table initializer not recorded")
	}
}

func TestTypeOfExpressions(t *testing.T) {
	p := parse(t)
	use := p.Funcs["use"]
	scope := NewScope(nil)
	// Walk the body looking for the helper call and the selector.
	ast.Inspect(use.Decl.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if x, ok := sel.X.(*ast.Ident); ok && x.Name == "gConf" && sel.Sel.Name == "Port" {
				if got := p.TypeOf(sel, scope).BasicOf(); got != constraint.BasicInt64 {
					t.Errorf("gConf.Port type = %s", got)
				}
			}
		}
		return true
	})
}

func TestCallNameResolution(t *testing.T) {
	p := parse(t)
	use := p.Funcs["use"]
	var names []string
	scope := NewScope(nil)
	ast.Inspect(use.Decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			names = append(names, p.CallName(call, scope))
		}
		return true
	})
	want := map[string]bool{"helper": false, "strings.ToUpper": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("call %q not resolved (got %v)", n, names)
		}
	}
}

func TestConstValueForms(t *testing.T) {
	p := parse(t)
	cases := []struct {
		expr string
		want int64
	}{
		{"42", 42},
		{"-7", -7},
		{"maxThreads", 16},
		{"maxThreads + 1", 17},
		{"2 * 3", 6},
		{"1 << 10", 1024},
		{"(8)", 8},
		{"10 / 2", 5},
	}
	for _, c := range cases {
		e := parseExpr(t, c.expr)
		got, ok := p.ConstValue(e)
		if !ok || got != c.want {
			t.Errorf("ConstValue(%s) = %d,%v want %d", c.expr, got, ok, c.want)
		}
	}
	if _, ok := p.ConstValue(parseExpr(t, "someVar")); ok {
		t.Error("non-const evaluated")
	}
}

func parseExpr(t *testing.T, s string) ast.Expr {
	t.Helper()
	p, err := Parse("x", map[string]string{"x.go": "package x\nconst maxThreads = 16\nvar _ = " + s + "\n"})
	if err != nil {
		t.Fatalf("parse expr %q: %v", s, err)
	}
	for _, d := range p.Files["x.go"].Decls {
		if gd, ok := d.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) == 1 && vs.Names[0].Name == "_" {
					return vs.Values[0]
				}
			}
		}
	}
	t.Fatal("expression not found")
	return nil
}

func TestBasicFromName(t *testing.T) {
	cases := map[string]constraint.BasicType{
		"bool": constraint.BasicBool, "int32": constraint.BasicInt32,
		"int": constraint.BasicInt64, "uint16": constraint.BasicUint16,
		"string": constraint.BasicString, "float64": constraint.BasicFloat64,
		"byte": constraint.BasicUint8, "rune": constraint.BasicInt32,
		"time.Duration": constraint.BasicInt64, "Config": constraint.BasicUnknown,
	}
	for name, want := range cases {
		if got := BasicFromName(name); got != want {
			t.Errorf("BasicFromName(%s) = %s, want %s", name, got, want)
		}
	}
}

func TestScopeChain(t *testing.T) {
	parent := NewScope(nil)
	parent.Define("x", Basic("int64"))
	child := NewScope(parent)
	child.Define("y", Basic("string"))
	if tp, ok := child.Lookup("x"); !ok || tp.Name != "int64" {
		t.Error("parent lookup failed")
	}
	if _, ok := parent.Lookup("y"); ok {
		t.Error("child binding leaked to parent")
	}
}

func TestParseErrorSurfaces(t *testing.T) {
	_, err := Parse("bad", map[string]string{"bad.go": "package bad\nfunc {"})
	if err == nil {
		t.Fatal("syntax error not reported")
	}
}

func TestLoCCount(t *testing.T) {
	p := parse(t)
	if p.LoC < 40 {
		t.Errorf("LoC = %d, suspiciously small", p.LoC)
	}
}
