// Package frontend turns a target's Go source corpus into the typed view
// SPEX's data-flow analysis consumes. It plays the role Clang + LLVM IR
// play in the paper: parsing (stdlib go/parser), symbol tables for structs,
// functions and package variables, and a lightweight syntactic type
// resolver. A full go/types pass is deliberately avoided: it requires a
// stdlib importer (slow and environment-dependent offline), and SPEX only
// needs the declared types and call structure of configuration-handling
// code, which this resolver recovers deterministically.
package frontend

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"spex/internal/constraint"
)

// Kind classifies resolved types.
type Kind int

const (
	KindUnknown Kind = iota
	KindBasic        // int32, string, bool, ...
	KindStruct       // a struct type declared in the corpus
	KindPointer
	KindSlice
	KindMap
	KindFunc
	KindNamed // named non-struct type (resolved through Underlying)
)

// Type is the resolver's lightweight type representation.
type Type struct {
	Kind Kind
	Name string // basic name, struct name, or named-type name
	Elem *Type  // pointee / element type
}

func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KindPointer:
		return "*" + t.Elem.String()
	case KindSlice:
		return "[]" + t.Elem.String()
	case KindMap:
		return "map[...]" + t.Elem.String()
	case KindFunc:
		return "func"
	case KindUnknown:
		return "?"
	default:
		return t.Name
	}
}

// Deref strips pointers.
func (t *Type) Deref() *Type {
	for t != nil && t.Kind == KindPointer {
		t = t.Elem
	}
	return t
}

// BasicOf maps a resolved type to the constraint-model basic type.
func (t *Type) BasicOf() constraint.BasicType {
	t = t.Deref()
	if t == nil {
		return constraint.BasicUnknown
	}
	return BasicFromName(t.Name)
}

// BasicFromName maps a Go type name to a constraint basic type.
func BasicFromName(name string) constraint.BasicType {
	switch name {
	case "bool":
		return constraint.BasicBool
	case "int8":
		return constraint.BasicInt8
	case "int16":
		return constraint.BasicInt16
	case "int32", "rune":
		return constraint.BasicInt32
	case "int", "int64", "time.Duration":
		return constraint.BasicInt64
	case "uint8", "byte":
		return constraint.BasicUint8
	case "uint16":
		return constraint.BasicUint16
	case "uint32":
		return constraint.BasicUint32
	case "uint", "uint64", "uintptr":
		return constraint.BasicUint64
	case "float32":
		return constraint.BasicFloat32
	case "float64":
		return constraint.BasicFloat64
	case "string":
		return constraint.BasicString
	}
	return constraint.BasicUnknown
}

// Basic returns a basic type node.
func Basic(name string) *Type { return &Type{Kind: KindBasic, Name: name} }

// StructInfo describes a struct declared in the corpus.
type StructInfo struct {
	Name   string
	Fields map[string]*Type
	// Order preserves field declaration order (needed by structure-based
	// mapping annotations that address fields by index, Figure 4a).
	Order []string
	Decl  *ast.StructType
}

// FieldAt returns the name of the 1-based i'th field.
func (s *StructInfo) FieldAt(i int) (string, bool) {
	if i < 1 || i > len(s.Order) {
		return "", false
	}
	return s.Order[i-1], true
}

// FuncInfo describes a function or method declared in the corpus.
type FuncInfo struct {
	// Name is "f" for functions, "Recv.m" for methods.
	Name       string
	Decl       *ast.FuncDecl
	File       string
	RecvName   string // receiver variable name, "" for functions
	RecvType   *Type
	ParamNames []string
	ParamTypes []*Type
	Results    []*Type
}

// Project is the analyzed source corpus of one target system.
type Project struct {
	Name    string
	Fset    *token.FileSet
	Files   map[string]*ast.File
	Structs map[string]*StructInfo
	Funcs   map[string]*FuncInfo
	// PkgVars maps package-level variable names to types.
	PkgVars map[string]*Type
	// PkgVarDecls maps package-level variable names to their value
	// expressions (used by mapping toolkits to walk option tables).
	PkgVarDecls map[string]ast.Expr
	// Consts maps package-level constant names to integer values when
	// they are compile-time evaluable.
	Consts map[string]int64
	// StrConsts maps package-level constant names to string values.
	StrConsts map[string]string
	// imports maps, per file, local alias -> import path base.
	imports map[string]map[string]string
	// LoC is the total number of source lines in the corpus.
	LoC int
}

// Parse parses the corpus. Sources map file names to Go source text.
func Parse(name string, sources map[string]string) (*Project, error) {
	p := &Project{
		Name:        name,
		Fset:        token.NewFileSet(),
		Files:       make(map[string]*ast.File),
		Structs:     make(map[string]*StructInfo),
		Funcs:       make(map[string]*FuncInfo),
		PkgVars:     make(map[string]*Type),
		PkgVarDecls: make(map[string]ast.Expr),
		Consts:      make(map[string]int64),
		StrConsts:   make(map[string]string),
		imports:     make(map[string]map[string]string),
	}
	fileNames := make([]string, 0, len(sources))
	for fn := range sources {
		fileNames = append(fileNames, fn)
	}
	sort.Strings(fileNames)
	for _, fn := range fileNames {
		src := sources[fn]
		f, err := parser.ParseFile(p.Fset, fn, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("frontend: parse %s: %w", fn, err)
		}
		p.Files[fn] = f
		p.LoC += strings.Count(src, "\n") + 1
		imp := make(map[string]string)
		for _, spec := range f.Imports {
			path, _ := strconv.Unquote(spec.Path.Value)
			base := path
			if i := strings.LastIndex(path, "/"); i >= 0 {
				base = path[i+1:]
			}
			alias := base
			if spec.Name != nil {
				alias = spec.Name.Name
			}
			imp[alias] = base
		}
		p.imports[fn] = imp
	}
	for _, fn := range fileNames {
		p.collectDecls(fn, p.Files[fn])
	}
	// Second pass for constants that reference other constants.
	for _, fn := range fileNames {
		p.collectConsts(p.Files[fn])
	}
	return p, nil
}

func (p *Project) collectDecls(fileName string, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if st, ok := s.Type.(*ast.StructType); ok {
						info := &StructInfo{Name: s.Name.Name, Fields: make(map[string]*Type), Decl: st}
						for _, fld := range st.Fields.List {
							ft := p.ResolveTypeExpr(fld.Type)
							for _, nm := range fld.Names {
								info.Fields[nm.Name] = ft
								info.Order = append(info.Order, nm.Name)
							}
						}
						p.Structs[s.Name.Name] = info
					}
				case *ast.ValueSpec:
					if d.Tok == token.VAR {
						var t *Type
						if s.Type != nil {
							t = p.ResolveTypeExpr(s.Type)
						}
						for i, nm := range s.Names {
							vt := t
							if vt == nil && i < len(s.Values) {
								vt = p.typeOfLiteral(s.Values[i])
							}
							if vt == nil {
								vt = &Type{Kind: KindUnknown}
							}
							p.PkgVars[nm.Name] = vt
							if i < len(s.Values) {
								p.PkgVarDecls[nm.Name] = s.Values[i]
							}
						}
					}
				}
			}
		case *ast.FuncDecl:
			info := &FuncInfo{Decl: d, File: fileName}
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) == 1 {
				rt := p.ResolveTypeExpr(d.Recv.List[0].Type)
				info.RecvType = rt
				base := rt.Deref()
				if base != nil && base.Name != "" {
					name = base.Name + "." + name
				}
				if len(d.Recv.List[0].Names) == 1 {
					info.RecvName = d.Recv.List[0].Names[0].Name
				}
			}
			info.Name = name
			if d.Type.Params != nil {
				for _, fld := range d.Type.Params.List {
					ft := p.ResolveTypeExpr(fld.Type)
					if len(fld.Names) == 0 {
						info.ParamNames = append(info.ParamNames, "_")
						info.ParamTypes = append(info.ParamTypes, ft)
					}
					for _, nm := range fld.Names {
						info.ParamNames = append(info.ParamNames, nm.Name)
						info.ParamTypes = append(info.ParamTypes, ft)
					}
				}
			}
			if d.Type.Results != nil {
				for _, fld := range d.Type.Results.List {
					n := len(fld.Names)
					if n == 0 {
						n = 1
					}
					for i := 0; i < n; i++ {
						info.Results = append(info.Results, p.ResolveTypeExpr(fld.Type))
					}
				}
			}
			p.Funcs[name] = info
		}
	}
}

func (p *Project) collectConsts(f *ast.File) {
	for _, decl := range f.Decls {
		d, ok := decl.(*ast.GenDecl)
		if !ok || d.Tok != token.CONST {
			continue
		}
		for _, spec := range d.Specs {
			s, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, nm := range s.Names {
				if i >= len(s.Values) {
					continue
				}
				if v, ok := p.ConstValue(s.Values[i]); ok {
					p.Consts[nm.Name] = v
				} else if sv, ok := p.StrValue(s.Values[i]); ok {
					p.StrConsts[nm.Name] = sv
				}
			}
		}
	}
}

// ResolveTypeExpr resolves a type expression syntactically.
func (p *Project) ResolveTypeExpr(e ast.Expr) *Type {
	switch t := e.(type) {
	case *ast.Ident:
		if BasicFromName(t.Name) != constraint.BasicUnknown {
			return Basic(t.Name)
		}
		if _, ok := p.Structs[t.Name]; ok {
			return &Type{Kind: KindStruct, Name: t.Name}
		}
		return &Type{Kind: KindNamed, Name: t.Name}
	case *ast.StarExpr:
		return &Type{Kind: KindPointer, Elem: p.ResolveTypeExpr(t.X)}
	case *ast.ArrayType:
		return &Type{Kind: KindSlice, Elem: p.ResolveTypeExpr(t.Elt)}
	case *ast.MapType:
		return &Type{Kind: KindMap, Elem: p.ResolveTypeExpr(t.Value)}
	case *ast.SelectorExpr:
		// Qualified type like time.Duration or vfs.Mode.
		if x, ok := t.X.(*ast.Ident); ok {
			full := x.Name + "." + t.Sel.Name
			if full == "time.Duration" {
				return Basic("time.Duration")
			}
			return &Type{Kind: KindNamed, Name: full}
		}
	case *ast.FuncType:
		return &Type{Kind: KindFunc}
	case *ast.InterfaceType:
		return &Type{Kind: KindNamed, Name: "interface"}
	}
	return &Type{Kind: KindUnknown}
}

func (p *Project) typeOfLiteral(e ast.Expr) *Type {
	switch v := e.(type) {
	case *ast.BasicLit:
		switch v.Kind {
		case token.INT:
			return Basic("int")
		case token.FLOAT:
			return Basic("float64")
		case token.STRING:
			return Basic("string")
		case token.CHAR:
			return Basic("rune")
		}
	case *ast.CompositeLit:
		return p.ResolveTypeExpr(v.Type)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			inner := p.typeOfLiteral(v.X)
			if inner != nil {
				return &Type{Kind: KindPointer, Elem: inner}
			}
		}
	case *ast.Ident:
		if v.Name == "true" || v.Name == "false" {
			return Basic("bool")
		}
	}
	return nil
}

// Scope is a lexical scope mapping local variable names to types.
type Scope struct {
	parent *Scope
	vars   map[string]*Type
}

// NewScope returns a child scope of parent (which may be nil).
func NewScope(parent *Scope) *Scope {
	return &Scope{parent: parent, vars: make(map[string]*Type)}
}

// Define binds name to t in this scope.
func (s *Scope) Define(name string, t *Type) { s.vars[name] = t }

// Lookup resolves name through the scope chain.
func (s *Scope) Lookup(name string) (*Type, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if t, ok := sc.vars[name]; ok {
			return t, true
		}
	}
	return nil, false
}

// TypeOf resolves the type of an expression in the given scope. The
// resolver is best-effort: unknown expressions yield KindUnknown, which the
// analysis treats conservatively.
func (p *Project) TypeOf(e ast.Expr, scope *Scope) *Type {
	switch v := e.(type) {
	case *ast.Ident:
		if scope != nil {
			if t, ok := scope.Lookup(v.Name); ok {
				return t
			}
		}
		if t, ok := p.PkgVars[v.Name]; ok {
			return t
		}
		if _, ok := p.Consts[v.Name]; ok {
			return Basic("int")
		}
		if _, ok := p.StrConsts[v.Name]; ok {
			return Basic("string")
		}
		if v.Name == "true" || v.Name == "false" {
			return Basic("bool")
		}
		return &Type{Kind: KindUnknown}
	case *ast.BasicLit:
		t := p.typeOfLiteral(v)
		if t == nil {
			return &Type{Kind: KindUnknown}
		}
		return t
	case *ast.SelectorExpr:
		base := p.TypeOf(v.X, scope).Deref()
		if base != nil && base.Kind == KindStruct {
			if st, ok := p.Structs[base.Name]; ok {
				if ft, ok := st.Fields[v.Sel.Name]; ok {
					return ft
				}
			}
		}
		return &Type{Kind: KindUnknown}
	case *ast.StarExpr:
		t := p.TypeOf(v.X, scope)
		if t.Kind == KindPointer {
			return t.Elem
		}
		return &Type{Kind: KindUnknown}
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return &Type{Kind: KindPointer, Elem: p.TypeOf(v.X, scope)}
		}
		return p.TypeOf(v.X, scope)
	case *ast.ParenExpr:
		return p.TypeOf(v.X, scope)
	case *ast.IndexExpr:
		t := p.TypeOf(v.X, scope)
		if t.Kind == KindSlice || t.Kind == KindMap {
			return t.Elem
		}
		return &Type{Kind: KindUnknown}
	case *ast.CallExpr:
		// Conversion to a basic or declared type?
		if id, ok := v.Fun.(*ast.Ident); ok {
			if BasicFromName(id.Name) != constraint.BasicUnknown {
				return Basic(id.Name)
			}
			if _, ok := p.Structs[id.Name]; ok {
				return &Type{Kind: KindStruct, Name: id.Name}
			}
		}
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
			if x, ok := sel.X.(*ast.Ident); ok && x.Name+"."+sel.Sel.Name == "time.Duration" {
				return Basic("time.Duration")
			}
		}
		name := p.CallName(v, scope)
		if fi, ok := p.Funcs[name]; ok && len(fi.Results) > 0 {
			return fi.Results[0]
		}
		return &Type{Kind: KindUnknown}
	case *ast.BinaryExpr:
		switch v.Op {
		case token.LAND, token.LOR, token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			return Basic("bool")
		}
		lt := p.TypeOf(v.X, scope)
		if lt.Kind != KindUnknown {
			return lt
		}
		return p.TypeOf(v.Y, scope)
	case *ast.CompositeLit:
		return p.ResolveTypeExpr(v.Type)
	}
	return &Type{Kind: KindUnknown}
}

// CallName resolves the name of a call expression:
//
//	atoi(x)            -> "atoi"
//	strconv.Atoi(x)    -> "strconv.Atoi"   (x resolves to an import)
//	env.FS.ReadFile(x) -> "FS.ReadFile"    (receiver field name + method)
//	c.validate()       -> "ServerConf.validate" (receiver type + method)
func (p *Project) CallName(call *ast.CallExpr, scope *Scope) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		// Receiver is an import alias?
		if x, ok := fun.X.(*ast.Ident); ok {
			for _, imp := range p.imports {
				if base, ok := imp[x.Name]; ok {
					return base + "." + fun.Sel.Name
				}
			}
		}
		// Receiver type known?
		rt := p.TypeOf(fun.X, scope).Deref()
		if rt != nil && (rt.Kind == KindStruct || rt.Kind == KindNamed) && rt.Name != "" {
			name := rt.Name
			if i := strings.LastIndex(name, "."); i >= 0 {
				name = name[i+1:]
			}
			return name + "." + fun.Sel.Name
		}
		// Fall back to the flattened selector chain's last two parts.
		parts := flatten(fun)
		if len(parts) >= 2 {
			return strings.Join(parts[len(parts)-2:], ".")
		}
		return fun.Sel.Name
	}
	return ""
}

func flatten(e ast.Expr) []string {
	switch v := e.(type) {
	case *ast.Ident:
		return []string{v.Name}
	case *ast.SelectorExpr:
		return append(flatten(v.X), v.Sel.Name)
	case *ast.CallExpr:
		return flatten(v.Fun)
	}
	return nil
}

// ConstValue evaluates an integer constant expression: literals, package
// constants, time.X duration constants, unary minus, and +,-,*,/,<<
// of constant operands.
func (p *Project) ConstValue(e ast.Expr) (int64, bool) {
	switch v := e.(type) {
	case *ast.BasicLit:
		if v.Kind == token.INT {
			n, err := strconv.ParseInt(v.Value, 0, 64)
			if err != nil {
				return 0, false
			}
			return n, true
		}
	case *ast.Ident:
		if n, ok := p.Consts[v.Name]; ok {
			return n, true
		}
	case *ast.SelectorExpr:
		if x, ok := v.X.(*ast.Ident); ok {
			switch x.Name + "." + v.Sel.Name {
			case "time.Microsecond":
				return 1000, true
			case "time.Millisecond":
				return 1000 * 1000, true
			case "time.Second":
				return 1000 * 1000 * 1000, true
			case "time.Minute":
				return 60 * 1000 * 1000 * 1000, true
			case "time.Hour":
				return 3600 * 1000 * 1000 * 1000, true
			}
		}
	case *ast.UnaryExpr:
		if v.Op == token.SUB {
			if n, ok := p.ConstValue(v.X); ok {
				return -n, true
			}
		}
	case *ast.ParenExpr:
		return p.ConstValue(v.X)
	case *ast.BinaryExpr:
		a, okA := p.ConstValue(v.X)
		b, okB := p.ConstValue(v.Y)
		if okA && okB {
			switch v.Op {
			case token.ADD:
				return a + b, true
			case token.SUB:
				return a - b, true
			case token.MUL:
				return a * b, true
			case token.QUO:
				if b != 0 {
					return a / b, true
				}
			case token.SHL:
				if b >= 0 && b < 63 {
					return a << uint(b), true
				}
			}
		}
	case *ast.CallExpr:
		// Conversions of constants: time.Duration(30), int64(4096).
		if len(v.Args) == 1 {
			return p.ConstValue(v.Args[0])
		}
	}
	return 0, false
}

// StrValue evaluates a string constant expression.
func (p *Project) StrValue(e ast.Expr) (string, bool) {
	switch v := e.(type) {
	case *ast.BasicLit:
		if v.Kind == token.STRING {
			s, err := strconv.Unquote(v.Value)
			if err != nil {
				return "", false
			}
			return s, true
		}
	case *ast.Ident:
		if s, ok := p.StrConsts[v.Name]; ok {
			return s, true
		}
	case *ast.ParenExpr:
		return p.StrValue(v.X)
	}
	return "", false
}

// Loc returns the source location of a node.
func (p *Project) Loc(n ast.Node, fn string) constraint.SourceLoc {
	pos := p.Fset.Position(n.Pos())
	return constraint.SourceLoc{File: pos.Filename, Line: pos.Line, Func: fn}
}

// FuncNames returns the sorted names of all declared functions.
func (p *Project) FuncNames() []string {
	out := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
