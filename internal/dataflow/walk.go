package dataflow

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"spex/internal/apispec"
	"spex/internal/cfg"
	"spex/internal/constraint"
	"spex/internal/frontend"
)

// Engine runs the two-pass analysis: taint propagation to a fixed point
// (pass 1), then observation collection on the tainted program slice
// (pass 2), mirroring the paper's two source scans (§2.2).
type Engine struct {
	Proj *frontend.Project
	DB   *apispec.DB

	taint    map[Loc]TaintSet
	seeds    map[string][]Loc
	pointsTo map[Loc]Loc // pointer local -> pointee (1-level alias tracking)

	collecting bool
	obs        []Obs
	graphs     map[string]*cfg.Graph
}

// New returns an engine over the parsed project using the API knowledge
// base db.
func New(proj *frontend.Project, db *apispec.DB) *Engine {
	return &Engine{
		Proj:     proj,
		DB:       db,
		taint:    make(map[Loc]TaintSet),
		seeds:    make(map[string][]Loc),
		pointsTo: make(map[Loc]Loc),
		graphs:   make(map[string]*cfg.Graph),
	}
}

// Seed marks loc as holding the value of the named configuration
// parameter (produced by the mapping toolkits).
func (e *Engine) Seed(param string, loc Loc) {
	e.seeds[param] = append(e.seeds[param], loc)
	ts := e.taint[loc]
	if ts == nil {
		ts = make(TaintSet)
		e.taint[loc] = ts
	}
	ts[param] = Taint{Hops: 0, Mult: 1}
}

// SeedLocs returns the seed locations for a parameter.
func (e *Engine) SeedLocs(param string) []Loc { return e.seeds[param] }

// TaintAt returns the parameters tainting loc (sorted), for tests and
// diagnostics.
func (e *Engine) TaintAt(loc Loc) []string {
	ps := e.taint[loc].params()
	sort.Strings(ps)
	return ps
}

// Run propagates taint to a fixed point and then collects observations.
func (e *Engine) Run() []Obs {
	// Pass 1: fixed-point propagation.
	for i := 0; i < 64; i++ { // bound protects against oscillation
		e.collecting = false
		if !e.walkAll() {
			break
		}
	}
	// Pass 2: collection.
	e.collecting = true
	e.obs = nil
	e.walkAll()
	return e.obs
}

// walkAll walks every function; it reports whether any taint changed.
func (e *Engine) walkAll() bool {
	changed := false
	for _, name := range e.Proj.FuncNames() {
		if e.walkFunc(e.Proj.Funcs[name]) {
			changed = true
		}
	}
	return changed
}

// fnCtx carries per-function walk state.
type fnCtx struct {
	fi      *frontend.FuncInfo
	scope   *frontend.Scope
	graph   *cfg.Graph
	curStmt ast.Stmt
	changed bool
}

func (e *Engine) walkFunc(fi *frontend.FuncInfo) bool {
	if fi.Decl.Body == nil {
		return false
	}
	ctx := &fnCtx{fi: fi, scope: frontend.NewScope(nil)}
	for i, p := range fi.ParamNames {
		ctx.scope.Define(p, fi.ParamTypes[i])
	}
	if fi.RecvName != "" {
		ctx.scope.Define(fi.RecvName, fi.RecvType)
	}
	if e.collecting {
		g, ok := e.graphs[fi.Name]
		if !ok {
			g = cfg.Build(fi.Decl)
			e.graphs[fi.Name] = g
		}
		ctx.graph = g
	}
	e.walkStmts(ctx, fi.Decl.Body.List)
	return ctx.changed
}

func (e *Engine) walkStmts(ctx *fnCtx, list []ast.Stmt) {
	for _, s := range list {
		e.walkStmt(ctx, s)
	}
}

func (e *Engine) walkStmt(ctx *fnCtx, s ast.Stmt) {
	prev := ctx.curStmt
	ctx.curStmt = s
	defer func() { ctx.curStmt = prev }()

	switch st := s.(type) {
	case *ast.AssignStmt:
		e.walkAssign(ctx, st)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				var t *frontend.Type
				if vs.Type != nil {
					t = e.Proj.ResolveTypeExpr(vs.Type)
				}
				for i, nm := range vs.Names {
					vt := t
					if vt == nil && i < len(vs.Values) {
						vt = e.Proj.TypeOf(vs.Values[i], ctx.scope)
					}
					if vt == nil {
						vt = &frontend.Type{Kind: frontend.KindUnknown}
					}
					ctx.scope.Define(nm.Name, vt)
					if i < len(vs.Values) {
						ts := e.taintOf(ctx, vs.Values[i])
						e.store(ctx, LocalLoc(ctx.fi.Name, nm.Name), ts.bump())
					}
				}
			}
		}
	case *ast.ExprStmt:
		e.taintOf(ctx, st.X) // walk for call effects
	case *ast.IfStmt:
		e.walkIf(ctx, st)
	case *ast.SwitchStmt:
		e.walkSwitch(ctx, st)
	case *ast.ForStmt:
		if st.Init != nil {
			e.walkStmt(ctx, st.Init)
		}
		if st.Cond != nil {
			e.condUsage(ctx, st.Cond)
			e.taintOf(ctx, st.Cond)
		}
		e.walkStmts(ctx, st.Body.List)
		if st.Post != nil {
			e.walkStmt(ctx, st.Post)
		}
	case *ast.RangeStmt:
		ts := e.taintOf(ctx, st.X)
		if key, ok := st.Key.(*ast.Ident); ok && key.Name != "_" {
			ctx.scope.Define(key.Name, frontend.Basic("int"))
		}
		if val, ok := st.Value.(*ast.Ident); ok && val != nil && val.Name != "_" {
			t := e.Proj.TypeOf(st.X, ctx.scope)
			var et *frontend.Type
			if t != nil && t.Elem != nil {
				et = t.Elem
			} else {
				et = &frontend.Type{Kind: frontend.KindUnknown}
			}
			ctx.scope.Define(val.Name, et)
			e.store(ctx, LocalLoc(ctx.fi.Name, val.Name), ts.bump())
		}
		e.walkStmts(ctx, st.Body.List)
	case *ast.ReturnStmt:
		for i, r := range st.Results {
			ts := e.taintOf(ctx, r)
			if len(ts) > 0 {
				e.store(ctx, RetLoc(ctx.fi.Name, i), ts)
			}
		}
	case *ast.BlockStmt:
		e.walkStmts(ctx, st.List)
	case *ast.IncDecStmt:
		e.taintOf(ctx, st.X)
	case *ast.GoStmt:
		e.taintOf(ctx, st.Call)
	case *ast.DeferStmt:
		e.taintOf(ctx, st.Call)
	case *ast.LabeledStmt:
		e.walkStmt(ctx, st.Stmt)
	}
}

func (e *Engine) walkAssign(ctx *fnCtx, st *ast.AssignStmt) {
	// Multi-value call: v, err := f(x).
	if len(st.Lhs) > 1 && len(st.Rhs) == 1 {
		if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
			ts := e.taintOf(ctx, call)
			name := e.Proj.CallName(call, ctx.scope)
			for i, lhs := range st.Lhs {
				if st.Tok == token.DEFINE {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						t := e.resultType(name, i)
						ctx.scope.Define(id.Name, t)
					}
				}
				if i == 0 && len(ts) > 0 { // value result carries taint
					if loc, ok := e.locRef(ctx, lhs); ok {
						e.storeAssign(ctx, loc, lhs, ts)
					}
				} else if fi, ok := e.Proj.Funcs[name]; ok {
					if rts, ok2 := e.taint[RetLoc(fi.Name, i)]; ok2 {
						if loc, ok3 := e.locRef(ctx, lhs); ok3 {
							e.storeAssign(ctx, loc, lhs, rts)
						}
					}
				}
			}
			return
		}
	}
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) {
			break
		}
		rhs := st.Rhs[i]
		ts := e.taintOf(ctx, rhs)
		if st.Tok == token.DEFINE {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				ctx.scope.Define(id.Name, e.Proj.TypeOf(rhs, ctx.scope))
			}
		}
		loc, ok := e.locRef(ctx, lhs)
		if !ok {
			continue
		}
		// Track &x pointer aliases (one level).
		if ue, isAddr := rhs.(*ast.UnaryExpr); isAddr && ue.Op == token.AND {
			if ptee, ok := e.locRef(ctx, ue.X); ok {
				e.pointsTo[loc] = ptee
			}
		}
		if st.Tok == token.ADD_ASSIGN || st.Tok == token.SUB_ASSIGN ||
			st.Tok == token.MUL_ASSIGN || st.Tok == token.QUO_ASSIGN {
			cur := e.taint[loc]
			if cur != nil {
				merged := cur.clone()
				mergeInto(merged, ts)
				ts = merged
			}
		}
		e.storeAssign(ctx, loc, lhs, ts)
		// Reset observation: a tainted location overwritten with a
		// constant.
		if e.collecting {
			if existing := e.taint[loc]; len(existing) > 0 {
				if v, isConst := e.Proj.ConstValue(rhs); isConst {
					e.emitResets(ctx, loc, strconv.FormatInt(v, 10), rhs)
				} else if sv, isStr := e.Proj.StrValue(rhs); isStr {
					e.emitResets(ctx, loc, sv, rhs)
				}
			}
		}
	}
}

func (e *Engine) emitResets(ctx *fnCtx, loc Loc, val string, at ast.Expr) {
	for p := range e.taint[loc] {
		e.obs = append(e.obs, Obs{
			Kind:   ObsReset,
			Param:  p,
			Detail: val,
			Loc:    e.Proj.Loc(at, ctx.fi.Name),
		})
	}
}

// storeAssign writes taint to an assignment target, bumping hops for
// locals.
func (e *Engine) storeAssign(ctx *fnCtx, loc Loc, lhs ast.Expr, ts TaintSet) {
	if len(ts) == 0 {
		return
	}
	if loc.IsLocal() {
		ts = ts.bump()
	}
	e.store(ctx, loc, ts)
}

func (e *Engine) store(ctx *fnCtx, loc Loc, ts TaintSet) {
	if len(ts) == 0 {
		return
	}
	dst := e.taint[loc]
	if dst == nil {
		dst = make(TaintSet)
		e.taint[loc] = dst
	}
	if mergeInto(dst, ts) {
		ctx.changed = true
	}
}

// resultType resolves the i'th result type of a named local function.
func (e *Engine) resultType(name string, i int) *frontend.Type {
	if fi, ok := e.Proj.Funcs[name]; ok && i < len(fi.Results) {
		return fi.Results[i]
	}
	if spec, ok := e.DB.Lookup(name); ok && i == 0 && spec.RetBasic != constraint.BasicUnknown {
		return frontend.Basic(basicTypeName(spec.RetBasic))
	}
	return &frontend.Type{Kind: frontend.KindUnknown}
}

func basicTypeName(b constraint.BasicType) string {
	switch b {
	case constraint.BasicBool:
		return "bool"
	case constraint.BasicFloat64:
		return "float64"
	case constraint.BasicString:
		return "string"
	case constraint.BasicUint64:
		return "uint64"
	default:
		return "int64"
	}
}

// locRef resolves an lvalue/rvalue expression to an abstract location.
func (e *Engine) locRef(ctx *fnCtx, expr ast.Expr) (Loc, bool) {
	switch v := expr.(type) {
	case *ast.Ident:
		if v.Name == "_" {
			return "", false
		}
		if _, isLocal := ctx.scope.Lookup(v.Name); isLocal {
			if e.isParamName(ctx, v.Name) {
				return ParamLoc(ctx.fi.Name, v.Name), true
			}
			return LocalLoc(ctx.fi.Name, v.Name), true
		}
		if _, ok := e.Proj.PkgVars[v.Name]; ok {
			return GlobalLoc(v.Name), true
		}
		return LocalLoc(ctx.fi.Name, v.Name), true
	case *ast.SelectorExpr:
		base := e.Proj.TypeOf(v.X, ctx.scope).Deref()
		if base != nil && base.Kind == frontend.KindStruct {
			return FieldLoc(base.Name, v.Sel.Name), true
		}
		// Unknown receiver: fall back to a flattened name so taint
		// still has somewhere to live (coarse).
		return Loc("X:" + flatten(v)), true
	case *ast.StarExpr:
		inner, ok := e.locRef(ctx, v.X)
		if !ok {
			return "", false
		}
		if ptee, ok := e.pointsTo[inner]; ok {
			return ptee, true
		}
		return inner, true
	case *ast.IndexExpr:
		return e.locRef(ctx, v.X)
	case *ast.ParenExpr:
		return e.locRef(ctx, v.X)
	}
	return "", false
}

func (e *Engine) isParamName(ctx *fnCtx, name string) bool {
	for _, p := range ctx.fi.ParamNames {
		if p == name {
			return true
		}
	}
	return name == ctx.fi.RecvName
}

func flatten(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return flatten(v.X) + "." + v.Sel.Name
	}
	return "?"
}

// taintOf computes the taint of an expression, walking nested calls for
// their propagation side effects and (when collecting) emitting
// observations for casts and known-API uses.
func (e *Engine) taintOf(ctx *fnCtx, expr ast.Expr) TaintSet {
	switch v := expr.(type) {
	case *ast.Ident:
		if loc, ok := e.locRef(ctx, v); ok {
			return e.taint[loc]
		}
		return nil
	case *ast.SelectorExpr:
		if loc, ok := e.locRef(ctx, v); ok {
			return e.taint[loc]
		}
		return nil
	case *ast.StarExpr, *ast.IndexExpr:
		if loc, ok := e.locRef(ctx, expr); ok {
			return e.taint[loc]
		}
		return nil
	case *ast.ParenExpr:
		return e.taintOf(ctx, v.X)
	case *ast.UnaryExpr:
		return e.taintOf(ctx, v.X)
	case *ast.BinaryExpr:
		lt := e.taintOf(ctx, v.X)
		rt := e.taintOf(ctx, v.Y)
		var out TaintSet
		if v.Op == token.MUL {
			if c, ok := e.Proj.ConstValue(v.Y); ok && len(lt) > 0 {
				out = lt.scaled(c)
				e.arithUsage(ctx, out, v)
				return out
			}
			if c, ok := e.Proj.ConstValue(v.X); ok && len(rt) > 0 {
				out = rt.scaled(c)
				e.arithUsage(ctx, out, v)
				return out
			}
		}
		out = make(TaintSet)
		mergeInto(out, lt)
		mergeInto(out, rt)
		switch v.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.AND, token.OR, token.XOR, token.SHL, token.SHR, token.AND_NOT:
			// Arithmetic is a usage statement (paper §2.2.4): branches,
			// arithmetic operations, and library-call arguments count;
			// plain assignment and parameter passing do not.
			e.arithUsage(ctx, out, v)
		}
		return out
	case *ast.CallExpr:
		return e.taintOfCall(ctx, v)
	case *ast.CompositeLit:
		out := make(TaintSet)
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				mergeInto(out, e.taintOf(ctx, kv.Value))
			} else {
				mergeInto(out, e.taintOf(ctx, el))
			}
		}
		return out
	}
	return nil
}

func (e *Engine) taintOfCall(ctx *fnCtx, call *ast.CallExpr) TaintSet {
	// Type conversion? int32(x), time.Duration(x), string(x)...
	if bt, isConv := e.conversionTarget(call); isConv && len(call.Args) == 1 {
		ts := e.taintOf(ctx, call.Args[0])
		if e.collecting && len(ts) > 0 && bt != constraint.BasicUnknown {
			for p, t := range ts {
				e.obs = append(e.obs, Obs{
					Kind: ObsType, Param: p, Basic: bt, Hops: t.Hops,
					Explicit: true, Loc: e.Proj.Loc(call, ctx.fi.Name),
				})
			}
		}
		return ts
	}

	name := e.Proj.CallName(call, ctx.scope)

	// Builtins that measure rather than transform: the result is not the
	// parameter's value.
	if name == "len" || name == "cap" {
		for _, arg := range call.Args {
			e.taintOf(ctx, arg) // still walk for nested call effects
		}
		return nil
	}

	// Known API?
	if spec, ok := e.DB.Lookup(name); ok {
		return e.applyAPISpec(ctx, call, name, spec)
	}

	// Local function: inter-procedural propagation.
	if fi, ok := e.Proj.Funcs[name]; ok {
		for i, arg := range call.Args {
			ts := e.taintOf(ctx, arg)
			if len(ts) == 0 || i >= len(fi.ParamNames) {
				continue
			}
			e.store(ctx, ParamLoc(fi.Name, fi.ParamNames[i]), ts)
		}
		// Receiver flows too: c.validate() taints validate's receiver.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && fi.RecvName != "" {
			ts := e.taintOf(ctx, sel.X)
			if len(ts) > 0 {
				e.store(ctx, ParamLoc(fi.Name, fi.RecvName), ts)
			}
		}
		return e.taint[RetLoc(fi.Name, 0)]
	}

	// Unknown call: union of argument taints (conservative).
	out := make(TaintSet)
	for _, arg := range call.Args {
		mergeInto(out, e.taintOf(ctx, arg))
	}
	return out
}

func (e *Engine) conversionTarget(call *ast.CallExpr) (constraint.BasicType, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		bt := frontend.BasicFromName(fun.Name)
		if bt != constraint.BasicUnknown {
			return bt, true
		}
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok && x.Name == "time" && fun.Sel.Name == "Duration" {
			return constraint.BasicInt64, true
		}
	}
	return constraint.BasicUnknown, false
}

func (e *Engine) applyAPISpec(ctx *fnCtx, call *ast.CallExpr, name string, spec *apispec.FuncSpec) TaintSet {
	out := make(TaintSet)
	for i, arg := range call.Args {
		ts := e.taintOf(ctx, arg)
		mergeInto(out, ts)
		if len(ts) == 0 || !e.collecting {
			continue
		}
		loc := e.Proj.Loc(call, ctx.fi.Name)
		if as, ok := spec.ArgAt(i); ok {
			for p, t := range ts {
				unit := as.Unit
				mult := t.Mult
				if mult == 0 {
					mult = 1
				}
				switch {
				case unit == apispec.UnitOfDuration:
					// Unit derives from the nanosecond multiplier.
					unit = nanosUnit(mult)
				case unit == constraint.UnitByte && mult > 1:
					if u, ok := apispec.SizeUnit(mult); ok {
						unit = u
					}
				case unit.IsTime() && mult > 1:
					if u, ok := apispec.TimeUnitScaled(unit, mult); ok {
						unit = u
					}
				}
				e.obs = append(e.obs, Obs{
					Kind: ObsSemantic, Param: p, Semantic: as.Semantic,
					Unit: unit, API: name, Mult: mult, Hops: t.Hops, Loc: loc,
				})
			}
			e.recordUsage(ctx, ts, call)
		}
		if spec.Unsafe {
			for p := range ts {
				e.obs = append(e.obs, Obs{Kind: ObsUnsafe, Param: p, API: name, Detail: name, Loc: loc})
			}
		}
		if spec.RetBasic != constraint.BasicUnknown {
			for p, t := range ts {
				e.obs = append(e.obs, Obs{
					Kind: ObsType, Param: p, Basic: spec.RetBasic, Hops: t.Hops, Loc: loc,
				})
			}
		}
	}
	// Case-sensitivity of comparison functions: EqualFold(x, "lit").
	if spec.Compare && e.collecting && len(call.Args) >= 2 {
		e.compareCall(ctx, call, spec)
	}
	// Only transformation APIs return the parameter's value; other known
	// APIs return derived data (handles, errors, booleans) that must not
	// carry value taint — otherwise "err := Bind(port)" taints err and
	// every later "err != nil" branch poses as a usage of the port.
	if spec.RetBasic == constraint.BasicUnknown {
		return nil
	}
	return out
}

func nanosUnit(mult int64) constraint.Unit {
	switch mult {
	case 1000:
		return constraint.UnitMicrosecond
	case 1000 * 1000:
		return constraint.UnitMillisecond
	case 1000 * 1000 * 1000:
		return constraint.UnitSecond
	case 60 * 1000 * 1000 * 1000:
		return constraint.UnitMinute
	case 3600 * 1000 * 1000 * 1000:
		return constraint.UnitHour
	default:
		return constraint.UnitNone // raw duration (nanoseconds)
	}
}

func (e *Engine) compareCall(ctx *fnCtx, call *ast.CallExpr, spec *apispec.FuncSpec) {
	a, b := call.Args[0], call.Args[1]
	ta, tb := e.taintOf(ctx, a), e.taintOf(ctx, b)
	lit := func(x ast.Expr) (string, bool) { return e.Proj.StrValue(x) }
	emit := func(ts TaintSet, other ast.Expr) {
		sv, ok := lit(other)
		if !ok {
			return
		}
		for p, t := range ts {
			e.obs = append(e.obs, Obs{
				Kind: ObsCompareStr, Param: p, StrValue: sv,
				CaseInsensitive: spec.CaseInsensitive, Hops: t.Hops,
				ThenBe: e.branchBehaviorOfCurrent(ctx, p),
				Loc:    e.Proj.Loc(call, ctx.fi.Name),
			})
		}
	}
	if len(ta) > 0 {
		emit(ta, b)
	}
	if len(tb) > 0 {
		emit(tb, a)
	}
}

// branchBehaviorOfCurrent approximates the behaviour of the branch guarded
// by a comparison call used as an if condition: resolved fully in walkIf;
// here we return an empty behaviour (the walkIf path supersedes this for
// conditions; standalone comparisons only feed case-sensitivity).
func (e *Engine) branchBehaviorOfCurrent(_ *fnCtx, _ string) BranchBehavior {
	return BranchBehavior{}
}

// arithUsage records an arithmetic usage of tainted parameters.
func (e *Engine) arithUsage(ctx *fnCtx, ts TaintSet, at ast.Node) {
	if e.collecting && len(ts) > 0 {
		e.recordUsage(ctx, ts, at)
	}
}

// sortedParams returns sorted parameter names of a taint set (stable
// observation order).
func sortedParams(ts TaintSet) []string {
	out := ts.params()
	sort.Strings(out)
	return out
}

// exprString renders an expression as a stable key for shared-intermediate
// matching.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.BasicLit:
		return v.Value
	case *ast.ParenExpr:
		return exprString(v.X)
	case *ast.CallExpr:
		parts := make([]string, 0, len(v.Args)+1)
		parts = append(parts, exprString(v.Fun))
		for _, a := range v.Args {
			parts = append(parts, exprString(a))
		}
		return strings.Join(parts, ",")
	case *ast.BinaryExpr:
		return exprString(v.X) + v.Op.String() + exprString(v.Y)
	case *ast.UnaryExpr:
		return v.Op.String() + exprString(v.X)
	case *ast.IndexExpr:
		return exprString(v.X) + "[" + exprString(v.Index) + "]"
	}
	return "?"
}
