package dataflow

import (
	"go/ast"
	"go/token"
	"strconv"

	"spex/internal/cfg"
	"spex/internal/constraint"
)

// fact is a decomposed conjunct of a branch condition involving tainted
// parameters.
type fact struct {
	kind   factKind
	param  string
	op     constraint.Op
	num    int64
	str    string
	insens bool
	hops   int
	// Shared-intermediate comparisons: key identifies the untainted
	// expression compared against the parameter; dir is the bound
	// direction the parameter imposes on it.
	interKey    string
	lowerBound  bool // param is a lower bound of the intermediate (x >= P)
	strictBound bool
	// Direct param-vs-param comparison.
	peer     string
	peerHops int
}

type factKind int

const (
	factNum factKind = iota
	factStr
	factBool
	factInter
	factRel
)

func opOf(tok token.Token) (constraint.Op, bool) {
	switch tok {
	case token.LSS:
		return constraint.OpLT, true
	case token.GTR:
		return constraint.OpGT, true
	case token.EQL:
		return constraint.OpEQ, true
	case token.NEQ:
		return constraint.OpNE, true
	case token.GEQ:
		return constraint.OpGE, true
	case token.LEQ:
		return constraint.OpLE, true
	}
	return "", false
}

// analyzeCond decomposes a branch condition into facts about tainted
// parameters. Only && conjunctions are decomposed; || disjunctions cannot
// be attributed to a single fact and are skipped (conservative, matching
// the paper's pattern-directed approach).
func (e *Engine) analyzeCond(ctx *fnCtx, cond ast.Expr, neg bool) []fact {
	switch v := cond.(type) {
	case *ast.ParenExpr:
		return e.analyzeCond(ctx, v.X, neg)
	case *ast.UnaryExpr:
		if v.Op == token.NOT {
			return e.analyzeCond(ctx, v.X, !neg)
		}
	case *ast.BinaryExpr:
		if v.Op == token.LAND && !neg {
			return append(e.analyzeCond(ctx, v.X, false), e.analyzeCond(ctx, v.Y, false)...)
		}
		if v.Op == token.LOR && neg {
			// !(a || b) == !a && !b
			return append(e.analyzeCond(ctx, v.X, true), e.analyzeCond(ctx, v.Y, true)...)
		}
		if op, ok := opOf(v.Op); ok {
			if neg {
				op = op.Negate()
			}
			return e.compareFacts(ctx, v.X, v.Y, op)
		}
	case *ast.Ident, *ast.SelectorExpr:
		// Bare boolean parameter: "if c.enableFsync".
		ts := e.taintOf(ctx, cond)
		var out []fact
		val := "true"
		if neg {
			val = "false"
		}
		for _, p := range sortedParams(ts) {
			out = append(out, fact{kind: factBool, param: p, op: constraint.OpEQ, str: val, hops: ts[p].Hops})
		}
		return out
	case *ast.CallExpr:
		// strings.EqualFold(x, "lit") as a condition.
		name := e.Proj.CallName(v, ctx.scope)
		if spec, ok := e.DB.Lookup(name); ok && spec.Compare && len(v.Args) >= 2 {
			var out []fact
			op := constraint.OpEQ
			if neg {
				op = constraint.OpNE
			}
			for i := 0; i < 2; i++ {
				ts := e.taintOf(ctx, v.Args[i])
				if len(ts) == 0 {
					continue
				}
				if sv, ok := e.Proj.StrValue(v.Args[1-i]); ok {
					for _, p := range sortedParams(ts) {
						out = append(out, fact{
							kind: factStr, param: p, op: op, str: sv,
							insens: spec.CaseInsensitive, hops: ts[p].Hops,
						})
					}
				}
			}
			return out
		}
	}
	return nil
}

// compareFacts builds facts from a comparison x OP y.
func (e *Engine) compareFacts(ctx *fnCtx, x, y ast.Expr, op constraint.Op) []fact {
	tx, ty := e.taintOf(ctx, x), e.taintOf(ctx, y)
	var out []fact

	switch {
	case len(tx) > 0 && len(ty) > 0:
		// Direct param-vs-param comparison (value relationship).
		for _, p := range sortedParams(tx) {
			for _, q := range sortedParams(ty) {
				if p == q {
					continue
				}
				out = append(out, fact{
					kind: factRel, param: p, peer: q, op: op,
					hops: tx[p].Hops, peerHops: ty[q].Hops,
				})
			}
		}
	case len(tx) > 0:
		out = append(out, e.oneSideFacts(ctx, tx, x, y, op)...)
	case len(ty) > 0:
		out = append(out, e.oneSideFacts(ctx, ty, y, x, op.Flip())...)
	}
	return out
}

// oneSideFacts handles "tainted OP other" where other is untainted.
func (e *Engine) oneSideFacts(ctx *fnCtx, ts TaintSet, _ ast.Expr, other ast.Expr, op constraint.Op) []fact {
	var out []fact
	if n, ok := e.Proj.ConstValue(other); ok {
		for _, p := range sortedParams(ts) {
			out = append(out, fact{kind: factNum, param: p, op: op, num: n, hops: ts[p].Hops})
		}
		return out
	}
	if sv, ok := e.Proj.StrValue(other); ok {
		for _, p := range sortedParams(ts) {
			out = append(out, fact{kind: factStr, param: p, op: op, str: sv, hops: ts[p].Hops})
		}
		return out
	}
	// Untainted, non-constant intermediate: P OP x. Normalize to the
	// bound P imposes: "x >= P" makes P a lower bound of x.
	key := exprString(other)
	for _, p := range sortedParams(ts) {
		f := fact{kind: factInter, param: p, interKey: key, hops: ts[p].Hops}
		switch op {
		case constraint.OpLE: // P <= x
			f.lowerBound, f.strictBound = true, false
		case constraint.OpLT: // P < x
			f.lowerBound, f.strictBound = true, true
		case constraint.OpGE: // P >= x
			f.lowerBound, f.strictBound = false, false
		case constraint.OpGT: // P > x
			f.lowerBound, f.strictBound = false, true
		default:
			continue
		}
		out = append(out, f)
	}
	return out
}

// walkIf analyzes an if statement: range comparisons, enum string
// comparisons, value relationships, then recurses.
func (e *Engine) walkIf(ctx *fnCtx, st *ast.IfStmt) {
	if st.Init != nil {
		e.walkStmt(ctx, st.Init)
	}
	if e.collecting {
		e.condUsage(ctx, st.Cond)
		facts := e.analyzeCond(ctx, st.Cond, false)
		e.emitCondObs(ctx, st, facts)
	}
	e.implicitStores(ctx, st)
	e.taintOf(ctx, st.Cond) // propagate through condition calls
	e.walkStmts(ctx, st.Body.List)
	if st.Else != nil {
		e.walkStmt(ctx, st.Else)
	}
}

// implicitStores handles enum-parse branches: when a branch tests a single
// parameter's value against a literal and the branch body assigns a
// constant to a field or global ("if EqualFold(arg, on) { cfg.keepAlive =
// true }"), the destination stores the parsed parameter — control-flow
// tainting that plain data flow misses.
func (e *Engine) implicitStores(ctx *fnCtx, st *ast.IfStmt) {
	facts := e.analyzeCond(ctx, st.Cond, false)
	param := ""
	for _, f := range facts {
		if f.kind != factStr && f.kind != factBool {
			return
		}
		if param == "" {
			param = f.param
		} else if param != f.param {
			return // multiple parameters: attribution is ambiguous
		}
	}
	if param == "" {
		return
	}
	ts := TaintSet{param: Taint{Hops: 1, Mult: 1}}
	seed := func(list []ast.Stmt) {
		for _, s := range list {
			as, ok := s.(*ast.AssignStmt)
			if !ok {
				continue
			}
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				if _, isConst := constLike(e, as.Rhs[i]); !isConst {
					continue
				}
				if loc, ok := e.locRef(ctx, lhs); ok && !loc.IsLocal() {
					e.store(ctx, loc, ts)
				}
			}
		}
	}
	seed(st.Body.List)
	if b, ok := st.Else.(*ast.BlockStmt); ok {
		seed(b.List)
	}
}

func (e *Engine) emitCondObs(ctx *fnCtx, st *ast.IfStmt, facts []fact) {
	loc := e.Proj.Loc(st, ctx.fi.Name)
	hasElse := st.Else != nil
	var elseStmts []ast.Stmt
	if b, ok := st.Else.(*ast.BlockStmt); ok {
		elseStmts = b.List
	}

	// Pair shared-intermediate bounds into value relationships:
	// (x >= P) && (x < Q)  =>  Q > P.
	inter := map[string][]fact{}
	for _, f := range facts {
		if f.kind == factInter {
			inter[f.interKey] = append(inter[f.interKey], f)
		}
	}
	for _, fs := range inter {
		for i := 0; i < len(fs); i++ {
			for j := 0; j < len(fs); j++ {
				lo, hi := fs[i], fs[j]
				if !lo.lowerBound || hi.lowerBound || lo.param == hi.param {
					continue
				}
				relOp := constraint.OpGE
				if lo.strictBound || hi.strictBound {
					relOp = constraint.OpGT
				}
				// Constraint: hi.param relOp lo.param.
				e.obs = append(e.obs, Obs{
					Kind: ObsRel, Param: hi.param, Peer: lo.param,
					RelOp: relOp, Hops: hi.hops, PeerHops: lo.hops, Loc: loc,
				})
			}
		}
	}

	for _, f := range facts {
		switch f.kind {
		case factNum:
			thenBe := e.bodyBehavior(ctx, st.Body.List, f.param, false)
			elseBe := BranchBehavior{Empty: true}
			if elseStmts != nil {
				elseBe = e.bodyBehavior(ctx, elseStmts, f.param, false)
			}
			e.obs = append(e.obs, Obs{
				Kind: ObsCompareConst, Param: f.param, Op: f.op, Value: f.num,
				ThenBe: thenBe, ElseBe: elseBe, HasElse: hasElse,
				Hops: f.hops, Loc: loc,
			})
		case factStr:
			// String-compare branches assign constants to the
			// parameter's destination ("if v == on {x = true}"); reset
			// detection is lenient here (paper §3.2 silent overruling).
			thenBe := e.bodyBehavior(ctx, st.Body.List, f.param, true)
			elseBe := BranchBehavior{Empty: true}
			if elseStmts != nil {
				elseBe = e.bodyBehavior(ctx, elseStmts, f.param, true)
			}
			e.obs = append(e.obs, Obs{
				Kind: ObsCompareStr, Param: f.param, StrValue: f.str,
				CaseInsensitive: f.insens, Op: f.op,
				ThenBe: thenBe, ElseBe: elseBe, HasElse: hasElse,
				Hops: f.hops, Loc: loc,
			})
		case factRel:
			// Condition "P op Q" guards the then branch. If the branch
			// rejects, the constraint is the negation; if it is the
			// normal path, the constraint is the condition itself.
			thenBe := e.bodyBehavior(ctx, st.Body.List, f.param, false)
			relOp := f.op
			if thenBe.Invalid() {
				relOp = relOp.Negate()
			}
			e.obs = append(e.obs, Obs{
				Kind: ObsRel, Param: f.param, Peer: f.peer, RelOp: relOp,
				Hops: f.hops, PeerHops: f.peerHops, Loc: loc,
			})
		}
	}
}

// walkSwitch analyzes switch statements over tainted expressions
// (enumerative ranges, §2.2.3) and recurses into clause bodies.
func (e *Engine) walkSwitch(ctx *fnCtx, st *ast.SwitchStmt) {
	if st.Init != nil {
		e.walkStmt(ctx, st.Init)
	}
	var tagTaint TaintSet
	if st.Tag != nil {
		tagTaint = e.taintOf(ctx, st.Tag)
		if e.collecting && len(tagTaint) > 0 {
			e.condUsage(ctx, st.Tag)
		}
	}
	for _, c := range st.Body.List {
		clause := c.(*ast.CaseClause)
		if e.collecting && len(tagTaint) > 0 {
			loc := e.Proj.Loc(clause, ctx.fi.Name)
			for _, p := range sortedParams(tagTaint) {
				be := e.bodyBehavior(ctx, clause.Body, p, true)
				if len(clause.List) == 0 {
					// default clause: invalid range end (paper §2.2.3).
					e.obs = append(e.obs, Obs{
						Kind: ObsCompareStr, Param: p, Detail: "default",
						ThenBe: be, Hops: tagTaint[p].Hops, Loc: loc,
					})
					continue
				}
				for _, v := range clause.List {
					if sv, ok := e.Proj.StrValue(v); ok {
						e.obs = append(e.obs, Obs{
							Kind: ObsCompareStr, Param: p, StrValue: sv,
							Op: constraint.OpEQ, ThenBe: be,
							Hops: tagTaint[p].Hops, Loc: loc,
						})
					} else if n, ok := e.Proj.ConstValue(v); ok {
						e.obs = append(e.obs, Obs{
							Kind: ObsCompareConst, Param: p, Op: constraint.OpEQ,
							Value: n, ThenBe: be, Hops: tagTaint[p].Hops, Loc: loc,
						})
					}
				}
			}
		}
		e.walkStmts(ctx, clause.Body)
	}
}

// bodyBehavior summarizes a branch block: exits, error returns, parameter
// resets, logging (paper §2.2.3 validity analysis). In lenient mode any
// constant assignment to a field or global counts as a reset — the pattern
// of string-enum parsing where the destination variable differs from the
// compared value ("if v == on { x = true } else { x = false }", Figure 6c).
func (e *Engine) bodyBehavior(ctx *fnCtx, stmts []ast.Stmt, param string, lenient bool) BranchBehavior {
	var be BranchBehavior
	if len(stmts) == 0 {
		be.Empty = true
		be.Falls = true
		return be
	}
	var scan func(list []ast.Stmt)
	scan = func(list []ast.Stmt) {
		for _, s := range list {
			switch st := s.(type) {
			case *ast.ReturnStmt:
				if returnsError(st) {
					be.Exits = true
				} else {
					be.Falls = true
				}
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					switch callKind(call) {
					case callExit:
						be.Exits = true
					case callLog:
						be.LogsMessage = true
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					if i >= len(st.Rhs) {
						break
					}
					loc, ok := e.locRef(ctx, lhs)
					if !ok {
						continue
					}
					if !lenient {
						ts := e.taint[loc]
						if _, tainted := ts[param]; !tainted {
							continue
						}
						// Overwriting the parameter's own storage inside
						// the branch is a reset even when the new value
						// is computed (e.g. clamping one parameter to
						// another).
						if v, isConst := constLike(e, st.Rhs[i]); isConst {
							be.ResetsParam = true
							be.ResetValue = v
						} else {
							be.ResetsParam = true
						}
						continue
					}
					if loc.IsLocal() {
						continue
					}
					if v, isConst := constLike(e, st.Rhs[i]); isConst {
						be.ResetsParam = true
						be.ResetValue = v
					}
				}
			case *ast.BlockStmt:
				scan(st.List)
			case *ast.LabeledStmt:
				scan([]ast.Stmt{st.Stmt})
			}
		}
	}
	scan(stmts)
	if !be.Exits && !be.ResetsParam {
		be.Falls = true
	}
	return be
}

// constLike evaluates integer, string, and boolean constant expressions.
func constLike(e *Engine, expr ast.Expr) (string, bool) {
	if n, ok := e.Proj.ConstValue(expr); ok {
		return strconv.FormatInt(n, 10), true
	}
	if sv, ok := e.Proj.StrValue(expr); ok {
		return sv, true
	}
	if id, ok := expr.(*ast.Ident); ok && (id.Name == "true" || id.Name == "false") {
		return id.Name, true
	}
	return "", false
}

type callClass int

const (
	callOther callClass = iota
	callExit
	callLog
)

func callKind(call *ast.CallExpr) callClass {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			return callExit
		}
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Hang":
			return callExit
		case "Fatalf":
			return callExit
		case "Errorf", "Warnf", "Infof", "Debugf":
			// Only log sinks count; fmt.Errorf as an expression is
			// handled by returnsError.
			if x, ok := fun.X.(*ast.Ident); ok && x.Name == "fmt" {
				return callOther
			}
			return callLog
		}
	}
	return callOther
}

// returnsError reports whether a return statement signals rejection: a
// non-nil error expression, "false", or an ExitError literal. A bare
// "return" or "return nil/true" is a silent fall-through.
func returnsError(st *ast.ReturnStmt) bool {
	if len(st.Results) == 0 {
		return false
	}
	last := st.Results[len(st.Results)-1]
	switch v := last.(type) {
	case *ast.Ident:
		switch v.Name {
		case "err":
			return true
		}
		return false
	case *ast.CallExpr:
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Errorf" || sel.Sel.Name == "New" {
				return true
			}
		}
		return false
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if cl, ok := v.X.(*ast.CompositeLit); ok {
				if isExitErrorType(cl.Type) {
					return true
				}
			}
		}
	}
	return false
}

func isExitErrorType(t ast.Expr) bool {
	switch v := t.(type) {
	case *ast.Ident:
		return v.Name == "ExitError"
	case *ast.SelectorExpr:
		return v.Sel.Name == "ExitError"
	}
	return false
}

// condUsage records branch-condition usages of tainted parameters for
// control-dependency inference.
func (e *Engine) condUsage(ctx *fnCtx, cond ast.Expr) {
	if !e.collecting {
		return
	}
	ts := e.taintOf(ctx, cond)
	e.recordUsage(ctx, ts, cond)
}

// recordUsage emits an ObsUsage for each tainted parameter at the current
// statement, with the branch conditions that dominate the statement
// (resolved on the function's CFG, §2.2.4).
func (e *Engine) recordUsage(ctx *fnCtx, ts TaintSet, at ast.Node) {
	if !e.collecting || len(ts) == 0 || ctx.graph == nil || ctx.curStmt == nil {
		return
	}
	node := ctx.graph.NodeOf(ctx.curStmt)
	if node < 0 {
		return
	}
	conds := ctx.graph.DominatingConds(node)
	loc := e.Proj.Loc(at, ctx.fi.Name)
	for _, p := range sortedParams(ts) {
		var doms []CondRef
		for _, cs := range conds {
			doms = append(doms, e.depRefs(ctx, cs, p)...)
		}
		e.obs = append(e.obs, Obs{
			Kind: ObsUsage, Param: p, Dominators: doms,
			Hops: ts[p].Hops, Loc: loc,
		})
	}
}

// depRefs converts a dominating condition into control-dependency
// references on parameters other than self.
func (e *Engine) depRefs(ctx *fnCtx, cs cfg.CondSide, self string) []CondRef {
	n := cs.Cond
	var facts []fact
	switch stmt := n.Stmt.(type) {
	case *ast.CaseClause:
		// Switch clause: tag == v for each clause value.
		if n.Cond == nil {
			return nil
		}
		tagTaint := e.taintOf(ctx, n.Cond)
		for _, v := range stmt.List {
			if sv, ok := e.Proj.StrValue(v); ok {
				for _, p := range sortedParams(tagTaint) {
					facts = append(facts, fact{kind: factStr, param: p, op: constraint.OpEQ, str: sv})
				}
			} else if num, ok := e.Proj.ConstValue(v); ok {
				for _, p := range sortedParams(tagTaint) {
					facts = append(facts, fact{kind: factNum, param: p, op: constraint.OpEQ, num: num})
				}
			}
		}
	default:
		if n.Cond == nil {
			return nil
		}
		facts = e.analyzeCond(ctx, n.Cond, false)
	}
	if !cs.Then {
		// On the else side a multi-fact conjunction cannot be negated
		// fact-wise; only single facts are usable.
		if len(facts) != 1 {
			return nil
		}
		f := facts[0]
		f.op = f.op.Negate()
		if f.kind == factBool {
			if f.str == "true" {
				f.str = "false"
			} else {
				f.str = "true"
			}
			f.op = constraint.OpEQ
		}
		facts = []fact{f}
	}
	var out []CondRef
	for _, f := range facts {
		if f.param == self || f.param == "" {
			continue
		}
		switch f.kind {
		case factNum:
			// Numeric conditions on fall-through guards are validity
			// checks (captured as range constraints), not feature
			// gates; reporting them as dependencies would flood every
			// parameter used after the check.
			if cs.Guard {
				continue
			}
			out = append(out, CondRef{Peer: f.param, Op: f.op, Value: strconv.FormatInt(f.num, 10)})
		case factStr, factBool:
			out = append(out, CondRef{Peer: f.param, Op: f.op, Value: f.str})
		}
	}
	return out
}
