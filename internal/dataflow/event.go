package dataflow

import (
	"spex/internal/constraint"
)

// ObsKind classifies observations collected on the data-flow paths.
type ObsKind int

const (
	// ObsType: the parameter's value was converted to (or declared with)
	// a basic type.
	ObsType ObsKind = iota
	// ObsSemantic: the parameter reached a known API argument carrying a
	// semantic type.
	ObsSemantic
	// ObsCompareConst: the parameter was compared with a numeric
	// constant in a conditional branch.
	ObsCompareConst
	// ObsCompareStr: the parameter was compared with a string literal
	// (enumerative ranges, case-sensitivity).
	ObsCompareStr
	// ObsUsage: a usage statement of the parameter (branch condition,
	// arithmetic operand, known-call argument) with the branch
	// conditions that dominate it — feeds control-dependency inference.
	ObsUsage
	// ObsRel: the parameter was compared against another parameter
	// (directly or through one shared intermediate).
	ObsRel
	// ObsUnsafe: the parameter flowed through an unsafe transformation
	// API.
	ObsUnsafe
	// ObsReset: the parameter's variable was overwritten with a
	// constant inside a branch (silent-overruling / range-reset signal).
	ObsReset
)

func (k ObsKind) String() string {
	switch k {
	case ObsType:
		return "type"
	case ObsSemantic:
		return "semantic"
	case ObsCompareConst:
		return "compare-const"
	case ObsCompareStr:
		return "compare-str"
	case ObsUsage:
		return "usage"
	case ObsRel:
		return "rel"
	case ObsUnsafe:
		return "unsafe"
	case ObsReset:
		return "reset"
	}
	return "?"
}

// BranchBehavior summarizes what the program does inside a branch taken on
// some condition of the parameter (paper §2.2.3: exit/abort/error/reset
// mark a range invalid).
type BranchBehavior struct {
	Exits       bool // calls panic/Exit/Hang or returns an error
	ResetsParam bool // reassigns the parameter's own location
	ResetValue  string
	LogsMessage bool // emits a log entry mentioning anything
	Empty       bool // no statements
	Falls       bool // plain fall-through
}

// Invalid reports whether behaviour marks the guarding range invalid.
func (b BranchBehavior) Invalid() bool { return b.Exits || b.ResetsParam }

// CondRef is a dominating condition over another parameter, used by
// control-dependency inference: usage is guarded by "Peer Op Value".
type CondRef struct {
	Peer  string
	Op    constraint.Op
	Value string
}

// Obs is one observation.
type Obs struct {
	Kind  ObsKind
	Param string
	Hops  int
	Loc   constraint.SourceLoc

	// ObsType. Explicit marks a source-level type conversion (first-cast
	// rule prefers these over transformation-API return types).
	Basic    constraint.BasicType
	Explicit bool

	// ObsSemantic.
	Semantic constraint.SemanticType
	Unit     constraint.Unit
	API      string
	Mult     int64

	// ObsCompareConst: Param Op Value, with behaviour of both sides.
	Op      constraint.Op
	Value   int64
	ThenBe  BranchBehavior
	ElseBe  BranchBehavior
	HasElse bool

	// ObsCompareStr.
	StrValue        string
	CaseInsensitive bool

	// ObsUsage.
	Dominators []CondRef

	// ObsRel: Param RelOp Peer.
	Peer     string
	RelOp    constraint.Op
	PeerHops int

	// ObsUnsafe / ObsReset.
	Detail string
}
