package dataflow

import (
	"testing"
	"testing/quick"

	"spex/internal/apispec"
	"spex/internal/constraint"
	"spex/internal/frontend"
)

func TestLocConstructors(t *testing.T) {
	if GlobalLoc("x") != "G:x" || FieldLoc("S", "f") != "F:S.f" ||
		ParamLoc("fn", "p") != "P:fn.p" || LocalLoc("fn", "v") != "L:fn.v" ||
		RetLoc("fn", 0) != "R:fn.0" {
		t.Error("loc encoding changed")
	}
	if !LocalLoc("f", "v").IsLocal() || GlobalLoc("g").IsLocal() {
		t.Error("IsLocal wrong")
	}
}

// Property: merging a set into itself never reports a change, and merging
// is monotone (the result contains every key of both operands).
func TestPropertyMergeInto(t *testing.T) {
	f := func(hops [4]uint8) bool {
		a := TaintSet{}
		for i, h := range hops {
			a[string(rune('a'+i))] = Taint{Hops: int(h), Mult: 1}
		}
		if mergeInto(a, a.clone()) {
			return false // idempotent
		}
		b := TaintSet{"z": {Hops: 1, Mult: 1}}
		mergeInto(b, a)
		if len(b) != len(a)+1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeKeepsSmallestHops(t *testing.T) {
	dst := TaintSet{"p": {Hops: 5, Mult: 1}}
	mergeInto(dst, TaintSet{"p": {Hops: 2, Mult: 1}})
	if dst["p"].Hops != 2 {
		t.Errorf("hops = %d, want 2", dst["p"].Hops)
	}
	// Larger hops do not regress.
	mergeInto(dst, TaintSet{"p": {Hops: 9, Mult: 1}})
	if dst["p"].Hops != 2 {
		t.Errorf("hops regressed to %d", dst["p"].Hops)
	}
}

func TestBumpAndScale(t *testing.T) {
	ts := TaintSet{"p": {Hops: 1, Mult: 2}}
	b := ts.bump()
	if b["p"].Hops != 2 || ts["p"].Hops != 1 {
		t.Error("bump must copy")
	}
	s := ts.scaled(1024)
	if s["p"].Mult != 2048 {
		t.Errorf("mult = %d", s["p"].Mult)
	}
	if same := ts.scaled(1); &same == &ts {
		_ = same // scaled(1) may return the receiver; both acceptable
	}
}

// engine builds a tiny project and runs the tracker.
func engine(t *testing.T, src string, seeds map[string]Loc) *Engine {
	t.Helper()
	proj, err := frontend.Parse("t", map[string]string{"t.go": src})
	if err != nil {
		t.Fatal(err)
	}
	e := New(proj, apispec.New())
	for p, l := range seeds {
		e.Seed(p, l)
	}
	return e
}

func TestTaintThroughAssignments(t *testing.T) {
	src := `package t
type C struct{ v int64 }
var c = &C{}
func f() {
	x := c.v
	y := x
	_ = y
}`
	e := engine(t, src, map[string]Loc{"p": FieldLoc("C", "v")})
	e.Run()
	if got := e.TaintAt(LocalLoc("f", "y")); len(got) != 1 || got[0] != "p" {
		t.Errorf("taint at y = %v", got)
	}
}

func TestInterProceduralTaint(t *testing.T) {
	src := `package t
type C struct{ v int64 }
var c = &C{}
func sink(n int64) int64 { return n }
func f() {
	r := sink(c.v)
	_ = r
}`
	e := engine(t, src, map[string]Loc{"p": FieldLoc("C", "v")})
	e.Run()
	if got := e.TaintAt(ParamLoc("sink", "n")); len(got) != 1 {
		t.Errorf("callee param taint = %v", got)
	}
	if got := e.TaintAt(RetLoc("sink", 0)); len(got) != 1 {
		t.Errorf("return taint = %v", got)
	}
	if got := e.TaintAt(LocalLoc("f", "r")); len(got) != 1 {
		t.Errorf("call-result taint = %v", got)
	}
}

func TestCastObservation(t *testing.T) {
	src := `package t
type C struct{ v string }
var c = &C{}
func atoi(s string) int64 { return 0 }
func f() {
	n := int32(atoi(c.v))
	_ = n
}`
	e := engine(t, src, map[string]Loc{"p": FieldLoc("C", "v")})
	obs := e.Run()
	var explicit, api bool
	for _, o := range obs {
		if o.Kind == ObsType && o.Param == "p" {
			if o.Explicit && o.Basic == constraint.BasicInt32 {
				explicit = true
			}
			if !o.Explicit && o.Basic == constraint.BasicInt64 {
				api = true
			}
		}
	}
	if !explicit || !api {
		t.Errorf("cast observations: explicit=%v api=%v", explicit, api)
	}
}

func TestUnsafeObservation(t *testing.T) {
	src := `package t
type C struct{ v string }
var c = &C{}
func atoi(s string) int64 { return 0 }
func f() {
	n := atoi(c.v)
	_ = n
}`
	e := engine(t, src, map[string]Loc{"p": FieldLoc("C", "v")})
	obs := e.Run()
	found := false
	for _, o := range obs {
		if o.Kind == ObsUnsafe && o.Param == "p" && o.API == "atoi" {
			found = true
		}
	}
	if !found {
		t.Error("unsafe atoi not observed")
	}
}

func TestMultiplierTracking(t *testing.T) {
	src := `package t
type C struct{ kb int64 }
var c = &C{}
func allocBuffer(n int64) {}
func f() {
	allocBuffer(c.kb * 1024)
}`
	e := engine(t, src, map[string]Loc{"p": FieldLoc("C", "kb")})
	obs := e.Run()
	for _, o := range obs {
		if o.Kind == ObsSemantic && o.Param == "p" {
			if o.Unit != constraint.UnitKB {
				t.Errorf("unit = %s, want KB", o.Unit)
			}
			return
		}
	}
	t.Error("no semantic observation")
}

func TestNoTaintThroughLen(t *testing.T) {
	src := `package t
type C struct{ s string }
var c = &C{}
func f() {
	n := len(c.s)
	_ = n
}`
	e := engine(t, src, map[string]Loc{"p": FieldLoc("C", "s")})
	e.Run()
	if got := e.TaintAt(LocalLoc("f", "n")); len(got) != 0 {
		t.Errorf("len() result tainted: %v", got)
	}
}

func TestErrorResultsUntainted(t *testing.T) {
	src := `package t
type C struct{ port int64 }
var c = &C{}
type Net struct{}
func (n *Net) Bind(proto string, port int, owner string) error { return nil }
var net = &Net{}
func f() {
	err := net.Bind("tcp", int(c.port), "t")
	_ = err
}`
	e := engine(t, src, map[string]Loc{"p": FieldLoc("C", "port")})
	e.Run()
	if got := e.TaintAt(LocalLoc("f", "err")); len(got) != 0 {
		t.Errorf("error result tainted: %v", got)
	}
}

func TestResetObservation(t *testing.T) {
	src := `package t
type C struct{ v int64 }
var c = &C{}
func f() {
	if c.v > 255 {
		c.v = 255
	}
}`
	e := engine(t, src, map[string]Loc{"p": FieldLoc("C", "v")})
	obs := e.Run()
	var cmp *Obs
	for i := range obs {
		if obs[i].Kind == ObsCompareConst && obs[i].Param == "p" {
			cmp = &obs[i]
		}
	}
	if cmp == nil {
		t.Fatal("no comparison observation")
	}
	if !cmp.ThenBe.ResetsParam || cmp.ThenBe.ResetValue != "255" {
		t.Errorf("then behaviour = %+v, want reset to 255", cmp.ThenBe)
	}
}

func TestPointerAliasOneLevel(t *testing.T) {
	src := `package t
type C struct{ v int64 }
var c = &C{}
func f() {
	pv := &c.v
	*pv = 4
	x := *pv
	_ = x
}`
	e := engine(t, src, map[string]Loc{"p": FieldLoc("C", "v")})
	e.Run()
	if got := e.TaintAt(LocalLoc("f", "x")); len(got) != 1 {
		t.Errorf("deref of alias lost taint: %v", got)
	}
}
