// Package dataflow implements SPEX's inter-procedural, field-sensitive
// data-flow analysis (paper §2.2). Starting from the program variables the
// mapping toolkits associate with configuration parameters, it propagates
// taint through assignments, struct fields and function calls to a fixed
// point, then walks the corpus once more to collect *observations*: the
// concrete program patterns (casts, known-API calls, comparisons, dominated
// usages) from which the inference engine derives constraints.
package dataflow

import (
	"fmt"
	"strings"
)

// Loc is an abstract storage location. Field locations are keyed by struct
// type and field name (field-sensitive, instance-insensitive); function
// parameters and results get their own locations so taint crosses call
// boundaries (inter-procedural).
type Loc string

// GlobalLoc addresses a package-level variable.
func GlobalLoc(name string) Loc { return Loc("G:" + name) }

// FieldLoc addresses a struct field.
func FieldLoc(structName, field string) Loc {
	return Loc("F:" + structName + "." + field)
}

// ParamLoc addresses a function parameter.
func ParamLoc(fn, param string) Loc { return Loc("P:" + fn + "." + param) }

// RetLoc addresses the i'th result of a function.
func RetLoc(fn string, i int) Loc { return Loc(fmt.Sprintf("R:%s.%d", fn, i)) }

// LocalLoc addresses a function-local variable.
func LocalLoc(fn, name string) Loc { return Loc("L:" + fn + "." + name) }

// IsLocal reports whether the location is function-local.
func (l Loc) IsLocal() bool { return strings.HasPrefix(string(l), "L:") }

// Taint describes one parameter's presence at a location.
type Taint struct {
	// Hops counts local-variable assignments between the parameter's
	// mapped variable and this location. Value-relationship inference
	// accepts taints within a configurable hop budget (the paper checks
	// one intermediate variable, §2.2.5).
	Hops int
	// Mult is the accumulated constant multiplier applied along the
	// path (unit inference: a value multiplied by 1024 before a byte
	// API is configured in KB).
	Mult int64
}

// TaintSet maps parameter names to their taint info at one location.
type TaintSet map[string]Taint

// clone returns a copy of the set.
func (ts TaintSet) clone() TaintSet {
	out := make(TaintSet, len(ts))
	for k, v := range ts {
		out[k] = v
	}
	return out
}

// mergeInto unions src into dst, keeping the smaller hop count per
// parameter. It reports whether dst changed.
func mergeInto(dst TaintSet, src TaintSet) bool {
	changed := false
	for p, t := range src {
		old, ok := dst[p]
		if !ok || t.Hops < old.Hops || (t.Hops == old.Hops && t.Mult != old.Mult && old.Mult == 1) {
			dst[p] = t
			changed = true
		}
	}
	return changed
}

// bump returns the set with hops incremented (crossing one local
// assignment).
func (ts TaintSet) bump() TaintSet {
	out := make(TaintSet, len(ts))
	for p, t := range ts {
		t.Hops++
		out[p] = t
	}
	return out
}

// scaled returns the set with the multiplier scaled by m.
func (ts TaintSet) scaled(m int64) TaintSet {
	if m == 1 {
		return ts
	}
	out := make(TaintSet, len(ts))
	for p, t := range ts {
		if t.Mult == 0 {
			t.Mult = 1
		}
		t.Mult *= m
		out[p] = t
	}
	return out
}

// params returns the parameter names in the set.
func (ts TaintSet) params() []string {
	out := make([]string, 0, len(ts))
	for p := range ts {
		out = append(out, p)
	}
	return out
}
