// Package cfg builds per-function control-flow graphs over Go AST
// statements and computes dominator trees. SPEX's control-dependency
// inference starts from the usage statements of a parameter and looks for
// conditional branches that dominate them, bottom-up (paper §2.2.4); the
// dominator tree provides exactly that relation.
package cfg

import (
	"go/ast"
)

// NodeKind classifies CFG nodes.
type NodeKind int

const (
	// KindEntry is the synthetic function entry.
	KindEntry NodeKind = iota
	// KindExit is the synthetic function exit.
	KindExit
	// KindStmt is a plain statement.
	KindStmt
	// KindCond is a branch head holding a condition expression.
	KindCond
	// KindJoin is a synthetic merge point after a branch.
	KindJoin
)

// Node is one CFG node.
type Node struct {
	ID   int
	Kind NodeKind
	Stmt ast.Stmt // statement for KindStmt; the If/For/Switch for KindCond
	Cond ast.Expr // condition for KindCond
	// ThenHead and ElseHead are the first nodes of the true and false
	// branches of a KindCond node (-1 when the branch is empty and flows
	// directly to the join). For switch case clauses, ThenHead is the
	// clause body head.
	ThenHead, ElseHead int
	// Negated is true for KindCond nodes representing the implicit
	// "none of the cases matched" condition of a switch default.
	Negated bool
	Succs   []int
	Preds   []int
}

// Graph is the CFG of one function.
type Graph struct {
	Func  string
	Nodes []*Node
	Entry int
	Exit  int
	// stmtNode maps statements to node IDs.
	stmtNode map[ast.Stmt]int
	idom     []int // computed lazily
}

// builder state.
type builder struct {
	g *Graph
	// loopStack tracks (continueTarget, breakTarget) for break/continue.
	loopStack []loopCtx
}

type loopCtx struct{ contTo, breakTo int }

// Build constructs the CFG of a function declaration. Functions without a
// body yield a trivial entry->exit graph.
func Build(decl *ast.FuncDecl) *Graph {
	g := &Graph{Func: decl.Name.Name, stmtNode: make(map[ast.Stmt]int)}
	b := &builder{g: g}
	g.Entry = b.newNode(KindEntry, nil)
	g.Exit = b.newNode(KindExit, nil)
	if decl.Body == nil {
		b.edge(g.Entry, g.Exit)
		return g
	}
	last := b.stmts(g.Entry, decl.Body.List)
	if last >= 0 {
		b.edge(last, g.Exit)
	}
	// Ensure every node reaches something; dangling nodes (e.g. after
	// return) are fine for dominance.
	return g
}

func (b *builder) newNode(k NodeKind, stmt ast.Stmt) int {
	id := len(b.g.Nodes)
	b.g.Nodes = append(b.g.Nodes, &Node{ID: id, Kind: k, Stmt: stmt, ThenHead: -1, ElseHead: -1})
	if stmt != nil {
		b.g.stmtNode[stmt] = id
	}
	return id
}

func (b *builder) edge(from, to int) {
	if from < 0 || to < 0 {
		return
	}
	n := b.g.Nodes[from]
	for _, s := range n.Succs {
		if s == to {
			return
		}
	}
	n.Succs = append(n.Succs, to)
	b.g.Nodes[to].Preds = append(b.g.Nodes[to].Preds, from)
}

// stmts wires a statement list after pred; it returns the node control
// falls out of, or -1 if control never falls through (return/branch).
func (b *builder) stmts(pred int, list []ast.Stmt) int {
	cur := pred
	for _, s := range list {
		if cur < 0 {
			// Unreachable code still gets nodes (SPEX scans it for
			// patterns) hung off a fresh disconnected chain.
			cur = b.newNode(KindJoin, nil)
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt wires one statement after pred, returning the fall-through node or
// -1.
func (b *builder) stmt(pred int, s ast.Stmt) int {
	switch st := s.(type) {
	case *ast.IfStmt:
		if st.Init != nil {
			pred = b.stmt(pred, st.Init)
		}
		cond := b.newNode(KindCond, s)
		b.g.Nodes[cond].Cond = st.Cond
		b.edge(pred, cond)
		join := b.newNode(KindJoin, nil)

		thenHead := b.newNode(KindJoin, nil)
		b.g.Nodes[cond].ThenHead = thenHead
		b.edge(cond, thenHead)
		thenEnd := b.stmts(thenHead, st.Body.List)
		if thenEnd >= 0 {
			b.edge(thenEnd, join)
		}

		if st.Else != nil {
			elseHead := b.newNode(KindJoin, nil)
			b.g.Nodes[cond].ElseHead = elseHead
			b.edge(cond, elseHead)
			var elseEnd int
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				elseEnd = b.stmts(elseHead, e.List)
			default: // else-if chain
				elseEnd = b.stmt(elseHead, st.Else)
			}
			if elseEnd >= 0 {
				b.edge(elseEnd, join)
			}
		} else {
			b.edge(cond, join)
		}
		if len(b.g.Nodes[join].Preds) == 0 {
			return -1
		}
		return join

	case *ast.ForStmt:
		if st.Init != nil {
			pred = b.stmt(pred, st.Init)
		}
		cond := b.newNode(KindCond, s)
		if st.Cond != nil {
			b.g.Nodes[cond].Cond = st.Cond
		}
		b.edge(pred, cond)
		exit := b.newNode(KindJoin, nil)
		bodyHead := b.newNode(KindJoin, nil)
		b.g.Nodes[cond].ThenHead = bodyHead
		b.edge(cond, bodyHead)
		if st.Cond != nil {
			b.edge(cond, exit)
		}
		b.loopStack = append(b.loopStack, loopCtx{contTo: cond, breakTo: exit})
		bodyEnd := b.stmts(bodyHead, st.Body.List)
		b.loopStack = b.loopStack[:len(b.loopStack)-1]
		if bodyEnd >= 0 {
			if st.Post != nil {
				bodyEnd = b.stmt(bodyEnd, st.Post)
			}
			b.edge(bodyEnd, cond)
		}
		if st.Cond == nil && len(b.g.Nodes[exit].Preds) == 0 {
			return -1 // for {} with no breaks never falls through
		}
		return exit

	case *ast.RangeStmt:
		cond := b.newNode(KindCond, s)
		b.edge(pred, cond)
		exit := b.newNode(KindJoin, nil)
		bodyHead := b.newNode(KindJoin, nil)
		b.g.Nodes[cond].ThenHead = bodyHead
		b.edge(cond, bodyHead)
		b.edge(cond, exit)
		b.loopStack = append(b.loopStack, loopCtx{contTo: cond, breakTo: exit})
		bodyEnd := b.stmts(bodyHead, st.Body.List)
		b.loopStack = b.loopStack[:len(b.loopStack)-1]
		if bodyEnd >= 0 {
			b.edge(bodyEnd, cond)
		}
		return exit

	case *ast.SwitchStmt:
		if st.Init != nil {
			pred = b.stmt(pred, st.Init)
		}
		join := b.newNode(KindJoin, nil)
		cur := pred
		fellThrough := false
		hasDefault := false
		for _, c := range st.Body.List {
			clause := c.(*ast.CaseClause)
			cond := b.newNode(KindCond, clause)
			if len(clause.List) > 0 {
				// Represent "tag == v1 || tag == v2" by keeping the
				// switch tag and clause; consumers reconstruct.
				b.g.Nodes[cond].Cond = st.Tag
			} else {
				hasDefault = true
				b.g.Nodes[cond].Negated = true
			}
			b.edge(cur, cond)
			head := b.newNode(KindJoin, nil)
			b.g.Nodes[cond].ThenHead = head
			b.edge(cond, head)
			end := b.stmts(head, clause.Body)
			if end >= 0 {
				b.edge(end, join)
			}
			_ = fellThrough
			cur = cond // next clause tested if this one does not match
		}
		if !hasDefault {
			b.edge(cur, join)
		}
		if len(b.g.Nodes[join].Preds) == 0 {
			return -1
		}
		return join

	case *ast.ReturnStmt:
		n := b.newNode(KindStmt, s)
		b.edge(pred, n)
		b.edge(n, b.g.Exit)
		return -1

	case *ast.BranchStmt:
		n := b.newNode(KindStmt, s)
		b.edge(pred, n)
		if len(b.loopStack) > 0 {
			top := b.loopStack[len(b.loopStack)-1]
			switch st.Tok.String() {
			case "break":
				b.edge(n, top.breakTo)
			case "continue":
				b.edge(n, top.contTo)
			}
		}
		return -1

	case *ast.BlockStmt:
		return b.stmts(pred, st.List)

	case *ast.LabeledStmt:
		return b.stmt(pred, st.Stmt)

	default:
		// Plain statements: assign, expr, decl, incdec, go, defer, ...
		n := b.newNode(KindStmt, s)
		b.edge(pred, n)
		// Statements that provably do not fall through.
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok && isNoReturn(call) {
				b.edge(n, b.g.Exit)
				return -1
			}
		}
		return n
	}
}

// isNoReturn recognizes calls that terminate the function: panic and the
// sim.Hang()/os.Exit analogues used by the targets.
func isNoReturn(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Hang", "Fatalln":
			return true
		}
	}
	return false
}

// NodeOf returns the CFG node ID of a statement, or -1.
func (g *Graph) NodeOf(s ast.Stmt) int {
	if id, ok := g.stmtNode[s]; ok {
		return id
	}
	return -1
}

// Idom returns the immediate-dominator array (idom[entry] == entry;
// unreachable nodes get -1), computed with the Cooper-Harvey-Kennedy
// iterative algorithm.
func (g *Graph) Idom() []int {
	if g.idom != nil {
		return g.idom
	}
	n := len(g.Nodes)
	// Reverse postorder from entry.
	order := make([]int, 0, n)
	seen := make([]bool, n)
	var dfs func(int)
	var post []int
	dfs = func(u int) {
		seen[u] = true
		for _, v := range g.Nodes[u].Succs {
			if !seen[v] {
				dfs(v)
			}
		}
		post = append(post, u)
	}
	dfs(g.Entry)
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, u := range order {
		rpoNum[u] = i
	}

	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[g.Entry] = g.Entry
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, u := range order {
			if u == g.Entry {
				continue
			}
			newIdom := -1
			for _, p := range g.Nodes[u].Preds {
				if rpoNum[p] < 0 || idom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && idom[u] != newIdom {
				idom[u] = newIdom
				changed = true
			}
		}
	}
	g.idom = idom
	return idom
}

// Dominates reports whether node a dominates node b.
func (g *Graph) Dominates(a, b int) bool {
	idom := g.Idom()
	if a == b {
		return true
	}
	for b != g.Entry && b >= 0 {
		b = idom[b]
		if b == a {
			return true
		}
		if b < 0 {
			return false
		}
		if b == g.Entry {
			break
		}
	}
	return a == g.Entry
}

// CondSide describes a branch condition that dominates a node: which branch
// of the condition the node lies on.
type CondSide struct {
	Cond *Node
	// Then is true if the node is dominated by the condition's then
	// branch, false for the else branch.
	Then bool
	// Guard marks conditions attributed through fall-through after an
	// always-exiting then branch ("if bad { return err }; u"). Guards
	// carry weaker dependency evidence: numeric validity checks among
	// them are range constraints, not feature gates.
	Guard bool
}

// DominatingConds returns, bottom-up, the branch conditions whose taken
// side dominates node u (the paper's §2.2.4 walk).
func (g *Graph) DominatingConds(u int) []CondSide {
	idom := g.Idom()
	var out []CondSide
	if u < 0 || u >= len(g.Nodes) || idom[u] < 0 {
		return nil
	}
	for v := u; v != g.Entry && v >= 0; v = idom[v] {
		n := g.Nodes[v]
		if n.Kind != KindCond {
			continue
		}
		switch {
		case n.ThenHead >= 0 && g.Dominates(n.ThenHead, u) && u != v:
			out = append(out, CondSide{Cond: n, Then: true})
		case n.ElseHead >= 0 && g.Dominates(n.ElseHead, u) && u != v:
			out = append(out, CondSide{Cond: n, Then: false})
		case n.ThenHead >= 0 && n.ElseHead < 0 && u != v && !g.ReachableFrom(n.ThenHead, u):
			// Guard shape: "if cond { return/exit }; u". The then
			// branch never reaches u, so u executes only when the
			// condition is false.
			out = append(out, CondSide{Cond: n, Then: false, Guard: true})
		}
	}
	return out
}

// ReachableFrom reports whether node v is reachable from node u.
func (g *Graph) ReachableFrom(u, v int) bool {
	seen := make([]bool, len(g.Nodes))
	stack := []int{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == v {
			return true
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		stack = append(stack, g.Nodes[x].Succs...)
	}
	return false
}
