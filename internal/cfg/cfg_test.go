package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func buildFunc(t *testing.T, body string) (*Graph, *ast.FuncDecl) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	decl := file.Decls[0].(*ast.FuncDecl)
	return Build(decl), decl
}

// findStmt locates the first statement of a given type in the function.
func findStmt[T ast.Stmt](decl *ast.FuncDecl) T {
	var out T
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if s, ok := n.(T); ok {
			var zero T
			if any(out) == any(zero) {
				out = s
			}
			return false
		}
		return true
	})
	return out
}

func TestLinearFlow(t *testing.T) {
	g, _ := buildFunc(t, "x := 1\ny := x\n_ = y")
	idom := g.Idom()
	// Every node except entry has an idom.
	for i, n := range g.Nodes {
		if i == g.Entry {
			continue
		}
		if len(n.Preds) > 0 && idom[i] < 0 {
			t.Errorf("node %d has no idom", i)
		}
	}
	if !g.Dominates(g.Entry, g.Exit) {
		t.Error("entry must dominate exit")
	}
}

func TestIfDominance(t *testing.T) {
	g, decl := buildFunc(t, `
	x := 1
	if x > 0 {
		x = 2
	} else {
		x = 3
	}
	x = 4`)
	ifStmt := findStmt[*ast.IfStmt](decl)
	condNode := g.NodeOf(ifStmt)
	if condNode < 0 {
		t.Fatal("if statement has no CFG node")
	}
	n := g.Nodes[condNode]
	if n.Kind != KindCond || n.ThenHead < 0 || n.ElseHead < 0 {
		t.Fatalf("cond node malformed: %+v", n)
	}
	// The then-head must not dominate the merge point (both sides join).
	if g.Dominates(n.ThenHead, g.Exit) {
		t.Error("then-branch must not dominate the exit")
	}
	if !g.Dominates(condNode, g.Exit) {
		t.Error("the condition dominates everything after the if")
	}
}

func TestDominatingCondsThenSide(t *testing.T) {
	g, decl := buildFunc(t, `
	x := 1
	if x > 0 {
		y := 2
		_ = y
	}`)
	// The assignment inside the branch is dominated by the then side.
	var assign *ast.AssignStmt
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if a, ok := n.(*ast.AssignStmt); ok {
			if id, ok := a.Lhs[0].(*ast.Ident); ok && id.Name == "y" {
				assign = a
			}
		}
		return true
	})
	node := g.NodeOf(assign)
	if node < 0 {
		t.Fatal("no node for inner assignment")
	}
	conds := g.DominatingConds(node)
	if len(conds) != 1 || !conds[0].Then || conds[0].Guard {
		t.Fatalf("conds = %+v, want one then-side non-guard", conds)
	}
}

func TestGuardFallThroughAttribution(t *testing.T) {
	g, decl := buildFunc(t, `
	x := 1
	if x > 0 {
		return
	}
	y := 2
	_ = y`)
	var assign *ast.AssignStmt
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if a, ok := n.(*ast.AssignStmt); ok {
			if id, ok := a.Lhs[0].(*ast.Ident); ok && id.Name == "y" {
				assign = a
			}
		}
		return true
	})
	node := g.NodeOf(assign)
	conds := g.DominatingConds(node)
	if len(conds) != 1 {
		t.Fatalf("conds = %+v, want the guard", conds)
	}
	if conds[0].Then || !conds[0].Guard {
		t.Errorf("guard fall-through must be attributed else-side with Guard=true: %+v", conds[0])
	}
}

func TestForLoop(t *testing.T) {
	g, decl := buildFunc(t, `
	for i := 0; i < 10; i++ {
		_ = i
	}
	x := 1
	_ = x`)
	forStmt := findStmt[*ast.ForStmt](decl)
	node := g.NodeOf(forStmt)
	if node < 0 || g.Nodes[node].Kind != KindCond {
		t.Fatal("for loop condition missing")
	}
	// Code after the loop is reachable.
	if !g.ReachableFrom(g.Entry, g.Exit) {
		t.Error("exit unreachable")
	}
}

func TestInfiniteLoopNoFallThrough(t *testing.T) {
	g, _ := buildFunc(t, `
	for {
		x := 1
		_ = x
	}`)
	// for{} without break: exit reachable only via... nothing.
	reached := g.ReachableFrom(g.Entry, g.Exit)
	if reached {
		t.Error("exit should be unreachable past for{}")
	}
}

func TestBreakExitsLoop(t *testing.T) {
	g, _ := buildFunc(t, `
	for {
		break
	}
	x := 1
	_ = x`)
	if !g.ReachableFrom(g.Entry, g.Exit) {
		t.Error("break must make the exit reachable")
	}
}

func TestSwitchClauses(t *testing.T) {
	g, decl := buildFunc(t, `
	x := 1
	switch x {
	case 1:
		x = 10
	case 2:
		x = 20
	default:
		x = 30
	}
	_ = x`)
	count := 0
	for _, n := range g.Nodes {
		if n.Kind == KindCond {
			if _, ok := n.Stmt.(*ast.CaseClause); ok {
				count++
			}
		}
	}
	if count != 3 {
		t.Errorf("case-clause cond nodes = %d, want 3", count)
	}
	_ = decl
}

func TestReturnConnectsToExit(t *testing.T) {
	g, decl := buildFunc(t, `
	x := 1
	if x > 0 {
		return
	}
	_ = x`)
	ret := findStmt[*ast.ReturnStmt](decl)
	node := g.NodeOf(ret)
	found := false
	for _, s := range g.Nodes[node].Succs {
		if s == g.Exit {
			found = true
		}
	}
	if !found {
		t.Error("return does not flow to exit")
	}
}

func TestPanicTerminates(t *testing.T) {
	g, _ := buildFunc(t, `
	panic("boom")`)
	// The panic node flows to exit; nothing after.
	if !g.ReachableFrom(g.Entry, g.Exit) {
		t.Error("panic should reach exit")
	}
}

func TestElseIfChain(t *testing.T) {
	g, decl := buildFunc(t, `
	x := 1
	if x == 0 {
		x = 10
	} else if x == 1 {
		x = 11
	} else {
		x = 12
	}
	_ = x`)
	conds := 0
	for _, n := range g.Nodes {
		if n.Kind == KindCond && n.Cond != nil {
			conds++
		}
	}
	if conds != 2 {
		t.Errorf("cond nodes = %d, want 2 (chained ifs)", conds)
	}
	_ = decl
	if !g.Dominates(g.Entry, g.Exit) {
		t.Error("entry must dominate exit")
	}
}

func TestRangeLoop(t *testing.T) {
	g, _ := buildFunc(t, `
	xs := []int{1, 2}
	for _, v := range xs {
		_ = v
	}
	y := 1
	_ = y`)
	if !g.ReachableFrom(g.Entry, g.Exit) {
		t.Error("exit unreachable after range loop")
	}
}

func TestDominatesReflexive(t *testing.T) {
	g, _ := buildFunc(t, "x := 1\n_ = x")
	for i := range g.Nodes {
		if g.Idom()[i] >= 0 && !g.Dominates(i, i) {
			t.Errorf("node %d must dominate itself", i)
		}
	}
}
