// Package mapping implements SPEX's three template toolkits that extract
// parameter-to-variable mapping information from annotated source code
// (paper §2.2.1, Figure 4): structure-based (option tables, directly or via
// handler functions), comparison-based (parser functions matching parameter
// names with string comparisons), and container-based (central containers
// with getter functions). The toolkits require annotations on the mapping
// *interfaces* only, not on every pair.
package mapping

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"spex/internal/annot"
	"spex/internal/constraint"
	"spex/internal/dataflow"
	"spex/internal/frontend"
)

// Pair is one extracted mapping: parameter name -> program location.
type Pair struct {
	Param string
	Loc   dataflow.Loc
	// CaseKnown/CaseInsensitive record the comparison semantics the
	// parameter name was matched with (comparison-based mapping only);
	// they feed case-sensitivity inconsistency detection for parameter
	// *names*.
	CaseKnown       bool
	CaseInsensitive bool
	// RHSCalls lists function calls on the value's parse path (the
	// right-hand side of the harvested assignment); the inference engine
	// checks them against the unsafe-API knowledge base, since the raw
	// value string is upstream of the mapped variable and outside the
	// taint seed.
	RHSCalls []string
	Site     constraint.SourceLoc
}

// Extract runs every annotation block's toolkit over the project and
// returns the merged mapping pairs, sorted by parameter name.
func Extract(proj *frontend.Project, af *annot.File) ([]Pair, error) {
	var out []Pair
	for i := range af.Annotations {
		a := &af.Annotations[i]
		var pairs []Pair
		var err error
		switch a.Kind {
		case annot.KindStruct:
			pairs, err = extractStruct(proj, a)
		case annot.KindParser:
			pairs, err = extractParser(proj, a)
		case annot.KindGetter:
			pairs, err = extractGetter(proj, a)
		}
		if err != nil {
			return nil, fmt.Errorf("mapping: %s %s: %w", a.Kind, a.Target, err)
		}
		out = append(out, pairs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Param != out[j].Param {
			return out[i].Param < out[j].Param
		}
		return out[i].Loc < out[j].Loc
	})
	return out, nil
}

// --- Structure-based mapping (Figure 4a/4b) ---

func extractStruct(proj *frontend.Project, a *annot.Annotation) ([]Pair, error) {
	decl, ok := proj.PkgVarDecls[a.Target]
	if !ok {
		return nil, fmt.Errorf("option table %q not found", a.Target)
	}
	table, ok := decl.(*ast.CompositeLit)
	if !ok {
		return nil, fmt.Errorf("option table %q is not a composite literal", a.Target)
	}
	st, ok := proj.Structs[a.ParField.Struct]
	if !ok {
		return nil, fmt.Errorf("annotated struct %q not found", a.ParField.Struct)
	}
	var out []Pair
	for _, el := range table.Elts {
		entry, ok := el.(*ast.CompositeLit)
		if !ok {
			continue
		}
		parExpr := fieldValue(entry, st, a.ParField.Index)
		varExpr := fieldValue(entry, st, a.VarField.Index)
		if parExpr == nil || varExpr == nil {
			continue
		}
		name, ok := proj.StrValue(parExpr)
		if !ok {
			continue
		}
		site := proj.Loc(entry, a.Target)
		if a.HandlerArg != "" {
			// Figure 4b: the variable is a handler function's argument.
			fnName, ok := funcIdent(varExpr)
			if !ok {
				continue
			}
			fi, ok := proj.Funcs[fnName]
			if !ok {
				continue
			}
			if !hasParam(fi, a.HandlerArg) {
				return nil, fmt.Errorf("handler %q has no argument %q", fnName, a.HandlerArg)
			}
			out = append(out, Pair{Param: name, Loc: dataflow.ParamLoc(fi.Name, a.HandlerArg), Site: site})
			continue
		}
		// Figure 4a: the variable is referenced directly.
		loc, ok := exprLoc(proj, varExpr)
		if !ok {
			continue
		}
		out = append(out, Pair{Param: name, Loc: loc, Site: site})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no mappings extracted from table %q", a.Target)
	}
	// Generic parse loops assign through the annotated variable column
	// ("*o.ptr = atoi(raw)"): the calls on those paths apply to every
	// parameter mapped through this column (unsafe-API accounting). When
	// the column is parsed by a local comparison-helper function (an
	// enum parser matching string literals), the helper's argument is an
	// additional mapped location for every parameter of the column — the
	// value's data flow passes through it.
	if a.HandlerArg == "" {
		if colField, ok := st.FieldAt(a.VarField.Index); ok {
			calls := columnParseCalls(proj, colField)
			var extra []Pair
			for i := range out {
				out[i].RHSCalls = append(out[i].RHSCalls, calls...)
			}
			for _, call := range calls {
				fi, ok := proj.Funcs[call]
				if !ok || !comparesStringLiterals(proj, fi) {
					continue
				}
				argName := firstStringParam(fi)
				if argName == "" {
					continue
				}
				for i := range out {
					extra = append(extra, Pair{
						Param: out[i].Param,
						Loc:   dataflow.ParamLoc(fi.Name, argName),
						Site:  out[i].Site,
					})
				}
			}
			out = append(out, extra...)
		}
	}
	return out, nil
}

// comparesStringLiterals reports whether a function's body compares one of
// its parameters against string literals (an enum-parser shape).
func comparesStringLiterals(proj *frontend.Project, fi *frontend.FuncInfo) bool {
	if fi.Decl.Body == nil {
		return false
	}
	found := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BinaryExpr:
			if v.Op == token.EQL {
				if _, ok := proj.StrValue(v.X); ok {
					found = true
				}
				if _, ok := proj.StrValue(v.Y); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "EqualFold" {
				found = true
			}
		}
		return !found
	})
	return found
}

func firstStringParam(fi *frontend.FuncInfo) string {
	for i, t := range fi.ParamTypes {
		if bt := t.Deref(); bt != nil && bt.Name == "string" {
			return fi.ParamNames[i]
		}
	}
	return ""
}

// columnParseCalls finds calls on the right-hand side of assignments that
// store through a named option-table column pointer (*o.<column> = f(x)).
func columnParseCalls(proj *frontend.Project, column string) []string {
	var calls []string
	seen := map[string]bool{}
	for _, fname := range proj.FuncNames() {
		fi := proj.Funcs[fname]
		if fi.Decl.Body == nil {
			continue
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				star, ok := lhs.(*ast.StarExpr)
				if !ok || i >= len(as.Rhs) {
					continue
				}
				sel, ok := star.X.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != column {
					continue
				}
				ast.Inspect(as.Rhs[i], func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if name := proj.CallName(call, nil); name != "" && !seen[name] {
							seen[name] = true
							calls = append(calls, name)
						}
					}
					return true
				})
			}
			return true
		})
	}
	return calls
}

// fieldValue returns the expression of the 1-based i'th field of a struct
// literal, resolving keyed literals through the struct's field order.
func fieldValue(entry *ast.CompositeLit, st *frontend.StructInfo, index int) ast.Expr {
	fieldName, _ := st.FieldAt(index)
	for pos, el := range entry.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == fieldName {
				return kv.Value
			}
			continue
		}
		if pos == index-1 {
			return el
		}
	}
	return nil
}

func funcIdent(e ast.Expr) (string, bool) {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name, true
	}
	return "", false
}

func hasParam(fi *frontend.FuncInfo, name string) bool {
	for _, p := range fi.ParamNames {
		if p == name {
			return true
		}
	}
	return false
}

// exprLoc resolves &Global, &global.Field or Global to a dataflow location.
func exprLoc(proj *frontend.Project, e ast.Expr) (dataflow.Loc, bool) {
	switch v := e.(type) {
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return exprLoc(proj, v.X)
		}
	case *ast.Ident:
		if _, ok := proj.PkgVars[v.Name]; ok {
			return dataflow.GlobalLoc(v.Name), true
		}
	case *ast.SelectorExpr:
		if x, ok := v.X.(*ast.Ident); ok {
			if t, ok := proj.PkgVars[x.Name]; ok {
				base := t.Deref()
				if base != nil && base.Kind == frontend.KindStruct {
					return dataflow.FieldLoc(base.Name, v.Sel.Name), true
				}
			}
		}
	}
	return "", false
}

// --- Comparison-based mapping (Figure 4c) ---

func extractParser(proj *frontend.Project, a *annot.Annotation) ([]Pair, error) {
	fi, ok := proj.Funcs[a.Target]
	if !ok {
		return nil, fmt.Errorf("parser function %q not found", a.Target)
	}
	if fi.Decl.Body == nil {
		return nil, fmt.Errorf("parser function %q has no body", a.Target)
	}
	x := &parserExtract{proj: proj, fi: fi, a: a, locals: map[string]*frontend.Type{}}
	for i, p := range fi.ParamNames {
		x.locals[p] = fi.ParamTypes[i]
	}
	if fi.RecvName != "" {
		x.locals[fi.RecvName] = fi.RecvType
	}
	x.stmts(fi.Decl.Body.List)
	if len(x.out) == 0 {
		return nil, fmt.Errorf("no mappings extracted from parser %q", a.Target)
	}
	return x.out, nil
}

type parserExtract struct {
	proj   *frontend.Project
	fi     *frontend.FuncInfo
	a      *annot.Annotation
	locals map[string]*frontend.Type
	out    []Pair
}

// isParRef reports whether e references the annotated parameter-name
// variable ($key or $argv[i]).
func (x *parserExtract) isParRef(e ast.Expr) bool {
	return x.isDollarRef(e, x.a.ParName, x.a.ParIndex)
}

func (x *parserExtract) isVarRef(e ast.Expr) bool {
	if x.isDollarRef(e, x.a.VarName, x.a.VarIndex) {
		return true
	}
	// The value may reach the assignment through a call: atoi(value).
	if call, ok := e.(*ast.CallExpr); ok {
		for _, arg := range call.Args {
			if x.isVarRef(arg) {
				return true
			}
		}
	}
	if bin, ok := e.(*ast.BinaryExpr); ok {
		return x.isVarRef(bin.X) || x.isVarRef(bin.Y)
	}
	if par, ok := e.(*ast.ParenExpr); ok {
		return x.isVarRef(par.X)
	}
	if conv, ok := e.(*ast.CallExpr); ok && len(conv.Args) == 1 {
		return x.isVarRef(conv.Args[0])
	}
	return false
}

func (x *parserExtract) isDollarRef(e ast.Expr, name string, index int) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return index < 0 && v.Name == name
	case *ast.IndexExpr:
		base, ok := v.X.(*ast.Ident)
		if !ok || base.Name != name || index < 0 {
			return false
		}
		if n, ok := x.proj.ConstValue(v.Index); ok {
			return int(n) == index
		}
	case *ast.ParenExpr:
		return x.isDollarRef(v.X, name, index)
	}
	return false
}

func (x *parserExtract) stmts(list []ast.Stmt) {
	for _, s := range list {
		x.stmt(s)
	}
}

func (x *parserExtract) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.IfStmt:
		if name, insens, ok := x.matchNameCompare(st.Cond); ok {
			x.harvest(name, insens, st.Body.List)
		} else {
			x.stmts(st.Body.List)
		}
		if st.Else != nil {
			x.stmt(st.Else)
		}
	case *ast.SwitchStmt:
		if st.Tag != nil && x.isParRef(st.Tag) {
			for _, c := range st.Body.List {
				clause := c.(*ast.CaseClause)
				for _, v := range clause.List {
					if sv, ok := x.proj.StrValue(v); ok {
						// switch on the raw name is case sensitive.
						x.harvest(sv, false, clause.Body)
					}
				}
			}
			return
		}
		for _, c := range st.Body.List {
			x.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.BlockStmt:
		x.stmts(st.List)
	case *ast.ForStmt:
		x.stmts(st.Body.List)
	case *ast.RangeStmt:
		x.stmts(st.Body.List)
	case *ast.AssignStmt:
		// Track simple local declarations for LHS type resolution.
		if st.Tok == token.DEFINE {
			for i, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && i < len(st.Rhs) {
					x.locals[id.Name] = x.typeOf(st.Rhs[i])
				}
			}
		}
	}
}

// matchNameCompare recognizes `key == "lit"` and `strings.EqualFold(key,
// "lit")` conditions; it returns the literal and the case semantics.
func (x *parserExtract) matchNameCompare(cond ast.Expr) (name string, insensitive, ok bool) {
	switch v := cond.(type) {
	case *ast.ParenExpr:
		return x.matchNameCompare(v.X)
	case *ast.BinaryExpr:
		if v.Op != token.EQL {
			return "", false, false
		}
		if x.isParRef(v.X) {
			if sv, ok := x.proj.StrValue(v.Y); ok {
				return sv, false, true
			}
		}
		if x.isParRef(v.Y) {
			if sv, ok := x.proj.StrValue(v.X); ok {
				return sv, false, true
			}
		}
	case *ast.CallExpr:
		sel, ok := v.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "EqualFold" || len(v.Args) != 2 {
			return "", false, false
		}
		for i := 0; i < 2; i++ {
			if x.isParRef(v.Args[i]) {
				if sv, ok := x.proj.StrValue(v.Args[1-i]); ok {
					return sv, true, true
				}
			}
		}
	}
	return "", false, false
}

// harvest collects assignments fed by the value variable inside a matched
// branch.
func (x *parserExtract) harvest(param string, insensitive bool, body []ast.Stmt) {
	var scan func(list []ast.Stmt)
	scan = func(list []ast.Stmt) {
		for _, s := range list {
			switch st := s.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					if i >= len(st.Rhs) || !x.isVarRef(st.Rhs[i]) {
						continue
					}
					if loc, ok := x.lhsLoc(lhs); ok {
						x.out = append(x.out, Pair{
							Param: param, Loc: loc,
							CaseKnown: true, CaseInsensitive: insensitive,
							RHSCalls: x.rhsCalls(st.Rhs[i]),
							Site:     x.proj.Loc(st, x.fi.Name),
						})
					}
				}
			case *ast.BlockStmt:
				scan(st.List)
			case *ast.IfStmt:
				scan(st.Body.List)
				if b, ok := st.Else.(*ast.BlockStmt); ok {
					scan(b.List)
				}
			case *ast.ExprStmt:
				// Value handed to a setter: setBool(&cfg.flag, value).
				// The setter's value argument AND any &field/&global
				// destination arguments are mapped locations.
				if call, ok := st.X.(*ast.CallExpr); ok {
					carriesValue := false
					for _, arg := range call.Args {
						if x.isVarRef(arg) {
							carriesValue = true
						}
					}
					if !carriesValue {
						continue
					}
					name := x.proj.CallName(call, x.scope())
					for ai, arg := range call.Args {
						if x.isVarRef(arg) {
							if fi, ok := x.proj.Funcs[name]; ok && ai < len(fi.ParamNames) {
								x.out = append(x.out, Pair{
									Param: param, Loc: dataflow.ParamLoc(fi.Name, fi.ParamNames[ai]),
									CaseKnown: true, CaseInsensitive: insensitive,
									Site: x.proj.Loc(st, x.fi.Name),
								})
							}
							continue
						}
						if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
							if loc, ok := x.lhsLoc(ue.X); ok {
								x.out = append(x.out, Pair{
									Param: param, Loc: loc,
									CaseKnown: true, CaseInsensitive: insensitive,
									Site: x.proj.Loc(st, x.fi.Name),
								})
							}
						}
					}
				}
			}
		}
	}
	scan(body)
}

// rhsCalls collects the names of calls on a harvested value path.
func (x *parserExtract) rhsCalls(e ast.Expr) []string {
	var out []string
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name := x.proj.CallName(call, x.scope()); name != "" {
				out = append(out, name)
			}
		}
		return true
	})
	return out
}

func (x *parserExtract) scope() *frontend.Scope {
	sc := frontend.NewScope(nil)
	for n, t := range x.locals {
		sc.Define(n, t)
	}
	return sc
}

func (x *parserExtract) typeOf(e ast.Expr) *frontend.Type {
	return x.proj.TypeOf(e, x.scope())
}

func (x *parserExtract) lhsLoc(lhs ast.Expr) (dataflow.Loc, bool) {
	switch v := lhs.(type) {
	case *ast.Ident:
		if _, ok := x.proj.PkgVars[v.Name]; ok {
			return dataflow.GlobalLoc(v.Name), true
		}
		return dataflow.LocalLoc(x.fi.Name, v.Name), true
	case *ast.SelectorExpr:
		base := x.typeOf(v.X).Deref()
		if base != nil && base.Kind == frontend.KindStruct {
			return dataflow.FieldLoc(base.Name, v.Sel.Name), true
		}
	case *ast.StarExpr:
		return x.lhsLoc(v.X)
	}
	return "", false
}

// --- Container-based mapping (Figure 4d) ---

func extractGetter(proj *frontend.Project, a *annot.Annotation) ([]Pair, error) {
	var out []Pair
	for _, fname := range proj.FuncNames() {
		fi := proj.Funcs[fname]
		if fi.Decl.Body == nil {
			continue
		}
		locals := map[string]*frontend.Type{}
		for i, p := range fi.ParamNames {
			locals[p] = fi.ParamTypes[i]
		}
		if fi.RecvName != "" {
			locals[fi.RecvName] = fi.RecvType
		}
		scope := frontend.NewScope(nil)
		for n, t := range locals {
			scope.Define(n, t)
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !callMatches(proj, call, scope, a.Target) {
					continue
				}
				argIdx := a.ParArgIndex - 1
				if argIdx < 0 || argIdx >= len(call.Args) {
					continue
				}
				name, ok := proj.StrValue(call.Args[argIdx])
				if !ok || i >= len(as.Lhs) {
					continue
				}
				if as.Tok == token.DEFINE {
					if id, ok := as.Lhs[i].(*ast.Ident); ok {
						scope.Define(id.Name, proj.TypeOf(rhs, scope))
					}
				}
				switch lhs := as.Lhs[i].(type) {
				case *ast.Ident:
					if _, isGlobal := proj.PkgVars[lhs.Name]; isGlobal {
						out = append(out, Pair{Param: name, Loc: dataflow.GlobalLoc(lhs.Name), Site: proj.Loc(as, fi.Name)})
					} else {
						out = append(out, Pair{Param: name, Loc: dataflow.LocalLoc(fi.Name, lhs.Name), Site: proj.Loc(as, fi.Name)})
					}
				case *ast.SelectorExpr:
					base := proj.TypeOf(lhs.X, scope).Deref()
					if base != nil && base.Kind == frontend.KindStruct {
						out = append(out, Pair{Param: name, Loc: dataflow.FieldLoc(base.Name, lhs.Sel.Name), Site: proj.Loc(as, fi.Name)})
					}
				}
			}
			return true
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no call sites of getter %q found", a.Target)
	}
	return out, nil
}

func callMatches(proj *frontend.Project, call *ast.CallExpr, scope *frontend.Scope, target string) bool {
	name := proj.CallName(call, scope)
	if name == target {
		return true
	}
	if i := strings.LastIndex(name, "."); i >= 0 {
		return name[i+1:] == target
	}
	return false
}

// --- Convention survey (Table 1) ---

// Convention names the mapping convention(s) a target uses, derived from
// its annotations ("structure", "comparison", "container", or "hybrid").
func Convention(af *annot.File) string {
	kinds := map[annot.Kind]bool{}
	for _, a := range af.Annotations {
		kinds[a.Kind] = true
	}
	if len(kinds) > 1 {
		return "hybrid"
	}
	for k := range kinds {
		return k.String()
	}
	return "unknown"
}
