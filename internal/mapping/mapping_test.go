package mapping

import (
	"testing"

	"spex/internal/annot"
	"spex/internal/dataflow"
	"spex/internal/frontend"
)

func extract(t *testing.T, src, annSrc string) []Pair {
	t.Helper()
	proj, err := frontend.Parse("t", map[string]string{"t.go": src})
	if err != nil {
		t.Fatal(err)
	}
	af, err := annot.Parse(annSrc)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := Extract(proj, af)
	if err != nil {
		t.Fatal(err)
	}
	return pairs
}

func hasPair(pairs []Pair, param string, loc dataflow.Loc) bool {
	for _, p := range pairs {
		if p.Param == param && p.Loc == loc {
			return true
		}
	}
	return false
}

func TestStructDirectMapping(t *testing.T) {
	src := `package t
type C struct {
	timeout int64
	root    string
}
var c = &C{}
type opt struct {
	name string
	ptr  interface{}
}
var opts = []opt{
	{"deadlock_timeout", &c.timeout},
	{"document_root", &c.root},
}
var global int64
var opts2 = []opt{{"counter", &global}}
`
	pairs := extract(t, src, `{ @STRUCT = opts @PAR = [opt, 1] @VAR = [opt, 2] }
{ @STRUCT = opts2 @PAR = [opt, 1] @VAR = [opt, 2] }`)
	if !hasPair(pairs, "deadlock_timeout", dataflow.FieldLoc("C", "timeout")) {
		t.Errorf("field mapping missing: %+v", pairs)
	}
	if !hasPair(pairs, "counter", dataflow.GlobalLoc("global")) {
		t.Errorf("global mapping missing: %+v", pairs)
	}
}

func TestStructKeyedLiteralMapping(t *testing.T) {
	src := `package t
type C struct{ v int64 }
var c = &C{}
type opt struct {
	name string
	ptr  interface{}
}
var opts = []opt{
	{name: "keyed_param", ptr: &c.v},
}
`
	pairs := extract(t, src, `{ @STRUCT = opts @PAR = [opt, 1] @VAR = [opt, 2] }`)
	if !hasPair(pairs, "keyed_param", dataflow.FieldLoc("C", "v")) {
		t.Errorf("keyed literal mapping missing: %+v", pairs)
	}
}

func TestStructHandlerMapping(t *testing.T) {
	src := `package t
type C struct{ root string }
var c = &C{}
func setRoot(arg string) { c.root = arg }
type cmd struct {
	name string
	h    func(arg string)
}
var cmds = []cmd{{"DocumentRoot", setRoot}}
`
	pairs := extract(t, src, `{ @STRUCT = cmds @PAR = [cmd, 1] @VAR = ([cmd, 2], $arg) }`)
	if !hasPair(pairs, "DocumentRoot", dataflow.ParamLoc("setRoot", "arg")) {
		t.Errorf("handler mapping missing: %+v", pairs)
	}
}

func TestParserMapping(t *testing.T) {
	src := `package t
type C struct {
	timeout int64
	logfile string
}
var c = &C{}
func atoi(s string) int64 { return 0 }
func load(key string, value string) {
	if key == "timeout" {
		c.timeout = atoi(value)
	} else if key == "logfile" {
		c.logfile = value
	}
}
`
	pairs := extract(t, src, `{ @PARSER = load @PAR = $key @VAR = $value }`)
	if !hasPair(pairs, "timeout", dataflow.FieldLoc("C", "timeout")) {
		t.Errorf("parser mapping missing: %+v", pairs)
	}
	// atoi on the parse path is recorded for unsafe-API accounting.
	for _, p := range pairs {
		if p.Param == "timeout" {
			found := false
			for _, call := range p.RHSCalls {
				if call == "atoi" {
					found = true
				}
			}
			if !found {
				t.Errorf("RHSCalls missing atoi: %+v", p)
			}
			if !p.CaseKnown || p.CaseInsensitive {
				t.Error("== comparison must be recorded case sensitive")
			}
		}
	}
}

func TestParserEqualFoldIsInsensitive(t *testing.T) {
	src := `package t
import "strings"
type C struct{ v string }
var c = &C{}
func load(key string, value string) {
	if strings.EqualFold(key, "mode") {
		c.v = value
	}
}
`
	pairs := extract(t, src, `{ @PARSER = load @PAR = $key @VAR = $value }`)
	if len(pairs) != 1 || !pairs[0].CaseInsensitive {
		t.Errorf("EqualFold matching not insensitive: %+v", pairs)
	}
}

func TestParserSwitchMapping(t *testing.T) {
	src := `package t
type C struct{ a, b int64 }
var c = &C{}
func atoi(s string) int64 { return 0 }
func load(key string, value string) {
	switch key {
	case "alpha":
		c.a = atoi(value)
	case "beta":
		c.b = atoi(value)
	}
}
`
	pairs := extract(t, src, `{ @PARSER = load @PAR = $key @VAR = $value }`)
	if !hasPair(pairs, "alpha", dataflow.FieldLoc("C", "a")) ||
		!hasPair(pairs, "beta", dataflow.FieldLoc("C", "b")) {
		t.Errorf("switch mapping missing: %+v", pairs)
	}
}

func TestParserSetterMapping(t *testing.T) {
	src := `package t
type C struct{ flag bool }
var c = &C{}
func setBool(dst *bool, raw string) {
	if raw == "on" {
		*dst = true
	} else {
		*dst = false
	}
}
func load(key string, value string) {
	if key == "feature" {
		setBool(&c.flag, value)
	}
}
`
	pairs := extract(t, src, `{ @PARSER = load @PAR = $key @VAR = $value }`)
	if !hasPair(pairs, "feature", dataflow.ParamLoc("setBool", "raw")) {
		t.Errorf("setter value-arg mapping missing: %+v", pairs)
	}
	if !hasPair(pairs, "feature", dataflow.FieldLoc("C", "flag")) {
		t.Errorf("setter destination mapping missing: %+v", pairs)
	}
}

func TestGetterMapping(t *testing.T) {
	src := `package t
type props struct{}
func (p *props) getI32(name string) int64 { return 0 }
type C struct{ interval int64 }
var ps = &props{}
var c = &C{}
func initAll() {
	c.interval = ps.getI32("Retry.Interval")
	local := ps.getI32("Local.Param")
	_ = local
}
`
	pairs := extract(t, src, `{ @GETTER = getI32 @PAR = 1 @VAR = $RET }`)
	if !hasPair(pairs, "Retry.Interval", dataflow.FieldLoc("C", "interval")) {
		t.Errorf("getter field mapping missing: %+v", pairs)
	}
	if !hasPair(pairs, "Local.Param", dataflow.LocalLoc("initAll", "local")) {
		t.Errorf("getter local mapping missing: %+v", pairs)
	}
}

func TestExtractErrors(t *testing.T) {
	src := "package t\nvar x int64\n"
	proj, _ := frontend.Parse("t", map[string]string{"t.go": src})
	for _, annSrc := range []string{
		`{ @STRUCT = missing @PAR = [o, 1] @VAR = [o, 2] }`,
		`{ @PARSER = missing @PAR = $k @VAR = $v }`,
		`{ @GETTER = missing @PAR = 1 @VAR = $RET }`,
	} {
		af, err := annot.Parse(annSrc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Extract(proj, af); err == nil {
			t.Errorf("Extract(%s) succeeded on empty project", annSrc)
		}
	}
}

func TestConvention(t *testing.T) {
	af, _ := annot.Parse(`{ @STRUCT = a @PAR = [x,1] @VAR = [x,2] }`)
	if Convention(af) != "structure" {
		t.Error("structure")
	}
	af, _ = annot.Parse(`{ @PARSER = p @PAR = $k @VAR = $v }
{ @STRUCT = a @PAR = [x,1] @VAR = [x,2] }`)
	if Convention(af) != "hybrid" {
		t.Error("hybrid")
	}
	af, _ = annot.Parse("")
	if Convention(af) != "unknown" {
		t.Error("unknown")
	}
}
