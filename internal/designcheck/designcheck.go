// Package designcheck detects error-prone configuration design and
// handling (paper §3.2): case-sensitivity and unit inconsistency
// (Tables 6–7), silent overruling, unsafe parsing APIs, and undocumented
// constraints (Table 8). All detectors run over the constraints and
// observations SPEX inferred — notably the unsafe-API detector works
// precisely because SPEX knows which variables come from user settings,
// which generic bug detectors cannot know.
package designcheck

import (
	"fmt"
	"sort"

	"spex/internal/constraint"
	"spex/internal/spex"
)

// FindingKind classifies audit findings.
type FindingKind string

const (
	FindingCaseInconsistency FindingKind = "case-inconsistency"
	FindingUnitInconsistency FindingKind = "unit-inconsistency"
	FindingSilentOverruling  FindingKind = "silent-overruling"
	FindingUnsafeAPI         FindingKind = "unsafe-api"
	FindingUndocumented      FindingKind = "undocumented-constraint"
)

// Finding is one detected error-prone design issue.
type Finding struct {
	Kind    FindingKind
	Param   string
	Message string
	Loc     constraint.SourceLoc
}

// Audit is the per-system result of the design checks.
type Audit struct {
	System string
	// Case-sensitivity split of string/enum parameters (Table 6).
	CaseSensitive   int
	CaseInsensitive int
	// Unit distribution of size and time parameters (Table 7).
	SizeUnits map[constraint.Unit]int
	TimeUnits map[constraint.Unit]int
	// Parameters affected by each error-prone pattern (Table 8).
	SilentOverruling int
	UnsafeTransform  int
	UndocRange       int
	UndocDep         int
	UndocRel         int

	Findings []Finding
}

// Run audits one analyzed system.
func Run(res *spex.Result) *Audit {
	a := &Audit{
		System:    res.System,
		SizeUnits: map[constraint.Unit]int{},
		TimeUnits: map[constraint.Unit]int{},
	}
	a.caseSensitivity(res)
	a.units(res)
	a.silentOverruling(res)
	a.unsafeAPIs(res)
	a.undocumented(res)
	sort.SliceStable(a.Findings, func(i, j int) bool {
		if a.Findings[i].Kind != a.Findings[j].Kind {
			return a.Findings[i].Kind < a.Findings[j].Kind
		}
		return a.Findings[i].Param < a.Findings[j].Param
	})
	return a
}

// caseSensitivity tallies per-parameter case semantics; when both
// conventions coexist in one system, each minority parameter becomes a
// finding (Figure 6a: innodb_file_format_check).
func (a *Audit) caseSensitivity(res *spex.Result) {
	caseOf := map[string]bool{} // param -> sensitive
	for _, c := range res.Set.Constraints {
		if !c.CaseKnown {
			continue
		}
		if _, seen := caseOf[c.Param]; !seen {
			caseOf[c.Param] = c.CaseSensitive
		} else if c.CaseSensitive {
			caseOf[c.Param] = true
		}
	}
	var sens, insens []string
	for p, s := range caseOf {
		if s {
			sens = append(sens, p)
		} else {
			insens = append(insens, p)
		}
	}
	sort.Strings(sens)
	sort.Strings(insens)
	a.CaseSensitive, a.CaseInsensitive = len(sens), len(insens)
	if len(sens) == 0 || len(insens) == 0 {
		return
	}
	minority, majoritySemantics := sens, "insensitive"
	if len(insens) < len(sens) {
		minority, majoritySemantics = insens, "sensitive"
	}
	for _, p := range minority {
		a.Findings = append(a.Findings, Finding{
			Kind:  FindingCaseInconsistency,
			Param: p,
			Message: fmt.Sprintf("parameter %q deviates from the system's dominant case-%s value matching",
				p, majoritySemantics),
			Loc: firstLoc(res, p),
		})
	}
}

// units tallies size/time parameter units; systems mixing units get a
// finding per minority-unit parameter (Figure 6b: Apache MaxMemFree in KB
// among byte-unit parameters).
func (a *Audit) units(res *spex.Result) {
	sizeParams := map[string]constraint.Unit{}
	timeParams := map[string]constraint.Unit{}
	for _, c := range res.Set.Constraints {
		if c.Kind != constraint.KindSemanticType || c.Unit == constraint.UnitNone {
			continue
		}
		switch {
		case c.Unit.IsSize():
			sizeParams[c.Param] = c.Unit
		case c.Unit.IsTime():
			timeParams[c.Param] = c.Unit
		}
	}
	for p, u := range sizeParams {
		a.SizeUnits[u]++
		_ = p
	}
	for p, u := range timeParams {
		a.TimeUnits[u]++
		_ = p
	}
	a.flagUnitMinority(res, sizeParams, "size")
	a.flagUnitMinority(res, timeParams, "time")
}

func (a *Audit) flagUnitMinority(res *spex.Result, params map[string]constraint.Unit, class string) {
	if len(params) == 0 {
		return
	}
	counts := map[constraint.Unit]int{}
	for _, u := range params {
		counts[u]++
	}
	if len(counts) <= 1 {
		return
	}
	var major constraint.Unit
	best := -1
	units := make([]constraint.Unit, 0, len(counts))
	for u := range counts {
		units = append(units, u)
	}
	sort.Slice(units, func(i, j int) bool { return units[i] < units[j] })
	for _, u := range units {
		if counts[u] > best {
			best, major = counts[u], u
		}
	}
	ps := make([]string, 0, len(params))
	for p := range params {
		ps = append(ps, p)
	}
	sort.Strings(ps)
	for _, p := range ps {
		if params[p] == major {
			continue
		}
		a.Findings = append(a.Findings, Finding{
			Kind:  FindingUnitInconsistency,
			Param: p,
			Message: fmt.Sprintf("%s parameter %q uses unit %s while most use %s",
				class, p, params[p], major),
			Loc: firstLoc(res, p),
		})
	}
}

// silentOverruling flags enum parameters whose out-of-list values are
// silently rewritten (Figure 6c: Squid boolean parsing).
func (a *Audit) silentOverruling(res *spex.Result) {
	seen := map[string]bool{}
	for _, c := range res.Set.Constraints {
		if c.Kind != constraint.KindRange || len(c.Enum) == 0 || seen[c.Param] {
			continue
		}
		for _, ev := range c.Enum {
			if ev.Overruled {
				seen[c.Param] = true
				a.SilentOverruling++
				a.Findings = append(a.Findings, Finding{
					Kind:  FindingSilentOverruling,
					Param: c.Param,
					Message: fmt.Sprintf("values of %q outside the accepted list are silently rewritten without notifying the user",
						c.Param),
					Loc: c.Loc,
				})
				break
			}
		}
	}
}

// unsafeAPIs flags parameters parsed with unsafe transformation APIs
// (Figure 6d: sscanf/atoi).
func (a *Audit) unsafeAPIs(res *spex.Result) {
	seen := map[string]bool{}
	for _, u := range res.Unsafe {
		if seen[u.Param] {
			continue
		}
		seen[u.Param] = true
		a.UnsafeTransform++
		a.Findings = append(a.Findings, Finding{
			Kind:  FindingUnsafeAPI,
			Param: u.Param,
			Message: fmt.Sprintf("parameter %q is parsed with unsafe API %s (no error/overflow detection)",
				u.Param, u.API),
			Loc: u.Loc,
		})
	}
}

// undocumented flags inferred range/dependency/relationship constraints the
// user manual never mentions.
func (a *Audit) undocumented(res *spex.Result) {
	for _, c := range res.Set.Constraints {
		if c.Documented {
			continue
		}
		var label string
		switch c.Kind {
		case constraint.KindRange:
			a.UndocRange++
			label = "data range"
		case constraint.KindControlDep:
			a.UndocDep++
			label = "control dependency"
		case constraint.KindValueRel:
			a.UndocRel++
			label = "value relationship"
		default:
			continue
		}
		a.Findings = append(a.Findings, Finding{
			Kind:    FindingUndocumented,
			Param:   c.Param,
			Message: fmt.Sprintf("%s constraint %s is not documented in the manual", label, c),
			Loc:     c.Loc,
		})
	}
}

func firstLoc(res *spex.Result, param string) constraint.SourceLoc {
	for _, c := range res.Set.ByParam(param) {
		if c.Loc.File != "" {
			return c.Loc
		}
	}
	return constraint.SourceLoc{}
}
