package designcheck

import (
	"testing"

	"spex/internal/constraint"
	"spex/internal/spex"
)

func result(cs ...*constraint.Constraint) *spex.Result {
	set := constraint.NewSet("t")
	for _, c := range cs {
		set.Add(c)
	}
	return &spex.Result{System: "t", Set: set}
}

func findings(a *Audit, kind FindingKind) []Finding {
	var out []Finding
	for _, f := range a.Findings {
		if f.Kind == kind {
			out = append(out, f)
		}
	}
	return out
}

func TestCaseInconsistencyFlagsMinority(t *testing.T) {
	a := Run(result(
		&constraint.Constraint{Kind: constraint.KindRange, Param: "a", CaseKnown: true, CaseSensitive: false,
			Enum: []constraint.EnumValue{{Value: "x", Valid: true}}},
		&constraint.Constraint{Kind: constraint.KindRange, Param: "b", CaseKnown: true, CaseSensitive: false,
			Enum: []constraint.EnumValue{{Value: "x", Valid: true}}},
		&constraint.Constraint{Kind: constraint.KindRange, Param: "odd", CaseKnown: true, CaseSensitive: true,
			Enum: []constraint.EnumValue{{Value: "X", Valid: true}}},
	))
	if a.CaseSensitive != 1 || a.CaseInsensitive != 2 {
		t.Errorf("split = %d/%d", a.CaseSensitive, a.CaseInsensitive)
	}
	fs := findings(a, FindingCaseInconsistency)
	if len(fs) != 1 || fs[0].Param != "odd" {
		t.Errorf("findings = %+v, want the minority parameter", fs)
	}
}

func TestCaseConsistentNoFindings(t *testing.T) {
	a := Run(result(
		&constraint.Constraint{Kind: constraint.KindRange, Param: "a", CaseKnown: true, CaseSensitive: false,
			Enum: []constraint.EnumValue{{Value: "x", Valid: true}}},
	))
	if len(findings(a, FindingCaseInconsistency)) != 0 {
		t.Error("uniform case semantics flagged")
	}
}

func TestUnitInconsistency(t *testing.T) {
	a := Run(result(
		&constraint.Constraint{Kind: constraint.KindSemanticType, Param: "s1",
			Semantic: constraint.SemSize, Unit: constraint.UnitByte},
		&constraint.Constraint{Kind: constraint.KindSemanticType, Param: "s2",
			Semantic: constraint.SemSize, Unit: constraint.UnitByte},
		&constraint.Constraint{Kind: constraint.KindSemanticType, Param: "odd",
			Semantic: constraint.SemSize, Unit: constraint.UnitKB},
		&constraint.Constraint{Kind: constraint.KindSemanticType, Param: "t1",
			Semantic: constraint.SemTimeout, Unit: constraint.UnitSecond},
	))
	if a.SizeUnits[constraint.UnitByte] != 2 || a.SizeUnits[constraint.UnitKB] != 1 {
		t.Errorf("size units = %v", a.SizeUnits)
	}
	if a.TimeUnits[constraint.UnitSecond] != 1 {
		t.Errorf("time units = %v", a.TimeUnits)
	}
	fs := findings(a, FindingUnitInconsistency)
	if len(fs) != 1 || fs[0].Param != "odd" {
		t.Errorf("unit findings = %+v", fs)
	}
}

func TestSilentOverruling(t *testing.T) {
	a := Run(result(
		&constraint.Constraint{Kind: constraint.KindRange, Param: "flag",
			Enum: []constraint.EnumValue{
				{Value: "on", Valid: true},
				{Value: "*", Valid: false, Overruled: true},
			}},
		&constraint.Constraint{Kind: constraint.KindRange, Param: "clean",
			Enum: []constraint.EnumValue{{Value: "on", Valid: true}}},
	))
	if a.SilentOverruling != 1 {
		t.Errorf("silent overruling = %d", a.SilentOverruling)
	}
	fs := findings(a, FindingSilentOverruling)
	if len(fs) != 1 || fs[0].Param != "flag" {
		t.Errorf("findings = %+v", fs)
	}
}

func TestUnsafeAPIs(t *testing.T) {
	res := result()
	res.Unsafe = []spex.UnsafeUse{
		{Param: "a", API: "atoi"},
		{Param: "a", API: "fmt.Sscanf"}, // second API on same param: one finding
		{Param: "b", API: "atoi"},
	}
	a := Run(res)
	if a.UnsafeTransform != 2 {
		t.Errorf("unsafe params = %d, want 2", a.UnsafeTransform)
	}
}

func TestUndocumentedCounts(t *testing.T) {
	a := Run(result(
		&constraint.Constraint{Kind: constraint.KindRange, Param: "r", Documented: false,
			Intervals: []constraint.Interval{{HasMin: true, Min: 1, Valid: true}}},
		&constraint.Constraint{Kind: constraint.KindRange, Param: "rd", Documented: true,
			Intervals: []constraint.Interval{{HasMin: true, Min: 1, Valid: true}}},
		&constraint.Constraint{Kind: constraint.KindControlDep, Param: "q", Peer: "p",
			Cond: constraint.OpEQ, Value: "true"},
		&constraint.Constraint{Kind: constraint.KindValueRel, Param: "x", Rel: constraint.OpGT, Peer: "y"},
		// Basic types don't count toward the undocumented columns.
		&constraint.Constraint{Kind: constraint.KindBasicType, Param: "b", Basic: constraint.BasicBool},
	))
	if a.UndocRange != 1 || a.UndocDep != 1 || a.UndocRel != 1 {
		t.Errorf("undocumented = %d/%d/%d", a.UndocRange, a.UndocDep, a.UndocRel)
	}
}

func TestFindingsSorted(t *testing.T) {
	res := result(
		&constraint.Constraint{Kind: constraint.KindValueRel, Param: "z", Rel: constraint.OpGT, Peer: "y"},
		&constraint.Constraint{Kind: constraint.KindControlDep, Param: "a", Peer: "p",
			Cond: constraint.OpEQ, Value: "true"},
	)
	a := Run(res)
	for i := 1; i < len(a.Findings); i++ {
		prev, cur := a.Findings[i-1], a.Findings[i]
		if prev.Kind > cur.Kind || (prev.Kind == cur.Kind && prev.Param > cur.Param) {
			t.Errorf("findings not sorted: %v before %v", prev, cur)
		}
	}
}
