package constraint

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

var allOps = []Op{OpLT, OpGT, OpEQ, OpNE, OpGE, OpLE}

func TestOpNegateIsInvolution(t *testing.T) {
	for _, op := range allOps {
		if got := op.Negate().Negate(); got != op {
			t.Errorf("Negate(Negate(%s)) = %s", op, got)
		}
	}
}

func TestOpFlipIsInvolution(t *testing.T) {
	for _, op := range allOps {
		if got := op.Flip().Flip(); got != op {
			t.Errorf("Flip(Flip(%s)) = %s", op, got)
		}
	}
}

// Property: for all a, b: (a op b) == !(a Negate(op) b).
func TestOpNegateComplement(t *testing.T) {
	f := func(a, b int64) bool {
		for _, op := range allOps {
			if op.Holds(a, b) == op.Negate().Holds(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for all a, b: (a op b) == (b Flip(op) a).
func TestOpFlipSwapsOperands(t *testing.T) {
	f := func(a, b int64) bool {
		for _, op := range allOps {
			if op.Holds(a, b) != op.Flip().Holds(b, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBasicTypeProperties(t *testing.T) {
	if !BasicInt32.Numeric() || !BasicInt32.Signed() || BasicInt32.Bits() != 32 {
		t.Error("int32 misclassified")
	}
	if BasicUint16.Signed() {
		t.Error("uint16 must be unsigned")
	}
	if BasicString.Numeric() || BasicBool.Numeric() {
		t.Error("string/bool are not numeric")
	}
	if max, ok := BasicInt8.MaxValue(); !ok || max != 127 {
		t.Errorf("int8 max = %d, want 127", max)
	}
	if max, ok := BasicUint16.MaxValue(); !ok || max != 65535 {
		t.Errorf("uint16 max = %d, want 65535", max)
	}
	if _, ok := BasicString.MaxValue(); ok {
		t.Error("string has no max value")
	}
}

func TestIntervalContains(t *testing.T) {
	cases := []struct {
		iv   Interval
		v    int64
		want bool
	}{
		{Interval{HasMin: true, Min: 4, HasMax: true, Max: 255}, 4, true},
		{Interval{HasMin: true, Min: 4, HasMax: true, Max: 255}, 255, true},
		{Interval{HasMin: true, Min: 4, HasMax: true, Max: 255}, 3, false},
		{Interval{HasMin: true, Min: 4, HasMax: true, Max: 255}, 256, false},
		{Interval{HasMax: true, Max: 10}, -1 << 62, true},
		{Interval{HasMin: true, Min: 10}, 1 << 62, true},
		{Interval{}, 0, true}, // unbounded contains everything
	}
	for _, c := range cases {
		if got := c.iv.Contains(c.v); got != c.want {
			t.Errorf("%s.Contains(%d) = %v, want %v", c.iv, c.v, got, c.want)
		}
	}
}

// Property: an interval always contains its own finite endpoints.
func TestIntervalContainsEndpoints(t *testing.T) {
	f := func(min, max int64) bool {
		if min > max {
			min, max = max, min
		}
		iv := Interval{HasMin: true, Min: min, HasMax: true, Max: max}
		return iv.Contains(min) && iv.Contains(max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnitClasses(t *testing.T) {
	for _, u := range []Unit{UnitByte, UnitKB, UnitMB, UnitGB} {
		if !u.IsSize() || u.IsTime() {
			t.Errorf("%s must be size-only", u)
		}
	}
	for _, u := range []Unit{UnitMicrosecond, UnitMillisecond, UnitSecond, UnitMinute, UnitHour} {
		if !u.IsTime() || u.IsSize() {
			t.Errorf("%s must be time-only", u)
		}
	}
	if UnitNone.IsSize() || UnitNone.IsTime() {
		t.Error("UnitNone is neither")
	}
}

func TestSetDeduplicates(t *testing.T) {
	s := NewSet("sys")
	a := &Constraint{Kind: KindBasicType, Param: "p", Basic: BasicInt64}
	b := &Constraint{Kind: KindBasicType, Param: "p", Basic: BasicInt64}
	c := &Constraint{Kind: KindBasicType, Param: "p", Basic: BasicString}
	if got := s.Add(a); got != a {
		t.Error("first Add should return the constraint itself")
	}
	if got := s.Add(b); got != a {
		t.Error("duplicate Add should return the canonical constraint")
	}
	s.Add(c)
	if s.Len() != 2 {
		t.Errorf("set size = %d, want 2", s.Len())
	}
}

func TestSetQueries(t *testing.T) {
	s := NewSet("sys")
	s.Add(&Constraint{Kind: KindBasicType, Param: "a", Basic: BasicInt64})
	s.Add(&Constraint{Kind: KindRange, Param: "a",
		Intervals: []Interval{{HasMin: true, Min: 1, Valid: true}}})
	s.Add(&Constraint{Kind: KindBasicType, Param: "b", Basic: BasicBool})
	if got := len(s.ByParam("a")); got != 2 {
		t.Errorf("ByParam(a) = %d, want 2", got)
	}
	if got := len(s.ByKind(KindBasicType)); got != 2 {
		t.Errorf("ByKind(basic) = %d, want 2", got)
	}
	if got := s.CountByKind()[KindRange]; got != 1 {
		t.Errorf("CountByKind[range] = %d, want 1", got)
	}
	params := s.Params()
	if len(params) != 2 || params[0] != "a" || params[1] != "b" {
		t.Errorf("Params() = %v, want [a b]", params)
	}
}

func TestConstraintIDStability(t *testing.T) {
	c1 := &Constraint{Kind: KindControlDep, Param: "q", Peer: "p", Cond: OpEQ, Value: "true"}
	c2 := &Constraint{Kind: KindControlDep, Param: "q", Peer: "p", Cond: OpEQ, Value: "true", Confidence: 0.9}
	if c1.ID() != c2.ID() {
		t.Error("confidence must not affect identity")
	}
	c3 := &Constraint{Kind: KindControlDep, Param: "q", Peer: "p", Cond: OpNE, Value: "true"}
	if c1.ID() == c3.ID() {
		t.Error("different operators must have different identities")
	}
}

func TestValidInvalidIntervals(t *testing.T) {
	c := &Constraint{Kind: KindRange, Param: "p", Intervals: []Interval{
		{HasMax: true, Max: 3, Valid: false},
		{HasMin: true, Min: 4, HasMax: true, Max: 255, Valid: true},
		{HasMin: true, Min: 256, Valid: false},
	}}
	if got := len(c.ValidIntervals()); got != 1 {
		t.Errorf("valid intervals = %d, want 1", got)
	}
	if got := len(c.InvalidIntervals()); got != 2 {
		t.Errorf("invalid intervals = %d, want 2", got)
	}
}

func TestConstraintString(t *testing.T) {
	cases := []struct {
		c    Constraint
		want string
	}{
		{Constraint{Kind: KindBasicType, Param: "p", Basic: BasicInt32},
			`"p": basic type int32`},
		{Constraint{Kind: KindSemanticType, Param: "p", Semantic: SemFile},
			`"p": semantic type FILE`},
		{Constraint{Kind: KindControlDep, Param: "q", Peer: "p", Cond: OpEQ, Value: "0"},
			`("p", 0, =) -> "q"`},
		{Constraint{Kind: KindValueRel, Param: "a", Rel: OpGT, Peer: "b"},
			`"a" > "b"`},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestSetJSONRoundTripIsStable(t *testing.T) {
	mk := func(order ...int) *Set {
		cs := []*Constraint{
			{Kind: KindBasicType, Param: "threads", Basic: BasicInt32,
				Loc: SourceLoc{File: "a.go", Line: 10, Func: "parse"}},
			{Kind: KindRange, Param: "threads",
				Intervals: []Interval{{HasMin: true, Min: 1, HasMax: true, Max: 64, Valid: true}}},
			{Kind: KindControlDep, Param: "cache-size", Peer: "cache", Cond: OpEQ, Value: "on",
				Confidence: 0.9},
		}
		s := NewSet("sys")
		for _, i := range order {
			s.Add(cs[i])
		}
		return s
	}
	a := mk(0, 1, 2)
	b := mk(2, 0, 1)

	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("insertion order leaked into the serialized form:\n%s\n%s", ja, jb)
	}

	var back Set
	if err := json.Unmarshal(ja, &back); err != nil {
		t.Fatal(err)
	}
	if back.System != "sys" || back.Len() != 3 {
		t.Fatalf("round trip lost data: system=%q len=%d", back.System, back.Len())
	}
	for _, c := range a.Constraints {
		found := false
		for _, d := range back.Constraints {
			if d.ID() == c.ID() {
				found = true
			}
		}
		if !found {
			t.Fatalf("constraint %s missing after round trip", c.ID())
		}
	}
	// The dedup index is rebuilt: re-adding an existing constraint
	// returns the canonical one instead of growing the set.
	dup := &Constraint{Kind: KindBasicType, Param: "threads", Basic: BasicInt32}
	if back.Add(dup) == dup || back.Len() != 3 {
		t.Fatal("round-tripped set lost its deduplication index")
	}
}

func TestSetFingerprint(t *testing.T) {
	a := NewSet("s")
	a.Add(&Constraint{Kind: KindBasicType, Param: "p", Basic: BasicBool})
	a.Add(&Constraint{Kind: KindRange, Param: "p",
		Intervals: []Interval{{HasMin: true, Min: 0, Valid: true}}})
	b := NewSet("s")
	b.Add(&Constraint{Kind: KindRange, Param: "p",
		Intervals: []Interval{{HasMin: true, Min: 0, Valid: true}}})
	b.Add(&Constraint{Kind: KindBasicType, Param: "p", Basic: BasicBool})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on insertion order")
	}
	b.Add(&Constraint{Kind: KindBasicType, Param: "q", Basic: BasicBool})
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint missed an added constraint")
	}
}
