// Package constraint defines the configuration-constraint model inferred by
// SPEX. A constraint for a configuration parameter specifies its data type,
// format, value range, and its dependencies and correlations with other
// parameters — the rules that differentiate correct configurations from
// misconfigurations (paper §2.1).
//
// Constraints are divided into attributes (basic type, semantic type, value
// range), which define correct settings of a single parameter, and
// correlations (control dependency, value relationship), which span multiple
// parameters.
package constraint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates the five constraint classes of the paper (Table 11).
type Kind int

const (
	// KindBasicType constrains the low-level data representation of a
	// parameter: integer width, boolean, float, string, …
	KindBasicType Kind = iota
	// KindSemanticType constrains the high-level meaning of a parameter:
	// file path, port number, timeout, user name, …
	KindSemanticType
	// KindRange constrains acceptable values: numeric intervals or an
	// enumerative list.
	KindRange
	// KindControlDep records that one parameter takes effect only under a
	// condition on another parameter: (P,V,op) -> Q.
	KindControlDep
	// KindValueRel records an ordering or equality relation between the
	// values of two parameters: P op Q.
	KindValueRel
)

var kindNames = [...]string{
	"basic-type", "semantic-type", "data-range", "control-dependency", "value-relationship",
}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// BasicType is the low-level representation of a parameter value.
type BasicType int

const (
	BasicUnknown BasicType = iota
	BasicBool
	BasicInt8
	BasicInt16
	BasicInt32
	BasicInt64
	BasicUint8
	BasicUint16
	BasicUint32
	BasicUint64
	BasicFloat32
	BasicFloat64
	BasicString
	BasicChar
)

var basicNames = map[BasicType]string{
	BasicUnknown: "unknown",
	BasicBool:    "bool",
	BasicInt8:    "int8",
	BasicInt16:   "int16",
	BasicInt32:   "int32",
	BasicInt64:   "int64",
	BasicUint8:   "uint8",
	BasicUint16:  "uint16",
	BasicUint32:  "uint32",
	BasicUint64:  "uint64",
	BasicFloat32: "float32",
	BasicFloat64: "float64",
	BasicString:  "string",
	BasicChar:    "char",
}

func (b BasicType) String() string {
	if s, ok := basicNames[b]; ok {
		return s
	}
	return fmt.Sprintf("BasicType(%d)", int(b))
}

// Numeric reports whether the basic type is an integer or floating-point
// number.
func (b BasicType) Numeric() bool {
	switch b {
	case BasicInt8, BasicInt16, BasicInt32, BasicInt64,
		BasicUint8, BasicUint16, BasicUint32, BasicUint64,
		BasicFloat32, BasicFloat64:
		return true
	}
	return false
}

// Signed reports whether the basic type is a signed integer.
func (b BasicType) Signed() bool {
	switch b {
	case BasicInt8, BasicInt16, BasicInt32, BasicInt64:
		return true
	}
	return false
}

// Bits returns the bit width of a numeric basic type, or 0.
func (b BasicType) Bits() int {
	switch b {
	case BasicInt8, BasicUint8, BasicChar:
		return 8
	case BasicInt16, BasicUint16:
		return 16
	case BasicInt32, BasicUint32, BasicFloat32:
		return 32
	case BasicInt64, BasicUint64, BasicFloat64:
		return 64
	}
	return 0
}

// MaxValue returns the maximum representable value for integer basic types.
// For non-integer types it returns 0, false.
func (b BasicType) MaxValue() (int64, bool) {
	switch b {
	case BasicInt8:
		return 1<<7 - 1, true
	case BasicInt16:
		return 1<<15 - 1, true
	case BasicInt32:
		return 1<<31 - 1, true
	case BasicInt64:
		return 1<<63 - 1, true
	case BasicUint8, BasicChar:
		return 1<<8 - 1, true
	case BasicUint16:
		return 1<<16 - 1, true
	case BasicUint32:
		return 1<<32 - 1, true
	case BasicUint64:
		return 1<<63 - 1, true // clamped to int64 for generation purposes
	}
	return 0, false
}

// SemanticType is a high-level parameter meaning tied to known APIs
// (paper §2.2.2). The set mirrors the standard-library types SPEX supports
// plus the proprietary types imported for Storage-A.
type SemanticType string

const (
	SemFile      SemanticType = "FILE"      // file path expected to exist
	SemDirectory SemanticType = "DIR"       // directory path
	SemPath      SemanticType = "PATH"      // path, existence not required
	SemPort      SemanticType = "PORT"      // TCP/UDP port number
	SemIPAddr    SemanticType = "IPADDR"    // IP address
	SemHost      SemanticType = "HOST"      // host name or address
	SemURL       SemanticType = "URL"       // URL
	SemUser      SemanticType = "USER"      // user name
	SemGroup     SemanticType = "GROUP"     // group name
	SemPerm      SemanticType = "PERM"      // permission mask (octal)
	SemTimeout   SemanticType = "TIMEOUT"   // time duration
	SemSize      SemanticType = "SIZE"      // byte size
	SemCount     SemanticType = "COUNT"     // cardinality (threads, conns, …)
	SemPassword  SemanticType = "PASSWORD"  // secret
	SemCommand   SemanticType = "COMMAND"   // executable command line
	SemInitiator SemanticType = "INITIATOR" // iSCSI initiator name (Storage-A)
)

// Unit is a measurement unit attached to SIZE and TIMEOUT parameters
// (Table 7).
type Unit string

const (
	UnitNone Unit = ""
	// Size units.
	UnitByte Unit = "B"
	UnitKB   Unit = "KB"
	UnitMB   Unit = "MB"
	UnitGB   Unit = "GB"
	// Time units.
	UnitMicrosecond Unit = "us"
	UnitMillisecond Unit = "ms"
	UnitSecond      Unit = "s"
	UnitMinute      Unit = "m"
	UnitHour        Unit = "h"
)

// IsSize reports whether u is a byte-size unit.
func (u Unit) IsSize() bool {
	switch u {
	case UnitByte, UnitKB, UnitMB, UnitGB:
		return true
	}
	return false
}

// IsTime reports whether u is a time unit.
func (u Unit) IsTime() bool {
	switch u {
	case UnitMicrosecond, UnitMillisecond, UnitSecond, UnitMinute, UnitHour:
		return true
	}
	return false
}

// Op is a comparison operator in control dependencies and value
// relationships: one of < > = != >= <=.
type Op string

const (
	OpLT Op = "<"
	OpGT Op = ">"
	OpEQ Op = "="
	OpNE Op = "!="
	OpGE Op = ">="
	OpLE Op = "<="
)

// Negate returns the complement operator (used by the injector to violate a
// dependency condition).
func (o Op) Negate() Op {
	switch o {
	case OpLT:
		return OpGE
	case OpGT:
		return OpLE
	case OpEQ:
		return OpNE
	case OpNE:
		return OpEQ
	case OpGE:
		return OpLT
	case OpLE:
		return OpGT
	}
	return o
}

// Holds reports whether "a o b" is true for int64 operands.
func (o Op) Holds(a, b int64) bool {
	switch o {
	case OpLT:
		return a < b
	case OpGT:
		return a > b
	case OpEQ:
		return a == b
	case OpNE:
		return a != b
	case OpGE:
		return a >= b
	case OpLE:
		return a <= b
	}
	return false
}

// Flip returns the operator with its operands swapped: a o b == b Flip(o) a.
func (o Op) Flip() Op {
	switch o {
	case OpLT:
		return OpGT
	case OpGT:
		return OpLT
	case OpGE:
		return OpLE
	case OpLE:
		return OpGE
	}
	return o
}

// Interval is a half-open-ended numeric interval. Unbounded ends are
// represented by HasMin/HasMax = false.
type Interval struct {
	Min, Max       int64
	HasMin, HasMax bool
	// Valid reports whether values in the interval are accepted by the
	// program. Validity is decided from branch-block behaviour (§2.2.3):
	// exit, abort, error return, or parameter reset mark a range invalid.
	Valid bool
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int64) bool {
	if iv.HasMin && v < iv.Min {
		return false
	}
	if iv.HasMax && v > iv.Max {
		return false
	}
	return true
}

func (iv Interval) String() string {
	lo, hi := "-inf", "+inf"
	if iv.HasMin {
		lo = fmt.Sprintf("%d", iv.Min)
	}
	if iv.HasMax {
		hi = fmt.Sprintf("%d", iv.Max)
	}
	v := "invalid"
	if iv.Valid {
		v = "valid"
	}
	return fmt.Sprintf("[%s,%s](%s)", lo, hi, v)
}

// EnumValue is one acceptable (or explicitly rejected) value of an
// enumerative range.
type EnumValue struct {
	Value string
	Valid bool
	// Overruled marks values that the program silently rewrites to a
	// default (silent-overruling detection, §3.2).
	Overruled bool
}

// SourceLoc identifies the code location a constraint was inferred from.
// One location may give rise to several constraints (Table 5b counts unique
// locations).
type SourceLoc struct {
	File string
	Line int
	Func string
}

func (l SourceLoc) String() string {
	if l.File == "" {
		return "<unknown>"
	}
	return fmt.Sprintf("%s:%d(%s)", l.File, l.Line, l.Func)
}

// Constraint is one inferred configuration constraint.
type Constraint struct {
	Kind  Kind
	Param string // parameter name (e.g. "listener-threads")

	// Basic-type constraints.
	Basic BasicType

	// Semantic-type constraints.
	Semantic SemanticType
	Unit     Unit
	// CaseSensitive applies to string/enum parameters: whether value
	// comparison in the program is case sensitive.
	CaseSensitive bool
	// CaseKnown reports whether case sensitivity was observed at all.
	CaseKnown bool

	// Range constraints: numeric intervals or an enum list.
	Intervals []Interval
	Enum      []EnumValue

	// Control dependency: (Peer, Value, Cond) -> Param, meaning Param takes
	// effect only when "Peer Cond Value" holds. Confidence is the
	// MAY-belief confidence (§2.2.4); dependencies below the threshold are
	// filtered before reporting.
	Peer       string
	Cond       Op
	Value      string
	Confidence float64

	// Value relationship: Param Rel Peer (e.g. ft_max_word_len > ft_min_word_len).
	Rel Op

	// Documented reports whether the target's manual documents this
	// constraint (undocumented-constraint detection, Table 8).
	Documented bool

	Loc SourceLoc
}

// ID returns a stable identity string used for deduplication.
func (c *Constraint) ID() string {
	switch c.Kind {
	case KindBasicType:
		return fmt.Sprintf("basic|%s|%s", c.Param, c.Basic)
	case KindSemanticType:
		return fmt.Sprintf("sem|%s|%s", c.Param, c.Semantic)
	case KindRange:
		parts := make([]string, 0, len(c.Intervals)+len(c.Enum))
		for _, iv := range c.Intervals {
			parts = append(parts, iv.String())
		}
		for _, e := range c.Enum {
			parts = append(parts, e.Value)
		}
		sort.Strings(parts)
		return fmt.Sprintf("range|%s|%s", c.Param, strings.Join(parts, ","))
	case KindControlDep:
		return fmt.Sprintf("dep|%s|%s|%s|%s", c.Param, c.Peer, c.Cond, c.Value)
	case KindValueRel:
		return fmt.Sprintf("rel|%s|%s|%s", c.Param, c.Rel, c.Peer)
	}
	return fmt.Sprintf("?|%s", c.Param)
}

// String renders the constraint in the notation of the paper.
func (c *Constraint) String() string {
	switch c.Kind {
	case KindBasicType:
		return fmt.Sprintf("%q: basic type %s", c.Param, c.Basic)
	case KindSemanticType:
		s := fmt.Sprintf("%q: semantic type %s", c.Param, c.Semantic)
		if c.Unit != UnitNone {
			s += fmt.Sprintf(" (unit %s)", c.Unit)
		}
		return s
	case KindRange:
		if len(c.Enum) > 0 {
			vals := make([]string, 0, len(c.Enum))
			for _, e := range c.Enum {
				if e.Valid {
					vals = append(vals, e.Value)
				}
			}
			return fmt.Sprintf("%q: one of {%s}", c.Param, strings.Join(vals, ", "))
		}
		ivs := make([]string, len(c.Intervals))
		for i, iv := range c.Intervals {
			ivs[i] = iv.String()
		}
		return fmt.Sprintf("%q: range %s", c.Param, strings.Join(ivs, " "))
	case KindControlDep:
		return fmt.Sprintf("(%q, %s, %s) -> %q", c.Peer, c.Value, c.Cond, c.Param)
	case KindValueRel:
		return fmt.Sprintf("%q %s %q", c.Param, c.Rel, c.Peer)
	}
	return fmt.Sprintf("unknown constraint for %q", c.Param)
}

// ValidIntervals returns the valid sub-intervals of a range constraint.
func (c *Constraint) ValidIntervals() []Interval {
	var out []Interval
	for _, iv := range c.Intervals {
		if iv.Valid {
			out = append(out, iv)
		}
	}
	return out
}

// InvalidIntervals returns the invalid sub-intervals of a range constraint.
func (c *Constraint) InvalidIntervals() []Interval {
	var out []Interval
	for _, iv := range c.Intervals {
		if !iv.Valid {
			out = append(out, iv)
		}
	}
	return out
}

// Set is a deduplicated collection of constraints for one analyzed system.
type Set struct {
	System      string
	Constraints []*Constraint
	byID        map[string]*Constraint
}

// NewSet returns an empty constraint set for the named system.
func NewSet(system string) *Set {
	return &Set{System: system, byID: make(map[string]*Constraint)}
}

// Add inserts c unless an identical constraint is already present. It
// returns the canonical constraint (the existing one on duplicates).
func (s *Set) Add(c *Constraint) *Constraint {
	if s.byID == nil {
		s.byID = make(map[string]*Constraint)
	}
	id := c.ID()
	if old, ok := s.byID[id]; ok {
		return old
	}
	s.byID[id] = c
	s.Constraints = append(s.Constraints, c)
	return c
}

// ByParam returns all constraints for the given parameter.
func (s *Set) ByParam(param string) []*Constraint {
	var out []*Constraint
	for _, c := range s.Constraints {
		if c.Param == param {
			out = append(out, c)
		}
	}
	return out
}

// ByKind returns all constraints of the given kind.
func (s *Set) ByKind(k Kind) []*Constraint {
	var out []*Constraint
	for _, c := range s.Constraints {
		if c.Kind == k {
			out = append(out, c)
		}
	}
	return out
}

// CountByKind tallies constraints per kind (Table 11 rows).
func (s *Set) CountByKind() map[Kind]int {
	m := make(map[Kind]int)
	for _, c := range s.Constraints {
		m[c.Kind]++
	}
	return m
}

// Params returns the sorted set of parameter names that have at least one
// constraint.
func (s *Set) Params() []string {
	seen := make(map[string]bool)
	for _, c := range s.Constraints {
		seen[c.Param] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of constraints in the set.
func (s *Set) Len() int { return len(s.Constraints) }

// setJSON is the stable serialized form of a Set: the constraints are
// sorted by identity, so two sets holding the same constraints marshal
// byte-for-byte equal regardless of insertion order. Persistent campaign
// snapshots (internal/campaignstore) store this form and Diff a fresh
// inference run against it.
type setJSON struct {
	System      string        `json:"system"`
	Constraints []*Constraint `json:"constraints"`
}

// MarshalJSON renders the set in its stable serialized form.
func (s *Set) MarshalJSON() ([]byte, error) {
	cs := append([]*Constraint(nil), s.Constraints...)
	sort.Slice(cs, func(i, j int) bool { return cs[i].ID() < cs[j].ID() })
	return json.Marshal(setJSON{System: s.System, Constraints: cs})
}

// UnmarshalJSON rebuilds the set, including its deduplication index.
func (s *Set) UnmarshalJSON(data []byte) error {
	var sj setJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return err
	}
	*s = Set{System: sj.System, byID: make(map[string]*Constraint)}
	for _, c := range sj.Constraints {
		s.Add(c)
	}
	return nil
}

// Fingerprint returns a short stable hash of the set's identity: the
// sorted constraint IDs. Two inference runs that produce the same
// constraints (in any order) share a fingerprint, and any identity
// change — the same signal Diff keys on — changes it.
func (s *Set) Fingerprint() string {
	ids := make([]string, 0, len(s.Constraints))
	for _, c := range s.Constraints {
		ids = append(ids, c.ID())
	}
	sort.Strings(ids)
	h := sha256.New()
	for _, id := range ids {
		h.Write([]byte(id))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
