// Pool metrics: every Run feeds the process-global obs registry so
// spexd's /metrics (and the CLIs' -metrics-out dumps) expose scheduler
// behavior — queue depth, pool utilization, per-task latency, and the
// cache's replay hit ratio.
package engine

import "spex/internal/obs"

const (
	metricTasks       = "spex_engine_tasks_total"
	metricTaskSeconds = "spex_engine_task_seconds"
	metricQueueDepth  = "spex_engine_queue_depth"
	metricBusyWorkers = "spex_engine_workers_busy"
	metricCacheHits   = "spex_engine_cache_hits_total"
	metricCacheMisses = "spex_engine_cache_misses_total"
)

var (
	mTasks       = obs.Default().Counter(metricTasks, "tasks executed by the worker pool (cache replays excluded)")
	mTaskSeconds = obs.Default().Histogram(metricTaskSeconds, "wall-clock seconds per executed task", obs.DurationBuckets)
	mQueueDepth  = obs.Default().Gauge(metricQueueDepth, "tasks accepted by Run but not yet dispatched or flushed")
	mBusyWorkers = obs.Default().Gauge(metricBusyWorkers, "workers currently executing a task")
	mCacheHits   = obs.Default().Counter(metricCacheHits, "tasks replayed from the keyed result cache")
	mCacheMisses = obs.Default().Counter(metricCacheMisses, "keyed tasks that missed the cache and executed")
)
