package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestRunRecordsMetrics drives the pool hard enough that every worker
// updates the process-global registry concurrently (the -race suite
// exercises the registry's atomics), then checks the deltas. All
// assertions are >= deltas: the registry is process-global and other
// shuffled tests run engine pools too.
func TestRunRecordsMetrics(t *testing.T) {
	const n = 64
	before := struct {
		tasks, hits, misses, observed uint64
	}{mTasks.Value(), mCacheHits.Value(), mCacheMisses.Value(), mTaskSeconds.Count()}

	cache := NewCache[int]()
	var mu sync.Mutex
	elapsed := make(map[int]bool)
	run := func() {
		results, err := Run(context.Background(), n, func(ctx context.Context, i int) (int, error) {
			return i * i, nil
		}, Options[int]{
			Workers: 8,
			Cache:   cache,
			KeyOf:   func(i int) string { return fmt.Sprint(i) },
			OnResult: func(r Result[int]) {
				mu.Lock()
				if !r.Cached && r.Elapsed > 0 {
					elapsed[r.Index] = true
				}
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != n {
			t.Fatalf("got %d results", len(results))
		}
	}
	run() // all fresh: n misses, n executions
	run() // all replayed: n hits, 0 executions

	if d := mTasks.Value() - before.tasks; d < n {
		t.Errorf("executed-tasks delta = %d, want >= %d", d, n)
	}
	if d := mCacheMisses.Value() - before.misses; d < n {
		t.Errorf("cache-miss delta = %d, want >= %d", d, n)
	}
	if d := mCacheHits.Value() - before.hits; d < n {
		t.Errorf("cache-hit delta = %d, want >= %d", d, n)
	}
	if d := mTaskSeconds.Count() - before.observed; d < n {
		t.Errorf("latency observations delta = %d, want >= %d", d, n)
	}
	if got := mQueueDepth.Value(); got != 0 {
		// The queue gauge must balance to zero once no pool is running...
		// except other parallel tests may hold tasks in flight; only a
		// negative reading is unconditionally a bug.
		if got < 0 {
			t.Errorf("queue depth gauge went negative: %v", got)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(elapsed) != n {
		t.Errorf("Elapsed populated for %d/%d executed results", len(elapsed), n)
	}
}
