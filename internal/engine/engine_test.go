package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunPreservesInputOrder(t *testing.T) {
	n := 100
	rs, err := Run(context.Background(), n, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	}, Options[int]{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Index != i || r.Value != i*i || r.Err != nil {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
}

func TestRunSequentialEqualsParallel(t *testing.T) {
	fn := func(_ context.Context, i int) (string, error) {
		return fmt.Sprintf("task-%03d", i), nil
	}
	seq, err := Run(context.Background(), 50, fn, Options[string]{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), 50, fn, Options[string]{Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		// Elapsed is wall-clock noise by definition; everything else
		// must be deterministic.
		seq[i].Elapsed, par[i].Elapsed = 0, 0
		if seq[i] != par[i] {
			t.Fatalf("result %d differs: sequential %+v, parallel %+v", i, seq[i], par[i])
		}
	}
}

func TestRunBoundsParallelism(t *testing.T) {
	var cur, peak atomic.Int32
	_, err := Run(context.Background(), 64, func(_ context.Context, _ int) (struct{}, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return struct{}{}, nil
	}, Options[struct{}]{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 4 {
		t.Fatalf("observed %d concurrent tasks, worker bound is 4", p)
	}
}

func TestRunRecordsPerTaskErrors(t *testing.T) {
	boom := errors.New("boom")
	rs, err := Run(context.Background(), 10, func(_ context.Context, i int) (int, error) {
		if i%3 == 0 {
			return 0, boom
		}
		return i, nil
	}, Options[int]{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		wantErr := i%3 == 0
		if (r.Err != nil) != wantErr {
			t.Fatalf("task %d err = %v, want error: %v", i, r.Err, wantErr)
		}
	}
	if _, errIdx := Values(rs); len(errIdx) != 4 {
		t.Fatalf("Values reported %d errored tasks, want 4", len(errIdx))
	}
	if got := FirstError(rs); got != boom {
		t.Fatalf("FirstError = %v, want %v", got, boom)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	release := make(chan struct{})
	rs, err := Run(ctx, 100, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if started.Load() == 2 {
			cancel()
		}
		<-release
		return i, nil
	}, Options[int]{Workers: 2, OnResult: func(r Result[int]) {
		// Unblock in-flight tasks once cancellation has marked the rest.
		select {
		case <-release:
		default:
			if r.Err != nil {
				close(release)
			}
		}
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var ran, cancelled int
	for _, r := range rs {
		if r.Err == nil {
			ran++
		} else if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if ran == 0 || cancelled == 0 || ran+cancelled != 100 {
		t.Fatalf("ran=%d cancelled=%d, want a partial run covering all 100", ran, cancelled)
	}
}

func TestRunStreamsEveryResult(t *testing.T) {
	seen := map[int]bool{}
	_, err := Run(context.Background(), 32, func(_ context.Context, i int) (int, error) {
		return i, nil
	}, Options[int]{Workers: 5, OnResult: func(r Result[int]) {
		seen[r.Index] = true // serialized by the scheduler
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 32 {
		t.Fatalf("streamed %d results, want 32", len(seen))
	}
}

func TestCacheReplaysRecordedResults(t *testing.T) {
	cache := NewCache[int]()
	var executions atomic.Int32
	fn := func(_ context.Context, i int) (int, error) {
		executions.Add(1)
		return i * 10, nil
	}
	opts := Options[int]{
		Workers: 4,
		Cache:   cache,
		KeyOf:   func(i int) string { return fmt.Sprintf("k%d", i) },
	}
	if _, err := Run(context.Background(), 20, fn, opts); err != nil {
		t.Fatal(err)
	}
	if got := executions.Load(); got != 20 {
		t.Fatalf("first run executed %d tasks, want 20", got)
	}
	rs, err := Run(context.Background(), 20, fn, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := executions.Load(); got != 20 {
		t.Fatalf("second run executed %d extra tasks, want full replay", got-20)
	}
	for i, r := range rs {
		if !r.Cached || r.Value != i*10 {
			t.Fatalf("result %d = %+v, want cached %d", i, r, i*10)
		}
	}
	cache.Delete("k7")
	if _, err := Run(context.Background(), 20, fn, opts); err != nil {
		t.Fatal(err)
	}
	if got := executions.Load(); got != 21 {
		t.Fatalf("after eviction %d total executions, want 21", got)
	}
}

func TestRunMarksNeverStartedAsSkipped(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	rs, err := Run(ctx, 50, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			cancel()
		}
		<-release
		return i, nil
	}, Options[int]{Workers: 1, OnResult: func(r Result[int]) {
		select {
		case <-release:
		default:
			if r.Skipped {
				close(release)
			}
		}
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var ran, skipped int
	for _, r := range rs {
		switch {
		case r.Skipped:
			skipped++
			if r.Err == nil {
				t.Fatalf("skipped result %d carries no error", r.Index)
			}
		case r.Err == nil:
			ran++
		}
	}
	if ran == 0 || skipped == 0 || ran+skipped != 50 {
		t.Fatalf("ran=%d skipped=%d, want every unstarted task marked skipped", ran, skipped)
	}
}

func TestCancellationStillReplaysCachedResults(t *testing.T) {
	cache := NewCache[int]()
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			cache.Put(fmt.Sprintf("k%d", i), i*10)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before dispatch: everything goes through the flush path
	rs, err := Run(ctx, 100, func(_ context.Context, i int) (int, error) {
		t.Errorf("task %d executed after cancellation", i)
		return 0, nil
	}, Options[int]{Workers: 2, Cache: cache, KeyOf: func(i int) string { return fmt.Sprintf("k%d", i) }})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range rs {
		if i%2 == 0 {
			if !r.Cached || r.Skipped || r.Value != i*10 {
				t.Fatalf("cached task %d not replayed on cancellation: %+v", i, r)
			}
		} else if !r.Skipped {
			t.Fatalf("uncached task %d not skipped: %+v", i, r)
		}
	}
}

func TestWorkersZeroUsesDefaultPool(t *testing.T) {
	if DefaultWorkers() < 2 {
		t.Skip("needs >= 2 CPUs to observe parallelism")
	}
	// Two tasks that rendezvous with each other can only finish if the
	// zero value really maps to a multi-worker pool; a single worker
	// would run them one after the other and time out.
	meet := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), 2, func(_ context.Context, i int) (int, error) {
			select {
			case meet <- struct{}{}:
			case <-meet:
			case <-time.After(5 * time.Second):
				return 0, errors.New("rendezvous timed out: tasks did not overlap")
			}
			return i, nil
		}, Options[int]{})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run with Workers == 0 did not finish: pool is not parallel")
	}
}

func TestCacheSnapshotRoundTrip(t *testing.T) {
	cache := NewCache[string]()
	cache.Put("a", "alpha")
	cache.Put("b", "beta")
	snap := cache.Snapshot()
	if len(snap) != 2 || snap["a"] != "alpha" || snap["b"] != "beta" {
		t.Fatalf("snapshot = %v", snap)
	}
	// The snapshot is a copy: later cache mutations don't leak in.
	cache.Put("c", "gamma")
	if _, ok := snap["c"]; ok {
		t.Fatal("snapshot aliases the live cache")
	}
	restored := NewCache[string]()
	restored.Put("stale", "dropped on load")
	restored.LoadSnapshot(snap)
	if restored.Len() != 2 {
		t.Fatalf("restored cache holds %d entries, want 2", restored.Len())
	}
	if v, ok := restored.Get("a"); !ok || v != "alpha" {
		t.Fatalf("restored entry a = %q, %v", v, ok)
	}
	if _, ok := restored.Get("stale"); ok {
		t.Fatal("LoadSnapshot kept a pre-existing entry")
	}
	// And LoadSnapshot copies too.
	snap["a"] = "mutated"
	if v, _ := restored.Get("a"); v != "alpha" {
		t.Fatal("LoadSnapshot aliases the caller's map")
	}
}

func TestCacheSkipsErrorsAndEmptyKeys(t *testing.T) {
	cache := NewCache[int]()
	boom := errors.New("boom")
	var executions atomic.Int32
	fn := func(_ context.Context, i int) (int, error) {
		executions.Add(1)
		if i == 1 {
			return 0, boom
		}
		return i, nil
	}
	opts := Options[int]{
		Workers: 2,
		Cache:   cache,
		KeyOf: func(i int) string {
			if i == 0 {
				return "" // uncacheable
			}
			return fmt.Sprintf("k%d", i)
		},
	}
	for run := 0; run < 2; run++ {
		if _, err := Run(context.Background(), 3, fn, opts); err != nil {
			t.Fatal(err)
		}
	}
	// Task 0 (empty key) and task 1 (errored) execute both times; task 2
	// replays on the second run.
	if got := executions.Load(); got != 5 {
		t.Fatalf("executions = %d, want 5", got)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", cache.Len())
	}
}
