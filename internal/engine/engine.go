// Package engine is the concurrent campaign scheduler shared by the
// injection harness (internal/inject), the global cross-target
// scheduler (internal/shard), and the inference drivers
// (internal/spex, internal/report, cmd/...). It runs a fixed set of
// indexed tasks on a bounded worker pool with three guarantees the
// campaign layers rely on:
//
//   - Determinism: results come back indexed by input position, so a
//     parallel campaign reassembles into the exact report a sequential
//     run produces.
//   - Cancellation: a cancelled context stops dispatching immediately;
//     tasks already in flight finish and their results are kept, cached
//     results are still replayed, and tasks never started carry the
//     context error (marked Skipped).
//   - Incrementality: an optional keyed Cache replays previously
//     recorded results instead of re-executing the task — the basis of
//     SPEX-INJ's incremental retesting mode (paper §3.1).
package engine

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// Result is the outcome of one task.
type Result[T any] struct {
	// Index is the task's position in the input order.
	Index int
	Value T
	// Err is the task's own error, or the context error for tasks the
	// scheduler never started.
	Err error
	// Cached reports that Value was replayed from the cache.
	Cached bool
	// Elapsed is the task's wall-clock execution time. Zero for cached
	// and skipped results — replays cost nothing by construction.
	Elapsed time.Duration
	// Skipped reports that the scheduler never started the task: the run
	// was cancelled before the task was dispatched. Err carries the
	// context error. Tasks that were already in flight when the context
	// was cancelled are not Skipped — they ran, even if they returned
	// early with the context error.
	Skipped bool
}

// Options tune one Run.
type Options[T any] struct {
	// Workers bounds parallelism. The zero value picks a hardware-sized
	// pool (DefaultWorkers); negative values run sequentially through a
	// single worker, as does Workers == 1.
	Workers int
	// OnResult, if set, streams every result as it completes (completion
	// order, not input order). Calls are serialized by the scheduler, so
	// the callback needs no locking of its own.
	OnResult func(Result[T])
	// Cache, if set together with KeyOf, replays recorded results for
	// tasks whose key is present and records successful results for
	// tasks that ran.
	Cache *Cache[T]
	// KeyOf returns the cache key for task i. An empty key bypasses the
	// cache (the task always executes and is never recorded).
	KeyOf func(i int) string
}

// DefaultWorkers is the pool size used when Options.Workers is 0: one
// worker per CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Run executes n tasks through a bounded worker pool and returns their
// results in input order. fn receives the run context and the task index.
// Run returns ctx.Err() if the context was cancelled before every task
// finished; the result slice is still fully populated (unstarted tasks
// carry the context error).
func Run[T any](ctx context.Context, n int, fn func(ctx context.Context, i int) (T, error), opts Options[T]) ([]Result[T], error) {
	if opts.Workers == 0 {
		opts.Workers = DefaultWorkers()
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Workers > n {
		opts.Workers = n
	}
	results := make([]Result[T], n)
	if n == 0 {
		return results, ctx.Err()
	}
	mQueueDepth.Add(float64(n))

	var (
		emitMu sync.Mutex
		wg     sync.WaitGroup
	)
	emit := func(r Result[T]) {
		results[r.Index] = r
		if opts.OnResult != nil {
			emitMu.Lock()
			opts.OnResult(r)
			emitMu.Unlock()
		}
	}

	indices := make(chan int)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				key := ""
				if opts.Cache != nil && opts.KeyOf != nil {
					key = opts.KeyOf(i)
					if key != "" {
						if v, ok := opts.Cache.Get(key); ok {
							mCacheHits.Inc()
							emit(Result[T]{Index: i, Value: v, Cached: true})
							continue
						}
						mCacheMisses.Inc()
					}
				}
				mBusyWorkers.Add(1)
				start := time.Now()
				v, err := fn(ctx, i)
				elapsed := time.Since(start)
				mBusyWorkers.Add(-1)
				mTasks.Inc()
				mTaskSeconds.Observe(elapsed.Seconds())
				if err == nil && key != "" {
					opts.Cache.Put(key, v)
				}
				emit(Result[T]{Index: i, Value: v, Err: err, Elapsed: elapsed})
			}
		}()
	}

	// flush handles every index from from onward that was never
	// dispatched because the run was cancelled: cached results are still
	// served — a replay costs nothing, so cancellation only skips tasks
	// that would have had to execute.
	flush := func(from int) {
		for j := from; j < n; j++ {
			mQueueDepth.Add(-1)
			if opts.Cache != nil && opts.KeyOf != nil {
				if key := opts.KeyOf(j); key != "" {
					if v, ok := opts.Cache.Get(key); ok {
						mCacheHits.Inc()
						emit(Result[T]{Index: j, Value: v, Cached: true})
						continue
					}
				}
			}
			emit(Result[T]{Index: j, Err: ctx.Err(), Skipped: true})
		}
	}

dispatch:
	for i := 0; i < n; i++ {
		// Check cancellation with priority: a ready worker must not win
		// the race against an already-cancelled context.
		select {
		case <-ctx.Done():
			flush(i)
			break dispatch
		default:
		}
		select {
		case indices <- i: // the current index i was sent
			mQueueDepth.Add(-1)
		case <-ctx.Done():
			flush(i)
			break dispatch
		}
	}
	close(indices)
	wg.Wait()
	return results, ctx.Err()
}

// Values unwraps a result slice into its values, in input order. The
// second return lists the indices whose tasks errored.
func Values[T any](rs []Result[T]) ([]T, []int) {
	out := make([]T, len(rs))
	var errs []int
	for i, r := range rs {
		out[i] = r.Value
		if r.Err != nil {
			errs = append(errs, i)
		}
	}
	return out, errs
}

// FirstError returns the first error in input order, or nil.
func FirstError[T any](rs []Result[T]) error {
	for _, r := range rs {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// Cache is a concurrency-safe keyed result store. The injection layer
// keys it by misconfiguration identity (violated-constraint ID + rule +
// injected values) so that an unchanged constraint replays its recorded
// outcome across campaign runs.
type Cache[T any] struct {
	mu sync.RWMutex
	m  map[string]T
}

// NewCache returns an empty cache.
func NewCache[T any]() *Cache[T] {
	return &Cache[T]{m: make(map[string]T)}
}

// Get returns the cached value for key, if present.
func (c *Cache[T]) Get(key string) (T, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.m[key]
	return v, ok
}

// Put records a value under key, replacing any previous entry.
func (c *Cache[T]) Put(key string, v T) {
	c.mu.Lock()
	c.m[key] = v
	c.mu.Unlock()
}

// Delete removes key from the cache (used to force re-execution of
// entries an incremental delta invalidated).
func (c *Cache[T]) Delete(key string) {
	c.mu.Lock()
	delete(c.m, key)
	c.mu.Unlock()
}

// Retain drops every entry whose key is not in keep, returning the
// number of entries dropped (stale results from removed constraints).
func (c *Cache[T]) Retain(keep map[string]bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for k := range c.m {
		if !keep[k] {
			delete(c.m, k)
			dropped++
		}
	}
	return dropped
}

// Len returns the number of cached entries.
func (c *Cache[T]) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Snapshot copies the cache contents into a plain map, the export half
// of cache persistence (internal/campaignstore). The copy is taken under
// the read lock, so it is a consistent point-in-time view; concurrent
// Put calls are not reflected in it.
func (c *Cache[T]) Snapshot() map[string]T {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]T, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// LoadSnapshot replaces the cache contents with entries, the import half
// of cache persistence. The map is copied, so the caller may keep
// mutating its own copy afterwards.
func (c *Cache[T]) LoadSnapshot(entries map[string]T) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[string]T, len(entries))
	for k, v := range entries {
		c.m[k] = v
	}
}
