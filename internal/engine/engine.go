// Package engine is the concurrent campaign scheduler shared by the
// injection harness (internal/inject) and the inference drivers
// (internal/spex, internal/report, cmd/...). It runs a fixed set of
// indexed tasks on a bounded worker pool with three guarantees the
// campaign layers rely on:
//
//   - Determinism: results come back indexed by input position, so a
//     parallel campaign reassembles into the exact report a sequential
//     run produces.
//   - Cancellation: a cancelled context stops dispatching immediately;
//     tasks already in flight finish and their results are kept, tasks
//     never started carry the context error.
//   - Incrementality: an optional keyed Cache replays previously
//     recorded results instead of re-executing the task — the basis of
//     SPEX-INJ's incremental retesting mode (paper §3.1).
package engine

import (
	"context"
	"runtime"
	"sync"
)

// Result is the outcome of one task.
type Result[T any] struct {
	// Index is the task's position in the input order.
	Index int
	Value T
	// Err is the task's own error, or the context error for tasks the
	// scheduler never started.
	Err error
	// Cached reports that Value was replayed from the cache.
	Cached bool
}

// Options tune one Run.
type Options[T any] struct {
	// Workers bounds parallelism. Values <= 1 run sequentially on the
	// calling pattern (still through the pool, with one worker);
	// DefaultWorkers picks a hardware-sized pool.
	Workers int
	// OnResult, if set, streams every result as it completes (completion
	// order, not input order). Calls are serialized by the scheduler, so
	// the callback needs no locking of its own.
	OnResult func(Result[T])
	// Cache, if set together with KeyOf, replays recorded results for
	// tasks whose key is present and records successful results for
	// tasks that ran.
	Cache *Cache[T]
	// KeyOf returns the cache key for task i. An empty key bypasses the
	// cache (the task always executes and is never recorded).
	KeyOf func(i int) string
}

// DefaultWorkers is the pool size used when Options.Workers is 0 in the
// top-level drivers: one worker per CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Run executes n tasks through a bounded worker pool and returns their
// results in input order. fn receives the run context and the task index.
// Run returns ctx.Err() if the context was cancelled before every task
// finished; the result slice is still fully populated (unstarted tasks
// carry the context error).
func Run[T any](ctx context.Context, n int, fn func(ctx context.Context, i int) (T, error), opts Options[T]) ([]Result[T], error) {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Workers > n {
		opts.Workers = n
	}
	results := make([]Result[T], n)
	if n == 0 {
		return results, ctx.Err()
	}

	var (
		emitMu sync.Mutex
		wg     sync.WaitGroup
	)
	emit := func(r Result[T]) {
		results[r.Index] = r
		if opts.OnResult != nil {
			emitMu.Lock()
			opts.OnResult(r)
			emitMu.Unlock()
		}
	}

	indices := make(chan int)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				key := ""
				if opts.Cache != nil && opts.KeyOf != nil {
					key = opts.KeyOf(i)
					if key != "" {
						if v, ok := opts.Cache.Get(key); ok {
							emit(Result[T]{Index: i, Value: v, Cached: true})
							continue
						}
					}
				}
				v, err := fn(ctx, i)
				if err == nil && key != "" {
					opts.Cache.Put(key, v)
				}
				emit(Result[T]{Index: i, Value: v, Err: err})
			}
		}()
	}

dispatch:
	for i := 0; i < n; i++ {
		select {
		case indices <- i:
		case <-ctx.Done():
			// Mark everything not yet dispatched as cancelled. The
			// current index i was not sent.
			for j := i; j < n; j++ {
				emit(Result[T]{Index: j, Err: ctx.Err()})
			}
			break dispatch
		}
	}
	close(indices)
	wg.Wait()
	return results, ctx.Err()
}

// Values unwraps a result slice into its values, in input order. The
// second return lists the indices whose tasks errored.
func Values[T any](rs []Result[T]) ([]T, []int) {
	out := make([]T, len(rs))
	var errs []int
	for i, r := range rs {
		out[i] = r.Value
		if r.Err != nil {
			errs = append(errs, i)
		}
	}
	return out, errs
}

// FirstError returns the first error in input order, or nil.
func FirstError[T any](rs []Result[T]) error {
	for _, r := range rs {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// Cache is a concurrency-safe keyed result store. The injection layer
// keys it by misconfiguration identity (violated-constraint ID + rule +
// injected values) so that an unchanged constraint replays its recorded
// outcome across campaign runs.
type Cache[T any] struct {
	mu sync.RWMutex
	m  map[string]T
}

// NewCache returns an empty cache.
func NewCache[T any]() *Cache[T] {
	return &Cache[T]{m: make(map[string]T)}
}

// Get returns the cached value for key, if present.
func (c *Cache[T]) Get(key string) (T, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.m[key]
	return v, ok
}

// Put records a value under key, replacing any previous entry.
func (c *Cache[T]) Put(key string, v T) {
	c.mu.Lock()
	c.m[key] = v
	c.mu.Unlock()
}

// Delete removes key from the cache (used to force re-execution of
// entries an incremental delta invalidated).
func (c *Cache[T]) Delete(key string) {
	c.mu.Lock()
	delete(c.m, key)
	c.mu.Unlock()
}

// Retain drops every entry whose key is not in keep, returning the
// number of entries dropped (stale results from removed constraints).
func (c *Cache[T]) Retain(keep map[string]bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for k := range c.m {
		if !keep[k] {
			delete(c.m, k)
			dropped++
		}
	}
	return dropped
}

// Len returns the number of cached entries.
func (c *Cache[T]) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
