// Package vfs provides a small in-memory file system used as the execution
// substrate for the simulated target systems. The paper's SPEX-INJ runs real
// servers on a real OS; our targets run hermetically, so file-path semantic
// constraints (FILE must exist, DIR must be a directory, permission checks)
// are exercised against this virtual file system instead.
package vfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// Common error values, mirroring the os package semantics the targets rely
// on.
var (
	ErrNotExist   = errors.New("vfs: file does not exist")
	ErrExist      = errors.New("vfs: file already exists")
	ErrIsDir      = errors.New("vfs: is a directory")
	ErrNotDir     = errors.New("vfs: not a directory")
	ErrPermission = errors.New("vfs: permission denied")
)

// Mode is a simplified permission mask (owner bits only).
type Mode uint32

const (
	ModeRead  Mode = 0o4
	ModeWrite Mode = 0o2
	ModeExec  Mode = 0o1
)

type node struct {
	dir      bool
	data     []byte
	mode     Mode
	children map[string]*node
}

// FS is an in-memory hierarchical file system. It is safe for concurrent
// use.
type FS struct {
	mu   sync.RWMutex
	root *node
}

// New returns an empty file system containing only the root directory.
func New() *FS {
	return &FS{root: &node{dir: true, mode: ModeRead | ModeWrite | ModeExec, children: map[string]*node{}}}
}

func clean(p string) []string {
	p = path.Clean("/" + strings.TrimSpace(p))
	if p == "/" {
		return nil
	}
	return strings.Split(strings.TrimPrefix(p, "/"), "/")
}

// lookup walks to the node for p. Caller holds at least a read lock.
func (fs *FS) lookup(p string) (*node, error) {
	n := fs.root
	for _, part := range clean(p) {
		if !n.dir {
			return nil, ErrNotDir
		}
		c, ok := n.children[part]
		if !ok {
			return nil, ErrNotExist
		}
		n = c
	}
	return n, nil
}

// MkdirAll creates a directory and all missing parents.
func (fs *FS) MkdirAll(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := fs.root
	for _, part := range clean(p) {
		if !n.dir {
			return ErrNotDir
		}
		c, ok := n.children[part]
		if !ok {
			c = &node{dir: true, mode: ModeRead | ModeWrite | ModeExec, children: map[string]*node{}}
			n.children[part] = c
		}
		n = c
	}
	if !n.dir {
		return ErrNotDir
	}
	return nil
}

// WriteFile creates or replaces a regular file, creating parents as needed.
func (fs *FS) WriteFile(p string, data []byte, mode Mode) error {
	dir := path.Dir("/" + strings.TrimSpace(p))
	if err := fs.MkdirAll(dir); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, err := fs.lookup(dir)
	if err != nil {
		return err
	}
	name := path.Base(path.Clean("/" + strings.TrimSpace(p)))
	if c, ok := parent.children[name]; ok && c.dir {
		return ErrIsDir
	}
	parent.children[name] = &node{data: append([]byte(nil), data...), mode: mode}
	return nil
}

// ReadFile returns the contents of a regular file, enforcing read
// permission.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(p)
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", p, err)
	}
	if n.dir {
		return nil, fmt.Errorf("read %s: %w", p, ErrIsDir)
	}
	if n.mode&ModeRead == 0 {
		return nil, fmt.Errorf("read %s: %w", p, ErrPermission)
	}
	return append([]byte(nil), n.data...), nil
}

// Append appends data to an existing file, enforcing write permission.
func (fs *FS) Append(p string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(p)
	if err != nil {
		return fmt.Errorf("append %s: %w", p, err)
	}
	if n.dir {
		return fmt.Errorf("append %s: %w", p, ErrIsDir)
	}
	if n.mode&ModeWrite == 0 {
		return fmt.Errorf("append %s: %w", p, ErrPermission)
	}
	n.data = append(n.data, data...)
	return nil
}

// Stat describes a file.
type Stat struct {
	IsDir bool
	Size  int
	Mode  Mode
}

// Stat returns metadata for p.
func (fs *FS) Stat(p string) (Stat, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(p)
	if err != nil {
		return Stat{}, fmt.Errorf("stat %s: %w", p, err)
	}
	return Stat{IsDir: n.dir, Size: len(n.data), Mode: n.mode}, nil
}

// Exists reports whether p exists.
func (fs *FS) Exists(p string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, err := fs.lookup(p)
	return err == nil
}

// IsDir reports whether p exists and is a directory.
func (fs *FS) IsDir(p string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(p)
	return err == nil && n.dir
}

// Chmod changes the permission bits of p.
func (fs *FS) Chmod(p string, mode Mode) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(p)
	if err != nil {
		return fmt.Errorf("chmod %s: %w", p, err)
	}
	n.mode = mode
	return nil
}

// Remove deletes a file or empty directory.
func (fs *FS) Remove(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parts := clean(p)
	if len(parts) == 0 {
		return ErrPermission
	}
	dir := "/" + strings.Join(parts[:len(parts)-1], "/")
	parent, err := fs.lookup(dir)
	if err != nil {
		return fmt.Errorf("remove %s: %w", p, err)
	}
	name := parts[len(parts)-1]
	n, ok := parent.children[name]
	if !ok {
		return fmt.Errorf("remove %s: %w", p, ErrNotExist)
	}
	if n.dir && len(n.children) > 0 {
		return fmt.Errorf("remove %s: directory not empty", p)
	}
	delete(parent.children, name)
	return nil
}

// List returns the sorted names of entries in directory p.
func (fs *FS) List(p string) ([]string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(p)
	if err != nil {
		return nil, fmt.Errorf("list %s: %w", p, err)
	}
	if !n.dir {
		return nil, fmt.Errorf("list %s: %w", p, ErrNotDir)
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}
