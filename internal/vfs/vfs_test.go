package vfs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/a/b/c.txt", []byte("hello"), ModeRead|ModeWrite); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/a/b/c.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Errorf("read %q", data)
	}
	// Parents were created.
	if !fs.IsDir("/a") || !fs.IsDir("/a/b") {
		t.Error("parents not created")
	}
}

func TestReadMissing(t *testing.T) {
	fs := New()
	_, err := fs.ReadFile("/nope")
	if !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v, want ErrNotExist", err)
	}
}

func TestReadDirectoryFails(t *testing.T) {
	fs := New()
	_ = fs.MkdirAll("/d")
	if _, err := fs.ReadFile("/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("err = %v, want ErrIsDir", err)
	}
}

func TestPermissionDenied(t *testing.T) {
	fs := New()
	_ = fs.WriteFile("/secret", []byte("x"), 0)
	if _, err := fs.ReadFile("/secret"); !errors.Is(err, ErrPermission) {
		t.Errorf("read err = %v, want ErrPermission", err)
	}
	if err := fs.Append("/secret", []byte("y")); !errors.Is(err, ErrPermission) {
		t.Errorf("append err = %v, want ErrPermission", err)
	}
	if err := fs.Chmod("/secret", ModeRead); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/secret"); err != nil {
		t.Errorf("read after chmod: %v", err)
	}
}

func TestAppend(t *testing.T) {
	fs := New()
	_ = fs.WriteFile("/log", []byte("a"), ModeRead|ModeWrite)
	if err := fs.Append("/log", []byte("b")); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile("/log")
	if string(data) != "ab" {
		t.Errorf("appended = %q", data)
	}
	if err := fs.Append("/missing", []byte("x")); !errors.Is(err, ErrNotExist) {
		t.Errorf("append to missing = %v", err)
	}
}

func TestStatAndExists(t *testing.T) {
	fs := New()
	_ = fs.WriteFile("/f", []byte("abc"), ModeRead)
	st, err := fs.Stat("/f")
	if err != nil || st.IsDir || st.Size != 3 {
		t.Errorf("stat = %+v, %v", st, err)
	}
	if !fs.Exists("/f") || fs.Exists("/g") {
		t.Error("Exists wrong")
	}
	if fs.IsDir("/f") {
		t.Error("file reported as dir")
	}
}

func TestRemove(t *testing.T) {
	fs := New()
	_ = fs.WriteFile("/d/f", nil, ModeRead)
	if err := fs.Remove("/d"); err == nil {
		t.Error("removing a non-empty directory must fail")
	}
	if err := fs.Remove("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); err != nil {
		t.Fatalf("removing now-empty dir: %v", err)
	}
	if fs.Exists("/d") {
		t.Error("dir still exists")
	}
}

func TestList(t *testing.T) {
	fs := New()
	_ = fs.WriteFile("/d/b", nil, ModeRead)
	_ = fs.WriteFile("/d/a", nil, ModeRead)
	_ = fs.MkdirAll("/d/c")
	names, err := fs.List("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Errorf("List = %v", names)
	}
	if _, err := fs.List("/d/a"); !errors.Is(err, ErrNotDir) {
		t.Errorf("List(file) = %v, want ErrNotDir", err)
	}
	if _, err := fs.List("/zz"); !errors.Is(err, ErrNotExist) {
		t.Errorf("List(missing) = %v", err)
	}
}

func TestPathCleaning(t *testing.T) {
	fs := New()
	_ = fs.WriteFile("//x//y.txt", []byte("v"), ModeRead)
	if _, err := fs.ReadFile("/x/y.txt"); err != nil {
		t.Errorf("cleaned path not equivalent: %v", err)
	}
	if _, err := fs.ReadFile("/x/../x/y.txt"); err != nil {
		t.Errorf("dot-dot path not equivalent: %v", err)
	}
}

func TestWriteOverDirectoryFails(t *testing.T) {
	fs := New()
	_ = fs.MkdirAll("/d")
	if err := fs.WriteFile("/d", []byte("x"), ModeRead); !errors.Is(err, ErrIsDir) {
		t.Errorf("err = %v, want ErrIsDir", err)
	}
}

// Property: after writing any set of files, each one reads back with its
// own content (last write wins on collisions).
func TestPropertyWriteReadAll(t *testing.T) {
	f := func(names [6]uint8, bodies [6]uint16) bool {
		fs := New()
		want := map[string]string{}
		for i := range names {
			p := fmt.Sprintf("/dir%d/f%d", names[i]%3, names[i])
			body := fmt.Sprintf("%d", bodies[i])
			if err := fs.WriteFile(p, []byte(body), ModeRead|ModeWrite); err != nil {
				return false
			}
			want[p] = body
		}
		for p, body := range want {
			got, err := fs.ReadFile(p)
			if err != nil || string(got) != body {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			p := fmt.Sprintf("/c/%d", n)
			_ = fs.WriteFile(p, []byte("x"), ModeRead|ModeWrite)
			_, _ = fs.ReadFile(p)
			_ = fs.Append(p, []byte("y"))
			fs.Exists(p)
		}(i)
	}
	wg.Wait()
	names, err := fs.List("/c")
	if err != nil || len(names) != 16 {
		t.Errorf("List = %v (%v)", names, err)
	}
}
