// Package report regenerates every table and figure of the paper's
// evaluation (§4) from the simulated targets: inference, injection
// campaigns, design audits, and the historical-case study. Each renderer
// prints measured values next to the paper's published numbers; absolute
// counts differ (our corpora are condensed) but the shape — which systems
// lead which categories, which categories dominate — is the reproduction
// target.
package report

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"spex/internal/campaignstore"
	"spex/internal/casedb"
	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/designcheck"
	"spex/internal/engine"
	"spex/internal/inject"
	"spex/internal/shard"
	"spex/internal/sim"
	"spex/internal/spex"
	"spex/internal/targets"
	"spex/internal/targets/minicorpus"
)

// SystemResult bundles everything measured for one target.
type SystemResult struct {
	Sys       sim.System
	Inference *spex.Result
	Campaign  *inject.Report
	Audit     *designcheck.Audit
	Accuracy  map[constraint.Kind]spex.Accuracy
	// StateErr records a non-fatal persistent-store failure: the
	// campaign completed and the tables are valid, but its snapshot
	// could not be saved (AnalyzeOptions.StateDir). Drivers should
	// surface it as a warning.
	StateErr error
}

// Progress is one streamed analysis event: system completed its full
// pipeline (Stage is currently always "campaigned") as the done-th of
// total systems.
type Progress struct {
	System string
	Stage  string
	Done   int
	Total  int
}

// AnalyzeOptions tune AnalyzeAll's scheduling.
type AnalyzeOptions struct {
	// Workers bounds how many systems are analyzed at once (0 = one per
	// CPU).
	Workers int
	// CampaignWorkers bounds intra-campaign parallelism per system.
	// Zero and one both run campaigns sequentially — the systems already
	// fan out Workers wide, so the zero value deliberately does not
	// compound to a per-CPU pool per system.
	CampaignWorkers int
	// OnProgress, if set, streams per-system analysis events. Calls are
	// serialized by the scheduler.
	OnProgress func(Progress)
	// OnCampaignProgress, if set, streams every completed campaign
	// outcome (Global and Shard modes only — the per-system mode has no
	// global scheduler to observe). This is the hook `spexeval
	// -progress -global` feeds into the shared progress pipeline
	// (shard.Hub → internal/progressui), giving it the same per-system
	// bar display as spexinj. Calls are serialized by the scheduler.
	OnCampaignProgress func(shard.Progress)
	// State, when set, persists each system's campaign snapshot through
	// this held writer lock (internal/campaignstore): campaigns replay
	// recorded outcomes across spexeval runs and re-execute only the
	// misconfigurations the constraint delta selects. Missing, corrupt
	// or schema-stale snapshots fall back to a full campaign and are
	// rebuilt. The caller acquires (and later releases) the locks — a
	// whole-directory lock's Set for the CLIs, or per-system locks for
	// the daemon's scheduler. The set is the write capability, so an
	// unlocked analysis cannot save snapshots by construction.
	State *campaignstore.LockSet
	// Global schedules the campaigns on one cross-target pool
	// (internal/shard) instead of one pool per system: inference fans
	// out Workers wide, then every system's misconfigurations
	// interleave round-robin on a single Workers-wide pool, so no
	// target's serialized boot phase starves the pool and small targets
	// draining early do not idle workers. The rendered tables are
	// identical either way — only utilization changes. CampaignWorkers
	// is ignored in this mode (there is one pool, not one per system).
	Global bool
	// Shard, when enabled, restricts the campaign phase to the plan's
	// partition of each system's misconfigurations — the distributed
	// table pipeline: every `spexeval -shard i/N -state <dir>` process
	// campaigns one partition and persists per-shard snapshots, then
	// spexmerge folds the shard directories and a plain
	// `spexeval -state <merged>` replays the whole campaign at zero
	// fresh cost, rendering tables byte-identical to an unsharded
	// run's. Requires State (a shard's outcomes ARE its snapshots)
	// and implies Global. Sharded results cover partial campaigns, so
	// drivers should not render tables from them directly.
	Shard shard.Plan
}

func analyze(ctx context.Context, sys sim.System, aopts AnalyzeOptions) (*SystemResult, error) {
	res, err := spex.InferSystem(sys)
	if err != nil {
		return nil, fmt.Errorf("report: %s: %w", sys.Name(), err)
	}
	tmpl, err := conffile.Parse(sys.DefaultConfig(), sys.Syntax())
	if err != nil {
		return nil, fmt.Errorf("report: %s: %w", sys.Name(), err)
	}
	ms := confgen.NewRegistry().Generate(res.Set, tmpl)
	opts := inject.DefaultOptions()
	opts.Workers = aopts.CampaignWorkers
	if opts.Workers == 0 {
		opts.Workers = 1 // see AnalyzeOptions.CampaignWorkers
	}
	var rep *inject.Report
	var stateErr error
	if aopts.State != nil {
		var slock *campaignstore.SystemLock
		slock, err = aopts.State.System(sys.Name())
		if err != nil {
			return nil, err
		}
		rep, _, err = campaignstore.Campaign(ctx, slock, sys, res.Set, ms, opts)
		if err != nil {
			// A completed campaign whose snapshot failed to save is
			// still a full analysis — the tables matter more than the
			// store. Record the failure instead of discarding the data.
			if rep == nil || ctx.Err() != nil {
				return nil, fmt.Errorf("report: %s: %w", sys.Name(), err)
			}
			stateErr = err
		}
	} else {
		rep, err = inject.RunContext(ctx, sys, ms, opts)
		if err != nil {
			return nil, fmt.Errorf("report: %s: %w", sys.Name(), err)
		}
	}
	return &SystemResult{
		Sys:       sys,
		Inference: res,
		Campaign:  rep,
		Audit:     designcheck.Run(res),
		Accuracy:  spex.Score(res.Set, sys.GroundTruth()),
		StateErr:  stateErr,
	}, nil
}

// AnalyzeAllContext runs the pipeline over all seven targets through the
// engine scheduler: systems fan out opts.Workers wide, each campaign
// runs opts.CampaignWorkers wide, and results come back in the paper's
// Table 4/5 order regardless of completion order. With opts.Global the
// per-system campaign pools are replaced by one cross-target pool
// (internal/shard); the results are identical.
func AnalyzeAllContext(ctx context.Context, opts AnalyzeOptions) ([]*SystemResult, error) {
	systems := targets.All()
	if opts.Shard.Enabled() {
		if opts.State == nil {
			return nil, fmt.Errorf("report: a sharded analysis needs a locked state store (its outcomes are its snapshots)")
		}
		return analyzeAllGlobal(ctx, systems, opts)
	}
	if opts.Global {
		return analyzeAllGlobal(ctx, systems, opts)
	}
	total := len(systems)
	eopts := engine.Options[*SystemResult]{Workers: opts.Workers}
	if opts.OnProgress != nil {
		done := 0
		eopts.OnResult = func(r engine.Result[*SystemResult]) {
			done++
			name := systems[r.Index].Name()
			opts.OnProgress(Progress{System: name, Stage: "campaigned", Done: done, Total: total})
		}
	}
	results, cancelErr := engine.Run(ctx, total, func(ctx context.Context, i int) (*SystemResult, error) {
		return analyze(ctx, systems[i], opts)
	}, eopts)
	if cancelErr != nil {
		return nil, cancelErr
	}
	if err := engine.FirstError(results); err != nil {
		return nil, err
	}
	out, _ := engine.Values(results)
	return out, nil
}

// analyzeAllGlobal is AnalyzeAllContext's cross-target scheduling mode
// (and, under opts.Shard, its distributed mode): inference fans out on
// the engine pool, one global campaign pool interleaves every system's
// misconfigurations (internal/shard, shard-filtered under an enabled
// plan), and the audits fold in sequentially (they cost microseconds).
// OnProgress still emits one "campaigned" event per system, fired when
// the system's last outcome completes on the global pool.
func analyzeAllGlobal(ctx context.Context, systems []sim.System, opts AnalyzeOptions) ([]*SystemResult, error) {
	rs, err := spex.InferAll(ctx, systems, opts.Workers)
	if err != nil {
		return nil, err
	}
	ws, _, err := shard.BuildWorkloads(systems, rs, opts.Shard)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	gopts := shard.Options{Workers: opts.Workers, Inject: inject.DefaultOptions()}
	if opts.OnProgress != nil {
		// A system whose shard partition is empty emits no outcome
		// events, so the completion target is the number of systems
		// with actual work — otherwise a sharded -progress run would
		// end at 6/7 and read as stalled.
		withWork := 0
		for _, w := range ws {
			if len(w.Ms) > 0 {
				withWork++
			}
		}
		campaigned := 0
		gopts.OnProgress = func(p shard.Progress) {
			if p.SystemDone == p.SystemTotal {
				campaigned++
				opts.OnProgress(Progress{System: p.System, Stage: "campaigned",
					Done: campaigned, Total: withWork})
			}
		}
	}
	if opts.OnCampaignProgress != nil {
		prev := gopts.OnProgress
		gopts.OnProgress = func(p shard.Progress) {
			if prev != nil {
				prev(p)
			}
			opts.OnCampaignProgress(p)
		}
	}
	runs, runErr := shard.CampaignAll(ctx, opts.State, ws, gopts)
	if runErr != nil {
		return nil, runErr
	}
	out := make([]*SystemResult, len(systems))
	for i, run := range runs {
		out[i] = &SystemResult{
			Sys:       systems[i],
			Inference: rs[i],
			Campaign:  run.Report,
			Audit:     designcheck.Run(rs[i]),
			Accuracy:  spex.Score(rs[i].Set, systems[i].GroundTruth()),
			StateErr:  run.Err,
		}
	}
	return out, nil
}

// Table is one rendered evaluation table in structured form — the
// machine-readable encoding path shared by the text renderers (String,
// byte-identical to what spexeval has always printed) and the
// daemon's JSON API (/v1/tables). Fields marshal 1:1, so a table
// round-trips through encoding/json without loss.
type Table struct {
	// Title is the heading, e.g. "Table 5: misconfiguration
	// vulnerabilities exposed (measured | paper)".
	Title string `json:"title"`
	// Cols are the column headers.
	Cols []string `json:"columns"`
	// Rows are the data cells, row-major, already formatted.
	Rows [][]string `json:"rows"`
	// Notes are the trailing "note:" lines.
	Notes []string `json:"notes,omitempty"`
}

func (t *Table) add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text — the exact bytes spexeval
// prints; the golden tests in encode_test.go hold the two paths
// together.
func (t *Table) String() string {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// cachedSurvey memoizes the minicorpus survey for the process: the
// corpus is static and the extraction deterministic, so the first
// Table 1 build pays for the 11-project parse/extract fan-out and
// every later build (spexeval's full render, each /v1/tables/1
// request on the daemon) reuses it.
var surveyOnce struct {
	sync.Once
	rows []minicorpus.SurveyResult
	err  error
}

func cachedSurvey() ([]minicorpus.SurveyResult, error) {
	surveyOnce.Do(func() {
		// The memoized value outlives any one caller, so no caller's
		// context may scope the survey (a cancelled first request would
		// poison the cache for the process).
		//spexlint:ignore ctxflow process-wide memo must not inherit a caller's cancellation
		surveyOnce.rows, surveyOnce.err = minicorpus.Survey(context.Background(), 0)
	})
	return surveyOnce.rows, surveyOnce.err
}

// Table1 renders the 18-project mapping-convention survey. The seven
// simulated targets report the convention their inference measured; the
// 11 minicorpus snippets are parsed and extracted through the sharded
// survey (minicorpus.Survey fans frontend.Parse/mapping.Extract out on
// the engine pool and folds the rows back in project order), so every
// rendered convention is measured, not transcribed.
func buildTable1(results []*SystemResult) *Table {
	t := &Table{
		Title: "Table 1: parameter-to-variable mapping in 18 software projects",
		Cols:  []string{"Software", "Description", "Convention"},
	}
	for _, r := range results {
		t.add(r.Sys.Name(), r.Sys.Description(), r.Inference.Convention)
	}
	survey, err := cachedSurvey()
	if err != nil {
		t.Notes = append(t.Notes, fmt.Sprintf("minicorpus survey failed: %v", err))
	}
	for _, s := range survey {
		t.add(s.Project.Name, s.Project.Description, s.Convention)
		if s.Convention != s.Project.WantConvention {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: measured convention %q differs from the paper's %q",
				s.Project.Name, s.Convention, s.Project.WantConvention))
		}
	}
	t.Notes = append(t.Notes,
		"paper: every project uses structure, comparison, or container mapping (or a hybrid)")
	return t
}

// Table2 renders the misconfiguration generation rules.
func buildTable2() *Table {
	t := &Table{
		Title: "Table 2: SPEX-INJ generation rules per constraint kind",
		Cols:  []string{"Constraint", "Rules (plug-ins)"},
	}
	names := confgen.NewRegistry().RuleNames()
	kinds := []constraint.Kind{
		constraint.KindBasicType, constraint.KindSemanticType,
		constraint.KindRange, constraint.KindControlDep, constraint.KindValueRel,
	}
	for _, k := range kinds {
		t.add(k.String(), strings.Join(names[k], ", "))
	}
	return t
}

// Table3 renders the reaction taxonomy with observed counts across all
// campaigns.
func buildTable3(results []*SystemResult) *Table {
	t := &Table{
		Title: "Table 3: categories of bad system reactions (observed across all campaigns)",
		Cols:  []string{"Reaction", "Vulnerability", "Observed"},
	}
	total := map[inject.Reaction]int{}
	for _, r := range results {
		if r.Campaign == nil {
			continue
		}
		for k, v := range r.Campaign.CountByReaction() {
			total[k] += v
		}
	}
	order := []inject.Reaction{
		inject.ReactionCrash, inject.ReactionEarlyTerm, inject.ReactionFuncFailure,
		inject.ReactionSilentViolation, inject.ReactionSilentIgnorance,
		inject.ReactionGood, inject.ReactionTolerated,
	}
	for _, k := range order {
		t.add(k.String(), fmt.Sprintf("%v", k.Vulnerability()), fmt.Sprintf("%d", total[k]))
	}
	return t
}

// Table4 renders the evaluated systems: LoC, parameters, annotations.
func buildTable4(results []*SystemResult) *Table {
	t := &Table{
		Title: "Table 4: evaluated software systems",
		Cols:  []string{"Software", "LoC", "#Parameter", "LoA", "paper #Param", "paper LoA"},
	}
	paper := map[string][2]string{
		"Storage-A": {"(confidential)", "5"},
		"httpd":     {"103", "4"},
		"mydb":      {"272", "29"},
		"pgdb":      {"231", "7"},
		"ldapd":     {"86", "4"},
		"ftpd":      {"124", "5"},
		"proxyd":    {"335", "2"},
	}
	for _, r := range results {
		p := paper[r.Sys.Name()]
		t.add(r.Sys.Name(),
			fmt.Sprintf("%d", r.Inference.LoC),
			fmt.Sprintf("%d", r.Inference.Params),
			fmt.Sprintf("%d", r.Inference.LoA),
			p[0], p[1])
	}
	t.Notes = append(t.Notes, "corpora are condensed; annotation effort stays a handful of lines per system, as in the paper")
	return t
}

// paperTable5 holds the paper's Table 5a rows (exposed counts).
var paperTable5 = map[string][5]int{
	"Storage-A": {0, 0, 7, 74, 83},
	"httpd":     {5, 4, 9, 29, 5},
	"mydb":      {5, 10, 12, 71, 16},
	"pgdb":      {1, 10, 2, 1, 35},
	"ldapd":     {1, 3, 6, 7, 0},
	"ftpd":      {12, 5, 18, 23, 68},
	"proxyd":    {2, 3, 29, 173, 14},
}

// Table5 renders exposed vulnerabilities per category plus unique source
// locations.
func buildTable5(results []*SystemResult) *Table {
	t := &Table{
		Title: "Table 5: misconfiguration vulnerabilities exposed (measured | paper)",
		Cols: []string{"Software", "Crash/Hang", "EarlyTerm", "FuncFail",
			"SilentViol", "SilentIgnor", "Total", "UniqueLocs"},
	}
	var tot [5]int
	var totAll, totLocs int
	for _, r := range results {
		if r.Campaign == nil {
			continue
		}
		c := r.Campaign.CountByReaction()
		p := paperTable5[r.Sys.Name()]
		cells := []string{r.Sys.Name()}
		vals := []int{
			c[inject.ReactionCrash], c[inject.ReactionEarlyTerm],
			c[inject.ReactionFuncFailure], c[inject.ReactionSilentViolation],
			c[inject.ReactionSilentIgnorance],
		}
		sum := 0
		for i, v := range vals {
			cells = append(cells, fmt.Sprintf("%d | %d", v, p[i]))
			tot[i] += v
			sum += v
		}
		totAll += sum
		totLocs += r.Campaign.UniqueLocations()
		cells = append(cells, fmt.Sprintf("%d", sum), fmt.Sprintf("%d", r.Campaign.UniqueLocations()))
		t.add(cells...)
	}
	t.add("Total",
		fmt.Sprintf("%d | 26", tot[0]), fmt.Sprintf("%d | 35", tot[1]),
		fmt.Sprintf("%d | 83", tot[2]), fmt.Sprintf("%d | 378", tot[3]),
		fmt.Sprintf("%d | 221", tot[4]), fmt.Sprintf("%d | 743", totAll),
		fmt.Sprintf("%d | 448", totLocs))
	t.Notes = append(t.Notes,
		"shape check: silent violation dominates; Storage-A has no crashes/terminations; ftpd leads crashes; proxyd leads silent violations")
	return t
}

// Table6 renders the case-sensitivity split.
func buildTable6(results []*SystemResult) *Table {
	t := &Table{
		Title: "Table 6: case-sensitivity of configuration parameter values",
		Cols:  []string{"Software", "Sensitive", "Insensitive", "paper (sens/insens)"},
	}
	paper := map[string]string{
		"Storage-A": "32/453", "httpd": "3/26", "mydb": "1/58", "pgdb": "0/92",
		"ldapd": "0/9", "ftpd": "0/73", "proxyd": "85/76",
	}
	for _, r := range results {
		t.add(r.Sys.Name(),
			fmt.Sprintf("%d", r.Audit.CaseSensitive),
			fmt.Sprintf("%d", r.Audit.CaseInsensitive),
			paper[r.Sys.Name()])
	}
	return t
}

// Table7 renders size/time unit distributions.
func buildTable7(results []*SystemResult) *Table {
	t := &Table{
		Title: "Table 7: units of size- and time-related parameters",
		Cols:  []string{"Software", "B", "KB", "MB", "GB", "us", "ms", "s", "m", "h"},
	}
	for _, r := range results {
		su, tu := r.Audit.SizeUnits, r.Audit.TimeUnits
		t.add(r.Sys.Name(),
			fmt.Sprintf("%d", su[constraint.UnitByte]),
			fmt.Sprintf("%d", su[constraint.UnitKB]),
			fmt.Sprintf("%d", su[constraint.UnitMB]),
			fmt.Sprintf("%d", su[constraint.UnitGB]),
			fmt.Sprintf("%d", tu[constraint.UnitMicrosecond]),
			fmt.Sprintf("%d", tu[constraint.UnitMillisecond]),
			fmt.Sprintf("%d", tu[constraint.UnitSecond]),
			fmt.Sprintf("%d", tu[constraint.UnitMinute]),
			fmt.Sprintf("%d", tu[constraint.UnitHour]))
	}
	t.Notes = append(t.Notes, "paper shape: more than half of the systems mix units within a class (Storage-A mixes four size units)")
	return t
}

// Table8 renders the remaining error-prone design detectors.
func buildTable8(results []*SystemResult) *Table {
	t := &Table{
		Title: "Table 8: other error-prone configuration design and handling",
		Cols:  []string{"Software", "SilentOverruling", "UnsafeTransform", "UndocRange", "UndocDep", "UndocRel"},
	}
	for _, r := range results {
		t.add(r.Sys.Name(),
			fmt.Sprintf("%d", r.Audit.SilentOverruling),
			fmt.Sprintf("%d", r.Audit.UnsafeTransform),
			fmt.Sprintf("%d", r.Audit.UndocRange),
			fmt.Sprintf("%d", r.Audit.UndocDep),
			fmt.Sprintf("%d", r.Audit.UndocRel))
	}
	t.Notes = append(t.Notes,
		"paper shape: proxyd (Squid) leads overruling+unsafe APIs; mydb (MySQL)/pgdb use safe parsing; ftpd (VSFTP) has many undocumented dependencies")
	return t
}

// Tables9and10 renders the historical-case study.
func buildTables9and10(results []*SystemResult) (*Table, *Table) {
	byName := map[string]*SystemResult{}
	for _, r := range results {
		byName[r.Sys.Name()] = r
	}
	t9 := &Table{
		Title: "Table 9: real-world misconfiguration cases potentially avoided",
		Cols:  []string{"Software", "Cases", "Avoidable", "Pct", "paper"},
	}
	t10 := &Table{
		Title: "Table 10: breakdown of cases that cannot benefit",
		Cols:  []string{"Software", "Single-SW", "Cross-SW", "Conform", "GoodReactions"},
	}
	paper9 := map[string]string{
		"Storage-A": "68/246 (27.6%)", "httpd": "19/50 (38.0%)",
		"mydb": "14/47 (29.8%)", "ldapd": "12/49 (24.5%)",
	}
	for _, spec := range casedb.PaperSpecs() {
		r := byName[spec.System]
		if r == nil {
			continue
		}
		cases := casedb.Generate(spec, r.Inference.Set)
		study := casedb.Run(spec.System, cases, r.Inference.Set)
		t9.add(spec.System,
			fmt.Sprintf("%d", study.Total()),
			fmt.Sprintf("%d", study.Count(casedb.CategoryAvoidable)),
			fmt.Sprintf("%.1f%%", study.Pct(casedb.CategoryAvoidable)),
			paper9[spec.System])
		t10.add(spec.System,
			fmt.Sprintf("%d (%.1f%%)", study.Count(casedb.CategorySingleSW), study.Pct(casedb.CategorySingleSW)),
			fmt.Sprintf("%d (%.1f%%)", study.Count(casedb.CategoryCrossSW), study.Pct(casedb.CategoryCrossSW)),
			fmt.Sprintf("%d (%.1f%%)", study.Count(casedb.CategoryConform), study.Pct(casedb.CategoryConform)),
			fmt.Sprintf("%d (%.1f%%)", study.Count(casedb.CategoryGoodReaction), study.Pct(casedb.CategoryGoodReaction)))
	}
	t9.Notes = append(t9.Notes, "paper band: 24%-38% of sampled historic cases avoidable")
	return t9, t10
}

// Table11 renders inferred constraints per kind.
func buildTable11(results []*SystemResult) *Table {
	t := &Table{
		Title: "Table 11: configuration constraints inferred by SPEX",
		Cols:  []string{"Software", "Basic", "Semantic", "Range", "CtrlDep", "ValueRel", "Total"},
	}
	paper := map[string][5]int{
		"Storage-A": {922, 111, 490, 81, 20},
		"httpd":     {103, 22, 42, 1, 9},
		"mydb":      {272, 74, 213, 35, 10},
		"pgdb":      {231, 52, 186, 44, 6},
		"ldapd":     {75, 15, 20, 0, 2},
		"ftpd":      {130, 34, 84, 68, 1},
		"proxyd":    {258, 46, 120, 14, 9},
	}
	var tot [5]int
	grand := 0
	for _, r := range results {
		c := r.Inference.Set.CountByKind()
		p := paper[r.Sys.Name()]
		vals := []int{
			c[constraint.KindBasicType], c[constraint.KindSemanticType],
			c[constraint.KindRange], c[constraint.KindControlDep], c[constraint.KindValueRel],
		}
		cells := []string{r.Sys.Name()}
		sum := 0
		for i, v := range vals {
			cells = append(cells, fmt.Sprintf("%d | %d", v, p[i]))
			tot[i] += v
			sum += v
		}
		grand += sum
		cells = append(cells, fmt.Sprintf("%d", sum))
		t.add(cells...)
	}
	t.add("Total",
		fmt.Sprintf("%d | 1991", tot[0]), fmt.Sprintf("%d | 354", tot[1]),
		fmt.Sprintf("%d | 1155", tot[2]), fmt.Sprintf("%d | 243", tot[3]),
		fmt.Sprintf("%d | 57", tot[4]), fmt.Sprintf("%d | 3800", grand))
	t.Notes = append(t.Notes, "shape: basic types cover every parameter; semantic types are fewer; ftpd leads control dependencies relative to size")
	return t
}

// Table12 renders inference accuracy against ground truth.
func buildTable12(results []*SystemResult) *Table {
	t := &Table{
		Title: "Table 12: accuracy of constraint inference (measured, paper)",
		Cols:  []string{"Software", "Basic", "Semantic", "Range", "CtrlDep", "ValueRel"},
	}
	paper := map[string][5]string{
		"Storage-A": {"97.0%", "95.7%", "87.1%", "84.1%", "94.1%"},
		"httpd":     {"96.1%", "91.7%", "94.6%", "100.0%", "81.8%"},
		"mydb":      {"100.0%", "98.7%", "99.1%", "94.7%", "71.4%"},
		"pgdb":      {"100.0%", "96.3%", "97.3%", "91.7%", "85.7%"},
		"ldapd":     {"88.2%", "93.7%", "73.1%", "N/A", "50.0%"},
		"ftpd":      {"100.0%", "100.0%", "100.0%", "63.9%", "100.0%"},
		"proxyd":    {"77.0%", "100.0%", "100.0%", "77.8%", "100.0%"},
	}
	kinds := []constraint.Kind{
		constraint.KindBasicType, constraint.KindSemanticType,
		constraint.KindRange, constraint.KindControlDep, constraint.KindValueRel,
	}
	for _, r := range results {
		cells := []string{r.Sys.Name()}
		p := paper[r.Sys.Name()]
		for i, k := range kinds {
			a := r.Accuracy[k]
			if a.Total == 0 {
				cells = append(cells, "N/A, "+p[i])
				continue
			}
			cells = append(cells, fmt.Sprintf("%.1f%%, %s", 100*a.Ratio(), p[i]))
		}
		t.add(cells...)
	}
	t.Notes = append(t.Notes,
		"shape: accuracy above 90% for most systems; ldapd lowest on ranges (pointer aliasing through the shared ConfigArgs scratch)")
	return t
}

// ConstraintDump lists every inferred constraint of one system.
func ConstraintDump(r *SystemResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== constraints inferred for %s (%d) ===\n", r.Sys.Name(), r.Inference.Set.Len())
	lines := make([]string, 0, r.Inference.Set.Len())
	for _, c := range r.Inference.Set.Constraints {
		lines = append(lines, fmt.Sprintf("  [%s] %s", c.Kind, c))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// Table1 renders the mapping-convention survey as text.
func Table1(results []*SystemResult) string { return buildTable1(results).String() }

// Table2 renders the generation rules as text.
func Table2() string { return buildTable2().String() }

// Table3 renders the reaction taxonomy as text.
func Table3(results []*SystemResult) string { return buildTable3(results).String() }

// Table4 renders the evaluated systems as text.
func Table4(results []*SystemResult) string { return buildTable4(results).String() }

// Table5 renders the exposed vulnerabilities as text.
func Table5(results []*SystemResult) string { return buildTable5(results).String() }

// Table6 renders the case-sensitivity split as text.
func Table6(results []*SystemResult) string { return buildTable6(results).String() }

// Table7 renders the unit distributions as text.
func Table7(results []*SystemResult) string { return buildTable7(results).String() }

// Table8 renders the design detectors as text.
func Table8(results []*SystemResult) string { return buildTable8(results).String() }

// Tables9and10 renders the historical-case study (two tables) as text.
func Tables9and10(results []*SystemResult) string {
	t9, t10 := buildTables9and10(results)
	return t9.String() + "\n" + t10.String()
}

// Table11 renders the inferred-constraint counts as text.
func Table11(results []*SystemResult) string { return buildTable11(results).String() }

// Table12 renders the inference accuracy as text.
func Table12(results []*SystemResult) string { return buildTable12(results).String() }
