package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"spex/internal/conffile"
	"spex/internal/constraint"
	"spex/internal/sim"
	"spex/internal/targets"
)

// scenario injects specific values into one target and reports the
// observed reaction, reproducing a figure's case study.
type scenario struct {
	Caption string
	System  string
	Values  map[string]string
}

func runScenario(sc scenario) (string, error) {
	sys := targets.ByName(sc.System)
	if sys == nil {
		return "", fmt.Errorf("unknown system %q", sc.System)
	}
	env := sim.NewEnv()
	sys.SetupEnv(env)
	cfg, err := conffile.Parse(sys.DefaultConfig(), sys.Syntax())
	if err != nil {
		return "", err
	}
	// Walk the injected values in sorted order so the rendered figure is
	// deterministic across runs.
	params := make([]string, 0, len(sc.Values))
	for p := range sc.Values {
		params = append(params, p)
	}
	sort.Strings(params)
	var kv []string
	var anyParam string
	for _, p := range params {
		v := sc.Values[p]
		cfg.Set(p, v)
		kv = append(kv, fmt.Sprintf("%s = %s", p, v))
		anyParam = p
	}
	out := sim.MonitorStart(sys, env, cfg, 250*time.Millisecond)
	var b strings.Builder
	fmt.Fprintf(&b, "--- %s ---\n", sc.Caption)
	fmt.Fprintf(&b, "inject : %s\n", strings.Join(kv, ", "))
	switch out.Kind {
	case sim.StartCrash:
		fmt.Fprintf(&b, "result : CRASH (%v)\n", out.PanicVal)
	case sim.StartHang:
		b.WriteString("result : HANG (startup never completed)\n")
	case sim.StartExit:
		fmt.Fprintf(&b, "result : terminated, status %d\n", out.Exit.Status)
	case sim.StartOK:
		inst := out.Instance
		failed := ""
		for _, t := range sys.Tests() {
			if err := sim.RunTest(t, env, inst); err != nil {
				failed = fmt.Sprintf("%s (%v)", t.Name, err)
				break
			}
		}
		if failed != "" {
			fmt.Fprintf(&b, "result : functional failure in test %s\n", failed)
		} else if eff, ok := inst.Effective(anyParam); ok && eff != sc.Values[anyParam] {
			fmt.Fprintf(&b, "result : silently changed: %s -> %q\n", anyParam, eff)
		} else {
			b.WriteString("result : server runs; setting silently retained/ignored\n")
		}
		inst.Stop()
	}
	if dump := env.Log.Dump(); dump != "" {
		b.WriteString("logs   :\n")
		for _, line := range strings.Split(strings.TrimRight(dump, "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	} else {
		b.WriteString("logs   : (none)\n")
	}
	return b.String(), nil
}

// Figure1 reproduces the commercial initiator-name case: uppercase letters
// make the storage share unrecognizable with no message.
func Figure1() (string, error) {
	return runScenario(scenario{
		Caption: "Figure 1: Storage-A initiator name with capital letters",
		System:  "Storage-A",
		Values:  map[string]string{"iscsi.initiator_name": "iqn.2013-01.com.example:TARGET"},
	})
}

// Figure2 reproduces the OpenLDAP listener-threads crash.
func Figure2() (string, error) {
	return runScenario(scenario{
		Caption: "Figure 2: ldapd listener-threads = 32 (hard-coded max is 16)",
		System:  "ldapd",
		Values:  map[string]string{"listener-threads": "32"},
	})
}

// Figure3 shows one inferred constraint per kind, matching the paper's six
// examples.
func Figure3(results []*SystemResult) string {
	byName := map[string]*SystemResult{}
	for _, r := range results {
		byName[r.Sys.Name()] = r
	}
	pick := func(system, param string, kind constraint.Kind) string {
		r := byName[system]
		if r == nil {
			return fmt.Sprintf("  (%s not analyzed)", system)
		}
		for _, c := range r.Inference.Set.ByParam(param) {
			if c.Kind == kind {
				return fmt.Sprintf("  %-9s %s   [from %s]", system+":", c, c.Loc)
			}
		}
		return fmt.Sprintf("  %s: constraint for %q not found", system, param)
	}
	var b strings.Builder
	b.WriteString("=== Figure 3: constraint-inference examples ===\n")
	b.WriteString("(a) basic type (string transformed to int32):\n")
	b.WriteString(pick("Storage-A", "log.filesize", constraint.KindBasicType) + "\n")
	b.WriteString("(b) semantic type FILE:\n")
	b.WriteString(pick("mydb", "ft_stopword_file", constraint.KindSemanticType) + "\n")
	b.WriteString("(c) semantic type PORT:\n")
	b.WriteString(pick("proxyd", "icp_port", constraint.KindSemanticType) + "\n")
	b.WriteString("(d) data range (silently clamped):\n")
	b.WriteString(pick("ldapd", "index_intlen", constraint.KindRange) + "\n")
	b.WriteString("(e) control dependency:\n")
	b.WriteString(pick("pgdb", "commit_siblings", constraint.KindControlDep) + "\n")
	b.WriteString("(f) value relationship:\n")
	b.WriteString(pick("mydb", "ft_max_word_len", constraint.KindValueRel) + "\n")
	return b.String()
}

// Figure4 shows the annotation conventions.
func Figure4() string {
	var b strings.Builder
	b.WriteString("=== Figure 4: mapping conventions and annotations ===\n")
	for _, name := range []string{"pgdb", "httpd", "proxyd", "ldapd"} {
		sys := targets.ByName(name)
		fmt.Fprintf(&b, "--- %s (%s) ---\n%s\n", name, sys.Description(), sys.Annotations())
	}
	return b.String()
}

// Figure5 reproduces the injection examples, one per generation rule.
func Figure5() (string, error) {
	scs := []scenario{
		{Caption: "Figure 5(a): basic-type violation — overflowing log.filesize",
			System: "Storage-A", Values: map[string]string{"log.filesize": "9000000000"}},
		{Caption: "Figure 5(b): semantic-type violation (FILE) — stopword file is a directory",
			System: "mydb", Values: map[string]string{"ft_stopword_file": "/var/lib/mydb"}},
		{Caption: "Figure 5(c): semantic-type violation (PORT) — ICP port out of range",
			System: "proxyd", Values: map[string]string{"icp_port": "70000"}},
		{Caption: "Figure 5(d): data-range violation — index_intlen = 300",
			System: "ldapd", Values: map[string]string{"index_intlen": "300"}},
		{Caption: "Figure 5(e): control-dependency violation — fsync=off with commit_siblings set",
			System: "pgdb", Values: map[string]string{"fsync": "off", "commit_siblings": "5"}},
		{Caption: "Figure 5(f): value-relationship violation — ft_min 25 > ft_max 10",
			System: "mydb", Values: map[string]string{"ft_min_word_len": "25", "ft_max_word_len": "10"}},
	}
	var b strings.Builder
	b.WriteString("=== Figure 5: misconfiguration injection examples ===\n")
	for _, sc := range scs {
		s, err := runScenario(sc)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
	}
	return b.String(), nil
}

// Figure6 shows the error-prone design examples found by the audit.
func Figure6(results []*SystemResult) string {
	var b strings.Builder
	b.WriteString("=== Figure 6: error-prone configuration design examples ===\n")
	find := func(system, param, kind string) string {
		for _, r := range results {
			if r.Sys.Name() != system || r.Audit == nil {
				continue
			}
			for _, f := range r.Audit.Findings {
				if string(f.Kind) == kind && (param == "" || f.Param == param) {
					return fmt.Sprintf("  %s: %s", system, f.Message)
				}
			}
		}
		return fmt.Sprintf("  %s: finding %s/%s not present", system, kind, param)
	}
	b.WriteString("(a) case-sensitivity inconsistency:\n")
	b.WriteString(find("mydb", "innodb_file_format_check", "case-inconsistency") + "\n")
	b.WriteString("(b) unit inconsistency:\n")
	b.WriteString(find("httpd", "MaxMemFree", "unit-inconsistency") + "\n")
	b.WriteString("(c) silent overruling:\n")
	b.WriteString(find("proxyd", "", "silent-overruling") + "\n")
	b.WriteString("(d) unsafe parsing API:\n")
	b.WriteString(find("proxyd", "", "unsafe-api") + "\n")
	return b.String()
}

// Figure7 reproduces the five vulnerability-category examples.
func Figure7() (string, error) {
	scs := []scenario{
		{Caption: "Figure 7(a): crash — performance schema history size 0 then negative allocation",
			System: "mydb", Values: map[string]string{"performance_schema_events_waits_history_size": "-4096"}},
		{Caption: "Figure 7(b): early termination with misleading message — ThreadLimit = 100000",
			System: "httpd", Values: map[string]string{"ThreadLimit": "100000"}},
		{Caption: "Figure 7(c): functional failure without pinpointing — sockbuf_max_incoming 1",
			System: "ldapd", Values: map[string]string{"sockbuf_max_incoming": "1"}},
		{Caption: "Figure 7(d): silent violation — pcs.size = 512MB (unit suffix ignored)",
			System: "Storage-A", Values: map[string]string{"pcs.size": "512MB"}},
		{Caption: "Figure 7(e): silent ignorance — virtual_use_local_privs with one_process_mode",
			System: "ftpd", Values: map[string]string{"virtual_use_local_privs": "yes", "one_process_mode": "yes"}},
	}
	var b strings.Builder
	b.WriteString("=== Figure 7: vulnerability examples by category ===\n")
	for _, sc := range scs {
		s, err := runScenario(sc)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
	}
	return b.String(), nil
}
