package report

import (
	"context"
	"errors"
	"fmt"

	"spex/internal/campaignstore"
	"spex/internal/designcheck"
	"spex/internal/engine"
	"spex/internal/inject"
	"spex/internal/shard"
	"spex/internal/spex"
	"spex/internal/targets"
)

// ErrStateIncomplete reports that a state directory cannot serve a
// full read-only analysis: a system has no snapshot, the snapshot was
// recorded under different outcome-affecting options, it covers a
// different constraint set than this build infers, or it is missing
// outcomes (e.g. a campaign cancelled mid-run). The fix is always the
// same — run (or finish) a campaign against the store.
var ErrStateIncomplete = errors.New("report: campaign state incomplete")

// ReplayFromStore builds the full seven-system analysis purely from
// persisted campaign snapshots, without executing a single
// misconfiguration and without writing anything: inference is
// recomputed (it is deterministic and cheap), every campaign outcome
// replays from the store, and the audits and accuracy scores derive
// from the fresh inference. The resulting tables are byte-identical to
// a `spexeval -state <dir>` run over the same store, because both
// reassemble replayed outcomes through inject.Assemble.
//
// This is the daemon's table-serving path (internal/server): the
// daemon holds the store's writer lock for its jobs, but serving reads
// needs no lock at all — snapshot loads are atomic documents, so a
// reader sees the last completed save even while a job is running.
// Callers that need "the tables of this exact job" should check the
// per-system snapshot fingerprints they recorded at job completion.
func ReplayFromStore(ctx context.Context, store *campaignstore.Store) ([]*SystemResult, error) {
	systems := targets.All()
	rs, err := spex.InferAll(ctx, systems, 0)
	if err != nil {
		return nil, err
	}
	ws, _, err := shard.BuildWorkloads(systems, rs, shard.Plan{})
	if err != nil {
		return nil, err
	}
	wantOpts := campaignstore.OptionsID(inject.DefaultOptions())
	out := make([]*SystemResult, len(systems))
	for i, w := range ws {
		name := w.Sys.Name()
		snap, err := store.Load(name)
		if err != nil {
			if errors.Is(err, campaignstore.ErrNotExist) {
				return nil, fmt.Errorf("%w: no snapshot for %s (submit a campaign job first)", ErrStateIncomplete, name)
			}
			return nil, err
		}
		if snap.Options != wantOpts {
			return nil, fmt.Errorf("%w: %s snapshot was recorded under options %q, this build renders %q",
				ErrStateIncomplete, name, snap.Options, wantOpts)
		}
		if snap.SetFingerprint != w.Set.Fingerprint() {
			return nil, fmt.Errorf("%w: %s snapshot covers a different constraint set than this build infers (stale state; rerun the campaign)",
				ErrStateIncomplete, name)
		}
		results := make([]engine.Result[inject.Outcome], len(w.Ms))
		missing := 0
		for j, m := range w.Ms {
			o, ok := snap.Outcomes[inject.CacheKey(m)]
			if !ok {
				missing++
				continue
			}
			results[j] = engine.Result[inject.Outcome]{Index: j, Value: o, Cached: true}
		}
		if missing > 0 {
			return nil, fmt.Errorf("%w: %s snapshot is missing %d of %d outcomes (campaign cancelled mid-run? rerun it to completion)",
				ErrStateIncomplete, name, missing, len(w.Ms))
		}
		out[i] = &SystemResult{
			Sys:       w.Sys,
			Inference: rs[i],
			Campaign:  inject.Assemble(name, w.Ms, results, nil),
			Audit:     designcheck.Run(rs[i]),
			Accuracy:  spex.Score(rs[i].Set, systems[i].GroundTruth()),
		}
	}
	return out, nil
}
