package report

import (
	"context"
	"errors"
	"fmt"

	"spex/internal/campaignstore"
	"spex/internal/constraint"
	"spex/internal/designcheck"
	"spex/internal/inject"
	"spex/internal/outcomeindex"
	"spex/internal/shard"
	"spex/internal/spex"
	"spex/internal/targets"
)

// ReplayFromIndex builds the full analysis from the store's outcome
// indexes instead of its snapshots — the daemon's table-serving fast
// path. Inference, audits and accuracy are recomputed exactly as
// ReplayFromStore does (they never touch the store); the campaign side
// is reconstructed from each system's index docs, which carry the
// complete projection the tables consume (reaction, error status, and
// the violated constraint's source location — the inputs of
// Report.CountByReaction and Report.UniqueLocations). The rendered
// tables are therefore byte-identical to ReplayFromStore's and to
// `spexeval -state`, without parsing a single outcome record: on a warm
// sidecar the store read is one JSON index per system, and the
// snapshots stay untouched.
//
// Validation mirrors ReplayFromStore: the index must cover this build's
// options identity, the constraint set the fresh inference produced,
// and every misconfiguration's replay key — anything less is
// ErrStateIncomplete, never a silently partial table.
func ReplayFromIndex(ctx context.Context, store *campaignstore.Store) ([]*SystemResult, error) {
	systems := targets.All()
	rs, err := spex.InferAll(ctx, systems, 0)
	if err != nil {
		return nil, err
	}
	ws, _, err := shard.BuildWorkloads(systems, rs, shard.Plan{})
	if err != nil {
		return nil, err
	}
	wantOpts := campaignstore.OptionsID(inject.DefaultOptions())
	out := make([]*SystemResult, len(systems))
	for i, w := range ws {
		name := w.Sys.Name()
		idx, err := store.LoadIndex(name)
		if err != nil {
			if errors.Is(err, campaignstore.ErrNotExist) {
				return nil, fmt.Errorf("%w: no snapshot for %s (submit a campaign job first)", ErrStateIncomplete, name)
			}
			return nil, err
		}
		if idx.Options != wantOpts {
			return nil, fmt.Errorf("%w: %s snapshot was recorded under options %q, this build renders %q",
				ErrStateIncomplete, name, idx.Options, wantOpts)
		}
		if idx.SetFingerprint != w.Set.Fingerprint() {
			return nil, fmt.Errorf("%w: %s snapshot covers a different constraint set than this build infers (stale state; rerun the campaign)",
				ErrStateIncomplete, name)
		}
		missing := 0
		for _, m := range w.Ms {
			if !idx.Has(inject.CacheKey(m)) {
				missing++
			}
		}
		if missing > 0 {
			return nil, fmt.Errorf("%w: %s snapshot is missing %d of %d outcomes (campaign cancelled mid-run? rerun it to completion)",
				ErrStateIncomplete, name, missing, len(w.Ms))
		}
		out[i] = &SystemResult{
			Sys:       w.Sys,
			Inference: rs[i],
			Campaign:  campaignFromIndex(idx),
			Audit:     designcheck.Run(rs[i]),
			Accuracy:  spex.Score(rs[i].Set, systems[i].GroundTruth()),
		}
	}
	return out, nil
}

// campaignFromIndex reconstitutes a replayed campaign report from index
// docs. The docs are a projection, not the full outcomes — but they
// carry every field the table builders consume, so the tallies
// (CountByReaction, UniqueLocations, Vulnerabilities) are identical to
// a snapshot replay's. Replay accounting matches inject.Assemble on an
// all-cached result set: every doc counts as replayed, and its sim cost
// lands on ReplayedSimCost.
func campaignFromIndex(idx *outcomeindex.System) *inject.Report {
	rep := &inject.Report{
		System:   idx.System,
		Outcomes: make([]inject.Outcome, len(idx.Docs)),
		Replayed: len(idx.Docs),
	}
	for i := range idx.Docs {
		d := &idx.Docs[i]
		rep.Outcomes[i] = inject.Outcome{
			Reaction:   inject.Reaction(d.Reaction),
			Pinpointed: d.Pinpointed,
			FailedTest: d.FailedTest,
			Loc:        constraint.SourceLoc{File: d.File, Line: d.Line, Func: d.Func},
			SimCost:    d.SimCost,
			Err:        d.Err,
		}
		rep.Outcomes[i].Misconf.ID = d.ID
		rep.Outcomes[i].Misconf.Param = d.Param
		rep.Outcomes[i].Misconf.Rule = d.Rule
		rep.Outcomes[i].Misconf.Description = d.Description
		rep.ReplayedSimCost += d.SimCost
	}
	return rep
}
