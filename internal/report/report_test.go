package report

import (
	"context"
	"strings"
	"testing"

	"spex/internal/campaignstore"
	"spex/internal/shard"
)

// lockedState opens dir as a campaign store and holds its writer lock
// for the remainder of the test — the handle AnalyzeOptions.State needs.
func lockedState(t *testing.T, dir string) *campaignstore.LockSet {
	t.Helper()
	store, err := campaignstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	lk, err := store.Lock()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := lk.Unlock(); err != nil {
			t.Error(err)
		}
	})
	return lk.Set()
}

// analyzeAllOnce caches the expensive full analysis across tests.
var cachedResults []*SystemResult

func allResults(t *testing.T) []*SystemResult {
	t.Helper()
	if cachedResults == nil {
		rs, err := AnalyzeAllContext(context.Background(), AnalyzeOptions{})
		if err != nil {
			t.Fatalf("AnalyzeAllContext: %v", err)
		}
		cachedResults = rs
	}
	return cachedResults
}

func TestAllTablesRender(t *testing.T) {
	rs := allResults(t)
	tables := map[string]string{
		"Table 1":  Table1(rs),
		"Table 2":  Table2(),
		"Table 3":  Table3(rs),
		"Table 4":  Table4(rs),
		"Table 5":  Table5(rs),
		"Table 6":  Table6(rs),
		"Table 7":  Table7(rs),
		"Table 8":  Table8(rs),
		"Table 9":  Tables9and10(rs),
		"Table 11": Table11(rs),
		"Table 12": Table12(rs),
	}
	for name, text := range tables {
		if !strings.Contains(text, "===") || len(text) < 80 {
			t.Errorf("%s rendered suspiciously small:\n%s", name, text)
		}
	}
	// Every system appears in Table 5.
	t5 := tables["Table 5"]
	for _, sys := range []string{"Storage-A", "httpd", "mydb", "pgdb", "ldapd", "ftpd", "proxyd"} {
		if !strings.Contains(t5, sys) {
			t.Errorf("Table 5 is missing system %s", sys)
		}
	}
}

func TestFiguresRender(t *testing.T) {
	rs := allResults(t)
	f1, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f1, "functional failure") {
		t.Errorf("Figure 1 should show a functional failure (share not recognized):\n%s", f1)
	}
	f2, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f2, "CRASH") {
		t.Errorf("Figure 2 should show a crash:\n%s", f2)
	}
	f3 := Figure3(rs)
	for _, want := range []string{"int32", "FILE", "PORT", "fsync", "ft_min_word_len"} {
		if !strings.Contains(f3, want) {
			t.Errorf("Figure 3 missing %q:\n%s", want, f3)
		}
	}
	f5, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f5, "Figure 5(f)") {
		t.Errorf("Figure 5 incomplete:\n%s", f5)
	}
	f7, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CRASH", "scoreboard", "silently changed"} {
		if !strings.Contains(f7, want) {
			t.Errorf("Figure 7 missing %q:\n%s", want, f7)
		}
	}
}

func TestTable5ShapeHolds(t *testing.T) {
	rs := allResults(t)
	text := Table5(rs)
	// The totals row must show silent violation as the dominant
	// vulnerability category, as in the paper.
	if !strings.Contains(text, "Total") {
		t.Fatalf("no totals row:\n%s", text)
	}
	var totals map[string]int = map[string]int{}
	for _, r := range rs {
		for k, v := range r.Campaign.CountByReaction() {
			totals[k.String()] += v
		}
	}
	sv := totals["silent violation"]
	for _, other := range []string{"crash/hang", "early termination", "functional failure"} {
		if sv <= totals[other] {
			t.Errorf("silent violation (%d) should dominate %s (%d)", sv, other, totals[other])
		}
	}
}

func TestConstraintDump(t *testing.T) {
	rs := allResults(t)
	dump := ConstraintDump(rs[0])
	if !strings.Contains(dump, "constraints inferred for") {
		t.Errorf("malformed dump header:\n%.200s", dump)
	}
	if strings.Count(dump, "\n") < 20 {
		t.Errorf("dump suspiciously short:\n%s", dump)
	}
}

func TestTable11TotalsConsistent(t *testing.T) {
	rs := allResults(t)
	text := Table11(rs)
	if !strings.Contains(text, "| 3800") {
		t.Errorf("Table 11 must carry the paper's 3800 total:\n%s", text)
	}
	// Every system's basic-type count equals its parameter count.
	for _, r := range rs {
		c := r.Inference.Set.CountByKind()
		if c[0] != r.Inference.Params { // KindBasicType == 0
			t.Errorf("%s: basic types %d != params %d", r.Sys.Name(), c[0], r.Inference.Params)
		}
	}
}

// TestShardedAnalysisMergesIdentical: the distributed table pipeline —
// every system campaigned as two spexeval shards, merged, then
// replayed — must render Table 5 (the campaign-derived table) byte-
// identical to the unsharded analysis, and the merged replay must
// execute nothing fresh.
func TestShardedAnalysisMergesIdentical(t *testing.T) {
	rs := allResults(t)
	want := Table5(rs)
	ctx := context.Background()

	var dirs []string
	for i := 1; i <= 2; i++ {
		dir := t.TempDir()
		_, err := AnalyzeAllContext(ctx, AnalyzeOptions{
			Workers: 4, State: lockedState(t, dir), Shard: shard.Plan{Shard: i, Of: 2},
		})
		if err != nil {
			t.Fatalf("shard %d/2: %v", i, err)
		}
		dirs = append(dirs, dir)
	}
	merged := t.TempDir()
	mstore, err := campaignstore.Open(merged)
	if err != nil {
		t.Fatal(err)
	}
	mlock, err := mstore.Lock()
	if err != nil {
		t.Fatal(err)
	}
	_, mergeErr := shard.Merge(mlock.Set(), dirs)
	if err := mlock.Unlock(); err != nil {
		t.Fatal(err)
	}
	if mergeErr != nil {
		t.Fatal(mergeErr)
	}
	got, err := AnalyzeAllContext(ctx, AnalyzeOptions{Workers: 4, State: lockedState(t, merged)})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.Campaign.Replayed != len(r.Campaign.Outcomes) {
			t.Errorf("%s: merged replay executed fresh work (replayed %d of %d)",
				r.Sys.Name(), r.Campaign.Replayed, len(r.Campaign.Outcomes))
		}
	}
	if table := Table5(got); table != want {
		t.Errorf("Table 5 from the merged store differs from the unsharded render:\n--- unsharded ---\n%s\n--- merged ---\n%s", want, table)
	}
}

// TestShardedAnalysisRequiresState: a shard's only output is its
// snapshots, so refusing to run without a locked store is the API
// contract.
func TestShardedAnalysisRequiresState(t *testing.T) {
	_, err := AnalyzeAllContext(context.Background(), AnalyzeOptions{Shard: shard.Plan{Shard: 1, Of: 2}})
	if err == nil || !strings.Contains(err.Error(), "state store") {
		t.Errorf("sharded analysis without State = %v, want a locked-state error", err)
	}
}
