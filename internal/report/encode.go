package report

import (
	"fmt"
	"strings"
)

// MaxTable is the highest table number of the paper's evaluation.
const MaxTable = 12

// BuildTables builds table n (1-12) in structured form. Most numbers
// yield one Table; 9 and 10 are rendered together (the historical-case
// study splits across two tables sharing one computation), so both
// return the pair — exactly the grouping spexeval prints. The returned
// tables are freshly built; callers may mutate them.
func BuildTables(n int, results []*SystemResult) ([]*Table, error) {
	switch n {
	case 1:
		return []*Table{buildTable1(results)}, nil
	case 2:
		return []*Table{buildTable2()}, nil
	case 3:
		return []*Table{buildTable3(results)}, nil
	case 4:
		return []*Table{buildTable4(results)}, nil
	case 5:
		return []*Table{buildTable5(results)}, nil
	case 6:
		return []*Table{buildTable6(results)}, nil
	case 7:
		return []*Table{buildTable7(results)}, nil
	case 8:
		return []*Table{buildTable8(results)}, nil
	case 9, 10:
		t9, t10 := buildTables9and10(results)
		return []*Table{t9, t10}, nil
	case 11:
		return []*Table{buildTable11(results)}, nil
	case 12:
		return []*Table{buildTable12(results)}, nil
	default:
		return nil, fmt.Errorf("report: no table %d", n)
	}
}

// RenderTableText renders table n exactly as cmd/spexeval prints it —
// one code path for the CLI and the daemon's text endpoint, held
// byte-identical by the golden tests in encode_test.go.
func RenderTableText(n int, results []*SystemResult) (string, error) {
	ts, err := BuildTables(n, results)
	if err != nil {
		return "", err
	}
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, "\n"), nil
}
