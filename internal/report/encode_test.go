package report

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"spex/internal/campaignstore"
)

// TestRenderTableTextMatchesLegacyRenderers is the golden half of the
// machine-readable encoding path: the structured builders must render
// text byte-identical to the public string renderers spexeval has
// always printed (which are now thin wrappers, so this guards against
// the two paths drifting apart again).
func TestRenderTableTextMatchesLegacyRenderers(t *testing.T) {
	rs := allResults(t)
	legacy := map[int]string{
		1:  Table1(rs),
		2:  Table2(),
		3:  Table3(rs),
		4:  Table4(rs),
		5:  Table5(rs),
		6:  Table6(rs),
		7:  Table7(rs),
		8:  Table8(rs),
		9:  Tables9and10(rs),
		10: Tables9and10(rs),
		11: Table11(rs),
		12: Table12(rs),
	}
	for n := 1; n <= MaxTable; n++ {
		got, err := RenderTableText(n, rs)
		if err != nil {
			t.Fatalf("RenderTableText(%d): %v", n, err)
		}
		if got != legacy[n] {
			t.Errorf("table %d: structured rendering differs from the legacy text", n)
		}
	}
	if _, err := RenderTableText(13, rs); err == nil {
		t.Error("RenderTableText(13) succeeded, want an error")
	}
}

// TestTableJSONRoundTrips: the HTTP API's JSON encoding must be
// lossless — unmarshalling a marshalled table yields an equal value
// whose text rendering is unchanged.
func TestTableJSONRoundTrips(t *testing.T) {
	rs := allResults(t)
	for n := 1; n <= MaxTable; n++ {
		tables, err := BuildTables(n, rs)
		if err != nil {
			t.Fatal(err)
		}
		for _, tab := range tables {
			data, err := json.Marshal(tab)
			if err != nil {
				t.Fatalf("table %d: %v", n, err)
			}
			var back Table
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatalf("table %d: %v", n, err)
			}
			if !reflect.DeepEqual(*tab, back) {
				t.Errorf("table %d (%q) does not round-trip through JSON", n, tab.Title)
			}
			if back.String() != tab.String() {
				t.Errorf("table %d (%q): text rendering changed across the JSON round-trip", n, tab.Title)
			}
			data2, err := json.Marshal(&back)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != string(data2) {
				t.Errorf("table %d (%q): re-marshalled JSON differs", n, tab.Title)
			}
		}
	}
}

// TestReplayFromStoreMatchesLiveAnalysis: tables served read-only from
// a persisted store must be byte-identical to the live run that built
// it — the daemon's table-serving contract.
func TestReplayFromStoreMatchesLiveAnalysis(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	live, err := AnalyzeAllContext(ctx, AnalyzeOptions{Workers: 4, Global: true, State: lockedState(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	store, err := campaignstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := ReplayFromStore(ctx, store)
	if err != nil {
		t.Fatal(err)
	}
	// Campaign-derived tables are the ones that could diverge.
	for _, n := range []int{3, 5, 11, 12} {
		a, err := RenderTableText(n, live)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RenderTableText(n, replayed)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("table %d: replayed-from-store rendering differs from the live run's", n)
		}
	}
}

// TestReplayFromStoreRejectsIncompleteState: an empty state directory
// must fail with ErrStateIncomplete (the daemon maps it to 409), never
// serve partial tables.
func TestReplayFromStoreRejectsIncompleteState(t *testing.T) {
	store, err := campaignstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayFromStore(context.Background(), store); !errors.Is(err, ErrStateIncomplete) {
		t.Fatalf("err = %v, want ErrStateIncomplete", err)
	}
}

// TestReplayFromIndexMatchesStoreReplay: the index-backed read path
// must render every table byte-identically to both the snapshot replay
// and the live run — the daemon serves tables from indexes alone.
func TestReplayFromIndexMatchesStoreReplay(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	live, err := AnalyzeAllContext(ctx, AnalyzeOptions{Workers: 4, Global: true, State: lockedState(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	store, err := campaignstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := ReplayFromIndex(ctx, store)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= MaxTable; n++ {
		if n == 10 {
			continue // rendered together with table 9
		}
		a, err := RenderTableText(n, live)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RenderTableText(n, indexed)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("table %d: index-backed rendering differs from the live run's", n)
		}
	}
	// The campaign-consuming figures too.
	if a, b := Figure3(live), Figure3(indexed); a != b {
		t.Error("figure 3: index-backed rendering differs")
	}
	if a, b := Figure6(live), Figure6(indexed); a != b {
		t.Error("figure 6: index-backed rendering differs")
	}

	// An empty store still refuses partial service.
	empty, err := campaignstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayFromIndex(ctx, empty); !errors.Is(err, ErrStateIncomplete) {
		t.Fatalf("err = %v, want ErrStateIncomplete", err)
	}
}
