// Package apispec is SPEX's knowledge base of known APIs (paper §2.2.2).
// Semantic-type constraints are inferred when a parameter's data flow
// reaches a known function: its argument positions carry semantic types
// (FILE, PORT, TIMEOUT, ...), measurement units, and case-sensitivity
// semantics. The base contains the standard-library analogues used by the
// simulated targets; targets may import their own library APIs, mirroring
// the paper's customization hook for Storage-A's proprietary APIs.
package apispec

import (
	"strings"

	"spex/internal/constraint"
)

// ArgSpec describes one argument position of a known function.
type ArgSpec struct {
	Index    int
	Semantic constraint.SemanticType
	Unit     constraint.Unit
}

// FuncSpec describes one known function or method.
type FuncSpec struct {
	// Name matches the resolved call name. Three forms are accepted:
	//   "pkg.Func"      package-level function (e.g. "strconv.Atoi")
	//   "Recv.Method"   method, matched on the final two selector parts
	//                   (e.g. "FS.ReadFile" matches env.FS.ReadFile)
	//   "func"          package-local helper (e.g. "atoi")
	Name string
	Args []ArgSpec
	// RetBasic is the basic type produced by the call (e.g. strconv.Atoi
	// produces an integer), used by basic-type inference on
	// transformation APIs.
	RetBasic constraint.BasicType
	// Unsafe marks error-prone transformation APIs in configuration
	// parsing (atoi/sscanf analogues, paper §3.2 "Unsafe APIs").
	Unsafe bool
	// CaseInsensitive marks string-comparison functions with
	// case-insensitive semantics (strcasecmp analogue). Functions with
	// Compare=true and CaseInsensitive=false are case sensitive.
	Compare         bool
	CaseInsensitive bool
}

// ArgAt returns the spec for argument index i, if any.
func (f *FuncSpec) ArgAt(i int) (ArgSpec, bool) {
	for _, a := range f.Args {
		if a.Index == i {
			return a, true
		}
	}
	return ArgSpec{}, false
}

// DB is a registry of known functions.
type DB struct {
	funcs map[string]*FuncSpec
}

// New returns a DB preloaded with the standard knowledge base.
func New() *DB {
	db := &DB{funcs: make(map[string]*FuncSpec)}
	for i := range builtins {
		db.Register(&builtins[i])
	}
	return db
}

// NewEmpty returns a DB with no entries (used in tests).
func NewEmpty() *DB { return &DB{funcs: make(map[string]*FuncSpec)} }

// Register adds or replaces a function spec. This is the "import your own
// library APIs" hook the paper provides for proprietary code.
func (db *DB) Register(f *FuncSpec) { db.funcs[f.Name] = f }

// Len returns the number of registered specs.
func (db *DB) Len() int { return len(db.funcs) }

// Lookup resolves a call name to a spec. For dotted names the full name is
// tried first, then the "Recv.Method" suffix, then the bare method name.
func (db *DB) Lookup(name string) (*FuncSpec, bool) {
	if f, ok := db.funcs[name]; ok {
		return f, true
	}
	parts := strings.Split(name, ".")
	if len(parts) >= 2 {
		suffix := strings.Join(parts[len(parts)-2:], ".")
		if f, ok := db.funcs[suffix]; ok {
			return f, true
		}
	}
	if len(parts) >= 1 {
		if f, ok := db.funcs[parts[len(parts)-1]]; ok && strings.Contains(f.Name, ".") == false {
			return f, true
		}
	}
	return nil, false
}

// builtins is the standard knowledge base: the vfs/vnet/simlog substrate
// APIs (the targets' "system calls"), the strconv/strings/fmt/time standard
// library, and common parsing helpers.
var builtins = []FuncSpec{
	// --- Virtual file system (open/stat analogues). ---
	{Name: "FS.ReadFile", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemFile}}},
	{Name: "FS.WriteFile", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemFile}}},
	{Name: "FS.Append", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemFile}}},
	{Name: "FS.Stat", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemPath}}},
	{Name: "FS.Exists", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemPath}}},
	{Name: "FS.IsDir", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemDirectory}}},
	{Name: "FS.List", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemDirectory}}},
	{Name: "FS.MkdirAll", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemDirectory}}},
	{Name: "FS.Chmod", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemFile}, {Index: 1, Semantic: constraint.SemPerm}}},
	{Name: "FS.Remove", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemPath}}},

	// --- Virtual network (socket analogues). ---
	{Name: "Net.Bind", Args: []ArgSpec{{Index: 1, Semantic: constraint.SemPort}}},
	{Name: "Net.Occupied", Args: []ArgSpec{{Index: 1, Semantic: constraint.SemPort}}},
	{Name: "Net.Release", Args: []ArgSpec{{Index: 1, Semantic: constraint.SemPort}}},
	{Name: "vnet.ValidIP", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemIPAddr}}},
	{Name: "vnet.ValidHost", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemHost}}},

	// --- Time (sleep/usleep analogues; the unit comes from the
	// multiplier on the data-flow path, see dataflow unit inference). ---
	{Name: "time.Sleep", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemTimeout, Unit: UnitOfDuration}}},
	{Name: "sleepSeconds", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemTimeout, Unit: constraint.UnitSecond}}},
	{Name: "sleepMillis", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemTimeout, Unit: constraint.UnitMillisecond}}},
	{Name: "sleepMicros", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemTimeout, Unit: constraint.UnitMicrosecond}}},

	// --- Memory / buffer sizing (byte-unit sinks). ---
	{Name: "allocBuffer", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemSize, Unit: constraint.UnitByte}}},
	{Name: "allocPool", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemSize, Unit: constraint.UnitByte}}},

	// --- Identity / access control. ---
	{Name: "lookupUser", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemUser}}},
	{Name: "lookupGroup", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemGroup}}},
	{Name: "checkPassword", Args: []ArgSpec{{Index: 1, Semantic: constraint.SemPassword}}},

	// --- Worker pools / counts. ---
	{Name: "spawnWorkers", Args: []ArgSpec{{Index: 0, Semantic: constraint.SemCount}}},

	// --- String comparison: case sensitivity (strcmp/strcasecmp). ---
	{Name: "strings.EqualFold", Compare: true, CaseInsensitive: true},
	{Name: "strings.Compare", Compare: true},
	{Name: "strings.HasPrefix", Compare: true},

	// --- Transformation APIs. Unsafe ones ignore parse errors
	// (atoi/sscanf analogues); safe ones surface them (strtol-with-
	// errno analogue). ---
	{Name: "atoi", RetBasic: constraint.BasicInt64, Unsafe: true},
	{Name: "atof", RetBasic: constraint.BasicFloat64, Unsafe: true},
	{Name: "parseBool", RetBasic: constraint.BasicBool, Unsafe: true},
	{Name: "fmt.Sscanf", Unsafe: true},
	{Name: "strconv.Atoi", RetBasic: constraint.BasicInt64},
	{Name: "strconv.ParseInt", RetBasic: constraint.BasicInt64},
	{Name: "strconv.ParseUint", RetBasic: constraint.BasicUint64},
	{Name: "strconv.ParseFloat", RetBasic: constraint.BasicFloat64},
	{Name: "strconv.ParseBool", RetBasic: constraint.BasicBool},
}

// UnitOfDuration is a sentinel: the real unit is derived from the constant
// multiplier found on the data-flow path (time.Duration(x)*time.Second =>
// seconds, *time.Millisecond => milliseconds, ...).
const UnitOfDuration = constraint.Unit("duration")

// DurationUnit maps a time-constant name to its unit.
func DurationUnit(constName string) (constraint.Unit, bool) {
	switch constName {
	case "time.Microsecond":
		return constraint.UnitMicrosecond, true
	case "time.Millisecond":
		return constraint.UnitMillisecond, true
	case "time.Second":
		return constraint.UnitSecond, true
	case "time.Minute":
		return constraint.UnitMinute, true
	case "time.Hour":
		return constraint.UnitHour, true
	}
	return constraint.UnitNone, false
}

// SizeUnit maps a byte multiplier to the input unit: a parameter multiplied
// by 1024 before reaching a byte-unit API is configured in KB (paper
// Figure 6b, Apache MaxMemFree).
func SizeUnit(multiplier int64) (constraint.Unit, bool) {
	switch multiplier {
	case 1:
		return constraint.UnitByte, true
	case 1024:
		return constraint.UnitKB, true
	case 1024 * 1024:
		return constraint.UnitMB, true
	case 1024 * 1024 * 1024:
		return constraint.UnitGB, true
	}
	return constraint.UnitNone, false
}

// TimeUnitScaled adjusts a time unit by a constant multiplier on the flow
// path: a parameter multiplied by 1000 before a milliseconds API is
// configured in seconds.
func TimeUnitScaled(base constraint.Unit, multiplier int64) (constraint.Unit, bool) {
	order := []constraint.Unit{
		constraint.UnitMicrosecond, constraint.UnitMillisecond,
		constraint.UnitSecond, constraint.UnitMinute, constraint.UnitHour,
	}
	factors := map[constraint.Unit]int64{
		constraint.UnitMicrosecond: 1,
		constraint.UnitMillisecond: 1000,
		constraint.UnitSecond:      1000 * 1000,
		constraint.UnitMinute:      60 * 1000 * 1000,
		constraint.UnitHour:        3600 * 1000 * 1000,
	}
	base64, ok := factors[base]
	if !ok {
		return constraint.UnitNone, false
	}
	want := base64 * multiplier
	for _, u := range order {
		if factors[u] == want {
			return u, true
		}
	}
	return constraint.UnitNone, false
}
