package apispec

import (
	"testing"

	"spex/internal/constraint"
)

func TestLookupFullName(t *testing.T) {
	db := New()
	spec, ok := db.Lookup("strconv.Atoi")
	if !ok || spec.RetBasic != constraint.BasicInt64 {
		t.Errorf("strconv.Atoi = %+v, %v", spec, ok)
	}
}

func TestLookupMethodSuffix(t *testing.T) {
	db := New()
	// env.FS.ReadFile resolves through its last two components.
	spec, ok := db.Lookup("env.FS.ReadFile")
	if !ok {
		t.Fatal("suffix lookup failed")
	}
	if arg, ok := spec.ArgAt(0); !ok || arg.Semantic != constraint.SemFile {
		t.Errorf("arg0 = %+v", arg)
	}
}

func TestLookupBareHelper(t *testing.T) {
	db := New()
	spec, ok := db.Lookup("atoi")
	if !ok || !spec.Unsafe {
		t.Errorf("atoi = %+v, %v", spec, ok)
	}
	if _, ok := db.Lookup("definitely_not_an_api"); ok {
		t.Error("unknown name resolved")
	}
}

func TestRegisterOverride(t *testing.T) {
	db := NewEmpty()
	if db.Len() != 0 {
		t.Fatal("NewEmpty not empty")
	}
	db.Register(&FuncSpec{Name: "validateInitiator",
		Args: []ArgSpec{{Index: 0, Semantic: constraint.SemInitiator}}})
	spec, ok := db.Lookup("validateInitiator")
	if !ok {
		t.Fatal("registered spec not found")
	}
	if arg, _ := spec.ArgAt(0); arg.Semantic != constraint.SemInitiator {
		t.Errorf("arg = %+v", arg)
	}
}

func TestArgAtMiss(t *testing.T) {
	spec := &FuncSpec{Name: "f", Args: []ArgSpec{{Index: 1, Semantic: constraint.SemPort}}}
	if _, ok := spec.ArgAt(0); ok {
		t.Error("ArgAt(0) should miss")
	}
	if a, ok := spec.ArgAt(1); !ok || a.Semantic != constraint.SemPort {
		t.Error("ArgAt(1) should hit")
	}
}

func TestDurationUnit(t *testing.T) {
	cases := map[string]constraint.Unit{
		"time.Microsecond": constraint.UnitMicrosecond,
		"time.Millisecond": constraint.UnitMillisecond,
		"time.Second":      constraint.UnitSecond,
		"time.Minute":      constraint.UnitMinute,
		"time.Hour":        constraint.UnitHour,
	}
	for name, want := range cases {
		got, ok := DurationUnit(name)
		if !ok || got != want {
			t.Errorf("DurationUnit(%s) = %s,%v", name, got, ok)
		}
	}
	if _, ok := DurationUnit("time.Nanosecond"); ok {
		t.Error("nanosecond should not map")
	}
}

func TestSizeUnit(t *testing.T) {
	cases := map[int64]constraint.Unit{
		1:                  constraint.UnitByte,
		1024:               constraint.UnitKB,
		1024 * 1024:        constraint.UnitMB,
		1024 * 1024 * 1024: constraint.UnitGB,
	}
	for mult, want := range cases {
		got, ok := SizeUnit(mult)
		if !ok || got != want {
			t.Errorf("SizeUnit(%d) = %s,%v", mult, got, ok)
		}
	}
	if _, ok := SizeUnit(1000); ok {
		t.Error("non-binary multiplier should not map")
	}
}

func TestTimeUnitScaled(t *testing.T) {
	if u, ok := TimeUnitScaled(constraint.UnitMillisecond, 1000); !ok || u != constraint.UnitSecond {
		t.Errorf("ms*1000 = %s,%v", u, ok)
	}
	if u, ok := TimeUnitScaled(constraint.UnitSecond, 60); !ok || u != constraint.UnitMinute {
		t.Errorf("s*60 = %s,%v", u, ok)
	}
	if u, ok := TimeUnitScaled(constraint.UnitSecond, 3600); !ok || u != constraint.UnitHour {
		t.Errorf("s*3600 = %s,%v", u, ok)
	}
	if _, ok := TimeUnitScaled(constraint.UnitSecond, 7); ok {
		t.Error("s*7 has no unit")
	}
	if _, ok := TimeUnitScaled(constraint.UnitByte, 60); ok {
		t.Error("byte base is not a time unit")
	}
}

func TestBuiltinsCoverSubstrates(t *testing.T) {
	db := New()
	for _, name := range []string{
		"FS.ReadFile", "FS.IsDir", "Net.Bind", "vnet.ValidIP",
		"time.Sleep", "sleepSeconds", "sleepMillis", "sleepMicros",
		"allocBuffer", "lookupUser", "strings.EqualFold",
		"strconv.ParseInt", "fmt.Sscanf",
	} {
		if _, ok := db.Lookup(name); !ok {
			t.Errorf("builtin %s missing", name)
		}
	}
}
