package simlog

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestLevelsAndEntries(t *testing.T) {
	l := New()
	l.Debugf("d %d", 1)
	l.Infof("i")
	l.Warnf("w")
	l.Errorf("e")
	l.Fatalf("f")
	es := l.Entries()
	if len(es) != 5 {
		t.Fatalf("entries = %d, want 5", len(es))
	}
	wantLevels := []Level{LevelDebug, LevelInfo, LevelWarn, LevelError, LevelFatal}
	for i, e := range es {
		if e.Level != wantLevels[i] {
			t.Errorf("entry %d level = %s", i, e.Level)
		}
	}
	if es[0].Message != "d 1" {
		t.Errorf("formatted message = %q", es[0].Message)
	}
	if l.Len() != 5 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestPinpointsByName(t *testing.T) {
	l := New()
	l.Errorf("option 'listener-threads' expects an integer")
	if !l.Pinpoints("listener-threads", "", 0) {
		t.Error("name mention not detected")
	}
	if l.Pinpoints("other_param", "", 0) {
		t.Error("false pinpoint")
	}
}

func TestPinpointsByValue(t *testing.T) {
	l := New()
	l.Errorf("invalid value '999.1.1.1'")
	if !l.Pinpoints("bind_address", "999.1.1.1", 0) {
		t.Error("value mention not detected")
	}
	// Very short values must not match accidentally.
	l2 := New()
	l2.Errorf("startup took 1 second")
	if l2.Pinpoints("flag", "1", 0) {
		t.Error("short value matched accidentally")
	}
}

func TestPinpointsByLine(t *testing.T) {
	l := New()
	l.Errorf("parse error at line 17 of the configuration file")
	if !l.Pinpoints("whatever", "", 17) {
		t.Error("line mention not detected")
	}
	if l.Pinpoints("whatever", "", 18) {
		t.Error("wrong line matched")
	}
}

func TestPinpointsCaseInsensitive(t *testing.T) {
	l := New()
	l.Errorf("Bad value for MaxMemFree")
	if !l.Pinpoints("maxmemfree", "", 0) {
		t.Error("case-insensitive name match failed")
	}
}

func TestContainsAndDump(t *testing.T) {
	l := New()
	l.Fatalf("Cannot open ICP Port")
	if !l.Contains("icp port") {
		t.Error("Contains failed")
	}
	if !strings.Contains(l.Dump(), "FATAL: Cannot open ICP Port") {
		t.Errorf("Dump = %q", l.Dump())
	}
}

func TestReset(t *testing.T) {
	l := New()
	l.Infof("x")
	l.Reset()
	if l.Len() != 0 {
		t.Error("Reset left entries")
	}
}

func TestConcurrentLogging(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				l.Infof("goroutine %d entry %d", n, j)
			}
		}(i)
	}
	wg.Wait()
	if l.Len() != 160 {
		t.Errorf("entries = %d, want 160", l.Len())
	}
}

func TestLevelString(t *testing.T) {
	if LevelFatal.String() != "FATAL" || LevelDebug.String() != "DEBUG" {
		t.Error("level names wrong")
	}
	if !strings.HasPrefix(Level(99).String(), "LEVEL(") {
		t.Error("unknown level formatting")
	}
	e := Entry{Level: LevelWarn, Message: "m"}
	if e.String() != "WARN: m" {
		t.Errorf("entry = %q", e.String())
	}
	_ = fmt.Sprintf("%v", e)
}
