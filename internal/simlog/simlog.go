// Package simlog is the logging substrate shared by the simulated targets
// and the injection harness. It captures everything a target logs so that
// SPEX-INJ can decide whether the system "pinpoints" an injected
// misconfiguration: a reaction is a vulnerability only if the logs mention
// neither the faulting parameter's name/value nor its location in the
// configuration file (paper §3.1).
package simlog

import (
	"fmt"
	"strings"
	"sync"
)

// Level is a log severity.
type Level int

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelFatal
)

var levelNames = [...]string{"DEBUG", "INFO", "WARN", "ERROR", "FATAL"}

func (l Level) String() string {
	if l < 0 || int(l) >= len(levelNames) {
		return fmt.Sprintf("LEVEL(%d)", int(l))
	}
	return levelNames[l]
}

// Entry is one captured log message.
type Entry struct {
	Level   Level
	Message string
}

func (e Entry) String() string { return e.Level.String() + ": " + e.Message }

// Log is a concurrency-safe capture logger handed to each target instance.
// The harness sets sufficient verbosity by capturing every level (paper §4:
// "we set sufficient logging verbosity").
type Log struct {
	mu      sync.Mutex
	entries []Entry
}

// New returns an empty capture log.
func New() *Log { return &Log{} }

func (l *Log) log(level Level, format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, Entry{Level: level, Message: fmt.Sprintf(format, args...)})
}

// Debugf records a DEBUG entry.
func (l *Log) Debugf(format string, args ...any) { l.log(LevelDebug, format, args...) }

// Infof records an INFO entry.
func (l *Log) Infof(format string, args ...any) { l.log(LevelInfo, format, args...) }

// Warnf records a WARN entry.
func (l *Log) Warnf(format string, args ...any) { l.log(LevelWarn, format, args...) }

// Errorf records an ERROR entry.
func (l *Log) Errorf(format string, args ...any) { l.log(LevelError, format, args...) }

// Fatalf records a FATAL entry. Unlike log.Fatalf it does not exit; targets
// signal termination through their return values so the harness can observe
// it.
func (l *Log) Fatalf(format string, args ...any) { l.log(LevelFatal, format, args...) }

// Entries returns a snapshot of all captured entries.
func (l *Log) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Len returns the number of captured entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Reset discards all captured entries.
func (l *Log) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = nil
}

// Dump renders the captured log as text, one entry per line.
func (l *Log) Dump() string {
	var b strings.Builder
	for _, e := range l.Entries() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Pinpoints reports whether the log identifies the misconfigured parameter:
// by name, by its (non-trivial) value, or by configuration-file location
// ("line N"). This is the paper's criterion for a good reaction.
func (l *Log) Pinpoints(param, value string, line int) bool {
	needle := strings.ToLower(param)
	valNeedle := strings.ToLower(strings.TrimSpace(value))
	// Very short values ("1", "on") match accidentally; require length >= 3.
	if len(valNeedle) < 3 {
		valNeedle = ""
	}
	lineNeedle := ""
	if line > 0 {
		lineNeedle = fmt.Sprintf("line %d", line)
	}
	for _, e := range l.Entries() {
		msg := strings.ToLower(e.Message)
		if strings.Contains(msg, needle) {
			return true
		}
		if valNeedle != "" && strings.Contains(msg, valNeedle) {
			return true
		}
		if lineNeedle != "" && strings.Contains(msg, lineNeedle) {
			return true
		}
	}
	return false
}

// Contains reports whether any entry contains the substring (case
// insensitive).
func (l *Log) Contains(sub string) bool {
	needle := strings.ToLower(sub)
	for _, e := range l.Entries() {
		if strings.Contains(strings.ToLower(e.Message), needle) {
			return true
		}
	}
	return false
}
