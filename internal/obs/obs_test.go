package obs

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(3)
	g.Add(-1.5)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("histogram count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.565) > 1e-9 {
		t.Fatalf("histogram sum = %v, want 5.565", h.Sum())
	}
	// Bucket placement: le=0.01 catches 0.005 and the boundary value
	// 0.01 (le is inclusive), le=0.1 catches 0.05, le=1 catches 0.5,
	// +Inf catches 5.
	for i, want := range []uint64{2, 1, 1, 1} {
		if got := h.buckets[i].Load(); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_requests_total", "requests", "endpoint", "code")
	v.With("jobs", "200").Inc()
	v.With("jobs", "200").Inc()
	v.With("jobs", "404").Inc()
	if got := v.With("jobs", "200").Value(); got != 2 {
		t.Fatalf("child(jobs,200) = %d, want 2", got)
	}
	if got := v.With("jobs", "404").Value(); got != 1 {
		t.Fatalf("child(jobs,404) = %d, want 1", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("test_dup_total", "second")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("bad name", "spaces are not allowed")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_b_total", "b counter").Add(7)
	r.Gauge("test_a_depth", "a gauge").Set(2.5)
	h := r.Histogram("test_c_seconds", "c histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	v := r.CounterVec("test_d_total", "labelled", "kind")
	v.With("x\"y\\z\n").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_a_depth a gauge",
		"# TYPE test_a_depth gauge",
		"test_a_depth 2.5",
		"# TYPE test_b_total counter",
		"test_b_total 7",
		"# TYPE test_c_seconds histogram",
		`test_c_seconds_bucket{le="0.1"} 1`,
		`test_c_seconds_bucket{le="1"} 2`,
		`test_c_seconds_bucket{le="+Inf"} 3`,
		"test_c_seconds_sum 2.55",
		"test_c_seconds_count 3",
		`test_d_total{kind="x\"y\\z\n"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families come out sorted.
	if strings.Index(out, "test_a_depth") > strings.Index(out, "test_b_total") {
		t.Error("families not sorted by name")
	}
}

func TestWriteJSONFile(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_ops_total", "ops").Add(3)
	h := r.Histogram("test_lat_seconds", "lat", []float64{1})
	h.Observe(0.5)
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := r.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc []struct {
		Name   string            `json:"name"`
		Type   string            `json:"type"`
		Series []json.RawMessage `json:"series"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("metrics dump is not JSON: %v\n%s", err, raw)
	}
	if len(doc) != 2 || doc[0].Name != "test_lat_seconds" || doc[1].Name != "test_ops_total" {
		t.Fatalf("unexpected dump shape: %+v", doc)
	}
	for _, f := range doc {
		if len(f.Series) != 1 {
			t.Fatalf("family %s has %d series, want 1", f.Name, len(f.Series))
		}
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines
// under -race: counters, gauges, histogram observations, vec children
// creation, and concurrent exposition must all be safe.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_hammer_total", "hammer")
	g := r.Gauge("test_hammer_depth", "hammer")
	h := r.Histogram("test_hammer_seconds", "hammer", DurationBuckets)
	v := r.CounterVec("test_hammer_kinds_total", "hammer", "kind")
	kinds := []string{"a", "b", "c", "d"}
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i) / 1e6)
				v.With(kinds[(w+i)%len(kinds)]).Inc()
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	var total uint64
	for _, k := range kinds {
		total += v.With(k).Value()
	}
	if total != workers*iters {
		t.Fatalf("vec total = %d, want %d", total, workers*iters)
	}
}

func TestTraceTree(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tr := NewTrace("job-000001")
	job := tr.Span(SpanJob, "job-000001", "", base)
	sys := tr.Span(SpanSystem, "proxyd", job.ID(), base)
	mc := tr.Span(SpanMisconf, "max_connections=0", sys.ID(), base.Add(10*time.Millisecond))
	mc.Finish(base.Add(13*time.Millisecond), "failed")
	steal := tr.Span(SpanSteal, "worker 2 <- worker 1", job.ID(), base.Add(20*time.Millisecond))
	steal.SetAttr("keys", "5")
	steal.Finish(base.Add(20*time.Millisecond), "ok")
	sys.Finish(base.Add(30*time.Millisecond), "done")
	job.Finish(base.Add(40*time.Millisecond), "done")

	doc := tr.Doc()
	if doc.Job != "job-000001" || len(doc.Spans) != 4 {
		t.Fatalf("doc: %+v", doc)
	}
	if doc.Spans[0].ID != "s1" || doc.Spans[1].Parent != "s1" || doc.Spans[2].Parent != "s2" {
		t.Fatalf("span IDs/parents wrong: %+v", doc.Spans)
	}
	if doc.Spans[2].DurationNS != (3 * time.Millisecond).Nanoseconds() {
		t.Fatalf("misconf duration = %d", doc.Spans[2].DurationNS)
	}

	text := doc.Text()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("text rendering has %d lines:\n%s", len(lines), text)
	}
	if !strings.HasPrefix(lines[0], "job job-000001 ") {
		t.Errorf("root line: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  system proxyd ") {
		t.Errorf("system line: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "    misconf max_connections=0 3ms failed") {
		t.Errorf("misconf line: %q", lines[2])
	}
	if !strings.Contains(lines[3], "keys=5") {
		t.Errorf("steal line lost its attrs: %q", lines[3])
	}

	// The serialized document round-trips and keeps its top-level
	// "job" key (the journal loader's discriminator).
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"job":"job-000001"`) {
		t.Fatalf("doc JSON missing job key: %s", raw)
	}
}
