// Campaign tracing: a Trace records a tree of spans — job → system →
// misconf/steal — with parent IDs, wall-clock bounds, and an outcome
// status. The recorder rides the existing progress plumbing (spexd
// feeds it from the shard.Hub event stream), so tracing costs nothing
// when nobody subscribes; the finished tree is journaled next to the
// job document and served at GET /v1/jobs/{id}/trace as JSON or an
// indented text rendering.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span kinds used by the campaign recorder. Free-form strings are
// allowed; these are the vocabulary the daemon emits.
const (
	SpanJob     = "job"
	SpanSystem  = "system"
	SpanMisconf = "misconf"
	SpanSteal   = "steal"
)

// Trace accumulates spans for one job. Safe for concurrent use.
type Trace struct {
	mu    sync.Mutex
	job   string
	next  int
	spans []*Span
}

// Span is one timed node in the trace tree. Fields are mutated only
// through methods, which serialize on the owning trace's lock.
type Span struct {
	tr     *Trace
	id     string
	parent string
	kind   string
	name   string
	start  time.Time
	end    time.Time
	status string
	attrs  map[string]string
}

// NewTrace starts an empty trace for the named job.
func NewTrace(job string) *Trace { return &Trace{job: job} }

// Span appends a new span. Parent is the ID of the enclosing span
// ("" for the root); IDs are assigned deterministically in creation
// order (s1, s2, ...).
func (t *Trace) Span(kind, name, parent string, start time.Time) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	s := &Span{tr: t, id: fmt.Sprintf("s%d", t.next), parent: parent, kind: kind, name: name, start: start}
	t.spans = append(t.spans, s)
	return s
}

// ID returns the span's identifier, for parenting child spans.
func (s *Span) ID() string { return s.id }

// SetAttr attaches one key=value annotation.
func (s *Span) SetAttr(k, v string) {
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[k] = v
}

// Finish closes the span with an end time and outcome status. Calling
// it again moves the end forward (the recorder extends system spans as
// progress arrives).
func (s *Span) Finish(end time.Time, status string) {
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.end = end
	s.status = status
}

// TraceDoc is the serialized form of a trace. The top-level key is
// "job" — deliberately not "id", so the daemon's journal loader never
// mistakes a trace file for a job document.
type TraceDoc struct {
	Job   string    `json:"job"`
	Spans []SpanDoc `json:"spans"`
}

// SpanDoc is one span in serialized form.
type SpanDoc struct {
	ID         string            `json:"id"`
	Parent     string            `json:"parent,omitempty"`
	Kind       string            `json:"kind"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	End        time.Time         `json:"end"`
	DurationNS int64             `json:"duration_ns"`
	Status     string            `json:"status,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Doc snapshots the trace into its serialized form.
func (t *Trace) Doc() TraceDoc {
	t.mu.Lock()
	defer t.mu.Unlock()
	doc := TraceDoc{Job: t.job, Spans: make([]SpanDoc, 0, len(t.spans))}
	for _, s := range t.spans {
		sd := SpanDoc{
			ID: s.id, Parent: s.parent, Kind: s.kind, Name: s.name,
			Start: s.start, End: s.end, Status: s.status,
		}
		if !s.end.IsZero() && s.end.After(s.start) {
			sd.DurationNS = s.end.Sub(s.start).Nanoseconds()
		}
		if len(s.attrs) > 0 {
			sd.Attrs = make(map[string]string, len(s.attrs))
			for k, v := range s.attrs {
				sd.Attrs[k] = v
			}
		}
		doc.Spans = append(doc.Spans, sd)
	}
	return doc
}

// Text renders the span tree as indented lines:
//
//	job job-000001 1.24s done
//	  system proxyd 810ms done
//	    misconf max_connections=0 3ms failed
//
// Orphaned spans (parent never recorded) render as roots.
func (d TraceDoc) Text() string {
	children := make(map[string][]int)
	known := make(map[string]bool, len(d.Spans))
	for _, s := range d.Spans {
		known[s.ID] = true
	}
	var roots []int
	for i, s := range d.Spans {
		if s.Parent != "" && known[s.Parent] {
			children[s.Parent] = append(children[s.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	var sb strings.Builder
	var walk func(idx, depth int)
	walk = func(idx, depth int) {
		s := d.Spans[idx]
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(s.Kind)
		sb.WriteByte(' ')
		sb.WriteString(s.Name)
		dur := "-"
		if s.DurationNS > 0 {
			dur = time.Duration(s.DurationNS).Round(time.Microsecond).String()
		}
		sb.WriteByte(' ')
		sb.WriteString(dur)
		if s.Status != "" {
			sb.WriteByte(' ')
			sb.WriteString(s.Status)
		}
		if len(s.Attrs) > 0 {
			keys := make([]string, 0, len(s.Attrs))
			for k := range s.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&sb, " %s=%s", k, s.Attrs[k])
			}
		}
		sb.WriteByte('\n')
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return sb.String()
}
