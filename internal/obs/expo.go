// Exposition: the registry renders itself as Prometheus text format
// 0.0.4 (served by spexd at GET /metrics) and as a JSON document (the
// CLIs' -metrics-out dump, for offline diffing against BENCH_*.json).
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format, families and series in sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, key := range f.sortedKeys() {
			values := f.splitKey(key)
			f.mu.RLock()
			m := f.children[key]
			f.mu.RUnlock()
			switch m := m.(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), m.Value())
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(m.Value()))
			case *Histogram:
				var cum uint64
				for i, b := range m.bounds {
					cum += m.buckets[i].Load()
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "le", formatFloat(b)), cum)
				}
				cum += m.buckets[len(m.bounds)].Load()
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "le", "+Inf"), cum)
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(m.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), cum)
			}
		}
	}
	return bw.Flush()
}

// familyJSON and seriesJSON shape the -metrics-out document: one entry
// per family, one series per live label combination.
type familyJSON struct {
	Name   string       `json:"name"`
	Type   string       `json:"type"`
	Help   string       `json:"help"`
	Series []seriesJSON `json:"series"`
}

type seriesJSON struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   any               `json:"value,omitempty"`
	Count   uint64            `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// WriteJSON renders the registry as an indented JSON array of
// families, sorted by name.
func (r *Registry) WriteJSON(w io.Writer) error {
	var doc []familyJSON
	for _, f := range r.sortedFamilies() {
		fj := familyJSON{Name: f.name, Type: f.kind.String(), Help: f.help, Series: []seriesJSON{}}
		for _, key := range f.sortedKeys() {
			values := f.splitKey(key)
			f.mu.RLock()
			m := f.children[key]
			f.mu.RUnlock()
			s := seriesJSON{}
			if len(f.labels) > 0 {
				s.Labels = make(map[string]string, len(f.labels))
				for i, l := range f.labels {
					s.Labels[l] = values[i]
				}
			}
			switch m := m.(type) {
			case *Counter:
				s.Value = m.Value()
			case *Gauge:
				s.Value = m.Value()
			case *Histogram:
				s.Count = m.Count()
				s.Sum = m.Sum()
				s.Buckets = make(map[string]uint64, len(m.bounds)+1)
				for i, b := range m.bounds {
					s.Buckets[formatFloat(b)] = m.buckets[i].Load()
				}
				s.Buckets["+Inf"] = m.buckets[len(m.bounds)].Load()
			}
			fj.Series = append(fj.Series, s)
		}
		doc = append(doc, fj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteJSONFile atomically writes the WriteJSON document to path.
func (r *Registry) WriteJSONFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".metrics-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := r.WriteJSON(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedKeys() []string {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	f.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// splitKey recovers the label values joined by child.
func (f *family) splitKey(key string) []string {
	if len(f.labels) == 0 {
		return nil
	}
	return strings.SplitN(key, labelSep, len(f.labels))
}

// labelString renders {a="x",b="y"} (plus an optional extra pair,
// used for histogram le labels), or "" when there are no labels.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraValue))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
