// Package obs is the stack's observability layer: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms, and
// their labelled Vec variants) with Prometheus text-format exposition,
// plus a lightweight span recorder for campaign traces.
//
// The registry follows the Prometheus data model but none of its
// client library: metric families are registered once, at package
// level, under constant names; series are cheap to update from hot
// paths (a counter increment is one atomic add); exposition walks a
// consistent snapshot of the registry. Registration panics on a
// duplicate or malformed name — both are programming errors, caught
// the first time the package is linked, and the spexlint `obsmetric`
// analyzer enforces the constant-name discipline statically.
//
// Instrumented packages hold their metrics as package-level vars bound
// to Default(), the process-global registry, e.g.:
//
//	const metricTasks = "spex_engine_tasks_total"
//	var mTasks = obs.Default().Counter(metricTasks, "tasks executed")
//
// which spexd serves at GET /metrics and the CLIs dump with
// -metrics-out.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind discriminates the three family types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

var (
	validName  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	validLabel = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry holds metric families keyed by name. The zero value is not
// usable; construct with NewRegistry or use the process-global
// Default().
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry. Most code should register
// against Default() instead so spexd's /metrics and the CLIs'
// -metrics-out see every series; fresh registries exist for tests.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var std = NewRegistry()

// Default returns the process-global registry that all instrumented
// packages register into.
func Default() *Registry { return std }

// family is one named metric with a fixed label schema; its children
// are the live series, keyed by joined label values.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	bounds []float64 // histogram families only

	mu       sync.RWMutex
	children map[string]metric
}

type metric interface{ isMetric() }

// labelSep joins label values into a child key; a NUL byte never
// occurs in well-formed label values, so the join is unambiguous.
const labelSep = "\x00"

func (r *Registry) register(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	if !validName.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabel.MatchString(l) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l))
		}
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: metric %s: histogram bounds not strictly increasing", name))
		}
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]metric),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.fams[name] = f
	return f
}

func (f *family) child(values []string) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s: %d label values for %d labels", f.name, len(values), len(f.labels)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	m, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	default:
		m = newHistogram(f.bounds)
	}
	f.children[key] = m
	return m
}

// Counter registers a monotonically increasing counter. Panics if the
// name is malformed or already registered.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil).child(nil).(*Counter)
}

// Gauge registers a gauge: a value that can go up and down.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil).child(nil).(*Gauge)
}

// Histogram registers a fixed-bucket histogram. Bounds are inclusive
// upper bucket bounds in increasing order; an implicit +Inf bucket is
// always appended.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, kindHistogram, nil, bounds).child(nil).(*Histogram)
}

// CounterVec registers a counter family with the given label schema.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// GaugeVec registers a gauge family with the given label schema.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// HistogramVec registers a histogram family with the given label
// schema; every child shares the same bucket bounds.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, bounds)}
}

// Counter is a monotonically increasing value. All methods are safe
// for concurrent use.
type Counter struct{ v atomic.Uint64 }

func (c *Counter) isMetric() {}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; counters only move forward, so n is unsigned.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value stored as a float64.
type Gauge struct{ bits atomic.Uint64 }

func (g *Gauge) isMetric() {}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d (negative to decrease).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets and tracks their
// sum. Buckets follow Prometheus semantics: an observation lands in
// the first bucket whose upper bound is >= the value, with a final
// implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

func (h *Histogram) isMetric() {}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// CounterVec is a counter family over a label schema.
type CounterVec struct{ f *family }

// With returns the counter child for the given label values (one per
// registered label, in order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec is a gauge family over a label schema.
type GaugeVec struct{ f *family }

// With returns the gauge child for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// HistogramVec is a histogram family over a label schema.
type HistogramVec struct{ f *family }

// With returns the histogram child for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// DurationBuckets is the default bucket layout for latency
// histograms, in seconds: 100µs up to 10s.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets is the default bucket layout for byte-size histograms:
// 256 B up to 16 MiB.
var SizeBuckets = []float64{
	256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20, 16 << 20,
}
