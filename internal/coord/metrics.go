// Coordinator metrics: spawn/steal/retry activity, worker liveness,
// and the heartbeat lag the steal policy acts on all feed the obs
// registry.
package coord

import "spex/internal/obs"

const (
	metricSpawns         = "spex_coord_spawns_total"
	metricSteals         = "spex_coord_steals_total"
	metricStolenKeys     = "spex_coord_stolen_keys_total"
	metricRetries        = "spex_coord_retries_total"
	metricWorkersRunning = "spex_coord_workers_running"
	metricHeartbeatLag   = "spex_coord_heartbeat_lag_seconds"
)

var (
	mSpawns         = obs.Default().Counter(metricSpawns, "workers spawned (initial partitions, respawns after steals, retries)")
	mSteals         = obs.Default().Counter(metricSteals, "work-stealing rebalances committed")
	mStolenKeys     = obs.Default().Counter(metricStolenKeys, "keys moved off laggard leases by steals")
	mRetries        = obs.Default().Counter(metricRetries, "failed workers respawned on their unchanged lease")
	mWorkersRunning = obs.Default().Gauge(metricWorkersRunning, "coordinated workers currently running")
	mHeartbeatLag   = obs.Default().Gauge(metricHeartbeatLag, "age in seconds of the most recently read worker heartbeat")
)
