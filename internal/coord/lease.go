// Package coord is the shard coordinator: it launches N shard workers
// as child processes (or goroutines under a pluggable spawner), assigns
// each an initial shard.Plan partition of the injection campaign, and
// rebalances by work stealing when shard runtimes skew — the follow-on
// the ROADMAP named after the static FNV-1a partition (internal/shard),
// whose slowest shard otherwise sets the campaign's wall clock.
//
// The lifecycle is plan → lease → steal → merge:
//
//   - Plan. The coordinator computes the full workload (the same
//     deterministic inference every shard process would run) and
//     assigns each misconfiguration to a worker by the same FNV-1a hash
//     a static `spexinj -shard i/N` run uses (shard.Owner), so a
//     coordinated campaign starts from exactly the coordinator-free
//     partition.
//
//   - Lease. Each worker's assignment is persisted as a lease file in
//     the shared state directory (<state>/coord/worker<i>.lease.json):
//     an owner, a generation counter, and the explicit key list, in
//     execution order. Workers compile their lease into an explicit
//     key-set plan (shard.KeySetPlan) and re-read the file between
//     outcomes; progress streams back through heartbeat files
//     (worker<i>.heartbeat.json) listing the keys whose outcomes are
//     recorded.
//
//   - Steal. When a worker drains while another still has more than
//     StealMin pending keys, the coordinator reassigns a deterministic
//     suffix of the laggard's remaining keys: it rewrites the idle
//     worker's lease (generation+1, its old keys plus the stolen ones)
//     first, then shrinks the laggard's lease (generation+1, stolen
//     keys removed), then respawns the idle worker. The laggard's
//     lease watcher picks up the shrink and its scheduler gate yields
//     the stolen keys (inject.ErrYielded) instead of executing them.
//     The write order means a crash between the two writes leaves a
//     key in two leases, never in none: duplicate execution is already
//     safe (the shard merge resolves duplicates freshest-wins by
//     per-outcome stamp), stealing just makes it rare.
//
//   - Merge. When every worker has drained, the coordinator folds the
//     per-worker shard stores (<state>/shard<i>/) into the canonical
//     store at the state root (shard.Merge), so `spexinj -state dir`
//     or `spexeval -state dir` afterwards replays the whole campaign
//     at zero fresh simulated cost.
//
// Cancellation and resume: SIGINT interrupts the workers, each of which
// saves its finished outcomes (the campaignstore contract), and leaves
// the lease files in place. A rerun with the same campaign identity
// (manifest.json records worker count, schema fingerprint, options
// identity, and per-system constraint-set fingerprints) resumes from
// the persisted leases: every worker replays its recorded outcomes from
// its own shard store and executes only what is missing, so nothing is
// re-executed. A rerun whose identity differs re-plans from scratch.
//
// Locking reuses the campaignstore writer lock: the coordinator locks
// the state root and every worker locks its own shard directory, so a
// stray concurrent `spexinj -state` run fails fast instead of silently
// racing snapshot saves.
package coord

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spex/internal/campaignstore"
	"spex/internal/shard"
)

// KeyRef addresses one misconfiguration of a distributed campaign: the
// target system plus the misconfiguration's replay identity
// (inject.CacheKey) — the unit leases assign and heartbeats report.
type KeyRef struct {
	System string `json:"system"`
	Key    string `json:"key"`
}

// Global renders the reference in the key space of explicit key-set
// plans (shard.GlobalKey).
func (k KeyRef) Global() string { return shard.GlobalKey(k.System, k.Key) }

// Lease is one worker's current assignment, persisted as
// worker<i>.lease.json in the coordination directory. Only the
// coordinator writes leases; workers re-read them between outcomes and
// yield keys that disappeared (a steal). Generation increases on every
// rewrite, so a worker never acts on an older assignment than the one
// it already holds.
type Lease struct {
	// Worker is the 1-based owner slot.
	Worker int `json:"worker"`
	// Generation counts rewrites of this worker's assignment.
	Generation int `json:"generation"`
	// Keys is the assignment in execution order; a steal removes a
	// suffix of the still-pending keys.
	Keys []KeyRef `json:"keys"`
}

// Heartbeat is one worker's progress report, persisted as
// worker<i>.heartbeat.json beside its lease. Only the owning worker
// writes it; the coordinator polls it to compute the worker's
// remaining work (lease keys minus Done).
type Heartbeat struct {
	Worker int `json:"worker"`
	// Generation is the lease generation the worker last loaded.
	Generation int `json:"generation"`
	// PID identifies the worker process.
	PID int `json:"pid"`
	// UpdatedAt is the last rewrite time.
	UpdatedAt time.Time `json:"updated_at"`
	// Done lists the keys whose outcomes are recorded (executed or
	// replayed from the worker's shard snapshot) — exactly the keys
	// that will persist through the worker's snapshot save.
	Done []KeyRef `json:"done"`
	// Yielded lists keys the worker gave up after a steal
	// (informational; the thief's lease owns them now).
	Yielded []KeyRef `json:"yielded,omitempty"`
}

// manifest pins the campaign identity a set of lease files belongs to.
// A coordinator run whose identity matches resumes from the persisted
// leases; any mismatch re-plans from scratch (the fail-safe default,
// like campaignstore's snapshot validation).
type manifest struct {
	Workers int    `json:"workers"`
	Schema  string `json:"schema"`
	Options string `json:"options"`
	// Systems maps each target to its constraint-set fingerprint.
	Systems map[string]string `json:"systems"`
}

// CoordDirName is the coordination subdirectory under the campaign
// state root holding manifest, lease, heartbeat, and worker log files.
const CoordDirName = "coord"

// LeasePath returns worker i's lease file under the coordination dir.
func LeasePath(coordDir string, worker int) string {
	return filepath.Join(coordDir, fmt.Sprintf("worker%d.lease.json", worker))
}

// HeartbeatPath derives a worker's heartbeat file from its lease path —
// the one path a worker needs to be handed.
func HeartbeatPath(leasePath string) string {
	return strings.TrimSuffix(leasePath, ".lease.json") + ".heartbeat.json"
}

// ShardDir returns worker i's private shard store under the campaign
// state root.
func ShardDir(stateDir string, worker int) string {
	return filepath.Join(stateDir, fmt.Sprintf("shard%d", worker))
}

// writeJSON persists v atomically (campaignstore.WriteJSON, the one
// copy of the temp+rename advisory-document write): a concurrent
// reader never sees a torn document, and there is no fsync because the
// coordination files are advisory progress state — the snapshots carry
// the real outcomes.
func writeJSON(path string, v any) error {
	return campaignstore.WriteJSON(path, v)
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("coord: %s: %w", path, err)
	}
	return nil
}

// ReadLease reads and validates one lease file.
func ReadLease(path string) (*Lease, error) {
	var l Lease
	if err := readJSON(path, &l); err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("coord: no lease at %s", path)
		}
		return nil, err
	}
	if l.Worker < 1 || l.Generation < 1 {
		return nil, fmt.Errorf("coord: %s is not a lease file", path)
	}
	return &l, nil
}

// ReadHeartbeat reads a worker's heartbeat. A missing file is not an
// error — it means the worker has recorded nothing yet — and returns a
// zero heartbeat.
func ReadHeartbeat(path string) (*Heartbeat, error) {
	var h Heartbeat
	if err := readJSON(path, &h); err != nil {
		if os.IsNotExist(err) {
			return &Heartbeat{}, nil
		}
		return nil, err
	}
	return &h, nil
}

// keySet folds key references into the global-key set explicit plans
// consume, dropping duplicates (a crash between the two lease writes
// of a steal can leave a key in two leases; execution handles that,
// bookkeeping just needs set semantics).
func keySet(keys []KeyRef) map[string]bool {
	set := make(map[string]bool, len(keys))
	for _, k := range keys {
		set[k.Global()] = true
	}
	return set
}
