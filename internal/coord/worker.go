package coord

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"spex/internal/campaignstore"
	"spex/internal/confgen"
	"spex/internal/inject"
	"spex/internal/shard"
	"spex/internal/sim"
	"spex/internal/spex"
)

// WorkerOptions tune one shard worker.
type WorkerOptions struct {
	// Workers bounds the engine pool inside this worker (0 = one per
	// CPU).
	Workers int
	// Inject holds the campaign options (must match the coordinator's,
	// or the merge will reject the shard).
	Inject inject.Options
	// Poll is the lease re-read interval (default 200ms). The gate also
	// consults the freshest loaded lease before every execution, so a
	// steal takes effect at the next task boundary after a poll.
	Poll time.Duration
	// OnProgress, if set, observes every scheduler progress event after
	// the worker's own heartbeat bookkeeping — the hook an in-process
	// spawner (the daemon's coordinate jobs) uses to feed the shared
	// progress hub while the heartbeat files keep feeding the
	// coordinator. Calls are serialized by the scheduler.
	OnProgress func(shard.Progress)
}

// WorkerResult is what one worker run accomplished.
type WorkerResult struct {
	// Lease is the assignment the worker started from.
	Lease *Lease
	// Runs are the per-system campaign results (store statuses
	// included), index-aligned with the systems that had leased keys.
	Runs []shard.SystemRun
	// Done counts outcomes recorded (executed or replayed).
	Done int
	// Yielded counts keys given up to a steal.
	Yielded int
}

// RunWorker executes one worker's lease: it compiles the lease into an
// explicit key-set plan, runs the owned misconfigurations through the
// store-backed global scheduler (shard.CampaignAll) against the
// worker's private shard store, streams per-outcome heartbeats, and
// watches the lease file for steals — keys that disappear from the
// lease are yielded (inject.ErrYielded) instead of executed.
//
// This is the child side of `spexinj -lease <file> -state <shardDir>`;
// the in-process test and benchmark spawner calls it directly. The
// shard store is locked for the duration (campaignstore.Store.Lock).
// On cancellation the finished outcomes are saved (the campaignstore
// contract) and the context error is returned alongside the partial
// result, so a resumed run replays them at zero cost.
func RunWorker(ctx context.Context, leasePath, stateDir string, systems []sim.System, opts WorkerOptions) (res *WorkerResult, err error) {
	if opts.Poll <= 0 {
		opts.Poll = 200 * time.Millisecond
	}
	lease, err := ReadLease(leasePath)
	if err != nil {
		return nil, err
	}
	res = &WorkerResult{Lease: lease}
	hbPath := HeartbeatPath(leasePath)
	hb := &Heartbeat{Worker: lease.Worker, Generation: lease.Generation, PID: os.Getpid(), UpdatedAt: time.Now().UTC()}
	if len(lease.Keys) == 0 {
		return res, writeJSON(hbPath, hb)
	}

	store, err := campaignstore.Open(stateDir)
	if err != nil {
		return nil, err
	}
	lock, err := store.Lock()
	if err != nil {
		return nil, err
	}
	defer func() {
		// An Unlock that fails after a takeover means another worker owns
		// this shard store now; surfacing it keeps the coordinator from
		// merging a store that a live writer is still appending to.
		if uerr := lock.Unlock(); uerr != nil && err == nil {
			res, err = nil, fmt.Errorf("coord: worker %d releasing shard lock: %w", lease.Worker, uerr)
		}
	}()

	results, err := spex.InferAll(ctx, systems, opts.Workers)
	if err != nil {
		return nil, err
	}

	// The live assignment: swapped whole by the lease watcher, consulted
	// by the gate before every execution.
	type assignment struct {
		gen  int
		keys map[string]bool
	}
	var owned atomic.Pointer[assignment]
	owned.Store(&assignment{gen: lease.Generation, keys: keySet(lease.Keys)})

	ws, _, err := shard.BuildWorkloads(systems, results, shard.KeySetPlan(owned.Load().keys))
	if err != nil {
		return nil, err
	}
	total := 0
	for _, w := range ws {
		total += len(w.Ms)
	}
	if want := len(owned.Load().keys); total != want {
		return nil, fmt.Errorf("coord: lease %s names %d keys but only %d are in the campaign workload (stale lease for a different inference?)",
			leasePath, want, total)
	}

	// Heartbeat state. The engine serializes OnProgress calls, but the
	// lease watcher appends yields concurrently, so writes go under mu —
	// which also keeps the atomic file rewrites ordered. Writes are
	// throttled to at least the poll interval (the coordinator reads no
	// faster) and back off as the done list grows — every flush rewrites
	// the cumulative list, so a fixed interval would make total
	// heartbeat I/O quadratic in the lease size; stretching the
	// interval with the list keeps it O(n log n). Landmark writes
	// (start, lease change, exit) always flush.
	var mu sync.Mutex
	var lastFlush time.Time
	flush := func(force bool) {
		now := time.Now()
		interval := opts.Poll * time.Duration(1+len(hb.Done)/512)
		if !force && now.Sub(lastFlush) < interval {
			return
		}
		lastFlush = now
		hb.UpdatedAt = now.UTC()
		_ = writeJSON(hbPath, hb) // advisory: the snapshot carries the real outcomes
	}
	mu.Lock()
	flush(true)
	mu.Unlock()

	// Lease watcher: pick up steals until the campaign returns.
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	var watcherDone sync.WaitGroup
	watcherDone.Add(1)
	go func() {
		defer watcherDone.Done()
		ticker := time.NewTicker(opts.Poll)
		defer ticker.Stop()
		for {
			select {
			case <-watchCtx.Done():
				return
			case <-ticker.C:
			}
			l, err := ReadLease(leasePath)
			if err != nil || l.Generation <= owned.Load().gen {
				continue // unreadable mid-write or not newer: retry next tick
			}
			owned.Store(&assignment{gen: l.Generation, keys: keySet(l.Keys)})
			mu.Lock()
			hb.Generation = l.Generation
			flush(true)
			mu.Unlock()
		}
	}()

	gopts := shard.Options{
		Workers: opts.Workers,
		Inject:  opts.Inject,
		Gate: func(system string, m confgen.Misconf) error {
			if owned.Load().keys[shard.GlobalKey(system, inject.CacheKey(m))] {
				return nil
			}
			mu.Lock()
			hb.Yielded = append(hb.Yielded, KeyRef{System: system, Key: inject.CacheKey(m)})
			flush(false)
			mu.Unlock()
			return inject.ErrYielded
		},
		OnProgress: func(p shard.Progress) {
			if !p.Failed { // yields and harness failures never persist
				mu.Lock()
				hb.Done = append(hb.Done, KeyRef{System: p.System, Key: p.Key})
				flush(false)
				mu.Unlock()
			}
			if opts.OnProgress != nil {
				opts.OnProgress(p)
			}
		},
	}

	runs, runErr := shard.CampaignAll(ctx, lock.Set(), ws, gopts)
	stopWatch()
	watcherDone.Wait()
	res.Runs = runs
	mu.Lock()
	res.Done, res.Yielded = len(hb.Done), len(hb.Yielded)
	flush(true)
	mu.Unlock()
	if runErr == nil {
		// A worker's snapshot is its only output: a per-system save
		// failure (non-fatal in the interactive driver, which at least
		// printed the report) must fail the worker, or the coordinator
		// would merge a silently incomplete store.
		for _, run := range runs {
			if run.Err != nil {
				return res, fmt.Errorf("coord: worker %d: %s snapshot not saved: %w",
					lease.Worker, run.Sys.Name(), run.Err)
			}
		}
	}
	return res, runErr
}
