package coord

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"spex/internal/campaignstore"
	"spex/internal/inject"
	"spex/internal/shard"
	"spex/internal/sim"
	"spex/internal/spex"
)

// DefaultStealMin is the K of the rebalance rule: a laggard is only
// robbed while more than this many of its keys are still pending, so
// the coordinator never churns leases over scraps that will drain
// before the thief even boots.
const DefaultStealMin = 8

// DefaultWorkerRetries is the spexinj -worker-retries default: respawn
// a worker that died on a harness error once before aborting the
// campaign — enough to ride out a transient failure (a lost SSH
// connection, an OOM-killed child) without looping forever on a
// deterministic one.
const DefaultWorkerRetries = 1

// Event is one coordinator lifecycle notification, streamed to
// Config.OnEvent (serialized; the CLI prints them to stderr, the
// daemon forwards them onto a job's SSE stream).
type Event struct {
	// Kind is "plan", "resume", "spawn", "exit", "retry", "steal", or
	// "merge".
	Kind string
	// Worker is the subject (the thief, for steals).
	Worker int
	// From is the steal victim (steals only).
	From int
	// Keys counts the keys involved: lease size on spawn, stolen count
	// on steal, merged outcomes on merge.
	Keys int
	// Attempt is the respawn attempt number (retries only): 1 for the
	// first retry, up to Config.WorkerRetries.
	Attempt int
	// Err is the worker's exit error, if any (exits and retries).
	Err error
}

// Handle is a launched worker: Wait blocks until it exits, Interrupt
// asks it to stop (SIGINT for processes, context cancellation for
// in-process workers) — the worker saves its finished outcomes on the
// way down.
type Handle interface {
	Wait() error
	Interrupt()
}

// WorkerSpec is everything a spawner needs to launch one worker.
type WorkerSpec struct {
	// Worker is the 1-based slot.
	Worker int
	// LeasePath is the worker's lease file (heartbeat path derives from
	// it, HeartbeatPath).
	LeasePath string
	// StateDir is the worker's private shard store.
	StateDir string
	// LogPath receives the worker's stdout/stderr (process spawners).
	LogPath string
}

// SpawnFunc launches one worker. ExecSpawner runs local child
// processes; an SSH or k8s launcher is the same contract with a
// different command template; tests run workers in-process.
type SpawnFunc func(ctx context.Context, spec WorkerSpec) (Handle, error)

// Config tunes one coordinated campaign.
type Config struct {
	// StateDir is the campaign state root: merged snapshots land here,
	// workers write under StateDir/shard<i>, coordination files under
	// StateDir/coord.
	StateDir string
	// Workers is the number of shard worker slots.
	Workers int
	// Systems are the campaign targets.
	Systems []sim.System
	// Inject holds the campaign options shared by every worker.
	Inject inject.Options
	// PoolWorkers bounds each worker's internal engine pool (0 = one
	// per CPU) and the coordinator's own inference fan-out.
	PoolWorkers int
	// StealMin is the rebalance threshold K: an idle worker steals only
	// from a laggard with more than K pending keys. Zero therefore
	// means "steal any non-empty backlog"; negative disables stealing
	// (static partition). Callers wanting the default pass
	// DefaultStealMin explicitly (the spexinj flag does).
	StealMin int
	// Poll is the heartbeat poll interval (default 250ms).
	Poll time.Duration
	// WorkerRetries bounds how many times a worker that exits with an
	// error (a crashed process, a harness failure — not a context
	// cancellation) is respawned on its unchanged lease before the
	// campaign aborts. Zero disables retries (the library default); the
	// spexinj -worker-retries flag defaults to DefaultWorkerRetries. A
	// retried worker replays its persisted outcomes from its shard
	// store and re-executes only what never saved, so a retry costs one
	// spawn, not a repeated partition.
	WorkerRetries int
	// Locks, when non-nil, is the state root's already-held write
	// capability (a whole-directory lock's Set, or per-system locks
	// covering every campaigned system) — the daemon (internal/server)
	// owns its namespace's locks for the job's lifetime and hands the
	// coordinator the handles instead of letting it take its own. The
	// set is also the write capability the final merge needs, so
	// "caller already locked" is no longer a boolean the coordinator has
	// to trust. Nil makes Run acquire (and release) its own
	// whole-directory lock. Workers still lock their own shard
	// directories either way.
	Locks *campaignstore.LockSet
	// Spawn launches workers (required).
	Spawn SpawnFunc
	// OnEvent, if set, streams lifecycle events (serialized).
	OnEvent func(Event)
}

// Result is a completed coordinated campaign.
type Result struct {
	// Stats describe the final merge into the state root, one entry per
	// system (shard.MergeStat includes the canonical fingerprint).
	Stats []shard.MergeStat
	// Steals counts rebalances performed.
	Steals int
	// Resumed reports that the run picked up persisted leases from an
	// interrupted campaign instead of re-planning.
	Resumed bool
	// Spawns counts worker launches (initial + post-steal respawns +
	// retries).
	Spawns int
	// Retries counts workers respawned after dying on an error
	// (Config.WorkerRetries).
	Retries int
}

// Run coordinates one distributed campaign end to end: plan (or resume)
// the leases, spawn the workers, watch heartbeats and rebalance by
// stealing, and merge the shard stores into the canonical store at the
// state root. See the package comment for the protocol.
func Run(ctx context.Context, cfg Config) (res *Result, err error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("coord: %d workers (want at least 1)", cfg.Workers)
	}
	if cfg.StateDir == "" || cfg.Spawn == nil || len(cfg.Systems) == 0 {
		return nil, errors.New("coord: StateDir, Spawn and Systems are required")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 250 * time.Millisecond
	}
	emit := func(e Event) {
		if cfg.OnEvent != nil {
			cfg.OnEvent(e)
		}
	}

	locks := cfg.Locks
	if locks == nil {
		root, openErr := campaignstore.Open(cfg.StateDir)
		if openErr != nil {
			return nil, openErr
		}
		owned, openErr := root.Lock()
		if openErr != nil {
			return nil, openErr
		}
		locks = owned.Set()
		// A failed release is a real error, not cleanup noise: if the
		// lock file could not be removed (and was not taken over), the
		// next campaign against this root will refuse to start until the
		// staleness window expires, so the caller must hear about it.
		defer func() {
			if uerr := owned.Unlock(); uerr != nil && err == nil {
				res, err = nil, fmt.Errorf("coord: releasing the state root lock: %w", uerr)
			}
		}()
	}
	coordDir := filepath.Join(cfg.StateDir, CoordDirName)
	if err := os.MkdirAll(coordDir, 0o755); err != nil {
		return nil, fmt.Errorf("coord: %w", err)
	}

	// The full workload, in the global scheduler's interleaved order —
	// the execution order leases inherit, which is what makes "steal a
	// suffix of the remaining keys" collide least with the laggard's
	// in-flight front.
	results, err := spex.InferAll(ctx, cfg.Systems, cfg.PoolWorkers)
	if err != nil {
		return nil, err
	}
	ws, _, err := shard.BuildWorkloads(cfg.Systems, results, shard.Plan{})
	if err != nil {
		return nil, err
	}
	sizes := make([]int, len(ws))
	for i, w := range ws {
		sizes[i] = len(w.Ms)
	}
	order := shard.Interleave(sizes)
	allKeys := make([]KeyRef, len(order))
	owners := make([]int, len(order)) // 0-based initial hash assignment
	for i, t := range order {
		m := ws[t.Target].Ms[t.Index]
		sys := ws[t.Target].Sys.Name()
		allKeys[i] = KeyRef{System: sys, Key: inject.CacheKey(m)}
		owners[i] = shard.Owner(sys, m, cfg.Workers)
	}

	man := &manifest{
		Workers: cfg.Workers,
		Schema:  campaignstore.SchemaFingerprint(),
		Options: campaignstore.OptionsID(cfg.Inject),
		Systems: make(map[string]string, len(ws)),
	}
	for _, w := range ws {
		man.Systems[w.Sys.Name()] = w.Set.Fingerprint()
	}
	leases, resumed, err := planOrResume(coordDir, man, allKeys, owners)
	if err != nil {
		return nil, err
	}
	if resumed {
		emit(Event{Kind: "resume", Keys: len(allKeys)})
	} else {
		emit(Event{Kind: "plan", Keys: len(allKeys)})
	}

	type exitMsg struct {
		worker int // 0-based
		err    error
	}
	exitCh := make(chan exitMsg)
	type workerState struct {
		lease   *Lease
		handle  Handle
		running bool
		retries int
	}
	states := make([]*workerState, cfg.Workers)
	for i := range states {
		states[i] = &workerState{lease: leases[i]}
	}
	res = &Result{Resumed: resumed}
	running := 0
	spawn := func(i int) error {
		// A select with a ready ctx.Done case can still pick another
		// ready branch, so a cancelled coordinator could otherwise keep
		// respawning thieves on its way down; every spawn re-checks.
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		spec := WorkerSpec{
			Worker:    i + 1,
			LeasePath: LeasePath(coordDir, i+1),
			StateDir:  ShardDir(cfg.StateDir, i+1),
			LogPath:   filepath.Join(coordDir, fmt.Sprintf("worker%d.log", i+1)),
		}
		h, err := cfg.Spawn(ctx, spec)
		if err != nil {
			return fmt.Errorf("coord: spawn worker %d: %w", i+1, err)
		}
		states[i].handle = h
		states[i].running = true
		running++
		res.Spawns++
		mSpawns.Inc()
		mWorkersRunning.Add(1)
		emit(Event{Kind: "spawn", Worker: i + 1, Keys: len(states[i].lease.Keys)})
		go func() { exitCh <- exitMsg{worker: i, err: h.Wait()} }()
		return nil
	}
	// abort is the one shutdown path: interrupt every running worker
	// (each saves its finished outcomes on the way down), wait for all
	// exit messages so no spawn goroutine is left blocked on exitCh,
	// and surface err.
	abort := func(err error) (*Result, error) {
		for _, st := range states {
			if st.running {
				st.handle.Interrupt()
			}
		}
		for running > 0 {
			m := <-exitCh
			states[m.worker].running = false
			running--
			mWorkersRunning.Add(-1)
		}
		return nil, err
	}

	// trySteal rebalances one idle worker (0-based thief): pick the
	// running laggard with the most pending keys; if more than StealMin
	// are pending, move half of them — the deterministic suffix of the
	// laggard's remaining assignment — to the thief and respawn it.
	// "Pending" means keys that will cost the laggard fresh simulation:
	// keys its heartbeat reports done AND keys already persisted in its
	// shard store (a resumed worker replays those at zero cost — a
	// thief would have to re-execute them) are both off the table.
	// Thief lease first, then the laggard shrink: a crash between the
	// writes leaves the stolen keys in two leases (safe, merged
	// freshest-wins), never in none.
	trySteal := func(thief int) (bool, error) {
		if cfg.StealMin < 0 {
			return false, nil
		}
		victim, best := -1, cfg.StealMin
		var victimRemaining []KeyRef
		for j, st := range states {
			if !st.running || j == thief {
				continue
			}
			hb, err := ReadHeartbeat(HeartbeatPath(LeasePath(coordDir, j+1)))
			if err != nil {
				continue // torn write: next tick
			}
			mHeartbeatLag.Set(time.Since(hb.UpdatedAt).Seconds())
			done := keySet(hb.Done)
			var remaining []KeyRef
			for _, k := range st.lease.Keys {
				if !done[k.Global()] {
					remaining = append(remaining, k)
				}
			}
			if len(remaining) <= best {
				continue // below threshold on heartbeat evidence alone
			}
			// Only now pay for parsing the worker's shard store: a
			// resumed worker's persisted outcomes replay for free and
			// must not count as stealable backlog.
			if persisted := persistedKeys(ShardDir(cfg.StateDir, j+1)); len(persisted) > 0 {
				fresh := remaining[:0]
				for _, k := range remaining {
					if !persisted[k.Global()] {
						fresh = append(fresh, k)
					}
				}
				remaining = fresh
			}
			if len(remaining) > best {
				victim, best, victimRemaining = j, len(remaining), remaining
			}
		}
		if victim < 0 {
			return false, nil
		}
		stolen := victimRemaining[len(victimRemaining)-len(victimRemaining)/2:]
		if len(stolen) == 0 {
			// A single pending key halves to nothing (StealMin 0):
			// rewriting both leases unchanged and respawning the thief
			// would be pure churn, not a steal.
			return false, nil
		}
		stolenSet := keySet(stolen)

		// The thief keeps its old keys (all done — they replay from its
		// shard snapshot in the respawned run, and keeping them is what
		// preserves the every-key-is-leased invariant across crashes).
		tl := states[thief].lease
		newThief := &Lease{Worker: thief + 1, Generation: tl.Generation + 1, Keys: append(append([]KeyRef{}, tl.Keys...), stolen...)}
		if err := writeJSON(LeasePath(coordDir, thief+1), newThief); err != nil {
			return false, err
		}
		states[thief].lease = newThief

		vl := states[victim].lease
		kept := make([]KeyRef, 0, len(vl.Keys)-len(stolen))
		for _, k := range vl.Keys {
			if !stolenSet[k.Global()] {
				kept = append(kept, k)
			}
		}
		newVictim := &Lease{Worker: victim + 1, Generation: vl.Generation + 1, Keys: kept}
		if err := writeJSON(LeasePath(coordDir, victim+1), newVictim); err != nil {
			return false, err
		}
		states[victim].lease = newVictim

		res.Steals++
		mSteals.Inc()
		mStolenKeys.Add(uint64(len(stolen)))
		emit(Event{Kind: "steal", Worker: thief + 1, From: victim + 1, Keys: len(stolen)})
		return true, nil
	}

	// stealAndRespawn gives one idle worker a chance to rob a laggard
	// and, on success, puts it back to work.
	stealAndRespawn := func(thief int) error {
		stole, err := trySteal(thief)
		if err != nil {
			return err
		}
		if stole {
			return spawn(thief)
		}
		return nil
	}

	for i := range states {
		if len(states[i].lease.Keys) == 0 {
			continue // nothing assigned yet; eligible as a thief
		}
		if err := spawn(i); err != nil {
			return abort(err)
		}
	}

	ticker := time.NewTicker(cfg.Poll)
	defer ticker.Stop()
	for running > 0 {
		select {
		case <-ctx.Done():
			return abort(ctx.Err())
		case m := <-exitCh:
			st := states[m.worker]
			st.running = false
			running--
			mWorkersRunning.Add(-1)
			emit(Event{Kind: "exit", Worker: m.worker + 1, Err: m.err})
			if m.err != nil {
				if ctx.Err() != nil {
					return abort(ctx.Err())
				}
				// Bounded respawn before aborting the merge: the retried
				// worker resumes on its unchanged lease, replaying the
				// outcomes its shard store already persisted — a retry
				// costs one spawn, never duplicated fresh simulation.
				if st.retries < cfg.WorkerRetries {
					st.retries++
					res.Retries++
					mRetries.Inc()
					emit(Event{Kind: "retry", Worker: m.worker + 1,
						Keys: len(st.lease.Keys), Attempt: st.retries, Err: m.err})
					if err := spawn(m.worker); err != nil {
						return abort(err)
					}
					continue
				}
				return abort(fmt.Errorf("coord: worker %d failed: %w", m.worker+1, m.err))
			}
			if err := stealAndRespawn(m.worker); err != nil {
				return abort(err)
			}
		case <-ticker.C:
			// Idle workers that exited before earlier laggards built up
			// enough backlog get another look every tick.
			for i, st := range states {
				if st.running {
					continue
				}
				if err := stealAndRespawn(i); err != nil {
					return abort(err)
				}
			}
		}
	}

	// Merge the shard stores into the canonical store at the root. A
	// worker that never spawned has no directory; one that spawned but
	// saved nothing has no snapshots — neither can contribute. The
	// store itself decides what counts as a snapshot (List), so the
	// file-naming contract stays in campaignstore.
	var dirs []string
	for i := 1; i <= cfg.Workers; i++ {
		dir := ShardDir(cfg.StateDir, i)
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			continue // Open would create the directory as a side effect
		}
		store, err := campaignstore.Open(dir)
		if err != nil {
			continue
		}
		if systems, err := store.List(); err == nil && len(systems) > 0 {
			dirs = append(dirs, dir)
		}
	}
	if len(dirs) == 0 {
		return nil, errors.New("coord: no worker produced a shard snapshot")
	}
	stats, err := shard.Merge(locks, dirs)
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	merged := 0
	for _, st := range stats {
		merged += st.Outcomes
	}
	emit(Event{Kind: "merge", Keys: merged})
	return res, nil
}

// persistedKeys returns the global keys with outcomes recorded in a
// worker's shard store — work the worker can replay for free, which a
// steal must therefore never move. An unreadable or not-yet-existing
// store contributes nothing (the steal policy just sees more pending
// keys, which only costs a rare duplicate execution, already safe).
func persistedKeys(dir string) map[string]bool {
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return nil // Open would create the directory as a side effect
	}
	store, err := campaignstore.Open(dir)
	if err != nil {
		return nil
	}
	snaps, err := store.LoadAll()
	if err != nil {
		return nil
	}
	keys := make(map[string]bool)
	for _, snap := range snaps {
		for key := range snap.Outcomes {
			keys[shard.GlobalKey(snap.System, key)] = true
		}
	}
	return keys
}

// planOrResume decides the initial leases: if the coordination
// directory holds a manifest matching this campaign's identity and a
// complete, workload-covering lease set, the persisted leases are
// resumed (an interrupted run's workers replay their finished outcomes
// and execute only the rest); on any mismatch the directory is
// re-planned from the deterministic hash partition.
func planOrResume(coordDir string, man *manifest, allKeys []KeyRef, owners []int) ([]*Lease, bool, error) {
	if leases, ok := resumable(coordDir, man, allKeys); ok {
		return leases, true, nil
	}
	// Fresh plan: wipe stale coordination state (old leases, heartbeats
	// and logs from a different campaign), then partition.
	entries, err := os.ReadDir(coordDir)
	if err != nil {
		return nil, false, fmt.Errorf("coord: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() && (strings.HasSuffix(e.Name(), ".json") || strings.HasSuffix(e.Name(), ".log")) {
			// Not best-effort: a stale lease that survives the wipe would
			// be read back by the next resumable() check — or worse, by a
			// worker — as live coordination state for a different
			// campaign.
			if err := os.Remove(filepath.Join(coordDir, e.Name())); err != nil && !errors.Is(err, os.ErrNotExist) {
				return nil, false, fmt.Errorf("coord: wiping stale coordination state: %w", err)
			}
		}
	}
	leases := make([]*Lease, man.Workers)
	for i := range leases {
		leases[i] = &Lease{Worker: i + 1, Generation: 1}
	}
	for i, k := range allKeys {
		l := leases[owners[i]]
		l.Keys = append(l.Keys, k)
	}
	for i, l := range leases {
		if err := writeJSON(LeasePath(coordDir, i+1), l); err != nil {
			return nil, false, err
		}
	}
	// The manifest lands last: its presence marks the lease set valid.
	if err := writeJSON(filepath.Join(coordDir, "manifest.json"), man); err != nil {
		return nil, false, err
	}
	return leases, false, nil
}

// resumable validates persisted coordination state against this run's
// campaign identity: same manifest, every lease readable, and the lease
// union covering exactly the workload's keys (overlap from a steal
// interrupted between its two writes is allowed — duplicate execution
// is safe — but a missing or foreign key is not).
func resumable(coordDir string, man *manifest, allKeys []KeyRef) ([]*Lease, bool) {
	var prev manifest
	if err := readJSON(filepath.Join(coordDir, "manifest.json"), &prev); err != nil {
		return nil, false
	}
	if prev.Workers != man.Workers || prev.Schema != man.Schema || prev.Options != man.Options {
		return nil, false
	}
	if len(prev.Systems) != len(man.Systems) {
		return nil, false
	}
	for name, fp := range man.Systems {
		if prev.Systems[name] != fp {
			return nil, false
		}
	}
	leases := make([]*Lease, man.Workers)
	leased := make(map[string]bool)
	for i := range leases {
		l, err := ReadLease(LeasePath(coordDir, i+1))
		if err != nil || l.Worker != i+1 {
			return nil, false
		}
		leases[i] = l
		for _, k := range l.Keys {
			leased[k.Global()] = true
		}
	}
	want := keySet(allKeys)
	if len(leased) != len(want) {
		return nil, false
	}
	for k := range want {
		if !leased[k] {
			return nil, false
		}
	}
	return leases, true
}

// ExpandArgv renders a worker command template for one worker: every
// element of argv is copied with the placeholders {lease}, {state},
// and {worker} expanded from the spec. This is the whole contract
// between a spawn template (the spexinj -spawn flag, the daemon's
// spawn option) and the coordinator — an SSH preset is just a template
// whose first words are the ssh invocation, e.g.
//
//	ssh worker{worker}.cluster.example spexinj
//	    -lease {lease} -state {state} -all
//
// which expands for worker 2 to
//
//	ssh worker2.cluster.example spexinj
//	    -lease <state>/coord/worker2.lease.json -state <state>/shard2 -all
//
// The lease, heartbeat, and shard-store paths are plain files, so the
// only infrastructure an SSH fleet needs is the state directory on a
// shared filesystem.
func ExpandArgv(argv []string, spec WorkerSpec) []string {
	args := make([]string, len(argv))
	for i, a := range argv {
		a = strings.ReplaceAll(a, "{lease}", spec.LeasePath)
		a = strings.ReplaceAll(a, "{state}", spec.StateDir)
		a = strings.ReplaceAll(a, "{worker}", fmt.Sprint(spec.Worker))
		args[i] = a
	}
	return args
}

// ExecSpawner returns a SpawnFunc launching each worker as a local
// child process from a command template: every element of argv is
// expanded per worker (ExpandArgv), and the child's stdout/stderr
// stream to the worker's log file under the coordination directory.
// The default template (built by `spexinj -coordinate`) re-executes
// spexinj itself in lease mode; pointing the template at ssh or
// kubectl (the -spawn flag) distributes the same protocol across
// machines — the lease, heartbeat and shard stores just have to live
// on a shared filesystem.
func ExecSpawner(argv []string) SpawnFunc {
	return func(ctx context.Context, spec WorkerSpec) (Handle, error) {
		if len(argv) == 0 {
			return nil, errors.New("coord: empty worker command template")
		}
		args := ExpandArgv(argv, spec)
		// Deliberately not CommandContext: context cancellation must
		// reach the child as an interrupt (so it saves its snapshot),
		// never as a kill. The coordinator's Interrupt does that.
		//spexlint:ignore ctxflow cancellation is delivered as SIGINT via Handle.Interrupt, not SIGKILL
		cmd := exec.Command(args[0], args[1:]...)
		logf, err := os.OpenFile(spec.LogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("coord: %w", err)
		}
		cmd.Stdout, cmd.Stderr = logf, logf
		if err := cmd.Start(); err != nil {
			logf.Close()
			return nil, fmt.Errorf("coord: %w", err)
		}
		return &execHandle{cmd: cmd, log: logf}, nil
	}
}

type execHandle struct {
	cmd *exec.Cmd
	log *os.File
}

func (h *execHandle) Wait() error {
	err := h.cmd.Wait()
	h.log.Close()
	return err
}

func (h *execHandle) Interrupt() {
	if h.cmd.Process != nil {
		_ = h.cmd.Process.Signal(os.Interrupt)
	}
}
