package coord

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"spex/internal/campaignstore"
	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/inject"
	"spex/internal/shard"
	"spex/internal/sim"
	"spex/internal/spex"
	"spex/internal/targets/ldapd"
	"spex/internal/targets/mydb"
)

// resultSink collects the WorkerResults of in-process workers.
type resultSink struct {
	mu   sync.Mutex
	runs []*WorkerResult
}

func (s *resultSink) add(r *WorkerResult) {
	s.mu.Lock()
	s.runs = append(s.runs, r)
	s.mu.Unlock()
}

// executed sums the outcomes the collected runs freshly executed
// (finished minus replayed) — the metric the zero-duplication
// assertions are about.
func (s *resultSink) executed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, wr := range s.runs {
		for _, run := range wr.Runs {
			n += run.Report.Finished() - run.Report.Replayed
		}
	}
	return n
}

// inprocSpawner runs workers as goroutines calling RunWorker — the
// test and benchmark backend. tune customizes one worker's options
// (e.g. a per-worker SimCostDelay modeling a slow machine).
func inprocSpawner(systems []sim.System, base WorkerOptions, tune func(worker int, o *WorkerOptions), sink *resultSink) SpawnFunc {
	return func(ctx context.Context, spec WorkerSpec) (Handle, error) {
		o := base
		if tune != nil {
			tune(spec.Worker, &o)
		}
		wctx, cancel := context.WithCancel(ctx)
		done := make(chan error, 1)
		go func() {
			res, err := RunWorker(wctx, spec.LeasePath, spec.StateDir, systems, o)
			if sink != nil && res != nil {
				sink.add(res)
			}
			done <- err
		}()
		return &inprocHandle{cancel: cancel, done: done}, nil
	}
}

type inprocHandle struct {
	cancel context.CancelFunc
	done   chan error
}

func (h *inprocHandle) Wait() error { return <-h.done }
func (h *inprocHandle) Interrupt()  { h.cancel() }

// campaignOf infers a system and generates its full misconfiguration
// list — the coordinator's and the baselines' shared input.
func campaignOf(t testing.TB, sys sim.System) shard.Workload {
	t.Helper()
	res, err := spex.InferSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := conffile.Parse(sys.DefaultConfig(), sys.Syntax())
	if err != nil {
		t.Fatal(err)
	}
	return shard.Workload{Sys: sys, Set: res.Set, Ms: confgen.NewRegistry().Generate(res.Set, tmpl)}
}

// unshardedFingerprint runs the plain store-backed campaign and returns
// the canonical snapshot fingerprint a coordinated run must reproduce.
func unshardedFingerprint(t testing.TB, w shard.Workload) string {
	t.Helper()
	store, err := campaignstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	lk, err := store.Lock()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.CampaignAll(context.Background(), lk.Set(), []shard.Workload{w},
		shard.Options{Workers: 4, Inject: inject.DefaultOptions()}); err != nil {
		t.Fatal(err)
	}
	if err := lk.Unlock(); err != nil {
		t.Fatal(err)
	}
	snap, err := store.Load(w.Sys.Name())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := snap.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func testConfig(stateDir string, systems []sim.System, spawn SpawnFunc) Config {
	return Config{
		StateDir:    stateDir,
		Workers:     2,
		Systems:     systems,
		Inject:      inject.DefaultOptions(),
		PoolWorkers: 2,
		StealMin:    2,
		Poll:        10 * time.Millisecond,
		Spawn:       spawn,
	}
}

// TestCoordinatorMatchesUnsharded is the acceptance criterion's first
// half: a coordinated run's merged store fingerprint equals the
// unsharded run's, and a subsequent plain -state run replays 100% of
// it at zero fresh cost.
func TestCoordinatorMatchesUnsharded(t *testing.T) {
	sys := ldapd.New()
	w := campaignOf(t, sys)
	want := unshardedFingerprint(t, w)

	stateDir := t.TempDir()
	systems := []sim.System{sys}
	cfg := testConfig(stateDir, systems, inprocSpawner(systems, WorkerOptions{Workers: 2, Inject: inject.DefaultOptions(), Poll: 10 * time.Millisecond}, nil, nil))
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 1 || res.Stats[0].Outcomes != len(w.Ms) {
		t.Fatalf("merge stats = %+v, want %d outcomes for one system", res.Stats, len(w.Ms))
	}
	if res.Stats[0].Fingerprint != want {
		t.Errorf("coordinated store fingerprint %s != unsharded %s", res.Stats[0].Fingerprint, want)
	}

	// The merged root must replay byte-identically, with zero fresh work.
	root, err := campaignstore.Open(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	rootLock, err := root.Lock()
	if err != nil {
		t.Fatal(err)
	}
	defer rootLock.Unlock()
	runs, err := shard.CampaignAll(context.Background(), rootLock.Set(), []shard.Workload{w},
		shard.Options{Workers: 4, Inject: inject.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if got := runs[0].Report.Replayed; got != len(w.Ms) {
		t.Errorf("replay after coordination executed work: replayed %d of %d", got, len(w.Ms))
	}
}

// TestWorkStealingRebalances models a heterogeneous fleet (worker 1 on
// a machine 60x slower per simulated cost unit): the fast worker must
// drain, steal a suffix of the laggard's lease, and the merged result
// must still be byte-identical to the unsharded campaign — stealing
// moves work, never changes outcomes.
func TestWorkStealingRebalances(t *testing.T) {
	sys := ldapd.New()
	w := campaignOf(t, sys)
	want := unshardedFingerprint(t, w)

	stateDir := t.TempDir()
	systems := []sim.System{sys}
	base := WorkerOptions{Workers: 1, Inject: inject.DefaultOptions(), Poll: 5 * time.Millisecond}
	tune := func(worker int, o *WorkerOptions) {
		if worker == 1 {
			o.Inject.SimCostDelay = 3 * time.Millisecond
		} else {
			o.Inject.SimCostDelay = 50 * time.Microsecond
		}
	}
	var events []Event
	var mu sync.Mutex
	cfg := testConfig(stateDir, systems, inprocSpawner(systems, base, tune, nil))
	cfg.Poll = 5 * time.Millisecond
	cfg.OnEvent = func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steals == 0 {
		t.Error("no steal despite a 60x-skewed worker (the rebalance never engaged)")
	}
	if res.Stats[0].Fingerprint != want {
		t.Errorf("fingerprint after stealing %s != unsharded %s", res.Stats[0].Fingerprint, want)
	}
	// Every steal must have respawned the thief.
	if res.Spawns < 2+res.Steals {
		t.Errorf("%d spawns for %d steals (thieves not relaunched)", res.Spawns, res.Steals)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, e := range events {
		if e.Kind == "steal" && e.Keys == 0 {
			t.Errorf("steal event moved zero keys: %+v", e)
		}
	}
}

// TestCoordinatorCancelMidSteal is the cancellation satellite: SIGINT
// (modeled as context cancellation) lands exactly when the first steal
// fires. Afterwards every lease key must be either persisted in its
// owner's shard store or still pending, the lease union must cover the
// whole campaign, and a rerun must resume from the leases re-executing
// only what was never persisted — zero duplicated fresh sim cost.
func TestCoordinatorCancelMidSteal(t *testing.T) {
	sys := ldapd.New()
	w := campaignOf(t, sys)
	total := len(w.Ms)
	allKeys := make(map[string]bool, total)
	for _, m := range w.Ms {
		allKeys[shard.GlobalKey(sys.Name(), inject.CacheKey(m))] = true
	}

	stateDir := t.TempDir()
	systems := []sim.System{sys}
	base := WorkerOptions{Workers: 1, Inject: inject.DefaultOptions(), Poll: 5 * time.Millisecond}
	tune := func(worker int, o *WorkerOptions) {
		if worker == 1 {
			o.Inject.SimCostDelay = 3 * time.Millisecond
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := testConfig(stateDir, systems, inprocSpawner(systems, base, tune, nil))
	cfg.Poll = 5 * time.Millisecond
	cfg.OnEvent = func(e Event) {
		if e.Kind == "steal" {
			cancel() // SIGINT lands mid-steal
		}
	}
	_, err := Run(ctx, cfg)
	if err == nil {
		t.Fatal("cancelled coordinator returned nil error (steal never fired?)")
	}

	// Invariant 1: the lease union covers the campaign exactly (overlap
	// from the interrupted steal is allowed, gaps are not).
	coordDir := filepath.Join(stateDir, CoordDirName)
	leased := make(map[string]int)
	var leases []*Lease
	for i := 1; i <= cfg.Workers; i++ {
		lease, err := ReadLease(LeasePath(coordDir, i))
		if err != nil {
			t.Fatalf("worker %d lease: %v", i, err)
		}
		leases = append(leases, lease)
		for _, k := range lease.Keys {
			if !allKeys[k.Global()] {
				t.Errorf("worker %d leases foreign key %q", i, k.Key)
			}
			leased[k.Global()]++
		}
	}
	if len(leased) != total {
		t.Fatalf("leases cover %d keys, want the campaign's %d", len(leased), total)
	}
	// Invariant 2: every persisted outcome is still owned by some lease
	// — a lease is "released" only by moving its keys to another lease,
	// never by dropping them — so a resumed campaign replays it.
	persisted := make(map[string]bool)
	for i := 1; i <= cfg.Workers; i++ {
		store, err := campaignstore.Open(ShardDir(stateDir, i))
		if err != nil {
			t.Fatal(err)
		}
		snaps, _ := store.LoadAll()
		own := make(map[string]bool)
		for _, snap := range snaps {
			for key := range snap.Outcomes {
				g := shard.GlobalKey(snap.System, key)
				own[g] = true
				persisted[g] = true
				if leased[g] == 0 {
					t.Errorf("worker %d persisted %q but no lease owns it", i, g)
				}
			}
		}
		done := 0
		for _, k := range leases[i-1].Keys {
			if own[k.Global()] {
				done++
			}
		}
		t.Logf("worker %d: %d leased, %d of them persisted locally", i, len(leases[i-1].Keys), done)
	}
	if len(persisted) == 0 || len(persisted) == total {
		t.Fatalf("persisted %d of %d outcomes — the cancellation landed outside the interesting window", len(persisted), total)
	}

	// Rerun: resume must replay every persisted outcome and execute
	// exactly the remainder — zero duplicated fresh sim cost. Stealing
	// is disabled for the rerun so the count isolates the resume
	// property: a steal can legitimately duplicate an in-flight or
	// heartbeat-lagged key (safe under freshest-wins), which is a
	// different phenomenon than resume duplication.
	sink := &resultSink{}
	cfg2 := testConfig(stateDir, systems, inprocSpawner(systems, base, nil, sink))
	cfg2.StealMin = -1
	res, err := Run(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Error("rerun re-planned instead of resuming the persisted leases")
	}
	if got, want := sink.executed(), total-len(persisted); got != want {
		t.Errorf("rerun executed %d misconfigurations, want %d (persisted outcomes must replay, not re-execute)", got, want)
	}
	fp := unshardedFingerprint(t, w)
	if res.Stats[0].Fingerprint != fp {
		t.Errorf("resumed fingerprint %s != unsharded %s", res.Stats[0].Fingerprint, fp)
	}
}

// TestCoordinatorReplanOnIdentityChange: a manifest that no longer
// matches (different worker count here) must trigger a fresh plan, not
// a resume against incompatible leases.
func TestCoordinatorReplanOnIdentityChange(t *testing.T) {
	sys := ldapd.New()
	systems := []sim.System{sys}
	stateDir := t.TempDir()
	opts := WorkerOptions{Workers: 2, Inject: inject.DefaultOptions(), Poll: 10 * time.Millisecond}
	cfg := testConfig(stateDir, systems, inprocSpawner(systems, opts, nil, nil))
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	cfg3 := testConfig(stateDir, systems, inprocSpawner(systems, opts, nil, nil))
	cfg3.Workers = 3
	res, err := Run(context.Background(), cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed {
		t.Error("a 3-worker run resumed a 2-worker manifest")
	}
	w := campaignOf(t, sys)
	if res.Stats[0].Fingerprint != unshardedFingerprint(t, w) {
		t.Error("re-planned run diverged from the unsharded fingerprint")
	}
}

// BenchmarkWorkStealing measures the tentpole claim: under a skewed
// SimCostDelay workload (worker 1 models a machine 20x slower per cost
// unit), the static i/N hash partition's wall clock is set by the slow
// shard, while the work-stealing rebalance moves the laggard's suffix
// to the drained fast worker. "static" disables stealing (StealMin<0),
// "steal" enables it; everything else is identical, so the wall-clock
// gap is the rebalance's win.
func BenchmarkWorkStealing(b *testing.B) {
	sys := mydb.New()
	systems := []sim.System{sys}
	base := WorkerOptions{Workers: 1, Inject: inject.DefaultOptions(), Poll: 2 * time.Millisecond}
	tune := func(worker int, o *WorkerOptions) {
		if worker == 1 {
			o.Inject.SimCostDelay = 2 * time.Millisecond
		} else {
			o.Inject.SimCostDelay = 100 * time.Microsecond
		}
	}
	for _, mode := range []struct {
		name     string
		stealMin int
	}{{"static", -1}, {"steal", 2}} {
		b.Run(mode.name, func(b *testing.B) {
			steals := 0
			for i := 0; i < b.N; i++ {
				stateDir := b.TempDir()
				cfg := testConfig(stateDir, systems, inprocSpawner(systems, base, tune, nil))
				cfg.StealMin = mode.stealMin
				cfg.Poll = 2 * time.Millisecond
				res, err := Run(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				steals = res.Steals
			}
			b.ReportMetric(float64(steals), "steals")
		})
	}
}

// TestExecSpawnerTemplate checks the placeholder expansion contract the
// CLI template relies on (the process itself is exercised by the CI
// coordinator smoke).
func TestExecSpawnerTemplate(t *testing.T) {
	dir := t.TempDir()
	spec := WorkerSpec{Worker: 3, LeasePath: "/l/worker3.lease.json", StateDir: "/s/shard3",
		LogPath: filepath.Join(dir, "w.log")}
	spawn := ExecSpawner([]string{"/bin/sh", "-c", "echo {worker} {lease} {state}"})
	h, err := spawn(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(spec.LogPath)
	if err != nil {
		t.Fatal(err)
	}
	if want := "3 /l/worker3.lease.json /s/shard3\n"; string(data) != want {
		t.Errorf("expanded template output %q, want %q", data, want)
	}
}

// TestExpandArgvSSHPreset renders the documented SSH spawn preset (the
// spexinj -spawn template) for one worker and asserts the exact
// command line — the unit-test half of the SSH story; no live SSH runs
// in CI.
func TestExpandArgvSSHPreset(t *testing.T) {
	spec := WorkerSpec{
		Worker:    2,
		LeasePath: "/var/lib/spex/coord/worker2.lease.json",
		StateDir:  "/var/lib/spex/shard2",
	}
	argv := []string{
		"ssh", "worker{worker}.cluster.example", "spexinj",
		"-lease", "{lease}", "-state", "{state}", "-all",
	}
	got := ExpandArgv(argv, spec)
	want := []string{
		"ssh", "worker2.cluster.example", "spexinj",
		"-lease", "/var/lib/spex/coord/worker2.lease.json",
		"-state", "/var/lib/spex/shard2", "-all",
	}
	if len(got) != len(want) {
		t.Fatalf("ExpandArgv rendered %d words, want %d: %q", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("argv[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// The template itself must be left untouched (per-worker expansion
	// reuses it).
	if argv[1] != "worker{worker}.cluster.example" {
		t.Errorf("ExpandArgv mutated the template: %q", argv[1])
	}
}

// failOnceSpawner wraps a SpawnFunc, making the first launch of one
// worker slot die immediately with an error — the harness-failure
// respawn scenario of Config.WorkerRetries.
type failOnceSpawner struct {
	mu     sync.Mutex
	inner  SpawnFunc
	worker int
	failed bool
}

type deadHandle struct{ err error }

func (h *deadHandle) Wait() error { return h.err }
func (h *deadHandle) Interrupt()  {}

func (s *failOnceSpawner) spawn(ctx context.Context, spec WorkerSpec) (Handle, error) {
	s.mu.Lock()
	fail := spec.Worker == s.worker && !s.failed
	if fail {
		s.failed = true
	}
	s.mu.Unlock()
	if fail {
		return &deadHandle{err: context.DeadlineExceeded}, nil
	}
	return s.inner(ctx, spec)
}

// TestWorkerRetryRespawnsFailedWorker: a worker that dies on an error
// is respawned on its unchanged lease (up to Config.WorkerRetries) and
// the campaign completes with the canonical fingerprint — the ROADMAP
// follow-on from the work-stealing coordinator.
func TestWorkerRetryRespawnsFailedWorker(t *testing.T) {
	sys := ldapd.New()
	w := campaignOf(t, sys)
	want := unshardedFingerprint(t, w)

	stateDir := t.TempDir()
	systems := []sim.System{sys}
	inner := inprocSpawner(systems, WorkerOptions{Workers: 2, Inject: inject.DefaultOptions(), Poll: 10 * time.Millisecond}, nil, nil)
	failer := &failOnceSpawner{inner: inner, worker: 1}

	var mu sync.Mutex
	var retries []Event
	cfg := testConfig(stateDir, systems, failer.spawn)
	cfg.WorkerRetries = DefaultWorkerRetries
	cfg.OnEvent = func(e Event) {
		if e.Kind == "retry" {
			mu.Lock()
			retries = append(retries, e)
			mu.Unlock()
		}
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 1 || len(retries) != 1 {
		t.Fatalf("res.Retries=%d, retry events=%d, want exactly 1", res.Retries, len(retries))
	}
	if retries[0].Worker != 1 || retries[0].Attempt != 1 || retries[0].Err == nil {
		t.Errorf("retry event = %+v, want worker 1 attempt 1 with the exit error", retries[0])
	}
	if len(res.Stats) != 1 || res.Stats[0].Fingerprint != want {
		t.Errorf("retried campaign fingerprint %+v, want unsharded %s", res.Stats, want)
	}
}

// TestWorkerRetryExhaustedAborts: with retries exhausted the campaign
// must abort with the worker's error, not merge an incomplete store.
func TestWorkerRetryExhaustedAborts(t *testing.T) {
	sys := ldapd.New()
	_ = campaignOf(t, sys) // warm the inference caches like the other tests

	stateDir := t.TempDir()
	systems := []sim.System{sys}
	inner := inprocSpawner(systems, WorkerOptions{Workers: 2, Inject: inject.DefaultOptions(), Poll: 10 * time.Millisecond}, nil, nil)
	failer := &failOnceSpawner{inner: inner, worker: 1}

	cfg := testConfig(stateDir, systems, failer.spawn)
	cfg.WorkerRetries = 0 // library default: no retries
	_, err := Run(context.Background(), cfg)
	if err == nil {
		t.Fatal("coordinator merged despite a dead worker and no retries")
	}
}
