// Package analysis is a self-contained static-analysis framework in
// the style of golang.org/x/tools/go/analysis, built only on the
// standard library's go/ast, go/types and go/importer: the repo vendors
// no dependencies, so the checker suite (cmd/spexlint) carries its own
// driver. Three drivers share the analyzers:
//
//   - Load (load.go) type-checks packages via `go list -export` and
//     powers the standalone `spexlint ./...` mode, the analysistest
//     fixture harness, and the repo-wide cleanliness test;
//   - Main (unit.go) speaks cmd/go's unitchecker .cfg protocol, which
//     is what `go vet -vettool=$(which spexlint) ./...` invokes;
//   - analysistest runs one analyzer over a testdata fixture tree and
//     diffs the diagnostics against `// want` comments.
//
// # Checked invariants
//
// The five analyzers encode the repo's cross-cutting contracts — the
// rules that hold the concurrency and persistence design together but
// that neither the compiler nor the race detector can see:
//
// lockcontract enforces the campaignstore writer-lock ownership model.
// A (*Store).Lock call must be paired with an Unlock in the same
// function (directly or deferred) or the handle must escape to a
// caller that owns the release; a second Lock on the same store
// without an intervening Unlock is flagged; Lock may never be called
// inside an http.Handler-shaped function (the daemon's read path is
// lock-free by design — snapshots and the outcome index serve reads)
// nor inside a shard.Progress or coord.Event callback (those run on
// the scheduler's emit path, under the campaign the lock protects);
// and the ".spex.lock" file name may not be spelled outside
// campaignstore — foreign code goes through campaignstore.LockPath.
// The refactor that makes this checkable at all is in the types:
// (*Lock).Save and (*Lock).NewStreamWriter are the only snapshot-write
// capability, so "writes happen under the lock" is a compile-time
// fact and only the acquisition discipline is left to the analyzer.
//
// ctxflow enforces context threading. context.Background and
// context.TODO are banned outside package main and _test.go files
// (every long-running entry point takes a caller context); and a
// function that receives a context.Context must not call the
// context-free variant of an API that has a context-aware one —
// time.Sleep, exec.Command, net/http's Get/Post/Head/PostForm,
// inject.Run, sim.MonitorStart — because each of those silently drops
// the cancellation the caller was promised.
//
// fingerprintpurity guards the snapshot fingerprint and the
// .campaign.idx stat-validation chain. Code feeding a fingerprint or
// index sink (SnapshotEncoder.Add, StreamWriter.Add,
// outcomeindex.Builder.Add, or an fmt.Fprint* whose writer is a
// hash.Hash) must not hash nondeterministic snapshot fields — SavedAt
// and Stamps — and must not emit sink records from inside a map
// range, whose order would make equal stores fingerprint unequal.
//
// hubsend keeps the event fan-out non-blocking. Progress may only
// enter the pipeline through shard.Hub (a send on a chan
// shard.Progress outside package shard is flagged); time.Tick and a
// time.NewTicker that is neither stopped nor escapes leak their
// ticker; <-time.After inside a for loop allocates a timer per
// iteration that only fires long after the loop moved on; and a
// goroutine spawned inside an HTTP handler must observe a context (a
// ctx variable or a Done channel), or it outlives its request.
//
// obsmetric enforces the metric-registration discipline of
// internal/obs. A registration call (Counter, Gauge, Histogram or a
// Vec variant on an obs.Registry) must sit in a package-level var
// initializer, its name argument must be an identifier denoting a
// package-level string constant (never an inline or computed string),
// and the same constant may feed only one registration call per
// package — a duplicate would panic the first time both initializers
// link into one binary.
//
// Every rule can be waived at a specific site with
//
//	//spexlint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it; the reason is mandatory
// and should say why the invariant does not apply there.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// Analyzer is one named check. Run inspects a single type-checked
// package and reports findings through the Pass; analyzers keep no
// state between packages.
type Analyzer struct {
	Name string
	// Doc is the one-line contract statement shown by `spexlint -help`.
	Doc string
	Run func(*Pass) error
}

// Pass hands an Analyzer one package's syntax and types.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, positioned for `file:line:col: message`
// rendering.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (spexlint:%s)",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is shorthand for the expression's type, nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf resolves an identifier's object, nil when unknown.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// IsTestFile reports whether pos sits in a _test.go file. The vet
// protocol analyzes test-augmented compilation units, so analyzers
// exempt test code by file name, not by package.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// RunAnalyzers applies every analyzer to the package unit and returns
// the surviving diagnostics: findings suppressed by a
// `//spexlint:ignore` directive are dropped, the rest come back sorted
// by position. An analyzer error aborts the unit (a broken checker
// must fail loudly, not silently pass the build).
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	ig := buildIgnoreIndex(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			if !ig.suppressed(a.Name, d.Pos) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// ignoreIndex maps (file, line) to the analyzers waived there by a
// //spexlint:ignore directive. A directive covers its own line and the
// next line, so it works both as a trailing comment and on the line
// above the flagged statement.
type ignoreIndex map[string]map[int][]string

const ignoreDirective = "//spexlint:ignore"

func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	idx := ignoreIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignoreDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					// A directive without an analyzer name and reason is
					// itself a finding-shaped mistake; record a marker the
					// drivers report. Encoded as analyzer "" (matches
					// nothing) so the bad directive never suppresses.
					continue
				}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], fields[0])
			}
		}
	}
	return idx
}

func (idx ignoreIndex) suppressed(analyzer string, pos token.Position) bool {
	byLine := idx[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, name := range byLine[l] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

// --- shared type-inspection helpers used by the analyzers ---

// NamedType reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func NamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// CalleeFunc resolves the called function or method object of a call
// expression, nil for indirect calls and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// IsPkgFunc reports whether the call is to the package-level function
// pkgPath.name. Methods never match — time.After (a function) and
// time.Time.After (a method) are different animals.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// ReceiverType returns the receiver type of the called method, nil for
// plain function calls.
func ReceiverType(info *types.Info, call *ast.CallExpr) types.Type {
	fn := CalleeFunc(info, call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// LineOf returns the position's "file:line" for stable messages.
func LineOf(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return p.Filename + ":" + strconv.Itoa(p.Line)
}
