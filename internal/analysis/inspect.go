// AST walking utilities shared by the analyzers: a parent-path
// inspector and the handle-lifetime classifier behind "every Lock is
// dominated by an Unlock" and "every NewTicker is stopped".
package analysis

import (
	"go/ast"
	"go/types"
)

// WithPath walks root like ast.Inspect, additionally passing the chain
// of ancestor nodes (outermost first, not including n). Return false
// to prune the subtree.
func WithPath(root ast.Node, fn func(n ast.Node, path []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}

// EnclosingFunc returns the innermost function declaration or literal
// in path (the body a statement executes in), nil at file scope.
func EnclosingFunc(path []ast.Node) ast.Node {
	for i := len(path) - 1; i >= 0; i-- {
		switch path[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return path[i]
		}
	}
	return nil
}

// HandleFate describes what a function body does with a resource
// handle after acquiring it.
type HandleFate struct {
	// Released: the named release method is invoked on the handle
	// (directly or under defer, possibly inside a nested literal).
	Released bool
	// Escaped: the handle leaves the function — returned, passed as a
	// call argument, stored into a composite, field or other variable,
	// sent on
	// a channel, or captured by address — making release the recipient's
	// responsibility.
	Escaped bool
}

// ClassifyHandle inspects every use of obj inside fn and reports
// whether the handle is released by method release or escapes.
// Method calls other than release and nil-comparisons are benign uses;
// everything else counts as an escape (conservative: an escaped handle
// never triggers a missing-release diagnostic).
func ClassifyHandle(info *types.Info, fn ast.Node, obj types.Object, release string) HandleFate {
	var fate HandleFate
	WithPath(fn, func(n ast.Node, path []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return true
		}
		if len(path) == 0 {
			return true
		}
		switch parent := path[len(path)-1].(type) {
		case *ast.SelectorExpr:
			if parent.X == id && parent.Sel.Name == release {
				// Only a genuine call releases; a method value
				// (`f := h.Unlock`) defers the decision to whoever calls
				// f, which is an escape.
				if len(path) >= 2 {
					if call, ok := path[len(path)-2].(*ast.CallExpr); ok && call.Fun == parent {
						fate.Released = true
						return true
					}
				}
				fate.Escaped = true
				return true
			}
			if parent.X == id {
				return true // other method call or field read: benign
			}
			fate.Escaped = true
		case *ast.BinaryExpr:
			// nil-checks and comparisons don't move the handle.
		case *ast.AssignStmt:
			// The defining assignment binds the handle; appearing on a
			// right-hand side afterwards aliases it away.
			for _, lhs := range parent.Lhs {
				if lhs == id {
					return true
				}
			}
			fate.Escaped = true
		default:
			fate.Escaped = true
		}
		return true
	})
	return fate
}

// AssignedIdent returns the identifier a call's first result is bound
// to, when the call is the sole RHS of an assignment ( `h, err := f()`
// or `h := f()` ), and that identifier's object. Nil when the result
// is discarded or used inline.
func AssignedIdent(info *types.Info, path []ast.Node, call *ast.CallExpr) (*ast.Ident, types.Object) {
	if len(path) == 0 {
		return nil, nil
	}
	assign, ok := path[len(path)-1].(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 || assign.Rhs[0] != call || len(assign.Lhs) == 0 {
		return nil, nil
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, nil
	}
	if obj := info.Defs[id]; obj != nil {
		return id, obj
	}
	if obj := info.Uses[id]; obj != nil {
		return id, obj
	}
	return nil, nil
}

// ResultDiscarded reports whether the call's results are dropped on
// the floor: a bare expression statement, a go/defer statement, or an
// assignment binding the first result to the blank identifier. A call
// nested in a return, argument list or composite literal hands its
// result to a recipient instead.
func ResultDiscarded(path []ast.Node, call *ast.CallExpr) bool {
	if len(path) == 0 {
		return false
	}
	switch p := path[len(path)-1].(type) {
	case *ast.ExprStmt, *ast.GoStmt, *ast.DeferStmt:
		return true
	case *ast.AssignStmt:
		if len(p.Rhs) == 1 && p.Rhs[0] == call && len(p.Lhs) > 0 {
			if id, ok := p.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
				return true
			}
		}
	}
	return false
}

// FuncHasParamType reports whether the function declaration or literal
// has a parameter of the named type (after pointer indirection).
func FuncHasParamType(info *types.Info, fn ast.Node, pkgPath, name string) bool {
	var ft *ast.FuncType
	switch f := fn.(type) {
	case *ast.FuncDecl:
		ft = f.Type
	case *ast.FuncLit:
		ft = f.Type
	default:
		return false
	}
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if NamedType(info.TypeOf(field.Type), pkgPath, name) {
			return true
		}
	}
	return false
}

// FuncHasCtxParam reports whether the function takes a
// context.Context parameter.
func FuncHasCtxParam(info *types.Info, fn ast.Node) bool {
	return FuncHasParamType(info, fn, "context", "Context")
}
