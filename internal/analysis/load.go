// The standalone package loader: `go list -deps -export -json -test`
// resolves every dependency to compiled export data, then each
// requested package unit is parsed and type-checked from source with
// go/importer reading those export files. This is what the x/tools
// go/packages loader does in LoadAllSyntax mode, cut down to the one
// configuration the spexlint drivers need — no cgo special cases, no
// overlays, no module graph mutation.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked compilation unit. An in-package
// test unit carries the package's _test.go files alongside its
// ordinary sources; an external _test package is its own unit.
type Package struct {
	PkgPath string
	Name    string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors collects type-check failures. The loader keeps going —
	// the vet protocol's SucceedOnTypecheckFailure contract — and the
	// drivers decide whether a broken package is fatal.
	TypeErrors []error
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath   string
	Name         string
	Dir          string
	Export       string
	Standard     bool
	ForTest      string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// ExportIndex maps canonical import paths to compiled export-data
// files, the importer's lookup table.
type ExportIndex map[string]string

// LoadExportIndex builds the export index for the patterns' full
// dependency closure, including test dependencies. dir is the module
// root the `go list` runs in.
func LoadExportIndex(dir string, patterns ...string) (ExportIndex, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export", "-test"}, patterns...)
	pkgs, err := goList(dir, args)
	if err != nil {
		return nil, err
	}
	idx := ExportIndex{}
	for _, p := range pkgs {
		// Bracketed variants ("pkg [pkg.test]") re-export a package with
		// its test files compiled in; the plain entry is the export the
		// rest of the graph links against, so it wins.
		if p.Export == "" || strings.Contains(p.ImportPath, " [") {
			continue
		}
		if _, ok := idx[p.ImportPath]; !ok {
			idx[p.ImportPath] = p.Export
		}
	}
	return idx, nil
}

// Importer returns a types.Importer resolving through the index.
func (idx ExportIndex) Importer(fset *token.FileSet) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := idx[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not in the loaded dependency closure)", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Load type-checks the packages matching the patterns (module-local
// syntax, export-data dependencies). withTests folds each package's
// _test.go files into its unit and adds external _test packages as
// their own units.
func Load(dir string, withTests bool, patterns ...string) ([]*Package, error) {
	idx, err := LoadExportIndex(dir, patterns...)
	if err != nil {
		return nil, err
	}
	args := append([]string{"list", "-json=ImportPath,Name,Dir,GoFiles,CgoFiles,TestGoFiles,XTestGoFiles"}, patterns...)
	pkgs, err := goList(dir, args)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := idx.Importer(fset)
	var out []*Package
	for _, p := range pkgs {
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo, which this loader does not support", p.ImportPath)
		}
		files := absFiles(p.Dir, p.GoFiles)
		if withTests {
			files = append(files, absFiles(p.Dir, p.TestGoFiles)...)
		}
		if len(files) > 0 {
			u, err := checkUnit(fset, imp, p.ImportPath, files)
			if err != nil {
				return nil, err
			}
			out = append(out, u)
		}
		if withTests && len(p.XTestGoFiles) > 0 {
			u, err := checkUnit(fset, imp, p.ImportPath+"_test", absFiles(p.Dir, p.XTestGoFiles))
			if err != nil {
				return nil, err
			}
			out = append(out, u)
		}
	}
	return out, nil
}

// CheckFiles type-checks one ad-hoc unit (the analysistest fixture
// path: sources outside the module's package graph, dependencies from
// the index).
func CheckFiles(fset *token.FileSet, idx ExportIndex, pkgPath string, files []string) (*Package, error) {
	return checkUnit(fset, idx.Importer(fset), pkgPath, files)
}

func checkUnit(fset *token.FileSet, imp types.Importer, pkgPath string, files []string) (*Package, error) {
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		parsed = append(parsed, af)
	}
	u := &Package{PkgPath: pkgPath, Fset: fset, Files: parsed}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { u.TypeErrors = append(u.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(pkgPath, fset, parsed, info) // errors collected via conf.Error
	u.Types, u.Info = tpkg, info
	if len(parsed) > 0 {
		u.Name = parsed[0].Name.Name
	}
	return u, nil
}

func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

func goList(dir string, args []string) ([]listedPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args[:2], " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []listedPkg
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
