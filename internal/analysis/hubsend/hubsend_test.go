package hubsend_test

import (
	"testing"

	"spex/internal/analysis/analysistest"
	"spex/internal/analysis/hubsend"
)

func TestHubSend(t *testing.T) {
	analysistest.Run(t, hubsend.Analyzer, "a")
}
