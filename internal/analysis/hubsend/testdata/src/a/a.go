// Positive cases for hubsend.
package a

import (
	"net/http"
	"time"

	"spex/internal/dash"
	"spex/internal/shard"
)

func rawSend(ch chan shard.Progress, p shard.Progress) {
	ch <- p // want `bypasses the Hub`
}

func rawBusSend(ch chan dash.Event, e dash.Event) {
	ch <- e // want `bypasses the bus`
}

func ticks() <-chan time.Time {
	return time.Tick(time.Second) // want `time.Tick leaks its ticker`
}

func discardsTicker() {
	time.NewTicker(time.Second) // want `ticker handle discarded`
}

func leaksTicker(done chan struct{}) {
	t := time.NewTicker(time.Second) // want `ticker is never stopped`
	for {
		select {
		case <-done:
			return
		case <-t.C:
		}
	}
}

func stacksTimers(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		case <-time.After(time.Second): // want `time.After in a loop`
		}
	}
}

func leakyHandler(w http.ResponseWriter, r *http.Request) {
	go func() { // want `goroutine spawned in an HTTP handler`
		time.Sleep(time.Minute)
	}()
	w.WriteHeader(http.StatusOK)
}
