// Negative cases: Hub-mediated publishing, stopped or handed-off
// tickers, one-shot timers, cancellation-aware handler goroutines.
package a

import (
	"net/http"
	"time"

	"spex/internal/dash"
	"spex/internal/shard"
)

// Progress published through the Hub keeps the drop-oldest policy.
func publishes(hub *shard.Hub, p shard.Progress) {
	hub.Emit(p)
}

// Bus events published through the bus keep its per-subscriber
// drop-oldest policy.
func publishesBus(bus *dash.Bus, e dash.Event) {
	bus.Publish(e)
}

func stopsTicker(done chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
		}
	}
}

// A ticker handed to the caller is the caller's to stop.
func returnsTicker() *time.Ticker {
	return time.NewTicker(time.Second)
}

// One-shot time.After outside a loop is fine.
func waitsOnce(done chan struct{}) {
	select {
	case <-done:
	case <-time.After(time.Second):
	}
}

// A handler goroutine observing the request context is tied to the
// request lifetime.
func scopedHandler(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	go func() {
		<-ctx.Done()
	}()
	w.WriteHeader(http.StatusOK)
}
