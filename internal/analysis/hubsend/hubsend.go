// Package hubsend keeps the progress fan-out non-blocking and
// goroutines cancellable. The progress pipeline's design invariant is
// that a slow consumer can never stall a campaign: shard.Hub owns the
// only buffers and sheds load by dropping the oldest event. Shapes
// that reintroduce blocking or leaks:
//
//   - a raw channel send of shard.Progress outside package shard
//     bypasses the Hub's drop-oldest policy — one full channel then
//     blocks the scheduler's emit path;
//   - likewise a raw channel send of dash.Event outside package dash:
//     the daemon-wide bus owns the only subscriber buffers and sheds
//     load per subscriber; a hand-rolled channel of bus events stalls
//     every publisher on its slowest consumer;
//   - time.Tick leaks its ticker by construction; a time.NewTicker
//     whose handle is neither stopped nor escapes leaks it too;
//   - <-time.After inside a loop allocates a timer per iteration that
//     fires long after the loop moved on (the classic slow leak in
//     serve loops); hoist a Timer or use a Ticker;
//   - a goroutine spawned inside an HTTP handler that never observes a
//     context or Done channel outlives its request — the daemon's
//     handlers must tie background work to the request or server
//     lifetime.
package hubsend

import (
	"go/ast"

	"spex/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hubsend",
	Doc:  "progress flows through shard.Hub, tickers are stopped, loops don't stack time.After, handler goroutines observe cancellation",
	Run:  run,
}

const (
	shardPkg = "spex/internal/shard"
	dashPkg  = "spex/internal/dash"
)

func run(pass *analysis.Pass) error {
	inShard := pass.Pkg != nil && pass.Pkg.Path() == shardPkg
	inDash := pass.Pkg != nil && pass.Pkg.Path() == dashPkg
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		analysis.WithPath(file, func(n ast.Node, path []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkTimeCall(pass, n, path)
			case *ast.SendStmt:
				t := pass.TypeOf(n.Value)
				if !inShard && analysis.NamedType(t, shardPkg, "Progress") {
					pass.Reportf(n.Pos(), "raw channel send of shard.Progress bypasses the Hub's drop-oldest policy and can block the emit path; publish via (*shard.Hub).Emit")
				}
				if !inDash && analysis.NamedType(t, dashPkg, "Event") {
					pass.Reportf(n.Pos(), "raw channel send of dash.Event bypasses the bus's per-subscriber drop-oldest policy and can block the publisher; publish via (*dash.Bus).Publish")
				}
			case *ast.GoStmt:
				checkHandlerGoroutine(pass, n, path)
			}
			return true
		})
	}
	return nil
}

func checkTimeCall(pass *analysis.Pass, call *ast.CallExpr, path []ast.Node) {
	switch {
	case analysis.IsPkgFunc(pass.Info, call, "time", "Tick"):
		pass.Reportf(call.Pos(), "time.Tick leaks its ticker; use time.NewTicker with defer ticker.Stop()")
	case analysis.IsPkgFunc(pass.Info, call, "time", "NewTicker"):
		encl := analysis.EnclosingFunc(path)
		if encl == nil {
			return
		}
		id, obj := analysis.AssignedIdent(pass.Info, path, call)
		if id == nil {
			// `return time.NewTicker(d)` hands the handle to the caller;
			// only dropping it outright is the leak.
			if analysis.ResultDiscarded(path, call) {
				pass.Reportf(call.Pos(), "ticker handle discarded; it can never be stopped")
			}
			return
		}
		fate := analysis.ClassifyHandle(pass.Info, encl, obj, "Stop")
		if !fate.Released && !fate.Escaped {
			pass.Reportf(call.Pos(), "ticker is never stopped: defer %s.Stop() (or hand the handle off)", id.Name)
		}
	case analysis.IsPkgFunc(pass.Info, call, "time", "After"):
		if inLoop(path) {
			pass.Reportf(call.Pos(), "time.After in a loop allocates an unstoppable timer per iteration; hoist a time.Timer or use a Ticker")
		}
	}
}

func inLoop(path []ast.Node) bool {
	for i := len(path) - 1; i >= 0; i-- {
		switch path[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncDecl, *ast.FuncLit:
			// A function boundary resets loop context: the literal's body
			// runs once per call, wherever the literal was written.
			return false
		}
	}
	return false
}

// checkHandlerGoroutine flags a go statement inside an HTTP handler
// whose spawned function observes no cancellation signal: it
// references no context.Context value and selects on no Done channel,
// so nothing ends it when the request (or the server) goes away.
func checkHandlerGoroutine(pass *analysis.Pass, g *ast.GoStmt, path []ast.Node) {
	inHandler := false
	for i := len(path) - 1; i >= 0; i-- {
		switch f := path[i].(type) {
		case *ast.FuncDecl:
			inHandler = inHandler || analysis.FuncHasParamType(pass.Info, f, "net/http", "ResponseWriter")
		case *ast.FuncLit:
			inHandler = inHandler || analysis.FuncHasParamType(pass.Info, f, "net/http", "ResponseWriter")
		}
	}
	if !inHandler {
		return
	}
	if observesCancellation(pass, g.Call) {
		return
	}
	pass.Reportf(g.Pos(), "goroutine spawned in an HTTP handler without a cancellation path: it must observe a context or Done channel, or it outlives the request")
}

func observesCancellation(pass *analysis.Pass, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if t := pass.TypeOf(n); analysis.NamedType(t, "context", "Context") {
				found = true
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "Done" {
				found = true
			}
		}
		return !found
	})
	return found
}
