// The `go vet -vettool` driver. cmd/go invokes the tool once per
// compilation unit with a JSON .cfg file naming the sources and the
// export data of every dependency, plus two handshake flags
// (-V=full, -flags) it uses for build caching and flag discovery.
// This mirrors golang.org/x/tools/go/analysis/unitchecker, which
// documents the protocol; the facts side of that protocol is unused
// here (the spexlint analyzers are single-unit), but the .vetx output
// file must still be written or cmd/go fails the run.
package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"
)

// unitConfig is the subset of cmd/go's vet config the driver reads.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the spexlint entry point. Under the vet protocol (an
// argument ending in .cfg, or the -V/-flags handshakes) it behaves as
// a unitchecker; given package patterns it loads them itself and
// checks everything, tests included. Returns the process exit code:
// 0 clean, 1 driver failure, 2 findings.
func Main(analyzers []*Analyzer, args []string) int {
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "-V":
			printVersion()
			return 0
		case a == "-flags":
			fmt.Println("[]") // no tool-specific flags
			return 0
		}
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		return runUnit(analyzers, args[n-1])
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: spexlint <packages>  (or via go vet -vettool)")
		return 1
	}
	return runPatterns(analyzers, args)
}

// printVersion implements the -V=full handshake. cmd/go parses the
// line as `name version devel ... buildID=<hex>` and folds the ID into
// its build cache key, so it embeds the executable's own digest —
// rebuilding spexlint invalidates cached vet results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("spexlint version devel buildID=%02x\n", h.Sum(nil))
}

func runUnit(analyzers []*Analyzer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spexlint: %v\n", err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "spexlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The facts file must exist even though spexlint records no facts:
	// cmd/go stages it into the build cache for dependent units.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("spexlint: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "spexlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	idx := ExportIndex{}
	for path, file := range cfg.PackageFile {
		idx[path] = file
	}
	// ImportMap aliases source-level import paths to canonical ones
	// (vendoring, "pkg [pkg.test]" variants). Alias entries join the
	// index pointing at the canonical export file.
	for src, canon := range cfg.ImportMap {
		if src == canon {
			continue
		}
		if f, ok := idx[canon]; ok {
			idx[src] = f
		}
	}
	fset := token.NewFileSet()
	unit, err := CheckFiles(fset, idx, cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spexlint: %v\n", err)
		return 1
	}
	if len(unit.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0 // the compiler proper owns reporting these
		}
		for _, e := range unit.TypeErrors {
			fmt.Fprintf(os.Stderr, "spexlint: %v\n", e)
		}
		return 1
	}
	diags, err := RunAnalyzers(fset, unit.Files, unit.Types, unit.Info, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spexlint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func runPatterns(analyzers []*Analyzer, patterns []string) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "spexlint: %v\n", err)
		return 1
	}
	units, err := Load(wd, true, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spexlint: %v\n", err)
		return 1
	}
	exit := 0
	for _, u := range units {
		if len(u.TypeErrors) > 0 {
			for _, e := range u.TypeErrors {
				fmt.Fprintf(os.Stderr, "spexlint: %s: %v\n", u.PkgPath, e)
			}
			exit = 1
			continue
		}
		diags, err := RunAnalyzers(u.Fset, u.Files, u.Types, u.Info, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spexlint: %v\n", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			if exit == 0 {
				exit = 2
			}
		}
	}
	return exit
}
