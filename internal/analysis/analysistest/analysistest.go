// Package analysistest runs one analyzer over a fixture package and
// diffs its diagnostics against `// want "regexp"` comments, the
// golden-test idiom of golang.org/x/tools/go/analysis/analysistest.
// Fixtures live in <analyzer package>/testdata/src/<name>/ and are
// ordinary Go sources — they may import the real spex packages, whose
// compiled export data comes from one shared `go list -export` pass
// over the module — but they are not part of the module's package
// graph, so the intentional violations inside them never trip the
// repo-wide spexlint run.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"spex/internal/analysis"
)

var (
	indexOnce sync.Once
	indexVal  analysis.ExportIndex
	indexErr  error
	rootVal   string
)

// sharedIndex builds the module-wide export index once per test
// process; every fixture type-check resolves imports through it.
func sharedIndex(t *testing.T) (string, analysis.ExportIndex) {
	t.Helper()
	indexOnce.Do(func() {
		rootVal, indexErr = moduleRoot()
		if indexErr != nil {
			return
		}
		indexVal, indexErr = analysis.LoadExportIndex(rootVal, "./...")
	})
	if indexErr != nil {
		t.Fatalf("analysistest: building export index: %v", indexErr)
	}
	return rootVal, indexVal
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Run checks the analyzer against testdata/src/<fixture> relative to
// the calling test's package directory: every diagnostic must match a
// `// want "regexp"` on its line, and every want must be matched.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	_, idx := sharedIndex(t)
	dir := filepath.Join("testdata", "src", fixture)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no fixture sources in %s", dir)
	}
	fset := token.NewFileSet()
	unit, err := analysis.CheckFiles(fset, idx, fixture, files)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, e := range unit.TypeErrors {
		t.Errorf("analysistest: fixture does not type-check: %v", e)
	}
	if t.Failed() {
		t.FailNow()
	}
	diags, err := analysis.RunAnalyzers(fset, unit.Files, unit.Types, unit.Info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	wants := collectWants(t, fset, unit)
	matchDiagnostics(t, diags, wants)
}

// want is one expectation: a diagnostic on (file base name, line)
// whose message matches re.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile("(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

func collectWants(t *testing.T, fset *token.FileSet, unit *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllString(text[len("want "):], -1) {
					pat := m
					if strings.HasPrefix(pat, "`") {
						pat = strings.Trim(pat, "`")
					} else if unq, err := strconv.Unquote(pat); err == nil {
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("analysistest: %s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
						raw:  pat,
					})
				}
			}
		}
	}
	return wants
}

func matchDiagnostics(t *testing.T, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == base && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", base, d.Pos.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.raw)
		}
	}
}
