package lockcontract_test

import (
	"testing"

	"spex/internal/analysis/analysistest"
	"spex/internal/analysis/lockcontract"
)

func TestLockContract(t *testing.T) {
	analysistest.Run(t, lockcontract.Analyzer, "a")
}
