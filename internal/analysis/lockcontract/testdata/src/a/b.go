// Negative cases: the contract-conforming shapes produce no
// diagnostics.
package a

import (
	"spex/internal/campaignstore"
)

type holder struct {
	lk *campaignstore.Lock
}

// Acquire-and-defer is the canonical shape.
func locksAndReleases(store *campaignstore.Store) error {
	lk, err := store.Lock()
	if err != nil {
		return err
	}
	defer lk.Unlock()
	return nil
}

// Returning the handle hands release to the caller.
func escapesByReturn(store *campaignstore.Store) (*campaignstore.Lock, error) {
	return store.Lock()
}

// Storing the handle transfers ownership to the holder.
func escapesIntoField(store *campaignstore.Store, h *holder) error {
	lk, err := store.Lock()
	if err != nil {
		return err
	}
	h.lk = lk
	return nil
}

// Sequential lock/unlock/lock on one store is legal: the direct
// Unlock releases before the second acquisition.
func relocks(store *campaignstore.Store) error {
	lk, err := store.Lock()
	if err != nil {
		return err
	}
	if err := lk.Unlock(); err != nil {
		return err
	}
	again, err := store.Lock()
	if err != nil {
		return err
	}
	return again.Unlock()
}

// The lock path is resolved through campaignstore, not spelled inline.
func lockPath(dir string) string {
	return campaignstore.LockPath(dir)
}
