// Negative cases: the contract-conforming shapes produce no
// diagnostics.
package a

import (
	"spex/internal/campaignstore"
)

type holder struct {
	lk *campaignstore.Lock
}

// Acquire-and-defer is the canonical shape.
func locksAndReleases(store *campaignstore.Store) error {
	lk, err := store.Lock()
	if err != nil {
		return err
	}
	defer lk.Unlock()
	return nil
}

// Returning the handle hands release to the caller.
func escapesByReturn(store *campaignstore.Store) (*campaignstore.Lock, error) {
	return store.Lock()
}

// Storing the handle transfers ownership to the holder.
func escapesIntoField(store *campaignstore.Store, h *holder) error {
	lk, err := store.Lock()
	if err != nil {
		return err
	}
	h.lk = lk
	return nil
}

// Sequential lock/unlock/lock on one store is legal: the direct
// Unlock releases before the second acquisition.
func relocks(store *campaignstore.Store) error {
	lk, err := store.Lock()
	if err != nil {
		return err
	}
	if err := lk.Unlock(); err != nil {
		return err
	}
	again, err := store.Lock()
	if err != nil {
		return err
	}
	return again.Unlock()
}

// The lock path is resolved through campaignstore, not spelled inline.
func lockPath(dir string) string {
	return campaignstore.LockPath(dir)
}

type setHolder struct {
	locks *campaignstore.LockSet
}

// Per-system acquire-and-defer is the canonical job shape.
func locksSystemAndReleases(store *campaignstore.Store) error {
	lk, err := store.LockSystem("proxyd")
	if err != nil {
		return err
	}
	defer lk.Unlock()
	return nil
}

// Returning the set hands release to the caller.
func escapesSetByReturn(store *campaignstore.Store) (*campaignstore.LockSet, error) {
	return store.LockSystems("proxyd", "ldapd")
}

// Storing the set transfers ownership to the holder.
func escapesSetIntoField(store *campaignstore.Store, h *setHolder) error {
	set, err := store.LockSystems("proxyd")
	if err != nil {
		return err
	}
	h.locks = set
	return nil
}

// Different systems on one store are independent claims — the whole
// point of the per-system granularity.
func locksTwoSystems(store *campaignstore.Store) error {
	first, err := store.LockSystem("proxyd")
	if err != nil {
		return err
	}
	defer first.Unlock()
	second, err := store.LockSystem("ldapd")
	if err != nil {
		return err
	}
	defer second.Unlock()
	return nil
}

// Sequential claim/release/claim of one system is legal: the direct
// Unlock releases before the second acquisition.
func relocksSystem(store *campaignstore.Store) error {
	lk, err := store.LockSystem("proxyd")
	if err != nil {
		return err
	}
	if err := lk.Unlock(); err != nil {
		return err
	}
	again, err := store.LockSystem("proxyd")
	if err != nil {
		return err
	}
	return again.Unlock()
}

// The per-system lock path is resolved through campaignstore too.
func systemLockPath(dir string) string {
	return campaignstore.SystemLockPath(dir, "proxyd")
}
