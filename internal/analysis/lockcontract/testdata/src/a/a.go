// Positive cases for lockcontract: every `want` line must produce
// exactly that diagnostic. The conforming shapes live in b.go.
package a

import (
	"net/http"

	"spex/internal/campaignstore"
	"spex/internal/coord"
	"spex/internal/shard"
)

func discards(store *campaignstore.Store) {
	store.Lock() // want `lock handle discarded`
}

func blanks(store *campaignstore.Store) {
	_, _ = store.Lock() // want `lock handle discarded`
}

func neverReleases(store *campaignstore.Store) error {
	lk, err := store.Lock() // want `lock acquired but never released`
	if err != nil {
		return err
	}
	if lk == nil {
		return nil
	}
	return nil
}

func locksTwice(store *campaignstore.Store) error {
	first, err := store.Lock()
	if err != nil {
		return err
	}
	defer first.Unlock()
	second, err := store.Lock() // want `store already locked in this function`
	if err != nil {
		return err
	}
	defer second.Unlock()
	return nil
}

func locksInHandler(store *campaignstore.Store) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		lk, err := store.Lock() // want `Lock inside an HTTP handler`
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		defer lk.Unlock()
	}
}

func locksInProgressCallback(store *campaignstore.Store) shard.Options {
	return shard.Options{
		OnProgress: func(p shard.Progress) {
			lk, err := store.Lock() // want `Lock inside a shard.Progress callback`
			if err != nil {
				return
			}
			defer lk.Unlock()
		},
	}
}

func locksInEventCallback(store *campaignstore.Store) coord.Config {
	return coord.Config{
		OnEvent: func(e coord.Event) {
			lk, err := store.Lock() // want `Lock inside a coord.Event callback`
			if err != nil {
				return
			}
			defer lk.Unlock()
		},
	}
}

func spellsLockName(dir string) string {
	return dir + "/.spex.lock" // want `campaignstore.LockPath`
}

func discardsSystemLock(store *campaignstore.Store) {
	store.LockSystem("proxyd") // want `lock handle discarded`
}

func discardsLockSet(store *campaignstore.Store) {
	_, _ = store.LockSystems("proxyd", "ldapd") // want `lock handle discarded`
}

func neverReleasesSystemLock(store *campaignstore.Store) error {
	lk, err := store.LockSystem("proxyd") // want `lock acquired but never released`
	if err != nil {
		return err
	}
	if lk == nil {
		return nil
	}
	return nil
}

func locksSystemTwice(store *campaignstore.Store) error {
	first, err := store.LockSystem("proxyd")
	if err != nil {
		return err
	}
	defer first.Unlock()
	second, err := store.LockSystem("proxyd") // want `system "proxyd" already locked in this function`
	if err != nil {
		return err
	}
	defer second.Unlock()
	return nil
}

func locksSystemTwiceViaSet(store *campaignstore.Store) error {
	lk, err := store.LockSystem("proxyd")
	if err != nil {
		return err
	}
	defer lk.Unlock()
	set, err := store.LockSystems("ldapd", "proxyd") // want `system "proxyd" already locked in this function`
	if err != nil {
		return err
	}
	defer set.Unlock()
	return nil
}

func locksSystemInHandler(store *campaignstore.Store) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		lk, err := store.LockSystems("proxyd") // want `LockSystems inside an HTTP handler`
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		defer lk.Unlock()
	}
}

func locksSystemInProgressCallback(store *campaignstore.Store) shard.Options {
	return shard.Options{
		OnProgress: func(p shard.Progress) {
			lk, err := store.LockSystem("proxyd") // want `LockSystem inside a shard.Progress callback`
			if err != nil {
				return
			}
			defer lk.Unlock()
		},
	}
}

func spellsSystemLockName(dir string) string {
	return dir + "/proxyd.spex.lock" // want `campaignstore.LockPath`
}
