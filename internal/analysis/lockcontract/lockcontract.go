// Package lockcontract checks the campaignstore writer-lock ownership
// discipline. The type system already guarantees writes happen under
// a lock — Save and NewStreamWriter live on the Lock, SystemLock, and
// LockSet handles, the only snapshot-write capabilities — so this
// analyzer owns the acquisition side of the contract, at both
// granularities:
//
//   - a (*Store).Lock / LockSystem / LockSystems call's handle must be
//     released in the acquiring function (handle.Unlock(), usually
//     deferred) or escape to a caller that owns the release;
//   - a store is whole-directory-locked at most once per function, and
//     each system is per-system-locked at most once per function — a
//     second acquisition of the same lock with no intervening release
//     always deadlocks the CLI contract (both locks are exclusive);
//   - no acquisition runs inside an http.ResponseWriter-bearing
//     function (the daemon's read endpoints are lock-free by design:
//     they serve from snapshots and the outcome index) nor inside a
//     shard.Progress / coord.Event callback (those execute on the
//     scheduler's emit path, under the very campaign the lock guards —
//     acquiring there deadlocks the writer against itself);
//   - the ".spex.lock" file name (the directory lock, and the suffix
//     of every per-system lock file) is campaignstore's private
//     spelling; foreign code resolves it via campaignstore.LockPath or
//     campaignstore.SystemLockPath.
//
// Test files are exempt: lock-contract tests must be able to abuse the
// API on purpose.
package lockcontract

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"spex/internal/analysis"
)

const (
	storePkg = "spex/internal/campaignstore"
	shardPkg = "spex/internal/shard"
	coordPkg = "spex/internal/coord"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockcontract",
	Doc:  "campaignstore writer locks (whole-directory and per-system) are acquired once, released or handed off, and never taken on the serving or progress paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		checkLockLiterals(pass, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkLockLiterals flags the ".spex.lock" spelling outside its home
// package.
func checkLockLiterals(pass *analysis.Pass, file *ast.File) {
	if pass.Pkg != nil {
		p := pass.Pkg.Path()
		// campaignstore owns the name; the analysis packages may spell
		// it in diagnostics and fixtures about this very rule.
		if p == storePkg || strings.HasPrefix(p, "spex/internal/analysis") {
			return
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if ok && lit.Kind == token.STRING && strings.Contains(lit.Value, ".spex.lock") {
			pass.Reportf(lit.Pos(), "the %q file name belongs to campaignstore; use campaignstore.LockPath (or SystemLockPath for a per-system lock file)", ".spex.lock")
		}
		return true
	})
}

// checkFunc applies the acquisition rules to one top-level function
// and every literal nested in it.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Acquisitions seen so far per enclosing function, keyed by the
	// receiver store's object plus the lock's scope — "" for the
	// whole-directory lock, the system name for a per-system claim made
	// with a literal argument. Unlock calls clear the markers.
	type acquisition struct {
		fn     ast.Node
		store  types.Object
		system string
	}
	var acquired []acquisition

	analysis.WithPath(fd, func(n ast.Node, path []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != storePkg {
			return true
		}
		switch fn.Name() {
		case "Unlock":
			// A direct release resets the acquisition markers: a
			// sequential lock/unlock/lock pattern is legal. A deferred
			// Unlock doesn't — it runs at function exit, so the lock stays
			// held for the rest of the body.
			if len(path) == 0 {
				return true
			}
			if _, isDefer := path[len(path)-1].(*ast.DeferStmt); !isDefer {
				acquired = acquired[:0]
			}
		case "Lock", "LockSystem", "LockSystems":
			if !analysis.NamedType(analysis.ReceiverType(pass.Info, call), storePkg, "Store") {
				return true
			}
			encl := analysis.EnclosingFunc(path)
			if encl == nil {
				encl = fd
			}
			checkForbiddenContext(pass, fn.Name(), call, path)

			storeObj := receiverObject(pass.Info, call)
			if storeObj != nil {
				// The scopes this call claims: the whole directory for
				// Lock, each literal system name for LockSystem(s).
				// Non-literal arguments are invisible to the static check;
				// the runtime conflict error still catches those.
				var scopes []string
				if fn.Name() == "Lock" {
					scopes = []string{""}
				} else {
					for _, arg := range call.Args {
						if sys, ok := stringLiteral(arg); ok {
							scopes = append(scopes, sys)
						}
					}
				}
				for _, scope := range scopes {
					for _, prev := range acquired {
						if prev.store != storeObj || prev.fn != encl || prev.system != scope {
							continue
						}
						if scope == "" {
							pass.Reportf(call.Pos(), "store already locked in this function with no intervening Unlock; the writer lock is exclusive per state directory")
						} else {
							pass.Reportf(call.Pos(), "system %q already locked in this function with no intervening Unlock; the per-system writer lock is exclusive", scope)
						}
					}
					acquired = append(acquired, acquisition{fn: encl, store: storeObj, system: scope})
				}
			}

			id, obj := analysis.AssignedIdent(pass.Info, path, call)
			if id == nil {
				// `return store.Lock()` and friends hand the handle to an
				// expression recipient — release is theirs. Dropping the
				// results on the floor is the violation.
				if analysis.ResultDiscarded(path, call) {
					pass.Reportf(call.Pos(), "lock handle discarded; the caller that acquires the writer lock owns its release")
				}
				return true
			}
			fate := analysis.ClassifyHandle(pass.Info, encl, obj, "Unlock")
			if !fate.Released && !fate.Escaped {
				pass.Reportf(call.Pos(), "lock acquired but never released: defer %s.Unlock() (or hand the handle to the owner of the release)", id.Name)
			}
		}
		return true
	})
}

// stringLiteral unquotes a plain string-literal expression.
func stringLiteral(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// receiverObject resolves the object of the receiver expression when
// it is a plain identifier or selector chain ending in one.
func receiverObject(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return info.ObjectOf(x)
	case *ast.SelectorExpr:
		return info.ObjectOf(x.Sel)
	}
	return nil
}

// checkForbiddenContext flags an acquisition call whose enclosing
// functions include a request handler or a scheduler callback.
func checkForbiddenContext(pass *analysis.Pass, name string, call *ast.CallExpr, path []ast.Node) {
	for i := len(path) - 1; i >= 0; i-- {
		switch f := path[i].(type) {
		case *ast.FuncDecl:
			if analysis.FuncHasParamType(pass.Info, f, "net/http", "ResponseWriter") {
				pass.Reportf(call.Pos(), "%s inside an HTTP handler: the daemon's serving path is lock-free (snapshots and the outcome index serve reads)", name)
			}
			return // outermost function reached
		case *ast.FuncLit:
			if analysis.FuncHasParamType(pass.Info, f, "net/http", "ResponseWriter") {
				pass.Reportf(call.Pos(), "%s inside an HTTP handler: the daemon's serving path is lock-free (snapshots and the outcome index serve reads)", name)
				return
			}
			if analysis.FuncHasParamType(pass.Info, f, shardPkg, "Progress") {
				pass.Reportf(call.Pos(), "%s inside a shard.Progress callback: progress hooks run on the campaign's emit path, under the lock's own writer", name)
				return
			}
			if analysis.FuncHasParamType(pass.Info, f, coordPkg, "Event") {
				pass.Reportf(call.Pos(), "%s inside a coord.Event callback: coordinator events fire on the run's emit path, under the lock's own writer", name)
				return
			}
		}
	}
}
