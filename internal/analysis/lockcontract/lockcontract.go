// Package lockcontract checks the campaignstore writer-lock ownership
// discipline. The type system already guarantees writes happen under
// the lock — (*campaignstore.Lock).Save and NewStreamWriter are the
// only snapshot-write capability — so this analyzer owns the
// acquisition side of the contract:
//
//   - a (*Store).Lock call's handle must be released in the acquiring
//     function (lock.Unlock(), usually deferred) or escape to a caller
//     that owns the release;
//   - a store is locked at most once per function — a second Lock on
//     the same store with no intervening release always deadlocks the
//     CLI contract (the lock is exclusive per state directory);
//   - Lock never runs inside an http.ResponseWriter-bearing function
//     (the daemon's read endpoints are lock-free by design: they serve
//     from snapshots and the outcome index) nor inside a
//     shard.Progress / coord.Event callback (those execute on the
//     scheduler's emit path, under the very campaign the lock guards —
//     acquiring there deadlocks the writer against itself);
//   - the ".spex.lock" file name is campaignstore's private spelling;
//     foreign code resolves it via campaignstore.LockPath.
//
// Test files are exempt: lock-contract tests must be able to abuse the
// API on purpose.
package lockcontract

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"spex/internal/analysis"
)

const (
	storePkg = "spex/internal/campaignstore"
	shardPkg = "spex/internal/shard"
	coordPkg = "spex/internal/coord"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockcontract",
	Doc:  "campaignstore writer locks are acquired once, released or handed off, and never taken on the serving or progress paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		checkLockLiterals(pass, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkLockLiterals flags the ".spex.lock" spelling outside its home
// package.
func checkLockLiterals(pass *analysis.Pass, file *ast.File) {
	if pass.Pkg != nil {
		p := pass.Pkg.Path()
		// campaignstore owns the name; the analysis packages may spell
		// it in diagnostics and fixtures about this very rule.
		if p == storePkg || strings.HasPrefix(p, "spex/internal/analysis") {
			return
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if ok && lit.Kind == token.STRING && strings.Contains(lit.Value, ".spex.lock") {
			pass.Reportf(lit.Pos(), "the %q file name belongs to campaignstore; use campaignstore.LockPath", ".spex.lock")
		}
		return true
	})
}

// checkFunc applies the acquisition rules to one top-level function
// and every literal nested in it.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Lock calls seen so far per enclosing function, keyed by the
	// receiver store's object, for the double-acquisition rule. Unlock
	// calls clear the marker.
	type acquisition struct {
		fn    ast.Node
		store types.Object
	}
	var acquired []acquisition

	analysis.WithPath(fd, func(n ast.Node, path []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != storePkg {
			return true
		}
		switch fn.Name() {
		case "Unlock":
			// A direct release resets the per-store acquisition markers: a
			// sequential lock/unlock/lock pattern is legal. A deferred
			// Unlock doesn't — it runs at function exit, so the store stays
			// locked for the rest of the body.
			if len(path) == 0 {
				return true
			}
			if _, isDefer := path[len(path)-1].(*ast.DeferStmt); !isDefer {
				acquired = acquired[:0]
			}
		case "Lock":
			if !analysis.NamedType(analysis.ReceiverType(pass.Info, call), storePkg, "Store") {
				return true
			}
			encl := analysis.EnclosingFunc(path)
			if encl == nil {
				encl = fd
			}
			checkForbiddenContext(pass, call, path)

			storeObj := receiverObject(pass.Info, call)
			if storeObj != nil {
				for _, prev := range acquired {
					if prev.store == storeObj && prev.fn == encl {
						pass.Reportf(call.Pos(), "store already locked in this function with no intervening Unlock; the writer lock is exclusive per state directory")
					}
				}
				acquired = append(acquired, acquisition{fn: encl, store: storeObj})
			}

			id, obj := analysis.AssignedIdent(pass.Info, path, call)
			if id == nil {
				// `return store.Lock()` and friends hand the handle to an
				// expression recipient — release is theirs. Dropping the
				// results on the floor is the violation.
				if analysis.ResultDiscarded(path, call) {
					pass.Reportf(call.Pos(), "lock handle discarded; the caller that acquires the writer lock owns its release")
				}
				return true
			}
			fate := analysis.ClassifyHandle(pass.Info, encl, obj, "Unlock")
			if !fate.Released && !fate.Escaped {
				pass.Reportf(call.Pos(), "lock acquired but never released: defer %s.Unlock() (or hand the handle to the owner of the release)", id.Name)
			}
		}
		return true
	})
}

// receiverObject resolves the object of the receiver expression when
// it is a plain identifier or selector chain ending in one.
func receiverObject(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return info.ObjectOf(x)
	case *ast.SelectorExpr:
		return info.ObjectOf(x.Sel)
	}
	return nil
}

// checkForbiddenContext flags a Lock call whose enclosing functions
// include a request handler or a scheduler callback.
func checkForbiddenContext(pass *analysis.Pass, call *ast.CallExpr, path []ast.Node) {
	for i := len(path) - 1; i >= 0; i-- {
		switch f := path[i].(type) {
		case *ast.FuncDecl:
			if analysis.FuncHasParamType(pass.Info, f, "net/http", "ResponseWriter") {
				pass.Reportf(call.Pos(), "Lock inside an HTTP handler: the daemon's serving path is lock-free (snapshots and the outcome index serve reads)")
			}
			return // outermost function reached
		case *ast.FuncLit:
			if analysis.FuncHasParamType(pass.Info, f, "net/http", "ResponseWriter") {
				pass.Reportf(call.Pos(), "Lock inside an HTTP handler: the daemon's serving path is lock-free (snapshots and the outcome index serve reads)")
				return
			}
			if analysis.FuncHasParamType(pass.Info, f, shardPkg, "Progress") {
				pass.Reportf(call.Pos(), "Lock inside a shard.Progress callback: progress hooks run on the campaign's emit path, under the lock's own writer")
				return
			}
			if analysis.FuncHasParamType(pass.Info, f, coordPkg, "Event") {
				pass.Reportf(call.Pos(), "Lock inside a coord.Event callback: coordinator events fire on the run's emit path, under the lock's own writer")
				return
			}
		}
	}
}
