// Negative cases: deterministic inputs and sorted emission.
package a

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"time"

	"spex/internal/campaignstore"
	"spex/internal/inject"
)

// Deterministic snapshot metadata may feed the fingerprint.
func hashesIdentity(snap *campaignstore.Snapshot) []byte {
	h := sha256.New()
	fmt.Fprintf(h, "%s %s %d", snap.System, snap.SetFingerprint, len(snap.Outcomes))
	return h.Sum(nil)
}

// Sorting the keys first makes the emission order deterministic; the
// counting range over the map contains no sink.
func streamsSorted(w *campaignstore.StreamWriter, outcomes map[string]inject.Outcome, stamp time.Time) error {
	keys := make([]string, 0, len(outcomes))
	for k := range outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := w.Add(k, stamp, outcomes[k]); err != nil {
			return err
		}
	}
	return nil
}
