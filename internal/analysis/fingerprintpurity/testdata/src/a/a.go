// Positive cases for fingerprintpurity.
package a

import (
	"crypto/sha256"
	"fmt"
	"hash"
	"time"

	"spex/internal/campaignstore"
	"spex/internal/inject"
	"spex/internal/outcomeindex"
)

func hashesSavedAt(snap *campaignstore.Snapshot) []byte {
	h := sha256.New()
	fmt.Fprintf(h, "%s", snap.SavedAt) // want `Snapshot.SavedAt is wall-clock provenance`
	return h.Sum(nil)
}

func hashesStamps(snap *campaignstore.Snapshot) []byte {
	h := sha256.New()
	fmt.Fprintf(h, "%v", snap.Stamps) // want `Snapshot.Stamps is wall-clock provenance`
	return h.Sum(nil)
}

func writesSavedAt(h hash.Hash, snap *campaignstore.Snapshot) {
	h.Write([]byte(snap.SavedAt.String())) // want `Snapshot.SavedAt is wall-clock provenance`
}

func streamsFromMap(w *campaignstore.StreamWriter, outcomes map[string]inject.Outcome, stamp time.Time) error {
	for k, out := range outcomes {
		if err := w.Add(k, stamp, out); err != nil { // want `fingerprint sink fed from a map range`
			return err
		}
	}
	return nil
}

func indexesFromMap(b *outcomeindex.Builder, outcomes map[string]inject.Outcome) {
	for k, out := range outcomes {
		b.Add(k, out) // want `fingerprint sink fed from a map range`
	}
}
