// Package fingerprintpurity protects the determinism of the snapshot
// fingerprint and the .campaign.idx stat-validation chain. The
// acceptance bar for the whole distributed pipeline is "merged store
// fingerprint equals unsharded store fingerprint", which only holds if
// everything folded into a fingerprint is a pure function of the
// campaign's outcomes. Two shapes break that silently:
//
//   - hashing a nondeterministic snapshot field: SavedAt and Stamps
//     are wall-clock provenance, different on every run and every
//     shard, so feeding them to a fingerprint sink makes equal stores
//     hash unequal;
//   - emitting sink records from inside a map range: Go randomizes map
//     iteration order, so the same outcomes can fold in a different
//     order per process. Sinks are order-sensitive; writers range over
//     sorted key slices.
//
// Sinks are the streaming writers that fold the fingerprint —
// (*campaignstore.SnapshotEncoder).Add, (*campaignstore.StreamWriter).Add,
// (*outcomeindex.Builder).Add — plus any write into a hash.Hash
// (h.Write, fmt.Fprintf(h, ...)), detected structurally by method set
// so new hash call sites are covered without registration.
package fingerprintpurity

import (
	"go/ast"
	"go/types"

	"spex/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "fingerprintpurity",
	Doc:  "fingerprint and outcome-index sinks take only deterministic inputs: no SavedAt/Stamps, no map-ordered emission",
	Run:  run,
}

const (
	storePkg = "spex/internal/campaignstore"
	indexPkg = "spex/internal/outcomeindex"
)

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isSink(pass, n) {
					checkSinkArgs(pass, n)
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// isSink reports whether the call folds data into a fingerprint or
// outcome index.
func isSink(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass.Info, call)
	if fn == nil {
		return false
	}
	recv := analysis.ReceiverType(pass.Info, call)
	if fn.Name() == "Add" {
		if analysis.NamedType(recv, storePkg, "SnapshotEncoder") ||
			analysis.NamedType(recv, storePkg, "StreamWriter") ||
			analysis.NamedType(recv, indexPkg, "Builder") {
			return true
		}
	}
	// h.Write / h.Sum for any hash.Hash-shaped receiver. The receiver
	// expression's type decides, not the method's declared receiver:
	// hash.Hash embeds io.Writer, so the Write method resolves to
	// io.Writer.Write and would never look hash-shaped on its own.
	if fn.Name() == "Write" || fn.Name() == "Sum" {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isHash(pass.TypeOf(sel.X)) {
			return true
		}
	}
	// fmt.Fprint* writing into a hash.
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(fn.Name() == "Fprintf" || fn.Name() == "Fprint" || fn.Name() == "Fprintln") &&
		len(call.Args) > 0 && isHash(pass.TypeOf(call.Args[0])) {
		return true
	}
	return false
}

// isHash structurally recognizes a hash.Hash: an io.Writer that also
// has Sum([]byte) []byte and BlockSize() int. Structural matching
// keeps the rule alive for fnv, sha256, or any future digest without a
// registration list.
func isHash(t types.Type) bool {
	if t == nil {
		return false
	}
	ms := types.NewMethodSet(t)
	var hasSum, hasBlock, hasWrite bool
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Sum":
			hasSum = true
		case "BlockSize":
			hasBlock = true
		case "Write":
			hasWrite = true
		}
	}
	return hasSum && hasBlock && hasWrite
}

// checkSinkArgs flags nondeterministic snapshot fields in a sink
// call's arguments.
func checkSinkArgs(pass *analysis.Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "SavedAt" && name != "Stamps" {
				return true
			}
			if analysis.NamedType(pass.TypeOf(sel.X), storePkg, "Snapshot") {
				pass.Reportf(sel.Pos(), "Snapshot.%s is wall-clock provenance, different on every run; hashing it makes equal stores fingerprint unequal", name)
			}
			return true
		})
	}
}

// checkMapRange flags sink calls inside a map iteration.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && isSink(pass, call) {
			pass.Reportf(call.Pos(), "fingerprint sink fed from a map range: iteration order is randomized, so equal stores would hash unequal — range over sorted keys")
		}
		return true
	})
}
