package fingerprintpurity_test

import (
	"testing"

	"spex/internal/analysis/analysistest"
	"spex/internal/analysis/fingerprintpurity"
)

func TestFingerprintPurity(t *testing.T) {
	analysistest.Run(t, fingerprintpurity.Analyzer, "a")
}
