package ctxflow_test

import (
	"testing"

	"spex/internal/analysis/analysistest"
	"spex/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "a")
}
