// Package ctxflow checks that cancellation actually flows. Two rules:
//
//   - context.Background() and context.TODO() are banned outside
//     package main and _test.go files: library code takes its context
//     from the caller, because a buried Background() is exactly the
//     place cancellation silently stops propagating (the coordinator's
//     spawn/watch path and the daemon's job runner were both bitten by
//     this shape).
//   - a function that receives a context.Context must not call the
//     context-free variant of an API with a context-aware twin:
//     time.Sleep, exec.Command, net/http's Get/Head/Post/PostForm,
//     inject.Run and sim.MonitorStart all ignore the cancellation the
//     signature promised to honor.
//
// Deliberate roots (a daemon's lifetime context, a process-wide memo)
// carry a //spexlint:ignore ctxflow directive with the reason.
package ctxflow

import (
	"go/ast"

	"spex/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "contexts are threaded, not re-rooted: no Background/TODO outside main, no context-free blocking calls in context-bearing functions",
	Run:  run,
}

// bannedInCtxFunc maps (package path, function) to the context-aware
// replacement named in the diagnostic.
var bannedInCtxFunc = map[[2]string]string{
	{"time", "Sleep"}:                     "a timer select on ctx.Done()",
	{"os/exec", "Command"}:                "exec.CommandContext (or document why cancellation arrives another way)",
	{"net/http", "Get"}:                   "http.NewRequestWithContext",
	{"net/http", "Head"}:                  "http.NewRequestWithContext",
	{"net/http", "Post"}:                  "http.NewRequestWithContext",
	{"net/http", "PostForm"}:              "http.NewRequestWithContext",
	{"spex/internal/inject", "Run"}:       "inject.RunContext",
	{"spex/internal/sim", "MonitorStart"}: "sim.MonitorStartContext",
}

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg != nil && pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		analysis.WithPath(file, func(n ast.Node, path []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isMain {
				if analysis.IsPkgFunc(pass.Info, call, "context", "Background") {
					pass.Reportf(call.Pos(), "context.Background() outside package main: accept a ctx from the caller so cancellation keeps propagating")
				}
				if analysis.IsPkgFunc(pass.Info, call, "context", "TODO") {
					pass.Reportf(call.Pos(), "context.TODO() outside package main: accept a ctx from the caller so cancellation keeps propagating")
				}
			}
			fn := analysis.CalleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			repl, banned := bannedInCtxFunc[[2]string{fn.Pkg().Path(), fn.Name()}]
			if !banned || !inCtxBearingFunc(pass, path) {
				return true
			}
			pass.Reportf(call.Pos(), "%s.%s ignores the context this function receives; use %s", fn.Pkg().Name(), fn.Name(), repl)
			return true
		})
	}
	return nil
}

// inCtxBearingFunc reports whether any enclosing function declaration
// or literal takes a context.Context — if one does, the context is in
// scope at the call site and dropping it is a choice, not a constraint.
func inCtxBearingFunc(pass *analysis.Pass, path []ast.Node) bool {
	for i := len(path) - 1; i >= 0; i-- {
		switch path[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if analysis.FuncHasCtxParam(pass.Info, path[i]) {
				return true
			}
		}
	}
	return false
}
