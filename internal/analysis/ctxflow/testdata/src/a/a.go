// Positive cases for ctxflow.
package a

import (
	"context"
	"net/http"
	"os/exec"
	"time"

	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/inject"
	"spex/internal/sim"
)

func roots() context.Context {
	return context.Background() // want `context.Background\(\) outside package main`
}

func todos() context.Context {
	return context.TODO() // want `context.TODO\(\) outside package main`
}

func sleeps(ctx context.Context) {
	time.Sleep(time.Second) // want `time.Sleep ignores the context`
}

func spawns(ctx context.Context) *exec.Cmd {
	return exec.Command("true") // want `exec.Command ignores the context`
}

func fetches(ctx context.Context) (*http.Response, error) {
	return http.Get("http://localhost/") // want `http.Get ignores the context`
}

func campaigns(ctx context.Context, sys sim.System, ms []confgen.Misconf) (*inject.Report, error) {
	return inject.Run(sys, ms, inject.DefaultOptions()) // want `inject.Run ignores the context`
}

func monitors(ctx context.Context, sys sim.System, env *sim.Env, cfg *conffile.File) sim.StartOutcome {
	return sim.MonitorStart(sys, env, cfg, time.Second) // want `sim.MonitorStart ignores the context`
}

// A nested literal still sees the outer function's context.
func nested(ctx context.Context) func() {
	return func() {
		time.Sleep(time.Minute) // want `time.Sleep ignores the context`
	}
}
