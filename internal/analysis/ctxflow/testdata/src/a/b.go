// Negative cases: no context in scope, threaded variants, and a
// waived deliberate root.
package a

import (
	"context"
	"os/exec"
	"time"

	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/inject"
	"spex/internal/sim"
)

// No context in scope: the context-free call is all there is.
func sleepsWithoutCtx() {
	time.Sleep(time.Millisecond)
}

// The context-aware twins are the fix.
func threaded(ctx context.Context, sys sim.System, ms []confgen.Misconf) (*inject.Report, error) {
	_ = exec.CommandContext(ctx, "true")
	return inject.RunContext(ctx, sys, ms, inject.DefaultOptions())
}

func monitorsThreaded(ctx context.Context, sys sim.System, env *sim.Env, cfg *conffile.File) sim.StartOutcome {
	return sim.MonitorStartContext(ctx, sys, env, cfg, time.Second)
}

// A deliberate root carries the waiver with its reason.
func waivedRoot() context.Context {
	//spexlint:ignore ctxflow fixture demonstrates a documented root
	return context.Background()
}
