// Package obsmetric enforces the metric-registration discipline of
// internal/obs. A metric family must exist exactly once per process,
// and its name must be greppable from the scrape output back to one
// declaration site, so:
//
//   - a registration call (Counter, Gauge, Histogram, or their Vec
//     variants on an obs.Registry) must sit in a package-level var
//     initializer — registering inside a function either panics on the
//     second call or silently ties family creation to control flow;
//   - the name argument must be an identifier denoting a package-level
//     string constant, never an inline literal or a computed string:
//     the const is the single source of truth a dashboard query, a CI
//     grep, and the registration share;
//   - the same constant must not feed two registration calls in a
//     package — the duplicate would panic the first time both
//     initializers link into one binary.
//
// Test files are exempt (they exercise fresh registries with ad-hoc
// names), as is package obs itself.
package obsmetric

import (
	"go/ast"
	"go/token"
	"go/types"

	"spex/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "obsmetric",
	Doc:  "obs metrics register at package level under package-level name consts, each const exactly once",
	Run:  run,
}

const obsPkg = "spex/internal/obs"

// registrationMethods are the obs.Registry methods that create a
// metric family.
var registrationMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg != nil && pass.Pkg.Path() == obsPkg {
		return nil
	}
	// seen maps each name constant to its first registration site, so
	// a second registration names the first in its diagnostic.
	seen := make(map[types.Object]token.Pos)
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		analysis.WithPath(file, func(n ast.Node, path []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.Info, call)
			if fn == nil || !registrationMethods[fn.Name()] {
				return true
			}
			if !analysis.NamedType(analysis.ReceiverType(pass.Info, call), obsPkg, "Registry") {
				return true
			}
			if analysis.EnclosingFunc(path) != nil {
				pass.Reportf(call.Pos(), "obs metric registered inside a function; registration belongs in a package-level var so the family exists exactly once for the process lifetime")
			}
			if len(call.Args) == 0 {
				return true
			}
			var obj types.Object
			switch arg := ast.Unparen(call.Args[0]).(type) {
			case *ast.Ident:
				obj = pass.ObjectOf(arg)
			case *ast.SelectorExpr:
				obj = pass.ObjectOf(arg.Sel)
			}
			cst, ok := obj.(*types.Const)
			if !ok {
				pass.Reportf(call.Args[0].Pos(), "obs metric name must be a package-level string const, not an inline expression; the const is the single name the registration, the scrape output, and the dashboards share")
				return true
			}
			if cst.Pkg() != nil && cst.Parent() != cst.Pkg().Scope() {
				pass.Reportf(call.Args[0].Pos(), "metric name const %s is function-local; hoist it to package level", cst.Name())
			}
			if first, dup := seen[cst]; dup {
				pass.Reportf(call.Pos(), "metric const %s already registered at %s; a family registers exactly once", cst.Name(), analysis.LineOf(pass.Fset, first))
			} else {
				seen[cst] = call.Pos()
			}
			return true
		})
	}
	return nil
}
