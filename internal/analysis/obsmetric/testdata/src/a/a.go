// Positive cases for obsmetric.
package a

import "spex/internal/obs"

const (
	dupName    = "a_dup_total"
	inFuncName = "a_in_func_total"
	prefix     = "a_"
)

var (
	_ = obs.Default().Counter("a_literal_total", "inline literal name") // want `must be a package-level string const`
	_ = obs.Default().Gauge(prefix+"computed", "computed name")         // want `must be a package-level string const`
	_ = obs.Default().Counter(dupName, "first registration")
	_ = obs.Default().Counter(dupName, "second registration") // want `already registered`
)

func registerLate() *obs.Counter {
	return obs.Default().Counter(inFuncName, "function-scoped registration") // want `inside a function`
}
