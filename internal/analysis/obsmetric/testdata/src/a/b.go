// Negative cases: the package-level const discipline, every family
// kind, each const registered exactly once.
package a

import "spex/internal/obs"

const (
	goodCounter = "b_tasks_total"
	goodGauge   = "b_queue_depth"
	goodHist    = "b_task_seconds"
	goodVec     = "b_tasks_by_kind_total"
)

var (
	bTasks = obs.Default().Counter(goodCounter, "tasks executed")
	bDepth = obs.Default().Gauge(goodGauge, "queue depth")
	bLat   = obs.Default().Histogram(goodHist, "task latency", obs.DurationBuckets)
	bKinds = obs.Default().CounterVec(goodVec, "tasks by kind", "kind")
)
