package obsmetric_test

import (
	"testing"

	"spex/internal/analysis/analysistest"
	"spex/internal/analysis/obsmetric"
)

func TestObsMetric(t *testing.T) {
	analysistest.Run(t, obsmetric.Analyzer, "a")
}
