// Package annot parses SPEX annotations. Developers annotate the mapping
// *interfaces* (not every mapping pair): the option-table structure, the
// parser function, or the getter functions (paper §2.2.1, Figure 4). The
// syntax mirrors the paper:
//
//	{ @STRUCT = configInts
//	  @PAR = [intOption, 1]
//	  @VAR = [intOption, 2] }
//
//	{ @STRUCT = coreCmds
//	  @PAR = [command, 1]
//	  @VAR = ([command, 2], $arg) }
//
//	{ @PARSER = loadServerConfig
//	  @PAR = $key
//	  @VAR = $value }
//
//	{ @GETTER = GetI32
//	  @PAR = 1
//	  @VAR = $RET }
//
// Lines starting with '#' are comments. The number of non-comment,
// non-empty lines is the paper's "lines of annotation" (LoA, Table 4).
package annot

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind is the annotated mapping convention.
type Kind int

const (
	// KindStruct is structure-based mapping: an option table maps names
	// directly to variables (Figure 4a) or to handler functions
	// (Figure 4b).
	KindStruct Kind = iota
	// KindParser is comparison-based mapping: a parser function matches
	// parameter names with string comparisons (Figure 4c).
	KindParser
	// KindGetter is container-based mapping: getter functions retrieve
	// values from a central container (Figure 4d).
	KindGetter
)

func (k Kind) String() string {
	switch k {
	case KindStruct:
		return "structure"
	case KindParser:
		return "comparison"
	case KindGetter:
		return "container"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// FieldRef addresses a struct field by type name and 1-based index.
type FieldRef struct {
	Struct string
	Index  int
}

// Annotation is one parsed annotation block.
type Annotation struct {
	Kind Kind
	// Target is the annotated interface: the option-table variable name
	// (KindStruct), the parser function name (KindParser), or the getter
	// function name (KindGetter).
	Target string

	// Structure-based fields.
	ParField FieldRef // which field holds the parameter name
	VarField FieldRef // which field holds the variable (or handler func)
	// HandlerArg names the handler-function argument holding the value
	// ("" for direct variable mapping).
	HandlerArg string

	// Parser-based fields: parameter names of the parser function that
	// hold the parameter name and value. Either $name form or $argv[i]
	// form; the latter is stored as "argv" with the index.
	ParName  string
	ParIndex int // used when ParName == "argv"
	VarName  string
	VarIndex int

	// Getter-based fields: 1-based argument index holding the parameter
	// name. The mapped variable is the call result ($RET).
	ParArgIndex int
}

// File is a parsed annotation file.
type File struct {
	Annotations []Annotation
	// LoA is the lines-of-annotation count (Table 4).
	LoA int
}

// Parse parses annotation text.
func Parse(src string) (*File, error) {
	f := &File{}
	var cur map[string]string
	var curOrder []string
	flush := func() error {
		if cur == nil {
			return nil
		}
		a, err := buildAnnotation(cur, curOrder)
		if err != nil {
			return err
		}
		f.Annotations = append(f.Annotations, a)
		cur = nil
		curOrder = nil
		return nil
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f.LoA++
		for line != "" {
			switch {
			case strings.HasPrefix(line, "{"):
				if cur != nil {
					return nil, fmt.Errorf("annot: line %d: nested block", lineNo+1)
				}
				cur = make(map[string]string)
				line = strings.TrimSpace(line[1:])
			case strings.HasPrefix(line, "}"):
				if cur == nil {
					return nil, fmt.Errorf("annot: line %d: unmatched }", lineNo+1)
				}
				if err := flush(); err != nil {
					return nil, fmt.Errorf("annot: line %d: %w", lineNo+1, err)
				}
				line = strings.TrimSpace(line[1:])
			case strings.HasPrefix(line, "@"):
				if cur == nil {
					return nil, fmt.Errorf("annot: line %d: directive outside block", lineNo+1)
				}
				// Consume up to the next top-level '@' or '}'.
				end := len(line)
				depth := 0
				for i := 1; i < len(line); i++ {
					switch line[i] {
					case '[', '(':
						depth++
					case ']', ')':
						depth--
					case '@', '}':
						if depth == 0 {
							end = i
						}
					}
					if end != len(line) {
						break
					}
				}
				stmt := strings.TrimSpace(line[:end])
				eq := strings.Index(stmt, "=")
				if eq < 0 {
					return nil, fmt.Errorf("annot: line %d: missing '=' in %q", lineNo+1, stmt)
				}
				key := strings.TrimSpace(stmt[:eq])
				val := strings.TrimSpace(stmt[eq+1:])
				if _, dup := cur[key]; dup {
					return nil, fmt.Errorf("annot: line %d: duplicate %s", lineNo+1, key)
				}
				cur[key] = val
				curOrder = append(curOrder, key)
				line = strings.TrimSpace(line[end:])
			default:
				return nil, fmt.Errorf("annot: line %d: unexpected %q", lineNo+1, line)
			}
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("annot: unterminated block")
	}
	return f, nil
}

func buildAnnotation(kv map[string]string, order []string) (Annotation, error) {
	var a Annotation
	switch {
	case kv["@STRUCT"] != "":
		a.Kind = KindStruct
		a.Target = kv["@STRUCT"]
		pf, err := parseFieldRef(kv["@PAR"])
		if err != nil {
			return a, fmt.Errorf("@PAR: %w", err)
		}
		a.ParField = pf
		varSpec := kv["@VAR"]
		if strings.HasPrefix(varSpec, "(") {
			// ([command, 2], $arg)
			inner := strings.TrimSuffix(strings.TrimPrefix(varSpec, "("), ")")
			close := strings.Index(inner, "]")
			if close < 0 {
				return a, fmt.Errorf("@VAR: malformed handler ref %q", varSpec)
			}
			vf, err := parseFieldRef(inner[:close+1])
			if err != nil {
				return a, fmt.Errorf("@VAR: %w", err)
			}
			a.VarField = vf
			rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(inner[close+1:]), ","))
			if !strings.HasPrefix(rest, "$") {
				return a, fmt.Errorf("@VAR: handler argument must be $name, got %q", rest)
			}
			a.HandlerArg = rest[1:]
		} else {
			vf, err := parseFieldRef(varSpec)
			if err != nil {
				return a, fmt.Errorf("@VAR: %w", err)
			}
			a.VarField = vf
		}
	case kv["@PARSER"] != "":
		a.Kind = KindParser
		a.Target = kv["@PARSER"]
		var err error
		a.ParName, a.ParIndex, err = parseDollar(kv["@PAR"])
		if err != nil {
			return a, fmt.Errorf("@PAR: %w", err)
		}
		a.VarName, a.VarIndex, err = parseDollar(kv["@VAR"])
		if err != nil {
			return a, fmt.Errorf("@VAR: %w", err)
		}
	case kv["@GETTER"] != "":
		a.Kind = KindGetter
		a.Target = kv["@GETTER"]
		n, err := strconv.Atoi(strings.TrimSpace(kv["@PAR"]))
		if err != nil {
			return a, fmt.Errorf("@PAR: getter annotations take a 1-based argument index: %w", err)
		}
		a.ParArgIndex = n
		if v := strings.TrimSpace(kv["@VAR"]); v != "$RET" {
			return a, fmt.Errorf("@VAR: getter annotations require $RET, got %q", v)
		}
	default:
		return a, fmt.Errorf("block needs one of @STRUCT/@PARSER/@GETTER (saw %s)", strings.Join(order, ","))
	}
	return a, nil
}

// parseFieldRef parses "[TypeName, index]".
func parseFieldRef(s string) (FieldRef, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return FieldRef{}, fmt.Errorf("want [Type, index], got %q", s)
	}
	inner := s[1 : len(s)-1]
	parts := strings.Split(inner, ",")
	if len(parts) != 2 {
		return FieldRef{}, fmt.Errorf("want [Type, index], got %q", s)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return FieldRef{}, fmt.Errorf("bad index in %q: %w", s, err)
	}
	return FieldRef{Struct: strings.TrimSpace(parts[0]), Index: idx}, nil
}

// parseDollar parses "$name" or "$argv[i]".
func parseDollar(s string) (name string, index int, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "$") {
		return "", 0, fmt.Errorf("want $name or $argv[i], got %q", s)
	}
	s = s[1:]
	if open := strings.Index(s, "["); open >= 0 {
		if !strings.HasSuffix(s, "]") {
			return "", 0, fmt.Errorf("malformed index in %q", s)
		}
		idx, err := strconv.Atoi(s[open+1 : len(s)-1])
		if err != nil {
			return "", 0, fmt.Errorf("bad index in %q: %w", s, err)
		}
		return s[:open], idx, nil
	}
	return s, -1, nil
}
