package annot

import (
	"strings"
	"testing"
)

func TestParseStructDirect(t *testing.T) {
	f, err := Parse(`{ @STRUCT = configInts
  @PAR = [intOption, 1]
  @VAR = [intOption, 2] }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Annotations) != 1 {
		t.Fatalf("annotations = %d", len(f.Annotations))
	}
	a := f.Annotations[0]
	if a.Kind != KindStruct || a.Target != "configInts" {
		t.Errorf("kind/target = %s/%s", a.Kind, a.Target)
	}
	if a.ParField != (FieldRef{Struct: "intOption", Index: 1}) {
		t.Errorf("ParField = %+v", a.ParField)
	}
	if a.VarField != (FieldRef{Struct: "intOption", Index: 2}) {
		t.Errorf("VarField = %+v", a.VarField)
	}
	if a.HandlerArg != "" {
		t.Errorf("HandlerArg = %q, want empty", a.HandlerArg)
	}
	if f.LoA != 3 {
		t.Errorf("LoA = %d, want 3", f.LoA)
	}
}

func TestParseStructHandler(t *testing.T) {
	f, err := Parse(`{ @STRUCT = coreCmds @PAR = [command, 1] @VAR = ([command, 2], $arg) }`)
	if err != nil {
		t.Fatal(err)
	}
	a := f.Annotations[0]
	if a.HandlerArg != "arg" {
		t.Errorf("HandlerArg = %q", a.HandlerArg)
	}
	if a.VarField.Index != 2 {
		t.Errorf("VarField = %+v", a.VarField)
	}
	if f.LoA != 1 {
		t.Errorf("LoA = %d, want 1 (single line)", f.LoA)
	}
}

func TestParseParser(t *testing.T) {
	f, err := Parse(`{ @PARSER = loadServerConfig
  @PAR = $key  @VAR = $value }`)
	if err != nil {
		t.Fatal(err)
	}
	a := f.Annotations[0]
	if a.Kind != KindParser || a.Target != "loadServerConfig" {
		t.Errorf("kind/target = %s/%s", a.Kind, a.Target)
	}
	if a.ParName != "key" || a.ParIndex != -1 {
		t.Errorf("par = %q/%d", a.ParName, a.ParIndex)
	}
	if a.VarName != "value" {
		t.Errorf("var = %q", a.VarName)
	}
}

func TestParseParserArgvForm(t *testing.T) {
	f, err := Parse(`{ @PARSER = load @PAR = $argv[0] @VAR = $argv[1] }`)
	if err != nil {
		t.Fatal(err)
	}
	a := f.Annotations[0]
	if a.ParName != "argv" || a.ParIndex != 0 {
		t.Errorf("par = %q/%d", a.ParName, a.ParIndex)
	}
	if a.VarName != "argv" || a.VarIndex != 1 {
		t.Errorf("var = %q/%d", a.VarName, a.VarIndex)
	}
}

func TestParseGetter(t *testing.T) {
	f, err := Parse(`{ @GETTER = getI32
  @PAR = 1
  @VAR = $RET }`)
	if err != nil {
		t.Fatal(err)
	}
	a := f.Annotations[0]
	if a.Kind != KindGetter || a.Target != "getI32" || a.ParArgIndex != 1 {
		t.Errorf("annotation = %+v", a)
	}
}

func TestMultipleBlocksAndComments(t *testing.T) {
	f, err := Parse(`# three tables
{ @STRUCT = a @PAR = [x, 1] @VAR = [x, 2] }
# second
{ @STRUCT = b @PAR = [y, 1] @VAR = [y, 3] }
{ @GETTER = g @PAR = 2 @VAR = $RET }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Annotations) != 3 {
		t.Fatalf("annotations = %d", len(f.Annotations))
	}
	if f.LoA != 3 {
		t.Errorf("LoA = %d, want 3 (comments excluded)", f.LoA)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantErr string
	}{
		{`{ @PAR = [x, 1] }`, "needs one of"},
		{`{ @STRUCT = t @PAR = [x 1] @VAR = [x, 2] }`, "want [Type, index]"},
		{`{ @STRUCT = t @PAR = [x, z] @VAR = [x, 2] }`, "bad index"},
		{`{ @PARSER = f @PAR = key @VAR = $v }`, "want $name"},
		{`{ @GETTER = g @PAR = one @VAR = $RET }`, "1-based argument index"},
		{`{ @GETTER = g @PAR = 1 @VAR = $OUT }`, "require $RET"},
		{`{ @STRUCT = t @PAR = [x, 1] @VAR = [x, 2]`, "unterminated"},
		{`} `, "unmatched"},
		{`{ @STRUCT = a @STRUCT = b @PAR = [x,1] @VAR = [x,2] }`, "duplicate"},
		{`{ @VAR = (bogus @STRUCT = t }`, "unterminated"},
		{`@STRUCT = t`, "directive outside block"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Parse(%q) error = %v, want substring %q", c.src, err, c.wantErr)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindStruct.String() != "structure" || KindParser.String() != "comparison" ||
		KindGetter.String() != "container" {
		t.Error("kind names wrong")
	}
}

func TestEmptyInput(t *testing.T) {
	f, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Annotations) != 0 || f.LoA != 0 {
		t.Errorf("empty input = %+v", f)
	}
}
