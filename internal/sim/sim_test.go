package sim

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"spex/internal/conffile"
	"spex/internal/constraint"
)

// stubSystem lets tests drive each MonitorStart outcome.
type stubSystem struct {
	start func(env *Env, cfg *conffile.File) (Instance, error)
}

func (s *stubSystem) Name() string                   { return "stub" }
func (s *stubSystem) Description() string            { return "test stub" }
func (s *stubSystem) Syntax() conffile.Syntax        { return conffile.SyntaxEquals }
func (s *stubSystem) DefaultConfig() string          { return "a = 1\n" }
func (s *stubSystem) Sources() map[string]string     { return nil }
func (s *stubSystem) Annotations() string            { return "" }
func (s *stubSystem) Manual() map[string]ManualEntry { return nil }
func (s *stubSystem) GroundTruth() *constraint.Set   { return constraint.NewSet("stub") }
func (s *stubSystem) SetupEnv(env *Env)              {}
func (s *stubSystem) Tests() []FuncTest              { return nil }
func (s *stubSystem) Start(env *Env, cfg *conffile.File) (Instance, error) {
	return s.start(env, cfg)
}

type stubInstance struct{ stopped bool }

func (i *stubInstance) Effective(string) (string, bool) { return "", false }
func (i *stubInstance) Stop()                           { i.stopped = true }

func monitor(t *testing.T, start func(env *Env, cfg *conffile.File) (Instance, error)) StartOutcome {
	t.Helper()
	env := NewEnv()
	cfg, err := conffile.Parse("a = 1\n", conffile.SyntaxEquals)
	if err != nil {
		t.Fatal(err)
	}
	return MonitorStart(&stubSystem{start: start}, env, cfg, 50*time.Millisecond)
}

func TestMonitorStartOK(t *testing.T) {
	out := monitor(t, func(env *Env, cfg *conffile.File) (Instance, error) {
		return &stubInstance{}, nil
	})
	if out.Kind != StartOK || out.Instance == nil {
		t.Fatalf("outcome = %s", out.Kind)
	}
}

func TestMonitorStartCrash(t *testing.T) {
	out := monitor(t, func(env *Env, cfg *conffile.File) (Instance, error) {
		panic("segfault")
	})
	if out.Kind != StartCrash {
		t.Fatalf("outcome = %s, want crash", out.Kind)
	}
	if out.PanicVal != "segfault" {
		t.Errorf("panic value = %v", out.PanicVal)
	}
}

func TestMonitorStartExit(t *testing.T) {
	out := monitor(t, func(env *Env, cfg *conffile.File) (Instance, error) {
		return nil, &ExitError{Status: 2, Reason: "bad option"}
	})
	if out.Kind != StartExit {
		t.Fatalf("outcome = %s, want exit", out.Kind)
	}
	if out.Exit.Status != 2 {
		t.Errorf("status = %d", out.Exit.Status)
	}
}

func TestMonitorStartWrappedExit(t *testing.T) {
	out := monitor(t, func(env *Env, cfg *conffile.File) (Instance, error) {
		return nil, fmt.Errorf("during boot: %w", &ExitError{Status: 1, Reason: "r"})
	})
	if out.Kind != StartExit {
		t.Fatalf("outcome = %s, want exit via errors.As", out.Kind)
	}
}

func TestMonitorStartError(t *testing.T) {
	out := monitor(t, func(env *Env, cfg *conffile.File) (Instance, error) {
		return nil, errors.New("plain failure")
	})
	if out.Kind != StartError {
		t.Fatalf("outcome = %s, want error", out.Kind)
	}
}

func TestMonitorStartHang(t *testing.T) {
	out := monitor(t, func(env *Env, cfg *conffile.File) (Instance, error) {
		Hang()
		return nil, nil
	})
	if out.Kind != StartHang {
		t.Fatalf("outcome = %s, want hang", out.Kind)
	}
}

func TestRunTestRecoversPanics(t *testing.T) {
	ft := FuncTest{Name: "boom", Run: func(env *Env, inst Instance) error { panic("x") }}
	err := RunTest(ft, NewEnv(), &stubInstance{})
	if err == nil {
		t.Fatal("panicking test must yield an error")
	}
}

func TestManualEntryDocumentsKind(t *testing.T) {
	me := ManualEntry{Documented: []constraint.Kind{constraint.KindRange}}
	if !me.DocumentsKind(constraint.KindRange) {
		t.Error("range should be documented")
	}
	if me.DocumentsKind(constraint.KindControlDep) {
		t.Error("dep should not be documented")
	}
}

func TestExitErrorMessage(t *testing.T) {
	e := &ExitError{Status: 1, Reason: "bad"}
	if e.Error() != "exit status 1: bad" {
		t.Errorf("message = %q", e.Error())
	}
	if _, ok := AsExit(errors.New("x")); ok {
		t.Error("AsExit on a plain error")
	}
}

func TestStartKindStrings(t *testing.T) {
	names := map[StartKind]string{
		StartOK: "ok", StartCrash: "crash", StartExit: "exit",
		StartHang: "hang", StartError: "error",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestMonitorStartContextCancelled(t *testing.T) {
	env := NewEnv()
	cfg, err := conffile.Parse("a = 1\n", conffile.SyntaxEquals)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	release := make(chan struct{})
	defer close(release)
	out := MonitorStartContext(ctx, &stubSystem{start: func(env *Env, cfg *conffile.File) (Instance, error) {
		<-release
		return &stubInstance{}, nil
	}}, env, cfg, time.Second)
	if out.Kind != StartCancelled {
		t.Fatalf("outcome = %s, want cancelled", out.Kind)
	}
	if !errors.Is(out.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", out.Err)
	}
}

func TestMonitorStartContextUncancelledBehavesAsMonitorStart(t *testing.T) {
	env := NewEnv()
	cfg, err := conffile.Parse("a = 1\n", conffile.SyntaxEquals)
	if err != nil {
		t.Fatal(err)
	}
	out := MonitorStartContext(context.Background(), &stubSystem{start: func(env *Env, cfg *conffile.File) (Instance, error) {
		return &stubInstance{}, nil
	}}, env, cfg, time.Second)
	if out.Kind != StartOK {
		t.Fatalf("outcome = %s, want ok", out.Kind)
	}
}
