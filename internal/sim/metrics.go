// Boot metrics: every monitored target boot records its observed
// reaction kind (ok/crash/exit/hang/error/cancelled) in the obs
// registry.
package sim

import "spex/internal/obs"

const metricBoots = "spex_sim_boots_total"

var mBoots = obs.Default().CounterVec(metricBoots, "monitored target boots by observed reaction kind", "kind")
