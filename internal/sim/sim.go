// Package sim defines the contract between the injection harness and the
// simulated target systems, and the monitor that observes how a target
// reacts to a (mis)configuration.
//
// The paper's SPEX-INJ boots real servers and watches for crashes, hangs and
// test failures. Here every target is a hermetic Go implementation running
// on virtual substrates (vfs, vnet, simlog); the monitor translates Go-level
// events into the paper's observables:
//
//	panic during startup      -> crash
//	blocking past a deadline  -> hang
//	*ExitError from Start     -> termination with an exit status
//	nil Instance error        -> server running; functional tests may run
package sim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"spex/internal/conffile"
	"spex/internal/constraint"
	"spex/internal/simlog"
	"spex/internal/vfs"
	"spex/internal/vnet"
)

// Env bundles the virtual substrates a target instance runs on.
type Env struct {
	FS  *vfs.FS
	Net *vnet.Net
	Log *simlog.Log
}

// NewEnv returns a fresh environment with empty substrates.
func NewEnv() *Env {
	return &Env{FS: vfs.New(), Net: vnet.New(), Log: simlog.New()}
}

// ExitError is returned by System.Start to model controlled process
// termination (exit(status)) during startup.
type ExitError struct {
	Status int
	Reason string
}

func (e *ExitError) Error() string {
	return fmt.Sprintf("exit status %d: %s", e.Status, e.Reason)
}

// AsExit extracts an *ExitError from err, if any.
func AsExit(err error) (*ExitError, bool) {
	var ee *ExitError
	if errors.As(err, &ee) {
		return ee, true
	}
	return nil, false
}

// Instance is a started target system.
type Instance interface {
	// Effective returns the value the system is actually using for the
	// parameter after parsing/normalization. The harness compares it with
	// the configured value to detect silent violation.
	Effective(param string) (string, bool)
	// Stop shuts the instance down and releases substrate resources.
	Stop()
}

// FuncTest is one functional test from a target's own test infrastructure
// (paper §3.1: "SPEX-INJ leverages each software's own test infrastructure").
type FuncTest struct {
	Name string
	// Weight is the test's relative running time; the harness sorts by it
	// to run the shortest test first (the paper's second optimization).
	Weight int
	// Run exercises the instance and returns an error on functional
	// failure. The concrete Instance type is target-specific.
	Run func(env *Env, inst Instance) error
}

// ManualEntry is one parameter's user-manual entry. Undocumented-constraint
// detection (Table 8) compares inferred constraints against Documented.
type ManualEntry struct {
	Prose      string
	Documented []constraint.Kind
}

// DocumentsKind reports whether the entry documents constraints of kind k.
func (m ManualEntry) DocumentsKind(k constraint.Kind) bool {
	for _, d := range m.Documented {
		if d == k {
			return true
		}
	}
	return false
}

// System is a simulated target: the same source corpus is analyzed by SPEX
// and executed by the harness.
type System interface {
	// Name is the system's short name ("Storage-A", "httpd", ...).
	Name() string
	// Description is a one-line description for reports.
	Description() string
	// Syntax is the configuration-file syntax.
	Syntax() conffile.Syntax
	// DefaultConfig is the template configuration file (all defaults).
	DefaultConfig() string
	// Sources returns the configuration-handling source corpus, keyed by
	// file name. This is the code SPEX analyzes; it mirrors the code the
	// target actually executes.
	Sources() map[string]string
	// Annotations is the SPEX annotation text that seeds
	// parameter-to-variable mapping (paper §2.2.1, Figure 4).
	Annotations() string
	// Manual returns the user manual, keyed by parameter name.
	Manual() map[string]ManualEntry
	// GroundTruth returns the manually verified constraint set used to
	// score inference accuracy (Table 12).
	GroundTruth() *constraint.Set
	// SetupEnv populates the virtual substrates with the files and state
	// the default configuration expects (doc roots, stopword files, ...).
	SetupEnv(env *Env)
	// Start parses the configuration and boots the system. It may panic
	// (crash), block (hang), return *ExitError (termination) or return a
	// running Instance.
	Start(env *Env, cfg *conffile.File) (Instance, error)
	// Tests returns the system's functional test suite.
	Tests() []FuncTest
}

// StartKind classifies the outcome of a monitored Start call.
type StartKind int

const (
	// StartOK: the instance is running.
	StartOK StartKind = iota
	// StartCrash: Start panicked.
	StartCrash
	// StartExit: Start returned *ExitError.
	StartExit
	// StartHang: Start did not return before the deadline.
	StartHang
	// StartError: Start returned an unexpected non-exit error.
	StartError
	// StartCancelled: the campaign context was cancelled while the boot
	// was in flight; the outcome carries the context error.
	StartCancelled
)

func (k StartKind) String() string {
	switch k {
	case StartOK:
		return "ok"
	case StartCrash:
		return "crash"
	case StartExit:
		return "exit"
	case StartHang:
		return "hang"
	case StartError:
		return "error"
	case StartCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("StartKind(%d)", int(k))
}

// StartOutcome is the observed result of booting a target.
type StartOutcome struct {
	Kind     StartKind
	Instance Instance
	Exit     *ExitError
	PanicVal any
	Err      error
}

// MonitorStart boots the system under observation, recovering panics and
// enforcing a hang deadline. Targets that hang block on a channel rather
// than sleeping, so the deadline can be short; the goroutine of a hung
// start is abandoned, which is safe only because of a construction rule
// every target must follow: hang points (sim.Hang or equivalent blocking)
// must sit outside any lock — in particular outside the per-target boot
// mutex that serializes the global-config parse phase. A target that
// hung while holding its boot lock would wedge every later boot of that
// target.
func MonitorStart(sys System, env *Env, cfg *conffile.File, deadline time.Duration) StartOutcome {
	// Context-free compatibility shim: callers with a campaign context
	// use MonitorStartContext; this entry point has none to thread.
	//spexlint:ignore ctxflow context-free entry point, deadline still bounds the boot
	return MonitorStartContext(context.Background(), sys, env, cfg, deadline)
}

// MonitorStartContext is MonitorStart under a campaign context: a
// cancelled context abandons the in-flight boot the same way a hang
// deadline does and reports StartCancelled, so a parallel campaign can
// be stopped mid-misconfiguration without waiting out the deadline.
func MonitorStartContext(ctx context.Context, sys System, env *Env, cfg *conffile.File, deadline time.Duration) StartOutcome {
	out := monitorStart(ctx, sys, env, cfg, deadline)
	mBoots.With(out.Kind.String()).Inc()
	return out
}

func monitorStart(ctx context.Context, sys System, env *Env, cfg *conffile.File, deadline time.Duration) StartOutcome {
	type result struct {
		inst     Instance
		err      error
		panicked bool
		panicVal any
	}
	ch := make(chan result, 1)
	go func() {
		var res result
		defer func() {
			if r := recover(); r != nil {
				res.panicked = true
				res.panicVal = r
			}
			ch <- res
		}()
		res.inst, res.err = sys.Start(env, cfg)
	}()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case res := <-ch:
		switch {
		case res.panicked:
			env.Log.Fatalf("Segmentation fault (core dumped): %v", res.panicVal)
			return StartOutcome{Kind: StartCrash, PanicVal: res.panicVal}
		case res.err != nil:
			if ee, ok := AsExit(res.err); ok {
				return StartOutcome{Kind: StartExit, Exit: ee, Err: res.err}
			}
			return StartOutcome{Kind: StartError, Err: res.err}
		default:
			return StartOutcome{Kind: StartOK, Instance: res.inst}
		}
	case <-timer.C:
		return StartOutcome{Kind: StartHang}
	case <-ctx.Done():
		return StartOutcome{Kind: StartCancelled, Err: ctx.Err()}
	}
}

// RunTest executes one functional test with panic recovery, returning the
// failure (or panic converted to an error) if any.
func RunTest(t FuncTest, env *Env, inst Instance) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("test %s panicked: %v", t.Name, r)
		}
	}()
	return t.Run(env, inst)
}

// Hang blocks forever; targets call it to model a hung startup (e.g. a
// retry loop that never terminates).
func Hang() {
	select {}
}
