// Package casedb reconstructs the paper's historical-misconfiguration
// study (§4.2, Tables 9–10). The paper samples 246 customer cases from the
// Storage-A issue database and 177 cases from open-source forums, then asks
// which could have been avoided had SPEX hardened the system. The raw case
// texts are proprietary/forum data we do not have, so the database is
// synthetic: for each studied system we regenerate a case population whose
// category distribution matches the paper's published breakdown, but
// avoidability is *computed* against the constraints our SPEX actually
// infers — a case is avoidable only if the tool finds a constraint of the
// right kind for the misconfigured parameter.
package casedb

import (
	"fmt"
	"sort"

	"spex/internal/constraint"
)

// Category is the paper's Table 10 breakdown of why a case does or does
// not benefit from SPEX.
type Category int

const (
	// CategoryAvoidable: the case violates a constraint SPEX infers;
	// hardening would have pinpointed or prevented it.
	CategoryAvoidable Category = iota
	// CategorySingleSW: the constraint is program-specific with no
	// concrete pattern (SPEX's single-software inference incapability).
	CategorySingleSW
	// CategoryCrossSW: the error spans multiple software systems;
	// cross-software correlation is future work (§2.3).
	CategoryCrossSW
	// CategoryConform: the setting conforms to all constraints but does
	// not match the user's intention.
	CategoryConform
	// CategoryGoodReaction: the system already pinpointed the error;
	// the user reported it anyway.
	CategoryGoodReaction
)

var categoryNames = [...]string{
	"avoidable", "single-sw-incapability", "cross-sw-incapability",
	"conform-to-constraints", "good-reactions",
}

func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Case is one historical misconfiguration report.
type Case struct {
	ID     string
	System string
	// Param is the misconfigured parameter ("" for cross-software cases
	// whose root cause is outside the system).
	Param string
	// ViolatesKind is the constraint kind the error violates, when the
	// error is a constraint violation at all.
	ViolatesKind constraint.Kind
	Violation    bool
	// CrossSoftware marks errors spanning software stacks.
	CrossSoftware bool
	// Patternless marks constraints with no concrete program pattern
	// (complicated string manipulation, compositions of conditions).
	Patternless bool
	// Pinpointed marks cases where the system's logs already named the
	// parameter.
	Pinpointed bool
	// Summary is a one-line description for reports.
	Summary string
}

// Classify determines a case's category given the constraints inferred for
// its system. The inferred set decides avoidability: SPEX helps only where
// it actually finds the violated constraint.
func Classify(c Case, inferred *constraint.Set) Category {
	switch {
	case c.CrossSoftware:
		return CategoryCrossSW
	case c.Patternless:
		return CategorySingleSW
	case !c.Violation:
		return CategoryConform
	case c.Pinpointed:
		return CategoryGoodReaction
	}
	if inferred != nil {
		for _, k := range inferred.ByParam(c.Param) {
			if k.Kind == c.ViolatesKind {
				return CategoryAvoidable
			}
		}
		// Violation of a constraint SPEX missed.
		return CategorySingleSW
	}
	return CategoryAvoidable
}

// Study is the per-system case population and classification result.
type Study struct {
	System string
	Cases  []Case
	ByCat  map[Category][]Case
}

// Total returns the number of sampled cases.
func (s *Study) Total() int { return len(s.Cases) }

// Count returns the number of cases in a category.
func (s *Study) Count(c Category) int { return len(s.ByCat[c]) }

// Pct returns a category's share of the population in percent.
func (s *Study) Pct(c Category) float64 {
	if len(s.Cases) == 0 {
		return 0
	}
	return 100 * float64(s.Count(c)) / float64(len(s.Cases))
}

// Run classifies a case population against an inferred constraint set.
func Run(system string, cases []Case, inferred *constraint.Set) *Study {
	st := &Study{System: system, Cases: cases, ByCat: map[Category][]Case{}}
	for _, c := range cases {
		cat := Classify(c, inferred)
		st.ByCat[cat] = append(st.ByCat[cat], c)
	}
	return st
}

// Spec drives the deterministic generator: how many cases of each flavour
// to produce for a system. The shipped specs (PaperSpecs) encode the
// paper's Tables 9–10 distributions.
type Spec struct {
	System string
	// Avoidable cases reference parameters with inferred constraints of
	// each kind; the counts are per constraint kind in order
	// basic/semantic/range/dep/rel.
	AvoidableByKind [5]int
	SingleSW        int
	CrossSW         int
	Conform         int
	GoodReaction    int
}

// Total returns the population size the spec generates.
func (s Spec) Total() int {
	n := s.SingleSW + s.CrossSW + s.Conform + s.GoodReaction
	for _, k := range s.AvoidableByKind {
		n += k
	}
	return n
}

// PaperSpecs returns the four studied systems with the paper's published
// populations: Storage-A 246 cases (68 avoidable), Apache 50 (19), MySQL
// 47 (14), OpenLDAP 49 (12).
func PaperSpecs() []Spec {
	return []Spec{
		{System: "Storage-A", AvoidableByKind: [5]int{14, 18, 22, 10, 4},
			SingleSW: 19, CrossSW: 51, Conform: 76, GoodReaction: 32},
		{System: "httpd", AvoidableByKind: [5]int{4, 6, 5, 2, 2},
			SingleSW: 5, CrossSW: 12, Conform: 9, GoodReaction: 5},
		{System: "mydb", AvoidableByKind: [5]int{3, 4, 4, 2, 1},
			SingleSW: 1, CrossSW: 12, Conform: 18, GoodReaction: 2},
		{System: "ldapd", AvoidableByKind: [5]int{3, 3, 5, 0, 1},
			SingleSW: 9, CrossSW: 4, Conform: 12, GoodReaction: 12},
	}
}

// Generate produces a deterministic case population for a spec. Avoidable
// cases are bound to parameters that actually carry constraints of the
// needed kind in the inferred set; if the set lacks enough parameters of a
// kind, the remainder fall back to patternless cases (so classification
// stays honest).
func Generate(spec Spec, inferred *constraint.Set) []Case {
	var out []Case
	id := 0
	next := func() string {
		id++
		return fmt.Sprintf("%s-%04d", spec.System, id)
	}
	rng := newLCG(hashString(spec.System))

	// Avoidable: pick parameters carrying each constraint kind.
	for kind := 0; kind < 5; kind++ {
		want := spec.AvoidableByKind[kind]
		params := paramsWithKind(inferred, constraint.Kind(kind))
		for i := 0; i < want; i++ {
			if len(params) == 0 {
				out = append(out, Case{
					ID: next(), System: spec.System, Violation: true,
					Patternless: true,
					Param:       fmt.Sprintf("opaque.param.%d", i),
					Summary:     "violates a constraint with no concrete program pattern",
				})
				continue
			}
			p := params[int(rng.next())%len(params)]
			out = append(out, Case{
				ID: next(), System: spec.System, Param: p,
				ViolatesKind: constraint.Kind(kind), Violation: true,
				Summary: fmt.Sprintf("misconfigured %q violating its %s constraint", p, constraint.Kind(kind)),
			})
		}
	}
	for i := 0; i < spec.SingleSW; i++ {
		out = append(out, Case{
			ID: next(), System: spec.System, Violation: true, Patternless: true,
			Param:   fmt.Sprintf("acl.rule.%d", i),
			Summary: "complicated semi-structured rule SPEX cannot parse",
		})
	}
	for i := 0; i < spec.CrossSW; i++ {
		out = append(out, Case{
			ID: next(), System: spec.System, CrossSoftware: true,
			Summary: "correlation across the software stack (e.g. firewall blocks the configured port)",
		})
	}
	for i := 0; i < spec.Conform; i++ {
		out = append(out, Case{
			ID: next(), System: spec.System, Violation: false,
			Param:   fmt.Sprintf("valid.but.wrong.%d", i),
			Summary: "setting is valid by every constraint but does not match the user's intention",
		})
	}
	for i := 0; i < spec.GoodReaction; i++ {
		p := ""
		if ps := inferred.Params(); len(ps) > 0 {
			p = ps[int(rng.next())%len(ps)]
		}
		out = append(out, Case{
			ID: next(), System: spec.System, Violation: true, Pinpointed: true,
			Param:        p,
			ViolatesKind: constraint.KindBasicType,
			Summary:      "system already pinpointed the parameter; user reported anyway",
		})
	}
	return out
}

func paramsWithKind(set *constraint.Set, kind constraint.Kind) []string {
	if set == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, c := range set.ByKind(kind) {
		if !seen[c.Param] {
			seen[c.Param] = true
			out = append(out, c.Param)
		}
	}
	sort.Strings(out)
	return out
}

// lcg is a small deterministic pseudo-random generator (no math/rand to
// keep case IDs stable across Go versions).
type lcg struct{ state uint64 }

func newLCG(seed uint64) *lcg {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &lcg{state: seed}
}

func (l *lcg) next() uint64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return l.state >> 33
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
