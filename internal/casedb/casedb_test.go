package casedb

import (
	"testing"

	"spex/internal/constraint"
)

func inferredSet() *constraint.Set {
	s := constraint.NewSet("t")
	s.Add(&constraint.Constraint{Kind: constraint.KindBasicType, Param: "port", Basic: constraint.BasicInt64})
	s.Add(&constraint.Constraint{Kind: constraint.KindSemanticType, Param: "port", Semantic: constraint.SemPort})
	s.Add(&constraint.Constraint{Kind: constraint.KindRange, Param: "limit",
		Intervals: []constraint.Interval{{HasMin: true, Min: 1, Valid: true}}})
	s.Add(&constraint.Constraint{Kind: constraint.KindControlDep, Param: "dep", Peer: "flag",
		Cond: constraint.OpEQ, Value: "true"})
	s.Add(&constraint.Constraint{Kind: constraint.KindValueRel, Param: "max", Rel: constraint.OpGT, Peer: "min"})
	return s
}

func TestClassifyCategories(t *testing.T) {
	set := inferredSet()
	cases := []struct {
		c    Case
		want Category
	}{
		{Case{CrossSoftware: true}, CategoryCrossSW},
		{Case{Violation: true, Patternless: true}, CategorySingleSW},
		{Case{Violation: false}, CategoryConform},
		{Case{Violation: true, Pinpointed: true, Param: "port",
			ViolatesKind: constraint.KindBasicType}, CategoryGoodReaction},
		{Case{Violation: true, Param: "port",
			ViolatesKind: constraint.KindSemanticType}, CategoryAvoidable},
		// Violation of a constraint SPEX did not infer: not avoidable.
		{Case{Violation: true, Param: "unknown_param",
			ViolatesKind: constraint.KindRange}, CategorySingleSW},
	}
	for i, tc := range cases {
		if got := Classify(tc.c, set); got != tc.want {
			t.Errorf("case %d: Classify = %s, want %s", i, got, tc.want)
		}
	}
}

func TestGenerateMatchesSpecTotals(t *testing.T) {
	set := inferredSet()
	for _, spec := range PaperSpecs() {
		cases := Generate(spec, set)
		if len(cases) != spec.Total() {
			t.Errorf("%s: generated %d cases, spec total %d", spec.System, len(cases), spec.Total())
		}
	}
}

func TestPaperSpecPopulations(t *testing.T) {
	want := map[string]int{"Storage-A": 246, "httpd": 50, "mydb": 47, "ldapd": 49}
	for _, spec := range PaperSpecs() {
		if got := spec.Total(); got != want[spec.System] {
			t.Errorf("%s population = %d, want %d (paper Table 9)", spec.System, got, want[spec.System])
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	set := inferredSet()
	spec := PaperSpecs()[0]
	a := Generate(spec, set)
	b := Generate(spec, set)
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Param != b[i].Param {
			t.Fatalf("case %d differs between runs", i)
		}
	}
}

func TestRunStudyBands(t *testing.T) {
	set := inferredSet()
	for _, spec := range PaperSpecs() {
		cases := Generate(spec, set)
		st := Run(spec.System, cases, set)
		pct := st.Pct(CategoryAvoidable)
		// The paper's band is 24%-38%; the generator binds avoidable
		// cases to really-inferred constraints, so the measured band
		// should stay close.
		if pct < 20 || pct > 42 {
			t.Errorf("%s avoidable = %.1f%%, outside the paper band", spec.System, pct)
		}
		sum := 0
		for _, cat := range []Category{CategoryAvoidable, CategorySingleSW,
			CategoryCrossSW, CategoryConform, CategoryGoodReaction} {
			sum += st.Count(cat)
		}
		if sum != st.Total() {
			t.Errorf("%s categories sum to %d of %d", spec.System, sum, st.Total())
		}
	}
}

func TestGenerateWithMissingKindsFallsBack(t *testing.T) {
	// An inferred set with no dependencies: dep-avoidable cases fall
	// back to patternless, keeping classification honest.
	s := constraint.NewSet("t")
	s.Add(&constraint.Constraint{Kind: constraint.KindBasicType, Param: "p", Basic: constraint.BasicBool})
	spec := Spec{System: "x", AvoidableByKind: [5]int{1, 0, 0, 2, 0}}
	cases := Generate(spec, s)
	st := Run("x", cases, s)
	if st.Count(CategoryAvoidable) != 1 {
		t.Errorf("avoidable = %d, want 1 (the basic-type case)", st.Count(CategoryAvoidable))
	}
	if st.Count(CategorySingleSW) != 2 {
		t.Errorf("single-sw fallback = %d, want 2", st.Count(CategorySingleSW))
	}
}

func TestCategoryNames(t *testing.T) {
	if CategoryAvoidable.String() != "avoidable" ||
		CategoryCrossSW.String() != "cross-sw-incapability" {
		t.Error("category names changed")
	}
}
