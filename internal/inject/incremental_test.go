package inject

import (
	"testing"

	"spex/internal/confgen"
	"spex/internal/constraint"
)

func mkSet(cs ...*constraint.Constraint) *constraint.Set {
	s := constraint.NewSet("t")
	for _, c := range cs {
		s.Add(c)
	}
	return s
}

func basic(p string, t constraint.BasicType) *constraint.Constraint {
	return &constraint.Constraint{Kind: constraint.KindBasicType, Param: p, Basic: t}
}

func rng(p string, min int64) *constraint.Constraint {
	return &constraint.Constraint{Kind: constraint.KindRange, Param: p,
		Intervals: []constraint.Interval{{HasMin: true, Min: min, Valid: true}}}
}

func TestDiffPartitions(t *testing.T) {
	old := mkSet(
		basic("a", constraint.BasicInt64),
		rng("a", 1),
		basic("b", constraint.BasicBool),
	)
	new := mkSet(
		basic("a", constraint.BasicInt64), // unchanged
		rng("a", 4),                       // boundary moved: removed+added
		basic("c", constraint.BasicString),
	)
	d := Diff(old, new)
	if len(d.Unchanged) != 1 {
		t.Errorf("unchanged = %d, want 1", len(d.Unchanged))
	}
	if len(d.Added) != 2 { // new range + c's basic type
		t.Errorf("added = %d, want 2", len(d.Added))
	}
	if len(d.Removed) != 2 { // old range + b's basic type
		t.Errorf("removed = %d, want 2", len(d.Removed))
	}
}

func TestAffectedParamsIncludePeers(t *testing.T) {
	old := mkSet()
	new := mkSet(&constraint.Constraint{Kind: constraint.KindControlDep,
		Param: "q", Peer: "p", Cond: constraint.OpEQ, Value: "true"})
	d := Diff(old, new)
	ps := d.AffectedParams()
	if len(ps) != 2 || ps[0] != "p" || ps[1] != "q" {
		t.Errorf("affected = %v, want [p q]", ps)
	}
}

func TestSelectRetests(t *testing.T) {
	cOld := rng("a", 1)
	cNew := rng("a", 4)
	cStable := basic("x", constraint.BasicInt64)
	old := mkSet(cOld, cStable)
	new := mkSet(cNew, cStable)
	d := Diff(old, new)

	ms := []confgen.Misconf{
		{ID: "m1", Param: "a", Values: map[string]string{"a": "0"}, Violates: cNew},
		{ID: "m2", Param: "x", Values: map[string]string{"x": "fast"}, Violates: cStable},
		{ID: "m3", Param: "x", Values: map[string]string{"x": "1", "a": "3"}, Violates: cStable},
	}
	re := SelectRetests(ms, d)
	ids := map[string]bool{}
	for _, m := range re {
		ids[m.ID] = true
	}
	if !ids["m1"] {
		t.Error("misconfiguration violating the added constraint must be retested")
	}
	if ids["m2"] {
		t.Error("misconfiguration on an unaffected parameter must not be retested")
	}
	if !ids["m3"] {
		t.Error("misconfiguration touching an affected parameter must be retested")
	}
}

func TestDiffIdenticalSetsNeedNoRetest(t *testing.T) {
	s1 := mkSet(basic("a", constraint.BasicInt64), rng("a", 1))
	s2 := mkSet(basic("a", constraint.BasicInt64), rng("a", 1))
	d := Diff(s1, s2)
	if len(d.Added)+len(d.Removed) != 0 {
		t.Errorf("identical sets produced delta: +%d -%d", len(d.Added), len(d.Removed))
	}
	ms := []confgen.Misconf{{ID: "m", Param: "a", Values: map[string]string{"a": "0"}}}
	if re := SelectRetests(ms, d); len(re) != 0 {
		t.Errorf("no-op revision selected %d retests", len(re))
	}
}
