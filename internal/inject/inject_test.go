package inject

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/engine"
	"spex/internal/sim"
)

// fakeSystem reacts to the injected value of parameter "p" according to a
// behaviour table, letting tests drive every classification path.
type fakeSystem struct {
	tests []sim.FuncTest
}

func (s *fakeSystem) Name() string                       { return "fake" }
func (s *fakeSystem) Description() string                { return "fake" }
func (s *fakeSystem) Syntax() conffile.Syntax            { return conffile.SyntaxEquals }
func (s *fakeSystem) DefaultConfig() string              { return "p = good\nq = 1\n" }
func (s *fakeSystem) Sources() map[string]string         { return nil }
func (s *fakeSystem) Annotations() string                { return "" }
func (s *fakeSystem) Manual() map[string]sim.ManualEntry { return nil }
func (s *fakeSystem) GroundTruth() *constraint.Set       { return constraint.NewSet("fake") }
func (s *fakeSystem) SetupEnv(env *sim.Env)              {}
func (s *fakeSystem) Tests() []sim.FuncTest              { return s.tests }

type fakeInstance struct{ effective map[string]string }

func (i *fakeInstance) Effective(p string) (string, bool) {
	v, ok := i.effective[p]
	return v, ok
}
func (i *fakeInstance) Stop() {}

func (s *fakeSystem) Start(env *sim.Env, cfg *conffile.File) (sim.Instance, error) {
	v, _ := cfg.Get("p")
	switch v {
	case "crash":
		panic("segfault")
	case "hang":
		sim.Hang()
	case "exit-silent":
		env.Log.Fatalf("fatal internal failure")
		return nil, &sim.ExitError{Status: 1, Reason: "x"}
	case "exit-pinpoint":
		env.Log.Errorf("bad value for parameter 'p'")
		return nil, &sim.ExitError{Status: 1, Reason: "x"}
	case "clamped":
		return &fakeInstance{effective: map[string]string{"p": "good", "q": "1"}}, nil
	}
	eff := map[string]string{"p": v, "q": "1"}
	if qv, ok := cfg.Get("q"); ok {
		eff["q"] = qv
	}
	return &fakeInstance{effective: eff}, nil
}

func mk(param, value string, violates *constraint.Constraint) confgen.Misconf {
	return confgen.Misconf{
		ID: param + "#" + value, Param: param,
		Values:   map[string]string{param: value},
		Violates: violates,
	}
}

func runOneMisconf(t *testing.T, sys sim.System, m confgen.Misconf, opts Options) Outcome {
	t.Helper()
	rep, err := Run(sys, []confgen.Misconf{m}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Outcomes[0]
}

func TestClassifyCrash(t *testing.T) {
	o := runOneMisconf(t, &fakeSystem{}, mk("p", "crash", nil), DefaultOptions())
	if o.Reaction != ReactionCrash {
		t.Errorf("reaction = %s", o.Reaction)
	}
}

func TestClassifyHang(t *testing.T) {
	opts := DefaultOptions()
	opts.HangDeadline = 30 * time.Millisecond
	o := runOneMisconf(t, &fakeSystem{}, mk("p", "hang", nil), opts)
	if o.Reaction != ReactionCrash {
		t.Errorf("reaction = %s (hang folds into crash/hang)", o.Reaction)
	}
}

func TestClassifyEarlyTermVsGood(t *testing.T) {
	o := runOneMisconf(t, &fakeSystem{}, mk("p", "exit-silent", nil), DefaultOptions())
	if o.Reaction != ReactionEarlyTerm || o.Pinpointed {
		t.Errorf("silent exit = %s pin=%v", o.Reaction, o.Pinpointed)
	}
	o = runOneMisconf(t, &fakeSystem{}, mk("p", "exit-pinpoint", nil), DefaultOptions())
	if o.Reaction != ReactionGood || !o.Pinpointed {
		t.Errorf("pinpointed exit = %s pin=%v", o.Reaction, o.Pinpointed)
	}
}

func TestClassifyFunctionalFailure(t *testing.T) {
	sys := &fakeSystem{tests: []sim.FuncTest{{
		Name: "always-fails", Weight: 1,
		Run: func(env *sim.Env, inst sim.Instance) error {
			return fmt.Errorf("request failed")
		},
	}}}
	o := runOneMisconf(t, sys, mk("p", "weird", nil), DefaultOptions())
	if o.Reaction != ReactionFuncFailure || o.FailedTest != "always-fails" {
		t.Errorf("reaction = %s test=%s", o.Reaction, o.FailedTest)
	}
}

func TestClassifySilentViolation(t *testing.T) {
	o := runOneMisconf(t, &fakeSystem{}, mk("p", "clamped", nil), DefaultOptions())
	if o.Reaction != ReactionSilentViolation {
		t.Errorf("reaction = %s, want silent violation (effective differs)", o.Reaction)
	}
}

func TestClassifySilentIgnorance(t *testing.T) {
	dep := &constraint.Constraint{Kind: constraint.KindControlDep,
		Param: "q", Peer: "p", Cond: constraint.OpEQ, Value: "good"}
	m := confgen.Misconf{
		ID: "dep", Param: "q",
		Values:   map[string]string{"p": "other", "q": "1"},
		Violates: dep,
	}
	o := runOneMisconf(t, &fakeSystem{}, m, DefaultOptions())
	if o.Reaction != ReactionSilentIgnorance {
		t.Errorf("reaction = %s, want silent ignorance", o.Reaction)
	}
}

func TestClassifyTolerated(t *testing.T) {
	o := runOneMisconf(t, &fakeSystem{}, mk("p", "benign", nil), DefaultOptions())
	if o.Reaction != ReactionTolerated {
		t.Errorf("reaction = %s, want tolerated", o.Reaction)
	}
}

func TestShortestTestFirstAndStopOnFailure(t *testing.T) {
	var order []string
	mkTest := func(name string, weight int, fail bool) sim.FuncTest {
		return sim.FuncTest{Name: name, Weight: weight,
			Run: func(env *sim.Env, inst sim.Instance) error {
				order = append(order, name)
				if fail {
					return fmt.Errorf("failed")
				}
				return nil
			}}
	}
	sys := &fakeSystem{tests: []sim.FuncTest{
		mkTest("slow", 10, false),
		mkTest("quick-fail", 1, true),
		mkTest("medium", 5, false),
	}}
	o := runOneMisconf(t, sys, mk("p", "weird", nil), DefaultOptions())
	if len(order) != 1 || order[0] != "quick-fail" {
		t.Errorf("execution order = %v, want shortest first then stop", order)
	}
	if o.SimCost != 1+1 {
		t.Errorf("sim cost = %d, want boot(1)+quick(1)", o.SimCost)
	}

	// Without optimizations: every test runs, in declaration order.
	order = nil
	opts := DefaultOptions()
	opts.SortTests = false
	opts.StopOnFirstFailure = false
	o = runOneMisconf(t, sys, mk("p", "weird", nil), opts)
	if len(order) != 3 || order[0] != "slow" {
		t.Errorf("unoptimized order = %v", order)
	}
	if o.SimCost != 1+10+1+5 {
		t.Errorf("unoptimized cost = %d", o.SimCost)
	}
}

func TestUniqueLocations(t *testing.T) {
	locA := constraint.SourceLoc{File: "a.go", Line: 10}
	locB := constraint.SourceLoc{File: "a.go", Line: 20}
	ca := &constraint.Constraint{Kind: constraint.KindBasicType, Param: "p", Loc: locA}
	cb := &constraint.Constraint{Kind: constraint.KindBasicType, Param: "p", Loc: locB}
	rep, err := Run(&fakeSystem{}, []confgen.Misconf{
		mk("p", "crash", ca), mk("p", "clamped", ca), mk("p", "exit-silent", cb),
	}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.UniqueLocations(); got != 2 {
		t.Errorf("unique locations = %d, want 2", got)
	}
	if got := len(rep.Vulnerabilities()); got != 3 {
		t.Errorf("vulnerabilities = %d, want 3", got)
	}
}

func TestEnvActionsApplied(t *testing.T) {
	m := confgen.Misconf{
		ID: "env", Param: "p", Values: map[string]string{"p": "benign"},
		Env: []confgen.EnvAction{
			{Kind: confgen.EnvOccupyPort, Port: 9999},
			{Kind: confgen.EnvMakeDir, Path: "/injected/dir"},
			{Kind: confgen.EnvMakeUnreadable, Path: "/injected/secret"},
		},
	}
	// A system start hook that checks the environment.
	checked := false
	sys := &fakeSystem{tests: []sim.FuncTest{{
		Name: "env-check", Weight: 1,
		Run: func(env *sim.Env, inst sim.Instance) error {
			checked = true
			if !env.Net.Occupied("tcp", 9999) {
				return fmt.Errorf("port not occupied")
			}
			if !env.FS.IsDir("/injected/dir") {
				return fmt.Errorf("dir not created")
			}
			if _, err := env.FS.ReadFile("/injected/secret"); err == nil {
				return fmt.Errorf("file should be unreadable")
			}
			return nil
		},
	}}}
	rep, err := Run(sys, []confgen.Misconf{m}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("test did not run")
	}
	if rep.Outcomes[0].FailedTest != "" {
		t.Errorf("environment not set up: %s", rep.Outcomes[0].LogDump)
	}
}

func TestNormalizeNumeric(t *testing.T) {
	cases := [][2]string{
		{"0064", "64"}, {"-007", "-7"}, {"0", "000"}, {" 5 ", "5"},
	}
	for _, c := range cases {
		if !sameValue(c[0], c[1]) {
			t.Errorf("sameValue(%q, %q) = false", c[0], c[1])
		}
	}
	if sameValue("on", "off") || sameValue("64", "65") {
		t.Error("distinct values compared equal")
	}
}

// Property: normalize is idempotent.
func TestPropertyNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool { return normalize(normalize(s)) == normalize(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestErrorReportFormat(t *testing.T) {
	c := &constraint.Constraint{Kind: constraint.KindRange, Param: "p",
		Intervals: []constraint.Interval{{HasMin: true, Min: 1, Valid: true}},
		Loc:       constraint.SourceLoc{File: "x.go", Line: 3, Func: "f"}}
	o := Outcome{
		Misconf:  mk("p", "0", c),
		Reaction: ReactionSilentViolation,
		Loc:      c.Loc,
		LogDump:  "WARN: something\n",
	}
	rpt := ErrorReport(o)
	for _, want := range []string{"constraint", "injected", "silent violation", "x.go:3", "WARN: something"} {
		if !strings.Contains(rpt, want) {
			t.Errorf("report missing %q:\n%s", want, rpt)
		}
	}
}

func TestReactionVulnerability(t *testing.T) {
	vuln := []Reaction{ReactionCrash, ReactionEarlyTerm, ReactionFuncFailure,
		ReactionSilentViolation, ReactionSilentIgnorance}
	for _, r := range vuln {
		if !r.Vulnerability() {
			t.Errorf("%s must be a vulnerability", r)
		}
	}
	for _, r := range []Reaction{ReactionGood, ReactionTolerated} {
		if r.Vulnerability() {
			t.Errorf("%s must not be a vulnerability", r)
		}
	}
}

// TestAssembleYieldedOutcomes: a task abandoned with ErrYielded (a
// work-stealing gate, internal/coord) is classified as yielded work —
// tallied on Report.Yielded, excluded from harness failures, never a
// reaction.
func TestAssembleYieldedOutcomes(t *testing.T) {
	c := &constraint.Constraint{Kind: constraint.KindBasicType, Param: "p"}
	ms := []confgen.Misconf{mk("p", "good", c), mk("p", "crash", c)}
	results := []engine.Result[Outcome]{
		{Index: 0, Err: fmt.Errorf("gated: %w", ErrYielded)},
		{Index: 1, Value: Outcome{Misconf: ms[1], Reaction: ReactionCrash}},
	}
	rep := Assemble("fake", ms, results, nil)
	if rep.Yielded != 1 {
		t.Errorf("Report.Yielded = %d, want 1", rep.Yielded)
	}
	if !rep.Outcomes[0].Yielded || rep.Outcomes[0].Err == "" {
		t.Errorf("yielded outcome not marked: %+v", rep.Outcomes[0])
	}
	if errs := rep.Errors(); len(errs) != 0 {
		t.Errorf("yielded outcome counted as a harness failure: %v", errs)
	}
	if got := rep.CountByReaction()[ReactionCrash]; got != 1 {
		t.Errorf("crash tally = %d, want 1 (the executed outcome)", got)
	}
}
