// Campaign accounting metrics: every assembled report feeds the obs
// registry with replayed-vs-fresh outcome counts, the sim-cost units
// actually paid vs avoided by replay, and yields surrendered to
// work-stealing rebalances.
package inject

import "spex/internal/obs"

const (
	metricOutcomesFresh    = "spex_campaign_outcomes_fresh_total"
	metricOutcomesReplayed = "spex_campaign_outcomes_replayed_total"
	metricOutcomesYielded  = "spex_campaign_outcomes_yielded_total"
	metricSimCost          = "spex_campaign_sim_cost_units_total"
	metricSimCostSaved     = "spex_campaign_sim_cost_saved_units_total"
)

var (
	mOutcomesFresh    = obs.Default().Counter(metricOutcomesFresh, "outcomes executed fresh against the simulated systems")
	mOutcomesReplayed = obs.Default().Counter(metricOutcomesReplayed, "outcomes replayed from the incremental result cache")
	mOutcomesYielded  = obs.Default().Counter(metricOutcomesYielded, "outcomes yielded to a work-stealing rebalance")
	mSimCost          = obs.Default().Counter(metricSimCost, "simulated cost units paid by fresh executions")
	mSimCostSaved     = obs.Default().Counter(metricSimCostSaved, "simulated cost units avoided by cache replay")
)

// recordReportMetrics folds one assembled report into the registry.
func recordReportMetrics(rep *Report) {
	mOutcomesReplayed.Add(uint64(rep.Replayed))
	if fresh := rep.Finished() - rep.Replayed; fresh > 0 {
		mOutcomesFresh.Add(uint64(fresh))
	}
	mOutcomesYielded.Add(uint64(rep.Yielded))
	mSimCost.Add(uint64(rep.TotalSimCost))
	mSimCostSaved.Add(uint64(rep.ReplayedSimCost))
}
