package inject

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/engine"
	"spex/internal/sim"
)

// The paper notes that the campaign cost is a one-time cost because
// SPEX-INJ can be made incremental: after a code revision, only the
// constraints affected by the modification need to be retested (§3.1).
// This file implements that delta computation.

// Delta describes how a system's constraint set changed between two
// analysis runs.
type Delta struct {
	// Added are constraints present only in the new set.
	Added []*constraint.Constraint
	// Removed are constraints present only in the old set; their past
	// outcomes are stale and should be dropped from dashboards.
	Removed []*constraint.Constraint
	// Unchanged are constraints present in both.
	Unchanged []*constraint.Constraint
}

// Diff computes the constraint delta between two inference runs.
// Constraints are compared by identity (kind, parameter, and the
// kind-specific payload) — a changed range boundary yields one Removed
// and one Added entry.
func Diff(old, new *constraint.Set) Delta {
	oldByID := map[string]*constraint.Constraint{}
	for _, c := range old.Constraints {
		oldByID[c.ID()] = c
	}
	var d Delta
	seen := map[string]bool{}
	for _, c := range new.Constraints {
		id := c.ID()
		seen[id] = true
		if _, ok := oldByID[id]; ok {
			d.Unchanged = append(d.Unchanged, c)
		} else {
			d.Added = append(d.Added, c)
		}
	}
	for id, c := range oldByID {
		if !seen[id] {
			d.Removed = append(d.Removed, c)
		}
	}
	sort.Slice(d.Removed, func(i, j int) bool { return d.Removed[i].ID() < d.Removed[j].ID() })
	return d
}

// AffectedParams returns the parameters touched by the delta (sorted):
// any parameter with an added or removed constraint, plus the peers of
// added/removed correlations.
func (d Delta) AffectedParams() []string {
	set := map[string]bool{}
	mark := func(cs []*constraint.Constraint) {
		for _, c := range cs {
			set[c.Param] = true
			if c.Peer != "" {
				set[c.Peer] = true
			}
		}
	}
	mark(d.Added)
	mark(d.Removed)
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ResultCache stores campaign outcomes keyed by misconfiguration
// identity (CacheKey). Seeded from a previous campaign's report, it lets
// an incremental rerun replay every outcome whose constraint the code
// revision did not touch.
type ResultCache = engine.Cache[Outcome]

// NewResultCache returns an empty incremental result cache.
func NewResultCache() *ResultCache { return engine.NewCache[Outcome]() }

// CacheKey is the stable identity of a misconfiguration for incremental
// retesting: the violated constraint's identity (which changes whenever
// the constraint's kind-specific payload changes), the generation rule,
// and the injected values and environment actions. Two analysis runs
// that infer the same constraint produce the same key, so the recorded
// outcome replays; a changed constraint yields a new key and re-executes.
func CacheKey(m confgen.Misconf) string {
	var b strings.Builder
	// Every free-form component is length-prefixed so injected values
	// containing the separator characters cannot collide two distinct
	// misconfigurations into one key.
	field := func(s string) { fmt.Fprintf(&b, "|%d:%s", len(s), s) }
	if m.Violates != nil {
		field(m.Violates.ID())
	} else {
		field("")
	}
	field(m.ID)
	keys := make([]string, 0, len(m.Values))
	for k := range m.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		field(k)
		field(m.Values[k])
	}
	for _, a := range m.Env {
		fmt.Fprintf(&b, "|env:%d:%d", a.Kind, a.Port)
		field(a.Path)
	}
	return b.String()
}

// SeedCache records every successfully tested outcome of a previous
// campaign, so the next incremental run can replay them. Outcomes that
// errored, were cancelled mid-boot, or never started (Skipped) carry a
// non-empty Err and are excluded — they must re-execute on the next run.
func SeedCache(c *ResultCache, rep *Report) {
	for _, o := range rep.Outcomes {
		if o.Err != "" {
			continue // failed to test (or never started): always retry
		}
		c.Put(CacheKey(o.Misconf), o)
	}
}

// RunIncremental reruns a campaign after a code revision changed the
// constraint set (paper §3.1: "only the constraints affected by the
// modification need to be retested"). Misconfigurations selected by the
// delta — violating an added constraint or touching an affected
// parameter — are evicted from the cache and re-executed; everything
// else replays its recorded outcome. The cache is pruned to the current
// misconfiguration list and updated with the fresh outcomes, so it is
// ready to seed the next revision's run.
func RunIncremental(ctx context.Context, sys sim.System, ms []confgen.Misconf, d Delta, cache *ResultCache, opts Options) (*Report, error) {
	return RunSelected(ctx, sys, ms, SelectRetests(ms, d), cache, opts)
}

// RunSelected is RunIncremental with a precomputed retest selection, for
// callers that already ran SelectRetests (e.g. to report its size):
// retests are evicted from the cache and re-execute, everything else in
// ms replays, and the cache is pruned to the current misconfiguration
// list.
func RunSelected(ctx context.Context, sys sim.System, ms []confgen.Misconf, retests []confgen.Misconf, cache *ResultCache, opts Options) (*Report, error) {
	if cache == nil {
		cache = NewResultCache()
	}
	for _, m := range retests {
		cache.Delete(CacheKey(m))
	}
	current := make(map[string]bool, len(ms))
	for _, m := range ms {
		current[CacheKey(m)] = true
	}
	cache.Retain(current)
	opts.Cache = cache
	return RunContext(ctx, sys, ms, opts)
}

// SelectRetests filters a full misconfiguration list down to the ones an
// incremental campaign must rerun: misconfigurations violating an added
// constraint, or touching any affected parameter (whose behaviour the
// revision changed).
func SelectRetests(ms []confgen.Misconf, d Delta) []confgen.Misconf {
	addedIDs := map[string]bool{}
	for _, c := range d.Added {
		addedIDs[c.ID()] = true
	}
	affected := map[string]bool{}
	for _, p := range d.AffectedParams() {
		affected[p] = true
	}
	var out []confgen.Misconf
	for _, m := range ms {
		if m.Violates != nil && addedIDs[m.Violates.ID()] {
			out = append(out, m)
			continue
		}
		touched := false
		for p := range m.Values {
			if affected[p] {
				touched = true
				break
			}
		}
		if touched {
			out = append(out, m)
		}
	}
	return out
}
