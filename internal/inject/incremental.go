package inject

import (
	"sort"

	"spex/internal/confgen"
	"spex/internal/constraint"
)

// The paper notes that the campaign cost is a one-time cost because
// SPEX-INJ can be made incremental: after a code revision, only the
// constraints affected by the modification need to be retested (§3.1).
// This file implements that delta computation.

// Delta describes how a system's constraint set changed between two
// analysis runs.
type Delta struct {
	// Added are constraints present only in the new set.
	Added []*constraint.Constraint
	// Removed are constraints present only in the old set; their past
	// outcomes are stale and should be dropped from dashboards.
	Removed []*constraint.Constraint
	// Unchanged are constraints present in both.
	Unchanged []*constraint.Constraint
}

// Diff computes the constraint delta between two inference runs.
// Constraints are compared by identity (kind, parameter, and the
// kind-specific payload) — a changed range boundary yields one Removed
// and one Added entry.
func Diff(old, new *constraint.Set) Delta {
	oldByID := map[string]*constraint.Constraint{}
	for _, c := range old.Constraints {
		oldByID[c.ID()] = c
	}
	var d Delta
	seen := map[string]bool{}
	for _, c := range new.Constraints {
		id := c.ID()
		seen[id] = true
		if _, ok := oldByID[id]; ok {
			d.Unchanged = append(d.Unchanged, c)
		} else {
			d.Added = append(d.Added, c)
		}
	}
	for id, c := range oldByID {
		if !seen[id] {
			d.Removed = append(d.Removed, c)
		}
	}
	sort.Slice(d.Removed, func(i, j int) bool { return d.Removed[i].ID() < d.Removed[j].ID() })
	return d
}

// AffectedParams returns the parameters touched by the delta (sorted):
// any parameter with an added or removed constraint, plus the peers of
// added/removed correlations.
func (d Delta) AffectedParams() []string {
	set := map[string]bool{}
	mark := func(cs []*constraint.Constraint) {
		for _, c := range cs {
			set[c.Param] = true
			if c.Peer != "" {
				set[c.Peer] = true
			}
		}
	}
	mark(d.Added)
	mark(d.Removed)
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// SelectRetests filters a full misconfiguration list down to the ones an
// incremental campaign must rerun: misconfigurations violating an added
// constraint, or touching any affected parameter (whose behaviour the
// revision changed).
func SelectRetests(ms []confgen.Misconf, d Delta) []confgen.Misconf {
	addedIDs := map[string]bool{}
	for _, c := range d.Added {
		addedIDs[c.ID()] = true
	}
	affected := map[string]bool{}
	for _, p := range d.AffectedParams() {
		affected[p] = true
	}
	var out []confgen.Misconf
	for _, m := range ms {
		if m.Violates != nil && addedIDs[m.Violates.ID()] {
			out = append(out, m)
			continue
		}
		touched := false
		for p := range m.Values {
			if affected[p] {
				touched = true
				break
			}
		}
		if touched {
			out = append(out, m)
		}
	}
	return out
}
