// Package inject is SPEX-INJ's testing harness (paper §3.1). For every
// generated misconfiguration it boots the target on fresh virtual
// substrates, runs the target's own functional tests, and classifies the
// reaction (Table 3). A reaction is a vulnerability unless the system
// pinpoints the faulting parameter in its logs. The harness applies the
// paper's two optimizations: run the shortest test first, and stop at the
// first failed test.
package inject

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/sim"
	"spex/internal/vfs"
)

// Reaction classifies how the system reacted to an injected
// misconfiguration (Table 3, plus the two non-vulnerability outcomes).
type Reaction int

const (
	// ReactionCrash: the system crashed or hung.
	ReactionCrash Reaction = iota
	// ReactionEarlyTerm: the system exited without pinpointing the
	// injected error.
	ReactionEarlyTerm
	// ReactionFuncFailure: a functional test failed without a
	// pinpointing message.
	ReactionFuncFailure
	// ReactionSilentViolation: the system changed the input
	// configuration to a different value without notifying the user.
	ReactionSilentViolation
	// ReactionSilentIgnorance: the system ignored the input
	// configuration (mainly for control-dependency violations).
	ReactionSilentIgnorance
	// ReactionGood: the system rejected or flagged the error AND
	// pinpointed the parameter — the desired behaviour, not a
	// vulnerability.
	ReactionGood
	// ReactionTolerated: the system behaved correctly despite the
	// injection (over-approximate constraint or benign value).
	ReactionTolerated
)

var reactionNames = [...]string{
	"crash/hang", "early termination", "functional failure",
	"silent violation", "silent ignorance", "good reaction", "tolerated",
}

func (r Reaction) String() string {
	if r < 0 || int(r) >= len(reactionNames) {
		return fmt.Sprintf("Reaction(%d)", int(r))
	}
	return reactionNames[r]
}

// Vulnerability reports whether the reaction counts as a misconfiguration
// vulnerability.
func (r Reaction) Vulnerability() bool {
	switch r {
	case ReactionCrash, ReactionEarlyTerm, ReactionFuncFailure,
		ReactionSilentViolation, ReactionSilentIgnorance:
		return true
	}
	return false
}

// Outcome is the result of testing one misconfiguration.
type Outcome struct {
	Misconf    confgen.Misconf
	Reaction   Reaction
	Pinpointed bool
	FailedTest string
	LogDump    string
	// Loc is the source location of the violated constraint — the code
	// location a fix would patch (Table 5b).
	Loc constraint.SourceLoc
	// SimCost is the simulated testing cost in test-weight units.
	SimCost int
}

// Report aggregates a campaign over one system.
type Report struct {
	System   string
	Outcomes []Outcome
	// TotalSimCost is the simulated campaign duration in weight units.
	TotalSimCost int
}

// CountByReaction tallies outcomes per reaction (Table 5a row).
func (r *Report) CountByReaction() map[Reaction]int {
	out := make(map[Reaction]int)
	for _, o := range r.Outcomes {
		out[o.Reaction]++
	}
	return out
}

// Vulnerabilities returns the outcomes that are vulnerabilities.
func (r *Report) Vulnerabilities() []Outcome {
	var out []Outcome
	for _, o := range r.Outcomes {
		if o.Reaction.Vulnerability() {
			out = append(out, o)
		}
	}
	return out
}

// UniqueLocations counts distinct source-code locations behind the
// vulnerabilities (Table 5b): one patch may fix several vulnerabilities.
func (r *Report) UniqueLocations() int {
	seen := map[string]bool{}
	for _, o := range r.Outcomes {
		if !o.Reaction.Vulnerability() {
			continue
		}
		key := fmt.Sprintf("%s:%d", o.Loc.File, o.Loc.Line)
		seen[key] = true
	}
	return len(seen)
}

// Options tune the campaign.
type Options struct {
	// HangDeadline bounds Start; targets model hangs by blocking.
	HangDeadline time.Duration
	// StopOnFirstFailure stops testing a misconfiguration at the first
	// failed functional test (paper optimization 1).
	StopOnFirstFailure bool
	// SortTests runs the shortest test first (paper optimization 2).
	SortTests bool
}

// DefaultOptions enables both paper optimizations.
func DefaultOptions() Options {
	return Options{HangDeadline: 250 * time.Millisecond, StopOnFirstFailure: true, SortTests: true}
}

// Run executes a full campaign: every misconfiguration in ms against the
// target system.
func Run(sys sim.System, ms []confgen.Misconf, opts Options) (*Report, error) {
	if opts.HangDeadline == 0 {
		opts.HangDeadline = 250 * time.Millisecond
	}
	tmplText := sys.DefaultConfig()
	rep := &Report{System: sys.Name()}
	for _, m := range ms {
		out, err := runOne(sys, tmplText, m, opts)
		if err != nil {
			return nil, fmt.Errorf("inject: %s: %w", m.ID, err)
		}
		rep.Outcomes = append(rep.Outcomes, out)
		rep.TotalSimCost += out.SimCost
	}
	return rep, nil
}

func runOne(sys sim.System, tmplText string, m confgen.Misconf, opts Options) (Outcome, error) {
	out := Outcome{Misconf: m}
	if m.Violates != nil {
		out.Loc = m.Violates.Loc
	}
	tmpl, err := conffile.Parse(tmplText, sys.Syntax())
	if err != nil {
		return out, err
	}
	cfg := tmpl.Clone()
	for p, v := range m.Values {
		cfg.Set(p, v)
	}

	env := sim.NewEnv()
	sys.SetupEnv(env)
	if err := applyEnv(env, m.Env); err != nil {
		return out, err
	}

	started := sim.MonitorStart(sys, env, cfg, opts.HangDeadline)
	out.SimCost = 1 // boot cost
	line, _ := cfg.LineOf(m.Param)
	injected := m.Values[m.Param]
	pin := env.Log.Pinpoints(m.Param, injected, line)

	switch started.Kind {
	case sim.StartCrash, sim.StartHang:
		out.Reaction = ReactionCrash
		out.Pinpointed = false
		out.LogDump = env.Log.Dump()
		return out, nil
	case sim.StartExit, sim.StartError:
		out.Pinpointed = pin
		if pin {
			out.Reaction = ReactionGood
		} else {
			out.Reaction = ReactionEarlyTerm
		}
		out.LogDump = env.Log.Dump()
		return out, nil
	}

	inst := started.Instance
	defer inst.Stop()

	tests := append([]sim.FuncTest(nil), sys.Tests()...)
	if opts.SortTests {
		sort.SliceStable(tests, func(i, j int) bool { return tests[i].Weight < tests[j].Weight })
	}
	for _, t := range tests {
		out.SimCost += t.Weight
		if err := sim.RunTest(t, env, inst); err != nil {
			pin = env.Log.Pinpoints(m.Param, injected, line)
			out.FailedTest = t.Name
			out.Pinpointed = pin
			if pin {
				out.Reaction = ReactionGood
			} else {
				out.Reaction = ReactionFuncFailure
			}
			out.LogDump = env.Log.Dump()
			if opts.StopOnFirstFailure {
				return out, nil
			}
		}
	}
	if out.FailedTest != "" {
		return out, nil
	}

	// All tests passed: silent violation / ignorance analysis.
	pin = env.Log.Pinpoints(m.Param, injected, line)
	out.Pinpointed = pin
	out.LogDump = env.Log.Dump()

	changed := false
	for p, v := range m.Values {
		if eff, ok := inst.Effective(p); ok && !sameValue(eff, v) {
			changed = true
			break
		}
	}
	switch {
	case pin:
		out.Reaction = ReactionGood
	case changed:
		out.Reaction = ReactionSilentViolation
	case m.Violates != nil && m.Violates.Kind == constraint.KindControlDep:
		// The setting is retained verbatim but cannot take effect: the
		// dependency condition is violated by construction.
		out.Reaction = ReactionSilentIgnorance
	default:
		out.Reaction = ReactionTolerated
	}
	return out, nil
}

func sameValue(a, b string) bool {
	na, nb := normalize(a), normalize(b)
	return na == nb
}

func normalize(s string) string {
	s = strings.TrimSpace(s)
	// Numeric normalization: "0064" == "64".
	neg := strings.HasPrefix(s, "-")
	t := strings.TrimPrefix(s, "-")
	if t != "" && strings.Trim(t, "0123456789") == "" {
		t = strings.TrimLeft(t, "0")
		if t == "" {
			t = "0"
		}
		if neg {
			return "-" + t
		}
		return t
	}
	return s
}

func applyEnv(env *sim.Env, actions []confgen.EnvAction) error {
	for _, a := range actions {
		switch a.Kind {
		case confgen.EnvOccupyPort:
			if err := env.Net.OccupyForTest("tcp", a.Port); err != nil {
				return err
			}
			if err := env.Net.OccupyForTest("udp", a.Port); err != nil {
				return err
			}
		case confgen.EnvMakeDir:
			if err := env.FS.MkdirAll(a.Path); err != nil {
				return err
			}
		case confgen.EnvMakeUnreadable:
			if err := env.FS.WriteFile(a.Path, []byte("secret"), 0); err != nil {
				return err
			}
		case confgen.EnvEnsureMissing:
			if env.FS.Exists(a.Path) {
				if err := env.FS.Remove(a.Path); err != nil && err != vfs.ErrNotExist {
					return err
				}
			}
		}
	}
	return nil
}

// ErrorReport renders the developer-facing report for one vulnerability:
// the constraint, the injected error, the failed test, and the logs
// (paper §3.1 "Testing and Analysis").
func ErrorReport(o Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== SPEX-INJ error report: %s ===\n", o.Misconf.ID)
	if o.Misconf.Violates != nil {
		fmt.Fprintf(&b, "constraint : %s\n", o.Misconf.Violates)
	}
	var kv []string
	for p, v := range o.Misconf.Values {
		kv = append(kv, fmt.Sprintf("%s = %s", p, v))
	}
	sort.Strings(kv)
	fmt.Fprintf(&b, "injected   : %s (%s)\n", strings.Join(kv, ", "), o.Misconf.Description)
	fmt.Fprintf(&b, "reaction   : %s\n", o.Reaction)
	if o.FailedTest != "" {
		fmt.Fprintf(&b, "failed test: %s\n", o.FailedTest)
	}
	fmt.Fprintf(&b, "code loc   : %s\n", o.Loc)
	if o.LogDump == "" {
		b.WriteString("logs       : (none)\n")
	} else {
		b.WriteString("logs       :\n")
		for _, line := range strings.Split(strings.TrimRight(o.LogDump, "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}
