// Package inject is SPEX-INJ's testing harness (paper §3.1). For every
// generated misconfiguration it boots the target on fresh virtual
// substrates, runs the target's own functional tests, and classifies the
// reaction (Table 3). A reaction is a vulnerability unless the system
// pinpoints the faulting parameter in its logs. The harness applies the
// paper's two optimizations: run the shortest test first, and stop at the
// first failed test.
package inject

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/engine"
	"spex/internal/sim"
	"spex/internal/vfs"
)

// Reaction classifies how the system reacted to an injected
// misconfiguration (Table 3, plus the two non-vulnerability outcomes).
type Reaction int

const (
	// ReactionCrash: the system crashed or hung.
	ReactionCrash Reaction = iota
	// ReactionEarlyTerm: the system exited without pinpointing the
	// injected error.
	ReactionEarlyTerm
	// ReactionFuncFailure: a functional test failed without a
	// pinpointing message.
	ReactionFuncFailure
	// ReactionSilentViolation: the system changed the input
	// configuration to a different value without notifying the user.
	ReactionSilentViolation
	// ReactionSilentIgnorance: the system ignored the input
	// configuration (mainly for control-dependency violations).
	ReactionSilentIgnorance
	// ReactionGood: the system rejected or flagged the error AND
	// pinpointed the parameter — the desired behaviour, not a
	// vulnerability.
	ReactionGood
	// ReactionTolerated: the system behaved correctly despite the
	// injection (over-approximate constraint or benign value).
	ReactionTolerated
)

var reactionNames = [...]string{
	"crash/hang", "early termination", "functional failure",
	"silent violation", "silent ignorance", "good reaction", "tolerated",
}

func (r Reaction) String() string {
	if r < 0 || int(r) >= len(reactionNames) {
		return fmt.Sprintf("Reaction(%d)", int(r))
	}
	return reactionNames[r]
}

// Vulnerability reports whether the reaction counts as a misconfiguration
// vulnerability.
func (r Reaction) Vulnerability() bool {
	switch r {
	case ReactionCrash, ReactionEarlyTerm, ReactionFuncFailure,
		ReactionSilentViolation, ReactionSilentIgnorance:
		return true
	}
	return false
}

// Outcome is the result of testing one misconfiguration.
type Outcome struct {
	Misconf    confgen.Misconf
	Reaction   Reaction
	Pinpointed bool
	FailedTest string
	LogDump    string
	// Loc is the source location of the violated constraint — the code
	// location a fix would patch (Table 5b).
	Loc constraint.SourceLoc
	// SimCost is the simulated testing cost in test-weight units.
	SimCost int
	// Err records a harness-level failure (not a system reaction): the
	// misconfiguration could not be tested. Errored outcomes stay in the
	// report but are excluded from the reaction tallies.
	Err string
	// Skipped marks an outcome the scheduler never started because the
	// campaign was cancelled first. Skipped outcomes carry the context
	// error in Err but are not harness failures: they are reported as
	// skipped work, not as untestable misconfigurations.
	Skipped bool
	// Yielded marks an outcome a scheduler gate abandoned because its
	// key was reassigned to another worker mid-campaign (the
	// coordinator's work-stealing rebalance, internal/coord). Like
	// Skipped, a yielded outcome is not a harness failure: the thief
	// executes the misconfiguration and the merge folds its outcome in.
	Yielded bool
}

// ErrYielded is the gate error a scheduler returns for a
// misconfiguration whose lease was stolen by another worker: this
// process must not execute it. Outcomes carrying it are marked Yielded,
// never cached, and excluded from the harness-failure tallies.
var ErrYielded = errors.New("inject: lease reassigned to another worker")

// Report aggregates a campaign over one system.
type Report struct {
	System   string
	Outcomes []Outcome
	// TotalSimCost is the simulated campaign duration in weight units,
	// counting only outcomes that actually executed (replayed outcomes
	// cost nothing — the point of incremental retesting).
	TotalSimCost int
	// Replayed counts outcomes served from the incremental result cache.
	Replayed int
	// ReplayedSimCost is the simulated cost the cache avoided.
	ReplayedSimCost int
	// Skipped counts misconfigurations the scheduler never started
	// because the campaign was cancelled (distinct from harness errors).
	Skipped int
	// Yielded counts misconfigurations this worker gave up to a
	// work-stealing rebalance (distinct from both skips and harness
	// errors: another worker executes them).
	Yielded int
}

// CountByReaction tallies outcomes per reaction (Table 5a row). Errored
// outcomes are not reactions and are excluded.
func (r *Report) CountByReaction() map[Reaction]int {
	out := make(map[Reaction]int)
	for _, o := range r.Outcomes {
		if o.Err != "" {
			continue
		}
		out[o.Reaction]++
	}
	return out
}

// Vulnerabilities returns the outcomes that are vulnerabilities.
func (r *Report) Vulnerabilities() []Outcome {
	var out []Outcome
	for _, o := range r.Outcomes {
		if o.Err != "" {
			continue
		}
		if o.Reaction.Vulnerability() {
			out = append(out, o)
		}
	}
	return out
}

// Finished counts the outcomes that ran (or replayed) to completion —
// everything except harness errors, cancellation skips, and steal
// yields. The drivers' replayed-vs-executed arithmetic is
// Finished() - Replayed.
func (r *Report) Finished() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Err == "" {
			n++
		}
	}
	return n
}

// Errors returns the outcomes the harness failed to test. Outcomes a
// cancellation skipped before they started, or a work-stealing
// rebalance reassigned to another worker, are not failures and are
// listed by SkippedOutcomes / counted by Report.Yielded instead.
func (r *Report) Errors() []Outcome {
	var out []Outcome
	for _, o := range r.Outcomes {
		if o.Err != "" && !o.Skipped && !o.Yielded {
			out = append(out, o)
		}
	}
	return out
}

// SkippedOutcomes returns the outcomes a cancellation prevented from
// starting.
func (r *Report) SkippedOutcomes() []Outcome {
	var out []Outcome
	for _, o := range r.Outcomes {
		if o.Skipped {
			out = append(out, o)
		}
	}
	return out
}

// UniqueLocations counts distinct source-code locations behind the
// vulnerabilities (Table 5b): one patch may fix several vulnerabilities.
func (r *Report) UniqueLocations() int {
	seen := map[string]bool{}
	for _, o := range r.Outcomes {
		if o.Err != "" || !o.Reaction.Vulnerability() {
			continue
		}
		key := fmt.Sprintf("%s:%d", o.Loc.File, o.Loc.Line)
		seen[key] = true
	}
	return len(seen)
}

// Progress is one campaign progress event: Done outcomes have finished
// (executed or replayed) out of Total. It is the single-system face of
// the progress pipeline — the global scheduler's shard.Progress carries
// the same counts plus the owning system — so every consumer (the CLI
// status line, the TTY bar renderer, the daemon's SSE stream) speaks
// one event vocabulary end to end.
type Progress struct {
	// Done counts outcomes that finished (cancellation skips are not
	// progress; they are tallied on Report.Skipped).
	Done int
	// Total is the campaign size.
	Total int
}

// Options tune the campaign.
type Options struct {
	// HangDeadline bounds Start; targets model hangs by blocking.
	HangDeadline time.Duration
	// StopOnFirstFailure stops testing a misconfiguration at the first
	// failed functional test (paper optimization 1).
	StopOnFirstFailure bool
	// SortTests runs the shortest test first (paper optimization 2).
	SortTests bool
	// SimCostDelay converts simulated cost units into real time: after
	// testing a misconfiguration the worker sleeps SimCost × this
	// duration, modeling the paper's real-server campaign where booting
	// the target once per misconfiguration dominates the cost (§3.1,
	// "under 10 hours"). Zero (the default) runs at full simulation
	// speed. The engine overlaps these delays across workers, so a
	// parallel campaign's wall-clock time shrinks toward
	// TotalSimCost/Workers — the speedup the paper's optimizations and
	// this scheduler exist to deliver.
	SimCostDelay time.Duration
	// Workers bounds campaign parallelism: how many misconfigurations
	// are in flight at once. Zero (the zero value) sizes the pool to the
	// hardware (engine.DefaultWorkers); one runs sequentially. Outcomes
	// are always reassembled in input order, so a parallel report is
	// identical to a sequential one.
	Workers int
	// Progress, if set, streams campaign progress as outcomes complete.
	// Calls are serialized by the scheduler. Outcomes a cancellation
	// skipped before they started are not reported as done — they are
	// tallied on Report.Skipped instead, so a cancelled campaign's
	// progress stays at the work actually performed.
	Progress func(Progress)
	// Cache, if set, replays recorded outcomes for misconfigurations
	// whose identity (violated constraint, rule, injected values) is
	// unchanged, and records fresh outcomes for the ones that ran —
	// SPEX-INJ's incremental retesting mode (paper §3.1).
	Cache *ResultCache
	// KeepAllLogs retains Outcome.LogDump for every outcome. By default
	// dumps are kept only for vulnerability outcomes and harness errors:
	// good/tolerated reactions never render their logs (ErrorReport is
	// only produced for vulnerabilities), and dropping them keeps the
	// in-memory result cache and persisted campaign snapshots small.
	KeepAllLogs bool
}

// DefaultHangDeadline is the Start deadline applied when
// Options.HangDeadline is zero. Campaign snapshots key replay identity
// on the effective deadline (campaignstore.OptionsID), so it lives in
// one place.
const DefaultHangDeadline = 250 * time.Millisecond

// DefaultOptions enables both paper optimizations.
func DefaultOptions() Options {
	return Options{HangDeadline: DefaultHangDeadline, StopOnFirstFailure: true, SortTests: true}
}

// Run executes a full campaign: every misconfiguration in ms against the
// target system.
func Run(sys sim.System, ms []confgen.Misconf, opts Options) (*Report, error) {
	// Context-free compatibility shim; scheduled callers use RunContext.
	//spexlint:ignore ctxflow context-free entry point
	return RunContext(context.Background(), sys, ms, opts)
}

// Runner executes individual misconfigurations of one system — the unit
// of work the schedulers dispatch. RunContext wraps one runner in a
// worker pool; the global cross-target scheduler (internal/shard)
// interleaves many runners' tasks on a single pool.
type Runner struct {
	sys      sim.System
	tmplText string
	opts     Options
}

// NewRunner prepares a runner for the system. The options are
// normalized once here (HangDeadline zero becomes DefaultHangDeadline),
// so every Test call and every scheduler sees the same effective
// options.
func NewRunner(sys sim.System, opts Options) *Runner {
	if opts.HangDeadline == 0 {
		opts.HangDeadline = DefaultHangDeadline
	}
	return &Runner{sys: sys, tmplText: sys.DefaultConfig(), opts: opts}
}

// System returns the runner's target.
func (r *Runner) System() sim.System { return r.sys }

// Options returns the normalized campaign options.
func (r *Runner) Options() Options { return r.opts }

// Test executes one misconfiguration end to end: boot on fresh virtual
// substrates, functional tests, reaction classification, log-dump
// trimming, and the optional SimCostDelay sleep. A returned error is a
// harness-level failure (the misconfiguration could not be tested),
// never a system reaction.
func (r *Runner) Test(ctx context.Context, m confgen.Misconf) (Outcome, error) {
	out, err := runOne(ctx, r.sys, r.tmplText, m, r.opts)
	if err == nil && !r.opts.KeepAllLogs && !out.Reaction.Vulnerability() {
		// Good/tolerated reactions never render their logs; dropping
		// the dump keeps the result cache and persisted snapshots
		// bounded by the vulnerability count, not the campaign size.
		out.LogDump = ""
	}
	if err == nil && r.opts.SimCostDelay > 0 {
		sleepCost(ctx, out.SimCost, r.opts.SimCostDelay)
	}
	return out, err
}

// Assemble folds one system's engine results back into a campaign
// report, in input (ms) order: cached results are replayed with their
// metadata refreshed from the current misconfiguration list, errored
// and skipped tasks are recorded per outcome, and the cost tallies
// split into executed vs replayed. RunContext and the global
// cross-target scheduler (internal/shard) share this function, which
// is why a globally scheduled campaign's per-system report is
// identical to a per-system run's.
func Assemble(system string, ms []confgen.Misconf, results []engine.Result[Outcome], cache *ResultCache) *Report {
	rep := &Report{System: system, Outcomes: make([]Outcome, 0, len(ms))}
	for i, r := range results {
		out := r.Value
		if r.Cached {
			// The cache key guarantees identity (constraint ID, rule ID,
			// injected values, env actions) but not metadata: a code
			// revision can move the constraint's source location without
			// changing its identity. Refresh the replayed outcome — and
			// the cache entry the next snapshot will persist — from the
			// current misconfiguration.
			out.Misconf = ms[i]
			if ms[i].Violates != nil {
				out.Loc = ms[i].Violates.Loc
			}
			if cache != nil {
				cache.Put(CacheKey(ms[i]), out)
			}
		}
		if r.Err != nil { // errored, cancelled mid-run, never started, or yielded
			// Per-outcome error: keep the campaign going, keep the
			// outcome out of the reaction tallies.
			out.Misconf = ms[i]
			out.Err = r.Err.Error()
			out.Skipped = r.Skipped
			out.Yielded = errors.Is(r.Err, ErrYielded)
			if r.Skipped {
				rep.Skipped++
			}
			if out.Yielded {
				rep.Yielded++
			}
		}
		rep.Outcomes = append(rep.Outcomes, out)
		if r.Cached {
			rep.Replayed++
			rep.ReplayedSimCost += out.SimCost
		} else if out.Err == "" {
			rep.TotalSimCost += out.SimCost
		}
	}
	recordReportMetrics(rep)
	return rep
}

// RunContext executes a full campaign under a context. Misconfigurations
// are dispatched through the engine worker pool (opts.Workers wide);
// outcomes are reassembled in input order so the report is identical to
// a sequential run. A harness-level failure on one misconfiguration is
// recorded on its outcome (Outcome.Err) and the campaign keeps going.
// On cancellation the partial report is returned together with the
// context error: finished outcomes are kept, unstarted ones carry the
// context error and are marked Skipped (tallied on Report.Skipped, not
// reported as progress or harness failures).
func RunContext(ctx context.Context, sys sim.System, ms []confgen.Misconf, opts Options) (*Report, error) {
	runner := NewRunner(sys, opts)
	total := len(ms)

	eopts := engine.Options[Outcome]{Workers: opts.Workers}
	if opts.Progress != nil {
		done := 0
		eopts.OnResult = func(r engine.Result[Outcome]) {
			if r.Skipped {
				// Never-started task flushed by a cancellation: not work
				// done — reported on Report.Skipped instead.
				return
			}
			done++
			opts.Progress(Progress{Done: done, Total: total})
		}
	}
	if opts.Cache != nil {
		eopts.Cache = opts.Cache
		eopts.KeyOf = func(i int) string { return CacheKey(ms[i]) }
	}

	// A Test error is returned as the task error (not folded into the
	// outcome) so the engine never records errored or cancelled outcomes
	// in the cache — they must retry on the next run.
	results, cancelErr := engine.Run(ctx, total, func(ctx context.Context, i int) (Outcome, error) {
		return runner.Test(ctx, ms[i])
	}, eopts)

	rep := Assemble(sys.Name(), ms, results, opts.Cache)
	if cancelErr != nil {
		return rep, fmt.Errorf("inject: %s: %w", sys.Name(), cancelErr)
	}
	return rep, nil
}

func runOne(ctx context.Context, sys sim.System, tmplText string, m confgen.Misconf, opts Options) (Outcome, error) {
	out := Outcome{Misconf: m}
	if m.Violates != nil {
		out.Loc = m.Violates.Loc
	}
	tmpl, err := conffile.Parse(tmplText, sys.Syntax())
	if err != nil {
		return out, err
	}
	cfg := tmpl.Clone()
	// Apply the injected values in sorted order so the rendered config —
	// and with it every downstream log line — is deterministic even for
	// multi-parameter misconfigurations.
	params := make([]string, 0, len(m.Values))
	for p := range m.Values {
		params = append(params, p)
	}
	sort.Strings(params)
	for _, p := range params {
		cfg.Set(p, m.Values[p])
	}

	env := sim.NewEnv()
	sys.SetupEnv(env)
	if err := applyEnv(env, m.Env); err != nil {
		return out, err
	}

	started := sim.MonitorStartContext(ctx, sys, env, cfg, opts.HangDeadline)
	if started.Kind == sim.StartCancelled {
		return out, started.Err
	}
	out.SimCost = 1 // boot cost
	line, _ := cfg.LineOf(m.Param)
	injected := m.Values[m.Param]
	pin := env.Log.Pinpoints(m.Param, injected, line)

	switch started.Kind {
	case sim.StartCrash, sim.StartHang:
		out.Reaction = ReactionCrash
		out.Pinpointed = false
		out.LogDump = env.Log.Dump()
		return out, nil
	case sim.StartExit, sim.StartError:
		out.Pinpointed = pin
		if pin {
			out.Reaction = ReactionGood
		} else {
			out.Reaction = ReactionEarlyTerm
		}
		out.LogDump = env.Log.Dump()
		return out, nil
	}

	inst := started.Instance
	defer inst.Stop()

	tests := append([]sim.FuncTest(nil), sys.Tests()...)
	if opts.SortTests {
		sort.SliceStable(tests, func(i, j int) bool { return tests[i].Weight < tests[j].Weight })
	}
	for _, t := range tests {
		out.SimCost += t.Weight
		if err := sim.RunTest(t, env, inst); err != nil {
			pin = env.Log.Pinpoints(m.Param, injected, line)
			out.FailedTest = t.Name
			out.Pinpointed = pin
			if pin {
				out.Reaction = ReactionGood
			} else {
				out.Reaction = ReactionFuncFailure
			}
			out.LogDump = env.Log.Dump()
			if opts.StopOnFirstFailure {
				return out, nil
			}
		}
	}
	if out.FailedTest != "" {
		return out, nil
	}

	// All tests passed: silent violation / ignorance analysis.
	pin = env.Log.Pinpoints(m.Param, injected, line)
	out.Pinpointed = pin
	out.LogDump = env.Log.Dump()

	changed := false
	for p, v := range m.Values {
		if eff, ok := inst.Effective(p); ok && !sameValue(eff, v) {
			changed = true
			break
		}
	}
	switch {
	case pin:
		out.Reaction = ReactionGood
	case changed:
		out.Reaction = ReactionSilentViolation
	case m.Violates != nil && m.Violates.Kind == constraint.KindControlDep:
		// The setting is retained verbatim but cannot take effect: the
		// dependency condition is violated by construction.
		out.Reaction = ReactionSilentIgnorance
	default:
		out.Reaction = ReactionTolerated
	}
	return out, nil
}

// sleepCost realizes a tested misconfiguration's simulated cost as wall
// time (SimCostDelay per unit), returning early if the campaign is
// cancelled — the outcome itself is already measured.
func sleepCost(ctx context.Context, units int, perUnit time.Duration) {
	t := time.NewTimer(time.Duration(units) * perUnit)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

func sameValue(a, b string) bool {
	na, nb := normalize(a), normalize(b)
	return na == nb
}

func normalize(s string) string {
	s = strings.TrimSpace(s)
	// Numeric normalization: "0064" == "64".
	neg := strings.HasPrefix(s, "-")
	t := strings.TrimPrefix(s, "-")
	if t != "" && strings.Trim(t, "0123456789") == "" {
		t = strings.TrimLeft(t, "0")
		if t == "" {
			t = "0"
		}
		if neg {
			return "-" + t
		}
		return t
	}
	return s
}

func applyEnv(env *sim.Env, actions []confgen.EnvAction) error {
	for _, a := range actions {
		switch a.Kind {
		case confgen.EnvOccupyPort:
			if err := env.Net.OccupyForTest("tcp", a.Port); err != nil {
				return err
			}
			if err := env.Net.OccupyForTest("udp", a.Port); err != nil {
				return err
			}
		case confgen.EnvMakeDir:
			if err := env.FS.MkdirAll(a.Path); err != nil {
				return err
			}
		case confgen.EnvMakeUnreadable:
			if err := env.FS.WriteFile(a.Path, []byte("secret"), 0); err != nil {
				return err
			}
		case confgen.EnvEnsureMissing:
			if env.FS.Exists(a.Path) {
				if err := env.FS.Remove(a.Path); err != nil && err != vfs.ErrNotExist {
					return err
				}
			}
		}
	}
	return nil
}

// ErrorReport renders the developer-facing report for one vulnerability:
// the constraint, the injected error, the failed test, and the logs
// (paper §3.1 "Testing and Analysis").
func ErrorReport(o Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== SPEX-INJ error report: %s ===\n", o.Misconf.ID)
	if o.Misconf.Violates != nil {
		fmt.Fprintf(&b, "constraint : %s\n", o.Misconf.Violates)
	}
	var kv []string
	for p, v := range o.Misconf.Values {
		kv = append(kv, fmt.Sprintf("%s = %s", p, v))
	}
	sort.Strings(kv)
	fmt.Fprintf(&b, "injected   : %s (%s)\n", strings.Join(kv, ", "), o.Misconf.Description)
	fmt.Fprintf(&b, "reaction   : %s\n", o.Reaction)
	if o.FailedTest != "" {
		fmt.Fprintf(&b, "failed test: %s\n", o.FailedTest)
	}
	fmt.Fprintf(&b, "code loc   : %s\n", o.Loc)
	if o.LogDump == "" {
		b.WriteString("logs       : (none)\n")
	} else {
		b.WriteString("logs       :\n")
		for _, line := range strings.Split(strings.TrimRight(o.LogDump, "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}
