package inject

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/sim"
)

// campaignMisconfs covers every classification path of the fake system.
func campaignMisconfs(n int) []confgen.Misconf {
	values := []string{"crash", "exit-silent", "exit-pinpoint", "clamped", "good", "fail-silent"}
	c := basic("p", constraint.BasicString)
	var ms []confgen.Misconf
	for i := 0; i < n; i++ {
		v := values[i%len(values)]
		ms = append(ms, confgen.Misconf{
			ID:       fmt.Sprintf("m%03d-%s", i, v),
			Param:    "p",
			Values:   map[string]string{"p": v},
			Violates: c,
		})
	}
	return ms
}

func TestParallelReportEqualsSequential(t *testing.T) {
	sys := &fakeSystem{tests: []sim.FuncTest{
		{Name: "quick", Weight: 1, Run: func(env *sim.Env, inst sim.Instance) error {
			return nil
		}},
		{Name: "fail-on-silent", Weight: 3, Run: func(env *sim.Env, inst sim.Instance) error {
			if v, _ := inst.Effective("p"); v == "fail-silent" {
				return fmt.Errorf("request failed")
			}
			return nil
		}},
	}}
	ms := campaignMisconfs(60)
	opts := DefaultOptions()
	opts.HangDeadline = 100 * time.Millisecond

	seq, err := Run(sys, ms, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		opts.Workers = workers
		par, err := Run(sys, ms, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Outcomes) != len(seq.Outcomes) {
			t.Fatalf("workers=%d: %d outcomes, want %d", workers, len(par.Outcomes), len(seq.Outcomes))
		}
		for i := range seq.Outcomes {
			if !reflect.DeepEqual(par.Outcomes[i], seq.Outcomes[i]) {
				t.Fatalf("workers=%d: outcome %d differs:\nparallel  : %+v\nsequential: %+v",
					workers, i, par.Outcomes[i], seq.Outcomes[i])
			}
		}
		if par.TotalSimCost != seq.TotalSimCost {
			t.Fatalf("workers=%d: sim cost %d, want %d", workers, par.TotalSimCost, seq.TotalSimCost)
		}
	}
}

func TestRunRecordsPerOutcomeErrorsAndKeepsGoing(t *testing.T) {
	sys := &fakeSystem{}
	c := basic("p", constraint.BasicString)
	ms := []confgen.Misconf{
		{ID: "ok-1", Param: "p", Values: map[string]string{"p": "good"}, Violates: c},
		{ID: "bad-env", Param: "p", Values: map[string]string{"p": "good"}, Violates: c,
			// The duplicate occupy action fails: the port is already
			// taken by the first action's tcp+udp binds.
			Env: []confgen.EnvAction{
				{Kind: confgen.EnvOccupyPort, Port: 9999},
				{Kind: confgen.EnvOccupyPort, Port: 9999},
			}},
		{ID: "ok-2", Param: "p", Values: map[string]string{"p": "clamped"}, Violates: c},
	}
	rep, err := Run(sys, ms, DefaultOptions())
	if err != nil {
		t.Fatalf("a single bad misconfiguration aborted the campaign: %v", err)
	}
	if len(rep.Outcomes) != 3 {
		t.Fatalf("report has %d outcomes, want all 3", len(rep.Outcomes))
	}
	errs := rep.Errors()
	if len(errs) != 1 || errs[0].Misconf.ID != "bad-env" {
		t.Fatalf("Errors() = %+v, want exactly bad-env", errs)
	}
	if rep.Outcomes[1].Err == "" {
		t.Fatal("errored outcome not recorded on the report")
	}
	counts := rep.CountByReaction()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 2 {
		t.Fatalf("reaction tallies count %d outcomes, want 2 (errored excluded)", total)
	}
}

func TestRunContextCancellationReturnsPartialReport(t *testing.T) {
	sys := &fakeSystem{}
	ms := campaignMisconfs(40)
	ctx, cancel := context.WithCancel(context.Background())
	opts := DefaultOptions()
	opts.Workers = 2
	fired := false
	opts.Progress = func(Progress) {
		if !fired {
			fired = true
			cancel()
		}
	}
	rep, err := RunContext(ctx, sys, ms, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(rep.Outcomes) != len(ms) {
		t.Fatalf("partial report has %d outcomes, want %d rows", len(rep.Outcomes), len(ms))
	}
	var done, cancelled int
	for _, o := range rep.Outcomes {
		if o.Err == "" {
			done++
		} else {
			cancelled++
		}
	}
	if done == 0 || cancelled == 0 {
		t.Fatalf("done=%d cancelled=%d, want a genuine partial run", done, cancelled)
	}
}

func TestProgressStreamsEveryOutcome(t *testing.T) {
	sys := &fakeSystem{}
	ms := campaignMisconfs(24)
	opts := DefaultOptions()
	opts.Workers = 4
	var calls int
	var last int
	opts.Progress = func(p Progress) {
		calls++
		last = p.Done
		if p.Total != 24 {
			t.Errorf("total = %d, want 24", p.Total)
		}
	}
	if _, err := Run(sys, ms, opts); err != nil {
		t.Fatal(err)
	}
	if calls != 24 || last != 24 {
		t.Fatalf("progress calls=%d last=%d, want 24/24", calls, last)
	}
}

func TestIncrementalReplaysUnchangedConstraints(t *testing.T) {
	sys := &fakeSystem{}
	cP := basic("p", constraint.BasicString)
	cQ := rng("q", 1)
	var ms []confgen.Misconf
	for i := 0; i < 10; i++ {
		ms = append(ms, confgen.Misconf{
			ID: fmt.Sprintf("p-%02d", i), Param: "p",
			Values: map[string]string{"p": "good"}, Violates: cP,
		})
	}
	ms = append(ms, confgen.Misconf{
		ID: "q-0", Param: "q", Values: map[string]string{"q": "0"}, Violates: cQ,
	})

	full, err := Run(sys, ms, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewResultCache()
	SeedCache(cache, full)

	// Revision 1: nothing changed — everything replays.
	d := Diff(mkSet(cP, cQ), mkSet(cP, cQ))
	rep, err := RunIncremental(context.Background(), sys, ms, d, cache, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != len(ms) || rep.TotalSimCost != 0 {
		t.Fatalf("no-op revision: replayed=%d cost=%d, want %d/0", rep.Replayed, rep.TotalSimCost, len(ms))
	}
	if !reflect.DeepEqual(stripBookkeeping(rep), stripBookkeeping(full)) {
		t.Fatal("replayed report differs from the original campaign")
	}

	// Revision 2: q's range moved — only q's misconfiguration reruns.
	cQ2 := rng("q", 4)
	ms2 := append(append([]confgen.Misconf(nil), ms[:10]...), confgen.Misconf{
		ID: "q-0", Param: "q", Values: map[string]string{"q": "0"}, Violates: cQ2,
	})
	d2 := Diff(mkSet(cP, cQ), mkSet(cP, cQ2))
	rep2, err := RunIncremental(context.Background(), sys, ms2, d2, cache, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Replayed != 10 {
		t.Fatalf("incremental run replayed %d outcomes, want 10", rep2.Replayed)
	}
	if rep2.TotalSimCost == 0 {
		t.Fatal("changed constraint did not re-execute")
	}
	if len(rep2.Outcomes) != 11 {
		t.Fatalf("incremental report has %d outcomes, want 11", len(rep2.Outcomes))
	}
}

// stripBookkeeping compares campaign substance, ignoring the incremental
// accounting fields.
func stripBookkeeping(r *Report) []Outcome { return r.Outcomes }

// Regression: cancelling a campaign must not drive progress to N/N. The
// dispatcher flushes a Result for every never-started index; those are
// marked Skipped and must be reported as skipped work, not done work.
func TestProgressOnCancellationReportsSkippedNotDone(t *testing.T) {
	sys := &fakeSystem{}
	ms := campaignMisconfs(40)
	ctx, cancel := context.WithCancel(context.Background())
	opts := DefaultOptions()
	opts.Workers = 1
	var lastDone int
	opts.Progress = func(p Progress) {
		lastDone = p.Done
		if p.Done == 2 {
			cancel()
		}
	}
	rep, err := RunContext(ctx, sys, ms, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if lastDone >= len(ms) {
		t.Fatalf("progress jumped to %d/%d on cancellation", lastDone, len(ms))
	}
	if rep.Skipped == 0 {
		t.Fatal("no outcomes tallied as skipped")
	}
	if got := len(rep.SkippedOutcomes()); got != rep.Skipped {
		t.Fatalf("SkippedOutcomes lists %d, tally says %d", got, rep.Skipped)
	}
	// Progress reported exactly the outcomes that were attempted (done or
	// errored in flight), never the flushed remainder.
	attempted := 0
	for _, o := range rep.Outcomes {
		if !o.Skipped {
			attempted++
		}
	}
	if lastDone != attempted {
		t.Fatalf("progress ended at %d, want the %d attempted outcomes", lastDone, attempted)
	}
	// Skipped outcomes are not harness failures.
	for _, o := range rep.Errors() {
		if o.Skipped {
			t.Fatalf("skipped outcome listed as a harness error: %+v", o)
		}
	}
}

// Regression (satellite of the persistent store): a campaign cancelled
// mid-run must not cache cancelled or errored outcomes — SeedCache's Err
// filter and the engine's no-record-on-error rule guard the runOne
// StartCancelled path — and a follow-up RunIncremental must re-execute
// exactly the unfinished misconfigurations.
func TestCancelThenResumeReexecutesOnlyUnfinished(t *testing.T) {
	sys := &fakeSystem{}
	c := basic("p", constraint.BasicString)
	var ms []confgen.Misconf
	for i := 0; i < 20; i++ {
		ms = append(ms, confgen.Misconf{
			ID: fmt.Sprintf("m%02d", i), Param: "p",
			Values: map[string]string{"p": "good"}, Violates: c,
		})
	}

	ctx, cancel := context.WithCancel(context.Background())
	opts := DefaultOptions()
	opts.Workers = 1
	opts.Cache = NewResultCache()
	opts.Progress = func(p Progress) {
		if p.Done == 5 {
			cancel()
		}
	}
	rep, err := RunContext(ctx, sys, ms, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var finished []string
	for _, o := range rep.Outcomes {
		if o.Err == "" {
			finished = append(finished, o.Misconf.ID)
		}
	}
	if len(finished) == 0 || len(finished) == len(ms) {
		t.Fatalf("finished %d/%d, want a genuine partial run", len(finished), len(ms))
	}
	// The live cache holds exactly the finished outcomes...
	if got := opts.Cache.Len(); got != len(finished) {
		t.Fatalf("cache holds %d outcomes, want the %d finished", got, len(finished))
	}
	// ...and seeding a fresh cache from the partial report agrees: the
	// Err filter drops cancelled and skipped outcomes.
	seeded := NewResultCache()
	SeedCache(seeded, rep)
	if got := seeded.Len(); got != len(finished) {
		t.Fatalf("SeedCache recorded %d outcomes, want %d", got, len(finished))
	}

	// Resume with an empty delta: finished outcomes replay, the rest
	// re-execute.
	rep2, err := RunIncremental(context.Background(), sys, ms, Delta{}, opts.Cache, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Replayed != len(finished) {
		t.Fatalf("resume replayed %d outcomes, want %d", rep2.Replayed, len(finished))
	}
	fresh := 0
	for i, o := range rep2.Outcomes {
		if o.Err != "" {
			t.Fatalf("resume left outcome %d unfinished: %+v", i, o)
		}
		if !contains(finished, o.Misconf.ID) {
			fresh++
		}
	}
	if fresh != len(ms)-len(finished) {
		t.Fatalf("resume executed %d fresh outcomes, want %d", fresh, len(ms)-len(finished))
	}
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// Satellite: log dumps are retained only for vulnerability outcomes by
// default, so the result cache and persisted snapshots stay bounded.
func TestLogDumpRetainedOnlyForVulnerabilities(t *testing.T) {
	sys := &fakeSystem{}
	ms := []confgen.Misconf{
		mk("p", "exit-silent", nil),   // early termination: vulnerability
		mk("p", "benign", nil),        // tolerated
		mk("p", "exit-pinpoint", nil), // good reaction
	}
	rep, err := Run(sys, ms, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes[0].LogDump == "" {
		t.Error("vulnerability outcome lost its log dump")
	}
	if rep.Outcomes[1].LogDump != "" || rep.Outcomes[2].LogDump != "" {
		t.Error("non-vulnerability outcomes kept their log dumps")
	}
	// Opting in retains everything.
	opts := DefaultOptions()
	opts.KeepAllLogs = true
	rep, err = Run(sys, ms, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes[2].LogDump == "" {
		t.Error("KeepAllLogs did not retain the good reaction's log dump")
	}
}
