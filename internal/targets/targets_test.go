package targets_test

import (
	"strings"
	"testing"
	"time"

	"spex/internal/conffile"
	"spex/internal/sim"
	"spex/internal/targets"
)

// scenario is one paper case study: inject values, expect a reaction.
type scenario struct {
	name   string
	system string
	values map[string]string
	expect sim.StartKind // expected boot outcome
	// failTest, when set, expects the named functional test to fail
	// after a successful boot.
	failTest string
	// effective, when set, expects the given post-boot effective values
	// (silent violation checks).
	effective map[string]string
	// logHas, when set, expects the log to contain the substring.
	logHas string
}

func run(t *testing.T, sc scenario) {
	t.Helper()
	sys := targets.ByName(sc.system)
	if sys == nil {
		t.Fatalf("unknown system %q", sc.system)
	}
	env := sim.NewEnv()
	sys.SetupEnv(env)
	cfg, err := conffile.Parse(sys.DefaultConfig(), sys.Syntax())
	if err != nil {
		t.Fatal(err)
	}
	for p, v := range sc.values {
		cfg.Set(p, v)
	}
	out := sim.MonitorStart(sys, env, cfg, 250*time.Millisecond)
	if out.Kind != sc.expect {
		t.Fatalf("boot outcome = %s, want %s\nlog:\n%s", out.Kind, sc.expect, env.Log.Dump())
	}
	if sc.logHas != "" && !env.Log.Contains(sc.logHas) {
		t.Errorf("log missing %q:\n%s", sc.logHas, env.Log.Dump())
	}
	if out.Kind != sim.StartOK {
		return
	}
	inst := out.Instance
	defer inst.Stop()
	if sc.failTest != "" {
		failed := ""
		for _, ft := range sys.Tests() {
			if err := sim.RunTest(ft, env, inst); err != nil {
				failed = ft.Name
				break
			}
		}
		if failed != sc.failTest {
			t.Errorf("failed test = %q, want %q", failed, sc.failTest)
		}
	}
	for p, want := range sc.effective {
		got, ok := inst.Effective(p)
		if !ok || got != want {
			t.Errorf("effective %s = %q (%v), want %q", p, got, ok, want)
		}
	}
}

// TestPaperScenarios replays the paper's motivating examples and the
// Figure 5/7 case studies against the live targets.
func TestPaperScenarios(t *testing.T) {
	scenarios := []scenario{
		{
			// Figure 1: capital letters in the initiator name make the
			// share unrecognizable, silently.
			name: "figure1-initiator-uppercase", system: "Storage-A",
			values:   map[string]string{"iscsi.initiator_name": "iqn.2013-01.com.example:TARGET"},
			expect:   sim.StartOK,
			failTest: "iscsi-discover",
		},
		{
			// Figure 2: listener-threads past the hard-coded 16 crashes.
			name: "figure2-listener-threads", system: "ldapd",
			values: map[string]string{"listener-threads": "32"},
			expect: sim.StartCrash,
		},
		{
			// Figure 5(b): a directory where a file is expected crashes
			// the full-text engine.
			name: "figure5b-stopword-dir", system: "mydb",
			values: map[string]string{"ft_stopword_file": "/var/lib/mydb"},
			expect: sim.StartCrash,
		},
		{
			// Figure 5(c): ICP port out of range aborts with the
			// misleading message.
			name: "figure5c-icp-port", system: "proxyd",
			values: map[string]string{"icp_port": "70000"},
			expect: sim.StartExit,
			logHas: "Cannot open ICP Port",
		},
		{
			// Figure 5(d): out-of-range index_intlen silently clamped.
			name: "figure5d-index-intlen", system: "ldapd",
			values:    map[string]string{"index_intlen": "300"},
			expect:    sim.StartOK,
			effective: map[string]string{"index_intlen": "255"},
		},
		{
			// Figure 5(f): inverted word-length window breaks search
			// with no message.
			name: "figure5f-wordlen-inverted", system: "mydb",
			values:   map[string]string{"ft_min_word_len": "25", "ft_max_word_len": "10"},
			expect:   sim.StartOK,
			failTest: "ft-search",
		},
		{
			// Figure 6(c): Squid treats "yes" as off, silently.
			name: "figure6c-query-icmp-yes", system: "proxyd",
			values:    map[string]string{"query_icmp": "yes"},
			expect:    sim.StartOK,
			effective: map[string]string{"query_icmp": "off"},
		},
		{
			// Figure 7(b): oversized ThreadLimit aborts with the
			// scoreboard message, never naming the parameter.
			name: "figure7b-threadlimit", system: "httpd",
			values: map[string]string{"ThreadLimit": "100000"},
			expect: sim.StartExit,
			logHas: "Unable to create access scoreboard",
		},
		{
			// Figure 7(c): tiny sockbuf makes every request fail with
			// only connection-level logs.
			name: "figure7c-sockbuf", system: "ldapd",
			values:   map[string]string{"sockbuf_max_incoming": "1"},
			expect:   sim.StartOK,
			failTest: "search-entry",
		},
		{
			// Figure 7(d): pcs.size with a unit suffix parses to 0 via
			// the legacy atoi.
			name: "figure7d-pcs-size-suffix", system: "Storage-A",
			values:    map[string]string{"pcs.size": "512MB"},
			expect:    sim.StartOK,
			effective: map[string]string{"pcs.size": "0"},
		},
		{
			// VSFTP dies on a bad boolean (its dominant crash mode).
			name: "vsftp-bad-bool", system: "ftpd",
			values: map[string]string{"anonymous_enable": "maybe"},
			expect: sim.StartCrash,
		},
		{
			// MySQL enum matching is case insensitive except
			// innodb_file_format_check (Figure 6a): lowercase spelling
			// of a valid value is rejected (with a pinpointing message,
			// so this is a good reaction, but it IS the inconsistency).
			name: "figure6a-file-format-case", system: "mydb",
			values: map[string]string{"innodb_file_format_check": "antelope"},
			expect: sim.StartExit,
			logHas: "innodb_file_format_check",
		},
		{
			// ...while other mydb enums accept any casing.
			name: "mydb-insensitive-enum", system: "mydb",
			values:    map[string]string{"character_set_server": "LATIN1"},
			expect:    sim.StartOK,
			effective: map[string]string{"character_set_server": "latin1"},
		},
		{
			// pgdb's GUC tables reject out-of-range values with a
			// pinpointing message (§5.2 good practice).
			name: "pgdb-guc-range-rejection", system: "pgdb",
			values: map[string]string{"shared_buffers": "1"},
			expect: sim.StartExit,
			logHas: "shared_buffers",
		},
		{
			// Silent clamp in mydb: max_connections = 0 becomes 1.
			name: "mydb-silent-clamp", system: "mydb",
			values:    map[string]string{"max_connections": "0"},
			expect:    sim.StartOK,
			effective: map[string]string{"max_connections": "1"},
		},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) { run(t, sc) })
	}
}

// TestDefaultsBootEverywhere double-checks every registered target boots
// and passes its own tests on the shipped defaults.
func TestDefaultsBootEverywhere(t *testing.T) {
	for _, sys := range targets.All() {
		sys := sys
		t.Run(sys.Name(), func(t *testing.T) {
			env := sim.NewEnv()
			sys.SetupEnv(env)
			cfg, err := conffile.Parse(sys.DefaultConfig(), sys.Syntax())
			if err != nil {
				t.Fatal(err)
			}
			out := sim.MonitorStart(sys, env, cfg, 250*time.Millisecond)
			if out.Kind != sim.StartOK {
				t.Fatalf("defaults outcome = %s\nlog:\n%s", out.Kind, env.Log.Dump())
			}
			defer out.Instance.Stop()
			for _, ft := range sys.Tests() {
				if err := sim.RunTest(ft, env, out.Instance); err != nil {
					t.Errorf("test %s: %v", ft.Name, err)
				}
			}
		})
	}
}

// TestEveryTargetDocumentsDefaults ensures every mapped parameter appears
// in the default configuration template (the injector relies on
// template defaults for dependency violations).
func TestEveryTargetDocumentsDefaults(t *testing.T) {
	for _, sys := range targets.All() {
		sys := sys
		t.Run(sys.Name(), func(t *testing.T) {
			cfg, err := conffile.Parse(sys.DefaultConfig(), sys.Syntax())
			if err != nil {
				t.Fatal(err)
			}
			keys := cfg.Keys()
			if len(keys) < 15 {
				t.Errorf("default template has only %d directives", len(keys))
			}
			for _, k := range keys {
				if strings.TrimSpace(k) == "" {
					t.Error("empty directive key in template")
				}
			}
		})
	}
}
