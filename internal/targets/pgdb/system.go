package pgdb

import (
	_ "embed"
	"fmt"
	"strconv"
	"sync"

	"spex/internal/conffile"
	"spex/internal/constraint"
	"spex/internal/sim"
)

//go:embed corpus.go
var corpusSource string

// System is the pgdb target.
type System struct{}

// New returns the pgdb target system.
func New() *System { return &System{} }

func (s *System) Name() string { return "pgdb" }
func (s *System) Description() string {
	return "PostgreSQL-like database (structure mapping, GUC tables)"
}

func (s *System) Syntax() conffile.Syntax { return conffile.SyntaxEquals }

func (s *System) Sources() map[string]string {
	return map[string]string{"corpus.go": corpusSource}
}

// Annotations: one block per GUC table (PostgreSQL needed 7 lines in
// Table 4; three lines of it cover 82 parameters of ConfigureNamesInt).
func (s *System) Annotations() string {
	return `# PostgreSQL-style GUC tables
{ @STRUCT = configureNamesInt    @PAR = [configInt, 1]  @VAR = [configInt, 2] }
{ @STRUCT = configureNamesString @PAR = [configStr, 1]  @VAR = [configStr, 2] }
{ @STRUCT = configureNamesBool   @PAR = [configBool, 1] @VAR = [configBool, 2] }`
}

func (s *System) DefaultConfig() string {
	return `# pgdb configuration
port = 5432
listen_addresses = 127.0.0.1
data_directory = /var/lib/pgdb/data
hba_file = /var/lib/pgdb/data/pg_hba.conf
external_pid_file = /var/run/pgdb.pid
max_connections = 100
shared_buffers = 16384
work_mem = 4096
maintenance_work_mem = 65536
temp_buffers = 1024
wal_buffers = 512
fsync = on
synchronous_commit = on
commit_siblings = 5
commit_delay = 0
wal_level = minimal
archive_mode = off
archive_command = cp %p /var/lib/pgdb/archive/%f
archive_timeout = 0
deadlock_timeout = 1000
statement_timeout = 0
checkpoint_timeout = 300
autovacuum = on
autovacuum_naptime = 1
vacuum_cost_delay = 0
log_destination = stderr
logging_collector = off
log_directory = /var/log/pgdb
log_min_messages = warning
client_encoding = utf8
`
}

func (s *System) SetupEnv(env *sim.Env) {
	_ = env.FS.MkdirAll("/var/lib/pgdb/data")
	_ = env.FS.WriteFile("/var/lib/pgdb/data/pg_hba.conf", []byte("local all trust"), 6)
	_ = env.FS.MkdirAll("/var/log/pgdb")
}

type instance struct {
	st        *pgState
	effective map[string]string
	env       *sim.Env
}

func (i *instance) Effective(param string) (string, bool) {
	v, ok := i.effective[param]
	return v, ok
}

func (i *instance) Stop() { i.env.Net.ReleaseOwner("pgdb") }

// bootMu serializes the boot: the corpus models PostgreSQL's real global
// GUC variables (and snapshot reads them through the GUC tables), so
// concurrent Starts must not interleave until the instance detaches.
var bootMu sync.Mutex

func (s *System) Start(env *sim.Env, cfg *conffile.File) (sim.Instance, error) {
	bootMu.Lock()
	defer bootMu.Unlock()
	*pg = pgConfig{}
	if err := applyGUC(env, cfg.Map()); err != nil {
		return nil, err
	}
	st, err := startPostmaster(env, pg)
	if err != nil {
		return nil, err
	}
	eff := snapshot()
	c := *pg
	st.conf = &c // detach: the functional tests run outside the boot lock
	return &instance{st: st, effective: eff, env: env}, nil
}

func snapshot() map[string]string {
	m := map[string]string{}
	for i := range configureNamesInt {
		o := &configureNamesInt[i]
		m[o.name] = strconv.FormatInt(*o.ptr, 10)
	}
	for i := range configureNamesString {
		o := &configureNamesString[i]
		m[o.name] = *o.ptr
	}
	for i := range configureNamesBool {
		o := &configureNamesBool[i]
		if *o.ptr {
			m[o.name] = "on"
		} else {
			m[o.name] = "off"
		}
	}
	return m
}

func (s *System) Tests() []sim.FuncTest {
	return []sim.FuncTest{
		{
			Name: "accept-connections", Weight: 1,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if !env.Net.Occupied("tcp", int(i.st.conf.port)) {
					return fmt.Errorf("postmaster is not listening")
				}
				return nil
			},
		},
		{
			Name: "commit-txn", Weight: 3,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				i.st.recordTransactionCommit()
				if i.st.committed != 1 {
					return fmt.Errorf("transaction did not commit")
				}
				return nil
			},
		},
		{
			Name: "wal-mode", Weight: 2,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				switch i.st.conf.walLevel {
				case "minimal", "archive", "hot_standby":
					return nil
				}
				return fmt.Errorf("invalid WAL level %q", i.st.conf.walLevel)
			},
		},
		{
			Name: "pid-file", Weight: 2,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if !env.FS.Exists(i.st.conf.externalPidFile) {
					return fmt.Errorf("external pid file missing")
				}
				return nil
			},
		},
	}
}

func (s *System) Manual() map[string]sim.ManualEntry {
	doc := func(prose string, kinds ...constraint.Kind) sim.ManualEntry {
		return sim.ManualEntry{Prose: prose, Documented: kinds}
	}
	return map[string]sim.ManualEntry{
		"port":             doc("TCP port, 1..65535.", constraint.KindBasicType, constraint.KindSemanticType, constraint.KindRange),
		"max_connections":  doc("Maximum concurrent connections, 1..262143.", constraint.KindBasicType, constraint.KindRange),
		"shared_buffers":   doc("Shared memory buffers (8 KB pages), min 16.", constraint.KindBasicType, constraint.KindRange),
		"work_mem":         doc("Per-operation memory (KB), min 64.", constraint.KindBasicType, constraint.KindSemanticType),
		"data_directory":   doc("Data directory path.", constraint.KindBasicType, constraint.KindSemanticType),
		"wal_level":        doc("minimal, archive or hot_standby.", constraint.KindBasicType, constraint.KindRange),
		"fsync":            doc("Forces synchronization to disk.", constraint.KindBasicType),
		"commit_siblings":  doc("Minimum concurrent open transactions for commit_delay, 0..1000.", constraint.KindBasicType, constraint.KindRange),
		"commit_delay":     doc("Delay in microseconds between commit and flush, 0..100000.", constraint.KindBasicType, constraint.KindRange, constraint.KindSemanticType),
		"deadlock_timeout": doc("Time to wait on a lock before deadlock check (ms), min 1.", constraint.KindBasicType, constraint.KindSemanticType),
	}
}

func (s *System) GroundTruth() *constraint.Set {
	gt := constraint.NewSet("pgdb")
	b := func(p string, t constraint.BasicType) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindBasicType, Param: p, Basic: t})
	}
	sem := func(p string, t constraint.SemanticType, u constraint.Unit) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindSemanticType, Param: p, Semantic: t, Unit: u})
	}
	for i := range configureNamesInt {
		b(configureNamesInt[i].name, constraint.BasicInt64)
	}
	for i := range configureNamesString {
		b(configureNamesString[i].name, constraint.BasicString)
	}
	for i := range configureNamesBool {
		b(configureNamesBool[i].name, constraint.BasicBool)
	}
	sem("port", constraint.SemPort, constraint.UnitNone)
	sem("data_directory", constraint.SemDirectory, constraint.UnitNone)
	sem("hba_file", constraint.SemFile, constraint.UnitNone)
	sem("external_pid_file", constraint.SemFile, constraint.UnitNone)
	sem("log_directory", constraint.SemDirectory, constraint.UnitNone)
	sem("work_mem", constraint.SemSize, constraint.UnitKB)
	sem("maintenance_work_mem", constraint.SemSize, constraint.UnitKB)
	sem("shared_buffers", constraint.SemSize, constraint.UnitNone)
	sem("temp_buffers", constraint.SemSize, constraint.UnitNone)
	sem("wal_buffers", constraint.SemSize, constraint.UnitNone)
	sem("deadlock_timeout", constraint.SemTimeout, constraint.UnitMillisecond)
	sem("statement_timeout", constraint.SemTimeout, constraint.UnitMillisecond)
	sem("checkpoint_timeout", constraint.SemTimeout, constraint.UnitSecond)
	sem("archive_timeout", constraint.SemTimeout, constraint.UnitSecond)
	sem("autovacuum_naptime", constraint.SemTimeout, constraint.UnitMinute)
	sem("vacuum_cost_delay", constraint.SemTimeout, constraint.UnitMillisecond)
	sem("commit_delay", constraint.SemTimeout, constraint.UnitMicrosecond)

	enum := func(p string, vals ...string) {
		evs := make([]constraint.EnumValue, len(vals))
		for i, v := range vals {
			evs[i] = constraint.EnumValue{Value: v, Valid: true}
		}
		gt.Add(&constraint.Constraint{Kind: constraint.KindRange, Param: p, Enum: evs})
	}
	enum("wal_level", "minimal", "archive", "hot_standby")
	enum("log_min_messages", "debug", "info", "warning", "error")
	enum("client_encoding", "utf8", "latin1", "sql_ascii")
	enum("listen_addresses", "localhost", "*")

	dep := func(q, p string, op constraint.Op, v string) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindControlDep, Param: q, Peer: p, Cond: op, Value: v})
	}
	dep("commit_siblings", "fsync", constraint.OpEQ, "true")
	dep("commit_delay", "fsync", constraint.OpEQ, "true")
	dep("archive_command", "archive_mode", constraint.OpEQ, "true")
	dep("archive_timeout", "archive_mode", constraint.OpEQ, "true")
	dep("autovacuum_naptime", "autovacuum", constraint.OpEQ, "true")
	dep("vacuum_cost_delay", "autovacuum", constraint.OpEQ, "true")
	dep("log_directory", "logging_collector", constraint.OpEQ, "true")
	return gt
}

var _ sim.System = (*System)(nil)
