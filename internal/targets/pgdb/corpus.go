// Package pgdb is a PostgreSQL-like database simulation. Its configuration
// uses structure-based direct mapping (Figure 4a: the ConfigureNamesInt
// table of guc.c). It demonstrates the paper's §5.2 good practice of
// "exploiting data structures": the option table carries min/max bounds and
// a generic loop enforces them with pinpointing messages, so pgdb has few
// type/range vulnerabilities. Its weakness is silent ignorance: many
// parameters take effect only under control dependencies (fsync ->
// commit_siblings is Figure 3e verbatim; wal/archive/autovacuum groups add
// more).
package pgdb

import (
	"strconv"
	"strings"

	"spex/internal/sim"
)

// pgConfig is the server configuration.
type pgConfig struct {
	port            int64
	listenAddresses string
	dataDirectory   string
	hbaFile         string
	externalPidFile string

	maxConnections int64
	sharedBuffers  int64
	workMem        int64
	maintenanceMem int64
	tempBuffers    int64
	walBuffers     int64

	fsync             bool
	synchronousCommit bool
	commitSiblings    int64
	commitDelay       int64
	walLevel          string
	archiveMode       bool
	archiveCommand    string
	archiveTimeout    int64

	deadlockTimeout   int64
	statementTimeout  int64
	checkpointTimeout int64
	autovacuum        bool
	autovacuumNaptime int64
	vacuumCostDelay   int64

	logDestination   string
	loggingCollector bool
	logDirectory     string
	logMinMessages   string
	clientEncoding   string
}

var pg = &pgConfig{}

// configInt is one row of the integer GUC table: name, variable, default,
// min, max (the paper's Figure 4a shows exactly this shape).
type configInt struct {
	name string
	ptr  *int64
	def  int64
	min  int64
	max  int64
}

// configStr and configBool are the string/boolean GUC tables.
type configStr struct {
	name string
	ptr  *string
	def  string
}

type configBool struct {
	name string
	ptr  *bool
	def  bool
}

var configureNamesInt = []configInt{
	{"port", &pg.port, 5432, 1, 65535},
	{"max_connections", &pg.maxConnections, 100, 1, 262143},
	{"shared_buffers", &pg.sharedBuffers, 16384, 16, 1073741823},
	{"work_mem", &pg.workMem, 4096, 64, 2147483647},
	{"maintenance_work_mem", &pg.maintenanceMem, 65536, 1024, 2147483647},
	{"temp_buffers", &pg.tempBuffers, 1024, 100, 1073741823},
	{"wal_buffers", &pg.walBuffers, 512, 4, 262143},
	{"commit_siblings", &pg.commitSiblings, 5, 0, 1000},
	{"commit_delay", &pg.commitDelay, 0, 0, 100000},
	{"archive_timeout", &pg.archiveTimeout, 0, 0, 1073741823},
	{"deadlock_timeout", &pg.deadlockTimeout, 1000, 1, 2147483647},
	{"statement_timeout", &pg.statementTimeout, 0, 0, 2147483647},
	{"checkpoint_timeout", &pg.checkpointTimeout, 300, 30, 3600},
	{"autovacuum_naptime", &pg.autovacuumNaptime, 1, 1, 2147483},
	{"vacuum_cost_delay", &pg.vacuumCostDelay, 0, 0, 100},
}

var configureNamesString = []configStr{
	{"listen_addresses", &pg.listenAddresses, "127.0.0.1"},
	{"data_directory", &pg.dataDirectory, "/var/lib/pgdb/data"},
	{"hba_file", &pg.hbaFile, "/var/lib/pgdb/data/pg_hba.conf"},
	{"external_pid_file", &pg.externalPidFile, "/var/run/pgdb.pid"},
	{"wal_level", &pg.walLevel, "minimal"},
	{"archive_command", &pg.archiveCommand, "cp %p /var/lib/pgdb/archive/%f"},
	{"log_destination", &pg.logDestination, "stderr"},
	{"log_directory", &pg.logDirectory, "/var/log/pgdb"},
	{"log_min_messages", &pg.logMinMessages, "warning"},
	{"client_encoding", &pg.clientEncoding, "utf8"},
}

var configureNamesBool = []configBool{
	{"fsync", &pg.fsync, true},
	{"synchronous_commit", &pg.synchronousCommit, true},
	{"archive_mode", &pg.archiveMode, false},
	{"autovacuum", &pg.autovacuum, true},
	{"logging_collector", &pg.loggingCollector, false},
}

// applyGUC parses raw values through the typed tables. The integer table
// enforces min/max uniformly with pinpointing messages — the §5.2 good
// practice ("they have fewer misconfiguration vulnerabilities that violate
// type and range constraints").
func applyGUC(env *sim.Env, vals map[string]string) error {
	for i := range configureNamesInt {
		o := &configureNamesInt[i]
		raw, ok := vals[o.name]
		if !ok {
			*o.ptr = o.def
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(raw), 10, 64)
		if err != nil {
			env.Log.Errorf(`FATAL: parameter "%s" requires an integer value`, o.name)
			return &sim.ExitError{Status: 1, Reason: "bad " + o.name}
		}
		if v < o.min || v > o.max {
			env.Log.Errorf(`FATAL: %d is outside the valid range for parameter "%s" (%d .. %d)`, v, o.name, o.min, o.max)
			return &sim.ExitError{Status: 1, Reason: o.name + " out of range"}
		}
		*o.ptr = v
	}
	for i := range configureNamesString {
		o := &configureNamesString[i]
		if raw, ok := vals[o.name]; ok {
			*o.ptr = strings.TrimSpace(raw)
		} else {
			*o.ptr = o.def
		}
	}
	for i := range configureNamesBool {
		o := &configureNamesBool[i]
		raw, ok := vals[o.name]
		if !ok {
			*o.ptr = o.def
			continue
		}
		switch strings.TrimSpace(raw) {
		case "on", "true", "1":
			*o.ptr = true
		case "off", "false", "0":
			*o.ptr = false
		default:
			env.Log.Errorf(`FATAL: parameter "%s" requires a Boolean value`, o.name)
			return &sim.ExitError{Status: 1, Reason: "bad " + o.name}
		}
	}
	return nil
}

// pgState is the running database.
type pgState struct {
	conf      *pgConfig
	walQueue  int64
	committed int64
}

// startPostmaster boots the database.
func startPostmaster(env *sim.Env, c *pgConfig) (*pgState, error) {
	if !env.FS.IsDir(c.dataDirectory) {
		env.Log.Fatalf(`FATAL: could not open directory: No such file or directory`)
		return nil, &sim.ExitError{Status: 1, Reason: "data directory missing"}
	}
	if _, err := env.FS.ReadFile(c.hbaFile); err != nil {
		env.Log.Fatalf(`FATAL: could not load pg_hba.conf`)
		return nil, &sim.ExitError{Status: 1, Reason: "hba file missing"}
	}
	// listen_addresses: '*' or a valid address; anything else aborts
	// without naming the parameter.
	if c.listenAddresses != "*" {
		if !validAddr(c.listenAddresses) {
			env.Log.Fatalf(`FATAL: could not create any TCP/IP sockets`)
			return nil, &sim.ExitError{Status: 1, Reason: "bad listen address"}
		}
	}
	if err := env.Net.Bind("tcp", int(c.port), "pgdb"); err != nil {
		env.Log.Fatalf(`FATAL: could not create any TCP/IP sockets`)
		return nil, &sim.ExitError{Status: 1, Reason: "bind failed"}
	}

	// wal_level: unknown values silently downgrade to minimal.
	if strings.EqualFold(c.walLevel, "minimal") {
		c.walLevel = "minimal"
	} else if strings.EqualFold(c.walLevel, "archive") {
		c.walLevel = "archive"
	} else if strings.EqualFold(c.walLevel, "hot_standby") {
		c.walLevel = "hot_standby"
	} else {
		c.walLevel = "minimal"
	}
	if strings.EqualFold(c.logMinMessages, "debug") {
		c.logMinMessages = "debug"
	} else if strings.EqualFold(c.logMinMessages, "info") {
		c.logMinMessages = "info"
	} else if strings.EqualFold(c.logMinMessages, "warning") {
		c.logMinMessages = "warning"
	} else if strings.EqualFold(c.logMinMessages, "error") {
		c.logMinMessages = "error"
	} else {
		c.logMinMessages = "warning"
	}
	if strings.EqualFold(c.clientEncoding, "utf8") {
		c.clientEncoding = "utf8"
	} else if strings.EqualFold(c.clientEncoding, "latin1") {
		c.clientEncoding = "latin1"
	} else if strings.EqualFold(c.clientEncoding, "sql_ascii") {
		c.clientEncoding = "sql_ascii"
	} else {
		env.Log.Errorf(`FATAL: invalid value for parameter "client_encoding": "%s"`, c.clientEncoding)
		return nil, &sim.ExitError{Status: 1, Reason: "bad client_encoding"}
	}

	allocPool(c.sharedBuffers * 8192) // pages of 8 KB
	allocPool(c.workMem * 1024)       // configured in KB
	allocPool(c.maintenanceMem * 1024)
	allocPool(c.tempBuffers * 8192)
	allocPool(c.walBuffers * 8192)

	if c.loggingCollector {
		if !env.FS.IsDir(c.logDirectory) {
			_ = env.FS.MkdirAll(c.logDirectory)
		}
	}
	if c.archiveMode {
		// Archiving options only matter with archive_mode on.
		runCommand(c.archiveCommand)
		sleepSeconds(c.archiveTimeout)
	}
	if c.autovacuum {
		sleepSeconds(c.autovacuumNaptime * 60)
		sleepMillis(c.vacuumCostDelay)
	}
	sleepMillis(c.deadlockTimeout)
	sleepMillis(c.statementTimeout)
	sleepSeconds(c.checkpointTimeout)
	_ = env.FS.WriteFile(c.externalPidFile, []byte("1"), 6)
	return &pgState{conf: c}, nil
}

// recordTransactionCommit is the Figure 3(e) pattern: commit_siblings and
// commit_delay take effect only when fsync is enabled.
func (st *pgState) recordTransactionCommit() {
	if st.conf.fsync {
		if minimumActiveBackends(st.conf.commitSiblings + 1) {
			sleepMicros(st.conf.commitDelay)
		}
	}
	if st.conf.synchronousCommit {
		st.walQueue = 0
	} else {
		st.walQueue++
	}
	st.committed++
}

func minimumActiveBackends(n int64) bool { return n > 0 }

func validAddr(s string) bool {
	if s == "localhost" {
		return true
	}
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return false
		}
	}
	return true
}

func runCommand(cmd string) bool { return cmd != "" }

// --- runtime helpers ---

func allocPool(n int64) {
	if n < 0 {
		return
	}
}

func sleepSeconds(n int64) {
	if n <= 0 {
		return
	}
}

func sleepMillis(n int64) {
	if n <= 0 {
		return
	}
}

func sleepMicros(n int64) {
	if n <= 0 {
		return
	}
}
