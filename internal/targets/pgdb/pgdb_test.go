package pgdb

import (
	"testing"

	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/inject"
	"spex/internal/sim"
	"spex/internal/spex"
)

func TestDefaultConfigBoots(t *testing.T) {
	s := New()
	env := sim.NewEnv()
	s.SetupEnv(env)
	cfg, err := conffile.Parse(s.DefaultConfig(), s.Syntax())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Start(env, cfg)
	if err != nil {
		t.Fatalf("default config failed to boot: %v\nlog:\n%s", err, env.Log.Dump())
	}
	defer inst.Stop()
	for _, ft := range s.Tests() {
		if err := sim.RunTest(ft, env, inst); err != nil {
			t.Errorf("test %s failed on defaults: %v", ft.Name, err)
		}
	}
}

func TestFigure3eDependency(t *testing.T) {
	res, err := spex.InferSystem(New())
	if err != nil {
		t.Fatal(err)
	}
	// (fsync, true, =) -> commit_siblings, the paper's Figure 3(e).
	found := false
	for _, c := range res.Set.ByParam("commit_siblings") {
		if c.Kind == constraint.KindControlDep && c.Peer == "fsync" {
			found = true
		}
	}
	if !found {
		t.Error("Figure 3e control dependency (fsync -> commit_siblings) not inferred")
	}
	deps := res.Set.ByKind(constraint.KindControlDep)
	if len(deps) < 5 {
		t.Errorf("control dependencies = %d, want >= 5 (archive/autovacuum/logging groups)", len(deps))
	}
}

func TestDataStructureValidationLimitsVulnerabilities(t *testing.T) {
	res, err := spex.InferSystem(New())
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := conffile.Parse(New().DefaultConfig(), conffile.SyntaxEquals)
	if err != nil {
		t.Fatal(err)
	}
	ms := confgen.NewRegistry().Generate(res.Set, tmpl)
	rep, err := inject.Run(New(), ms, inject.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	counts := rep.CountByReaction()
	t.Logf("campaign reactions: %v (total %d)", counts, len(rep.Outcomes))
	// §5.2: the GUC tables enforce uniform range/type checking with
	// pinpointing messages, so pgdb has no crashes and silent ignorance
	// dominates its vulnerabilities (Table 5 PostgreSQL row: 35 of 49).
	if counts[inject.ReactionCrash] != 0 {
		t.Errorf("crashes = %d, want 0 (GUC validation prevents them)", counts[inject.ReactionCrash])
	}
	if counts[inject.ReactionSilentIgnorance] < 5 {
		t.Errorf("silent ignorance = %d, want >= 5 (dominant category)", counts[inject.ReactionSilentIgnorance])
	}
	if counts[inject.ReactionGood] < 10 {
		t.Errorf("good reactions = %d, want >= 10 (pinpointing GUC rejections)", counts[inject.ReactionGood])
	}
	vulns := len(rep.Vulnerabilities())
	if vulns >= counts[inject.ReactionGood]+counts[inject.ReactionTolerated] {
		t.Errorf("vulnerabilities (%d) should not dominate for pgdb", vulns)
	}
}
