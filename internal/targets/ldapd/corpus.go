// Package ldapd is an OpenLDAP-like directory server simulation. It uses
// hybrid mapping (Table 1): a structure-based table for global options plus
// a comparison-based parser for slapd.conf directives. The corpus
// reproduces the paper's OpenLDAP specifics: the listener-threads crash at
// the hard-coded maximum of 16 (Figure 2), the undocumented index_intlen
// clamp to [4,255] (Figure 3d), the sockbuf_max_incoming functional
// failure whose logs show only "conn=... closed" (Figure 7c), and — key to
// Table 12 — a shared ConfigArgs scratch variable through which several
// directives are parsed. The scratch aliases their data flows, so SPEX
// attributes some constraints to the wrong parameter: OpenLDAP has the
// paper's lowest inference accuracy, and this corpus reproduces why.
package ldapd

import (
	"strings"

	"spex/internal/sim"
)

// ldapConfig is the server configuration.
type ldapConfig struct {
	suffix    string
	rootdn    string
	rootpw    string
	directory string
	pidfile   string
	argsfile  string
	loglevel  int64
	sizelimit int64
	timelimit int64

	listenerThreads int64
	toolThreads     int64
	indexIntlen     int64
	sockbufMax      int64
	connMaxPending  int64
	passwordHash    string
	ldapPort        int64
}

var lcfg = &ldapConfig{}

// configArgs is the shared parsing scratch (OpenLDAP's ConfigArgs): the
// source of the aliasing inaccuracy.
type configArgs struct {
	valueInt int64
}

var ca = &configArgs{}

// slapdOption is the structure-mapped global option table.
type slapdOption struct {
	name string
	sptr *string
	iptr *int64
	def  string
}

var slapdOptions = []slapdOption{
	{"suffix", &lcfg.suffix, nil, "dc=example,dc=com"},
	{"rootdn", &lcfg.rootdn, nil, "cn=admin,dc=example,dc=com"},
	{"rootpw", &lcfg.rootpw, nil, "secret"},
	{"directory", &lcfg.directory, nil, "/var/lib/ldapd"},
	{"pidfile", &lcfg.pidfile, nil, "/var/run/ldapd.pid"},
	{"argsfile", &lcfg.argsfile, nil, "/var/run/ldapd.args"},
	{"loglevel", nil, &lcfg.loglevel, "256"},
	{"sizelimit", nil, &lcfg.sizelimit, "500"},
	{"timelimit", nil, &lcfg.timelimit, "3600"},
}

func atoi(s string) int64 {
	var n int64
	neg := false
	i := 0
	if len(s) > 0 && s[0] == '-' {
		neg = true
		i = 1
	}
	for ; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		return -n
	}
	return n
}

// applyGlobals loads the structure-mapped options.
func applyGlobals(vals map[string]string) {
	for i := range slapdOptions {
		o := &slapdOptions[i]
		raw, ok := vals[o.name]
		if !ok {
			raw = o.def
		}
		if o.sptr != nil {
			*o.sptr = raw
		} else {
			*o.iptr = atoi(raw)
		}
	}
}

// parseSlapdConfig handles the comparison-mapped directives. Several of
// them parse through the shared ca.valueInt scratch (config_generic in
// bconfig.c), aliasing their data-flow paths.
func parseSlapdConfig(key string, value string) {
	if key == "index_intlen" {
		// Figure 3(d): silently clamped to [4, 255], undocumented.
		ilen := atoi(value)
		if ilen < 4 {
			ilen = 4
		} else if ilen > 255 {
			ilen = 255
		}
		lcfg.indexIntlen = ilen
	} else if key == "tool-threads" {
		// Parsed through the shared ConfigArgs scratch; so is
		// conn_max_pending below. SPEX performs no pointer-alias
		// analysis, so the two flows merge and each parameter inherits
		// the other's clamp — the paper's OpenLDAP inaccuracy.
		ca.valueInt = atoi(value)
		if ca.valueInt > 4 {
			ca.valueInt = 4
		}
		lcfg.toolThreads = ca.valueInt
	} else if key == "conn_max_pending" {
		ca.valueInt = atoi(value)
		if ca.valueInt < 1 {
			ca.valueInt = 100
		}
		lcfg.connMaxPending = ca.valueInt
	} else if key == "listener-threads" {
		lcfg.listenerThreads = atoi(value)
	} else if key == "sockbuf_max_incoming" {
		lcfg.sockbufMax = atoi(value)
		if lcfg.sockbufMax > 4194304 {
			lcfg.sockbufMax = 4194304
		}
	} else if key == "password-hash" {
		lcfg.passwordHash = value
	} else if key == "port" {
		lcfg.ldapPort = atoi(value)
	}
}

// slapdState is the running directory server.
type slapdState struct {
	conf    *ldapConfig
	entries map[string]string
}

// startSlapd boots the server.
func startSlapd(env *sim.Env, c *ldapConfig) (*slapdState, error) {
	if !env.FS.IsDir(c.directory) {
		env.Log.Fatalf("could not open database directory")
		return nil, &sim.ExitError{Status: 1, Reason: "database directory missing"}
	}
	if !strings.Contains(c.suffix, "=") {
		env.Log.Fatalf("invalid DN syntax in configuration")
		return nil, &sim.ExitError{Status: 1, Reason: "bad suffix"}
	}
	if !strings.HasSuffix(c.rootdn, c.suffix) {
		// The rootdn must live under the suffix; slapd starts anyway
		// and binds simply fail later (functional failure, Figure 7c).
		_ = c.rootdn
	}
	// Figure 2: a hard-coded maximum of 16 listener threads, never
	// validated. Larger values crash with "segmentation fault".
	startListeners(c.listenerThreads)

	if c.passwordHash == "{SSHA}" {
		c.passwordHash = "{SSHA}"
	} else if c.passwordHash == "{MD5}" {
		c.passwordHash = "{MD5}"
	} else if c.passwordHash == "{CLEARTEXT}" {
		c.passwordHash = "{CLEARTEXT}"
	} else {
		c.passwordHash = "{SSHA}" // silently overruled
	}
	if err := env.Net.Bind("tcp", int(c.ldapPort), "ldapd"); err != nil {
		env.Log.Fatalf("daemon: bind(%d) failed errno=98", c.ldapPort)
		return nil, &sim.ExitError{Status: 1, Reason: "bind failed"}
	}
	_ = env.FS.WriteFile(c.pidfile, []byte("1"), 6)
	_ = env.FS.WriteFile(c.argsfile, []byte("slapd"), 6)
	sleepSeconds(c.timelimit)

	st := &slapdState{conf: c, entries: map[string]string{}}
	st.entries[c.rootdn] = c.rootpw
	st.entries["cn=test,"+c.suffix] = "test-entry"
	return st, nil
}

// startListeners spins up the listener pool: 16 hard-coded slots.
func startListeners(n int64) {
	var listeners [16]int64
	for i := int64(0); i < n; i++ {
		listeners[i] = i // segmentation fault past slot 16 (Figure 2)
	}
}

// search serves one LDAP search request of the given wire size. Requests
// larger than sockbuf_max_incoming are dropped with only connection-level
// log lines — the Figure 7(c) reaction.
func (st *slapdState) search(env *sim.Env, dn string, wireSize int64) (string, bool) {
	if wireSize > st.conf.sockbufMax {
		env.Log.Infof("conn=1000 fd=12 ACCEPT from IP=127.0.0.1:39062")
		env.Log.Infof("conn=1000 closed (connection lost)")
		return "", false
	}
	if st.conf.sizelimit < 1 {
		return "", false
	}
	v, ok := st.entries[dn]
	return v, ok
}

// bind authenticates a DN.
func (st *slapdState) bind(dn, pw string) bool {
	stored, ok := st.entries[dn]
	if !ok {
		return false
	}
	return stored == pw
}

func sleepSeconds(n int64) {
	if n <= 0 {
		return
	}
}
