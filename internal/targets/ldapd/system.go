package ldapd

import (
	_ "embed"
	"fmt"
	"strconv"
	"sync"

	"spex/internal/conffile"
	"spex/internal/constraint"
	"spex/internal/sim"
)

//go:embed corpus.go
var corpusSource string

// System is the ldapd target.
type System struct{}

// New returns the ldapd target system.
func New() *System { return &System{} }

func (s *System) Name() string        { return "ldapd" }
func (s *System) Description() string { return "OpenLDAP-like directory server (hybrid mapping)" }

func (s *System) Syntax() conffile.Syntax { return conffile.SyntaxSpace }

func (s *System) Sources() map[string]string {
	return map[string]string{"corpus.go": corpusSource}
}

// Annotations: hybrid — a structure block plus a parser block (OpenLDAP
// needed 4 lines in Table 4).
func (s *System) Annotations() string {
	return `{ @STRUCT = slapdOptions @PAR = [slapdOption, 1] @VAR = [slapdOption, 2] }
{ @STRUCT = slapdOptions @PAR = [slapdOption, 1] @VAR = [slapdOption, 3] }
{ @PARSER = parseSlapdConfig @PAR = $key @VAR = $value }`
}

func (s *System) DefaultConfig() string {
	return `# ldapd slapd.conf
suffix dc=example,dc=com
rootdn cn=admin,dc=example,dc=com
rootpw secret
directory /var/lib/ldapd
pidfile /var/run/ldapd.pid
argsfile /var/run/ldapd.args
loglevel 256
sizelimit 500
timelimit 3600
listener-threads 1
tool-threads 1
index_intlen 4
sockbuf_max_incoming 262143
conn_max_pending 100
password-hash {SSHA}
port 3890
`
}

func (s *System) SetupEnv(env *sim.Env) {
	_ = env.FS.MkdirAll("/var/lib/ldapd")
}

type instance struct {
	st        *slapdState
	effective map[string]string
	env       *sim.Env
}

func (i *instance) Effective(param string) (string, bool) {
	v, ok := i.effective[param]
	return v, ok
}

func (i *instance) Stop() { i.env.Net.ReleaseOwner("ldapd") }

// bootMu serializes the config-parse phase: the corpus models OpenLDAP's
// real global config (including the shared ConfigArgs scratch), so
// concurrent boots must not interleave until the values are copied out.
var bootMu sync.Mutex

func (s *System) Start(env *sim.Env, cfg *conffile.File) (sim.Instance, error) {
	c := loadConfig(cfg)
	st, err := startSlapd(env, c)
	if err != nil {
		return nil, err
	}
	return &instance{st: st, effective: snapshot(c), env: env}, nil
}

// loadConfig parses slapd.conf through the global config and scratch
// under bootMu and hands back a private copy; the boot and the
// functional tests operate on the copy.
func loadConfig(cfg *conffile.File) *ldapConfig {
	bootMu.Lock()
	defer bootMu.Unlock()
	*lcfg = ldapConfig{}
	*ca = configArgs{}
	applyGlobals(cfg.Map())
	for _, ln := range cfg.Lines {
		if ln.Kind == conffile.LineDirective {
			parseSlapdConfig(ln.Key, ln.Value)
		}
	}
	c := *lcfg
	return &c
}

func snapshot(c *ldapConfig) map[string]string {
	m := map[string]string{}
	ib := func(n string, v int64) { m[n] = strconv.FormatInt(v, 10) }
	sb := func(n, v string) { m[n] = v }
	sb("suffix", c.suffix)
	sb("rootdn", c.rootdn)
	sb("rootpw", c.rootpw)
	sb("directory", c.directory)
	sb("pidfile", c.pidfile)
	sb("argsfile", c.argsfile)
	ib("loglevel", c.loglevel)
	ib("sizelimit", c.sizelimit)
	ib("timelimit", c.timelimit)
	ib("listener-threads", c.listenerThreads)
	ib("tool-threads", c.toolThreads)
	ib("index_intlen", c.indexIntlen)
	ib("sockbuf_max_incoming", c.sockbufMax)
	ib("conn_max_pending", c.connMaxPending)
	sb("password-hash", c.passwordHash)
	ib("port", c.ldapPort)
	return m
}

func (s *System) Tests() []sim.FuncTest {
	return []sim.FuncTest{
		{
			Name: "bind-root", Weight: 1,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if !i.st.bind(i.st.conf.rootdn, i.st.conf.rootpw) {
					return fmt.Errorf("root bind failed")
				}
				return nil
			},
		},
		{
			Name: "search-entry", Weight: 3,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if _, ok := i.st.search(env, "cn=test,"+i.st.conf.suffix, 4096); !ok {
					return fmt.Errorf("can't contact LDAP server (-1)")
				}
				return nil
			},
		},
		{
			Name: "listen", Weight: 2,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if !env.Net.Occupied("tcp", int(i.st.conf.ldapPort)) {
					return fmt.Errorf("slapd is not listening")
				}
				return nil
			},
		},
	}
}

func (s *System) Manual() map[string]sim.ManualEntry {
	doc := func(prose string, kinds ...constraint.Kind) sim.ManualEntry {
		return sim.ManualEntry{Prose: prose, Documented: kinds}
	}
	return map[string]sim.ManualEntry{
		"suffix":    doc("DN suffix of this database.", constraint.KindBasicType),
		"rootdn":    doc("DN of the administrator.", constraint.KindBasicType),
		"directory": doc("Database directory.", constraint.KindBasicType, constraint.KindSemanticType),
		"sizelimit": doc("Maximum entries returned per search.", constraint.KindBasicType),
		"port":      doc("LDAP listener port.", constraint.KindBasicType, constraint.KindSemanticType),
		// listener-threads' hard maximum of 16 and index_intlen's
		// [4,255] clamp are deliberately undocumented (Figures 2, 3d).
		"listener-threads": doc("Number of listener threads.", constraint.KindBasicType),
		"index_intlen":     doc("Key length for integer indices.", constraint.KindBasicType),
	}
}

func (s *System) GroundTruth() *constraint.Set {
	gt := constraint.NewSet("ldapd")
	b := func(p string, t constraint.BasicType) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindBasicType, Param: p, Basic: t})
	}
	for _, p := range []string{
		"loglevel", "sizelimit", "timelimit", "listener-threads",
		"tool-threads", "index_intlen", "sockbuf_max_incoming",
		"conn_max_pending", "port",
	} {
		b(p, constraint.BasicInt64)
	}
	for _, p := range []string{"suffix", "rootdn", "rootpw", "directory", "pidfile", "argsfile", "password-hash"} {
		b(p, constraint.BasicString)
	}
	sem := func(p string, t constraint.SemanticType) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindSemanticType, Param: p, Semantic: t})
	}
	sem("directory", constraint.SemDirectory)
	sem("pidfile", constraint.SemFile)
	sem("argsfile", constraint.SemFile)
	sem("port", constraint.SemPort)
	gt.Add(&constraint.Constraint{Kind: constraint.KindSemanticType, Param: "timelimit",
		Semantic: constraint.SemTimeout, Unit: constraint.UnitSecond})

	rng := func(p string, min, max int64, hasMin, hasMax bool) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindRange, Param: p,
			Intervals: []constraint.Interval{{Min: min, Max: max, HasMin: hasMin, HasMax: hasMax, Valid: true}}})
	}
	rng("index_intlen", 4, 255, true, true)
	rng("sockbuf_max_incoming", 0, 4194304, false, true)
	rng("conn_max_pending", 1, 0, true, false)
	rng("tool-threads", 0, 4, false, true)
	rng("sizelimit", 1, 0, true, false)
	gt.Add(&constraint.Constraint{Kind: constraint.KindRange, Param: "password-hash",
		Enum: []constraint.EnumValue{
			{Value: "{SSHA}", Valid: true}, {Value: "{MD5}", Valid: true}, {Value: "{CLEARTEXT}", Valid: true}}})
	return gt
}

var _ sim.System = (*System)(nil)
