package ldapd

import (
	"testing"

	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/inject"
	"spex/internal/sim"
	"spex/internal/spex"
)

func TestDefaultConfigBoots(t *testing.T) {
	s := New()
	env := sim.NewEnv()
	s.SetupEnv(env)
	cfg, err := conffile.Parse(s.DefaultConfig(), s.Syntax())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Start(env, cfg)
	if err != nil {
		t.Fatalf("default config failed to boot: %v\nlog:\n%s", err, env.Log.Dump())
	}
	defer inst.Stop()
	for _, ft := range s.Tests() {
		if err := sim.RunTest(ft, env, inst); err != nil {
			t.Errorf("test %s failed on defaults: %v", ft.Name, err)
		}
	}
}

func TestFigure2ListenerThreadsCrash(t *testing.T) {
	// listener-threads = 32: crash after startup with only
	// "segmentation fault" — the paper's Figure 2.
	s := New()
	env := sim.NewEnv()
	s.SetupEnv(env)
	cfg, err := conffile.Parse(s.DefaultConfig(), s.Syntax())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Set("listener-threads", "32")
	out := sim.MonitorStart(s, env, cfg, 0)
	_ = out
	// MonitorStart with a zero deadline would classify everything as a
	// hang; call with the campaign default instead.
	out = sim.MonitorStart(s, env, cfg, inject.DefaultOptions().HangDeadline)
	if out.Kind != sim.StartCrash {
		t.Fatalf("listener-threads=32 -> %s, want crash", out.Kind)
	}
}

func TestHybridMappingAndFigure3d(t *testing.T) {
	res, err := spex.InferSystem(New())
	if err != nil {
		t.Fatal(err)
	}
	if res.Convention != "hybrid" {
		t.Errorf("convention = %q, want hybrid", res.Convention)
	}
	// Figure 3(d): index_intlen valid range [4, 255].
	found := false
	for _, c := range res.Set.ByParam("index_intlen") {
		if c.Kind != constraint.KindRange {
			continue
		}
		for _, iv := range c.ValidIntervals() {
			if iv.HasMin && iv.Min == 4 && iv.HasMax && iv.Max == 255 {
				found = true
			}
		}
	}
	if !found {
		t.Error("index_intlen [4,255] range (Figure 3d) not inferred")
	}
}

func TestAliasingLowersAccuracy(t *testing.T) {
	res, err := spex.InferSystem(New())
	if err != nil {
		t.Fatal(err)
	}
	acc := spex.Score(res.Set, New().GroundTruth())
	r := acc[constraint.KindRange]
	ratio := r.Ratio()
	if ratio < 0 {
		t.Fatal("no range constraints inferred at all")
	}
	// The shared ConfigArgs scratch aliases index_intlen and
	// tool-threads: their clamps cross-contaminate, so range accuracy
	// must drop below perfect but stay usable — the paper's OpenLDAP
	// row is 73.1%, the lowest of all systems.
	if ratio >= 0.999 {
		t.Errorf("range accuracy = %.3f; aliasing should produce wrong attributions (paper: 73%%)", ratio)
	}
	if ratio < 0.4 {
		t.Errorf("range accuracy = %.3f; too low — the corpus should remain mostly inferable", ratio)
	}
}

func TestCampaignShape(t *testing.T) {
	res, err := spex.InferSystem(New())
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := conffile.Parse(New().DefaultConfig(), conffile.SyntaxSpace)
	if err != nil {
		t.Fatal(err)
	}
	ms := confgen.NewRegistry().Generate(res.Set, tmpl)
	rep, err := inject.Run(New(), ms, inject.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	counts := rep.CountByReaction()
	t.Logf("campaign reactions: %v (total %d)", counts, len(rep.Outcomes))
	if counts[inject.ReactionFuncFailure] == 0 {
		t.Error("no functional failures (expected: sockbuf_max_incoming, Figure 7c)")
	}
	if counts[inject.ReactionSilentViolation] == 0 {
		t.Error("no silent violations (expected: index_intlen clamp)")
	}
}
