package httpd

import (
	_ "embed"
	"fmt"
	"strconv"
	"sync"

	"spex/internal/conffile"
	"spex/internal/constraint"
	"spex/internal/sim"
)

//go:embed corpus.go
var corpusSource string

// System is the httpd target.
type System struct{}

// New returns the httpd target system.
func New() *System { return &System{} }

func (s *System) Name() string { return "httpd" }
func (s *System) Description() string {
	return "Apache-like web server (structure mapping via handlers)"
}

func (s *System) Syntax() conffile.Syntax { return conffile.SyntaxSpace }

func (s *System) Sources() map[string]string {
	return map[string]string{"corpus.go": corpusSource}
}

// Annotations: the command table maps names to handler functions whose
// "arg" parameter carries the value (Figure 4b; Apache needed 4 lines in
// Table 4).
func (s *System) Annotations() string {
	return `# Apache-style command table
{ @STRUCT = coreCmds
  @PAR = [command, 1]
  @VAR = ([command, 2], $arg) }`
}

func (s *System) DefaultConfig() string {
	return `# httpd server configuration
Listen 8080
ServerName www.example.com
DocumentRoot /srv/www/htdocs
ErrorLog /var/log/httpd/error_log
CustomLog /var/log/httpd/access_log
PidFile /var/run/httpd.pid
ServerAdmin webmaster@example.com
User www-data
Group www-data
Timeout 60
KeepAliveTimeout 5
MaxKeepAliveRequests 100
MaxMemFree 2048
ThreadLimit 64
ThreadsPerChild 25
MaxRequestWorkers 400
MinSpareThreads 25
MaxSpareThreads 75
ListenBacklog 511
KeepAlive on
HostnameLookups off
ServerTokens full
LogLevel warn
`
}

func (s *System) SetupEnv(env *sim.Env) {
	_ = env.FS.MkdirAll("/srv/www/htdocs")
	_ = env.FS.WriteFile("/srv/www/htdocs/index.html", []byte("<html>it works</html>"), 6)
	_ = env.FS.MkdirAll("/var/log/httpd")
}

type instance struct {
	st        *httpdState
	effective map[string]string
	env       *sim.Env
}

func (i *instance) Effective(param string) (string, bool) {
	v, ok := i.effective[param]
	return v, ok
}

func (i *instance) Stop() { i.env.Net.ReleaseOwner("httpd") }

// bootMu serializes the directive-handler phase: the corpus models
// Apache's real global core config, so concurrent boots must not
// interleave until the parsed values are copied out of the global.
var bootMu sync.Mutex

func (s *System) Start(env *sim.Env, cfg *conffile.File) (sim.Instance, error) {
	c := loadConfig(env, cfg)
	st, err := startHTTPD(env, c)
	if err != nil {
		return nil, err
	}
	return &instance{st: st, effective: snapshot(c), env: env}, nil
}

// loadConfig runs the directive handlers against the global core config
// under bootMu and hands back a private copy; the boot and the
// functional tests operate on the copy.
func loadConfig(env *sim.Env, cfg *conffile.File) *coreConfig {
	byName := map[string]func(*sim.Env, string){}
	for _, c := range coreCmds {
		byName[c.name] = c.handler
	}
	bootMu.Lock()
	defer bootMu.Unlock()
	*acfg = coreConfig{}
	for _, ln := range cfg.Lines {
		if ln.Kind != conffile.LineDirective {
			continue
		}
		if h, ok := byName[ln.Key]; ok {
			h(env, ln.Value)
		}
	}
	c := *acfg
	return &c
}

func snapshot(c *coreConfig) map[string]string {
	m := map[string]string{}
	ib := func(n string, v int64) { m[n] = strconv.FormatInt(v, 10) }
	sb := func(n, v string) { m[n] = v }
	ib("Listen", c.listenPort)
	sb("ServerName", c.serverName)
	sb("DocumentRoot", c.documentRoot)
	sb("ErrorLog", c.errorLog)
	sb("CustomLog", c.customLog)
	sb("PidFile", c.pidFile)
	sb("ServerAdmin", c.serverAdmin)
	sb("User", c.runUser)
	sb("Group", c.runGroup)
	ib("Timeout", c.timeoutSec)
	ib("KeepAliveTimeout", c.keepAliveSec)
	ib("MaxKeepAliveRequests", c.maxKeepAliveReqs)
	ib("MaxMemFree", c.maxMemFree)
	ib("ThreadLimit", c.threadLimit)
	ib("ThreadsPerChild", c.threadsPerChild)
	ib("MaxRequestWorkers", c.maxWorkers)
	ib("MinSpareThreads", c.minSpareThreads)
	ib("MaxSpareThreads", c.maxSpareThreads)
	ib("ListenBacklog", c.listenBacklog)
	if c.keepAlive {
		sb("KeepAlive", "on")
	} else {
		sb("KeepAlive", "off")
	}
	sb("HostnameLookups", c.hostnameLookups)
	sb("ServerTokens", c.serverTokens)
	sb("LogLevel", c.logLevel)
	return m
}

func (s *System) Tests() []sim.FuncTest {
	return []sim.FuncTest{
		{
			Name: "listen", Weight: 1,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if !env.Net.Occupied("tcp", int(i.st.conf.listenPort)) {
					return fmt.Errorf("server is not listening")
				}
				return nil
			},
		},
		{
			Name: "get-index", Weight: 3,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if _, ok := i.st.serveFile(env, "index.html"); !ok {
					return fmt.Errorf("GET /index.html failed")
				}
				return nil
			},
		},
		{
			Name: "access-log", Weight: 2,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				i.st.serveFile(env, "index.html")
				if !env.FS.Exists(i.st.conf.customLog) {
					return fmt.Errorf("access log was not created")
				}
				return nil
			},
		},
		{
			Name: "worker-pool", Weight: 4,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if i.st.conf.threadsPerChild < 1 {
					return fmt.Errorf("no worker threads configured")
				}
				return nil
			},
		},
	}
}

func (s *System) Manual() map[string]sim.ManualEntry {
	doc := func(prose string, kinds ...constraint.Kind) sim.ManualEntry {
		return sim.ManualEntry{Prose: prose, Documented: kinds}
	}
	return map[string]sim.ManualEntry{
		"Listen":       doc("Port the server listens on.", constraint.KindBasicType, constraint.KindSemanticType),
		"DocumentRoot": doc("Directory out of which documents are served.", constraint.KindBasicType, constraint.KindSemanticType),
		"ServerName":   doc("Hostname the server identifies itself with.", constraint.KindBasicType, constraint.KindSemanticType),
		"Timeout":      doc("Seconds before a request times out.", constraint.KindBasicType, constraint.KindSemanticType),
		"KeepAlive":    doc("On or Off.", constraint.KindBasicType, constraint.KindRange),
		"LogLevel":     doc("debug, info, warn or error.", constraint.KindBasicType, constraint.KindRange),
		"User":         doc("User to run as.", constraint.KindBasicType, constraint.KindSemanticType),
		"Group":        doc("Group to run as.", constraint.KindBasicType, constraint.KindSemanticType),
		// MaxMemFree's KB unit and ThreadLimit's hard bound are
		// deliberately undocumented (Figures 6b, 7b).
	}
}

func (s *System) GroundTruth() *constraint.Set {
	gt := constraint.NewSet("httpd")
	b := func(p string, t constraint.BasicType) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindBasicType, Param: p, Basic: t})
	}
	sem := func(p string, t constraint.SemanticType, u constraint.Unit) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindSemanticType, Param: p, Semantic: t, Unit: u})
	}
	for _, p := range []string{
		"Listen", "Timeout", "KeepAliveTimeout", "MaxKeepAliveRequests",
		"MaxMemFree", "ThreadLimit", "ThreadsPerChild", "MaxRequestWorkers",
		"MinSpareThreads", "MaxSpareThreads", "ListenBacklog",
	} {
		b(p, constraint.BasicInt64)
	}
	for _, p := range []string{
		"ServerName", "DocumentRoot", "ErrorLog", "CustomLog", "PidFile",
		"ServerAdmin", "User", "Group", "HostnameLookups", "ServerTokens", "LogLevel",
	} {
		b(p, constraint.BasicString)
	}
	b("KeepAlive", constraint.BasicBool)

	sem("Listen", constraint.SemPort, constraint.UnitNone)
	sem("ServerName", constraint.SemHost, constraint.UnitNone)
	sem("DocumentRoot", constraint.SemDirectory, constraint.UnitNone)
	sem("ErrorLog", constraint.SemFile, constraint.UnitNone)
	sem("CustomLog", constraint.SemFile, constraint.UnitNone)
	sem("PidFile", constraint.SemFile, constraint.UnitNone)
	sem("User", constraint.SemUser, constraint.UnitNone)
	sem("Group", constraint.SemGroup, constraint.UnitNone)
	sem("Timeout", constraint.SemTimeout, constraint.UnitSecond)
	sem("KeepAliveTimeout", constraint.SemTimeout, constraint.UnitSecond)
	sem("MaxMemFree", constraint.SemSize, constraint.UnitKB)
	sem("ThreadsPerChild", constraint.SemCount, constraint.UnitNone)

	rng := func(p string, min, max int64, hasMin, hasMax bool) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindRange, Param: p,
			Intervals: []constraint.Interval{{Min: min, Max: max, HasMin: hasMin, HasMax: hasMax, Valid: true}}})
	}
	rng("ThreadLimit", 0, 8192, false, true)
	rng("ThreadsPerChild", 1, 0, true, false)
	rng("MaxKeepAliveRequests", 0, 0, true, false)
	enum := func(p string, vals ...string) {
		evs := make([]constraint.EnumValue, len(vals))
		for i, v := range vals {
			evs[i] = constraint.EnumValue{Value: v, Valid: true}
		}
		gt.Add(&constraint.Constraint{Kind: constraint.KindRange, Param: p, Enum: evs})
	}
	enum("KeepAlive", "on", "off")
	enum("HostnameLookups", "on", "off", "double")
	enum("ServerTokens", "full", "prod", "minimal")
	enum("LogLevel", "debug", "info", "warn", "error")

	gt.Add(&constraint.Constraint{Kind: constraint.KindValueRel,
		Param: "MinSpareThreads", Rel: constraint.OpLE, Peer: "MaxSpareThreads"})
	gt.Add(&constraint.Constraint{Kind: constraint.KindControlDep,
		Param: "KeepAliveTimeout", Peer: "KeepAlive", Cond: constraint.OpEQ, Value: "true"})
	return gt
}

var _ sim.System = (*System)(nil)
