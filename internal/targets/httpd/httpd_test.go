package httpd

import (
	"strings"
	"testing"

	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/designcheck"
	"spex/internal/inject"
	"spex/internal/sim"
	"spex/internal/spex"
)

func TestDefaultConfigBoots(t *testing.T) {
	s := New()
	env := sim.NewEnv()
	s.SetupEnv(env)
	cfg, err := conffile.Parse(s.DefaultConfig(), s.Syntax())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Start(env, cfg)
	if err != nil {
		t.Fatalf("default config failed to boot: %v\nlog:\n%s", err, env.Log.Dump())
	}
	defer inst.Stop()
	for _, ft := range s.Tests() {
		if err := sim.RunTest(ft, env, inst); err != nil {
			t.Errorf("test %s failed on defaults: %v", ft.Name, err)
		}
	}
}

func TestHandlerMappingAndUnits(t *testing.T) {
	res, err := spex.InferSystem(New())
	if err != nil {
		t.Fatal(err)
	}
	if res.Params != 23 {
		t.Errorf("mapped %d params, want 23", res.Params)
	}
	// MaxMemFree: KB unit through the *1024 multiplier (Figure 6b).
	var mmf *constraint.Constraint
	for _, c := range res.Set.ByParam("MaxMemFree") {
		if c.Kind == constraint.KindSemanticType && c.Semantic == constraint.SemSize {
			mmf = c
		}
	}
	if mmf == nil || mmf.Unit != constraint.UnitKB {
		t.Errorf("MaxMemFree unit constraint = %v, want SIZE in KB", mmf)
	}
	audit := designcheck.Run(res)
	if audit.UnsafeTransform < 8 {
		t.Errorf("unsafe transform params = %d, want >= 8 (handler atoi)", audit.UnsafeTransform)
	}
	if audit.SilentOverruling < 1 {
		t.Error("HostnameLookups silent overruling not detected")
	}
}

func TestThreadLimitMisleadingAbort(t *testing.T) {
	// The Figure 7(b) scenario: ThreadLimit = 100000 aborts with the
	// scoreboard message and never names the parameter.
	s := New()
	env := sim.NewEnv()
	s.SetupEnv(env)
	cfg, err := conffile.Parse(s.DefaultConfig(), s.Syntax())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Set("ThreadLimit", "100000")
	_, err = s.Start(env, cfg)
	if err == nil {
		t.Fatal("oversized ThreadLimit should abort startup")
	}
	if !env.Log.Contains("Unable to create access scoreboard") {
		t.Errorf("expected the misleading scoreboard message, got:\n%s", env.Log.Dump())
	}
	if env.Log.Pinpoints("ThreadLimit", "100000", 0) {
		t.Error("the abort message should NOT pinpoint ThreadLimit (that is the vulnerability)")
	}
}

func TestCampaignShape(t *testing.T) {
	res, err := spex.InferSystem(New())
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := conffile.Parse(New().DefaultConfig(), conffile.SyntaxSpace)
	if err != nil {
		t.Fatal(err)
	}
	ms := confgen.NewRegistry().Generate(res.Set, tmpl)
	rep, err := inject.Run(New(), ms, inject.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	counts := rep.CountByReaction()
	t.Logf("campaign reactions: %v (total %d)", counts, len(rep.Outcomes))
	for _, want := range []inject.Reaction{
		inject.ReactionCrash, inject.ReactionEarlyTerm, inject.ReactionSilentViolation,
	} {
		if counts[want] == 0 {
			t.Errorf("no %s outcomes exposed", want)
		}
	}
	// Confirm an error report renders for some vulnerability.
	vulns := rep.Vulnerabilities()
	if len(vulns) == 0 {
		t.Fatal("no vulnerabilities")
	}
	rpt := inject.ErrorReport(vulns[0])
	if !strings.Contains(rpt, "constraint") || !strings.Contains(rpt, "reaction") {
		t.Errorf("malformed error report:\n%s", rpt)
	}
}
