// Package httpd is an Apache-httpd-like web server simulation. Its
// configuration uses structure-based mapping through handler functions
// (Figure 4b: the command_rec table binds directive names to AP_INIT_TAKE1
// setters). Seeded patterns from the paper: MaxMemFree is the KB-unit
// outlier among byte-unit size parameters (Figure 6b), ThreadLimit aborts
// startup with the misleading scoreboard message (Figure 7b), numeric
// directives are parsed with an unsafe atoi (27 parameters in Table 8),
// and HostnameLookups silently overrules unknown values (the one Apache
// silent-overruling parameter).
package httpd

import (
	"strings"

	"spex/internal/sim"
	"spex/internal/vnet"
)

// coreConfig is the server configuration.
type coreConfig struct {
	listenPort       int64
	serverName       string
	documentRoot     string
	errorLog         string
	customLog        string
	pidFile          string
	serverAdmin      string
	runUser          string
	runGroup         string
	timeoutSec       int64
	keepAliveSec     int64
	maxKeepAliveReqs int64
	maxMemFree       int64 // KB: the unit outlier (Figure 6b)
	threadLimit      int64
	threadsPerChild  int64
	maxWorkers       int64
	minSpareThreads  int64
	maxSpareThreads  int64
	listenBacklog    int64
	keepAlive        bool
	hostnameLookups  string
	serverTokens     string
	logLevel         string
}

var acfg = &coreConfig{}

// command binds a directive name to its handler (Figure 4b).
type command struct {
	name    string
	handler func(env *sim.Env, arg string)
}

var coreCmds = []command{
	{"Listen", setListen},
	{"ServerName", setServerName},
	{"DocumentRoot", setDocumentRoot},
	{"ErrorLog", setErrorLog},
	{"CustomLog", setCustomLog},
	{"PidFile", setPidFile},
	{"ServerAdmin", setServerAdmin},
	{"User", setUser},
	{"Group", setGroup},
	{"Timeout", setTimeout},
	{"KeepAliveTimeout", setKeepAliveTimeout},
	{"MaxKeepAliveRequests", setMaxKeepAliveRequests},
	{"MaxMemFree", setMaxMemFree},
	{"ThreadLimit", setThreadLimit},
	{"ThreadsPerChild", setThreadsPerChild},
	{"MaxRequestWorkers", setMaxRequestWorkers},
	{"MinSpareThreads", setMinSpareThreads},
	{"MaxSpareThreads", setMaxSpareThreads},
	{"ListenBacklog", setListenBacklog},
	{"KeepAlive", setKeepAlive},
	{"HostnameLookups", setHostnameLookups},
	{"ServerTokens", setServerTokens},
	{"LogLevel", setLogLevel},
}

// atoi: Apache's legacy numeric parsing ignores trailing garbage and
// errors (Figure 6d).
func atoi(s string) int64 {
	var n int64
	neg := false
	i := 0
	if len(s) > 0 && s[0] == '-' {
		neg = true
		i = 1
	}
	for ; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			break // trailing garbage silently ignored
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		return -n
	}
	return n
}

func setListen(env *sim.Env, arg string)           { acfg.listenPort = atoi(arg) }
func setServerName(env *sim.Env, arg string)       { acfg.serverName = arg }
func setDocumentRoot(env *sim.Env, arg string)     { acfg.documentRoot = arg }
func setErrorLog(env *sim.Env, arg string)         { acfg.errorLog = arg }
func setCustomLog(env *sim.Env, arg string)        { acfg.customLog = arg }
func setPidFile(env *sim.Env, arg string)          { acfg.pidFile = arg }
func setServerAdmin(env *sim.Env, arg string)      { acfg.serverAdmin = arg }
func setUser(env *sim.Env, arg string)             { acfg.runUser = arg }
func setGroup(env *sim.Env, arg string)            { acfg.runGroup = arg }
func setTimeout(env *sim.Env, arg string)          { acfg.timeoutSec = atoi(arg) }
func setKeepAliveTimeout(env *sim.Env, arg string) { acfg.keepAliveSec = atoi(arg) }

func setMaxKeepAliveRequests(env *sim.Env, arg string) { acfg.maxKeepAliveReqs = atoi(arg) }

// setMaxMemFree stores the KB value (Figure 6b: multiplied by 1024 before
// reaching the byte-unit allocator).
func setMaxMemFree(env *sim.Env, arg string) { acfg.maxMemFree = atoi(arg) }

func setThreadLimit(env *sim.Env, arg string)     { acfg.threadLimit = atoi(arg) }
func setThreadsPerChild(env *sim.Env, arg string) { acfg.threadsPerChild = atoi(arg) }

func setMaxRequestWorkers(env *sim.Env, arg string) { acfg.maxWorkers = atoi(arg) }
func setMinSpareThreads(env *sim.Env, arg string)   { acfg.minSpareThreads = atoi(arg) }
func setMaxSpareThreads(env *sim.Env, arg string)   { acfg.maxSpareThreads = atoi(arg) }
func setListenBacklog(env *sim.Env, arg string)     { acfg.listenBacklog = atoi(arg) }

func setKeepAlive(env *sim.Env, arg string) {
	if strings.EqualFold(arg, "on") {
		acfg.keepAlive = true
	} else if strings.EqualFold(arg, "off") {
		acfg.keepAlive = false
	} else {
		env.Log.Errorf("AH00526: KeepAlive must be On or Off, got '%s'", arg)
	}
}

// setHostnameLookups silently overrules unknown values to "off" (the one
// Apache silent-overruling parameter in Table 8).
func setHostnameLookups(env *sim.Env, arg string) {
	if arg == "on" {
		acfg.hostnameLookups = "on"
	} else if arg == "off" {
		acfg.hostnameLookups = "off"
	} else if arg == "double" {
		acfg.hostnameLookups = "double"
	} else {
		acfg.hostnameLookups = "off"
	}
}

func setServerTokens(env *sim.Env, arg string) {
	if strings.EqualFold(arg, "full") {
		acfg.serverTokens = "full"
	} else if strings.EqualFold(arg, "prod") {
		acfg.serverTokens = "prod"
	} else if strings.EqualFold(arg, "minimal") {
		acfg.serverTokens = "minimal"
	} else {
		env.Log.Errorf("AH00665: invalid ServerTokens value '%s'", arg)
	}
}

func setLogLevel(env *sim.Env, arg string) {
	if strings.EqualFold(arg, "debug") {
		acfg.logLevel = "debug"
	} else if strings.EqualFold(arg, "info") {
		acfg.logLevel = "info"
	} else if strings.EqualFold(arg, "warn") {
		acfg.logLevel = "warn"
	} else if strings.EqualFold(arg, "error") {
		acfg.logLevel = "error"
	} else {
		env.Log.Errorf("AH00115: invalid LogLevel '%s'", arg)
	}
}

// httpdState is the running server.
type httpdState struct {
	conf    *coreConfig
	started bool
}

// startHTTPD boots the server.
func startHTTPD(env *sim.Env, c *coreConfig) (*httpdState, error) {
	// Spare-thread window: Apache silently fixes an inverted window.
	if c.minSpareThreads > c.maxSpareThreads {
		c.maxSpareThreads = c.minSpareThreads
	}
	if c.threadsPerChild < 1 {
		c.threadsPerChild = 1
	}
	if c.maxKeepAliveReqs < 0 {
		c.maxKeepAliveReqs = 0
	}
	if c.listenBacklog < 1 {
		c.listenBacklog = 511
	}

	// The scoreboard is sized from ThreadLimit without validation: an
	// oversized value aborts with the misleading Figure 7(b) message.
	score := c.threadLimit * 512
	if score > 4194304 {
		env.Log.Fatalf("Cannot allocate memory: AH00004: Unable to create access scoreboard (anonymous shared memory failure)")
		return nil, &sim.ExitError{Status: 1, Reason: "scoreboard allocation failed"}
	}
	allocPool(score)

	// MaxMemFree is configured in KB but the allocator takes bytes
	// (Figure 6b); a negative value crashes the allocator.
	freeList := allocBuffer(c.maxMemFree * 1024)
	_ = freeList

	if !env.FS.IsDir(c.documentRoot) {
		env.Log.Errorf("AH00112: Warning: DocumentRoot [%s] does not exist", c.documentRoot)
		return nil, &sim.ExitError{Status: 1, Reason: "document root missing"}
	}
	if !vnet.ValidHost(c.serverName) {
		env.Log.Errorf("AH00558: could not reliably determine the server's fully qualified domain name")
		return nil, &sim.ExitError{Status: 1, Reason: "bad server name"}
	}
	if !lookupUser(c.runUser) {
		env.Log.Fatalf("AH00543: bad user name")
		return nil, &sim.ExitError{Status: 1, Reason: "bad user"}
	}
	if !lookupGroup(c.runGroup) {
		env.Log.Fatalf("AH00544: bad group name")
		return nil, &sim.ExitError{Status: 1, Reason: "bad group"}
	}
	if err := env.Net.Bind("tcp", int(c.listenPort), "httpd"); err != nil {
		env.Log.Fatalf("AH00072: make_sock: could not bind to address")
		return nil, &sim.ExitError{Status: 1, Reason: "bind failed"}
	}
	_ = env.FS.WriteFile(c.errorLog, nil, 6)
	_ = env.FS.WriteFile(c.customLog, nil, 6)
	_ = env.FS.WriteFile(c.pidFile, []byte("1"), 6)

	if c.keepAlive {
		sleepSeconds(c.keepAliveSec)
	}
	sleepSeconds(c.timeoutSec)
	spawnWorkers(c.threadsPerChild)
	return &httpdState{conf: c, started: true}, nil
}

// serveFile answers one GET request from the document root.
func (st *httpdState) serveFile(env *sim.Env, path string) (string, bool) {
	full := st.conf.documentRoot + "/" + path
	data, err := env.FS.ReadFile(full)
	if err != nil {
		_ = env.FS.Append(st.conf.errorLog, []byte("404 "+path+"\n"))
		return "", false
	}
	_ = env.FS.Append(st.conf.customLog, []byte("200 "+path+"\n"))
	return string(data), true
}

// --- runtime helpers ---

func allocBuffer(n int64) []byte {
	if n < 0 {
		panic("runtime error: makeslice: len out of range")
	}
	capped := n
	if capped > 1<<20 {
		capped = 1 << 20
	}
	return make([]byte, capped)
}

func allocPool(n int64) {
	if n < 0 {
		return
	}
}

func spawnWorkers(n int64) int64 {
	var slots [64]int64
	for i := int64(0); i < n; i++ {
		slots[i] = i // hard-coded 64 worker slots
	}
	return n
}

func sleepSeconds(n int64) {
	if n <= 0 {
		return
	}
}

func lookupUser(name string) bool  { return name == "www-data" || name == "root" }
func lookupGroup(name string) bool { return name == "www-data" || name == "wheel" }
