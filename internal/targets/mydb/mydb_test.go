package mydb

import (
	"testing"

	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/inject"
	"spex/internal/sim"
	"spex/internal/spex"
)

func infer(t *testing.T) *spex.Result {
	t.Helper()
	res, err := spex.InferSystem(New())
	if err != nil {
		t.Fatalf("InferSystem: %v", err)
	}
	return res
}

func TestDefaultConfigBoots(t *testing.T) {
	s := New()
	env := sim.NewEnv()
	s.SetupEnv(env)
	cfg, err := conffile.Parse(s.DefaultConfig(), s.Syntax())
	if err != nil {
		t.Fatalf("parse default config: %v", err)
	}
	inst, err := s.Start(env, cfg)
	if err != nil {
		t.Fatalf("default config failed to boot: %v\nlog:\n%s", err, env.Log.Dump())
	}
	defer inst.Stop()
	for _, ft := range s.Tests() {
		if err := sim.RunTest(ft, env, inst); err != nil {
			t.Errorf("functional test %s failed on defaults: %v", ft.Name, err)
		}
	}
}

func TestInferredConstraintCoverage(t *testing.T) {
	res := infer(t)
	if res.Params != 38 {
		t.Errorf("mapped %d params, want 38", res.Params)
	}
	counts := res.Set.CountByKind()
	if counts[constraint.KindBasicType] != 38 {
		t.Errorf("basic-type constraints = %d, want 38 (one per parameter)", counts[constraint.KindBasicType])
	}
	if counts[constraint.KindRange] < 10 {
		t.Errorf("range constraints = %d, want >= 10", counts[constraint.KindRange])
	}
	if counts[constraint.KindControlDep] < 3 {
		t.Errorf("control dependencies = %d, want >= 3", counts[constraint.KindControlDep])
	}
	if counts[constraint.KindValueRel] < 1 {
		t.Errorf("value relationships = %d, want >= 1", counts[constraint.KindValueRel])
	}
}

func TestInferenceAccuracy(t *testing.T) {
	res := infer(t)
	acc := spex.Score(res.Set, New().GroundTruth())
	for kind, a := range acc {
		ratio := a.Ratio()
		if ratio >= 0 && ratio < 0.80 {
			t.Errorf("%s accuracy = %.2f (%d/%d), want >= 0.80", kind, ratio, a.Correct, a.Total)
		}
	}
}

func TestCampaignShape(t *testing.T) {
	res := infer(t)
	tmpl, err := conffile.Parse(New().DefaultConfig(), conffile.SyntaxEquals)
	if err != nil {
		t.Fatal(err)
	}
	ms := confgen.NewRegistry().Generate(res.Set, tmpl)
	if len(ms) < 40 {
		t.Fatalf("generated %d misconfigurations, want >= 40", len(ms))
	}
	rep, err := inject.Run(New(), ms, inject.DefaultOptions())
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	counts := rep.CountByReaction()
	t.Logf("campaign reactions: %v (total %d, unique locations %d)",
		counts, len(rep.Outcomes), rep.UniqueLocations())

	if counts[inject.ReactionCrash] == 0 {
		t.Error("no crash vulnerabilities exposed (expected: stopword file, negative sizes, listener threads)")
	}
	if counts[inject.ReactionSilentViolation] == 0 {
		t.Error("no silent violations exposed (expected: clamped ranges, overruled enums)")
	}
	if counts[inject.ReactionSilentIgnorance] == 0 {
		t.Error("no silent ignorance exposed (expected: control-dependency violations)")
	}
	if counts[inject.ReactionGood] == 0 {
		t.Error("no good reactions observed (expected: pinpointing rejections)")
	}
	// The paper's MySQL row: silent violations dominate the vulnerability
	// mix.
	if counts[inject.ReactionSilentViolation] <= counts[inject.ReactionCrash] {
		t.Errorf("silent violations (%d) should dominate crashes (%d), as in Table 5",
			counts[inject.ReactionSilentViolation], counts[inject.ReactionCrash])
	}
	if rep.UniqueLocations() == 0 {
		t.Error("no unique vulnerable code locations recorded")
	}
}
