// Package mydb is a MySQL-like database server simulation: one of the seven
// evaluated targets. This file is the configuration-handling corpus — it is
// both executed by the runtime and analyzed by SPEX (embedded via
// sources.go), so inferred constraints correspond to real behaviour.
//
// The parameter set condenses MySQL 5.5's configuration surface: full-text
// search limits (ft_min/max_word_len, the paper's Figure 3f), the stopword
// file (Figure 3b), buffer-size parameters, enum parameters with MySQL's
// characteristic case-insensitive matching (and the one case-sensitive
// outlier, innodb_file_format_check, Figure 6a), and binlog parameters
// control-dependent on log_bin. Misconfiguration vulnerabilities are seeded
// to mirror the paper's Table 5 MySQL row: silent violations dominate, with
// a few crashes and early terminations.
package mydb

import (
	"strconv"
	"strings"

	"spex/internal/sim"
	"spex/internal/vnet"
)

// dbConfig holds every configuration parameter after parsing.
type dbConfig struct {
	port           int64
	bindAddress    string
	datadir        string
	socketFile     string
	pidFile        string
	maxConnections int64
	threadCache    int64
	listenerThrds  int64

	ftMinWordLen   int64
	ftMaxWordLen   int64
	ftStopwordFile string

	bufferPoolSize   int64
	logFileSize      int64
	keyBufferSize    int64
	sortBufferSize   int64
	maxAllowedPacket int64
	tmpTableSize     int64
	binlogCacheSize  int64
	perfHistSize     int64

	flushLogAtCommit int64
	fileFormatCheck  string
	characterSet     string
	collation        string
	sqlMode          string
	logOutput        string
	binlogFormat     string
	txIsolation      string
	flushMethod      string

	waitTimeout      int64
	netReadTimeout   int64
	lockWaitTimeout  int64
	spinWaitDelay    int64
	threadSleepDelay int64
	slowLaunchTime   int64

	logBin         bool
	generalLog     bool
	generalLogFile string
	skipNetworking bool
}

// intOption maps a numeric parameter name to its storage field
// (structure-based mapping, Figure 4a).
type intOption struct {
	name string
	ptr  *int64
	def  int64
}

// strOption maps a string parameter.
type strOption struct {
	name string
	ptr  *string
	def  string
}

// boolOption maps a boolean parameter.
type boolOption struct {
	name string
	ptr  *bool
	def  bool
}

var conf = &dbConfig{}

var intOptions = []intOption{
	{"port", &conf.port, 3306},
	{"max_connections", &conf.maxConnections, 151},
	{"thread_cache_size", &conf.threadCache, 9},
	{"listener_threads", &conf.listenerThrds, 1},
	{"ft_min_word_len", &conf.ftMinWordLen, 4},
	{"ft_max_word_len", &conf.ftMaxWordLen, 84},
	{"innodb_buffer_pool_size", &conf.bufferPoolSize, 134217728},
	{"innodb_log_file_size", &conf.logFileSize, 50331648},
	{"key_buffer_size", &conf.keyBufferSize, 8388608},
	{"sort_buffer_size", &conf.sortBufferSize, 2097152},
	{"max_allowed_packet", &conf.maxAllowedPacket, 4194304},
	{"tmp_table_size", &conf.tmpTableSize, 16777216},
	{"binlog_cache_size", &conf.binlogCacheSize, 32768},
	{"performance_schema_events_waits_history_size", &conf.perfHistSize, 10},
	{"innodb_flush_log_at_trx_commit", &conf.flushLogAtCommit, 1},
	{"wait_timeout", &conf.waitTimeout, 28800},
	{"net_read_timeout", &conf.netReadTimeout, 30},
	{"innodb_lock_wait_timeout", &conf.lockWaitTimeout, 50},
	{"innodb_spin_wait_delay", &conf.spinWaitDelay, 6},
	{"innodb_thread_sleep_delay", &conf.threadSleepDelay, 10},
	{"slow_launch_time", &conf.slowLaunchTime, 2},
}

var strOptions = []strOption{
	{"bind_address", &conf.bindAddress, "127.0.0.1"},
	{"datadir", &conf.datadir, "/var/lib/mydb"},
	{"socket", &conf.socketFile, "/var/run/mydb/mydb.sock"},
	{"pid_file", &conf.pidFile, "/var/run/mydb/mydb.pid"},
	{"ft_stopword_file", &conf.ftStopwordFile, "/var/lib/mydb/stopwords.txt"},
	{"innodb_file_format_check", &conf.fileFormatCheck, "Antelope"},
	{"character_set_server", &conf.characterSet, "utf8"},
	{"collation_server", &conf.collation, "utf8_general_ci"},
	{"sql_mode", &conf.sqlMode, "strict"},
	{"log_output", &conf.logOutput, "file"},
	{"binlog_format", &conf.binlogFormat, "statement"},
	{"tx_isolation", &conf.txIsolation, "repeatable-read"},
	{"innodb_flush_method", &conf.flushMethod, "fsync"},
	{"general_log_file", &conf.generalLogFile, "/var/lib/mydb/general.log"},
}

var boolOptions = []boolOption{
	{"log_bin", &conf.logBin, true},
	{"general_log", &conf.generalLog, false},
	{"skip_networking", &conf.skipNetworking, false},
}

// applyConfig parses the raw key/value map into the config struct. MySQL
// parses types strictly (Table 8: zero unsafe-transformation parameters):
// malformed values are rejected with a pinpointing message.
func applyConfig(env *sim.Env, vals map[string]string) error {
	for i := range intOptions {
		o := &intOptions[i]
		raw, ok := vals[o.name]
		if !ok {
			*o.ptr = o.def
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(raw), 10, 64)
		if err != nil {
			env.Log.Errorf("[ERROR] option '%s' expects an integer, got '%s'", o.name, raw)
			return &sim.ExitError{Status: 1, Reason: "bad option " + o.name}
		}
		*o.ptr = v
	}
	for i := range strOptions {
		o := &strOptions[i]
		if raw, ok := vals[o.name]; ok {
			*o.ptr = strings.TrimSpace(raw)
		} else {
			*o.ptr = o.def
		}
	}
	for i := range boolOptions {
		o := &boolOptions[i]
		raw, ok := vals[o.name]
		if !ok {
			*o.ptr = o.def
			continue
		}
		switch strings.TrimSpace(raw) {
		case "on", "1":
			*o.ptr = true
		case "off", "0":
			*o.ptr = false
		default:
			env.Log.Errorf("[ERROR] option '%s' expects on/off, got '%s'", o.name, raw)
			return &sim.ExitError{Status: 1, Reason: "bad option " + o.name}
		}
	}
	return nil
}

// validate normalizes the parsed configuration. Several checks silently
// clamp out-of-range values — the paper's silent-violation vulnerabilities.
func validate(env *sim.Env, c *dbConfig) error {
	if c.maxConnections < 1 {
		c.maxConnections = 1
	} else if c.maxConnections > 100000 {
		c.maxConnections = 100000
	}
	if c.threadCache < 0 {
		c.threadCache = 0
	} else if c.threadCache > 16384 {
		c.threadCache = 16384
	}
	if c.listenerThrds < 1 {
		c.listenerThrds = 1
	}
	if c.ftMinWordLen < 1 {
		c.ftMinWordLen = 1
	}
	if c.ftMaxWordLen > 84 {
		c.ftMaxWordLen = 84
	}
	if c.maxAllowedPacket > 1073741824 {
		c.maxAllowedPacket = 1073741824
	}
	// innodb_lock_wait_timeout is properly rejected with a pinpointing
	// message (MySQL documents this range).
	if c.lockWaitTimeout < 1 || c.lockWaitTimeout > 1073741824 {
		env.Log.Errorf("[ERROR] innodb_lock_wait_timeout must be within [1, 1073741824], got %d", c.lockWaitTimeout)
		return &sim.ExitError{Status: 1, Reason: "innodb_lock_wait_timeout out of range"}
	}
	if c.netReadTimeout < 1 {
		c.netReadTimeout = 1
	}
	// innodb_flush_log_at_trx_commit accepts 0/1/2; anything else is
	// silently forced to 1 without a message.
	if c.flushLogAtCommit == 0 {
		_ = c.flushLogAtCommit
	} else if c.flushLogAtCommit == 1 {
		_ = c.flushLogAtCommit
	} else if c.flushLogAtCommit == 2 {
		_ = c.flushLogAtCommit
	} else {
		c.flushLogAtCommit = 1
	}
	// innodb_file_format_check is the case-SENSITIVE outlier (Figure 6a):
	// every other enum uses case-insensitive matching.
	if c.fileFormatCheck == "Antelope" {
		_ = c.fileFormatCheck
	} else if c.fileFormatCheck == "Barracuda" {
		_ = c.fileFormatCheck
	} else {
		env.Log.Errorf("[ERROR] unknown innodb_file_format_check value '%s'", c.fileFormatCheck)
		return &sim.ExitError{Status: 1, Reason: "bad innodb_file_format_check"}
	}
	if strings.EqualFold(c.characterSet, "utf8") {
		c.characterSet = "utf8"
	} else if strings.EqualFold(c.characterSet, "latin1") {
		c.characterSet = "latin1"
	} else if strings.EqualFold(c.characterSet, "binary") {
		c.characterSet = "binary"
	} else {
		c.characterSet = "utf8" // silently overruled, no message
	}
	if strings.EqualFold(c.collation, "utf8_general_ci") {
		c.collation = "utf8_general_ci"
	} else if strings.EqualFold(c.collation, "binary") {
		c.collation = "binary"
	} else {
		env.Log.Errorf("[ERROR] unknown collation_server value '%s'", c.collation)
		return &sim.ExitError{Status: 1, Reason: "bad collation_server"}
	}
	if strings.EqualFold(c.sqlMode, "strict") {
		c.sqlMode = "strict"
	} else if strings.EqualFold(c.sqlMode, "traditional") {
		c.sqlMode = "traditional"
	} else if strings.EqualFold(c.sqlMode, "ansi") {
		c.sqlMode = "ansi"
	} else {
		c.sqlMode = "strict" // silent overruling
	}
	if strings.EqualFold(c.logOutput, "file") {
		c.logOutput = "file"
	} else if strings.EqualFold(c.logOutput, "table") {
		c.logOutput = "table"
	} else if strings.EqualFold(c.logOutput, "none") {
		c.logOutput = "none"
	} else {
		c.logOutput = "file" // silent overruling
	}
	if strings.EqualFold(c.txIsolation, "read-committed") {
		c.txIsolation = "read-committed"
	} else if strings.EqualFold(c.txIsolation, "repeatable-read") {
		c.txIsolation = "repeatable-read"
	} else if strings.EqualFold(c.txIsolation, "serializable") {
		c.txIsolation = "serializable"
	} else {
		env.Log.Errorf("[ERROR] unknown tx_isolation value '%s'", c.txIsolation)
		return &sim.ExitError{Status: 1, Reason: "bad tx_isolation"}
	}
	if strings.EqualFold(c.flushMethod, "fsync") {
		c.flushMethod = "fsync"
	} else if strings.EqualFold(c.flushMethod, "o_dsync") {
		c.flushMethod = "o_dsync"
	} else if strings.EqualFold(c.flushMethod, "o_direct") {
		c.flushMethod = "o_direct"
	} else {
		c.flushMethod = "fsync" // silent overruling
	}
	return nil
}

// serverState is the running server.
type serverState struct {
	conf      *dbConfig
	stopwords []string
	ring      []byte
	workers   int64
}

// startServer boots the database: storage, full-text engine, worker pool,
// network listener. Several startup paths assume a correct configuration
// and misbehave on bad values (the seeded vulnerabilities).
func startServer(env *sim.Env, c *dbConfig) (*serverState, error) {
	if !env.FS.IsDir(c.datadir) {
		env.Log.Fatalf("[ERROR] Can't read dir of '%s'", "./data")
		return nil, &sim.ExitError{Status: 1, Reason: "cannot read data directory"}
	}
	// The Unix socket is created best-effort: errors are dropped, so a
	// bad path only surfaces when a client tries the socket (functional
	// failure without a message).
	_ = env.FS.WriteFile(c.socketFile, []byte("sock"), 6)
	_ = env.FS.WriteFile(c.pidFile, []byte("1"), 6)

	// Full-text engine: the stopword file is read without checking the
	// error, then indexed — a missing or unreadable file crashes the
	// server (Figure 5b).
	data, _ := env.FS.ReadFile(c.ftStopwordFile)
	header := data[0] // panics on nil data: "segmentation fault"
	_ = header
	st := &serverState{conf: c, stopwords: strings.Fields(string(data))}

	// The performance-schema history ring is allocated from the raw
	// size; a negative size panics (crash, Figure 7a).
	st.ring = allocBuffer(c.perfHistSize)

	// Worker pool: a hard-coded maximum of 16 listener slots, not
	// validated (the OpenLDAP listener-threads pattern, Figure 2).
	st.workers = spawnWorkers(c.listenerThrds)

	allocPool(c.bufferPoolSize)
	allocPool(c.keyBufferSize)
	allocPool(c.sortBufferSize)
	allocPool(c.tmpTableSize)
	allocPool(c.logFileSize)
	packets := allocBuffer(c.maxAllowedPacket)
	_ = packets

	if !c.skipNetworking {
		if !vnet.ValidIP(c.bindAddress) {
			env.Log.Errorf("[ERROR] invalid bind_address value '%s'", c.bindAddress)
			return nil, &sim.ExitError{Status: 1, Reason: "bad bind_address"}
		}
		if err := env.Net.Bind("tcp", int(c.port), "mydb"); err != nil {
			env.Log.Fatalf("[ERROR] Can't create IP socket: %v", err)
			return nil, &sim.ExitError{Status: 1, Reason: "bind failed"}
		}
	}
	if c.logBin {
		allocPool(c.binlogCacheSize)
		// Replication format only matters with binary logging on; an
		// unknown value is silently overruled to "statement".
		if strings.EqualFold(c.binlogFormat, "row") {
			c.binlogFormat = "row"
		} else if strings.EqualFold(c.binlogFormat, "statement") {
			c.binlogFormat = "statement"
		} else if strings.EqualFold(c.binlogFormat, "mixed") {
			c.binlogFormat = "mixed"
		} else {
			c.binlogFormat = "statement"
		}
	}
	if c.generalLog {
		_ = env.FS.WriteFile(c.generalLogFile, nil, 6)
	}
	sleepSeconds(c.slowLaunchTime)
	return st, nil
}

// search runs a full-text lookup: only words within
// [ft_min_word_len, ft_max_word_len) are indexed (Figure 3f).
func (st *serverState) search(word string) bool {
	length := int64(len(word))
	if length >= st.conf.ftMinWordLen && length < st.conf.ftMaxWordLen {
		for _, sw := range st.stopwords {
			if sw == word {
				return false
			}
		}
		return true
	}
	return false
}

// commitDelay simulates the commit path: the spin delay and sleep delays
// apply per transaction.
func (st *serverState) commitDelay() {
	sleepMicros(st.conf.spinWaitDelay)
	sleepMillis(st.conf.threadSleepDelay)
	sleepSeconds(st.conf.waitTimeout)
	sleepSeconds(st.conf.lockWaitTimeout)
	sleepSeconds(st.conf.netReadTimeout)
}

// --- target-local runtime helpers (registered in the API knowledge
// base; real implementations below are what actually executes) ---

func allocBuffer(n int64) []byte {
	if n < 0 {
		// A negative length crashes, as the real make() would.
		panic("runtime error: makeslice: len out of range")
	}
	capped := n
	if capped > 1<<20 {
		capped = 1 << 20 // simulate large allocations with a capped arena
	}
	return make([]byte, capped)
}

func allocPool(n int64) {
	if n < 0 {
		return // negative pool sizes are quietly tolerated
	}
}

func spawnWorkers(n int64) int64 {
	var slots [16]int64
	for i := int64(0); i < n; i++ {
		slots[i] = i // panics when n exceeds the hard-coded 16 slots
	}
	return n
}

func sleepSeconds(n int64) {
	if n <= 0 {
		return
	}
}

func sleepMillis(n int64) {
	if n <= 0 {
		return
	}
}

func sleepMicros(n int64) {
	if n <= 0 {
		return
	}
}
