package mydb

import (
	_ "embed"
	"fmt"
	"strconv"
	"sync"

	"spex/internal/conffile"
	"spex/internal/constraint"
	"spex/internal/sim"
)

//go:embed corpus.go
var corpusSource string

// System is the mydb target.
type System struct{}

// New returns the mydb target system.
func New() *System { return &System{} }

func (s *System) Name() string        { return "mydb" }
func (s *System) Description() string { return "MySQL-like database server (structure mapping)" }

func (s *System) Syntax() conffile.Syntax { return conffile.SyntaxEquals }

// Sources returns the analyzed corpus: the same code the runtime executes.
func (s *System) Sources() map[string]string {
	return map[string]string{"corpus.go": corpusSource}
}

// Annotations seed the structure-based mapping toolkits (Figure 4a): three
// option tables, one block each.
func (s *System) Annotations() string {
	return `# mydb option tables (structure-based mapping)
{ @STRUCT = intOptions  @PAR = [intOption, 1]  @VAR = [intOption, 2] }
{ @STRUCT = strOptions  @PAR = [strOption, 1]  @VAR = [strOption, 2] }
{ @STRUCT = boolOptions @PAR = [boolOption, 1] @VAR = [boolOption, 2] }`
}

// DefaultConfig is the template configuration file (all defaults).
func (s *System) DefaultConfig() string {
	return `# mydb server configuration
port = 3306
bind_address = 127.0.0.1
datadir = /var/lib/mydb
socket = /var/run/mydb/mydb.sock
pid_file = /var/run/mydb/mydb.pid
max_connections = 151
thread_cache_size = 9
listener_threads = 1
ft_min_word_len = 4
ft_max_word_len = 84
ft_stopword_file = /var/lib/mydb/stopwords.txt
innodb_buffer_pool_size = 134217728
innodb_log_file_size = 50331648
key_buffer_size = 8388608
sort_buffer_size = 2097152
max_allowed_packet = 4194304
tmp_table_size = 16777216
binlog_cache_size = 32768
performance_schema_events_waits_history_size = 10
innodb_flush_log_at_trx_commit = 1
innodb_file_format_check = Antelope
character_set_server = utf8
collation_server = utf8_general_ci
sql_mode = strict
log_output = file
binlog_format = statement
tx_isolation = repeatable-read
innodb_flush_method = fsync
wait_timeout = 28800
net_read_timeout = 30
innodb_lock_wait_timeout = 50
innodb_spin_wait_delay = 6
innodb_thread_sleep_delay = 10
slow_launch_time = 2
log_bin = on
general_log = off
general_log_file = /var/lib/mydb/general.log
skip_networking = off
`
}

// SetupEnv populates the virtual substrates the default configuration
// expects.
func (s *System) SetupEnv(env *sim.Env) {
	_ = env.FS.MkdirAll("/var/lib/mydb")
	_ = env.FS.MkdirAll("/var/run/mydb")
	_ = env.FS.WriteFile("/var/lib/mydb/stopwords.txt", []byte("the a an and or of"), 6)
}

// instance is a started mydb server.
type instance struct {
	st        *serverState
	effective map[string]string
	env       *sim.Env
}

func (i *instance) Effective(param string) (string, bool) {
	v, ok := i.effective[param]
	return v, ok
}

func (i *instance) Stop() {
	i.env.Net.ReleaseOwner("mydb")
}

// bootMu serializes the option-table parse phase: the corpus models
// MySQL's real package-level config variables, so concurrent boots must
// not interleave until the parsed values are copied out of the globals.
var bootMu sync.Mutex

// Start parses, validates, and boots mydb on the given substrates.
func (s *System) Start(env *sim.Env, cfg *conffile.File) (sim.Instance, error) {
	c, err := loadConfig(env, cfg)
	if err != nil {
		return nil, err
	}
	if err := validate(env, c); err != nil {
		return nil, err
	}
	st, err := startServer(env, c)
	if err != nil {
		return nil, err
	}
	return &instance{st: st, effective: snapshot(c), env: env}, nil
}

// loadConfig runs the global-config parse under bootMu and hands back a
// private copy; validation, boot, and the functional tests all operate
// on the copy and may run concurrently with other boots.
func loadConfig(env *sim.Env, cfg *conffile.File) (*dbConfig, error) {
	bootMu.Lock()
	defer bootMu.Unlock()
	*conf = dbConfig{} // reset in place: the option tables hold field pointers
	if err := applyConfig(env, cfg.Map()); err != nil {
		return nil, err
	}
	c := *conf
	return &c, nil
}

func snapshot(c *dbConfig) map[string]string {
	m := map[string]string{}
	ib := func(name string, v int64) { m[name] = strconv.FormatInt(v, 10) }
	sb := func(name, v string) { m[name] = v }
	bb := func(name string, v bool) {
		if v {
			m[name] = "on"
		} else {
			m[name] = "off"
		}
	}
	ib("port", c.port)
	sb("bind_address", c.bindAddress)
	sb("datadir", c.datadir)
	sb("socket", c.socketFile)
	sb("pid_file", c.pidFile)
	ib("max_connections", c.maxConnections)
	ib("thread_cache_size", c.threadCache)
	ib("listener_threads", c.listenerThrds)
	ib("ft_min_word_len", c.ftMinWordLen)
	ib("ft_max_word_len", c.ftMaxWordLen)
	sb("ft_stopword_file", c.ftStopwordFile)
	ib("innodb_buffer_pool_size", c.bufferPoolSize)
	ib("innodb_log_file_size", c.logFileSize)
	ib("key_buffer_size", c.keyBufferSize)
	ib("sort_buffer_size", c.sortBufferSize)
	ib("max_allowed_packet", c.maxAllowedPacket)
	ib("tmp_table_size", c.tmpTableSize)
	ib("binlog_cache_size", c.binlogCacheSize)
	ib("performance_schema_events_waits_history_size", c.perfHistSize)
	ib("innodb_flush_log_at_trx_commit", c.flushLogAtCommit)
	sb("innodb_file_format_check", c.fileFormatCheck)
	sb("character_set_server", c.characterSet)
	sb("collation_server", c.collation)
	sb("sql_mode", c.sqlMode)
	sb("log_output", c.logOutput)
	sb("binlog_format", c.binlogFormat)
	sb("tx_isolation", c.txIsolation)
	sb("innodb_flush_method", c.flushMethod)
	ib("wait_timeout", c.waitTimeout)
	ib("net_read_timeout", c.netReadTimeout)
	ib("innodb_lock_wait_timeout", c.lockWaitTimeout)
	ib("innodb_spin_wait_delay", c.spinWaitDelay)
	ib("innodb_thread_sleep_delay", c.threadSleepDelay)
	ib("slow_launch_time", c.slowLaunchTime)
	bb("log_bin", c.logBin)
	bb("general_log", c.generalLog)
	sb("general_log_file", c.generalLogFile)
	bb("skip_networking", c.skipNetworking)
	return m
}

// Tests is mydb's own functional test suite (the paper drives SPEX-INJ with
// each system's shipped tests).
func (s *System) Tests() []sim.FuncTest {
	return []sim.FuncTest{
		{
			Name: "connect", Weight: 1,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if i.st.conf.skipNetworking {
					return nil
				}
				if !env.Net.Occupied("tcp", int(i.st.conf.port)) {
					return fmt.Errorf("server is not listening on its TCP port")
				}
				return nil
			},
		},
		{
			Name: "unix-socket", Weight: 2,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if !env.FS.Exists(i.st.conf.socketFile) {
					return fmt.Errorf("unix socket file missing")
				}
				return nil
			},
		},
		{
			Name: "txn-commit", Weight: 3,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				i.st.commitDelay()
				return nil
			},
		},
		{
			Name: "ft-search", Weight: 5,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if !i.st.search("database") {
					return fmt.Errorf("full-text search missed an indexed word")
				}
				if i.st.search("the") {
					return fmt.Errorf("full-text search returned a stopword")
				}
				return nil
			},
		},
		{
			Name: "binlog-format", Weight: 2,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if !i.st.conf.logBin {
					return nil
				}
				switch i.st.conf.binlogFormat {
				case "row", "statement", "mixed":
					return nil
				}
				return fmt.Errorf("binlog running with invalid format %q", i.st.conf.binlogFormat)
			},
		},
	}
}

// Manual is mydb's user manual: which constraints are documented per
// parameter. Several inferred constraints are deliberately undocumented
// (Table 8).
func (s *System) Manual() map[string]sim.ManualEntry {
	doc := func(prose string, kinds ...constraint.Kind) sim.ManualEntry {
		return sim.ManualEntry{Prose: prose, Documented: kinds}
	}
	return map[string]sim.ManualEntry{
		"port":         doc("TCP port the server listens on.", constraint.KindBasicType, constraint.KindSemanticType),
		"bind_address": doc("IP address to bind to.", constraint.KindBasicType, constraint.KindSemanticType),
		"datadir":      doc("Path to the data directory.", constraint.KindBasicType, constraint.KindSemanticType),
		"socket":       doc("Unix socket file path.", constraint.KindBasicType, constraint.KindSemanticType),
		"max_connections": doc("Maximum permitted simultaneous client connections; clamped to [1, 100000].",
			constraint.KindBasicType, constraint.KindRange),
		"innodb_lock_wait_timeout": doc("Transaction lock wait timeout in seconds, within [1, 1073741824].",
			constraint.KindBasicType, constraint.KindRange, constraint.KindSemanticType),
		"ft_min_word_len":          doc("Minimum indexed word length.", constraint.KindBasicType),
		"ft_max_word_len":          doc("Maximum indexed word length.", constraint.KindBasicType),
		"ft_stopword_file":         doc("File of stopwords for full-text indexing.", constraint.KindBasicType, constraint.KindSemanticType),
		"binlog_format":            doc("Binary log format: ROW, STATEMENT or MIXED.", constraint.KindBasicType, constraint.KindRange),
		"innodb_file_format_check": doc("InnoDB file format to enforce.", constraint.KindBasicType),
		"wait_timeout":             doc("Seconds the server waits on an idle connection.", constraint.KindBasicType, constraint.KindSemanticType),
	}
}

// GroundTruth is the manually verified constraint set used to score
// inference accuracy (Table 12).
func (s *System) GroundTruth() *constraint.Set {
	gt := constraint.NewSet("mydb")
	b := func(p string, t constraint.BasicType) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindBasicType, Param: p, Basic: t})
	}
	sem := func(p string, t constraint.SemanticType, u constraint.Unit) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindSemanticType, Param: p, Semantic: t, Unit: u})
	}
	rng := func(p string, min, max int64, hasMin, hasMax bool) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindRange, Param: p,
			Intervals: []constraint.Interval{{Min: min, Max: max, HasMin: hasMin, HasMax: hasMax, Valid: true}}})
	}
	enum := func(p string, vals ...string) {
		evs := make([]constraint.EnumValue, len(vals))
		for i, v := range vals {
			evs[i] = constraint.EnumValue{Value: v, Valid: true}
		}
		gt.Add(&constraint.Constraint{Kind: constraint.KindRange, Param: p, Enum: evs})
	}
	dep := func(q, p string, op constraint.Op, v string) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindControlDep, Param: q, Peer: p, Cond: op, Value: v})
	}

	for _, p := range []string{
		"port", "max_connections", "thread_cache_size", "listener_threads",
		"ft_min_word_len", "ft_max_word_len", "innodb_buffer_pool_size",
		"innodb_log_file_size", "key_buffer_size", "sort_buffer_size",
		"max_allowed_packet", "tmp_table_size", "binlog_cache_size",
		"performance_schema_events_waits_history_size",
		"innodb_flush_log_at_trx_commit", "wait_timeout", "net_read_timeout",
		"innodb_lock_wait_timeout", "innodb_spin_wait_delay",
		"innodb_thread_sleep_delay", "slow_launch_time",
	} {
		b(p, constraint.BasicInt64)
	}
	for _, p := range []string{
		"bind_address", "datadir", "socket", "pid_file", "ft_stopword_file",
		"innodb_file_format_check", "character_set_server", "collation_server",
		"sql_mode", "log_output", "binlog_format", "tx_isolation",
		"innodb_flush_method", "general_log_file",
	} {
		b(p, constraint.BasicString)
	}
	for _, p := range []string{"log_bin", "general_log", "skip_networking"} {
		b(p, constraint.BasicBool)
	}

	sem("port", constraint.SemPort, constraint.UnitNone)
	sem("bind_address", constraint.SemIPAddr, constraint.UnitNone)
	sem("datadir", constraint.SemDirectory, constraint.UnitNone)
	sem("socket", constraint.SemFile, constraint.UnitNone)
	sem("pid_file", constraint.SemFile, constraint.UnitNone)
	sem("ft_stopword_file", constraint.SemFile, constraint.UnitNone)
	sem("general_log_file", constraint.SemFile, constraint.UnitNone)
	for _, p := range []string{
		"innodb_buffer_pool_size", "innodb_log_file_size", "key_buffer_size",
		"sort_buffer_size", "max_allowed_packet", "tmp_table_size",
		"binlog_cache_size", "performance_schema_events_waits_history_size",
	} {
		sem(p, constraint.SemSize, constraint.UnitByte)
	}
	sem("listener_threads", constraint.SemCount, constraint.UnitNone)
	sem("wait_timeout", constraint.SemTimeout, constraint.UnitSecond)
	sem("net_read_timeout", constraint.SemTimeout, constraint.UnitSecond)
	sem("innodb_lock_wait_timeout", constraint.SemTimeout, constraint.UnitSecond)
	sem("slow_launch_time", constraint.SemTimeout, constraint.UnitSecond)
	sem("innodb_spin_wait_delay", constraint.SemTimeout, constraint.UnitMicrosecond)
	sem("innodb_thread_sleep_delay", constraint.SemTimeout, constraint.UnitMillisecond)

	rng("max_connections", 1, 100000, true, true)
	rng("thread_cache_size", 0, 16384, true, true)
	rng("listener_threads", 1, 0, true, false)
	rng("ft_min_word_len", 1, 0, true, false)
	rng("ft_max_word_len", 0, 84, false, true)
	rng("max_allowed_packet", 0, 1073741824, false, true)
	rng("innodb_lock_wait_timeout", 1, 1073741824, true, true)
	rng("net_read_timeout", 1, 0, true, false)
	rng("innodb_flush_log_at_trx_commit", 0, 2, true, true)
	enum("innodb_file_format_check", "Antelope", "Barracuda")
	enum("character_set_server", "utf8", "latin1", "binary")
	enum("collation_server", "utf8_general_ci", "binary")
	enum("sql_mode", "strict", "traditional", "ansi")
	enum("log_output", "file", "table", "none")
	enum("binlog_format", "row", "statement", "mixed")
	enum("tx_isolation", "read-committed", "repeatable-read", "serializable")
	enum("innodb_flush_method", "fsync", "o_dsync", "o_direct")

	dep("binlog_format", "log_bin", constraint.OpEQ, "true")
	dep("binlog_cache_size", "log_bin", constraint.OpEQ, "true")
	dep("general_log_file", "general_log", constraint.OpEQ, "true")
	dep("port", "skip_networking", constraint.OpEQ, "false")
	dep("bind_address", "skip_networking", constraint.OpEQ, "false")

	gt.Add(&constraint.Constraint{Kind: constraint.KindValueRel,
		Param: "ft_max_word_len", Rel: constraint.OpGT, Peer: "ft_min_word_len"})
	return gt
}

var _ sim.System = (*System)(nil)
