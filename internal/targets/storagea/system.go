package storagea

import (
	_ "embed"
	"fmt"
	"strconv"
	"sync"

	"spex/internal/apispec"
	"spex/internal/conffile"
	"spex/internal/constraint"
	"spex/internal/sim"
)

//go:embed corpus.go
var corpusSource string

// System is the Storage-A target.
type System struct{}

// New returns the Storage-A target system.
func New() *System { return &System{} }

func (s *System) Name() string        { return "Storage-A" }
func (s *System) Description() string { return "commercial distributed storage OS (structure mapping)" }

func (s *System) Syntax() conffile.Syntax { return conffile.SyntaxEquals }

func (s *System) Sources() map[string]string {
	return map[string]string{"corpus.go": corpusSource}
}

// ImportAPIs registers Storage-A's proprietary validation library with the
// knowledge base (the paper's customization hook: "for the commercial
// storage software ... we also imported its proprietary library APIs").
func (s *System) ImportAPIs(db *apispec.DB) {
	db.Register(&apispec.FuncSpec{
		Name: "validateInitiator",
		Args: []apispec.ArgSpec{{Index: 0, Semantic: constraint.SemInitiator}},
	})
}

// Annotations: one block per typed column of the option table (5 lines, as
// in Table 4's Storage-A row).
func (s *System) Annotations() string {
	return `# Storage-A option registry: one @VAR column per option kind
{ @STRUCT = saOptions @PAR = [saOption, 1] @VAR = [saOption, 3] }
{ @STRUCT = saOptions @PAR = [saOption, 1] @VAR = [saOption, 4] }
{ @STRUCT = saOptions @PAR = [saOption, 1] @VAR = [saOption, 5] }`
}

func (s *System) DefaultConfig() string {
	return `# Storage-A appliance options
log.filesize = 1048576
log.dir = /vol/log
vol.export.root = /vol/vol0
snap.reserve = 20
raid.stripe.kb = 64
iscsi.enable = on
iscsi.initiator_name = iqn.2013-01.com.example:storage
iscsi.portal.ip = 10.0.0.2
iscsi.port = 3260
iscsi.queue_len = 32
nfs.enable = on
nfs.export.dir = /vol/vol0/home
nfs.max_connections = 1024
nfs.tcp.window = 65536
cifs.enable = off
cifs.share.dir = /vol/vol0/share
cifs.max_mpx = 50
http.enable = off
http.port = 8080
http.admin.dir = /vol/vol0/admin
pcs.size = 1
wafl.cache.mb = 256
log.buffer.kb = 64
readahead.kb = 128
journal.size = 1048576
nvram.size = 524288
cleanup.msec = 200
flush.msec = 500
takeover.sec = 180
giveback.sec = 600
scrub.sec = 3600
status.sec = 10
autosupport.min = 15
weekly.hour = 2
retry.usec = 100
poll.usec = 250
admin.user = root
admin.group = wheel
console.log = /vol/log/console.log
`
}

func (s *System) SetupEnv(env *sim.Env) {
	_ = env.FS.MkdirAll("/vol/log")
	_ = env.FS.MkdirAll("/vol/vol0/home")
	_ = env.FS.MkdirAll("/vol/vol0/share")
	_ = env.FS.MkdirAll("/vol/vol0/admin")
}

type instance struct {
	st        *applianceState
	effective map[string]string
	env       *sim.Env
}

func (i *instance) Effective(param string) (string, bool) {
	v, ok := i.effective[param]
	return v, ok
}

func (i *instance) Stop() { i.env.Net.ReleaseOwner("storagea") }

// bootMu serializes the boot: the corpus models the appliance's real
// global registry options (and snapshot reads them through the option
// table), so concurrent Starts must not interleave until the instance
// detaches. Hang points must never sit inside this lock (see
// sim.MonitorStart).
var bootMu sync.Mutex

func (s *System) Start(env *sim.Env, cfg *conffile.File) (sim.Instance, error) {
	bootMu.Lock()
	defer bootMu.Unlock()
	*scfg = saConfig{}
	applyOptions(cfg.Map())
	st, err := startAppliance(env, scfg)
	if err != nil {
		return nil, err
	}
	eff := snapshot(scfg)
	c := *scfg
	st.conf = &c // detach: the functional tests run outside the boot lock
	return &instance{st: st, effective: eff, env: env}, nil
}

func snapshot(c *saConfig) map[string]string {
	m := map[string]string{}
	for i := range saOptions {
		o := &saOptions[i]
		switch o.kind {
		case "int":
			m[o.name] = strconv.FormatInt(*o.iptr, 10)
		case "str":
			m[o.name] = *o.sptr
		case "bool":
			if *o.bptr {
				m[o.name] = "on"
			} else {
				m[o.name] = "off"
			}
		}
	}
	return m
}

func (s *System) Tests() []sim.FuncTest {
	return []sim.FuncTest{
		{
			Name: "iscsi-discover", Weight: 3,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if !i.st.conf.iscsiEnable {
					return nil
				}
				if !i.st.discoverLUN(i.st.conf.iscsiInitiator) {
					return fmt.Errorf("the storage share cannot be recognized")
				}
				return nil
			},
		},
		{
			Name: "iscsi-port", Weight: 2,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if i.st.conf.iscsiEnable && !env.Net.Occupied("tcp", int(i.st.conf.iscsiPort)) {
					return fmt.Errorf("iSCSI portal is not listening")
				}
				return nil
			},
		},
		{
			Name: "nfs-export", Weight: 4,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if i.st.conf.nfsEnable && !i.st.luns["nfs:"+i.st.conf.nfsExportDir] {
					return fmt.Errorf("NFS export is not being served")
				}
				return nil
			},
		},
		{
			Name: "log-rotate", Weight: 1,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if !i.st.rotateLog(env, "status ok") {
					return fmt.Errorf("log rotation is not operating")
				}
				return nil
			},
		},
		{
			Name: "admin-auth", Weight: 2,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if !lookupUser(i.st.conf.adminUser) {
					return fmt.Errorf("administrative login failed")
				}
				return nil
			},
		},
	}
}

func (s *System) Manual() map[string]sim.ManualEntry {
	doc := func(prose string, kinds ...constraint.Kind) sim.ManualEntry {
		return sim.ManualEntry{Prose: prose, Documented: kinds}
	}
	return map[string]sim.ManualEntry{
		// The unit lives in the parameter NAME (the §5.2 good practice),
		// so units count as documented for the mnemonic parameters.
		"cleanup.msec":  doc("Cleanup interval (milliseconds).", constraint.KindBasicType, constraint.KindSemanticType),
		"takeover.sec":  doc("Takeover timeout (seconds).", constraint.KindBasicType, constraint.KindSemanticType),
		"log.buffer.kb": doc("Log buffer size (KB).", constraint.KindBasicType, constraint.KindSemanticType),
		"wafl.cache.mb": doc("Cache size (MB).", constraint.KindBasicType, constraint.KindSemanticType),
		"iscsi.initiator_name": doc("iSCSI initiator name; lowercase letters, digits, '.', '-', ':' only.",
			constraint.KindBasicType, constraint.KindSemanticType),
		"snap.reserve":    doc("Snapshot reserve percentage, 0-100.", constraint.KindBasicType, constraint.KindRange),
		"iscsi.port":      doc("iSCSI portal port.", constraint.KindBasicType, constraint.KindSemanticType),
		"nfs.export.dir":  doc("Directory exported over NFS.", constraint.KindBasicType, constraint.KindSemanticType),
		"vol.export.root": doc("Root volume path.", constraint.KindBasicType),
	}
}

func (s *System) GroundTruth() *constraint.Set {
	gt := constraint.NewSet("Storage-A")
	b := func(p string, t constraint.BasicType) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindBasicType, Param: p, Basic: t})
	}
	sem := func(p string, t constraint.SemanticType, u constraint.Unit) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindSemanticType, Param: p, Semantic: t, Unit: u})
	}
	rng := func(p string, min, max int64, hasMin, hasMax bool) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindRange, Param: p,
			Intervals: []constraint.Interval{{Min: min, Max: max, HasMin: hasMin, HasMax: hasMax, Valid: true}}})
	}
	dep := func(q, p string, op constraint.Op, v string) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindControlDep, Param: q, Peer: p, Cond: op, Value: v})
	}

	ints := []string{
		"snap.reserve", "raid.stripe.kb", "iscsi.port", "iscsi.queue_len",
		"nfs.max_connections", "nfs.tcp.window", "cifs.max_mpx", "http.port",
		"pcs.size", "wafl.cache.mb", "log.buffer.kb", "readahead.kb",
		"journal.size", "nvram.size", "cleanup.msec", "flush.msec",
		"takeover.sec", "giveback.sec", "scrub.sec", "status.sec",
		"autosupport.min", "weekly.hour", "retry.usec", "poll.usec",
	}
	for _, p := range ints {
		b(p, constraint.BasicInt64)
	}
	b("log.filesize", constraint.BasicInt32) // string transformed to int32
	for _, p := range []string{
		"log.dir", "vol.export.root", "iscsi.initiator_name", "iscsi.portal.ip",
		"nfs.export.dir", "cifs.share.dir", "http.admin.dir", "admin.user",
		"admin.group", "console.log",
	} {
		b(p, constraint.BasicString)
	}
	for _, p := range []string{"iscsi.enable", "nfs.enable", "cifs.enable", "http.enable"} {
		b(p, constraint.BasicBool)
	}

	sem("iscsi.initiator_name", constraint.SemInitiator, constraint.UnitNone)
	sem("iscsi.port", constraint.SemPort, constraint.UnitNone)
	sem("http.port", constraint.SemPort, constraint.UnitNone)
	sem("log.dir", constraint.SemDirectory, constraint.UnitNone)
	sem("nfs.export.dir", constraint.SemDirectory, constraint.UnitNone)
	sem("cifs.share.dir", constraint.SemDirectory, constraint.UnitNone)
	sem("http.admin.dir", constraint.SemDirectory, constraint.UnitNone)
	sem("console.log", constraint.SemFile, constraint.UnitNone)
	sem("admin.user", constraint.SemUser, constraint.UnitNone)
	sem("admin.group", constraint.SemGroup, constraint.UnitNone)
	sem("pcs.size", constraint.SemSize, constraint.UnitGB)
	sem("wafl.cache.mb", constraint.SemSize, constraint.UnitMB)
	sem("log.buffer.kb", constraint.SemSize, constraint.UnitKB)
	sem("readahead.kb", constraint.SemSize, constraint.UnitKB)
	sem("journal.size", constraint.SemSize, constraint.UnitByte)
	sem("nvram.size", constraint.SemSize, constraint.UnitByte)
	sem("nfs.tcp.window", constraint.SemSize, constraint.UnitByte)
	sem("cleanup.msec", constraint.SemTimeout, constraint.UnitMillisecond)
	sem("flush.msec", constraint.SemTimeout, constraint.UnitMillisecond)
	sem("takeover.sec", constraint.SemTimeout, constraint.UnitSecond)
	sem("giveback.sec", constraint.SemTimeout, constraint.UnitSecond)
	sem("scrub.sec", constraint.SemTimeout, constraint.UnitSecond)
	sem("status.sec", constraint.SemTimeout, constraint.UnitSecond)
	sem("autosupport.min", constraint.SemTimeout, constraint.UnitMinute)
	sem("weekly.hour", constraint.SemTimeout, constraint.UnitHour)
	sem("retry.usec", constraint.SemTimeout, constraint.UnitMicrosecond)
	sem("poll.usec", constraint.SemTimeout, constraint.UnitMicrosecond)

	rng("snap.reserve", 0, 100, true, true)
	rng("raid.stripe.kb", 4, 256, true, true)
	rng("iscsi.queue_len", 1, 256, true, true)
	rng("nfs.max_connections", 16, 0, true, false)
	rng("cifs.max_mpx", 2, 0, true, false)

	dep("iscsi.initiator_name", "iscsi.enable", constraint.OpEQ, "true")
	dep("iscsi.port", "iscsi.enable", constraint.OpEQ, "true")
	dep("iscsi.queue_len", "iscsi.enable", constraint.OpEQ, "true")
	dep("nfs.export.dir", "nfs.enable", constraint.OpEQ, "true")
	dep("nfs.max_connections", "nfs.enable", constraint.OpEQ, "true")
	dep("nfs.tcp.window", "nfs.enable", constraint.OpEQ, "true")
	dep("cifs.share.dir", "cifs.enable", constraint.OpEQ, "true")
	dep("cifs.max_mpx", "cifs.enable", constraint.OpEQ, "true")
	dep("http.port", "http.enable", constraint.OpEQ, "true")
	dep("http.admin.dir", "http.enable", constraint.OpEQ, "true")
	return gt
}

var _ sim.System = (*System)(nil)
var _ interface{ ImportAPIs(*apispec.DB) } = (*System)(nil)
