// Package storagea simulates Storage-A, the paper's anonymized commercial
// distributed storage OS. Its configuration handling shows the patterns the
// paper attributes to the commercial system: dotted parameter names with
// unit mnemonics (cleanup.msec, takeover.sec), a proprietary validation
// library imported into SPEX's knowledge base (iSCSI initiator names,
// Figure 1), the string-to-int32 first-cast basic type (Figure 3a), the
// pcs.size unit-ignorance vulnerability (Figure 7d), many control
// dependencies between protocol groups (silent ignorance dominates its
// Table 5 row), and zero crashes or early terminations — the system never
// dies on bad configuration, it just misbehaves quietly.
package storagea

import (
	"strings"

	"spex/internal/sim"
)

// saConfig holds the appliance configuration.
type saConfig struct {
	logFilesize  string // parsed to int32 later (Figure 3a)
	logDir       string
	exportRoot   string
	snapReserve  int64
	raidStripeKB int64

	iscsiEnable    bool
	iscsiInitiator string
	iscsiPortalIP  string
	iscsiPort      int64
	iscsiQueueLen  int64

	nfsEnable    bool
	nfsExportDir string
	nfsMaxConns  int64
	nfsTCPWindow int64

	cifsEnable   bool
	cifsShareDir string
	cifsMaxMpx   int64

	httpEnable   bool
	httpPort     int64
	httpAdminDir string

	pcsSize     int64 // configured in GB (Figure 7d)
	waflCacheMB int64 // configured in MB
	logBufferKB int64 // configured in KB
	readAheadKB int64
	journalSize int64 // bytes
	nvramSize   int64 // bytes

	cleanupMsec    int64
	flushMsec      int64
	takeoverSec    int64
	givebackSec    int64
	scrubSec       int64
	statusSec      int64
	autosupportMin int64
	weeklyHour     int64
	retryUsec      int64
	pollUsec       int64

	adminUser  string
	adminGroup string
	consoleLog string
}

var scfg = &saConfig{}

// saOption is the option table (structure-based mapping).
type saOption struct {
	name string
	kind string
	iptr *int64
	sptr *string
	bptr *bool
	def  string
}

var saOptions = []saOption{
	{"log.filesize", "str", nil, &scfg.logFilesize, nil, "1048576"},
	{"log.dir", "str", nil, &scfg.logDir, nil, "/vol/log"},
	{"vol.export.root", "str", nil, &scfg.exportRoot, nil, "/vol/vol0"},
	{"snap.reserve", "int", &scfg.snapReserve, nil, nil, "20"},
	{"raid.stripe.kb", "int", &scfg.raidStripeKB, nil, nil, "64"},
	{"iscsi.enable", "bool", nil, nil, &scfg.iscsiEnable, "on"},
	{"iscsi.initiator_name", "str", nil, &scfg.iscsiInitiator, nil, "iqn.2013-01.com.example:storage"},
	{"iscsi.portal.ip", "str", nil, &scfg.iscsiPortalIP, nil, "10.0.0.2"},
	{"iscsi.port", "int", &scfg.iscsiPort, nil, nil, "3260"},
	{"iscsi.queue_len", "int", &scfg.iscsiQueueLen, nil, nil, "32"},
	{"nfs.enable", "bool", nil, nil, &scfg.nfsEnable, "on"},
	{"nfs.export.dir", "str", nil, &scfg.nfsExportDir, nil, "/vol/vol0/home"},
	{"nfs.max_connections", "int", &scfg.nfsMaxConns, nil, nil, "1024"},
	{"nfs.tcp.window", "int", &scfg.nfsTCPWindow, nil, nil, "65536"},
	{"cifs.enable", "bool", nil, nil, &scfg.cifsEnable, "off"},
	{"cifs.share.dir", "str", nil, &scfg.cifsShareDir, nil, "/vol/vol0/share"},
	{"cifs.max_mpx", "int", &scfg.cifsMaxMpx, nil, nil, "50"},
	{"http.enable", "bool", nil, nil, &scfg.httpEnable, "off"},
	{"http.port", "int", &scfg.httpPort, nil, nil, "8080"},
	{"http.admin.dir", "str", nil, &scfg.httpAdminDir, nil, "/vol/vol0/admin"},
	{"pcs.size", "int", &scfg.pcsSize, nil, nil, "1"},
	{"wafl.cache.mb", "int", &scfg.waflCacheMB, nil, nil, "256"},
	{"log.buffer.kb", "int", &scfg.logBufferKB, nil, nil, "64"},
	{"readahead.kb", "int", &scfg.readAheadKB, nil, nil, "128"},
	{"journal.size", "int", &scfg.journalSize, nil, nil, "1048576"},
	{"nvram.size", "int", &scfg.nvramSize, nil, nil, "524288"},
	{"cleanup.msec", "int", &scfg.cleanupMsec, nil, nil, "200"},
	{"flush.msec", "int", &scfg.flushMsec, nil, nil, "500"},
	{"takeover.sec", "int", &scfg.takeoverSec, nil, nil, "180"},
	{"giveback.sec", "int", &scfg.givebackSec, nil, nil, "600"},
	{"scrub.sec", "int", &scfg.scrubSec, nil, nil, "3600"},
	{"status.sec", "int", &scfg.statusSec, nil, nil, "10"},
	{"autosupport.min", "int", &scfg.autosupportMin, nil, nil, "15"},
	{"weekly.hour", "int", &scfg.weeklyHour, nil, nil, "2"},
	{"retry.usec", "int", &scfg.retryUsec, nil, nil, "100"},
	{"poll.usec", "int", &scfg.pollUsec, nil, nil, "250"},
	{"admin.user", "str", nil, &scfg.adminUser, nil, "root"},
	{"admin.group", "str", nil, &scfg.adminGroup, nil, "wheel"},
	{"console.log", "str", nil, &scfg.consoleLog, nil, "/vol/log/console.log"},
}

// atoi parses integers the legacy way: errors yield 0 silently.
func atoi(s string) int64 {
	var n int64
	neg := false
	i := 0
	if len(s) > 0 && s[0] == '-' {
		neg = true
		i = 1
	}
	for ; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		return -n
	}
	return n
}

// applyOptions loads raw values through the option table; numeric options
// go through the legacy atoi (28 unsafe-transformation parameters in the
// paper's Table 8 row).
func applyOptions(vals map[string]string) {
	for i := range saOptions {
		o := &saOptions[i]
		raw, ok := vals[o.name]
		if !ok {
			raw = o.def
		}
		switch o.kind {
		case "int":
			*o.iptr = atoi(raw)
		case "str":
			*o.sptr = raw
		case "bool":
			*o.bptr = raw == "on"
		}
	}
}

// applianceState is the running appliance.
type applianceState struct {
	conf       *saConfig
	luns       map[string]bool
	logSizeCap int32
}

// startAppliance boots the storage OS. It never exits on bad values: it
// clamps, ignores, and keeps serving (Storage-A's Table 5 row has zero
// crashes and zero early terminations).
func startAppliance(env *sim.Env, c *saConfig) (*applianceState, error) {
	st := &applianceState{conf: c, luns: map[string]bool{}}

	// log.filesize arrives as a string and becomes a 32-bit integer
	// (Figure 3a); an overflowing value silently wraps (Figure 5a).
	st.logSizeCap = int32(atoi(c.logFilesize))

	if c.snapReserve < 0 {
		c.snapReserve = 0
	} else if c.snapReserve > 100 {
		c.snapReserve = 100
	}
	if c.raidStripeKB < 4 {
		c.raidStripeKB = 4
	} else if c.raidStripeKB > 256 {
		c.raidStripeKB = 256
	}

	// Sizes in four different units (Table 7 inconsistency): pcs.size is
	// GB, wafl.cache.mb is MB, log.buffer.kb is KB, journal/nvram are
	// bytes.
	allocBuffer(c.pcsSize * 1073741824)
	allocPool(c.waflCacheMB * 1048576)
	allocPool(c.logBufferKB * 1024)
	allocPool(c.readAheadKB * 1024)
	allocPool(c.journalSize)
	allocPool(c.nvramSize)

	// Timers in five different units.
	sleepMillis(c.cleanupMsec)
	sleepMillis(c.flushMsec)
	sleepSeconds(c.takeoverSec)
	sleepSeconds(c.givebackSec)
	sleepSeconds(c.scrubSec)
	sleepSeconds(c.statusSec)
	sleepSeconds(c.autosupportMin * 60)
	sleepSeconds(c.weeklyHour * 3600)
	sleepMicros(c.retryUsec)
	sleepMicros(c.pollUsec)

	if !env.FS.IsDir(c.logDir) {
		_ = env.FS.MkdirAll(c.logDir)
	}
	_ = env.FS.WriteFile(c.consoleLog, nil, 6)

	if c.iscsiEnable {
		// Initiator names must be all lowercase (the proprietary
		// constraint behind Figure 1); an invalid name silently fails
		// to register the LUN — the share is simply "not recognized".
		if validateInitiator(c.iscsiInitiator) {
			st.luns[c.iscsiInitiator] = true
		}
		if c.iscsiQueueLen < 1 {
			c.iscsiQueueLen = 1
		} else if c.iscsiQueueLen > 256 {
			c.iscsiQueueLen = 256
		}
		_ = env.Net.Bind("tcp", int(c.iscsiPort), "storagea")
	}
	if c.nfsEnable {
		if !env.FS.IsDir(c.nfsExportDir) {
			// Export silently dropped: clients will see failures with
			// no server-side message.
			_ = c.nfsExportDir
		} else {
			st.luns["nfs:"+c.nfsExportDir] = true
		}
		if c.nfsMaxConns < 16 {
			c.nfsMaxConns = 16
		}
		allocPool(c.nfsTCPWindow)
	}
	if c.cifsEnable {
		if env.FS.IsDir(c.cifsShareDir) {
			st.luns["cifs:"+c.cifsShareDir] = true
		}
		if c.cifsMaxMpx < 2 {
			c.cifsMaxMpx = 2
		}
	}
	if c.httpEnable {
		_ = env.Net.Bind("tcp", int(c.httpPort), "storagea")
		if !env.FS.IsDir(c.httpAdminDir) {
			_ = c.httpAdminDir
		}
	}
	lookupUser(c.adminUser)
	lookupGroup(c.adminGroup)
	return st, nil
}

// rotateLog appends to the appliance log, rotating at log.filesize.
func (st *applianceState) rotateLog(env *sim.Env, entry string) bool {
	if st.logSizeCap <= 0 {
		// A wrapped or unparsable size disables rotation silently.
		return false
	}
	_ = env.FS.Append(st.conf.consoleLog, []byte(entry+"\n"))
	return true
}

// discoverLUN models an iSCSI discovery request from an initiator.
func (st *applianceState) discoverLUN(initiator string) bool {
	return st.luns[initiator]
}

// --- proprietary library (imported into SPEX's knowledge base via the
// paper's customization hook) ---

// validateInitiator enforces the iSCSI initiator naming rule: lowercase
// letters, digits, and the characters ".-:" only.
func validateInitiator(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		lower := r >= 'a' && r <= 'z'
		digit := r >= '0' && r <= '9'
		if !lower && !digit && !strings.ContainsRune(".-:", r) {
			return false
		}
	}
	return true
}

func lookupUser(name string) bool  { return name == "root" || name == "admin" }
func lookupGroup(name string) bool { return name == "wheel" || name == "staff" }

// --- runtime helpers ---

func allocBuffer(n int64) []byte {
	if n < 0 {
		n = 0 // the appliance clamps rather than crashing
	}
	capped := n
	if capped > 1<<20 {
		capped = 1 << 20
	}
	return make([]byte, capped)
}

func allocPool(n int64) {
	if n < 0 {
		return
	}
}

func sleepSeconds(n int64) {
	if n <= 0 {
		return
	}
}

func sleepMillis(n int64) {
	if n <= 0 {
		return
	}
}

func sleepMicros(n int64) {
	if n <= 0 {
		return
	}
}
