package storagea

import (
	"testing"

	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/designcheck"
	"spex/internal/inject"
	"spex/internal/sim"
	"spex/internal/spex"
)

func TestDefaultConfigBoots(t *testing.T) {
	s := New()
	env := sim.NewEnv()
	s.SetupEnv(env)
	cfg, err := conffile.Parse(s.DefaultConfig(), s.Syntax())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Start(env, cfg)
	if err != nil {
		t.Fatalf("default config failed to boot: %v\nlog:\n%s", err, env.Log.Dump())
	}
	defer inst.Stop()
	for _, ft := range s.Tests() {
		if err := sim.RunTest(ft, env, inst); err != nil {
			t.Errorf("test %s failed on defaults: %v", ft.Name, err)
		}
	}
}

func TestProprietaryInitiatorConstraint(t *testing.T) {
	res, err := spex.InferSystem(New())
	if err != nil {
		t.Fatal(err)
	}
	var found *constraint.Constraint
	for _, c := range res.Set.ByParam("iscsi.initiator_name") {
		if c.Kind == constraint.KindSemanticType && c.Semantic == constraint.SemInitiator {
			found = c
		}
	}
	if found == nil {
		t.Error("proprietary INITIATOR semantic type not inferred through the imported API")
	}
	// log.filesize: string transformed to a 32-bit integer (Figure 3a).
	var basic *constraint.Constraint
	for _, c := range res.Set.ByParam("log.filesize") {
		if c.Kind == constraint.KindBasicType {
			basic = c
		}
	}
	if basic == nil || basic.Basic != constraint.BasicInt32 {
		t.Errorf("log.filesize basic type = %v, want int32 (first cast)", basic)
	}
}

func TestUnitZooAndDeps(t *testing.T) {
	res, err := spex.InferSystem(New())
	if err != nil {
		t.Fatal(err)
	}
	audit := designcheck.Run(res)
	// Storage-A mixes B/KB/MB/GB sizes and us/ms/s/m/h times (Table 7).
	if len(audit.SizeUnits) < 4 {
		t.Errorf("size units seen = %v, want >= 4 distinct", audit.SizeUnits)
	}
	if len(audit.TimeUnits) < 4 {
		t.Errorf("time units seen = %v, want >= 4 distinct", audit.TimeUnits)
	}
	if audit.UnsafeTransform < 10 {
		t.Errorf("unsafe transform params = %d, want >= 10 (legacy atoi)", audit.UnsafeTransform)
	}
	deps := res.Set.ByKind(constraint.KindControlDep)
	if len(deps) < 6 {
		t.Errorf("control dependencies = %d, want >= 6 (protocol groups)", len(deps))
	}
}

func TestCampaignShapeNoCrashes(t *testing.T) {
	res, err := spex.InferSystem(New())
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := conffile.Parse(New().DefaultConfig(), conffile.SyntaxEquals)
	if err != nil {
		t.Fatal(err)
	}
	ms := confgen.NewRegistry().Generate(res.Set, tmpl)
	rep, err := inject.Run(New(), ms, inject.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	counts := rep.CountByReaction()
	t.Logf("campaign reactions: %v (total %d)", counts, len(rep.Outcomes))
	// Storage-A's Table 5 row: zero crashes, zero early terminations;
	// silent violation and silent ignorance dominate.
	if counts[inject.ReactionCrash] != 0 {
		t.Errorf("crashes = %d, want 0 (the appliance never dies on bad config)", counts[inject.ReactionCrash])
	}
	if counts[inject.ReactionEarlyTerm] != 0 {
		t.Errorf("early terminations = %d, want 0", counts[inject.ReactionEarlyTerm])
	}
	if counts[inject.ReactionSilentViolation] < 5 {
		t.Errorf("silent violations = %d, want >= 5", counts[inject.ReactionSilentViolation])
	}
	if counts[inject.ReactionSilentIgnorance] < 5 {
		t.Errorf("silent ignorance = %d, want >= 5 (dominant in the paper's row)", counts[inject.ReactionSilentIgnorance])
	}
	if counts[inject.ReactionFuncFailure] == 0 {
		t.Error("no functional failures (expected: uppercase initiator, disabled rotation)")
	}
}
