package proxyd

import (
	_ "embed"
	"fmt"
	"strconv"
	"sync"

	"spex/internal/conffile"
	"spex/internal/constraint"
	"spex/internal/sim"
)

//go:embed corpus.go
var corpusSource string

// System is the proxyd target.
type System struct{}

// New returns the proxyd target system.
func New() *System { return &System{} }

func (s *System) Name() string        { return "proxyd" }
func (s *System) Description() string { return "Squid-like caching proxy (comparison mapping)" }

func (s *System) Syntax() conffile.Syntax { return conffile.SyntaxSpace }

func (s *System) Sources() map[string]string {
	return map[string]string{"corpus.go": corpusSource}
}

// Annotations: the parser function and its name/value arguments
// (comparison-based mapping, Figure 4c). Squid needed only 2 lines in the
// paper.
func (s *System) Annotations() string {
	return `{ @PARSER = loadProxyConfig
  @PAR = $key  @VAR = $value }`
}

func (s *System) DefaultConfig() string {
	return `# proxyd configuration
http_port 3128
icp_port 3130
connect_timeout 60
read_timeout 300
request_timeout 30
shutdown_lifetime 30
poll_interval_ms 100
idle_poll_ms 50
cache_mem 262144
maximum_object_size 4194304
max_filedescriptors 1024
workers 4
cache_swap_low 90
cache_swap_high 95
cache_dir /var/spool/proxyd
coredump_dir /var/spool/proxyd/core
access_log /var/log/proxyd/access.log
cache_log /var/log/proxyd/cache.log
pid_filename /var/run/proxyd.pid
visible_hostname proxy.example.com
error_directory /usr/share/proxyd/errors
memory_replacement_policy lru
cache_replacement_policy lru
forwarded_for on
query_icmp on
half_closed_clients on
client_dst_passthru on
detect_broken_pconn off
balance_on_multiple_ip off
pipeline_prefetch off
memory_cache_shared off
quick_abort on
offline_mode off
log_icp_queries on
buffered_logs off
check_hostnames on
httpd_suppress_version_string off
via on
icp_hit_stale off
`
}

func (s *System) SetupEnv(env *sim.Env) {
	_ = env.FS.MkdirAll("/var/spool/proxyd")
	_ = env.FS.WriteFile("/var/spool/proxyd/swap.state", []byte("00"), 6)
	_ = env.FS.MkdirAll("/usr/share/proxyd/errors")
	_ = env.FS.MkdirAll("/var/log/proxyd")
}

type instance struct {
	st        *proxyState
	effective map[string]string
	env       *sim.Env
}

func (i *instance) Effective(param string) (string, bool) {
	v, ok := i.effective[param]
	return v, ok
}

func (i *instance) Stop() { i.env.Net.ReleaseOwner("proxyd") }

// bootMu serializes the config-parse phase: the corpus models Squid's
// real global Config, so concurrent boots must not interleave until the
// parsed values are copied out of the global.
var bootMu sync.Mutex

func (s *System) Start(env *sim.Env, cfg *conffile.File) (sim.Instance, error) {
	c := loadConfig(cfg)
	st, err := startProxy(env, c)
	if err != nil {
		return nil, err
	}
	return &instance{st: st, effective: snapshot(c), env: env}, nil
}

// loadConfig parses the directives through the global config under
// bootMu and hands back a private copy; the boot and the functional
// tests operate on the copy.
func loadConfig(cfg *conffile.File) *proxyConfig {
	bootMu.Lock()
	defer bootMu.Unlock()
	*pcfg = proxyConfig{}
	for _, ln := range cfg.Lines {
		if ln.Kind == conffile.LineDirective {
			loadProxyConfig(ln.Key, ln.Value)
		}
	}
	c := *pcfg
	return &c
}

func snapshot(c *proxyConfig) map[string]string {
	m := map[string]string{}
	ib := func(n string, v int64) { m[n] = strconv.FormatInt(v, 10) }
	sb := func(n, v string) { m[n] = v }
	bb := func(n string, v bool) {
		if v {
			m[n] = "on"
		} else {
			m[n] = "off"
		}
	}
	ib("http_port", c.httpPort)
	ib("icp_port", c.icpPort)
	ib("connect_timeout", c.connectTimeout)
	ib("read_timeout", c.readTimeout)
	ib("request_timeout", c.requestTimeout)
	ib("shutdown_lifetime", c.shutdownLife)
	ib("poll_interval_ms", c.pollIntervalMs)
	ib("idle_poll_ms", c.idlePollMs)
	ib("cache_mem", c.cacheMem)
	ib("maximum_object_size", c.maxObjectSize)
	ib("max_filedescriptors", c.maxFileDescs)
	ib("workers", c.workers)
	ib("cache_swap_low", c.cacheSwapLow)
	ib("cache_swap_high", c.cacheSwapHigh)
	sb("cache_dir", c.cacheDir)
	sb("coredump_dir", c.coredumpDir)
	sb("access_log", c.accessLog)
	sb("cache_log", c.cacheLog)
	sb("pid_filename", c.pidFilename)
	sb("visible_hostname", c.visibleHost)
	sb("error_directory", c.errorDir)
	sb("memory_replacement_policy", c.memPolicy)
	sb("cache_replacement_policy", c.cachePolicy)
	sb("forwarded_for", c.forwardedFor)
	bb("query_icmp", c.queryICMP)
	bb("half_closed_clients", c.halfClosed)
	bb("client_dst_passthru", c.dstPassthru)
	bb("detect_broken_pconn", c.detectBrokenPcon)
	bb("balance_on_multiple_ip", c.balanceIPs)
	bb("pipeline_prefetch", c.pipelinePrefetch)
	bb("memory_cache_shared", c.memCacheShared)
	bb("quick_abort", c.quickAbort)
	bb("offline_mode", c.offlineMode)
	bb("log_icp_queries", c.logICPQueries)
	bb("buffered_logs", c.bufferedLogs)
	bb("check_hostnames", c.checkHostnames)
	bb("httpd_suppress_version_string", c.suppressVersion)
	bb("via", c.viaHeader)
	bb("icp_hit_stale", c.icpHitStale)
	return m
}

func (s *System) Tests() []sim.FuncTest {
	return []sim.FuncTest{
		{
			Name: "listen", Weight: 1,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if !env.Net.Occupied("tcp", int(i.st.conf.httpPort)) {
					return fmt.Errorf("proxy is not listening on its HTTP port")
				}
				return nil
			},
		},
		{
			Name: "icp-listen", Weight: 2,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if i.st.conf.icpPort > 0 && !env.Net.Occupied("udp", int(i.st.conf.icpPort)) {
					return fmt.Errorf("ICP port configured but not bound")
				}
				return nil
			},
		},
		{
			Name: "http-fetch", Weight: 3,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if _, ok := i.st.fetch(env, "http://example.com/index.html"); !ok {
					return fmt.Errorf("proxy failed to fetch a cacheable object")
				}
				return nil
			},
		},
		{
			Name: "cache-hit", Weight: 4,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				i.st.fetch(env, "http://example.com/a")
				if _, ok := i.st.fetch(env, "http://example.com/a"); !ok {
					return fmt.Errorf("cache miss on a just-cached object")
				}
				return nil
			},
		},
		{
			Name: "replacement-policy", Weight: 2,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				switch i.st.conf.memPolicy {
				case "lru", "heap":
					return nil
				}
				return fmt.Errorf("invalid memory replacement policy %q", i.st.conf.memPolicy)
			},
		},
	}
}

func (s *System) Manual() map[string]sim.ManualEntry {
	doc := func(prose string, kinds ...constraint.Kind) sim.ManualEntry {
		return sim.ManualEntry{Prose: prose, Documented: kinds}
	}
	return map[string]sim.ManualEntry{
		"http_port":        doc("Port for HTTP client connections.", constraint.KindBasicType, constraint.KindSemanticType),
		"icp_port":         doc("Port for ICP queries; 0 disables ICP.", constraint.KindBasicType, constraint.KindSemanticType),
		"cache_dir":        doc("Top-level cache directory.", constraint.KindBasicType, constraint.KindSemanticType),
		"cache_mem":        doc("Memory cache size (KB).", constraint.KindBasicType, constraint.KindSemanticType),
		"forwarded_for":    doc("on, off, transparent or delete.", constraint.KindBasicType, constraint.KindRange),
		"cache_swap_low":   doc("Low watermark percentage.", constraint.KindBasicType),
		"cache_swap_high":  doc("High watermark percentage.", constraint.KindBasicType),
		"visible_hostname": doc("Hostname advertised in errors.", constraint.KindBasicType, constraint.KindSemanticType),
	}
}

func (s *System) GroundTruth() *constraint.Set {
	gt := constraint.NewSet("proxyd")
	b := func(p string, t constraint.BasicType) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindBasicType, Param: p, Basic: t})
	}
	sem := func(p string, t constraint.SemanticType, u constraint.Unit) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindSemanticType, Param: p, Semantic: t, Unit: u})
	}
	for _, p := range []string{
		"http_port", "icp_port", "connect_timeout", "read_timeout",
		"request_timeout", "shutdown_lifetime", "poll_interval_ms",
		"idle_poll_ms", "cache_mem", "maximum_object_size",
		"max_filedescriptors", "workers", "cache_swap_low", "cache_swap_high",
	} {
		b(p, constraint.BasicInt64)
	}
	for _, p := range []string{
		"cache_dir", "coredump_dir", "access_log", "cache_log",
		"pid_filename", "visible_hostname", "error_directory",
		"memory_replacement_policy", "cache_replacement_policy", "forwarded_for",
	} {
		b(p, constraint.BasicString)
	}
	bools := []string{
		"query_icmp", "half_closed_clients", "client_dst_passthru",
		"detect_broken_pconn", "balance_on_multiple_ip", "pipeline_prefetch",
		"memory_cache_shared", "quick_abort", "offline_mode",
		"log_icp_queries", "buffered_logs", "check_hostnames",
		"httpd_suppress_version_string", "via", "icp_hit_stale",
	}
	for _, p := range bools {
		b(p, constraint.BasicBool)
		gt.Add(&constraint.Constraint{Kind: constraint.KindRange, Param: p,
			Enum: []constraint.EnumValue{{Value: "on", Valid: true}, {Value: "off", Valid: true}}})
	}
	sem("http_port", constraint.SemPort, constraint.UnitNone)
	sem("icp_port", constraint.SemPort, constraint.UnitNone)
	sem("connect_timeout", constraint.SemTimeout, constraint.UnitSecond)
	sem("read_timeout", constraint.SemTimeout, constraint.UnitSecond)
	sem("request_timeout", constraint.SemTimeout, constraint.UnitSecond)
	sem("shutdown_lifetime", constraint.SemTimeout, constraint.UnitSecond)
	sem("poll_interval_ms", constraint.SemTimeout, constraint.UnitMillisecond)
	sem("idle_poll_ms", constraint.SemTimeout, constraint.UnitMillisecond)
	sem("cache_mem", constraint.SemSize, constraint.UnitKB)
	sem("maximum_object_size", constraint.SemSize, constraint.UnitByte)
	sem("workers", constraint.SemCount, constraint.UnitNone)
	sem("cache_dir", constraint.SemDirectory, constraint.UnitNone)
	sem("coredump_dir", constraint.SemDirectory, constraint.UnitNone)
	sem("error_directory", constraint.SemDirectory, constraint.UnitNone)
	sem("access_log", constraint.SemFile, constraint.UnitNone)
	sem("cache_log", constraint.SemFile, constraint.UnitNone)
	sem("pid_filename", constraint.SemFile, constraint.UnitNone)
	sem("visible_hostname", constraint.SemHost, constraint.UnitNone)

	rng := func(p string, min, max int64) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindRange, Param: p,
			Intervals: []constraint.Interval{{Min: min, Max: max, HasMin: true, HasMax: true, Valid: true}}})
	}
	rng("cache_swap_low", 0, 100)
	rng("cache_swap_high", 0, 100)
	rng("max_filedescriptors", 64, 1048576)
	gt.Add(&constraint.Constraint{Kind: constraint.KindRange, Param: "memory_replacement_policy",
		Enum: []constraint.EnumValue{{Value: "lru", Valid: true}, {Value: "heap", Valid: true}}})
	gt.Add(&constraint.Constraint{Kind: constraint.KindRange, Param: "cache_replacement_policy",
		Enum: []constraint.EnumValue{{Value: "lru", Valid: true}, {Value: "heap", Valid: true}}})
	gt.Add(&constraint.Constraint{Kind: constraint.KindRange, Param: "forwarded_for",
		Enum: []constraint.EnumValue{
			{Value: "on", Valid: true}, {Value: "off", Valid: true},
			{Value: "transparent", Valid: true}, {Value: "delete", Valid: true}}})

	gt.Add(&constraint.Constraint{Kind: constraint.KindValueRel,
		Param: "cache_swap_low", Rel: constraint.OpLE, Peer: "cache_swap_high"})
	gt.Add(&constraint.Constraint{Kind: constraint.KindControlDep,
		Param: "query_icmp", Peer: "icp_port", Cond: constraint.OpGT, Value: "0"})
	gt.Add(&constraint.Constraint{Kind: constraint.KindControlDep,
		Param: "access_log", Peer: "offline_mode", Cond: constraint.OpEQ, Value: "false"})
	return gt
}

var _ sim.System = (*System)(nil)
