package proxyd

import (
	"testing"

	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/designcheck"
	"spex/internal/inject"
	"spex/internal/sim"
	"spex/internal/spex"
)

func TestDefaultConfigBoots(t *testing.T) {
	s := New()
	env := sim.NewEnv()
	s.SetupEnv(env)
	cfg, err := conffile.Parse(s.DefaultConfig(), s.Syntax())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Start(env, cfg)
	if err != nil {
		t.Fatalf("default config failed to boot: %v\nlog:\n%s", err, env.Log.Dump())
	}
	defer inst.Stop()
	for _, ft := range s.Tests() {
		if err := sim.RunTest(ft, env, inst); err != nil {
			t.Errorf("test %s failed on defaults: %v", ft.Name, err)
		}
	}
}

func TestComparisonMappingAndOverruling(t *testing.T) {
	res, err := spex.InferSystem(New())
	if err != nil {
		t.Fatal(err)
	}
	if res.Convention != "comparison" {
		t.Errorf("convention = %q, want comparison", res.Convention)
	}
	if res.Params != 39 {
		t.Errorf("mapped %d params, want 39", res.Params)
	}
	// All boolean directives share Squid's on-or-silently-off parsing:
	// silent overruling must be flagged for them (Figure 6c; 73 params
	// in the paper's Squid row).
	audit := designcheck.Run(res)
	if audit.SilentOverruling < 15 {
		t.Errorf("silent-overruling params = %d, want >= 15 (all booleans)", audit.SilentOverruling)
	}
	// Squid parses numbers with unsafe atoi (115 params in the paper).
	if audit.UnsafeTransform < 10 {
		t.Errorf("unsafe-transform params = %d, want >= 10", audit.UnsafeTransform)
	}
	// Squid is the case-sensitive-dominant system (Table 6).
	if audit.CaseSensitive <= audit.CaseInsensitive {
		t.Errorf("case split sensitive=%d insensitive=%d, want sensitive-dominant",
			audit.CaseSensitive, audit.CaseInsensitive)
	}
}

func TestValueRelationshipInverted(t *testing.T) {
	res, err := spex.InferSystem(New())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Set.ByKind(constraint.KindValueRel) {
		if (c.Param == "cache_swap_low" && c.Peer == "cache_swap_high") ||
			(c.Param == "cache_swap_high" && c.Peer == "cache_swap_low") {
			found = true
		}
	}
	if !found {
		t.Error("swap watermark value relationship not inferred")
	}
}

func TestCampaignShape(t *testing.T) {
	res, err := spex.InferSystem(New())
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := conffile.Parse(New().DefaultConfig(), conffile.SyntaxSpace)
	if err != nil {
		t.Fatal(err)
	}
	ms := confgen.NewRegistry().Generate(res.Set, tmpl)
	rep, err := inject.Run(New(), ms, inject.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	counts := rep.CountByReaction()
	t.Logf("campaign reactions: %v (total %d, locations %d)", counts, len(rep.Outcomes), rep.UniqueLocations())
	if counts[inject.ReactionSilentViolation] < 15 {
		t.Errorf("silent violations = %d, want >= 15 (Squid has the most in Table 5)",
			counts[inject.ReactionSilentViolation])
	}
	if counts[inject.ReactionCrash] == 0 {
		t.Error("no crashes exposed (cache_dir, workers, negative sizes)")
	}
	if counts[inject.ReactionSilentViolation] <= counts[inject.ReactionCrash] {
		t.Error("silent violations should dominate crashes (Table 5 Squid row)")
	}
}
