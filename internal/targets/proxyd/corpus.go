// Package proxyd is a Squid-like caching Web proxy simulation. Its
// configuration parsing uses comparison-based mapping (Figure 4c): a parser
// function matches directive names with string comparisons. The corpus
// reproduces Squid's characteristic error-prone handling from the paper:
// boolean directives silently treat anything that is not "on" as "off"
// (Figure 6c), numeric directives are parsed with an unsafe atoi that
// ignores errors (Figure 6d), and the ICP port aborts startup with the
// misleading "FATAL: Cannot open ICP Port" message (Figure 5c).
package proxyd

import (
	"strings"

	"spex/internal/sim"
	"spex/internal/vnet"
)

// proxyConfig holds the parsed directives.
type proxyConfig struct {
	httpPort       int64
	icpPort        int64
	connectTimeout int64
	readTimeout    int64
	requestTimeout int64
	shutdownLife   int64
	pollIntervalMs int64
	idlePollMs     int64
	cacheMem       int64
	maxObjectSize  int64
	maxFileDescs   int64
	workers        int64
	cacheSwapLow   int64
	cacheSwapHigh  int64

	cacheDir     string
	coredumpDir  string
	accessLog    string
	cacheLog     string
	pidFilename  string
	visibleHost  string
	errorDir     string
	memPolicy    string
	cachePolicy  string
	forwardedFor string

	queryICMP        bool
	halfClosed       bool
	dstPassthru      bool
	detectBrokenPcon bool
	balanceIPs       bool
	pipelinePrefetch bool
	memCacheShared   bool
	quickAbort       bool
	offlineMode      bool
	logICPQueries    bool
	bufferedLogs     bool
	checkHostnames   bool
	suppressVersion  bool
	viaHeader        bool
	icpHitStale      bool
}

var pcfg = &proxyConfig{}

// atoi is Squid's unsafe numeric parsing: parse errors and overflow are
// silently ignored, yielding 0 (Figure 6d).
func atoi(s string) int64 {
	var n int64
	neg := false
	i := 0
	if len(s) > 0 && s[0] == '-' {
		neg = true
		i = 1
	}
	for ; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0 // unexpected character: undefined result
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		return -n
	}
	return n
}

// setBool implements Squid's boolean parsing: anything that is not "on" is
// silently treated as "off", even "yes" or "enable" (Figure 6c).
func setBool(dst *bool, raw string) {
	if raw == "on" {
		*dst = true
	} else {
		*dst = false
	}
}

// loadProxyConfig dispatches one directive (comparison-based mapping).
func loadProxyConfig(key string, value string) {
	if key == "http_port" {
		pcfg.httpPort = atoi(value)
	} else if key == "icp_port" {
		pcfg.icpPort = atoi(value)
	} else if key == "connect_timeout" {
		pcfg.connectTimeout = atoi(value)
	} else if key == "read_timeout" {
		pcfg.readTimeout = atoi(value)
	} else if key == "request_timeout" {
		pcfg.requestTimeout = atoi(value)
	} else if key == "shutdown_lifetime" {
		pcfg.shutdownLife = atoi(value)
	} else if key == "poll_interval_ms" {
		pcfg.pollIntervalMs = atoi(value)
	} else if key == "idle_poll_ms" {
		pcfg.idlePollMs = atoi(value)
	} else if key == "cache_mem" {
		pcfg.cacheMem = atoi(value)
	} else if key == "maximum_object_size" {
		pcfg.maxObjectSize = atoi(value)
	} else if key == "max_filedescriptors" {
		pcfg.maxFileDescs = atoi(value)
	} else if key == "workers" {
		pcfg.workers = atoi(value)
	} else if key == "cache_swap_low" {
		pcfg.cacheSwapLow = atoi(value)
	} else if key == "cache_swap_high" {
		pcfg.cacheSwapHigh = atoi(value)
	} else if key == "cache_dir" {
		pcfg.cacheDir = value
	} else if key == "coredump_dir" {
		pcfg.coredumpDir = value
	} else if key == "access_log" {
		pcfg.accessLog = value
	} else if key == "cache_log" {
		pcfg.cacheLog = value
	} else if key == "pid_filename" {
		pcfg.pidFilename = value
	} else if key == "visible_hostname" {
		pcfg.visibleHost = value
	} else if key == "error_directory" {
		pcfg.errorDir = value
	} else if key == "memory_replacement_policy" {
		pcfg.memPolicy = value
	} else if key == "cache_replacement_policy" {
		pcfg.cachePolicy = value
	} else if key == "forwarded_for" {
		pcfg.forwardedFor = value
	} else if key == "query_icmp" {
		setBool(&pcfg.queryICMP, value)
	} else if key == "half_closed_clients" {
		setBool(&pcfg.halfClosed, value)
	} else if key == "client_dst_passthru" {
		setBool(&pcfg.dstPassthru, value)
	} else if key == "detect_broken_pconn" {
		setBool(&pcfg.detectBrokenPcon, value)
	} else if key == "balance_on_multiple_ip" {
		setBool(&pcfg.balanceIPs, value)
	} else if key == "pipeline_prefetch" {
		setBool(&pcfg.pipelinePrefetch, value)
	} else if key == "memory_cache_shared" {
		setBool(&pcfg.memCacheShared, value)
	} else if key == "quick_abort" {
		setBool(&pcfg.quickAbort, value)
	} else if key == "offline_mode" {
		setBool(&pcfg.offlineMode, value)
	} else if key == "log_icp_queries" {
		setBool(&pcfg.logICPQueries, value)
	} else if key == "buffered_logs" {
		setBool(&pcfg.bufferedLogs, value)
	} else if key == "check_hostnames" {
		setBool(&pcfg.checkHostnames, value)
	} else if key == "httpd_suppress_version_string" {
		setBool(&pcfg.suppressVersion, value)
	} else if key == "via" {
		setBool(&pcfg.viaHeader, value)
	} else if key == "icp_hit_stale" {
		setBool(&pcfg.icpHitStale, value)
	}
}

// proxyState is the running proxy.
type proxyState struct {
	conf  *proxyConfig
	cache map[string]string
}

// startProxy boots the proxy.
func startProxy(env *sim.Env, c *proxyConfig) (*proxyState, error) {
	// Swap watermarks: out-of-range values are silently clamped.
	if c.cacheSwapLow < 0 {
		c.cacheSwapLow = 0
	} else if c.cacheSwapLow > 100 {
		c.cacheSwapLow = 100
	}
	if c.cacheSwapHigh < 0 {
		c.cacheSwapHigh = 0
	} else if c.cacheSwapHigh > 100 {
		c.cacheSwapHigh = 100
	}
	// The watermark ordering is checked and properly rejected.
	if c.cacheSwapLow > c.cacheSwapHigh {
		env.Log.Errorf("FATAL: cache_swap_low must not exceed cache_swap_high")
		return nil, &sim.ExitError{Status: 1, Reason: "swap watermarks inverted"}
	}
	if c.maxFileDescs < 64 {
		c.maxFileDescs = 64
	} else if c.maxFileDescs > 1048576 {
		c.maxFileDescs = 1048576
	}

	// The cache directory index is read assuming it exists: a missing or
	// unreadable directory crashes at startup (Squid's assertion-failure
	// behaviour).
	entries, err := env.FS.List(c.cacheDir)
	if err != nil {
		panic("assertion failed: storeDirOpenSwapLogs: " + err.Error())
	}
	_ = entries

	st := &proxyState{conf: c, cache: map[string]string{}}
	allocBuffer(c.cacheMem * 1024) // cache_mem is configured in KB
	allocBuffer(c.maxObjectSize)   // bytes

	spawnWorkers(c.workers)

	if !vnet.ValidHost(c.visibleHost) {
		env.Log.Errorf("FATAL: visible_hostname '%s' is not a valid host name", c.visibleHost)
		return nil, &sim.ExitError{Status: 1, Reason: "bad visible_hostname"}
	}
	if err := env.Net.Bind("tcp", int(c.httpPort), "proxyd"); err != nil {
		env.Log.Fatalf("FATAL: Cannot open HTTP Port")
		return nil, &sim.ExitError{Status: 1, Reason: "http bind failed"}
	}
	if c.icpPort > 0 {
		// The misleading Figure 5(c) message: no parameter name.
		if err := env.Net.Bind("udp", int(c.icpPort), "proxyd"); err != nil {
			env.Log.Fatalf("FATAL: Cannot open ICP Port")
			return nil, &sim.ExitError{Status: 1, Reason: "icp bind failed"}
		}
		if c.queryICMP {
			_ = c.logICPQueries // ICP options take effect only with icp_port set
		}
	}

	// Replacement policies: unknown values silently fall back to lru
	// (case-sensitive matching).
	if c.memPolicy == "lru" {
		c.memPolicy = "lru"
	} else if c.memPolicy == "heap" {
		c.memPolicy = "heap"
	} else {
		c.memPolicy = "lru"
	}
	if c.cachePolicy == "lru" {
		c.cachePolicy = "lru"
	} else if c.cachePolicy == "heap" {
		c.cachePolicy = "heap"
	} else {
		c.cachePolicy = "lru"
	}
	// forwarded_for accepts a richer enum, case-insensitively, and
	// rejects unknown values with a pinpointing message.
	if strings.EqualFold(c.forwardedFor, "on") {
		c.forwardedFor = "on"
	} else if strings.EqualFold(c.forwardedFor, "off") {
		c.forwardedFor = "off"
	} else if strings.EqualFold(c.forwardedFor, "transparent") {
		c.forwardedFor = "transparent"
	} else if strings.EqualFold(c.forwardedFor, "delete") {
		c.forwardedFor = "delete"
	} else {
		env.Log.Errorf("FATAL: invalid forwarded_for setting '%s'", c.forwardedFor)
		return nil, &sim.ExitError{Status: 1, Reason: "bad forwarded_for"}
	}

	_ = env.FS.WriteFile(c.accessLog, nil, 6)
	_ = env.FS.WriteFile(c.cacheLog, nil, 6)
	_ = env.FS.WriteFile(c.pidFilename, []byte("1"), 6)
	if !env.FS.IsDir(c.errorDir) {
		env.Log.Warnf("WARNING: error_directory '%s' does not exist", c.errorDir)
	}
	if !env.FS.IsDir(c.coredumpDir) {
		_ = env.FS.MkdirAll(c.coredumpDir)
	}

	sleepSeconds(c.connectTimeout)
	sleepSeconds(c.readTimeout)
	sleepSeconds(c.requestTimeout)
	sleepSeconds(c.shutdownLife)
	sleepMillis(c.pollIntervalMs)
	sleepMillis(c.idlePollMs)
	return st, nil
}

// fetch serves one proxied request through the cache.
func (st *proxyState) fetch(env *sim.Env, url string) (string, bool) {
	if v, ok := st.cache[url]; ok {
		return v, true
	}
	if st.conf.offlineMode {
		return "", false
	}
	body := "origin:" + url
	st.cache[url] = body
	_ = env.FS.Append(st.conf.accessLog, []byte(url+"\n"))
	return body, true
}

// --- runtime helpers (known APIs with real local implementations) ---

func allocBuffer(n int64) []byte {
	if n < 0 {
		// A negative length crashes, as the real make() would.
		panic("runtime error: makeslice: len out of range")
	}
	capped := n
	if capped > 1<<20 {
		capped = 1 << 20 // simulate large allocations with a capped arena
	}
	return make([]byte, capped)
}

func spawnWorkers(n int64) int64 {
	var slots [16]int64
	for i := int64(0); i < n; i++ {
		slots[i] = i
	}
	return n
}

func sleepSeconds(n int64) {
	if n <= 0 {
		return
	}
}

func sleepMillis(n int64) {
	if n <= 0 {
		return
	}
}
