package ftpd

import (
	"testing"

	"spex/internal/conffile"
	"spex/internal/confgen"
	"spex/internal/constraint"
	"spex/internal/designcheck"
	"spex/internal/inject"
	"spex/internal/sim"
	"spex/internal/spex"
)

func TestDefaultConfigBoots(t *testing.T) {
	s := New()
	env := sim.NewEnv()
	s.SetupEnv(env)
	cfg, err := conffile.Parse(s.DefaultConfig(), s.Syntax())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Start(env, cfg)
	if err != nil {
		t.Fatalf("default config failed to boot: %v\nlog:\n%s", err, env.Log.Dump())
	}
	defer inst.Stop()
	for _, ft := range s.Tests() {
		if err := sim.RunTest(ft, env, inst); err != nil {
			t.Errorf("test %s failed on defaults: %v", ft.Name, err)
		}
	}
}

// TestConfidenceFiltersListenPortDeps reproduces the paper's §2.2.4
// example: listen_port is used once under "if listen" and once under "if
// listen_ipv6"; each candidate dependency has confidence 0.5 and must be
// filtered at the 0.75 threshold.
func TestConfidenceFiltersListenPortDeps(t *testing.T) {
	res, err := spex.InferSystem(New())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Set.ByParam("listen_port") {
		if c.Kind == constraint.KindControlDep {
			t.Errorf("spurious dependency reported: %s (confidence %.2f)", c, c.Confidence)
		}
	}
	// The genuine dependencies must survive.
	found := false
	for _, c := range res.Set.ByParam("virtual_use_local_privs") {
		if c.Kind == constraint.KindControlDep && c.Peer == "one_process_mode" {
			found = true
		}
	}
	if !found {
		t.Error("(one_process_mode, false, =) -> virtual_use_local_privs not inferred (Figure 7e)")
	}
}

func TestYesNoEnumInsensitive(t *testing.T) {
	res, err := spex.InferSystem(New())
	if err != nil {
		t.Fatal(err)
	}
	// Every boolean flows through parseYesNo: enum {yes,no},
	// case-insensitive (VSFTP's Table 6 row is 100% insensitive).
	c := findEnum(res, "anonymous_enable")
	if c == nil {
		t.Fatal("no enum constraint for anonymous_enable")
	}
	if !c.CaseKnown || c.CaseSensitive {
		t.Errorf("anonymous_enable case: known=%v sensitive=%v, want insensitive", c.CaseKnown, c.CaseSensitive)
	}
	audit := designcheck.Run(res)
	if audit.CaseSensitive != 0 {
		t.Errorf("case-sensitive params = %d, want 0 (VSFTP row)", audit.CaseSensitive)
	}
	if audit.UnsafeTransform < 8 {
		t.Errorf("unsafe transform params = %d, want >= 8", audit.UnsafeTransform)
	}
}

func findEnum(res *spex.Result, param string) *constraint.Constraint {
	for _, c := range res.Set.ByParam(param) {
		if c.Kind == constraint.KindRange && len(c.Enum) > 0 {
			return c
		}
	}
	return nil
}

func TestCampaignCrashHeavyShape(t *testing.T) {
	res, err := spex.InferSystem(New())
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := conffile.Parse(New().DefaultConfig(), conffile.SyntaxEquals)
	if err != nil {
		t.Fatal(err)
	}
	ms := confgen.NewRegistry().Generate(res.Set, tmpl)
	rep, err := inject.Run(New(), ms, inject.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	counts := rep.CountByReaction()
	t.Logf("campaign reactions: %v (total %d)", counts, len(rep.Outcomes))
	// VSFTP has the most crashes of the open-source systems (Table 5:
	// 12) and a large silent-ignorance share (68).
	if counts[inject.ReactionCrash] < 5 {
		t.Errorf("crashes = %d, want >= 5 (die-on-bad-value parsing)", counts[inject.ReactionCrash])
	}
	if counts[inject.ReactionSilentIgnorance] < 4 {
		t.Errorf("silent ignorance = %d, want >= 4 (enable-flag dependencies)", counts[inject.ReactionSilentIgnorance])
	}
}
