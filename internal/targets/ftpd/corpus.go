// Package ftpd is a VSFTP-like FTP server simulation (structure mapping).
// It reproduces the paper's VSFTP characteristics: boolean-heavy
// configuration parsed by a shared case-insensitive YES/NO helper that
// *dies* on anything else (VSFTP has the most crash vulnerabilities in
// Table 5), many control dependencies between enable-flags and their
// dependent options (the paper's 68 silent-ignorance cases, including
// Figure 7e's virtual_use_local_privs/one_process_mode pair), and the
// listen/listen_ipv6/listen_port triple whose naive dependencies are
// filtered by the MAY-belief confidence threshold (§2.2.4).
package ftpd

import (
	"strings"

	"spex/internal/sim"
	"spex/internal/vnet"
)

// ftpConfig is the server configuration.
type ftpConfig struct {
	listen               bool
	listenIPv6           bool
	listenPort           int64
	listenAddress        string
	maxClients           int64
	maxPerIP             int64
	acceptTimeout        int64
	connectTimeout       int64
	idleTimeout          int64
	dataTimeout          int64
	pasvMinPort          int64
	pasvMaxPort          int64
	anonEnable           bool
	anonRoot             string
	anonMaxRate          int64
	anonUmask            int64
	localEnable          bool
	localRoot            string
	localUmask           int64
	writeEnable          bool
	chrootLocal          bool
	xferlogEnable        bool
	xferlogFile          string
	sslEnable            bool
	rsaCertFile          string
	ftpUsername          string
	ftpdBanner           string
	virtualUseLocalPrivs bool
	onePlcessMode        bool
	hideIDs              bool
}

var fcfg = &ftpConfig{}

// ftpOption is the option table.
type ftpOption struct {
	name string
	iptr *int64
	sptr *string
	bptr *bool
	def  string
}

var ftpOptions = []ftpOption{
	{"listen", nil, nil, &fcfg.listen, "yes"},
	{"listen_ipv6", nil, nil, &fcfg.listenIPv6, "no"},
	{"listen_port", &fcfg.listenPort, nil, nil, "2121"},
	{"listen_address", nil, &fcfg.listenAddress, nil, "0.0.0.0"},
	{"max_clients", &fcfg.maxClients, nil, nil, "0"},
	{"max_per_ip", &fcfg.maxPerIP, nil, nil, "0"},
	{"accept_timeout", &fcfg.acceptTimeout, nil, nil, "60"},
	{"connect_timeout", &fcfg.connectTimeout, nil, nil, "60"},
	{"idle_session_timeout", &fcfg.idleTimeout, nil, nil, "300"},
	{"data_connection_timeout", &fcfg.dataTimeout, nil, nil, "300"},
	{"pasv_min_port", &fcfg.pasvMinPort, nil, nil, "50000"},
	{"pasv_max_port", &fcfg.pasvMaxPort, nil, nil, "50100"},
	{"anonymous_enable", nil, nil, &fcfg.anonEnable, "yes"},
	{"anon_root", nil, &fcfg.anonRoot, nil, "/srv/ftp"},
	{"anon_max_rate", &fcfg.anonMaxRate, nil, nil, "0"},
	{"anon_umask", &fcfg.anonUmask, nil, nil, "77"},
	{"local_enable", nil, nil, &fcfg.localEnable, "no"},
	{"local_root", nil, &fcfg.localRoot, nil, "/home"},
	{"local_umask", &fcfg.localUmask, nil, nil, "77"},
	{"write_enable", nil, nil, &fcfg.writeEnable, "no"},
	{"chroot_local_user", nil, nil, &fcfg.chrootLocal, "no"},
	{"xferlog_enable", nil, nil, &fcfg.xferlogEnable, "yes"},
	{"xferlog_file", nil, &fcfg.xferlogFile, nil, "/var/log/ftpd/xferlog"},
	{"ssl_enable", nil, nil, &fcfg.sslEnable, "no"},
	{"rsa_cert_file", nil, &fcfg.rsaCertFile, nil, "/etc/ssl/certs/ftpd.pem"},
	{"ftp_username", nil, &fcfg.ftpUsername, nil, "ftp"},
	{"ftpd_banner", nil, &fcfg.ftpdBanner, nil, "Welcome to ftpd."},
	{"virtual_use_local_privs", nil, nil, &fcfg.virtualUseLocalPrivs, "no"},
	{"one_process_mode", nil, nil, &fcfg.onePlcessMode, "no"},
	{"hide_ids", nil, nil, &fcfg.hideIDs, "no"},
}

// atoi: legacy unsafe numeric parsing (VSFTP's 20 unsafe-transform
// parameters in Table 8).
func atoi(s string) int64 {
	var n int64
	neg := false
	i := 0
	if len(s) > 0 && s[0] == '-' {
		neg = true
		i = 1
	}
	for ; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		return -n
	}
	return n
}

// parseYesNo is VSFTP's boolean parser: case-insensitive YES/NO (all 73 of
// VSFTP's string parameters are case-insensitive in Table 6); anything else
// makes the server die immediately — the paper's dominant VSFTP crash mode.
func parseYesNo(raw string) bool {
	v := false
	if strings.EqualFold(raw, "yes") {
		v = true
	} else if strings.EqualFold(raw, "no") {
		v = false
	} else {
		panic("500 OOPS: bad bool value in config file")
	}
	return v
}

// applyFtpOptions loads raw values through the option table and dies on
// tunable values it cannot stomach (vsftpd's characteristic behaviour).
func applyFtpOptions(vals map[string]string) {
	for i := range ftpOptions {
		o := &ftpOptions[i]
		raw, ok := vals[o.name]
		if !ok {
			raw = o.def
		}
		if o.iptr != nil {
			*o.iptr = atoi(raw)
		} else if o.sptr != nil {
			*o.sptr = raw
		} else {
			*o.bptr = parseYesNo(raw)
		}
	}
	validateTunables(fcfg)
}

// validateTunables dies on impossible tunable combinations.
func validateTunables(c *ftpConfig) {
	if c.pasvMinPort > c.pasvMaxPort {
		panic("500 OOPS: invalid pasv_min_port/pasv_max_port")
	}
	if c.anonUmask > 777 {
		panic("500 OOPS: bad umask value")
	}
	if c.localUmask > 777 {
		panic("500 OOPS: bad umask value")
	}
}

// ftpdState is the running server.
type ftpdState struct {
	conf     *ftpConfig
	sessions int64
}

// startFtpd boots the server.
func startFtpd(env *sim.Env, c *ftpConfig) (*ftpdState, error) {
	if c.maxClients < 0 {
		c.maxClients = 0
	}
	if c.maxPerIP < 0 {
		c.maxPerIP = 0
	}
	if c.listen {
		if !vnet.ValidIP(c.listenAddress) {
			panic("500 OOPS: bad listen_address")
		}
		if err := env.Net.Bind("tcp", int(c.listenPort), "ftpd"); err != nil {
			env.Log.Fatalf("500 OOPS: could not bind listening IPv4 socket")
			return nil, &sim.ExitError{Status: 1, Reason: "bind failed"}
		}
	}
	if c.listenIPv6 {
		if err := env.Net.Bind("tcp6", int(c.listenPort), "ftpd"); err != nil {
			env.Log.Fatalf("500 OOPS: could not bind listening IPv6 socket")
			return nil, &sim.ExitError{Status: 1, Reason: "bind6 failed"}
		}
	}
	if c.anonEnable {
		if !env.FS.IsDir(c.anonRoot) {
			// Anonymous logins will fail later with a generic error.
			_ = c.anonRoot
		}
		allocPool(c.anonMaxRate)
	}
	if c.localEnable {
		if !env.FS.IsDir(c.localRoot) {
			_ = c.localRoot
		}
		_ = c.localUmask & 0777
	}
	if c.xferlogEnable {
		_ = env.FS.WriteFile(c.xferlogFile, nil, 6)
	}
	if c.sslEnable {
		if !env.FS.Exists(c.rsaCertFile) {
			env.Log.Fatalf("500 OOPS: SSL: cannot load RSA certificate")
			return nil, &sim.ExitError{Status: 1, Reason: "cert missing"}
		}
	}
	if !c.onePlcessMode {
		// Privilege separation honours virtual_use_local_privs; in
		// one-process mode the flag is silently ignored (Figure 7e).
		if c.virtualUseLocalPrivs {
			applyPrivs(true)
		}
	}
	if !lookupUser(c.ftpUsername) {
		env.Log.Fatalf("500 OOPS: cannot locate user specified in 'ftp_username'")
		return nil, &sim.ExitError{Status: 1, Reason: "bad ftp user"}
	}
	sleepSeconds(c.acceptTimeout)
	sleepSeconds(c.connectTimeout)
	sleepSeconds(c.idleTimeout)
	sleepSeconds(c.dataTimeout)
	return &ftpdState{conf: c}, nil
}

func applyPrivs(useLocal bool) bool { return useLocal }

// login attempts an FTP session.
func (st *ftpdState) login(env *sim.Env, user string) bool {
	if st.conf.maxClients > 0 && st.sessions >= st.conf.maxClients {
		return false
	}
	switch user {
	case "anonymous":
		if !st.conf.anonEnable {
			return false
		}
		if !env.FS.IsDir(st.conf.anonRoot) {
			return false
		}
	default:
		if !st.conf.localEnable {
			return false
		}
	}
	st.sessions++
	return true
}

// listDir lists the anonymous root.
func (st *ftpdState) listDir(env *sim.Env) ([]string, bool) {
	names, err := env.FS.List(st.conf.anonRoot)
	if err != nil {
		return nil, false
	}
	return names, true
}

// --- runtime helpers ---

func allocPool(n int64) {
	if n < 0 {
		return
	}
}

func sleepSeconds(n int64) {
	if n <= 0 {
		return
	}
}

func lookupUser(name string) bool { return name == "ftp" || name == "root" }
