package ftpd

import (
	_ "embed"
	"fmt"
	"strconv"
	"sync"

	"spex/internal/conffile"
	"spex/internal/constraint"
	"spex/internal/sim"
)

//go:embed corpus.go
var corpusSource string

// System is the ftpd target.
type System struct{}

// New returns the ftpd target system.
func New() *System { return &System{} }

func (s *System) Name() string        { return "ftpd" }
func (s *System) Description() string { return "VSFTP-like FTP server (structure mapping)" }

func (s *System) Syntax() conffile.Syntax { return conffile.SyntaxEquals }

func (s *System) Sources() map[string]string {
	return map[string]string{"corpus.go": corpusSource}
}

// Annotations: one block per typed column (VSFTP needed 5 lines in
// Table 4).
func (s *System) Annotations() string {
	return `# vsftpd-style option table, one @VAR column per type
{ @STRUCT = ftpOptions @PAR = [ftpOption, 1] @VAR = [ftpOption, 2] }
{ @STRUCT = ftpOptions @PAR = [ftpOption, 1] @VAR = [ftpOption, 3] }
{ @STRUCT = ftpOptions @PAR = [ftpOption, 1] @VAR = [ftpOption, 4] }`
}

func (s *System) DefaultConfig() string {
	return `# ftpd configuration
listen = yes
listen_ipv6 = no
listen_port = 2121
listen_address = 0.0.0.0
max_clients = 0
max_per_ip = 0
accept_timeout = 60
connect_timeout = 60
idle_session_timeout = 300
data_connection_timeout = 300
pasv_min_port = 50000
pasv_max_port = 50100
anonymous_enable = yes
anon_root = /srv/ftp
anon_max_rate = 0
anon_umask = 77
local_enable = no
local_root = /home
local_umask = 77
write_enable = no
chroot_local_user = no
xferlog_enable = yes
xferlog_file = /var/log/ftpd/xferlog
ssl_enable = no
rsa_cert_file = /etc/ssl/certs/ftpd.pem
ftp_username = ftp
ftpd_banner = Welcome to ftpd.
virtual_use_local_privs = no
one_process_mode = no
hide_ids = no
`
}

func (s *System) SetupEnv(env *sim.Env) {
	_ = env.FS.MkdirAll("/srv/ftp")
	_ = env.FS.WriteFile("/srv/ftp/README", []byte("hello"), 6)
	_ = env.FS.MkdirAll("/home")
	_ = env.FS.MkdirAll("/var/log/ftpd")
	_ = env.FS.WriteFile("/etc/ssl/certs/ftpd.pem", []byte("CERT"), 6)
}

type instance struct {
	st        *ftpdState
	effective map[string]string
	env       *sim.Env
}

func (i *instance) Effective(param string) (string, bool) {
	v, ok := i.effective[param]
	return v, ok
}

func (i *instance) Stop() { i.env.Net.ReleaseOwner("ftpd") }

// bootMu serializes the boot: the corpus models VSFTP's real global
// tunable variables (and snapshot reads them through the option table),
// so concurrent Starts must not interleave until the instance detaches.
// Hang points must never sit inside this lock (see sim.MonitorStart).
var bootMu sync.Mutex

func (s *System) Start(env *sim.Env, cfg *conffile.File) (sim.Instance, error) {
	bootMu.Lock()
	defer bootMu.Unlock()
	*fcfg = ftpConfig{}
	applyFtpOptions(cfg.Map())
	st, err := startFtpd(env, fcfg)
	if err != nil {
		return nil, err
	}
	eff := snapshot()
	c := *fcfg
	st.conf = &c // detach: the functional tests run outside the boot lock
	return &instance{st: st, effective: eff, env: env}, nil
}

func snapshot() map[string]string {
	m := map[string]string{}
	for i := range ftpOptions {
		o := &ftpOptions[i]
		switch {
		case o.iptr != nil:
			m[o.name] = strconv.FormatInt(*o.iptr, 10)
		case o.sptr != nil:
			m[o.name] = *o.sptr
		default:
			if *o.bptr {
				m[o.name] = "yes"
			} else {
				m[o.name] = "no"
			}
		}
	}
	return m
}

func (s *System) Tests() []sim.FuncTest {
	return []sim.FuncTest{
		{
			Name: "listen", Weight: 1,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if i.st.conf.listen && !env.Net.Occupied("tcp", int(i.st.conf.listenPort)) {
					return fmt.Errorf("ftpd is not listening")
				}
				return nil
			},
		},
		{
			Name: "anon-login", Weight: 2,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if !i.st.conf.anonEnable {
					return nil
				}
				if !i.st.login(env, "anonymous") {
					return fmt.Errorf("anonymous login refused")
				}
				return nil
			},
		},
		{
			Name: "dir-list", Weight: 3,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if !i.st.conf.anonEnable {
					return nil
				}
				if _, ok := i.st.listDir(env); !ok {
					return fmt.Errorf("LIST failed on the anonymous root")
				}
				return nil
			},
		},
		{
			Name: "xferlog", Weight: 2,
			Run: func(env *sim.Env, in sim.Instance) error {
				i := in.(*instance)
				if i.st.conf.xferlogEnable && !env.FS.Exists(i.st.conf.xferlogFile) {
					return fmt.Errorf("transfer log missing")
				}
				return nil
			},
		},
	}
}

func (s *System) Manual() map[string]sim.ManualEntry {
	doc := func(prose string, kinds ...constraint.Kind) sim.ManualEntry {
		return sim.ManualEntry{Prose: prose, Documented: kinds}
	}
	return map[string]sim.ManualEntry{
		"listen":        doc("Run in standalone IPv4 mode (YES/NO).", constraint.KindBasicType, constraint.KindRange),
		"listen_ipv6":   doc("Run in standalone IPv6 mode (YES/NO).", constraint.KindBasicType, constraint.KindRange),
		"listen_port":   doc("Port for incoming FTP connections.", constraint.KindBasicType, constraint.KindSemanticType),
		"anon_root":     doc("Directory for anonymous sessions.", constraint.KindBasicType, constraint.KindSemanticType),
		"ftp_username":  doc("User for anonymous access.", constraint.KindBasicType, constraint.KindSemanticType),
		"rsa_cert_file": doc("RSA certificate for SSL.", constraint.KindBasicType, constraint.KindSemanticType),
		// The 47 undocumented control dependencies of Table 8: none of
		// the enable-flag dependencies appear in the manual.
	}
}

func (s *System) GroundTruth() *constraint.Set {
	gt := constraint.NewSet("ftpd")
	b := func(p string, t constraint.BasicType) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindBasicType, Param: p, Basic: t})
	}
	sem := func(p string, t constraint.SemanticType, u constraint.Unit) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindSemanticType, Param: p, Semantic: t, Unit: u})
	}
	var bools, ints, strs []string
	for i := range ftpOptions {
		o := &ftpOptions[i]
		switch {
		case o.iptr != nil:
			ints = append(ints, o.name)
		case o.sptr != nil:
			strs = append(strs, o.name)
		default:
			bools = append(bools, o.name)
		}
	}
	for _, p := range ints {
		b(p, constraint.BasicInt64)
	}
	for _, p := range strs {
		b(p, constraint.BasicString)
	}
	for _, p := range bools {
		b(p, constraint.BasicBool)
		gt.Add(&constraint.Constraint{Kind: constraint.KindRange, Param: p,
			Enum: []constraint.EnumValue{{Value: "yes", Valid: true}, {Value: "no", Valid: true}}})
	}
	sem("listen_port", constraint.SemPort, constraint.UnitNone)
	sem("listen_address", constraint.SemIPAddr, constraint.UnitNone)
	sem("accept_timeout", constraint.SemTimeout, constraint.UnitSecond)
	sem("connect_timeout", constraint.SemTimeout, constraint.UnitSecond)
	sem("idle_session_timeout", constraint.SemTimeout, constraint.UnitSecond)
	sem("data_connection_timeout", constraint.SemTimeout, constraint.UnitSecond)
	sem("anon_root", constraint.SemDirectory, constraint.UnitNone)
	sem("local_root", constraint.SemDirectory, constraint.UnitNone)
	sem("xferlog_file", constraint.SemFile, constraint.UnitNone)
	sem("rsa_cert_file", constraint.SemFile, constraint.UnitNone)
	sem("ftp_username", constraint.SemUser, constraint.UnitNone)

	rng := func(p string, min, max int64, hasMin, hasMax bool) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindRange, Param: p,
			Intervals: []constraint.Interval{{Min: min, Max: max, HasMin: hasMin, HasMax: hasMax, Valid: true}}})
	}
	rng("max_clients", 0, 0, true, false)
	rng("max_per_ip", 0, 0, true, false)
	rng("anon_umask", 0, 777, false, true)
	rng("local_umask", 0, 777, false, true)

	gt.Add(&constraint.Constraint{Kind: constraint.KindValueRel,
		Param: "pasv_min_port", Rel: constraint.OpLE, Peer: "pasv_max_port"})

	dep := func(q, p string, op constraint.Op, v string) {
		gt.Add(&constraint.Constraint{Kind: constraint.KindControlDep, Param: q, Peer: p, Cond: op, Value: v})
	}
	dep("listen_address", "listen", constraint.OpEQ, "true")
	dep("anon_root", "anonymous_enable", constraint.OpEQ, "true")
	dep("anon_max_rate", "anonymous_enable", constraint.OpEQ, "true")
	dep("local_umask", "local_enable", constraint.OpEQ, "true")
	dep("xferlog_file", "xferlog_enable", constraint.OpEQ, "true")
	dep("rsa_cert_file", "ssl_enable", constraint.OpEQ, "true")
	dep("virtual_use_local_privs", "one_process_mode", constraint.OpEQ, "false")
	return gt
}

var _ sim.System = (*System)(nil)
