// Package targets registers the seven simulated evaluation systems
// (paper Table 4): one commercial storage OS and six open-source servers.
package targets

import (
	"spex/internal/sim"
	"spex/internal/targets/ftpd"
	"spex/internal/targets/httpd"
	"spex/internal/targets/ldapd"
	"spex/internal/targets/mydb"
	"spex/internal/targets/pgdb"
	"spex/internal/targets/proxyd"
	"spex/internal/targets/storagea"
)

// All returns the evaluated systems in the paper's Table 4/5 order.
func All() []sim.System {
	return []sim.System{
		storagea.New(),
		httpd.New(),
		mydb.New(),
		pgdb.New(),
		ldapd.New(),
		ftpd.New(),
		proxyd.New(),
	}
}

// ByName returns a system by its Name(), or nil.
func ByName(name string) sim.System {
	for _, s := range All() {
		if s.Name() == name {
			return s
		}
	}
	return nil
}
