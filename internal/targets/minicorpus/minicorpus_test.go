package minicorpus

import (
	"context"
	"reflect"
	"testing"

	"spex/internal/annot"
	"spex/internal/frontend"
	"spex/internal/mapping"
)

// TestEveryProjectExtracts verifies the toolkits extract at least one
// mapping pair from every surveyed snippet with its annotation.
func TestEveryProjectExtracts(t *testing.T) {
	for _, p := range Projects() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			proj, err := frontend.Parse(p.Name, p.Sources)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			af, err := annot.Parse(p.Annotations)
			if err != nil {
				t.Fatalf("annotations: %v", err)
			}
			pairs, err := mapping.Extract(proj, af)
			if err != nil {
				t.Fatalf("extract: %v", err)
			}
			if len(pairs) == 0 {
				t.Fatal("no mapping pairs extracted")
			}
			if got := mapping.Convention(af); got != p.WantConvention {
				t.Errorf("convention = %q, want %q", got, p.WantConvention)
			}
		})
	}
}

// TestSurveyShardedMatchesSequential verifies the pooled survey: rows
// come back in Projects() order regardless of pool width, every
// measured convention matches the paper's Table 1 answer, and every
// project extracts at least one pair. Widths 1 and 4 must produce
// deeply equal results — the determinism the sharded Table 1 relies on.
func TestSurveyShardedMatchesSequential(t *testing.T) {
	sequential, err := Survey(context.Background(), 1)
	if err != nil {
		t.Fatalf("Survey(1): %v", err)
	}
	parallel, err := Survey(context.Background(), 4)
	if err != nil {
		t.Fatalf("Survey(4): %v", err)
	}
	if !reflect.DeepEqual(sequential, parallel) {
		t.Errorf("sharded survey differs from sequential:\n%+v\nvs\n%+v", parallel, sequential)
	}
	projects := Projects()
	if len(sequential) != len(projects) {
		t.Fatalf("survey returned %d rows, want %d", len(sequential), len(projects))
	}
	for i, s := range sequential {
		if s.Project.Name != projects[i].Name {
			t.Errorf("row %d is %s, want %s (input order lost)", i, s.Project.Name, projects[i].Name)
		}
		if s.Pairs == 0 {
			t.Errorf("%s: no mapping pairs extracted", s.Project.Name)
		}
		if s.Convention != s.Project.WantConvention {
			t.Errorf("%s: measured convention %q, want %q", s.Project.Name, s.Convention, s.Project.WantConvention)
		}
	}
}

// TestSurveyCountsMatchTable1 checks the 18-project split: 9 structure,
// 4 comparison, 4 container, 1 hybrid (Table 1).
func TestSurveyCountsMatchTable1(t *testing.T) {
	counts := map[string]int{}
	for _, p := range Projects() {
		counts[p.WantConvention]++
	}
	// The seven simulated targets contribute: Storage-A, mydb, pgdb,
	// httpd, ftpd = structure; proxyd = comparison; ldapd = hybrid.
	counts["structure"] += 5
	counts["comparison"]++
	counts["hybrid"]++
	if counts["structure"] != 9 || counts["comparison"] != 4 ||
		counts["container"] != 4 || counts["hybrid"] != 1 {
		t.Errorf("survey split = %v, want structure:9 comparison:4 container:4 hybrid:1", counts)
	}
}

// TestContainerExtraction spot-checks the getter toolkit's output.
func TestContainerExtraction(t *testing.T) {
	var hyper Project
	for _, p := range Projects() {
		if p.Name == "Hypertable" {
			hyper = p
		}
	}
	proj, err := frontend.Parse(hyper.Name, hyper.Sources)
	if err != nil {
		t.Fatal(err)
	}
	af, err := annot.Parse(hyper.Annotations)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := mapping.Extract(proj, af)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"Connection.Retry.Interval": false, "Hypertable.Master.Port": false}
	for _, p := range pairs {
		if _, ok := want[p.Param]; ok {
			want[p.Param] = true
		}
	}
	for param, found := range want {
		if !found {
			t.Errorf("getter mapping for %q not extracted (pairs: %+v)", param, pairs)
		}
	}
}
